(* Ad-hoc network routing under churn — the scenario that motivated
   link reversal algorithms (Gafni–Bertsekas 1981, TORA).

   A 24-node mobile network keeps every node's route to a gateway while
   links fail and appear.  Partial Reversal repairs the structure after
   each change; the demo prints the repair cost and a sample route.

   Run with: dune exec examples/adhoc_routing.exe *)

open Lr_graph
open Linkrev
module M = Lr_routing.Maintenance

let pp_route ppf = function
  | None -> Format.pp_print_string ppf "(no route)"
  | Some path ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
        Node.pp ppf path

let () =
  let rng = Random.State.make [| 2026 |] in
  let inst = Generators.random_connected_dag_dest rng ~n:24 ~extra_edges:30 ~destination:0 in
  let config = Config.of_instance inst in
  Format.printf "network: %d nodes, %d links, gateway = node 0@."
    (Digraph.num_nodes config.Config.initial)
    (Digraph.num_edges config.Config.initial);

  let m = M.create M.Partial_reversal config in
  Format.printf "initial stabilization cost: %d reversals@.@." (M.total_work m);

  let watched = 17 in
  Format.printf "route from %d: %a@.@." watched pp_route (M.route m watched);

  (* Churn: 12 random link failures interleaved with 6 new links. *)
  let failures = ref 0 and partitions = ref 0 in
  for round = 1 to 12 do
    let edges = Digraph.directed_edges (M.graph m) in
    let u, v = List.nth edges (Random.State.int rng (List.length edges)) in
    (match M.fail_link m u v with
    | M.Stabilized { node_steps; affected } ->
        incr failures;
        Format.printf "round %2d: link {%a,%a} failed, repaired with %d reversals by %a@."
          round Node.pp u Node.pp v node_steps Node.Set.pp affected
    | M.Partitioned lost ->
        incr partitions;
        Format.printf "round %2d: link {%a,%a} failed, PARTITION — lost %a@."
          round Node.pp u Node.pp v Node.Set.pp lost;
        (* bring the lost nodes back with a fresh link to the gateway side *)
        let back = Node.Set.min_elt lost in
        M.add_link m back 0;
        Format.printf "          relinked %a to the gateway@." Node.pp back);
    if round mod 2 = 0 then begin
      (* a new radio link appears between two random nodes *)
      let nodes = Node.Set.elements (Digraph.nodes (M.graph m)) in
      let pick () = List.nth nodes (Random.State.int rng (List.length nodes)) in
      let a = pick () and b = pick () in
      if (not (Node.equal a b)) && not (Digraph.mem_edge (M.graph m) a b) then begin
        M.add_link m a b;
        Format.printf "round %2d: new link {%a,%a} (oriented by heights, no work)@."
          round Node.pp a Node.pp b
      end
    end;
    assert (Digraph.is_acyclic (M.graph m));
    assert (M.is_destination_oriented m)
  done;

  Format.printf "@.%d failures repaired, %d partitions healed@." !failures !partitions;
  Format.printf "total reversal work: %d@." (M.total_work m);
  Format.printf "route from %d now: %a@." watched pp_route (M.route m watched);

  (* Compare against Full Reversal on the same churn-free instance. *)
  let mf = M.create M.Full_reversal config in
  Format.printf "@.for reference, initial stabilization with Full Reversal: %d reversals@."
    (M.total_work mf)
