(* Leader election by link reversal: when the destination (leader)
   crashes, every surviving component elects a replacement and the
   reversal machinery re-orients all routes toward it.

   Run with: dune exec examples/leader_failover.exe *)

open Lr_graph
module F = Lr_routing.Failover
module M = Lr_routing.Maintenance

let demo name config =
  Format.printf "== %s ==@." name;
  Format.printf "before: %s@."
    (Properties.orientation_profile config.Linkrev.Config.initial
       config.Linkrev.Config.destination);
  List.iter
    (fun rule ->
      let rule_name =
        match rule with
        | M.Partial_reversal -> "partial reversal"
        | M.Full_reversal -> "full reversal"
      in
      let outcomes = F.elect_after_destination_failure rule config in
      Format.printf "after crash (%s): %d component(s)@." rule_name
        (List.length outcomes);
      List.iter
        (fun o ->
          Format.printf
            "  leader %a over %d node(s): %d reversals, oriented: %b@." Node.pp
            o.F.leader
            (Node.Set.cardinal o.F.members)
            o.F.node_steps o.F.oriented)
        outcomes)
    [ M.Partial_reversal; M.Full_reversal ];
  Format.printf "@."

let () =
  let rng = Random.State.make [| 31337 |] in
  demo "well-connected network (one survivor component)"
    (Linkrev.Config.of_instance
       (Generators.random_connected_dag_dest rng ~n:16 ~extra_edges:20
          ~destination:0));
  demo "chain with the leader in the middle (splits in two)"
    (Linkrev.Config.of_instance (Generators.half_bad_chain 9));
  demo "star with the leader at the centre (shatters)"
    (Linkrev.Config.of_instance
       (Generators.star ~center:0 ~leaves:5 ~inward:true))
