(* Mutual exclusion by link reversal (Welch–Walter's third application).

   The token holder acts as the destination of a destination-oriented
   DAG; passing the token re-orients the graph toward the new holder
   with Partial Reversal.  The demo serves a queue of critical-section
   requests and prints the reversal cost of every transfer.

   Run with: dune exec examples/mutual_exclusion.exe *)

open Lr_graph
open Linkrev
module X = Lr_routing.Mutex

let () =
  let rng = Random.State.make [| 7 |] in
  let inst =
    Generators.random_connected_dag_dest rng ~n:12 ~extra_edges:10 ~destination:0
  in
  let config = Config.of_instance inst in
  let mx = X.create config in
  Format.printf "token starts at node %a@." Node.pp (X.holder mx);

  (* Everyone wants the critical section, in scrambled order. *)
  let requesters = [ 7; 3; 11; 1; 9; 5 ] in
  List.iter (X.request mx) requesters;
  Format.printf "requests: %a@.@."
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Node.pp)
    (X.pending mx);

  let total = ref 0 in
  let rec serve () =
    match X.grant_next mx with
    | None -> ()
    | Some (node, cost) ->
        total := !total + cost;
        Format.printf
          "token -> node %2d   (transfer cost: %2d reversals, graph %s, %s)@."
          node cost
          (if Digraph.is_acyclic (X.graph mx) then "acyclic" else "CYCLIC!")
          (if X.oriented_to_holder mx then "all routes point to holder"
           else "ORIENTATION BROKEN");
        serve ()
  in
  serve ();
  Format.printf "@.all %d requests served FIFO; total reversal work: %d@."
    (List.length requesters) !total;

  (* Safety check: in the final structure every node still routes to the
     last holder. *)
  assert (X.oriented_to_holder mx);
  Format.printf "final holder: %a@." Node.pp (X.holder mx)
