(* The asynchronous height protocol over a simulated message-passing
   network: what the paper's atomic automata look like when deployed.

   Each node only knows its neighbours' last announced heights; sinks
   raise their height (Partial or Full reversal rule) and broadcast.
   The demo compares message and reversal cost of the two rules on the
   same network, with jittered link latencies.

   Run with: dune exec examples/async_network.exe *)

open Lr_graph
open Linkrev
module HP = Lr_routing.Height_protocol

let run_mode name mode config =
  let r =
    HP.run
      ~latency:(fun u v -> 1.0 +. (0.1 *. float_of_int ((u + v) mod 5)))
      ~jitter:(Random.State.make [| 99 |], 0.5)
      ~mode config
  in
  Format.printf
    "%-8s: %4d reversals, %5d messages, simulated time %6.1f, oriented: %b@."
    name r.HP.total_raises r.HP.stats.Lr_sim.Network.sent
    r.HP.stats.Lr_sim.Network.final_time r.HP.destination_oriented;
  r

let () =
  let rng = Random.State.make [| 4242 |] in
  let inst =
    Generators.random_connected_dag_dest rng ~n:40 ~extra_edges:50 ~destination:0
  in
  let config = Config.of_instance inst in
  Format.printf "network: %d nodes, %d links, %d initially route-less@.@."
    (Digraph.num_nodes config.Config.initial)
    (Digraph.num_edges config.Config.initial)
    (Node.Set.cardinal (Config.bad_nodes config));

  let pr = run_mode "Partial" HP.Partial config in
  let fr = run_mode "Full" HP.Full config in

  Format.printf "@.per-node reversal counts (Partial):@.";
  Node.Map.iter
    (fun u c -> if c > 0 then Format.printf "  node %2d: %d@." u c)
    pr.HP.raises_per_node;

  (* The asynchronous run performs exactly the work of any sequential
     schedule — link reversal work is schedule-independent. *)
  let seq =
    Executor.run
      ~scheduler:(Lr_automata.Scheduler.first ())
      ~destination:0 (Heights.pr_algo config)
  in
  Format.printf
    "@.sequential PR on the same instance: %d reversals (async did %d)@."
    seq.Executor.total_node_steps pr.HP.total_raises;

  Format.printf "@.message efficiency: Partial used %.1f%% of Full's messages@."
    (100.0
    *. float_of_int pr.HP.stats.Lr_sim.Network.sent
    /. float_of_int (max 1 fr.HP.stats.Lr_sim.Network.sent))
