(* Link reversal over unreliable links.

   The height protocol's announcements can be lost in a real radio
   network.  This demo runs the same instance three ways:

     1. reliable links                      — converges;
     2. 40% loss, no retransmission        — usually stalls with stale
        neighbour views (some sink never learns it should reverse);
     3. 40% loss + periodic height beacons — converges again, at the
        cost of steady background traffic.

   Run with: dune exec examples/lossy_network.exe *)

open Lr_graph
open Linkrev
module HP = Lr_routing.Height_protocol

let show name (r : HP.result) =
  Format.printf
    "%-28s: %4d raises, %5d msgs sent, oriented: %b@."
    name r.HP.total_raises r.HP.stats.Lr_sim.Network.sent
    r.HP.destination_oriented

let () =
  let rng = Random.State.make [| 1234 |] in
  let inst =
    Generators.random_connected_dag_dest rng ~n:30 ~extra_edges:25
      ~destination:0
  in
  let config = Config.of_instance inst in
  Format.printf "network: %d nodes, %d links, %d route-less nodes@.@."
    (Digraph.num_nodes config.Config.initial)
    (Digraph.num_edges config.Config.initial)
    (Node.Set.cardinal (Config.bad_nodes config));

  show "reliable" (HP.run ~mode:HP.Partial config);

  (* Find a seed where bare loss visibly stalls (not guaranteed on
     every seed — loss is random). *)
  let stalled =
    let rec hunt seed =
      if seed > 50 then None
      else
        let r =
          HP.run
            ~drop:(Random.State.make [| seed |], 0.4)
            ~mode:HP.Partial config
        in
        if r.HP.destination_oriented then hunt (seed + 1) else Some (seed, r)
    in
    hunt 0
  in
  (match stalled with
  | Some (seed, r) ->
      show (Printf.sprintf "40%% loss (seed %d)" seed) r;
      Format.printf
        "   ^ stalled: some node's view of a neighbour is stale forever@."
  | None ->
      Format.printf "40%% loss: all 50 seeds happened to converge anyway@.");

  let r =
    HP.run
      ~drop:(Random.State.make [| 7 |], 0.4)
      ~beacon:5.0 ~until:2000.0 ~mode:HP.Partial config
  in
  show "40% loss + beacons" r;
  Format.printf
    "   ^ periodic re-announcements repair stale views; convergence returns@."
