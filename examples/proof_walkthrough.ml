(* A guided tour of the paper's proof on a concrete graph.

   Follows the paper's structure: run PR and check Invariants 3.1/3.2
   (Section 3); run NewPR and check Invariants 4.1/4.2 and acyclicity
   (Section 4); replay the simulation relations R' and R that transfer
   the proof back to PR (Section 5); finish with an exhaustive model
   check of a small instance, the machine analogue of "in every
   reachable state".

   Run with: dune exec examples/proof_walkthrough.exe *)

open Lr_graph
open Linkrev
module A = Lr_automata
module MC = Lr_modelcheck.Modelcheck

let header fmt = Format.printf ("@.=== " ^^ fmt ^^ " ===@.")

let () =
  (* The diamond with a tail: 0 is the destination; 3 and 4 are bad. *)
  let graph =
    Digraph.of_directed_edges [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) ]
  in
  let config = Config.make_exn graph ~destination:0 in
  Format.printf "instance:@.%a@." Config.pp config;

  header "Section 3: PR and its list invariants";
  let exec_pr =
    A.Execution.run ~scheduler:(A.Scheduler.first ())
      (Pr.automaton ~mode:Pr.Singletons config)
  in
  List.iteri
    (fun i (s : Pr.state) ->
      let lists =
        Node.Set.fold
          (fun u acc ->
            let l = Pr.list_of s u in
            if Node.Set.is_empty l then acc
            else Format.asprintf "%s list[%a]=%a" acc Node.pp u Node.Set.pp l)
          (Config.nodes config) ""
      in
      Format.printf "state %d: sinks %a%s@." i Node.Set.pp
        (Digraph.sinks s.Pr.graph) lists)
    (A.Execution.states exec_pr);
  (match A.Invariant.check_execution (Invariants.pr_all config) exec_pr with
  | None ->
      Format.printf
        "Invariant 3.1, Invariant 3.2, Corollaries 3.3/3.4: hold in every state ✔@."
  | Some v -> Format.printf "violated: %a@." A.Invariant.pp_violation v);

  header "Section 4: NewPR, parities and the left-right embedding";
  Format.printf "embedding (topological order): %a@." Embedding.pp
    config.Config.embedding;
  let exec_np =
    A.Execution.run ~scheduler:(A.Scheduler.first ()) (New_pr.automaton config)
  in
  List.iter
    (fun { A.Execution.before; action = New_pr.Reverse u; after } ->
      Format.printf
        "reverse(%a): parity was %a, reversed initial %s-nbrs%s@." Node.pp u
        New_pr.pp_parity (New_pr.parity before u)
        (match New_pr.parity before u with New_pr.Even -> "in" | New_pr.Odd -> "out")
        (if New_pr.is_dummy_step config before u then "  [dummy step]"
         else "");
      ignore after)
    exec_np.A.Execution.steps;
  (match A.Invariant.check_execution (Invariants.newpr_all config) exec_np with
  | None ->
      Format.printf
        "Invariant 4.1, Invariant 4.2, Theorem 4.3 (acyclicity): hold ✔@."
  | Some v -> Format.printf "violated: %a@." A.Invariant.pp_violation v);

  header "Section 5: simulation relations R' and R";
  (match
     Simulation_rel.check_r_prime ~scheduler:(A.Scheduler.first ()) config
   with
  | Ok exec ->
      Format.printf
        "R' (PR -> OneStepPR): every reverse(S) matched by singleton steps — %d steps replayed ✔@."
        (A.Execution.length exec)
  | Error e -> Format.printf "R' failed: %s@." e);
  (match Simulation_rel.check_r ~scheduler:(A.Scheduler.first ()) config with
  | Ok exec ->
      Format.printf
        "R (OneStepPR -> NewPR): matched, dummy steps inserted where lists were full — %d NewPR steps ✔@."
        (A.Execution.length exec)
  | Error e -> Format.printf "R failed: %s@." e);
  (match
     Simulation_rel.check_r_reverse ~scheduler:(A.Scheduler.first ()) config
   with
  | Ok exec ->
      Format.printf
        "reverse direction (the paper's future work): NewPR -> OneStepPR matched with %d steps ✔@."
        (A.Execution.length exec)
  | Error e -> Format.printf "reverse direction failed: %s@." e);

  header "Exhaustive check (every reachable state, small instance)";
  List.iter
    (fun report -> Format.printf "%a@." MC.pp_report report)
    (MC.check_all config);

  header "Conclusion";
  Format.printf
    "PR's final graph equals NewPR's, and both are acyclic in every state:@.";
  let final_pr = (A.Execution.final exec_pr).Pr.graph in
  let final_np = (A.Execution.final exec_np).New_pr.graph in
  Format.printf "  graphs equal: %b; acyclic: %b; destination-oriented: %b@."
    (Digraph.equal final_pr final_np)
    (Digraph.is_acyclic final_pr)
    (Digraph.is_destination_oriented final_pr 0)
