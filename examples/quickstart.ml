(* Quickstart: build a DAG, run Partial Reversal until every node has a
   route to the destination, and watch the paper's invariants hold.

   Run with: dune exec examples/quickstart.exe *)

open Lr_graph
open Linkrev
module A = Lr_automata

let () =
  (* A 6-node DAG with destination 0.  Nodes 3, 4 and 5 have no path to
     the destination yet. *)
  let graph =
    Digraph.of_directed_edges
      [ (1, 0); (2, 0); (1, 3); (3, 4); (2, 4); (4, 5) ]
  in
  let config = Config.make_exn graph ~destination:0 in
  Format.printf "== initial graph ==@.%a@." Digraph.pp graph;
  Format.printf "bad nodes (no route yet): %a@.@." Node.Set.pp
    (Config.bad_nodes config);

  (* Run the original PR automaton, one sink at a time, recording the
     whole execution. *)
  let exec =
    A.Execution.run
      ~scheduler:(A.Scheduler.round_robin ~index:(fun (One_step_pr.Reverse u) -> u) ())
      (One_step_pr.automaton config)
  in
  Format.printf "== execution (%d reversal steps) ==@." (A.Execution.length exec);
  List.iter
    (fun { A.Execution.action; after; _ } ->
      Format.printf "  %a  -->  sinks now: %a@." One_step_pr.pp_action action
        Node.Set.pp
        (Digraph.sinks after.Pr.graph))
    exec.A.Execution.steps;

  let final = (A.Execution.final exec).Pr.graph in
  Format.printf "@.== final graph ==@.%a@." Digraph.pp final;
  Format.printf "destination-oriented: %b@."
    (Digraph.is_destination_oriented final 0);

  (* Every intermediate state satisfied the paper's invariants. *)
  (match A.Invariant.check_execution (Invariants.pr_all config) exec with
  | None -> Format.printf "all PR invariants held at every state ✔@."
  | Some v -> Format.printf "violation: %a@." A.Invariant.pp_violation v);

  (* Export DOT for visual inspection. *)
  let dot = Dot.of_digraph ~name:"final" ~destination:0 final in
  Dot.to_file "quickstart_final.dot" dot;
  Format.printf "wrote quickstart_final.dot@."
