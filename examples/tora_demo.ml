(* TORA route maintenance under a failure storm.

   Shows the protocol's five maintenance cases in action: single link
   failures repaired by localized reversals (new reference levels that
   propagate and reflect), bridge failures detected as partitions
   (a node's own reflected level returns), and reconnection healing the
   cleared region.

   Run with: dune exec examples/tora_demo.exe *)

open Lr_graph
module T = Lr_routing.Tora

let () =
  let rng = Random.State.make [| 77 |] in
  let inst =
    Generators.random_connected_dag_dest rng ~n:30 ~extra_edges:25 ~destination:0
  in
  let config = Linkrev.Config.of_instance inst in
  let t = T.create config in
  Format.printf "network: %d nodes, %d links, destination 0@."
    (Undirected.num_nodes (T.skeleton t))
    (Undirected.num_edges (T.skeleton t));
  Format.printf "route creation done: %.0f%% of nodes routed@.@."
    (100.0 *. T.routed_fraction t);

  let healed = ref 0 in
  for round = 1 to 20 do
    let edges = Edge.Set.elements (Undirected.edges (T.skeleton t)) in
    let e = List.nth edges (Random.State.int rng (List.length edges)) in
    let u, v = Edge.endpoints e in
    (match T.fail_link t u v with
    | T.Maintained { reactions } ->
        Format.printf
          "round %2d: {%a,%a} failed — repaired, %d maintenance reactions@."
          round Node.pp u Node.pp v reactions
    | T.Partition_detected { cleared; reactions } ->
        Format.printf
          "round %2d: {%a,%a} failed — PARTITION after %d reactions, cleared %a@."
          round Node.pp u Node.pp v reactions Node.Set.pp cleared;
        (* heal: connect one cleared node back to the destination side *)
        (match Node.Set.choose_opt cleared with
        | Some w when not (Undirected.mem_edge (T.skeleton t) w 0) ->
            incr healed;
            ignore (T.add_link t w 0);
            Format.printf "          healed with new link {%a,0}@." Node.pp w
        | _ -> ()));
    assert (T.acyclic t)
  done;

  Format.printf
    "@.after 20 failures (%d heals): %.0f%% routed, %d total reactions, acyclic: %b@."
    !healed
    (100.0 *. T.routed_fraction t)
    (T.reactions_total t) (T.acyclic t);

  (* Show a few heights, including any non-zero reference levels. *)
  Format.printf "@.sample heights (tau > 0 marks post-failure reference levels):@.";
  Node.Set.iter
    (fun u ->
      if u < 8 then
        Format.printf "  node %a: %a@." Node.pp u T.pp_height (T.height t u))
    (Undirected.nodes (T.skeleton t))
