(** The service's typed operation stream and response vocabulary.

    One line of a workload file is one op; the textual form below is the
    workload wire format ({!to_line} / {!of_line}) and the canonical
    response rendering ({!response_to_string}) is what determinism
    fingerprints hash, so both must stay stable. *)

type t =
  | Route of { shard : int; src : int }
      (** Serve a route request from [src] to the shard's destination. *)
  | Link_down of { shard : int; u : int; v : int }
      (** The link [{u,v}] failed.  A no-op if absent. *)
  | Link_up of { shard : int; u : int; v : int }
      (** The link [{u,v}] appeared.  A no-op if present or touching a
          crashed node. *)
  | Crash_destination of { shard : int }
      (** The shard's destination crashed; elect a replacement
          ({!Failover}) and re-orient toward it. *)
  | Inject of { shard : int; src : int; count : int }
      (** Offer [count] packets at [src] to the shard's forwarding
          plane ({!Lr_packet.Plane}); a full source queue drops the
          excess. *)
  | Forward of { shard : int; slots : int }
      (** Run [slots] synchronous forwarding rounds on the shard's
          plane: backpressure transmissions plus queue-driven partial
          reversals. *)
  | Corrupt of { shard : int; seed : int; magnitude : int }
      (** Chaos fault: overwrite every height of the shard's
          maintenance engine with a hostile pseudo-random assignment
          derived from [(seed, node)] and bounded by [magnitude], then
          self-heal ({!Maintenance.adopt_heights}). *)
  | Flip of { shard : int; node : int; bit : int }
      (** Chaos fault: flip one bit of [node]'s primary height
          component (a targeted single-node corruption, e.g. a route
          bit-flip in flight), then self-heal. *)
  | Stats  (** Snapshot the service-wide counters (a dispatch barrier). *)

val shard_of : t -> int option
(** [None] for [Stats], which is handled by the dispatcher. *)

type response =
  | Path of int list
      (** A validated route: strictly height- and orientation-descending
          from the source to the shard's destination. *)
  | No_route  (** The source is honestly cut off from the destination. *)
  | Repaired of { node_steps : int }
      (** Link failure absorbed; the reversal cascade ran to quiescence. *)
  | Cut of { lost : int }
      (** Link failure partitioned [lost] nodes away from the
          destination. *)
  | Linked of { node_steps : int }
      (** Link added (and any newly enabled reversals run). *)
  | New_destination of { leader : int; node_steps : int }
      (** Failover outcome: the elected leader and the re-orientation
          work spent adopting it. *)
  | Injected of { accepted : int; dropped : int }
      (** Packets enqueued vs refused by the bounded source queue. *)
  | Forwarded of { delivered : int; reversals : int; queued : int; hops : int }
      (** Forwarding-round outcome: deliveries, queue-driven reversals
          and hop count in these slots, plus the plane's remaining
          occupancy. *)
  | Healed of { node_steps : int }
      (** Fault absorbed: the engine adopted the corrupted heights and
          re-stabilized in [node_steps] reversal steps. *)
  | Noop  (** The op was inapplicable in the current shard state. *)
  | Snapshot of Metrics.totals
  | Rejected of [ `Overloaded ]
      (** Backpressure: the shard's bounded queue was full at admission. *)

val to_line : t -> string
(** Workload-file line: ["route S SRC"], ["down S U V"], ["up S U V"],
    ["crash S"], ["inject S SRC K"], ["forward S K"],
    ["corrupt S SEED MAG"], ["flip S NODE BIT"], ["stats"]. *)

val of_line : string -> (t, string) result
(** Inverse of {!to_line}; rejects malformed lines with a message. *)

val response_to_string : response -> string
(** Canonical deterministic rendering (used for fingerprints). *)

val pp : Format.formatter -> t -> unit
val pp_response : Format.formatter -> response -> unit
