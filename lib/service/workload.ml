open Lr_graph

type mix = { route : int; churn : int; crash : int }
type pmix = { inject : int; forward : int }

type spec = {
  shards : int;
  nodes : int;
  extra_edges : int;
  seed : int;
  ops : int;
  mix : mix;
  pmix : pmix;
  burst : int;
  skew : float;
  stats_every : int;
}

let default_mix = { route = 90; churn = 9; crash = 1 }
let no_packets = { inject = 0; forward = 0 }
let default_pmix = { inject = 30; forward = 10 }

let validate_spec s =
  if s.shards < 1 then invalid_arg "Workload: need at least one shard";
  if s.nodes < 2 then invalid_arg "Workload: shards need at least 2 nodes";
  if s.extra_edges < 0 then invalid_arg "Workload: negative extra_edges";
  if s.ops < 0 then invalid_arg "Workload: negative op count";
  if s.mix.route < 0 || s.mix.churn < 0 || s.mix.crash < 0 then
    invalid_arg "Workload: negative mix weight";
  if s.pmix.inject < 0 || s.pmix.forward < 0 then
    invalid_arg "Workload: negative packet-mix weight";
  if s.mix.route + s.mix.churn + s.mix.crash + s.pmix.inject + s.pmix.forward
     <= 0
  then invalid_arg "Workload: empty mix";
  if s.burst < 1 then invalid_arg "Workload: burst must be >= 1";
  if s.skew < 0.0 then invalid_arg "Workload: negative skew";
  if s.stats_every < 0 then invalid_arg "Workload: negative stats_every"

let rng_of spec salt = Random.State.make [| 0x5eed; spec.seed; salt |]

(* Cumulative Zipf weights over shard ids; sampling is a linear scan
   (shard counts are small — tens, not thousands). *)
let popularity spec =
  let cum = Array.make spec.shards 0.0 in
  let total = ref 0.0 in
  for i = 0 to spec.shards - 1 do
    total := !total +. (float_of_int (i + 1) ** -.spec.skew);
    cum.(i) <- !total
  done;
  cum

let pick_shard rng cum =
  let total = cum.(Array.length cum - 1) in
  let r = Random.State.float rng total in
  let rec scan i = if r <= cum.(i) || i = Array.length cum - 1 then i else scan (i + 1) in
  scan 0

let generate spec =
  validate_spec spec;
  let rng = rng_of spec 0 in
  let cum = popularity spec in
  let mix_total =
    spec.mix.route + spec.mix.churn + spec.mix.crash + spec.pmix.inject
    + spec.pmix.forward
  in
  let distinct_pair () =
    let u = Random.State.int rng spec.nodes in
    let rec other () =
      let v = Random.State.int rng spec.nodes in
      if v = u then other () else v
    in
    (u, other ())
  in
  Array.init spec.ops (fun k ->
      if spec.stats_every > 0 && (k + 1) mod spec.stats_every = 0 then Op.Stats
      else
        let shard = pick_shard rng cum in
        let roll = Random.State.int rng mix_total in
        if roll < spec.mix.route then
          Op.Route { shard; src = Random.State.int rng spec.nodes }
        else if roll < spec.mix.route + spec.mix.churn then begin
          let u, v = distinct_pair () in
          if Random.State.bool rng then Op.Link_down { shard; u; v }
          else Op.Link_up { shard; u; v }
        end
        else if roll < spec.mix.route + spec.mix.churn + spec.mix.crash then
          Op.Crash_destination { shard }
        else if
          roll < spec.mix.route + spec.mix.churn + spec.mix.crash
                 + spec.pmix.inject
        then
          Op.Inject
            { shard; src = Random.State.int rng spec.nodes; count = spec.burst }
        else Op.Forward { shard; slots = spec.burst })

let shard_config spec shard =
  Linkrev.Config.of_instance
    (Generators.random_connected_dag
       (rng_of spec (shard + 1))
       ~n:spec.nodes ~extra_edges:spec.extra_edges)

let shard_configs spec =
  validate_spec spec;
  Array.init spec.shards (shard_config spec)

let magic = "lrw1"

let save path spec ops =
  validate_spec spec;
  if Array.length ops <> spec.ops then
    invalid_arg "Workload.save: op count does not match the spec";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "%s\n" magic;
      Printf.fprintf oc "shards %d\n" spec.shards;
      Printf.fprintf oc "nodes %d\n" spec.nodes;
      Printf.fprintf oc "extra-edges %d\n" spec.extra_edges;
      Printf.fprintf oc "seed %d\n" spec.seed;
      Printf.fprintf oc "mix %d %d %d\n" spec.mix.route spec.mix.churn
        spec.mix.crash;
      Printf.fprintf oc "pmix %d %d\n" spec.pmix.inject spec.pmix.forward;
      Printf.fprintf oc "burst %d\n" spec.burst;
      Printf.fprintf oc "skew %.17g\n" spec.skew;
      Printf.fprintf oc "stats-every %d\n" spec.stats_every;
      Printf.fprintf oc "ops %d\n" spec.ops;
      Array.iter (fun op -> Printf.fprintf oc "%s\n" (Op.to_line op)) ops)

let valid_op spec = function
  | Op.Stats -> Ok ()
  | Op.Route { shard; src } ->
      if shard < 0 || shard >= spec.shards then Error "shard out of range"
      else if src < 0 || src >= spec.nodes then Error "source out of range"
      else Ok ()
  | Op.Link_down { shard; u; v } | Op.Link_up { shard; u; v } ->
      if shard < 0 || shard >= spec.shards then Error "shard out of range"
      else if u < 0 || u >= spec.nodes || v < 0 || v >= spec.nodes then
        Error "endpoint out of range"
      else if u = v then Error "self-loop"
      else Ok ()
  | Op.Crash_destination { shard } ->
      if shard < 0 || shard >= spec.shards then Error "shard out of range"
      else Ok ()
  | Op.Inject { shard; src; count } ->
      if shard < 0 || shard >= spec.shards then Error "shard out of range"
      else if src < 0 || src >= spec.nodes then Error "source out of range"
      else if count < 0 then Error "negative inject count"
      else Ok ()
  | Op.Forward { shard; slots } ->
      if shard < 0 || shard >= spec.shards then Error "shard out of range"
      else if slots < 1 then Error "non-positive forward slots"
      else Ok ()
  | Op.Corrupt { shard; seed = _; magnitude } ->
      if shard < 0 || shard >= spec.shards then Error "shard out of range"
      else if magnitude < 0 then Error "negative corrupt magnitude"
      else Ok ()
  | Op.Flip { shard; node; bit } ->
      if shard < 0 || shard >= spec.shards then Error "shard out of range"
      else if node < 0 || node >= spec.nodes then Error "node out of range"
      else if bit < 0 || bit > 61 then Error "flip bit out of range"
      else Ok ()

let load path =
  let ( let* ) = Result.bind in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let line_no = ref 0 in
      let next () =
        match In_channel.input_line ic with
        | Some l ->
            incr line_no;
            Ok (String.trim l)
        | None -> Error (Printf.sprintf "%s: unexpected end of file" path)
      in
      let fail fmt = Printf.ksprintf (fun m -> Error (path ^ ": " ^ m)) fmt in
      let key_int key line =
        match String.split_on_char ' ' line with
        | [ k; v ] when k = key -> (
            match int_of_string_opt v with
            | Some n -> Ok n
            | None -> fail "line %d: bad %s value %S" !line_no key v)
        | _ -> fail "line %d: expected %S header, got %S" !line_no key line
      in
      let* first = next () in
      let* () =
        if first = magic then Ok ()
        else fail "not a %s workload file (first line %S)" magic first
      in
      let* shards = Result.bind (next ()) (key_int "shards") in
      let* nodes = Result.bind (next ()) (key_int "nodes") in
      let* extra_edges = Result.bind (next ()) (key_int "extra-edges") in
      let* seed = Result.bind (next ()) (key_int "seed") in
      let* mix =
        let* line = next () in
        match String.split_on_char ' ' line with
        | [ "mix"; r; c; x ] -> (
            match
              (int_of_string_opt r, int_of_string_opt c, int_of_string_opt x)
            with
            | Some route, Some churn, Some crash -> Ok { route; churn; crash }
            | _ -> fail "line %d: bad mix %S" !line_no line)
        | _ -> fail "line %d: expected mix header, got %S" !line_no line
      in
      (* The packet headers postdate the format: absent on old files,
         which read as a packet-free mix. *)
      let* pmix, burst, skew_line =
        let* line = next () in
        match String.split_on_char ' ' line with
        | [ "pmix"; i; f ] -> (
            match (int_of_string_opt i, int_of_string_opt f) with
            | Some inject, Some forward ->
                let* burst = Result.bind (next ()) (key_int "burst") in
                let* skew_line = next () in
                Ok ({ inject; forward }, burst, skew_line)
            | _ -> fail "line %d: bad pmix %S" !line_no line)
        | _ -> Ok (no_packets, 1, line)
      in
      let* skew =
        match String.split_on_char ' ' skew_line with
        | [ "skew"; v ] -> (
            match float_of_string_opt v with
            | Some f -> Ok f
            | None -> fail "line %d: bad skew %S" !line_no v)
        | _ -> fail "line %d: expected skew header, got %S" !line_no skew_line
      in
      let* stats_every = Result.bind (next ()) (key_int "stats-every") in
      let* ops_count = Result.bind (next ()) (key_int "ops") in
      let spec =
        { shards; nodes; extra_edges; seed; ops = ops_count; mix; pmix; burst;
          skew; stats_every }
      in
      let* () =
        match validate_spec spec with
        | () -> Ok ()
        | exception Invalid_argument m -> fail "invalid spec: %s" m
      in
      let ops = Array.make ops_count Op.Stats in
      let rec read k =
        if k = ops_count then Ok ()
        else
          let* line = next () in
          if line = "" then read k
          else
            let* op =
              match Op.of_line line with
              | Ok op -> Ok op
              | Error e -> fail "line %d: %s" !line_no e
            in
            let* () =
              match valid_op spec op with
              | Ok () -> Ok ()
              | Error e -> fail "line %d: %s (%S)" !line_no e line
            in
            ops.(k) <- op;
            read (k + 1)
      in
      let* () = read 0 in
      Ok (spec, ops))

let describe spec =
  Printf.sprintf
    "%d ops over %d shards (%d nodes, %d extra edges each), seed %d, mix \
     %d/%d/%d route/churn/crash, pmix %d/%d inject/forward (burst %d), skew \
     %.2f"
    spec.ops spec.shards spec.nodes spec.extra_edges spec.seed spec.mix.route
    spec.mix.churn spec.mix.crash spec.pmix.inject spec.pmix.forward spec.burst
    spec.skew
