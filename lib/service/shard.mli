(** One service shard: a destination-oriented link reversal instance
    kept alive under churn by {!Lr_routing.Maintenance}.

    Every [Route] response is validated in place — a returned path must
    be strictly height- and orientation-descending into the shard's
    destination, and a [No_route] answer must be honest (the source
    really has no directed path) — so the serving layer continuously
    re-checks the paper's acyclicity guarantee on live traffic instead
    of trusting the engine.  A destination crash is delegated to
    {!Lr_routing.Failover} for the election; the shard then adopts the
    elected leader by rebuilding its maintenance session on the
    crash-stripped graph (the crashed node stays in the skeleton,
    isolated and marked dead). *)

open Lr_graph
open Lr_routing

type t

type engine_kind = Fast | Reference
(** Which maintenance tier serves this shard.  [Fast] is
    {!Lr_routing.Fast_maintenance} — flat arrays, sink worklist,
    next-hop route cache; [Reference] is the persistent
    {!Lr_routing.Maintenance}.  The two are byte-equivalent in every
    response, counter and fingerprint (the fast engine replicates the
    reference's sink-selection order exactly); [Reference] stays
    available as the differential oracle and as a fallback. *)

val create :
  ?engine:engine_kind ->
  ?packet_queue:int ->
  rule:Maintenance.rule ->
  id:int ->
  Linkrev.Config.t ->
  t
(** Stabilizes the initial instance (like [Maintenance.create]).
    [engine] defaults to [Fast]; [packet_queue] (default 64) bounds
    each node's queue on the shard's packet-forwarding plane.

    The plane ({!Lr_packet.Plane}) is created lazily at the first
    [Inject]/[Forward] op from a snapshot of the shard's current graph,
    follows every subsequent link event, and is discarded on failover
    (in-flight packets are lost with the destination).  Its height
    seeding is a deterministic topological order of the snapshot, so
    packet responses — like all others — are byte-identical across
    engine tiers. *)

val id : t -> int
val engine_kind : t -> engine_kind
val destination : t -> Node.t
val graph : t -> Digraph.t
val dead : t -> Node.Set.t
(** Crashed former destinations (isolated; excluded from elections). *)

val epoch : t -> int
(** Number of destination failovers survived. *)

val total_work : t -> int
(** Cumulative reversal steps across all epochs. *)

val cache_stats : t -> Fast_maintenance.cache_stats option
(** Next-hop cache counters of the current maintenance session; [None]
    on the reference engine (which has no cache). *)

val in_dest_component : t -> Node.t -> bool
(** Membership in the destination's component — O(α) on the fast tier
    (the union-find seniority index), a component walk on the
    reference.  False for unknown nodes. *)

val component_size : t -> int
(** Nodes currently in the destination's component. *)

type outcome = {
  response : Op.response;
  work : int;  (** Reversal steps this op performed. *)
  validation_failures : int;  (** 0 or 1. *)
}

val apply : ?validate:bool -> t -> Op.t -> outcome
(** Execute one op ([Stats] and [Rejected] never reach a shard; [Stats]
    raises [Invalid_argument]).  [validate] (default [true]) controls
    the in-service route check and the post-heal consistency check of
    the chaos ops ([Corrupt]/[Flip]). *)

val hostile_height : seed:int -> magnitude:int -> int -> int * int
(** The canonical hostile height assignment a [Corrupt] fault adopts: a
    pure function of [(seed, node)] with both components bounded by
    [magnitude] in absolute value.  Exposed so the chaos harness can
    drive engines outside the service through the {e same} corruption
    and compare recoveries byte for byte. *)

val height_pair : t -> Node.t -> int * int
(** The node's current [(pa, pb)] height on the shard's engine. *)

val plane_queued : t -> int
(** Packets in flight on the forwarding plane ([0] before the first
    packet op and after a failover). *)

val consistent : t -> bool
(** The shard's structural invariant, for tests: graph acyclic and the
    destination's component destination-oriented. *)
