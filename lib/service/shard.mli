(** One service shard: a destination-oriented link reversal instance
    kept alive under churn by {!Lr_routing.Maintenance}.

    Every [Route] response is validated in place — a returned path must
    be strictly height- and orientation-descending into the shard's
    destination, and a [No_route] answer must be honest (the source
    really has no directed path) — so the serving layer continuously
    re-checks the paper's acyclicity guarantee on live traffic instead
    of trusting the engine.  A destination crash is delegated to
    {!Lr_routing.Failover} for the election; the shard then adopts the
    elected leader by rebuilding its maintenance session on the
    crash-stripped graph (the crashed node stays in the skeleton,
    isolated and marked dead). *)

open Lr_graph
open Lr_routing

type t

val create : rule:Maintenance.rule -> id:int -> Linkrev.Config.t -> t
(** Stabilizes the initial instance (like [Maintenance.create]). *)

val id : t -> int
val destination : t -> Node.t
val graph : t -> Digraph.t
val dead : t -> Node.Set.t
(** Crashed former destinations (isolated; excluded from elections). *)

val epoch : t -> int
(** Number of destination failovers survived. *)

val total_work : t -> int
(** Cumulative reversal steps across all epochs. *)

type outcome = {
  response : Op.response;
  work : int;  (** Reversal steps this op performed. *)
  validation_failures : int;  (** 0 or 1. *)
}

val apply : ?validate:bool -> t -> Op.t -> outcome
(** Execute one op ([Stats] and [Rejected] never reach a shard; [Stats]
    raises [Invalid_argument]).  [validate] (default [true]) controls
    the in-service route check. *)

val consistent : t -> bool
(** The shard's structural invariant, for tests: graph acyclic and the
    destination's component destination-oriented. *)
