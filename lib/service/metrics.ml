type counters = {
  mutable served : int;
  mutable routes : int;
  mutable no_routes : int;
  mutable link_events : int;
  mutable noops : int;
  mutable crashes : int;
  mutable partitions : int;
  mutable reversal_steps : int;
  mutable rejected : int;
  mutable validation_failures : int;
  mutable max_queue_depth : int;
}

type totals = {
  served : int;
  routes : int;
  no_routes : int;
  link_events : int;
  noops : int;
  crashes : int;
  partitions : int;
  reversal_steps : int;
  rejected : int;
  validation_failures : int;
  max_queue_depth : int;
  stats_ops : int;
}

(* Growable latency sample buffer — one per shard, appended to only by
   the worker currently owning that shard. *)
type samples = { mutable data : float array; mutable len : int }

type t = {
  counters : counters array;
  latencies : samples array;
  mutable stats_ops : int;
}

let fresh_counters () =
  {
    served = 0;
    routes = 0;
    no_routes = 0;
    link_events = 0;
    noops = 0;
    crashes = 0;
    partitions = 0;
    reversal_steps = 0;
    rejected = 0;
    validation_failures = 0;
    max_queue_depth = 0;
  }

let create ~shards =
  if shards < 1 then invalid_arg "Metrics.create: need at least one shard";
  {
    counters = Array.init shards (fun _ -> fresh_counters ());
    latencies = Array.init shards (fun _ -> { data = Array.make 64 0.0; len = 0 });
    stats_ops = 0;
  }

let num_shards t = Array.length t.counters
let shard t i = t.counters.(i)
let bump_stats t = t.stats_ops <- t.stats_ops + 1

let record_latency t ~shard dt =
  let b = t.latencies.(shard) in
  if b.len = Array.length b.data then begin
    let grown = Array.make (2 * b.len) 0.0 in
    Array.blit b.data 0 grown 0 b.len;
    b.data <- grown
  end;
  b.data.(b.len) <- dt;
  b.len <- b.len + 1

let totals_of_counters ~stats_ops (c : counters) =
  {
    served = c.served + stats_ops;
    routes = c.routes;
    no_routes = c.no_routes;
    link_events = c.link_events;
    noops = c.noops;
    crashes = c.crashes;
    partitions = c.partitions;
    reversal_steps = c.reversal_steps;
    rejected = c.rejected;
    validation_failures = c.validation_failures;
    max_queue_depth = c.max_queue_depth;
    stats_ops;
  }

let per_shard t =
  Array.map (totals_of_counters ~stats_ops:0) t.counters

let totals t =
  let acc = fresh_counters () in
  Array.iter
    (fun (c : counters) ->
      acc.served <- acc.served + c.served;
      acc.routes <- acc.routes + c.routes;
      acc.no_routes <- acc.no_routes + c.no_routes;
      acc.link_events <- acc.link_events + c.link_events;
      acc.noops <- acc.noops + c.noops;
      acc.crashes <- acc.crashes + c.crashes;
      acc.partitions <- acc.partitions + c.partitions;
      acc.reversal_steps <- acc.reversal_steps + c.reversal_steps;
      acc.rejected <- acc.rejected + c.rejected;
      acc.validation_failures <- acc.validation_failures + c.validation_failures;
      acc.max_queue_depth <- max acc.max_queue_depth c.max_queue_depth)
    t.counters;
  totals_of_counters ~stats_ops:t.stats_ops acc

type snapshot = {
  snapshot_totals : totals;
  snapshot_per_shard : totals array;
  latency : Lr_analysis.Stats.percentiles;
  latency_samples : int;
}

let snapshot t =
  let all =
    Array.fold_left
      (fun acc b ->
        let rec take i acc = if i < 0 then acc else take (i - 1) (b.data.(i) :: acc) in
        take (b.len - 1) acc)
      [] t.latencies
  in
  {
    snapshot_totals = totals t;
    snapshot_per_shard = per_shard t;
    latency = Lr_analysis.Stats.percentiles all;
    latency_samples = List.length all;
  }

let totals_line c =
  Printf.sprintf
    "served=%d routes=%d no_routes=%d link_events=%d noops=%d crashes=%d \
     partitions=%d reversal_steps=%d rejected=%d validation_failures=%d \
     max_queue_depth=%d stats_ops=%d"
    c.served c.routes c.no_routes c.link_events c.noops c.crashes c.partitions
    c.reversal_steps c.rejected c.validation_failures c.max_queue_depth
    c.stats_ops
