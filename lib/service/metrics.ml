type counters = {
  mutable served : int;
  mutable routes : int;
  mutable no_routes : int;
  mutable link_events : int;
  mutable noops : int;
  mutable crashes : int;
  mutable partitions : int;
  mutable reversal_steps : int;
  mutable rejected : int;
  mutable validation_failures : int;
  mutable packets_in : int;
  mutable packets_dropped : int;
  mutable packets_out : int;
  mutable packet_reversals : int;
  mutable packet_hops : int;
  mutable packet_queue_peak : int;
  mutable faults : int;
}

type totals = {
  served : int;
  routes : int;
  no_routes : int;
  link_events : int;
  noops : int;
  crashes : int;
  partitions : int;
  reversal_steps : int;
  rejected : int;
  validation_failures : int;
  packets_in : int;
  packets_dropped : int;
  packets_out : int;
  packet_reversals : int;
  packet_hops : int;
  packet_queue_peak : int;
  faults : int;
  stats_ops : int;
}

(* Ring-occupancy and steal counters.  Occupancy fields are written by
   the single producer (the dispatcher samples depth after each push);
   steal counters are touched by whichever loop is acting as a thief
   at that moment, hence atomic.  All of them are wall-clock-shaped
   observability — like latency they are deliberately excluded from
   [totals_line] and the determinism fingerprint. *)
type ring_counters = {
  mutable max_depth : int;
  mutable depth_sum : int;
  mutable depth_samples : int;
  steal_attempts : int Atomic.t;
  stolen : int Atomic.t;
}

type ring_totals = {
  max_depth : int;
  mean_depth : float;
  depth_samples : int;
  steal_attempts : int;
  stolen : int;
}

(* Growable latency sample buffer — one per shard, appended to only by
   the worker currently owning that shard. *)
type samples = { mutable data : float array; mutable len : int }

type t = {
  counters : counters array;
  rings : ring_counters array;
  latencies : samples array;
  (* Wall-clock heal time of each chaos op (Corrupt/Flip), per shard —
     the recovery SLO's sample set.  Non-deterministic, so excluded
     from [totals_line] and the fingerprint, like latency. *)
  recoveries : samples array;
  mutable stats_ops : int;
}

let fresh_counters () =
  {
    served = 0;
    routes = 0;
    no_routes = 0;
    link_events = 0;
    noops = 0;
    crashes = 0;
    partitions = 0;
    reversal_steps = 0;
    rejected = 0;
    validation_failures = 0;
    packets_in = 0;
    packets_dropped = 0;
    packets_out = 0;
    packet_reversals = 0;
    packet_hops = 0;
    packet_queue_peak = 0;
    faults = 0;
  }

let fresh_ring () =
  {
    max_depth = 0;
    depth_sum = 0;
    depth_samples = 0;
    steal_attempts = Atomic.make 0;
    stolen = Atomic.make 0;
  }

let create ~shards =
  if shards < 1 then invalid_arg "Metrics.create: need at least one shard";
  {
    counters = Array.init shards (fun _ -> fresh_counters ());
    rings = Array.init shards (fun _ -> fresh_ring ());
    latencies = Array.init shards (fun _ -> { data = Array.make 64 0.0; len = 0 });
    recoveries = Array.init shards (fun _ -> { data = Array.make 8 0.0; len = 0 });
    stats_ops = 0;
  }

let num_shards t = Array.length t.counters
let shard t i = t.counters.(i)
let ring t i = t.rings.(i)
let bump_stats t = t.stats_ops <- t.stats_ops + 1

let record_depth t ~shard depth =
  let r = t.rings.(shard) in
  if depth > r.max_depth then r.max_depth <- depth;
  r.depth_sum <- r.depth_sum + depth;
  r.depth_samples <- r.depth_samples + 1

let note_steal_attempt t ~shard =
  Atomic.incr t.rings.(shard).steal_attempts

let note_stolen t ~shard n =
  ignore (Atomic.fetch_and_add t.rings.(shard).stolen n)

let push_sample b dt =
  if b.len = Array.length b.data then begin
    let grown = Array.make (2 * b.len) 0.0 in
    Array.blit b.data 0 grown 0 b.len;
    b.data <- grown
  end;
  b.data.(b.len) <- dt;
  b.len <- b.len + 1

let record_latency t ~shard dt = push_sample t.latencies.(shard) dt
let record_recovery t ~shard dt = push_sample t.recoveries.(shard) dt

let totals_of_counters ~stats_ops (c : counters) =
  {
    served = c.served + stats_ops;
    routes = c.routes;
    no_routes = c.no_routes;
    link_events = c.link_events;
    noops = c.noops;
    crashes = c.crashes;
    partitions = c.partitions;
    reversal_steps = c.reversal_steps;
    rejected = c.rejected;
    validation_failures = c.validation_failures;
    packets_in = c.packets_in;
    packets_dropped = c.packets_dropped;
    packets_out = c.packets_out;
    packet_reversals = c.packet_reversals;
    packet_hops = c.packet_hops;
    packet_queue_peak = c.packet_queue_peak;
    faults = c.faults;
    stats_ops;
  }

let per_shard t =
  Array.map (totals_of_counters ~stats_ops:0) t.counters

let totals t =
  let acc = fresh_counters () in
  Array.iter
    (fun (c : counters) ->
      acc.served <- acc.served + c.served;
      acc.routes <- acc.routes + c.routes;
      acc.no_routes <- acc.no_routes + c.no_routes;
      acc.link_events <- acc.link_events + c.link_events;
      acc.noops <- acc.noops + c.noops;
      acc.crashes <- acc.crashes + c.crashes;
      acc.partitions <- acc.partitions + c.partitions;
      acc.reversal_steps <- acc.reversal_steps + c.reversal_steps;
      acc.rejected <- acc.rejected + c.rejected;
      acc.validation_failures <- acc.validation_failures + c.validation_failures;
      acc.packets_in <- acc.packets_in + c.packets_in;
      acc.packets_dropped <- acc.packets_dropped + c.packets_dropped;
      acc.packets_out <- acc.packets_out + c.packets_out;
      acc.packet_reversals <- acc.packet_reversals + c.packet_reversals;
      acc.packet_hops <- acc.packet_hops + c.packet_hops;
      acc.packet_queue_peak <- max acc.packet_queue_peak c.packet_queue_peak;
      acc.faults <- acc.faults + c.faults)
    t.counters;
  totals_of_counters ~stats_ops:t.stats_ops acc

let ring_totals_of (r : ring_counters) =
  {
    max_depth = r.max_depth;
    mean_depth =
      (if r.depth_samples = 0 then 0.0
       else float_of_int r.depth_sum /. float_of_int r.depth_samples);
    depth_samples = r.depth_samples;
    steal_attempts = Atomic.get r.steal_attempts;
    stolen = Atomic.get r.stolen;
  }

let per_shard_rings t = Array.map ring_totals_of t.rings

let rings_total t =
  let max_depth = ref 0
  and depth_sum = ref 0
  and depth_samples = ref 0
  and steal_attempts = ref 0
  and stolen = ref 0 in
  Array.iter
    (fun (r : ring_counters) ->
      if r.max_depth > !max_depth then max_depth := r.max_depth;
      depth_sum := !depth_sum + r.depth_sum;
      depth_samples := !depth_samples + r.depth_samples;
      steal_attempts := !steal_attempts + Atomic.get r.steal_attempts;
      stolen := !stolen + Atomic.get r.stolen)
    t.rings;
  {
    max_depth = !max_depth;
    mean_depth =
      (if !depth_samples = 0 then 0.0
       else float_of_int !depth_sum /. float_of_int !depth_samples);
    depth_samples = !depth_samples;
    steal_attempts = !steal_attempts;
    stolen = !stolen;
  }

type snapshot = {
  snapshot_totals : totals;
  snapshot_per_shard : totals array;
  snapshot_rings : ring_totals array;
  rings_totals : ring_totals;
  latency : Lr_analysis.Stats.percentiles;
  latency_samples : int;
  recovery : Lr_analysis.Stats.percentiles;
  recovery_samples : int;
}

let collect buffers =
  Array.fold_left
    (fun acc b ->
      let rec take i acc = if i < 0 then acc else take (i - 1) (b.data.(i) :: acc) in
      take (b.len - 1) acc)
    [] buffers

let snapshot t =
  let all = collect t.latencies in
  let recov = collect t.recoveries in
  {
    snapshot_totals = totals t;
    snapshot_per_shard = per_shard t;
    snapshot_rings = per_shard_rings t;
    rings_totals = rings_total t;
    latency = Lr_analysis.Stats.percentiles all;
    latency_samples = List.length all;
    recovery = Lr_analysis.Stats.percentiles recov;
    recovery_samples = List.length recov;
  }

let totals_line c =
  Printf.sprintf
    "served=%d routes=%d no_routes=%d link_events=%d noops=%d crashes=%d \
     partitions=%d reversal_steps=%d rejected=%d validation_failures=%d \
     packets_in=%d packets_dropped=%d packets_out=%d packet_reversals=%d \
     packet_hops=%d packet_queue_peak=%d faults=%d stats_ops=%d"
    c.served c.routes c.no_routes c.link_events c.noops c.crashes c.partitions
    c.reversal_steps c.rejected c.validation_failures c.packets_in
    c.packets_dropped c.packets_out c.packet_reversals c.packet_hops
    c.packet_queue_peak c.faults c.stats_ops

let ring_line r =
  Printf.sprintf
    "max_depth=%d mean_depth=%.1f depth_samples=%d steal_attempts=%d stolen=%d"
    r.max_depth r.mean_depth r.depth_samples r.steal_attempts r.stolen
