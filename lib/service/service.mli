(** The sharded, domain-parallel routing service.

    {2 Execution model}

    The default dispatch is {b free-running}: each destination shard
    owns a bounded lock-free SPSC op ring ({!Lr_parallel.Spsc}).  The
    dispatcher pushes op indices into the rings while [jobs - 1]
    resident run-to-completion loops (launched once on the persistent
    pool, alive until the shutdown sentinel) drain them — there is no
    window and no cross-shard barrier anywhere.  Backpressure is
    per-ring occupancy: an op arriving at a full ring is answered
    [Rejected `Overloaded] on the spot, so queue depth — not a window
    budget — is the overload signal.

    {b Per-shard serialization} survives the loss of the barrier via
    ownership tokens: a loop may pop a shard's ring and touch its
    engine only while holding the shard's token (an [Atomic] CAS), and
    token handoffs are acquire/release edges.  That is also what makes
    {b work stealing} safe for Zipf-skewed workloads: an idle loop
    claims a busy shard's token and drains a batch ([steal_batch]) on
    the owner's behalf — consumption migrates, interleaving never
    happens.  Each loop's pops are checked against a per-shard
    sequence (op indices must strictly increase), so a serialization
    break is an immediate failure, not a silent corruption.

    A [Stats] op quiesces the service (every admitted op completed,
    the dispatcher moonlighting as a thief while it waits) before
    snapshotting, so snapshots count exactly the ops admitted before
    them.  With [jobs = 1] the dispatcher is also the only consumer:
    it serves a full ring inline instead of rejecting (overload means
    nothing when producer and consumer share one domain).

    {2 Determinism}

    Free-running responses land in per-op slots and every shard's ops
    execute in admission order, so on any stream where nothing is
    rejected the responses, counters and {!fingerprint} are identical
    to the deterministic path's — that equality is checked
    differentially in the bench and CI.  {e Which} ops are rejected
    under genuine overload, and the ring-occupancy/steal observability
    in {!Metrics.ring_totals}, are wall-clock facts and the two
    deliberately non-deterministic parts of the free-running mode.

    Setting [deterministic = true] selects the pre-rearchitecture
    {b windowed} dispatcher, kept verbatim as the differential oracle:
    ops are admitted in windows of [window] ops, each window drained
    as one barrier-synchronized pool round, rejections spend window
    budget, and everything — including rejections — depends only on
    the op stream. *)

type config = {
  jobs : int;
      (** Domains.  Free-running: one dispatcher plus [jobs - 1]
          resident shard loops.  Windowed: the dispatcher participates
          in rounds. *)
  queue_bound : int;
      (** Per-shard ring capacity (rounded up to a power of two by the
          ring; the rounded value is the effective bound).  On the
          windowed path, the per-shard queue capacity within a
          window. *)
  window : int;
      (** Ops consumed from the stream per round — deterministic
          (windowed) mode only. *)
  rule : Lr_routing.Maintenance.rule;
  validate : bool;  (** In-service route validation (default on). *)
  engine : Shard.engine_kind;
      (** Maintenance tier for every shard ({!Shard.engine_kind}).
          Responses, counters and the fingerprint are byte-identical
          across the two. *)
  deterministic : bool;
      (** [true] selects the windowed barrier dispatcher (the
          differential oracle); [false] — the default — the
          barrier-free rings. *)
  steal_batch : int;
      (** Max ops a thief drains per stolen token claim.  Small enough
          to return the shard to its owner promptly, large enough to
          amortize the claim. *)
  pin_loops : bool;
      (** By default ([false]) the service spawns at most
          [available domains - 1] resident loops no matter how large
          [jobs] is: in OCaml 5 {e every} live domain — even one
          parked in a blocking section — is woken into each minor-GC
          stop-the-world barrier, so domains beyond the hardware are
          pure tax (measured 15–25% on one core).  Requested [jobs]
          beyond the clamp run as if the hardware were the limit;
          responses and counters are unaffected (jobs never change
          results).  [true] pins exactly [jobs - 1] loops regardless,
          so tests and benches can exercise the token/steal protocol
          on any host. *)
  packet_queue : int;
      (** Per-node queue bound on each shard's packet-forwarding plane
          ({!Shard.create}). *)
}

val default_config : config
(** [jobs = 1], [queue_bound = 128], [window = 256], Partial Reversal,
    validation on, the fast engine, free-running dispatch,
    [steal_batch = 64], loops clamped to the hardware,
    [packet_queue = 64]. *)

type t

val create : ?trace_dir:string -> config -> Linkrev.Config.t array -> t
(** One shard per instance, each stabilized on creation.  When
    [trace_dir] is given, the stabilization of every shard's initial
    orientation is recorded there as a replayable LRT1 trace
    ([shard-NNN.lrt], via {!Lr_trace.Record.fast} — auditable with
    [linkrev trace audit]).  @raise Invalid_argument on an empty
    instance array or a non-positive
    [jobs]/[queue_bound]/[window]/[steal_batch]. *)

val num_shards : t -> int
val shard : t -> int -> Shard.t
val config : t -> config

val run : t -> Op.t array -> Op.response array
(** Execute the stream; slot [i] answers op [i].  Ops must name shards
    in range ([Workload.load]/[generate] guarantee it).
    @raise Invalid_argument on an out-of-range shard id.
    @raise Failure if a shard loop breaks per-shard serialization or
    loses an op in flight (both are engine bugs, checked live). *)

val metrics : t -> Metrics.snapshot

val fingerprint : Op.response array -> Metrics.snapshot -> string
(** Hex digest over the canonical rendering of all responses plus all
    deterministic counters (latency and ring observability excluded) —
    byte-identical across [jobs] settings and across
    free-running/deterministic dispatch whenever the rejection sets
    agree (always, absent overload). *)

val rejected_in : Op.response array -> int
(** Count of [Rejected] responses — must equal the metrics' rejected
    counter (the "no leaked rejections" check). *)

val shutdown : t -> unit
(** Join the pool's domains.  Idempotent. *)
