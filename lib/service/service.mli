(** The sharded, domain-parallel routing service.

    Execution model: the dispatcher admits ops from the stream in
    windows.  Within a window each op is appended to its shard's
    bounded queue — or answered [Rejected `Overloaded] on the spot when
    the queue is full, so memory never grows past
    [window + shards * queue_bound] pending ops.  The window is then
    executed as one round on the resident domain pool: each busy shard
    is drained by exactly one worker, in admission order.  That gives
    the two guarantees the serving layer is built on:

    - {b per-shard serialization} — a shard's ops execute in stream
      order (windows are admitted in order and drained fully before the
      next one starts);
    - {b determinism} — which ops are admitted, every response, and
      every counter depend only on the op stream, never on the domain
      count or scheduling (responses land in per-op slots, counters are
      per-shard).  Only latency {e values} are wall-clock measurements.

    A [Stats] op is a dispatch barrier: it terminates the current
    window and snapshots the counters once every earlier op has
    completed, so snapshots are deterministic too. *)

type config = {
  jobs : int;  (** Domains (the dispatcher participates in rounds). *)
  queue_bound : int;  (** Per-shard queue capacity within a window. *)
  window : int;
      (** Ops consumed from the stream per round (admitted or rejected
          — a rejection spends window budget too, so an overloaded
          round still ends and drains). *)
  rule : Lr_routing.Maintenance.rule;
  validate : bool;  (** In-service route validation (default on). *)
  engine : Shard.engine_kind;
      (** Maintenance tier for every shard ({!Shard.engine_kind}).
          Responses, counters and the fingerprint are byte-identical
          across the two. *)
}

val default_config : config
(** [jobs = 1], [queue_bound = 128], [window = 256], Partial Reversal,
    validation on, the fast engine.  The window is deliberately close to
    the queue bound: a much larger window lets one hot shard overflow
    its queue inside a single round even at modest load. *)

type t

val create : ?trace_dir:string -> config -> Linkrev.Config.t array -> t
(** One shard per instance, each stabilized on creation.  When
    [trace_dir] is given, the stabilization of every shard's initial
    orientation is recorded there as a replayable LRT1 trace
    ([shard-NNN.lrt], via {!Lr_trace.Record.fast} — auditable with
    [linkrev trace audit]).  @raise Invalid_argument on an empty
    instance array or a non-positive [jobs]/[queue_bound]/[window]. *)

val num_shards : t -> int
val shard : t -> int -> Shard.t
val config : t -> config

val run : t -> Op.t array -> Op.response array
(** Execute the stream; slot [i] answers op [i].  Ops must name shards
    in range ([Workload.load]/[generate] guarantee it).
    @raise Invalid_argument on an out-of-range shard id. *)

val metrics : t -> Metrics.snapshot

val fingerprint : Op.response array -> Metrics.snapshot -> string
(** Hex digest over the canonical rendering of all responses plus all
    deterministic counters (latency excluded) — byte-identical across
    [jobs] settings for the same stream. *)

val rejected_in : Op.response array -> int
(** Count of [Rejected] responses — must equal the metrics' rejected
    counter (the "no leaked rejections" check). *)

val shutdown : t -> unit
(** Join the pool's domains.  Idempotent. *)
