open Lr_graph
open Lr_routing

type engine_kind = Fast | Reference

type engine = E_fast of Fast_maintenance.t | E_ref of Maintenance.t

type t = {
  sid : int;
  rule : Maintenance.rule;
  kind : engine_kind;
  packet_queue : int;
  mutable m : engine;
  (* The packet-forwarding plane, created lazily at the first packet op
     from a snapshot of the then-current graph and kept in sync with
     the engine through every subsequent link event.  Seeded from a
     deterministic topological order of that snapshot — never from
     engine internals — so responses stay byte-identical across
     maintenance tiers.  A failover discards it (in-flight packets go
     down with the crashed destination). *)
  mutable plane : Lr_packet.Plane.t option;
  mutable dead : Node.Set.t;
  mutable epoch : int;
  mutable work_base : int;  (* total_work of retired maintenance sessions *)
}

let make_engine kind rule config =
  match kind with
  | Fast -> E_fast (Fast_maintenance.create rule config)
  | Reference -> E_ref (Maintenance.create rule config)

let create ?(engine = Fast) ?(packet_queue = 64) ~rule ~id config =
  if packet_queue < 1 then invalid_arg "Shard.create: packet_queue must be >= 1";
  { sid = id; rule; kind = engine; packet_queue;
    m = make_engine engine rule config; plane = None;
    dead = Node.Set.empty; epoch = 0; work_base = 0 }

let id t = t.sid
let engine_kind t = t.kind

let destination t =
  match t.m with
  | E_fast f -> Fast_maintenance.destination f
  | E_ref m -> Maintenance.destination m

let graph t =
  match t.m with
  | E_fast f -> Fast_maintenance.graph f
  | E_ref m -> Maintenance.graph m

let dead t = t.dead
let epoch t = t.epoch

let total_work t =
  t.work_base
  + (match t.m with
    | E_fast f -> Fast_maintenance.total_work f
    | E_ref m -> Maintenance.total_work m)

let cache_stats t =
  match t.m with
  | E_fast f -> Some (Fast_maintenance.cache_stats f)
  | E_ref _ -> None

type outcome = {
  response : Op.response;
  work : int;
  validation_failures : int;
}

let mem_node t u =
  match t.m with
  | E_fast f -> Fast_maintenance.mem_node f u
  | E_ref m -> Node.Set.mem u (Digraph.nodes (Maintenance.graph m))

let mem_edge t u v =
  match t.m with
  | E_fast f -> Fast_maintenance.mem_edge f u v
  | E_ref m -> Digraph.mem_edge (Maintenance.graph m) u v

let edge_out t u v =
  match t.m with
  | E_fast f -> Fast_maintenance.edge_out f u v
  | E_ref m ->
      Digraph.direction_equal (Digraph.dir (Maintenance.graph m) u v) Digraph.Out

let compare_heights t u v =
  match t.m with
  | E_fast f -> Fast_maintenance.compare_heights f u v
  | E_ref m -> Maintenance.compare_heights m u v

let engine_route t src =
  match t.m with
  | E_fast f -> Fast_maintenance.route f src
  | E_ref m -> Maintenance.route m src

(* Undirected component of the destination on the reference tier — the
   oracle path, not the hot one. *)
let ref_dest_component m =
  let g = Maintenance.graph m in
  let rec grow frontier seen =
    if Node.Set.is_empty frontier then seen
    else
      let next =
        Node.Set.fold
          (fun u acc -> Node.Set.union acc (Digraph.neighbors g u))
          frontier Node.Set.empty
      in
      let fresh = Node.Set.diff next seen in
      grow fresh (Node.Set.union seen fresh)
  in
  let d = Node.Set.singleton (Maintenance.destination m) in
  grow d d

let in_dest_component t u =
  match t.m with
  | E_fast f -> Fast_maintenance.in_dest_component f u
  | E_ref m -> mem_node t u && Node.Set.mem u (ref_dest_component m)

let component_size t =
  match t.m with
  | E_fast f -> Fast_maintenance.component_size f
  | E_ref m -> Node.Set.cardinal (ref_dest_component m)

(* Between ops the engine is stabilized, so membership in the
   destination's component coincides with "a directed path exists" —
   the fast tier answers the honesty check in O(α) instead of a BFS. *)
let has_path_to_destination t src =
  match t.m with
  | E_fast f -> Fast_maintenance.in_dest_component f src
  | E_ref m -> Digraph.has_path (Maintenance.graph m) src (Maintenance.destination m)

(* The in-service checker: a path must start at the source, end at the
   destination, and descend strictly in both the orientation and the
   height order at every hop.  Strict height descent rules out loops on
   its own, so a validated path is a witness of acyclicity along the
   route. *)
let path_valid t ~src path =
  let dest = destination t in
  let rec hops = function
    | a :: (b :: _ as rest) ->
        mem_edge t a b
        && edge_out t a b
        && compare_heights t a b > 0
        && hops rest
    | [ last ] -> Node.equal last dest
    | [] -> false
  in
  match path with first :: _ -> Node.equal first src && hops path | [] -> false

let route ~validate t src =
  if not (mem_node t src) then { response = Op.Noop; work = 0; validation_failures = 0 }
  else
    match engine_route t src with
    | Some path ->
        let bad = validate && not (path_valid t ~src path) in
        {
          response = Op.Path path;
          work = 0;
          validation_failures = (if bad then 1 else 0);
        }
    | None ->
        (* An honest No_route means the source really cannot reach the
           destination; a directed path existing despite the refusal is
           an engine bug the validator must surface. *)
        let bad = validate && has_path_to_destination t src in
        { response = Op.No_route; work = 0; validation_failures = (if bad then 1 else 0) }

(* Mirror a link event into the forwarding plane (when one exists): the
   plane's skeleton was snapshotted from the engine's graph and every
   non-noop link op lands on both, so they can never drift. *)
let plane_link_down t u v =
  match t.plane with
  | Some p -> Lr_packet.Plane.remove_link p u v
  | None -> ()

let plane_link_up t u v =
  match t.plane with
  | Some p -> Lr_packet.Plane.add_link p u v
  | None -> ()

let link_down t u v =
  if Node.equal u v || (not (mem_node t u)) || (not (mem_node t v))
     || not (mem_edge t u v)
  then { response = Op.Noop; work = 0; validation_failures = 0 }
  else begin
    plane_link_down t u v;
    let before = total_work t in
    let result =
      match t.m with
      | E_fast f -> Fast_maintenance.fail_link f u v
      | E_ref m -> Maintenance.fail_link m u v
    in
    (* [Partitioned] still stabilizes the destination's side; the work
       delta covers both branches. *)
    let work = total_work t - before in
    match result with
    | Maintenance.Stabilized { node_steps; _ } ->
        { response = Op.Repaired { node_steps }; work; validation_failures = 0 }
    | Maintenance.Partitioned lost ->
        { response = Op.Cut { lost = Node.Set.cardinal lost }; work;
          validation_failures = 0 }
  end

let link_up t u v =
  if Node.equal u v || (not (mem_node t u)) || (not (mem_node t v))
     || mem_edge t u v
     || Node.Set.mem u t.dead || Node.Set.mem v t.dead
  then { response = Op.Noop; work = 0; validation_failures = 0 }
  else begin
    plane_link_up t u v;
    let before = total_work t in
    (match t.m with
    | E_fast f -> Fast_maintenance.add_link f u v
    | E_ref m -> Maintenance.add_link m u v);
    let node_steps = total_work t - before in
    { response = Op.Linked { node_steps }; work = node_steps;
      validation_failures = 0 }
  end

let crash_destination t =
  let old = destination t in
  let g = graph t in
  let live u = not (Node.Set.mem u t.dead) in
  if
    not
      (Node.Set.exists
         (fun u -> live u && not (Node.equal u old))
         (Digraph.nodes g))
  then { response = Op.Noop; work = 0; validation_failures = 0 }
  else
    match Linkrev.Config.make g ~destination:old with
    | Error _ ->
        (* The serving graph went inconsistent — count it, don't crash. *)
        { response = Op.Noop; work = 0; validation_failures = 1 }
    | Ok config ->
        let outcomes = Failover.elect_after_destination_failure t.rule config in
        let candidates =
          List.filter (fun o -> live o.Failover.leader) outcomes
        in
        (* Primary: most members, then the greater leader id.  Both
           components of the key are compared explicitly (ints and
           [Node.compare]) so the order can never silently drift with
           the representation of either. *)
        let better o b =
          let co = Node.Set.cardinal o.Failover.members
          and cb = Node.Set.cardinal b.Failover.members in
          if co <> cb then co > cb
          else Node.compare o.Failover.leader b.Failover.leader > 0
        in
        let primary =
          List.fold_left
            (fun best o ->
              match best with
              | None -> Some o
              | Some b -> if better o b then Some o else Some b)
            None candidates
        in
        (match primary with
        | None -> { response = Op.Noop; work = 0; validation_failures = 0 }
        | Some o ->
            let leader = o.Failover.leader in
            let stripped =
              Node.Set.fold
                (fun v g -> Digraph.remove_edge g old v)
                (Digraph.neighbors g old) g
            in
            t.work_base <- total_work t;
            t.dead <- Node.Set.add old t.dead;
            t.m <-
              make_engine t.kind t.rule
                (Linkrev.Config.make_exn stripped ~destination:leader);
            t.plane <- None;
            t.epoch <- t.epoch + 1;
            (* The adoption work is the fresh session's stabilization —
               the reversals actually performed on this shard's state
               (Failover's own re-orientation ran on a throwaway copy). *)
            let node_steps = total_work t - t.work_base in
            { response = Op.New_destination { leader; node_steps };
              work = node_steps; validation_failures = 0 })

(* The shard's forwarding plane, snapshotting the current graph and
   destination on first use.  [Config.make] failing means the serving
   graph went inconsistent — surfaced as a validation failure, like the
   crash path. *)
let ensure_plane t =
  match t.plane with
  | Some p -> Some p
  | None -> (
      match Linkrev.Config.make (graph t) ~destination:(destination t) with
      | Error _ -> None
      | Ok config ->
          let p = Lr_packet.Plane.create ~qcap:t.packet_queue config in
          t.plane <- Some p;
          Some p)

let inject t src count =
  if count < 0 || not (mem_node t src) then
    { response = Op.Noop; work = 0; validation_failures = 0 }
  else
    match ensure_plane t with
    | None -> { response = Op.Noop; work = 0; validation_failures = 1 }
    | Some p ->
        let accepted, dropped = Lr_packet.Plane.inject p ~src ~count in
        { response = Op.Injected { accepted; dropped }; work = 0;
          validation_failures = 0 }

let forward t slots =
  if slots < 1 then { response = Op.Noop; work = 0; validation_failures = 0 }
  else
    match ensure_plane t with
    | None -> { response = Op.Noop; work = 0; validation_failures = 1 }
    | Some p ->
        let before = Lr_packet.Plane.counters p in
        for _ = 1 to slots do
          ignore (Lr_packet.Plane.slot p : Lr_packet.Plane.slot_outcome)
        done;
        let after = Lr_packet.Plane.counters p in
        {
          response =
            Op.Forwarded
              {
                delivered = after.Lr_packet.Plane.delivered - before.Lr_packet.Plane.delivered;
                reversals = after.Lr_packet.Plane.reversals - before.Lr_packet.Plane.reversals;
                queued = Lr_packet.Plane.queued p;
                hops = after.Lr_packet.Plane.hops_sum - before.Lr_packet.Plane.hops_sum;
              };
          work = 0;
          validation_failures = 0;
        }

let plane_queued t =
  match t.plane with Some p -> Lr_packet.Plane.queued p | None -> 0

let consistent t =
  match t.m with
  | E_fast f ->
      (* Acyclicity is structural for the fast engine (orientation is
         the strict height order); [consistent] additionally recounts
         its incremental state and checks the cache for staleness. *)
      Fast_maintenance.consistent f
  | E_ref m ->
      Digraph.is_acyclic (Maintenance.graph m)
      && Maintenance.is_destination_oriented m

(* {1 Chaos faults} *)

(* The canonical hostile height assignment of a [Corrupt] fault: a pure
   function of [(seed, node)], so the fast and reference engines of a
   differential pair adopt byte-identical corrupted states.  Magnitude
   bounds both components' absolute value. *)
let hostile_height ~seed ~magnitude u =
  let st = Random.State.make [| 0x6368616f; seed; u |] in
  let m = if magnitude < 1 then 1 else magnitude in
  let pa = Random.State.int st ((2 * m) + 1) - m in
  let pb = Random.State.int st ((2 * m) + 1) - m in
  (pa, pb)

let height_pair t u =
  match t.m with
  | E_fast f -> Fast_maintenance.height f u
  | E_ref m -> Maintenance.height_pair m u

let adopt t f =
  match t.m with
  | E_fast fm -> Fast_maintenance.adopt_heights fm f
  | E_ref m -> Maintenance.adopt_heights m f

(* Adopt a corrupted height assignment and report the self-healing
   work.  Validation re-runs the full consistency check afterwards —
   recovery, not just quiescence, is what the chaos SLO is stated
   over. *)
let heal ~validate t f =
  let before = total_work t in
  let result = adopt t f in
  let work = total_work t - before in
  match result with
  | Maintenance.Stabilized { node_steps; _ } ->
      let bad = validate && not (consistent t) in
      { response = Op.Healed { node_steps }; work;
        validation_failures = (if bad then 1 else 0) }
  | Maintenance.Partitioned _ ->
      (* adopt_heights never changes the topology. *)
      assert false

let corrupt ~validate t ~seed ~magnitude =
  if magnitude < 0 then { response = Op.Noop; work = 0; validation_failures = 0 }
  else heal ~validate t (hostile_height ~seed ~magnitude)

let flip_bit ~validate t ~node ~bit =
  if (not (mem_node t node)) || bit < 0 || bit > 61 then
    { response = Op.Noop; work = 0; validation_failures = 0 }
  else
    let pa, pb = height_pair t node in
    let flipped = (pa lxor (1 lsl bit), pb) in
    heal ~validate t (fun u -> if u = node then flipped else height_pair t u)

let apply ?(validate = true) t op =
  match op with
  | Op.Route { src; _ } -> route ~validate t src
  | Op.Link_down { u; v; _ } -> link_down t u v
  | Op.Link_up { u; v; _ } -> link_up t u v
  | Op.Crash_destination _ -> crash_destination t
  | Op.Inject { src; count; _ } -> inject t src count
  | Op.Forward { slots; _ } -> forward t slots
  | Op.Corrupt { seed; magnitude; _ } -> corrupt ~validate t ~seed ~magnitude
  | Op.Flip { node; bit; _ } -> flip_bit ~validate t ~node ~bit
  | Op.Stats -> invalid_arg "Shard.apply: Stats is a dispatcher-level op"
