open Lr_graph
open Lr_routing

type t = {
  sid : int;
  rule : Maintenance.rule;
  mutable m : Maintenance.t;
  mutable dead : Node.Set.t;
  mutable epoch : int;
  mutable work_base : int;  (* total_work of retired maintenance sessions *)
}

let create ~rule ~id config =
  { sid = id; rule; m = Maintenance.create rule config; dead = Node.Set.empty;
    epoch = 0; work_base = 0 }

let id t = t.sid
let destination t = Maintenance.destination t.m
let graph t = Maintenance.graph t.m
let dead t = t.dead
let epoch t = t.epoch
let total_work t = t.work_base + Maintenance.total_work t.m

type outcome = {
  response : Op.response;
  work : int;
  validation_failures : int;
}

let mem_node t u = Node.Set.mem u (Digraph.nodes (graph t))

(* The in-service checker: a path must start at the source, end at the
   destination, and descend strictly in both the orientation and the
   height order at every hop.  Strict height descent rules out loops on
   its own, so a validated path is a witness of acyclicity along the
   route. *)
let path_valid t ~src path =
  let g = graph t in
  let dest = destination t in
  let rec hops = function
    | a :: (b :: _ as rest) ->
        Digraph.mem_edge g a b
        && Digraph.dir g a b = Digraph.Out
        && Maintenance.compare_heights t.m a b > 0
        && hops rest
    | [ last ] -> Node.equal last dest
    | [] -> false
  in
  match path with first :: _ -> Node.equal first src && hops path | [] -> false

let route ~validate t src =
  if not (mem_node t src) then { response = Op.Noop; work = 0; validation_failures = 0 }
  else
    match Maintenance.route t.m src with
    | Some path ->
        let bad = validate && not (path_valid t ~src path) in
        {
          response = Op.Path path;
          work = 0;
          validation_failures = (if bad then 1 else 0);
        }
    | None ->
        (* An honest No_route means the source really cannot reach the
           destination; a directed path existing despite the refusal is
           an engine bug the validator must surface. *)
        let bad = validate && Digraph.has_path (graph t) src (destination t) in
        { response = Op.No_route; work = 0; validation_failures = (if bad then 1 else 0) }

let link_down t u v =
  let g = graph t in
  if Node.equal u v || (not (mem_node t u)) || (not (mem_node t v))
     || not (Digraph.mem_edge g u v)
  then { response = Op.Noop; work = 0; validation_failures = 0 }
  else begin
    let before = Maintenance.total_work t.m in
    let result = Maintenance.fail_link t.m u v in
    (* [Partitioned] still stabilizes the destination's side; the work
       delta covers both branches. *)
    let work = Maintenance.total_work t.m - before in
    match result with
    | Maintenance.Stabilized { node_steps; _ } ->
        { response = Op.Repaired { node_steps }; work; validation_failures = 0 }
    | Maintenance.Partitioned lost ->
        { response = Op.Cut { lost = Node.Set.cardinal lost }; work;
          validation_failures = 0 }
  end

let link_up t u v =
  let g = graph t in
  if Node.equal u v || (not (mem_node t u)) || (not (mem_node t v))
     || Digraph.mem_edge g u v
     || Node.Set.mem u t.dead || Node.Set.mem v t.dead
  then { response = Op.Noop; work = 0; validation_failures = 0 }
  else begin
    let before = Maintenance.total_work t.m in
    Maintenance.add_link t.m u v;
    let node_steps = Maintenance.total_work t.m - before in
    { response = Op.Linked { node_steps }; work = node_steps;
      validation_failures = 0 }
  end

let crash_destination t =
  let old = destination t in
  let g = graph t in
  let live u = not (Node.Set.mem u t.dead) in
  if
    not
      (Node.Set.exists
         (fun u -> live u && not (Node.equal u old))
         (Digraph.nodes g))
  then { response = Op.Noop; work = 0; validation_failures = 0 }
  else
    match Linkrev.Config.make g ~destination:old with
    | Error _ ->
        (* The serving graph went inconsistent — count it, don't crash. *)
        { response = Op.Noop; work = 0; validation_failures = 1 }
    | Ok config ->
        let outcomes = Failover.elect_after_destination_failure t.rule config in
        let candidates =
          List.filter (fun o -> live o.Failover.leader) outcomes
        in
        let primary =
          List.fold_left
            (fun best o ->
              match best with
              | None -> Some o
              | Some b ->
                  let key o =
                    (Node.Set.cardinal o.Failover.members, o.Failover.leader)
                  in
                  if compare (key o) (key b) > 0 then Some o else Some b)
            None candidates
        in
        (match primary with
        | None -> { response = Op.Noop; work = 0; validation_failures = 0 }
        | Some o ->
            let leader = o.Failover.leader in
            let stripped =
              Node.Set.fold
                (fun v g -> Digraph.remove_edge g old v)
                (Digraph.neighbors g old) g
            in
            t.work_base <- t.work_base + Maintenance.total_work t.m;
            t.dead <- Node.Set.add old t.dead;
            t.m <-
              Maintenance.create t.rule
                (Linkrev.Config.make_exn stripped ~destination:leader);
            t.epoch <- t.epoch + 1;
            (* The adoption work is the fresh session's stabilization —
               the reversals actually performed on this shard's state
               (Failover's own re-orientation ran on a throwaway copy). *)
            let node_steps = Maintenance.total_work t.m in
            { response = Op.New_destination { leader; node_steps };
              work = node_steps; validation_failures = 0 })

let apply ?(validate = true) t op =
  match op with
  | Op.Route { src; _ } -> route ~validate t src
  | Op.Link_down { u; v; _ } -> link_down t u v
  | Op.Link_up { u; v; _ } -> link_up t u v
  | Op.Crash_destination _ -> crash_destination t
  | Op.Stats -> invalid_arg "Shard.apply: Stats is a dispatcher-level op"

let consistent t =
  Digraph.is_acyclic (graph t) && Maintenance.is_destination_oriented t.m
