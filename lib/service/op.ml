type t =
  | Route of { shard : int; src : int }
  | Link_down of { shard : int; u : int; v : int }
  | Link_up of { shard : int; u : int; v : int }
  | Crash_destination of { shard : int }
  | Inject of { shard : int; src : int; count : int }
  | Forward of { shard : int; slots : int }
  | Corrupt of { shard : int; seed : int; magnitude : int }
  | Flip of { shard : int; node : int; bit : int }
  | Stats

let shard_of = function
  | Route { shard; _ }
  | Link_down { shard; _ }
  | Link_up { shard; _ }
  | Crash_destination { shard }
  | Inject { shard; _ }
  | Forward { shard; _ }
  | Corrupt { shard; _ }
  | Flip { shard; _ } ->
      Some shard
  | Stats -> None

type response =
  | Path of int list
  | No_route
  | Repaired of { node_steps : int }
  | Cut of { lost : int }
  | Linked of { node_steps : int }
  | New_destination of { leader : int; node_steps : int }
  | Injected of { accepted : int; dropped : int }
  | Forwarded of { delivered : int; reversals : int; queued : int; hops : int }
  | Healed of { node_steps : int }
  | Noop
  | Snapshot of Metrics.totals
  | Rejected of [ `Overloaded ]

let to_line = function
  | Route { shard; src } -> Printf.sprintf "route %d %d" shard src
  | Link_down { shard; u; v } -> Printf.sprintf "down %d %d %d" shard u v
  | Link_up { shard; u; v } -> Printf.sprintf "up %d %d %d" shard u v
  | Crash_destination { shard } -> Printf.sprintf "crash %d" shard
  | Inject { shard; src; count } -> Printf.sprintf "inject %d %d %d" shard src count
  | Forward { shard; slots } -> Printf.sprintf "forward %d %d" shard slots
  | Corrupt { shard; seed; magnitude } ->
      Printf.sprintf "corrupt %d %d %d" shard seed magnitude
  | Flip { shard; node; bit } -> Printf.sprintf "flip %d %d %d" shard node bit
  | Stats -> "stats"

let of_line line =
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  let int w = int_of_string_opt w in
  match words with
  | [ "route"; s; src ] -> (
      match (int s, int src) with
      | Some shard, Some src -> Ok (Route { shard; src })
      | _ -> Error (Printf.sprintf "bad route line %S" line))
  | [ "down"; s; u; v ] -> (
      match (int s, int u, int v) with
      | Some shard, Some u, Some v -> Ok (Link_down { shard; u; v })
      | _ -> Error (Printf.sprintf "bad down line %S" line))
  | [ "up"; s; u; v ] -> (
      match (int s, int u, int v) with
      | Some shard, Some u, Some v -> Ok (Link_up { shard; u; v })
      | _ -> Error (Printf.sprintf "bad up line %S" line))
  | [ "crash"; s ] -> (
      match int s with
      | Some shard -> Ok (Crash_destination { shard })
      | None -> Error (Printf.sprintf "bad crash line %S" line))
  | [ "inject"; s; src; k ] -> (
      match (int s, int src, int k) with
      | Some shard, Some src, Some count -> Ok (Inject { shard; src; count })
      | _ -> Error (Printf.sprintf "bad inject line %S" line))
  | [ "forward"; s; k ] -> (
      match (int s, int k) with
      | Some shard, Some slots -> Ok (Forward { shard; slots })
      | _ -> Error (Printf.sprintf "bad forward line %S" line))
  | [ "corrupt"; s; seed; m ] -> (
      match (int s, int seed, int m) with
      | Some shard, Some seed, Some magnitude ->
          Ok (Corrupt { shard; seed; magnitude })
      | _ -> Error (Printf.sprintf "bad corrupt line %S" line))
  | [ "flip"; s; u; b ] -> (
      match (int s, int u, int b) with
      | Some shard, Some node, Some bit -> Ok (Flip { shard; node; bit })
      | _ -> Error (Printf.sprintf "bad flip line %S" line))
  | [ "stats" ] -> Ok Stats
  | _ -> Error (Printf.sprintf "unknown op line %S" line)

let response_to_string = function
  | Path nodes -> "path " ^ String.concat ">" (List.map string_of_int nodes)
  | No_route -> "no-route"
  | Repaired { node_steps } -> Printf.sprintf "repaired %d" node_steps
  | Cut { lost } -> Printf.sprintf "cut %d" lost
  | Linked { node_steps } -> Printf.sprintf "linked %d" node_steps
  | New_destination { leader; node_steps } ->
      Printf.sprintf "new-destination %d %d" leader node_steps
  | Injected { accepted; dropped } -> Printf.sprintf "injected %d %d" accepted dropped
  | Forwarded { delivered; reversals; queued; hops } ->
      Printf.sprintf "forwarded %d %d %d %d" delivered reversals queued hops
  | Healed { node_steps } -> Printf.sprintf "healed %d" node_steps
  | Noop -> "noop"
  | Snapshot totals -> "snapshot " ^ Metrics.totals_line totals
  | Rejected `Overloaded -> "rejected overloaded"

let pp ppf op = Format.pp_print_string ppf (to_line op)
let pp_response ppf r = Format.pp_print_string ppf (response_to_string r)
