(** Deterministic workload generation for the routing service.

    Everything — shard topologies, op mix, shard popularity — derives
    from the spec's seed alone, so a workload can be regenerated
    bit-identically anywhere, and a saved workload file replays the
    exact same op stream.  Shard popularity follows a Zipf-like power
    law ([weight(i) = (i+1)^-skew]): real route traffic is skewed, and
    a hot shard is exactly what exercises bounded-queue backpressure. *)

type mix = {
  route : int;  (** Weight of route queries. *)
  churn : int;  (** Weight of link down/up events (split evenly). *)
  crash : int;  (** Weight of destination crashes. *)
}

type pmix = {
  inject : int;  (** Weight of packet injections ([Inject]). *)
  forward : int;  (** Weight of forwarding rounds ([Forward]). *)
}

type spec = {
  shards : int;
  nodes : int;  (** Nodes per shard graph. *)
  extra_edges : int;  (** Chords beyond the spanning tree, per shard. *)
  seed : int;
  ops : int;
  mix : mix;
  pmix : pmix;  (** Packet-op weights, rolled with [mix] in one die. *)
  burst : int;
      (** Packets per [Inject] op and slots per [Forward] op
          (must be [>= 1] even when [pmix] is all zeros). *)
  skew : float;  (** Zipf exponent; [0.] = uniform shard popularity. *)
  stats_every : int;  (** Emit a [Stats] op every K ops; [0] = never. *)
}

val default_mix : mix
(** 90 route / 9 churn / 1 crash. *)

val no_packets : pmix
(** 0/0 — a pure routing workload (what old [lrw1] files decode to). *)

val default_pmix : pmix
(** 30 inject / 10 forward, for packet-heavy loadgen runs. *)

val generate : spec -> Op.t array
(** The spec's op stream.  @raise Invalid_argument on a nonsensical
    spec (no shards, fewer than 2 nodes, negative counts, empty mix). *)

val shard_config : spec -> int -> Linkrev.Config.t
(** The initial instance of one shard: a random connected DAG seeded
    from [(spec.seed, shard)]. *)

val shard_configs : spec -> Linkrev.Config.t array

val valid_op : spec -> Op.t -> (unit, string) result
(** Check one op against the spec's shard and node ranges. *)

val save : string -> spec -> Op.t array -> unit
(** Write the [lrw1] text format: a spec header followed by one
    {!Op.to_line} per op.  The [pmix]/[burst] header lines postdate the
    format and always appear in saved files. *)

val load : string -> (spec * Op.t array, string) result
(** Parse a workload file, validating the magic, header completeness,
    op count and every op's shard/node ranges.  Files written before
    the packet extension (no [pmix]/[burst] headers) load with
    [pmix = no_packets]. *)

val describe : spec -> string
(** One-line human summary. *)
