module Pool = Lr_parallel.Pool

type config = {
  jobs : int;
  queue_bound : int;
  window : int;
  rule : Lr_routing.Maintenance.rule;
  validate : bool;
  engine : Shard.engine_kind;
}

let default_config =
  {
    jobs = 1;
    queue_bound = 128;
    window = 256;
    rule = Lr_routing.Maintenance.Partial_reversal;
    validate = true;
    engine = Shard.Fast;
  }

type t = {
  cfg : config;
  shards : Shard.t array;
  metrics : Metrics.t;
  pool : Pool.Persistent.t;
}

let record_initial_trace ~dir ~rule shard config =
  let module F = Lr_fast.Fast_engine in
  let path = Filename.concat dir (Printf.sprintf "shard-%03d.lrt" shard) in
  let rule =
    match rule with
    | Lr_routing.Maintenance.Partial_reversal -> F.Partial
    | Lr_routing.Maintenance.Full_reversal -> F.Full
  in
  ignore (Lr_trace.Record.fast ~seed:shard ~path ~rule config)

let create ?trace_dir cfg configs =
  if Array.length configs = 0 then
    invalid_arg "Service.create: need at least one shard";
  if cfg.jobs < 1 then invalid_arg "Service.create: jobs must be >= 1";
  if cfg.queue_bound < 1 then
    invalid_arg "Service.create: queue_bound must be >= 1";
  if cfg.window < 1 then invalid_arg "Service.create: window must be >= 1";
  (match trace_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Array.iteri
        (fun i config -> record_initial_trace ~dir ~rule:cfg.rule i config)
        configs);
  {
    cfg;
    shards =
      Array.mapi
        (fun id config ->
          Shard.create ~engine:cfg.engine ~rule:cfg.rule ~id config)
        configs;
    metrics = Metrics.create ~shards:(Array.length configs);
    pool = Pool.Persistent.create ~jobs:cfg.jobs;
  }

let num_shards t = Array.length t.shards
let shard t i = t.shards.(i)
let config t = t.cfg
let metrics t = Metrics.snapshot t.metrics

let run t ops =
  let n = Array.length ops in
  let shards = Array.length t.shards in
  let responses = Array.make n Op.Noop in
  let admit_time = Array.make n 0.0 in
  (* Per-shard queues hold op indices in reverse admission order; they
     are filled by the dispatcher and drained (then reset) by the one
     worker owning the shard for the round. *)
  let queues = Array.make shards [] in
  let depth = Array.make shards 0 in
  let busy = Array.make shards 0 in
  let drain s =
    let c = Metrics.shard t.metrics s in
    List.iter
      (fun idx ->
        let o = Shard.apply ~validate:t.cfg.validate t.shards.(s) ops.(idx) in
        responses.(idx) <- o.Shard.response;
        c.Metrics.served <- c.Metrics.served + 1;
        c.Metrics.reversal_steps <- c.Metrics.reversal_steps + o.Shard.work;
        c.Metrics.validation_failures <-
          c.Metrics.validation_failures + o.Shard.validation_failures;
        (match o.Shard.response with
        | Op.Path _ -> c.Metrics.routes <- c.Metrics.routes + 1
        | Op.No_route -> c.Metrics.no_routes <- c.Metrics.no_routes + 1
        | Op.Repaired _ | Op.Linked _ ->
            c.Metrics.link_events <- c.Metrics.link_events + 1
        | Op.Cut _ ->
            c.Metrics.link_events <- c.Metrics.link_events + 1;
            c.Metrics.partitions <- c.Metrics.partitions + 1
        | Op.New_destination _ -> c.Metrics.crashes <- c.Metrics.crashes + 1
        | Op.Noop -> c.Metrics.noops <- c.Metrics.noops + 1
        | Op.Snapshot _ | Op.Rejected _ ->
            (* shards never produce dispatcher-level responses *)
            assert false);
        Metrics.record_latency t.metrics ~shard:s
          (Unix.gettimeofday () -. admit_time.(idx)))
      (List.rev queues.(s));
    queues.(s) <- [];
    depth.(s) <- 0
  in
  let i = ref 0 in
  while !i < n do
    (* Admission: queues are empty here (the previous round drained
       them), so a Stats op at the window head sees a fully settled
       service. *)
    let consumed = ref 0 in
    let barrier = ref false in
    while (not !barrier) && !i < n && !consumed < t.cfg.window do
      (match ops.(!i) with
      | Op.Stats ->
          if !consumed = 0 then begin
            Metrics.bump_stats t.metrics;
            responses.(!i) <- Op.Snapshot (Metrics.totals t.metrics);
            incr i
          end
          else barrier := true
      | op ->
          let s =
            match Op.shard_of op with Some s -> s | None -> assert false
          in
          if s < 0 || s >= shards then
            invalid_arg
              (Printf.sprintf "Service.run: op %d names shard %d of %d" !i s
                 shards);
          (* A full queue answers on the spot — but still consumes window
             budget, so an overloaded round ends and drains instead of
             shedding the whole remaining stream. *)
          if depth.(s) >= t.cfg.queue_bound then begin
            let c = Metrics.shard t.metrics s in
            c.Metrics.rejected <- c.Metrics.rejected + 1;
            responses.(!i) <- Op.Rejected `Overloaded
          end
          else begin
            queues.(s) <- !i :: queues.(s);
            depth.(s) <- depth.(s) + 1;
            let c = Metrics.shard t.metrics s in
            if depth.(s) > c.Metrics.max_queue_depth then
              c.Metrics.max_queue_depth <- depth.(s);
            admit_time.(!i) <- Unix.gettimeofday ()
          end;
          incr consumed;
          incr i);
    done;
    (* Round: every busy shard drained by one worker; distinct shards
       run concurrently, results land in per-op slots. *)
    let busy_count = ref 0 in
    for s = 0 to shards - 1 do
      if depth.(s) > 0 then begin
        busy.(!busy_count) <- s;
        incr busy_count
      end
    done;
    if !busy_count > 0 then
      Pool.Persistent.run t.pool !busy_count (fun k -> drain busy.(k))
  done;
  responses

let fingerprint responses snapshot =
  let b = Buffer.create 4096 in
  Array.iter
    (fun r ->
      Buffer.add_string b (Op.response_to_string r);
      Buffer.add_char b '\n')
    responses;
  Buffer.add_string b (Metrics.totals_line snapshot.Metrics.snapshot_totals);
  Buffer.add_char b '\n';
  Array.iter
    (fun per ->
      Buffer.add_string b (Metrics.totals_line per);
      Buffer.add_char b '\n')
    snapshot.Metrics.snapshot_per_shard;
  Digest.to_hex (Digest.string (Buffer.contents b))

let rejected_in responses =
  Array.fold_left
    (fun acc r -> match r with Op.Rejected _ -> acc + 1 | _ -> acc)
    0 responses

let shutdown t = Pool.Persistent.shutdown t.pool
