module Pool = Lr_parallel.Pool
module Spsc = Lr_parallel.Spsc

type config = {
  jobs : int;
  queue_bound : int;
  window : int;
  rule : Lr_routing.Maintenance.rule;
  validate : bool;
  engine : Shard.engine_kind;
  deterministic : bool;
  steal_batch : int;
  pin_loops : bool;
  packet_queue : int;
}

let default_config =
  {
    jobs = 1;
    queue_bound = 128;
    window = 256;
    rule = Lr_routing.Maintenance.Partial_reversal;
    validate = true;
    engine = Shard.Fast;
    deterministic = false;
    steal_batch = 64;
    pin_loops = false;
    packet_queue = 64;
  }

type t = {
  cfg : config;
  shards : Shard.t array;
  metrics : Metrics.t;
  pool : Pool.Persistent.t;
  effective_jobs : int;
      (* [cfg.jobs] clamped to the host's domain count unless
         [pin_loops]: every resident domain beyond the hardware joins
         each minor-GC stop-the-world barrier just to be woken and
         parked again, so overprovisioned domains are pure tax. *)
}

let record_initial_trace ~dir ~rule shard config =
  let module F = Lr_fast.Fast_engine in
  let path = Filename.concat dir (Printf.sprintf "shard-%03d.lrt" shard) in
  let rule =
    match rule with
    | Lr_routing.Maintenance.Partial_reversal -> F.Partial
    | Lr_routing.Maintenance.Full_reversal -> F.Full
  in
  ignore (Lr_trace.Record.fast ~seed:shard ~path ~rule config)

let create ?trace_dir cfg configs =
  if Array.length configs = 0 then
    invalid_arg "Service.create: need at least one shard";
  if cfg.jobs < 1 then invalid_arg "Service.create: jobs must be >= 1";
  if cfg.queue_bound < 1 then
    invalid_arg "Service.create: queue_bound must be >= 1";
  if cfg.window < 1 then invalid_arg "Service.create: window must be >= 1";
  if cfg.steal_batch < 1 then
    invalid_arg "Service.create: steal_batch must be >= 1";
  if cfg.packet_queue < 1 then
    invalid_arg "Service.create: packet_queue must be >= 1";
  let effective_jobs =
    if cfg.pin_loops then cfg.jobs
    else min cfg.jobs (max 1 (Pool.recommended_jobs ()))
  in
  (match trace_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Array.iteri
        (fun i config -> record_initial_trace ~dir ~rule:cfg.rule i config)
        configs);
  {
    cfg;
    shards =
      Array.mapi
        (fun id config ->
          Shard.create ~engine:cfg.engine ~packet_queue:cfg.packet_queue
            ~rule:cfg.rule ~id config)
        configs;
    metrics = Metrics.create ~shards:(Array.length configs);
    pool = Pool.Persistent.create ~jobs:effective_jobs;
    effective_jobs;
  }

let num_shards t = Array.length t.shards
let shard t i = t.shards.(i)
let config t = t.cfg
let metrics t = Metrics.snapshot t.metrics

(* One op, on the domain currently owning shard [s] (the round worker
   on the windowed path, the token holder on the free-running path).
   Identical on both paths, so counters — and hence the fingerprint —
   depend only on *which* ops execute, never on the dispatch mode. *)
(* lr:owner shard token holder: ops for one shard are serialized by the
   per-shard ownership token (windowed round or SPSC pop under
   [try_drain]), so the shard, its metrics counter and everything the
   apply path touches have exactly one writer at a time. *)
let serve_op t ops responses admit_time s idx =
  let op = ops.(idx) in
  (* Chaos ops are timed around the shard call itself: the heal runs
     synchronously inside [Shard.apply], so this wall-clock delta is
     the corruption-to-recovered time the SLO is stated over. *)
  let chaos_t0 =
    match op with
    | Op.Corrupt _ | Op.Flip _ -> Unix.gettimeofday ()
    | _ -> 0.0
  in
  let o = Shard.apply ~validate:t.cfg.validate t.shards.(s) op in
  responses.(idx) <- o.Shard.response;
  let c = Metrics.shard t.metrics s in
  c.Metrics.served <- c.Metrics.served + 1;
  c.Metrics.reversal_steps <- c.Metrics.reversal_steps + o.Shard.work;
  c.Metrics.validation_failures <-
    c.Metrics.validation_failures + o.Shard.validation_failures;
  (match o.Shard.response with
  | Op.Path _ -> c.Metrics.routes <- c.Metrics.routes + 1
  | Op.No_route -> c.Metrics.no_routes <- c.Metrics.no_routes + 1
  | Op.Repaired _ | Op.Linked _ ->
      c.Metrics.link_events <- c.Metrics.link_events + 1
  | Op.Cut _ ->
      c.Metrics.link_events <- c.Metrics.link_events + 1;
      c.Metrics.partitions <- c.Metrics.partitions + 1
  | Op.New_destination _ -> c.Metrics.crashes <- c.Metrics.crashes + 1
  | Op.Injected { accepted; dropped } ->
      c.Metrics.packets_in <- c.Metrics.packets_in + accepted;
      c.Metrics.packets_dropped <- c.Metrics.packets_dropped + dropped
  | Op.Forwarded { delivered; reversals; queued; hops } ->
      c.Metrics.packets_out <- c.Metrics.packets_out + delivered;
      c.Metrics.packet_reversals <- c.Metrics.packet_reversals + reversals;
      c.Metrics.packet_hops <- c.Metrics.packet_hops + hops;
      if queued > c.Metrics.packet_queue_peak then
        c.Metrics.packet_queue_peak <- queued
  | Op.Healed _ ->
      c.Metrics.faults <- c.Metrics.faults + 1;
      Metrics.record_recovery t.metrics ~shard:s
        (Unix.gettimeofday () -. chaos_t0)
  | Op.Noop -> c.Metrics.noops <- c.Metrics.noops + 1
  | Op.Snapshot _ | Op.Rejected _ ->
      (* shards never produce dispatcher-level responses *)
      assert false);
  Metrics.record_latency t.metrics ~shard:s
    (Unix.gettimeofday () -. admit_time.(idx))

let shard_of_op t i op =
  let shards = Array.length t.shards in
  let s = match Op.shard_of op with Some s -> s | None -> assert false in
  if s < 0 || s >= shards then
    invalid_arg
      (Printf.sprintf "Service.run: op %d names shard %d of %d" i s shards);
  s

(* {1 The deterministic windowed path}

   The pre-rearchitecture dispatcher, kept verbatim as the
   differential oracle: ops are admitted in windows, each window is
   drained as one pool round with a global barrier between rounds.
   Which ops are admitted, every response and every counter depend
   only on the op stream — never on domains or scheduling. *)

let run_windowed t ops =
  let n = Array.length ops in
  let shards = Array.length t.shards in
  let responses = Array.make n Op.Noop in
  let admit_time = Array.make n 0.0 in
  (* Per-shard queues hold op indices in reverse admission order; they
     are filled by the dispatcher and drained (then reset) by the one
     worker owning the shard for the round. *)
  let queues = Array.make shards [] in
  let depth = Array.make shards 0 in
  let busy = Array.make shards 0 in
  (* lr:owner dispatcher: the windowed run is single-domain, so queues
     and depth have one writer — the round loop itself. *)
  let drain s =
    List.iter
      (fun idx -> serve_op t ops responses admit_time s idx)
      (List.rev queues.(s));
    queues.(s) <- [];
    depth.(s) <- 0
  in
  let i = ref 0 in
  while !i < n do
    (* Admission: queues are empty here (the previous round drained
       them), so a Stats op at the window head sees a fully settled
       service. *)
    let consumed = ref 0 in
    let barrier = ref false in
    while (not !barrier) && !i < n && !consumed < t.cfg.window do
      (match ops.(!i) with
      | Op.Stats ->
          if !consumed = 0 then begin
            Metrics.bump_stats t.metrics;
            responses.(!i) <- Op.Snapshot (Metrics.totals t.metrics);
            incr i
          end
          else barrier := true
      | op ->
          let s = shard_of_op t !i op in
          (* A full queue answers on the spot — but still consumes window
             budget, so an overloaded round ends and drains instead of
             shedding the whole remaining stream. *)
          if depth.(s) >= t.cfg.queue_bound then begin
            let c = Metrics.shard t.metrics s in
            c.Metrics.rejected <- c.Metrics.rejected + 1;
            responses.(!i) <- Op.Rejected `Overloaded
          end
          else begin
            queues.(s) <- !i :: queues.(s);
            depth.(s) <- depth.(s) + 1;
            Metrics.record_depth t.metrics ~shard:s depth.(s);
            admit_time.(!i) <- Unix.gettimeofday ()
          end;
          incr consumed;
          incr i);
    done;
    (* Round: every busy shard drained by one worker; distinct shards
       run concurrently, results land in per-op slots. *)
    let busy_count = ref 0 in
    for s = 0 to shards - 1 do
      if depth.(s) > 0 then begin
        busy.(!busy_count) <- s;
        incr busy_count
      end
    done;
    if !busy_count > 0 then
      Pool.Persistent.run t.pool !busy_count (fun k -> drain busy.(k))
  done;
  responses

(* {1 The free-running path}

   No window, no cross-shard barrier.  The dispatcher pushes each op's
   index into its destination shard's bounded SPSC ring; [jobs - 1]
   resident loops (launched once, run-to-completion) drain the rings
   until the shutdown sentinel.  Per-shard serialization is preserved
   by ownership tokens: only the loop that wins a shard's token CAS
   may pop its ring and touch its engine, and token handoffs are
   acquire/release edges, so consumption can migrate (work stealing)
   without ever interleaving a shard's ops.  Backpressure is per-ring
   occupancy: a full ring answers [Rejected `Overloaded] on the spot.
   A [Stats] op quiesces (admitted = completed on every shard, with
   the dispatcher moonlighting as a thief while it waits), so
   snapshots still count exactly the ops admitted before them. *)

exception Loop_died

let run_free t ops =
  let n = Array.length ops in
  let shards = Array.length t.shards in
  let nloops = t.effective_jobs - 1 in
  let responses = Array.make n Op.Noop in
  let admit_time = Array.make n 0.0 in
  let rings =
    Array.init shards (fun _ -> Spsc.create ~capacity:t.cfg.queue_bound (-1))
  in
  let tokens = Array.init shards (fun _ -> Atomic.make false) in
  let completed = Array.init shards (fun _ -> Atomic.make 0) in
  let admitted = Array.make shards 0 in
  (* Token-protected serialization witness: op indices popped from a
     ring must be strictly increasing per shard. *)
  let last_served = Array.make shards (-1) in
  let stop = Atomic.make false in
  let abort = Atomic.make false in
  (* Pop-and-apply under an already-held token.  [completed] is bumped
     once per drain, not per op: quiesce only ever waits for the count
     to catch up, so coarser publication just stretches the wait by at
     most one batch — and saves a full fence per op on the hot path. *)
  (* lr:owner shard token holder: only the domain holding [tokens.(s)]
     runs this, so [last_served] and the serve path are single-writer;
     [completed] is the one cross-domain hand-off and is Atomic. *)
  let drain_locked s limit =
    let count = ref 0 in
    let continue_ = ref true in
    while !continue_ && !count < limit do
      match Spsc.try_pop rings.(s) with
      | None -> continue_ := false
      | Some idx ->
          if idx <= last_served.(s) then
            failwith "Service.run: per-shard serialization broken";
          last_served.(s) <- idx;
          serve_op t ops responses admit_time s idx;
          incr count
    done;
    if !count > 0 then ignore (Atomic.fetch_and_add completed.(s) !count);
    !count
  in
  let try_drain ~owner s limit =
    if Spsc.is_empty rings.(s) then 0
    else begin
      if not owner then Metrics.note_steal_attempt t.metrics ~shard:s;
      if not (Atomic.compare_and_set tokens.(s) false true) then 0
      else begin
        let k =
          match drain_locked s limit with
          | k ->
              Atomic.set tokens.(s) false;
              k
          | exception e ->
              Atomic.set tokens.(s) false;
              raise e
        in
        if (not owner) && k > 0 then Metrics.note_stolen t.metrics ~shard:s k;
        k
      end
    end
  in
  let all_rings_empty () =
    let empty = ref true in
    for s = 0 to shards - 1 do
      if not (Spsc.is_empty rings.(s)) then empty := false
    done;
    !empty
  in
  (* One steal sweep over shards this loop does not own ([w = -1] is
     the dispatcher: a pure thief that owns nothing, so it drains
     whole rings per claim — when it steals it is quiescing or ending
     the stream, and total drain speed beats claim fairness). *)
  let steal_pass w =
    let progressed = ref false in
    let limit = if w < 0 then max_int else t.cfg.steal_batch in
    for s = 0 to shards - 1 do
      if w < 0 || s mod nloops <> w then
        if try_drain ~owner:false s limit > 0 then progressed := true
    done;
    !progressed
  in
  (* On a single hardware thread a busy-wait starves the very loop it
     is waiting for; after a burst of polite spins, yield the core for
     real, backing off exponentially (50us doubling to ~1.6ms).  Long
     sleeps matter when the host has fewer cores than loops: a
     descheduled-but-runnable domain stalls every minor GC, so
     persistently idle loops must get off the scheduler, not poll it.
     On multicore the sleep branch is almost never reached.

     All long sleeps go through [select] on the wake pipe rather than
     [sleepf]: when the stream ends, the dispatcher writes one byte
     and every sleeper returns instantly, so joining the loops never
     waits out someone's nap. *)
  let wake_r, wake_w =
    if nloops > 0 then
      let r, w = Unix.pipe ~cloexec:true () in
      (Some r, Some w)
    else (None, None)
  in
  (* lr:owner resident loop: the select/sleep here is the deliberate
     interruptible idle backoff — [wake_sleepers] writes the pipe to cut
     every nap short, so this never blocks shutdown. *)
  let interruptible_sleep seconds =
    match wake_r with
    | None -> Unix.sleepf seconds
    | Some r -> (
        try ignore (Unix.select [ r ] [] [] seconds)
        with Unix.Unix_error (Unix.EINTR, _, _) -> ())
  in
  let wake_sleepers () =
    match wake_w with
    | None -> ()
    | Some w -> (
        try ignore (Unix.write w (Bytes.make 1 '!') 0 1)
        with Unix.Unix_error _ -> ())
  in
  let pause idle =
    if idle < 32 then Domain.cpu_relax ()
    else
      let k = min 5 ((idle - 32) / 4) in
      interruptible_sleep (50e-6 *. float_of_int (1 lsl k))
  in
  (* Hardware-clamped active set: running more always-hot loops than
     the host has cores makes every one of them a descheduled-but-
     runnable domain that stalls minor GCs and steals dispatcher
     quanta, so only the first [available - 1] loops run hot.  The
     surplus are {e standby}: parked in millisecond sleeps (off the
     scheduler, runtime lock released), assisting only when some ring
     grows past half its capacity — exactly the overload moment when
     an extra consumer pays for its scheduling cost. *)
  let active_loops =
    min nloops (max 0 (Pool.recommended_jobs () - 1))
  in
  let assist_depth =
    max 1 (Spsc.capacity rings.(0) / 2)
  in
  let rings_deep () =
    let deep = ref false in
    for s = 0 to shards - 1 do
      if Spsc.length rings.(s) >= assist_depth then deep := true
    done;
    !deep
  in
  (* One full work sweep: drain owned shards, then steal. *)
  let sweep w =
    let progressed = ref false in
    if w >= 0 then begin
      let s = ref w in
      while !s < shards do
        if try_drain ~owner:true !s max_int > 0 then progressed := true;
        s := !s + nloops
      done
    end;
    if !progressed then true else steal_pass w
  in
  let loop w =
    let standby = w >= 0 && w >= active_loops in
    let running = ref true in
    let idle = ref 0 in
    while !running do
      let engaged =
        (not standby) || rings_deep () || Atomic.get stop
        (* a standby engages under overload — and at shutdown, when one
           more consumer shortens the final drain instead of napping
           through it *)
      in
      let progressed = engaged && sweep w in
      if progressed then idle := 0
      else if Atomic.get abort then running := false
      else if Atomic.get stop && all_rings_empty () then
        (* the shutdown sentinel: the stream has ended and every ring
           is drained (in-flight ops finish in their holders' hands) *)
        running := false
      else if standby then interruptible_sleep 2e-3
      else begin
        incr idle;
        pause !idle
      end
    done
  in
  if nloops > 0 then
    Pool.Persistent.launch t.pool nloops (fun w ->
        try loop w
        with e ->
          Atomic.set abort true;
          Atomic.set stop true;
          raise e);
  let check_loops () =
    if nloops > 0 && Pool.Persistent.failed t.pool then raise Loop_died
  in
  let quiesced () =
    let ok = ref true in
    for s = 0 to shards - 1 do
      if Atomic.get completed.(s) < admitted.(s) then ok := false
    done;
    !ok
  in
  let drain_all_inline () =
    for s = 0 to shards - 1 do
      ignore (try_drain ~owner:true s max_int)
    done
  in
  let quiesce () =
    if nloops = 0 then drain_all_inline ()
    else begin
      let idle = ref 0 in
      while not (quiesced ()) do
        check_loops ();
        if steal_pass (-1) then idle := 0
        else begin
          incr idle;
          pause !idle
        end
      done
    end
  in
  (* lr:owner dispatcher: admission state ([admitted], [admit_time],
     rejection metrics) is written only by the single dispatcher domain;
     the rings are the sole producer/consumer hand-off. *)
  let dispatch () =
    for i = 0 to n - 1 do
      (match ops.(i) with
      | Op.Stats ->
          quiesce ();
          Metrics.bump_stats t.metrics;
          responses.(i) <- Op.Snapshot (Metrics.totals t.metrics)
      | op ->
          let s = shard_of_op t i op in
          admit_time.(i) <- Unix.gettimeofday ();
          if Spsc.try_push rings.(s) i then begin
            admitted.(s) <- admitted.(s) + 1;
            Metrics.record_depth t.metrics ~shard:s (Spsc.length rings.(s))
          end
          else if nloops = 0 then begin
            (* Single-domain run-to-completion: the dispatcher is also
               the only consumer, so a full ring is served inline
               rather than rejected — overload means nothing when the
               producer and the consumer share one domain. *)
            ignore (try_drain ~owner:true s max_int);
            if not (Spsc.try_push rings.(s) i) then assert false;
            admitted.(s) <- admitted.(s) + 1;
            Metrics.record_depth t.metrics ~shard:s (Spsc.length rings.(s))
          end
          else begin
            (* Per-ring occupancy backpressure: the queue is the
               overload signal, and a full ring sheds on the spot. *)
            let c = Metrics.shard t.metrics s in
            c.Metrics.rejected <- c.Metrics.rejected + 1;
            responses.(i) <- Op.Rejected `Overloaded
          end);
      if i land 0xfff = 0 then check_loops ()
    done
  in
  Fun.protect
    ~finally:(fun () ->
      Option.iter Unix.close wake_r;
      Option.iter Unix.close wake_w)
    (fun () ->
      (try dispatch ()
       with e ->
         Atomic.set abort true;
         Atomic.set stop true;
         wake_sleepers ();
         (* [await] re-raises the loop's own exception when one died —
            the root cause beats the dispatcher's [Loop_died] probe. *)
         Pool.Persistent.await t.pool;
         (match e with
         | Loop_died -> failwith "Service.run: a shard loop died"
         | e -> raise e));
      Atomic.set stop true;
      wake_sleepers ();
      if nloops = 0 then drain_all_inline ()
      else begin
        (* End of stream: the dispatcher joins the draining as a thief
           until every ring is empty, then collects the loops. *)
        (try loop (-1)
         with e ->
           Atomic.set abort true;
           Pool.Persistent.await t.pool;
           raise e);
        Pool.Persistent.await t.pool
      end;
      if not (quiesced ()) then failwith "Service.run: ops lost in flight";
      responses)

let run t ops =
  if t.cfg.deterministic then run_windowed t ops else run_free t ops

let fingerprint responses snapshot =
  let b = Buffer.create 4096 in
  Array.iter
    (fun r ->
      Buffer.add_string b (Op.response_to_string r);
      Buffer.add_char b '\n')
    responses;
  Buffer.add_string b (Metrics.totals_line snapshot.Metrics.snapshot_totals);
  Buffer.add_char b '\n';
  Array.iter
    (fun per ->
      Buffer.add_string b (Metrics.totals_line per);
      Buffer.add_char b '\n')
    snapshot.Metrics.snapshot_per_shard;
  Digest.to_hex (Digest.string (Buffer.contents b))

let rejected_in responses =
  Array.fold_left
    (fun acc r -> match r with Op.Rejected _ -> acc + 1 | _ -> acc)
    0 responses

let shutdown t = Pool.Persistent.shutdown t.pool
