(** The service's metrics registry.

    Counters are split per shard so that worker domains update them
    without contention (a shard's ops are serialized, and a shard's
    counter record is touched by exactly one worker per round), and so
    that totals are aggregated in fixed shard order — deterministic
    regardless of the domain count.  Latency samples are wall-clock
    measurements and therefore the one deliberately non-deterministic
    part of the registry; they are kept out of {!totals_line}, which is
    what determinism fingerprints hash. *)

type counters = {
  mutable served : int;  (** Ops executed (rejected ops excluded). *)
  mutable routes : int;  (** [Path] responses. *)
  mutable no_routes : int;  (** Honest [No_route] responses. *)
  mutable link_events : int;  (** Link ops that changed the graph. *)
  mutable noops : int;  (** Inapplicable ops (absent link, dead node…). *)
  mutable crashes : int;  (** Destination crashes handled. *)
  mutable partitions : int;  (** Link failures that cut nodes off. *)
  mutable reversal_steps : int;  (** Node reversal work performed. *)
  mutable rejected : int;  (** Backpressure [Rejected `Overloaded]. *)
  mutable validation_failures : int;
      (** Route responses that failed the in-service acyclicity check —
          any nonzero value is a bug in the reversal engine. *)
  mutable max_queue_depth : int;  (** High-water mark of the shard queue. *)
}

(** Immutable aggregate of {!counters}; [stats_ops] counts service-level
    [Stats] snapshots (never attributed to a shard). *)
type totals = {
  served : int;
  routes : int;
  no_routes : int;
  link_events : int;
  noops : int;
  crashes : int;
  partitions : int;
  reversal_steps : int;
  rejected : int;
  validation_failures : int;
  max_queue_depth : int;
  stats_ops : int;
}

type t

val create : shards:int -> t
val num_shards : t -> int

val shard : t -> int -> counters
(** The mutable counter record of one shard. *)

val bump_stats : t -> unit
(** Count one served [Stats] snapshot. *)

val record_latency : t -> shard:int -> float -> unit
(** Append one admission-to-completion latency sample (seconds). *)

val totals : t -> totals
(** Aggregated over shards in index order (deterministic). *)

val per_shard : t -> totals array
(** Each shard's counters as immutable totals ([stats_ops = 0]). *)

type snapshot = {
  snapshot_totals : totals;
  snapshot_per_shard : totals array;
  latency : Lr_analysis.Stats.percentiles;  (** Seconds, over all samples. *)
  latency_samples : int;
}

val snapshot : t -> snapshot

val totals_line : totals -> string
(** Canonical one-line rendering of every deterministic counter — the
    unit determinism fingerprints are built from.  Latency never
    appears here. *)
