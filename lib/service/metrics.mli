(** The service's metrics registry.

    Counters are split per shard so that shard loops update them
    without contention (a shard's ops are serialized — only the domain
    holding the shard's ownership token touches its counter record,
    and token handoffs are acquire/release edges), and so that totals
    are aggregated in fixed shard order — deterministic regardless of
    the domain count.

    Two families are deliberately {e non}-deterministic and therefore
    excluded from {!totals_line} (which determinism fingerprints
    hash): latency samples, and the ring-occupancy / steal counters of
    {!ring_counters} — queue depth under free-running dispatch is a
    wall-clock fact, not a function of the op stream. *)

type counters = {
  mutable served : int;  (** Ops executed (rejected ops excluded). *)
  mutable routes : int;  (** [Path] responses. *)
  mutable no_routes : int;  (** Honest [No_route] responses. *)
  mutable link_events : int;  (** Link ops that changed the graph. *)
  mutable noops : int;  (** Inapplicable ops (absent link, dead node…). *)
  mutable crashes : int;  (** Destination crashes handled. *)
  mutable partitions : int;  (** Link failures that cut nodes off. *)
  mutable reversal_steps : int;  (** Node reversal work performed. *)
  mutable rejected : int;  (** Backpressure [Rejected `Overloaded]. *)
  mutable validation_failures : int;
      (** Route responses that failed the in-service acyclicity check —
          any nonzero value is a bug in the reversal engine. *)
  mutable packets_in : int;  (** Packets accepted by [Inject] ops. *)
  mutable packets_dropped : int;  (** Refused by a full source queue. *)
  mutable packets_out : int;  (** Packets delivered by [Forward] ops. *)
  mutable packet_reversals : int;
      (** Queue-differential reversals on the forwarding plane. *)
  mutable packet_hops : int;  (** Transmissions behind the deliveries. *)
  mutable packet_queue_peak : int;
      (** Highest plane occupancy reported by a [Forward] response. *)
  mutable faults : int;
      (** Chaos faults healed ([Corrupt]/[Flip] ops that adopted and
          re-stabilized).  Deterministic: a function of the op stream. *)
}

(** Immutable aggregate of {!counters}; [stats_ops] counts service-level
    [Stats] snapshots (never attributed to a shard). *)
type totals = {
  served : int;
  routes : int;
  no_routes : int;
  link_events : int;
  noops : int;
  crashes : int;
  partitions : int;
  reversal_steps : int;
  rejected : int;
  validation_failures : int;
  packets_in : int;
  packets_dropped : int;
  packets_out : int;
  packet_reversals : int;
  packet_hops : int;
  packet_queue_peak : int;  (** Aggregated with [max], not [+]. *)
  faults : int;
  stats_ops : int;
}

(** Per-shard op-ring observability.  Occupancy fields are sampled by
    the single dispatcher after each push (and per admission on the
    windowed path, where "ring" means the window queue); steal
    counters are atomics because any idle loop may act as the thief. *)
type ring_counters = {
  mutable max_depth : int;  (** High-water occupancy. *)
  mutable depth_sum : int;
  mutable depth_samples : int;
  steal_attempts : int Atomic.t;
      (** Token claims tried by non-owner loops (successful or not). *)
  stolen : int Atomic.t;  (** Ops drained from this ring by thieves. *)
}

(** Immutable aggregate of {!ring_counters}. *)
type ring_totals = {
  max_depth : int;
  mean_depth : float;  (** [depth_sum / depth_samples] ([0.] if none). *)
  depth_samples : int;
  steal_attempts : int;
  stolen : int;
}

type t

val create : shards:int -> t
val num_shards : t -> int

val shard : t -> int -> counters
(** The mutable counter record of one shard. *)

val ring : t -> int -> ring_counters
(** The mutable ring-observability record of one shard. *)

val bump_stats : t -> unit
(** Count one served [Stats] snapshot. *)

val record_depth : t -> shard:int -> int -> unit
(** Sample one post-push ring occupancy (dispatcher side). *)

val note_steal_attempt : t -> shard:int -> unit
(** One thief token claim against the shard (whether or not it won). *)

val note_stolen : t -> shard:int -> int -> unit
(** [n] ops drained from the shard's ring by a thief. *)

val record_latency : t -> shard:int -> float -> unit
(** Append one admission-to-completion latency sample (seconds). *)

val record_recovery : t -> shard:int -> float -> unit
(** Append one chaos-heal duration sample (seconds, fault adoption to
    re-stabilization) — the recovery-time SLO's sample set. *)

val totals : t -> totals
(** Aggregated over shards in index order (deterministic). *)

val per_shard : t -> totals array
(** Each shard's counters as immutable totals ([stats_ops = 0]). *)

val per_shard_rings : t -> ring_totals array
val rings_total : t -> ring_totals
(** Aggregate ring observability: max of maxes, global mean, summed
    steal counters. *)

type snapshot = {
  snapshot_totals : totals;
  snapshot_per_shard : totals array;
  snapshot_rings : ring_totals array;
  rings_totals : ring_totals;
  latency : Lr_analysis.Stats.percentiles;  (** Seconds, over all samples. *)
  latency_samples : int;
  recovery : Lr_analysis.Stats.percentiles;
      (** Chaos-heal durations, seconds (the recovery SLO). *)
  recovery_samples : int;
}

val snapshot : t -> snapshot

val totals_line : totals -> string
(** Canonical one-line rendering of every deterministic counter — the
    unit determinism fingerprints are built from.  Latency and ring
    observability never appear here. *)

val ring_line : ring_totals -> string
(** One-line rendering of the (non-deterministic) ring counters, for
    reports only — never part of a fingerprint. *)
