(** Directed paths and distances.

    Used by the routing layer (route extraction, stretch measurements)
    and the experiment harness (how far reversals push a graph from the
    shortest routes). *)

val distances : Digraph.t -> Node.t -> int Node.Map.t
(** [distances g d]: directed hop distance {e to} [d] for every node
    that can reach it (BFS over reversed edges).  [d] maps to 0;
    unreachable nodes are absent. *)

val shortest_path : Digraph.t -> Node.t -> Node.t -> Node.t list option
(** [shortest_path g u v] is a minimum-hop directed path [u ... v]. *)

val undirected_distances : Undirected.t -> Node.t -> int Node.Map.t
(** Hop distances in the skeleton, ignoring orientation. *)

val eccentricity : Undirected.t -> Node.t -> int option
(** Greatest skeleton distance from the node; [None] if the graph is
    disconnected from it. *)

val diameter : Undirected.t -> int option
(** Greatest skeleton distance overall; [None] when disconnected or
    empty. *)

val stretch : Digraph.t -> Node.t -> float option
(** Mean over nodes of (directed route length / skeleton distance) to
    the destination — 1.0 means every node routes along a shortest
    skeleton path.  [None] unless the graph is destination-oriented and
    connected. *)
