(** Structural summaries of graphs, for the generators' tests and the
    experiment harness. *)

type degree_stats = {
  min_degree : int;
  max_degree : int;
  mean_degree : float;
}

val degree_stats : Undirected.t -> degree_stats
(** All zero on the empty graph. *)

val density : Undirected.t -> float
(** [|E| / (n(n-1)/2)]; 0 for fewer than two nodes. *)

val is_tree : Undirected.t -> bool
(** Connected with [|E| = n - 1]. *)

val sink_count : Digraph.t -> int
val source_count : Digraph.t -> int

val orientation_profile : Digraph.t -> Node.t -> string
(** One-line summary used by the CLI: nodes/edges/sinks/sources/bad. *)
