let of_digraph ?(name = "G") ?(highlight = Node.Set.empty) ?destination g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  rankdir=LR;\n";
  Node.Set.iter
    (fun u ->
      let attrs = ref [] in
      (match destination with
      | Some d when Node.equal d u -> attrs := "shape=doublecircle" :: !attrs
      | _ -> attrs := "shape=circle" :: !attrs);
      if Node.Set.mem u highlight then
        attrs := "style=filled" :: "fillcolor=lightblue" :: !attrs;
      Buffer.add_string buf
        (Printf.sprintf "  %d [%s];\n" u (String.concat "," !attrs)))
    (Digraph.nodes g);
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  %d -> %d;\n" u v))
    (Digraph.directed_edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_undirected ?(name = "G") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  Node.Set.iter
    (fun u -> Buffer.add_string buf (Printf.sprintf "  %d;\n" u))
    (Undirected.nodes g);
  Undirected.iter_edges
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  %d -- %d;\n" (Edge.lo e) (Edge.hi e)))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file path src =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc src)
