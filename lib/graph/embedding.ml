type t = { ranks : int Node.Map.t; order : Node.t list }

let of_order nodes =
  let ranks, _ =
    List.fold_left
      (fun (m, i) u ->
        if Node.Map.mem u m then invalid_arg "Embedding.of_order: duplicate"
        else (Node.Map.add u i m, i + 1))
      (Node.Map.empty, 0) nodes
  in
  { ranks; order = nodes }

let of_digraph g = Option.map of_order (Digraph.topological_sort g)
let rank t u = Node.Map.find u t.ranks
let is_left_of t u v = rank t u < rank t v

let rightmost t = function
  | [] -> None
  | u :: rest ->
      Some
        (List.fold_left
           (fun best v -> if rank t v > rank t best then v else best)
           u rest)

let order t = t.order

let pp ppf t =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " <@ ") Node.pp)
    t.order
