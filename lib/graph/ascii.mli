(** Terminal rendering of small oriented graphs.

    Lays the DAG out in topological layers (left to right — the same
    picture the paper's embedding argument draws) and lists each edge
    under the layer diagram.  Meant for examples and CLI output on
    graphs of up to a few dozen nodes; cyclic graphs fall back to an
    edge listing. *)

val render : ?destination:Node.t -> Digraph.t -> string
(** Multi-line drawing: one column per topological layer, destination
    marked with [*], sinks with [!]. *)

val render_diff : Digraph.t -> Digraph.t -> string
(** The edges whose orientation differs between two graphs over the
    same skeleton, one per line ([u->v  ==>  v->u]). *)
