(** Undirected graph skeletons.

    The paper's system model fixes an undirected graph [G = (V, E)] that
    never changes while a link reversal algorithm runs; only the
    *orientation* of the edges evolves.  This module is that constant
    skeleton. *)

type t

val empty : t
val add_node : t -> Node.t -> t

val add_edge : t -> Node.t -> Node.t -> t
(** Adds both endpoints as nodes if absent.  Idempotent.
    @raise Invalid_argument on a self-loop. *)

val remove_edge : t -> Node.t -> Node.t -> t
(** Removes the edge if present; endpoints stay in the node set. *)

val of_edges : (Node.t * Node.t) list -> t
val nodes : t -> Node.Set.t
val edges : t -> Edge.Set.t
val num_nodes : t -> int
val num_edges : t -> int
val mem_node : t -> Node.t -> bool
val mem_edge : t -> Node.t -> Node.t -> bool

val neighbors : t -> Node.t -> Node.Set.t
(** [nbrs_u] of the paper; empty for unknown nodes. *)

val degree : t -> Node.t -> int
val fold_edges : (Edge.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter_edges : (Edge.t -> unit) -> t -> unit

val is_connected : t -> bool
(** True for the empty graph and singletons. *)

val connected_components : t -> Node.Set.t list
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
