(** Graphviz DOT export, for debugging and the examples. *)

val of_digraph :
  ?name:string ->
  ?highlight:Node.Set.t ->
  ?destination:Node.t ->
  Digraph.t ->
  string
(** DOT source for the oriented graph.  The destination (if given) is
    drawn as a double circle, highlighted nodes (e.g. current sinks) are
    filled. *)

val of_undirected : ?name:string -> Undirected.t -> string

val to_file : string -> string -> unit
(** [to_file path dot_source] writes the source to [path]. *)
