(** A plain-text exchange format for oriented graphs and instances.

    Line-oriented: blank lines and [#]-comments are ignored;
    [node U] declares an isolated node; [U V] declares the directed edge
    [U -> V]; an instance file additionally carries one
    [destination D] line.  The format round-trips through
    {!digraph_to_string}/{!digraph_of_string} and is what the CLI's
    [--graph-file] option reads. *)

val digraph_to_string : Digraph.t -> string
val digraph_of_string : string -> (Digraph.t, string) result

val instance_to_string : Generators.instance -> string
val instance_of_string : string -> (Generators.instance, string) result

val save_instance : string -> Generators.instance -> unit
val load_instance : string -> (Generators.instance, string) result
(** [Error] covers unreadable files as well as parse errors. *)
