type degree_stats = {
  min_degree : int;
  max_degree : int;
  mean_degree : float;
}

let degree_stats g =
  let nodes = Undirected.nodes g in
  if Node.Set.is_empty nodes then
    { min_degree = 0; max_degree = 0; mean_degree = 0.0 }
  else
    let degrees =
      Node.Set.fold (fun u acc -> Undirected.degree g u :: acc) nodes []
    in
    {
      min_degree = List.fold_left min max_int degrees;
      max_degree = List.fold_left max 0 degrees;
      mean_degree =
        float_of_int (List.fold_left ( + ) 0 degrees)
        /. float_of_int (List.length degrees);
    }

let density g =
  let n = Undirected.num_nodes g in
  if n < 2 then 0.0
  else
    float_of_int (Undirected.num_edges g) /. (float_of_int (n * (n - 1)) /. 2.0)

let is_tree g =
  Undirected.num_nodes g > 0
  && Undirected.is_connected g
  && Undirected.num_edges g = Undirected.num_nodes g - 1

let sink_count g = Node.Set.cardinal (Digraph.sinks g)
let source_count g = Node.Set.cardinal (Digraph.sources g)

let orientation_profile g d =
  Printf.sprintf "%d nodes, %d edges, %d sinks, %d sources, %d bad"
    (Digraph.num_nodes g) (Digraph.num_edges g) (sink_count g)
    (source_count g)
    (Node.Set.cardinal (Digraph.bad_nodes g d))
