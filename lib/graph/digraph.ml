type direction = In | Out

let pp_direction ppf = function
  | In -> Format.pp_print_string ppf "in"
  | Out -> Format.pp_print_string ppf "out"

let flip = function In -> Out | Out -> In

let direction_equal a b =
  match (a, b) with In, In | Out, Out -> true | In, Out | Out, In -> false

(* [orient] maps every skeleton edge to [true] when the edge is directed
   from its low endpoint to its high endpoint. *)
type t = { skel : Undirected.t; orient : bool Edge.Map.t }

let check_endpoint e u =
  if not (Edge.incident e u) then invalid_arg "Digraph: node not an endpoint"

let orient skel ~toward =
  let orient =
    Undirected.fold_edges
      (fun e acc ->
        let target = toward e in
        check_endpoint e target;
        Edge.Map.add e (Node.equal target (Edge.hi e)) acc)
      skel Edge.Map.empty
  in
  { skel; orient }

let add_node g u = { g with skel = Undirected.add_node g.skel u }

let add_directed_edge g u v =
  let e = Edge.make u v in
  {
    skel = Undirected.add_edge g.skel u v;
    orient = Edge.Map.add e (Node.equal v (Edge.hi e)) g.orient;
  }

let of_directed_edges l =
  List.fold_left
    (fun g (u, v) -> add_directed_edge g u v)
    { skel = Undirected.empty; orient = Edge.Map.empty }
    l

let remove_edge g u v =
  if not (Undirected.mem_edge g.skel u v) then g
  else
    {
      skel = Undirected.remove_edge g.skel u v;
      orient = Edge.Map.remove (Edge.make u v) g.orient;
    }

let skeleton g = g.skel
let nodes g = Undirected.nodes g.skel
let num_nodes g = Undirected.num_nodes g.skel
let num_edges g = Undirected.num_edges g.skel
let mem_edge g u v = Undirected.mem_edge g.skel u v
let neighbors g u = Undirected.neighbors g.skel u

let edge_target g e =
  match Edge.Map.find_opt e g.orient with
  | Some toward_hi -> if toward_hi then Edge.hi e else Edge.lo e
  | None -> invalid_arg "Digraph.edge_target: not an edge"

let dir g u v =
  if Node.equal u v || not (mem_edge g u v) then
    invalid_arg "Digraph.dir: not an edge"
  else
    let e = Edge.make u v in
    if Node.equal (edge_target g e) v then Out else In

let out_neighbors g u =
  Node.Set.filter (fun v -> direction_equal (dir g u v) Out) (neighbors g u)

let in_neighbors g u =
  Node.Set.filter (fun v -> direction_equal (dir g u v) In) (neighbors g u)

let in_degree g u = Node.Set.cardinal (in_neighbors g u)
let out_degree g u = Node.Set.cardinal (out_neighbors g u)

let is_sink g u =
  let nbrs = neighbors g u in
  (not (Node.Set.is_empty nbrs))
  && Node.Set.for_all (fun v -> direction_equal (dir g u v) In) nbrs

let is_source g u =
  let nbrs = neighbors g u in
  (not (Node.Set.is_empty nbrs))
  && Node.Set.for_all (fun v -> direction_equal (dir g u v) Out) nbrs

let sinks g = Node.Set.filter (is_sink g) (nodes g)
let sources g = Node.Set.filter (is_source g) (nodes g)

let directed_edges g =
  Undirected.fold_edges
    (fun e acc ->
      let target = edge_target g e in
      (Edge.other e target, target) :: acc)
    g.skel []
  |> List.rev

let set_dir g u v d =
  if not (mem_edge g u v) then invalid_arg "Digraph.set_dir: not an edge"
  else
    let e = Edge.make u v in
    let target = match d with Out -> v | In -> u in
    { g with orient = Edge.Map.add e (Node.equal target (Edge.hi e)) g.orient }

let reverse_edge g u v = set_dir g u v (flip (dir g u v))

let reverse_toward g u ws =
  Node.Set.fold (fun w acc -> set_dir acc u w Out) ws g

let reverse_all_at g u = reverse_toward g u (neighbors g u)

(* Kahn's algorithm; [None] on a cycle. *)
let topological_sort g =
  let indeg =
    Node.Set.fold (fun u m -> Node.Map.add u (in_degree g u) m) (nodes g)
      Node.Map.empty
  in
  let initial =
    Node.Map.fold (fun u d acc -> if d = 0 then u :: acc else acc) indeg []
  in
  let rec loop indeg queue acc count =
    match queue with
    | [] -> if count = num_nodes g then Some (List.rev acc) else None
    | u :: rest ->
        let indeg, queue =
          Node.Set.fold
            (fun v (indeg, queue) ->
              let d = Node.Map.find v indeg - 1 in
              (Node.Map.add v d indeg, if d = 0 then v :: queue else queue))
            (out_neighbors g u) (indeg, rest)
        in
        loop indeg queue (u :: acc) (count + 1)
  in
  loop indeg initial [] 0

let is_acyclic g = Option.is_some (topological_sort g)

(* DFS with colors; returns a directed cycle when one exists. *)
let find_cycle g =
  let color = Hashtbl.create 16 in
  let get u = Option.value ~default:`White (Hashtbl.find_opt color u) in
  let exception Found of Node.t list in
  let rec visit path u =
    Hashtbl.replace color u `Gray;
    Node.Set.iter
      (fun v ->
        match get v with
        | `White -> visit (v :: path) v
        | `Gray ->
            (* [path] is [u; ...]; the cycle is the prefix up to [v]. *)
            let rec take acc = function
              | [] -> acc
              | x :: _ when Node.equal x v -> x :: acc
              | x :: rest -> take (x :: acc) rest
            in
            raise (Found (take [] path))
        | `Black -> ())
      (out_neighbors g u);
    Hashtbl.replace color u `Black
  in
  try
    Node.Set.iter
      (fun u -> match get u with `White -> visit [ u ] u | `Gray | `Black -> ())
      (nodes g);
    None
  with Found cycle -> Some cycle

let reaches g d =
  if not (Undirected.mem_node g.skel d) then Node.Set.empty
  else
    let rec bfs visited frontier =
      if Node.Set.is_empty frontier then visited
      else
        let next =
          Node.Set.fold
            (fun u acc -> Node.Set.union acc (in_neighbors g u))
            frontier Node.Set.empty
        in
        let next = Node.Set.diff next visited in
        bfs (Node.Set.union visited next) next
    in
    bfs (Node.Set.singleton d) (Node.Set.singleton d)

let has_path g u v =
  let rec bfs visited frontier =
    if Node.Set.mem v visited then true
    else if Node.Set.is_empty frontier then false
    else
      let next =
        Node.Set.fold
          (fun w acc -> Node.Set.union acc (out_neighbors g w))
          frontier Node.Set.empty
      in
      let next = Node.Set.diff next visited in
      bfs (Node.Set.union visited next) next
  in
  bfs (Node.Set.singleton u) (Node.Set.singleton u)

let bad_nodes g d = Node.Set.diff (nodes g) (reaches g d)
let is_destination_oriented g d = Node.Set.is_empty (bad_nodes g d)

let compare g1 g2 =
  match
    Edge.Set.compare (Undirected.edges g1.skel) (Undirected.edges g2.skel)
  with
  | 0 -> (
      match
        Node.Set.compare (Undirected.nodes g1.skel) (Undirected.nodes g2.skel)
      with
      | 0 -> Edge.Map.compare Bool.compare g1.orient g2.orient
      | c -> c)
  | c -> c

let equal g1 g2 = compare g1 g2 = 0

let orientation_bits g =
  let m = Edge.Map.cardinal g.orient in
  let words = Array.make (((m + 62) / 63) + 1) 0 in
  words.(0) <- m;
  let i = ref 0 in
  Edge.Map.iter
    (fun _ toward_hi ->
      if toward_hi then begin
        let w = 1 + (!i / 63) in
        words.(w) <- words.(w) lor (1 lsl (!i mod 63))
      end;
      incr i)
    g.orient;
  words

(* FNV-1a, 64-bit.  The feed — every node id in ascending order, then
   every skeleton edge as (lo, hi, oriented-low-to-high) in canonical
   edge order — is shared with [Lr_fast.Fast_graph.fingerprint], which
   computes the same value from flat arrays without building a
   [Digraph]; trace files use it to bind a recording to its instance. *)
let fnv_prime = 0x100000001b3L
let fnv_offset = 0xcbf29ce484222325L

let fnv_mix h x =
  Int64.mul (Int64.logxor h (Int64.of_int x)) fnv_prime

let fingerprint g =
  let h = Node.Set.fold (fun u h -> fnv_mix h u) (nodes g) fnv_offset in
  Edge.Map.fold
    (fun e toward_hi h ->
      fnv_mix (fnv_mix (fnv_mix h (Edge.lo e)) (Edge.hi e))
        (if toward_hi then 1 else 0))
    g.orient h

let canonical_key g =
  let buf = Buffer.create 128 in
  Node.Set.iter (fun u -> Buffer.add_string buf (Printf.sprintf "n%d;" u))
    (nodes g);
  Edge.Map.iter
    (fun e toward_hi ->
      Buffer.add_string buf
        (Printf.sprintf "e%d,%d,%b;" (Edge.lo e) (Edge.hi e) toward_hi))
    g.orient;
  Buffer.contents buf

let pp ppf g =
  let pp_edge ppf (u, v) = Format.fprintf ppf "%a->%a" Node.pp u Node.pp v in
  Format.fprintf ppf "@[<v>nodes: %a@,edges: @[%a@]@]" Node.Set.pp (nodes g)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       pp_edge)
    (directed_edges g)
