type t = { adj : Node.Set.t Node.Map.t; edges : Edge.Set.t }

let empty = { adj = Node.Map.empty; edges = Edge.Set.empty }

let add_node g u =
  if Node.Map.mem u g.adj then g
  else { g with adj = Node.Map.add u Node.Set.empty g.adj }

let add_edge g u v =
  let e = Edge.make u v in
  let g = add_node (add_node g u) v in
  let add_nbr a b adj =
    Node.Map.add a (Node.Set.add b (Node.Map.find a adj)) adj
  in
  { adj = add_nbr u v (add_nbr v u g.adj); edges = Edge.Set.add e g.edges }

let remove_edge g u v =
  match Edge.make u v with
  | e when not (Edge.Set.mem e g.edges) -> g
  | e ->
      let del a b adj =
        Node.Map.add a (Node.Set.remove b (Node.Map.find a adj)) adj
      in
      { adj = del u v (del v u g.adj); edges = Edge.Set.remove e g.edges }
  | exception Invalid_argument _ -> g

let of_edges l = List.fold_left (fun g (u, v) -> add_edge g u v) empty l

let nodes g =
  Node.Map.fold (fun u _ acc -> Node.Set.add u acc) g.adj Node.Set.empty

let edges g = g.edges
let num_nodes g = Node.Map.cardinal g.adj
let num_edges g = Edge.Set.cardinal g.edges
let mem_node g u = Node.Map.mem u g.adj

let mem_edge g u v =
  (not (Node.equal u v)) && Edge.Set.mem (Edge.make u v) g.edges

let neighbors g u = Node.Map.find_or ~default:Node.Set.empty u g.adj
let degree g u = Node.Set.cardinal (neighbors g u)
let fold_edges f g acc = Edge.Set.fold f g.edges acc
let iter_edges f g = Edge.Set.iter f g.edges

let component_of g start =
  let rec bfs visited frontier =
    if Node.Set.is_empty frontier then visited
    else
      let next =
        Node.Set.fold
          (fun u acc -> Node.Set.union acc (neighbors g u))
          frontier Node.Set.empty
      in
      let next = Node.Set.diff next visited in
      bfs (Node.Set.union visited next) next
  in
  bfs (Node.Set.singleton start) (Node.Set.singleton start)

let connected_components g =
  let rec loop remaining acc =
    match Node.Set.choose_opt remaining with
    | None -> List.rev acc
    | Some u ->
        let comp = component_of g u in
        loop (Node.Set.diff remaining comp) (comp :: acc)
  in
  loop (nodes g) []

let is_connected g = List.length (connected_components g) <= 1
let equal g1 g2 = Node.Map.equal Node.Set.equal g1.adj g2.adj

let pp ppf g =
  Format.fprintf ppf "@[<v>nodes: %a@,edges: %a@]" Node.Set.pp (nodes g)
    Edge.Set.pp g.edges
