type t = Node.t * Node.t

let make u v =
  if Node.equal u v then invalid_arg "Edge.make: self-loop"
  else if u < v then (u, v)
  else (v, u)

let endpoints e = e
let lo (l, _) = l
let hi (_, h) = h

let other (l, h) u =
  if Node.equal u l then h
  else if Node.equal u h then l
  else invalid_arg "Edge.other: node not incident"

let incident (l, h) u = Node.equal u l || Node.equal u h

let compare (a1, b1) (a2, b2) =
  match Node.compare a1 a2 with 0 -> Node.compare b1 b2 | c -> c

let equal e1 e2 = compare e1 e2 = 0
let pp ppf (l, h) = Format.fprintf ppf "{%a,%a}" Node.pp l Node.pp h

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = struct
  include Set.Make (Ord)

  let pp ppf s =
    Format.fprintf ppf "{@[%a@]}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
      (elements s)
end

module Map = Map.Make (Ord)
