type t = int

let compare = Int.compare
let equal = Int.equal
let hash (u : t) = u land max_int
let pp = Format.pp_print_int
let to_string = string_of_int

module Set = struct
  include Set.Make (Int)

  let pp ppf s =
    Format.fprintf ppf "{@[%a@]}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         Format.pp_print_int)
      (elements s)

  let of_range lo hi =
    let rec loop acc i = if i < lo then acc else loop (add i acc) (i - 1) in
    loop empty hi
end

module Map = struct
  include Map.Make (Int)

  let pp pp_v ppf m =
    let pp_binding ppf (k, v) = Format.fprintf ppf "%d -> %a" k pp_v v in
    Format.fprintf ppf "{@[%a@]}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
         pp_binding)
      (bindings m)

  let find_or ~default k m = match find_opt k m with Some v -> v | None -> default
end
