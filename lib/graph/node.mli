(** Node identifiers.

    Nodes are plain integers; all graph structures in [lr_graph] are
    parameterized by this module's sets and maps so that the rest of the
    code never depends on the concrete representation. *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : sig
  include Set.S with type elt = t

  val pp : Format.formatter -> t -> unit
  val of_range : int -> int -> t
  (** [of_range lo hi] is the set [{lo, lo+1, ..., hi}]; empty when
      [hi < lo]. *)
end

module Map : sig
  include Map.S with type key = t

  val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit

  val find_or : default:'a -> key -> 'a t -> 'a
  (** [find_or ~default k m] is [find k m] or [default] when unbound. *)
end
