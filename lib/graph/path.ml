let bfs ~neighbors start =
  let dist = ref (Node.Map.add start 0 Node.Map.empty) in
  let queue = Queue.create () in
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let du = Node.Map.find u !dist in
    Node.Set.iter
      (fun v ->
        if not (Node.Map.mem v !dist) then begin
          dist := Node.Map.add v (du + 1) !dist;
          Queue.add v queue
        end)
      (neighbors u)
  done;
  !dist

let distances g d =
  if not (Node.Set.mem d (Digraph.nodes g)) then Node.Map.empty
  else bfs ~neighbors:(Digraph.in_neighbors g) d

let shortest_path g u v =
  if not (Node.Set.mem u (Digraph.nodes g) && Node.Set.mem v (Digraph.nodes g))
  then None
  else
    (* BFS from [v] over reversed edges gives distance-to-v; descend
       from [u] along strictly decreasing distances. *)
    let dist = bfs ~neighbors:(Digraph.in_neighbors g) v in
    match Node.Map.find_opt u dist with
    | None -> None
    | Some _ ->
        let rec walk w acc =
          if Node.equal w v then Some (List.rev (w :: acc))
          else
            let dw = Node.Map.find w dist in
            let next =
              Node.Set.fold
                (fun x found ->
                  match found with
                  | Some _ -> found
                  | None -> (
                      match Node.Map.find_opt x dist with
                      | Some dx when dx = dw - 1 -> Some x
                      | _ -> None))
                (Digraph.out_neighbors g w)
                None
            in
            match next with
            | None -> None
            | Some x -> walk x (w :: acc)
        in
        walk u []

let undirected_distances skel start =
  if not (Undirected.mem_node skel start) then Node.Map.empty
  else bfs ~neighbors:(Undirected.neighbors skel) start

let eccentricity skel u =
  let dist = undirected_distances skel u in
  if Node.Map.cardinal dist < Node.Set.cardinal (Undirected.nodes skel) then
    None
  else Some (Node.Map.fold (fun _ d acc -> max d acc) dist 0)

let diameter skel =
  let nodes = Undirected.nodes skel in
  if Node.Set.is_empty nodes then None
  else
    Node.Set.fold
      (fun u acc ->
        match acc with
        | None -> None
        | Some best -> (
            match eccentricity skel u with
            | None -> None
            | Some e -> Some (max best e)))
      nodes (Some 0)

let stretch g d =
  if not (Digraph.is_destination_oriented g d) then None
  else
    let directed = distances g d in
    let skeleton = undirected_distances (Digraph.skeleton g) d in
    let total, count =
      Node.Set.fold
        (fun u (total, count) ->
          if Node.equal u d then (total, count)
          else
            match (Node.Map.find_opt u directed, Node.Map.find_opt u skeleton) with
            | Some dr, Some ds when ds > 0 ->
                (total +. (float_of_int dr /. float_of_int ds), count + 1)
            | _ -> (total, count))
        (Digraph.nodes g) (0.0, 0)
    in
    if count = 0 then None else Some (total /. float_of_int count)
