(** Normalized undirected edges.

    An edge [{u, v}] is stored as the ordered pair [(min u v, max u v)],
    so that structural equality coincides with set equality of the
    endpoints.  Self-loops are rejected: link reversal graphs never
    contain them. *)

type t = private Node.t * Node.t

val make : Node.t -> Node.t -> t
(** [make u v] is the normalized edge [{u, v}].
    @raise Invalid_argument if [u = v]. *)

val endpoints : t -> Node.t * Node.t
(** [(lo, hi)] with [lo < hi]. *)

val lo : t -> Node.t
val hi : t -> Node.t

val other : t -> Node.t -> Node.t
(** [other e u] is the endpoint of [e] distinct from [u].
    @raise Invalid_argument if [u] is not an endpoint of [e]. *)

val incident : t -> Node.t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Set : sig
  include Set.S with type elt = t

  val pp : Format.formatter -> t -> unit
end

module Map : sig
  include Map.S with type key = t
end
