type instance = { graph : Digraph.t; destination : Node.t }

let chain_skeleton n =
  let rec loop g i =
    if i >= n - 1 then g else loop (Undirected.add_edge g i (i + 1)) (i + 1)
  in
  loop Undirected.empty 0

let bad_chain n =
  if n < 2 then invalid_arg "Generators.bad_chain: need n >= 2";
  let skel = chain_skeleton n in
  { graph = Digraph.orient skel ~toward:Edge.hi; destination = 0 }

let good_chain n =
  if n < 2 then invalid_arg "Generators.good_chain: need n >= 2";
  let skel = chain_skeleton n in
  { graph = Digraph.orient skel ~toward:Edge.lo; destination = 0 }

let sawtooth n =
  if n < 2 then invalid_arg "Generators.sawtooth: need n >= 2";
  let skel = chain_skeleton n in
  (* Edge {i, i+1} points to i+1 when i is even, to i when i is odd. *)
  let toward e = if Edge.lo e mod 2 = 0 then Edge.hi e else Edge.lo e in
  { graph = Digraph.orient skel ~toward; destination = 0 }

let half_bad_chain n =
  if n < 3 then invalid_arg "Generators.half_bad_chain: need n >= 3";
  let skel = chain_skeleton n in
  let d = n / 2 in
  (* Every edge points to its higher endpoint: left of the destination
     that is toward [d] (good half); right of it, away from [d] (bad
     half). *)
  { graph = Digraph.orient skel ~toward:Edge.hi; destination = d }

let ring n =
  if n < 3 then invalid_arg "Generators.ring: need n >= 3";
  let rec loop g i =
    if i >= n then g else loop (Undirected.add_edge g i ((i + 1) mod n)) (i + 1)
  in
  let skel = loop Undirected.empty 0 in
  { graph = Digraph.orient skel ~toward:Edge.lo; destination = 0 }

let star ~center ~leaves ~inward =
  if leaves < 1 then invalid_arg "Generators.star: need leaves >= 1";
  let skel =
    let rec loop g i k =
      if k = 0 then g
      else if i = center then loop g (i + 1) k
      else loop (Undirected.add_edge g center i) (i + 1) (k - 1)
    in
    loop Undirected.empty 0 leaves
  in
  let toward e = if inward then center else Edge.other e center in
  { graph = Digraph.orient skel ~toward; destination = center }

let binary_tree ~depth =
  if depth < 1 then invalid_arg "Generators.binary_tree: need depth >= 1";
  let n = (1 lsl (depth + 1)) - 1 in
  let rec loop g i =
    if i >= n then g
    else
      let g = if (2 * i) + 1 < n then Undirected.add_edge g i ((2 * i) + 1) else g in
      let g = if (2 * i) + 2 < n then Undirected.add_edge g i ((2 * i) + 2) else g in
      loop g (i + 1)
  in
  let skel = loop Undirected.empty 0 in
  (* Toward the root: every edge points to the lower id (the parent). *)
  { graph = Digraph.orient skel ~toward:Edge.lo; destination = 0 }

let grid ~rows ~cols =
  if rows < 1 || cols < 1 || rows * cols < 2 then
    invalid_arg "Generators.grid: need at least two nodes";
  let id r c = (r * cols) + c in
  let skel = ref Undirected.empty in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then skel := Undirected.add_edge !skel (id r c) (id r (c + 1));
      if r + 1 < rows then skel := Undirected.add_edge !skel (id r c) (id (r + 1) c)
    done
  done;
  (* Away from corner 0: ids increase right/down, so point to high. *)
  { graph = Digraph.orient !skel ~toward:Edge.hi; destination = 0 }

let layered rng ~layers ~width ~p =
  if layers < 2 || width < 1 then
    invalid_arg "Generators.layered: need layers >= 2, width >= 1";
  let id l w = (l * width) + w in
  let skel = ref Undirected.empty in
  for l = 0 to layers - 2 do
    for w = 0 to width - 1 do
      let connected = ref false in
      for w' = 0 to width - 1 do
        if Random.State.float rng 1.0 < p then begin
          skel := Undirected.add_edge !skel (id l w') (id (l + 1) w);
          connected := true
        end
      done;
      if not !connected then
        skel :=
          Undirected.add_edge !skel
            (id l (Random.State.int rng width))
            (id (l + 1) w)
    done
  done;
  (* Edges point toward the lower layer, i.e. toward the lower id. *)
  { graph = Digraph.orient !skel ~toward:Edge.lo; destination = 0 }

let shuffle rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let random_connected_skeleton rng ~n ~extra_edges =
  if n < 2 then invalid_arg "Generators: need n >= 2";
  (* Random spanning tree: attach each node to a random earlier node of a
     random permutation. *)
  let perm = Array.init n (fun i -> i) in
  shuffle rng perm;
  let skel = ref Undirected.empty in
  for i = 1 to n - 1 do
    let j = Random.State.int rng i in
    skel := Undirected.add_edge !skel perm.(i) perm.(j)
  done;
  let attempts = ref (20 * (extra_edges + 1)) in
  let added = ref 0 in
  while !added < extra_edges && !attempts > 0 do
    decr attempts;
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if u <> v && not (Undirected.mem_edge !skel u v) then begin
      skel := Undirected.add_edge !skel u v;
      incr added
    end
  done;
  !skel

let orient_by_permutation rng skel n =
  (* Random topological permutation: the edge points to the endpoint
     appearing earlier, so all edges agree with one total order => DAG. *)
  let pos = Array.init n (fun i -> i) in
  shuffle rng pos;
  let rank = Array.make n 0 in
  Array.iteri (fun i u -> rank.(u) <- i) pos;
  Digraph.orient skel ~toward:(fun e ->
      if rank.(Edge.lo e) < rank.(Edge.hi e) then Edge.lo e else Edge.hi e)

let random_connected_dag_dest rng ~n ~extra_edges ~destination =
  if destination < 0 || destination >= n then
    invalid_arg "Generators: destination out of range";
  let skel = random_connected_skeleton rng ~n ~extra_edges in
  { graph = orient_by_permutation rng skel n; destination }

let random_connected_dag rng ~n ~extra_edges =
  random_connected_dag_dest rng ~n ~extra_edges
    ~destination:(Random.State.int rng n)

let unit_disk rng ~n ~radius =
  if n < 2 then invalid_arg "Generators.unit_disk: need n >= 2";
  let xs = Array.init n (fun _ -> Random.State.float rng 1.0) in
  let ys = Array.init n (fun _ -> Random.State.float rng 1.0) in
  let dist2 i j =
    let dx = xs.(i) -. xs.(j) and dy = ys.(i) -. ys.(j) in
    (dx *. dx) +. (dy *. dy)
  in
  let r2 = radius *. radius in
  let skel = ref Undirected.empty in
  for i = 0 to n - 1 do
    skel := Undirected.add_node !skel i;
    for j = i + 1 to n - 1 do
      if dist2 i j <= r2 then skel := Undirected.add_edge !skel i j
    done
  done;
  (* Stitch disconnected components together through nearest pairs so
     the instance is usable by algorithms that assume connectivity. *)
  let rec connect () =
    match Undirected.connected_components !skel with
    | [] | [ _ ] -> ()
    | comp :: rest ->
        let other = List.fold_left Node.Set.union Node.Set.empty rest in
        let best = ref None in
        Node.Set.iter
          (fun i ->
            Node.Set.iter
              (fun j ->
                let d = dist2 i j in
                match !best with
                | Some (_, _, bd) when bd <= d -> ()
                | _ -> best := Some (i, j, d))
              other)
          comp;
        (match !best with
        | Some (i, j, _) -> skel := Undirected.add_edge !skel i j
        | None -> ());
        connect ()
  in
  connect ();
  { graph = orient_by_permutation rng !skel n; destination = 0 }

let all_pairs n =
  let rec loop u v acc =
    if u >= n then List.rev acc
    else if v >= n then loop (u + 1) (u + 2) acc
    else loop u (v + 1) ((u, v) :: acc)
  in
  loop 0 1 []

let all_connected_graphs n =
  if n < 1 then []
  else if n = 1 then [ Undirected.add_node Undirected.empty 0 ]
  else
    let pairs = all_pairs n in
    let m = List.length pairs in
    let rec masks k = if k = 0 then [ [] ] else
      let rest = masks (k - 1) in
      List.concat_map (fun tail -> [ true :: tail; false :: tail ]) rest
    in
    masks m
    |> List.filter_map (fun mask ->
           let g =
             List.fold_left2
               (fun g (u, v) keep ->
                 if keep then Undirected.add_edge g u v else g)
               Undirected.empty pairs mask
           in
           let g =
             List.fold_left (fun g u -> Undirected.add_node g u) g
               (List.init n Fun.id)
           in
           if Undirected.is_connected g && Undirected.num_edges g >= n - 1 then
             Some g
           else None)

let all_orientations skel =
  let edges = Edge.Set.elements (Undirected.edges skel) in
  let base =
    Digraph.orient skel ~toward:Edge.lo
  in
  let rec loop gs = function
    | [] -> gs
    | e :: rest ->
        let u, v = Edge.endpoints e in
        let gs =
          List.concat_map
            (fun g -> [ Digraph.set_dir g u v Digraph.Out; Digraph.set_dir g u v Digraph.In ])
            gs
        in
        loop gs rest
  in
  loop [ base ] edges

let all_dag_instances n =
  all_connected_graphs n
  |> List.concat_map (fun skel ->
         all_orientations skel
         |> List.filter Digraph.is_acyclic
         |> List.concat_map (fun graph ->
                List.init n (fun destination -> { graph; destination })))
