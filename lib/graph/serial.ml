let digraph_to_string g =
  let buf = Buffer.create 256 in
  let connected =
    Digraph.directed_edges g
    |> List.fold_left
         (fun acc (u, v) ->
           Buffer.add_string buf (Printf.sprintf "%d %d\n" u v);
           Node.Set.add u (Node.Set.add v acc))
         Node.Set.empty
  in
  Node.Set.iter
    (fun u ->
      if not (Node.Set.mem u connected) then
        Buffer.add_string buf (Printf.sprintf "node %d\n" u))
    (Digraph.nodes g);
  Buffer.contents buf

let parse_lines s =
  String.split_on_char '\n' s
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.filter_map (fun (i, line) ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None else Some (i, line))

let parse_line (i, line) =
  let fail () = Error (Printf.sprintf "line %d: cannot parse %S" i line) in
  match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
  | [ "node"; u ] -> (
      match int_of_string_opt u with
      | Some u -> Ok (`Node u)
      | None -> fail ())
  | [ "destination"; d ] -> (
      match int_of_string_opt d with
      | Some d -> Ok (`Destination d)
      | None -> fail ())
  | [ u; v ] -> (
      match (int_of_string_opt u, int_of_string_opt v) with
      | Some u, Some v when u <> v -> Ok (`Edge (u, v))
      | Some _, Some _ -> Error (Printf.sprintf "line %d: self-loop" i)
      | _ -> fail ())
  | _ -> fail ()

let fold_items s =
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line line with
        | Ok item -> loop (item :: acc) rest
        | Error _ as e -> e)
  in
  loop [] (parse_lines s)

let digraph_of_items items =
  List.fold_left
    (fun g item ->
      match item with
      | `Node u -> Digraph.add_node g u
      | `Edge (u, v) -> Digraph.add_directed_edge g u v
      | `Destination _ -> g)
    (Digraph.of_directed_edges [])
    items

let digraph_of_string s = Result.map digraph_of_items (fold_items s)

let instance_to_string inst =
  Printf.sprintf "destination %d\n%s" inst.Generators.destination
    (digraph_to_string inst.Generators.graph)

let instance_of_string s =
  match fold_items s with
  | Error _ as e -> e
  | Ok items -> (
      let dests =
        List.filter_map (function `Destination d -> Some d | _ -> None) items
      in
      match dests with
      | [ destination ] ->
          let graph = digraph_of_items items in
          if Node.Set.mem destination (Digraph.nodes graph) then
            Ok { Generators.graph; destination }
          else Error "destination is not a node of the graph"
      | [] -> Error "missing 'destination D' line"
      | _ -> Error "multiple destination lines")

let save_instance path inst =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (instance_to_string inst))

let load_instance path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> instance_of_string s
  | exception Sys_error e -> Error e
