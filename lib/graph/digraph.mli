(** Oriented graphs: an undirected skeleton plus an orientation.

    This is the paper's [G' = (V, E')]: for every skeleton edge [{u,v}]
    exactly one of [(u,v)], [(v,u)] is present.  Link reversal
    algorithms only ever flip orientations, so the skeleton is shared
    and immutable.  All updates are persistent. *)

type t

type direction = In | Out
(** Direction of an edge from one endpoint's perspective: [dir g u v =
    Out] means the edge is directed [u -> v] (the paper's
    [dir\[u,v\] = out]). *)

val pp_direction : Format.formatter -> direction -> unit
val flip : direction -> direction

val direction_equal : direction -> direction -> bool
(** Monomorphic equality, for hot paths where polymorphic [=] is
    banned (see the L1 lint rule). *)

(** {1 Construction} *)

val orient : Undirected.t -> toward:(Edge.t -> Node.t) -> t
(** [orient skel ~toward] orients every skeleton edge [e] toward node
    [toward e] (which must be an endpoint of [e]).
    @raise Invalid_argument if [toward e] is not an endpoint. *)

val of_directed_edges : (Node.t * Node.t) list -> t
(** [of_directed_edges [(u1,v1); ...]] builds the skeleton and directs
    each edge [ui -> vi].  Later pairs overwrite earlier orientations of
    the same edge. *)

val add_directed_edge : t -> Node.t -> Node.t -> t
(** [add_directed_edge g u v] adds (or reorients) edge [{u,v}] as
    [u -> v], extending the skeleton if needed. *)

val remove_edge : t -> Node.t -> Node.t -> t
val add_node : t -> Node.t -> t

(** {1 Observation} *)

val skeleton : t -> Undirected.t
val nodes : t -> Node.Set.t
val num_nodes : t -> int
val num_edges : t -> int
val mem_edge : t -> Node.t -> Node.t -> bool
val neighbors : t -> Node.t -> Node.Set.t

val dir : t -> Node.t -> Node.t -> direction
(** @raise Invalid_argument if [{u,v}] is not a skeleton edge. *)

val edge_target : t -> Edge.t -> Node.t
(** The endpoint the edge points to. *)

val in_neighbors : t -> Node.t -> Node.Set.t
val out_neighbors : t -> Node.t -> Node.Set.t
val in_degree : t -> Node.t -> int
val out_degree : t -> Node.t -> int

val is_sink : t -> Node.t -> bool
(** All incident edges incoming and degree > 0?  Isolated nodes are not
    sinks (they can never enable a reversal). *)

val is_source : t -> Node.t -> bool
val sinks : t -> Node.Set.t
val sources : t -> Node.Set.t

val directed_edges : t -> (Node.t * Node.t) list
(** Each edge as [(from, to)], sorted by normalized edge. *)

(** {1 Reversal} *)

val set_dir : t -> Node.t -> Node.t -> direction -> t
(** [set_dir g u v Out] directs the existing edge [{u,v}] as [u -> v].
    @raise Invalid_argument if [{u,v}] is not a skeleton edge. *)

val reverse_edge : t -> Node.t -> Node.t -> t
(** Flip the orientation of the existing edge [{u,v}]. *)

val reverse_all_at : t -> Node.t -> t
(** Make every edge incident to [u] outgoing from [u]. *)

val reverse_toward : t -> Node.t -> Node.Set.t -> t
(** [reverse_toward g u ws] directs the edge [{u,w}] as [u -> w] for
    every [w] in [ws] (each must be a neighbor of [u]). *)

(** {1 Global properties} *)

val is_acyclic : t -> bool
val topological_sort : t -> Node.t list option
(** Sources first; [None] when cyclic. *)

val find_cycle : t -> Node.t list option
(** A directed cycle [v1; ...; vk] (with the edge [vk -> v1]), if any. *)

val reaches : t -> Node.t -> Node.Set.t
(** [reaches g d] is the set of nodes having a directed path to [d]
    (including [d] itself). *)

val has_path : t -> Node.t -> Node.t -> bool

val is_destination_oriented : t -> Node.t -> bool
(** Every node has a directed path to the destination. *)

val bad_nodes : t -> Node.t -> Node.Set.t
(** Nodes with no directed path to the destination — the paper's
    [n_b] count is the cardinality of this set. *)

(** {1 Equality and keys} *)

val equal : t -> t -> bool
val compare : t -> t -> int

val canonical_key : t -> string
(** Deterministic key usable for hashing states in a model checker:
    equal graphs (same skeleton, same orientation) yield equal keys. *)

val fingerprint : t -> int64
(** 64-bit FNV-1a digest of the graph — node ids, skeleton edges and
    orientation bits in canonical order.  Equal graphs yield equal
    fingerprints; unequal graphs collide with probability ~2⁻⁶⁴.  The
    trace subsystem stores it in headers/footers to bind a recorded
    execution to its instance and final orientation;
    [Lr_fast.Fast_graph.fingerprint] computes the identical value from
    the flat-array representation. *)

val orientation_bits : t -> int array
(** The orientation packed into a bitset, one bit per skeleton edge in
    canonical (sorted) edge order, prefixed by the edge count.  Among
    graphs sharing one skeleton — the only situation a link reversal
    state space ever compares — equal bit arrays iff equal graphs.
    A few machine words instead of a [canonical_key] string; the basis
    of the model checker's hashed frontier keys. *)

val pp : Format.formatter -> t -> unit
