(** Graph families used by the tests, examples and the experiment
    harness.

    Every generator returns an acyclic oriented graph together with the
    destination node — the two inputs of a link reversal algorithm.
    Randomized generators take an explicit [Random.State.t] so that all
    experiments are reproducible from a seed. *)

type instance = { graph : Digraph.t; destination : Node.t }

val bad_chain : int -> instance
(** [bad_chain n]: path [0 - 1 - ... - n-1], destination [0], every edge
    directed *away* from the destination.  All [n-1] non-destination
    nodes are bad; this is the classic Θ(n²)-work family for both FR and
    PR.  @raise Invalid_argument when [n < 2]. *)

val good_chain : int -> instance
(** Same path, all edges directed toward the destination: already
    destination-oriented, zero work. *)

val sawtooth : int -> instance
(** [sawtooth n]: path [0 - 1 - ... - n-1], destination [0], edge
    orientations alternating ([0 -> 1 <- 2 -> 3 <- ...]).  Partial
    Reversal performs exactly [(n/2)²] node steps on this family —
    the Θ(n_b²) worst case the paper attributes to PR (citing Welch &
    Walter / Busch et al.).  @raise Invalid_argument when [n < 2]. *)

val half_bad_chain : int -> instance
(** Path with destination in the middle; the left half points toward the
    destination, the right half away from it. *)

val ring : int -> instance
(** Cycle skeleton on [n >= 3] nodes oriented acyclically (every edge
    toward the lower id), destination [0]. *)

val star : center:Node.t -> leaves:int -> inward:bool -> instance
(** Star with given center and [leaves] leaves.  [inward] directs every
    edge toward the center; the destination is the center. *)

val binary_tree : depth:int -> instance
(** Complete binary tree, edges toward the root (node 0), which is the
    destination. *)

val grid : rows:int -> cols:int -> instance
(** [rows*cols] grid; destination is the corner node 0; all edges point
    away from it (right/down), so every non-destination node is bad. *)

val layered : Random.State.t -> layers:int -> width:int -> p:float -> instance
(** Random layered DAG: [layers] layers of [width] nodes; each
    consecutive-layer pair is connected with probability [p] (at least
    one edge per node is forced, keeping the graph connected).  Edges
    point toward lower layers; destination is node 0 in layer 0. *)

val random_connected_dag :
  Random.State.t -> n:int -> extra_edges:int -> instance
(** Random connected DAG: a random spanning tree plus [extra_edges]
    random chords, all oriented by a random topological permutation; the
    destination is a random node (so, in general, some nodes are bad). *)

val random_connected_dag_dest :
  Random.State.t -> n:int -> extra_edges:int -> destination:Node.t -> instance
(** Like {!random_connected_dag} with a fixed destination id in
    [0 .. n-1]. *)

val unit_disk :
  Random.State.t -> n:int -> radius:float -> instance
(** Unit-disk graph — the standard ad-hoc radio model: [n] nodes placed
    uniformly in the unit square, linked when within [radius] of each
    other.  A random spanning tree over near-neighbours is added when
    the disk graph alone is disconnected, so the result is always
    connected.  Orientation by a random topological permutation;
    destination is node 0. *)

val all_connected_graphs : int -> Undirected.t list
(** All connected undirected graphs on nodes [0..n-1], up to nothing
    (no isomorphism reduction) — usable for exhaustive model checking
    for [n <= 5]. *)

val all_orientations : Undirected.t -> Digraph.t list
(** All [2^|E|] orientations of the skeleton (cyclic ones included). *)

val all_dag_instances : int -> instance list
(** All (graph, destination) pairs where the graph is a connected
    acyclic orientation on [0..n-1] and every node is a candidate
    destination.  Grows fast; intended for [n <= 4] exhaustive checks
    and sampled use at [n = 5]. *)
