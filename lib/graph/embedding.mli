(** Left-to-right embeddings of a DAG.

    The acyclicity proof of the paper (Invariants 4.1/4.2) embeds the
    initial DAG in the plane so that every initial edge points from left
    to right.  Any topological order of [G'_init] realizes this; the
    embedding is computed once and never changes afterwards, even though
    the orientation of the graph does. *)

type t

val of_digraph : Digraph.t -> t option
(** A left-to-right embedding of the given oriented graph, or [None]
    when the graph is cyclic. *)

val of_order : Node.t list -> t
(** Embedding placing nodes in the given left-to-right order.
    @raise Invalid_argument on duplicate nodes. *)

val rank : t -> Node.t -> int
(** Position from the left, starting at 0.
    @raise Not_found for unknown nodes. *)

val is_left_of : t -> Node.t -> Node.t -> bool
(** [is_left_of emb u v] iff [u] is strictly left of [v]. *)

val rightmost : t -> Node.t list -> Node.t option
val order : t -> Node.t list
val pp : Format.formatter -> t -> unit
