let layers g =
  (* Longest-path layering: layer(u) = 1 + max layer of in-neighbours. *)
  match Digraph.topological_sort g with
  | None -> None
  | Some order ->
      let layer = Hashtbl.create 16 in
      List.iter
        (fun u ->
          let l =
            Node.Set.fold
              (fun v acc -> max acc (1 + Hashtbl.find layer v))
              (Digraph.in_neighbors g u)
              0
          in
          Hashtbl.replace layer u l)
        order;
      let max_layer = Hashtbl.fold (fun _ l acc -> max l acc) layer 0 in
      let buckets = Array.make (max_layer + 1) [] in
      List.iter
        (fun u ->
          let l = Hashtbl.find layer u in
          buckets.(l) <- u :: buckets.(l))
        (List.rev order);
      Some (Array.map (List.sort Node.compare) buckets)

let node_tag ?destination g u =
  let base = Node.to_string u in
  let base =
    match destination with
    | Some d when Node.equal d u -> "*" ^ base
    | _ -> base
  in
  if Digraph.is_sink g u then base ^ "!" else base

let render ?destination g =
  let buf = Buffer.create 256 in
  (match layers g with
  | Some buckets ->
      let columns =
        Array.to_list buckets
        |> List.map (fun nodes ->
               List.map (node_tag ?destination g) nodes)
      in
      let height =
        List.fold_left (fun acc col -> max acc (List.length col)) 0 columns
      in
      let width col =
        List.fold_left (fun acc s -> max acc (String.length s)) 1 col
      in
      let widths = List.map width columns in
      for row = 0 to height - 1 do
        List.iter2
          (fun col w ->
            let cell = match List.nth_opt col row with Some s -> s | None -> "" in
            Buffer.add_string buf (Printf.sprintf "%-*s   " w cell))
          columns widths;
        Buffer.add_char buf '\n'
      done;
      Buffer.add_string buf "(layers left to right; * destination, ! sink)\n"
  | None -> Buffer.add_string buf "(cyclic graph)\n");
  Buffer.add_string buf "edges: ";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (u, v) -> Printf.sprintf "%d->%d" u v)
          (Digraph.directed_edges g)));
  Buffer.add_char buf '\n';
  Buffer.contents buf

let render_diff g1 g2 =
  let buf = Buffer.create 128 in
  Undirected.iter_edges
    (fun e ->
      let u, v = Edge.endpoints e in
      match (Digraph.dir g1 u v, Digraph.dir g2 u v) with
      | Digraph.Out, Digraph.In ->
          Buffer.add_string buf (Printf.sprintf "%d->%d  ==>  %d->%d\n" u v v u)
      | Digraph.In, Digraph.Out ->
          Buffer.add_string buf (Printf.sprintf "%d->%d  ==>  %d->%d\n" v u u v)
      | _ -> ())
    (Digraph.skeleton g1);
  if Buffer.length buf = 0 then "(no differences)\n" else Buffer.contents buf
