open Lr_graph

type engine = Pr | Fr | New_pr | Maint

let engine_name = function
  | Pr -> "pr"
  | Fr -> "fr"
  | New_pr -> "newpr"
  | Maint -> "maint"

let engine_of_string = function
  | "pr" -> Some Pr
  | "fr" -> Some Fr
  | "newpr" -> Some New_pr
  | "maint" -> Some Maint
  | _ -> None

let engine_tag = function Pr -> 0 | Fr -> 1 | New_pr -> 2 | Maint -> 3

let engine_of_tag = function
  | 0 -> Some Pr
  | 1 -> Some Fr
  | 2 -> Some New_pr
  | 3 -> Some Maint
  | _ -> None

type t =
  | Step of { node : int; slots : int array }
  | Dummy of int
  | Stale of int
  | Perturb of { node : int; slots : int array }

type header = {
  engine : engine;
  seed : int;
  n : int;
  destination : int;
  edges : (int * int) list;
  fingerprint : int64;
}

type summary = {
  work : int;
  edge_reversals : int;
  wall_ns : int;
  final_fingerprint : int64;
}

let header_of_config ?(seed = -1) engine config =
  let g = config.Linkrev.Config.initial in
  {
    engine;
    seed;
    n = Digraph.num_nodes g;
    destination = config.Linkrev.Config.destination;
    edges = Digraph.directed_edges g;
    fingerprint = Digraph.fingerprint g;
  }

let instance_of_header h =
  let g =
    List.fold_left
      (fun g u -> Digraph.add_node g u)
      (Digraph.of_directed_edges h.edges)
      (List.init h.n Fun.id)
  in
  { Generators.graph = g; destination = h.destination }

let config_of_header h =
  let inst = instance_of_header h in
  if Digraph.num_nodes inst.Generators.graph <> h.n then
    Error "header: edge list mentions nodes outside 0..n-1"
  else if Digraph.fingerprint inst.Generators.graph <> h.fingerprint then
    Error "header: instance does not match its fingerprint"
  else
    Linkrev.Config.make inst.Generators.graph ~destination:h.destination

let pp ppf = function
  | Step { node; slots } ->
      Format.fprintf ppf "step %d -> slots {%s}" node
        (String.concat "," (List.map string_of_int (Array.to_list slots)))
  | Dummy u -> Format.fprintf ppf "dummy %d" u
  | Stale u -> Format.fprintf ppf "stale %d" u
  | Perturb { node; slots } ->
      Format.fprintf ppf "perturb %d -> slots {%s}" node
        (String.concat "," (List.map string_of_int (Array.to_list slots)))
