(** Buffered binary trace writer.

    Wire format (all integers unsigned LEB128 varints unless noted):
    {v
    "LRT1"  version  engine-tag(byte)  seed+1  n  destination
    |edges|  (u v)*  fingerprint(8 bytes LE)
    event*  end-record
    v}
    Every event starts with a tag byte whose low 2 bits name the kind.
    A step is [tag node slot*] with the slot count packed into the tag
    byte's high 6 bits ([0x3f] = escape: an explicit varint count
    follows the tag); slots index the node's sorted adjacency row, so
    the common small-degree step costs 1 tag byte + 1 byte per slot
    regardless of [n].  Dummy and stale are [0x02 node] / [0x03 node]
    (high bits zero); the end record is [0x00 work edge_reversals
    wall_ns final_fingerprint(8 bytes LE)].  A file without an end
    record is a truncated recording and {!Reader} rejects it.

    Version 2 adds the perturbation event on the end-record's tag bits
    with a {e non-zero} count field: [hi = slot-count + 1] (escape
    [0x3f] as in steps), then [node slot*].  The end record always has
    high bits zero, so the two cannot collide; version-1 files never
    contain perturbations and version-1 readers reject version-2 files
    up front by version number.  {!Reader} accepts both versions.

    The writer buffers 64 KiB and never allocates on the per-event
    path, so recording keeps the engines' step loops allocation-free
    (D-O1 measures the residual overhead). *)

type t

type stats = { events : int; bytes : int }

val magic : string

val version : int
(** The version written to new files. *)

val min_version : int
(** The oldest version {!Reader} still accepts. *)

val tag_end : int
val tag_step : int
val tag_dummy : int
val tag_stale : int

val create : string -> Event.header -> t
(** Opens the file and writes the header. *)

val step : t -> node:int -> slots:int array -> len:int -> unit
(** Appends a step event reversing the first [len] entries of
    [slots] (ascending indices into [node]'s sorted adjacency row; the
    array may be a larger scratch buffer). *)

val dummy : t -> int -> unit
val stale : t -> int -> unit

val perturb : t -> node:int -> slots:int array -> len:int -> unit
(** Appends a perturbation event (chaos fault injection): the first
    [len] entries of [slots] are the ascending adjacency-row indices of
    the incoming edges of [node] that were forcibly flipped outward. *)

val stats : t -> stats
(** Events and bytes written so far (buffered bytes included). *)

val close : t -> Event.summary -> stats
(** Writes the end record, flushes and closes the file. *)

val abort : t -> unit
(** Flush and close {e without} an end record — the file is left
    deliberately truncated (e.g. when the recorded run raised). *)
