(* Buffered varint encoder.  The step loop of a recorded engine calls
   into this once per event, so the hot path is branch-light: one
   capacity check per bounded write group, unsafe byte stores into a
   64 KiB scratch buffer, no allocation. *)

type t = {
  oc : out_channel;
  buf : Bytes.t;
  mutable pos : int;
  mutable flushed : int;
  mutable events : int;
  mutable closed : bool;
}

type stats = { events : int; bytes : int }

let magic = "LRT1"
let version = 2
let min_version = 1
let tag_end = 0
let tag_step = 1
let tag_dummy = 2
let tag_stale = 3
let buf_size = 1 lsl 16

let flush t =
  if t.pos > 0 then begin
    output t.oc t.buf 0 t.pos;
    t.flushed <- t.flushed + t.pos;
    t.pos <- 0
  end

(* Room for [k] more bytes.  Callers reserve before a bounded group of
   puts; a varint needs at most 10 bytes. *)
let ensure t k = if t.pos + k > buf_size then flush t

let put_byte t b =
  Bytes.unsafe_set t.buf t.pos (Char.unsafe_chr (b land 0xff));
  t.pos <- t.pos + 1

(* Unsigned LEB128; requires [v >= 0] (all wire quantities are). *)
let rec put_varint t v =
  if v < 0x80 then put_byte t v
  else begin
    put_byte t (v land 0x7f lor 0x80);
    put_varint t (v lsr 7)
  end

let put_fixed64 t x =
  ensure t 8;
  for i = 0 to 7 do
    put_byte t (Int64.to_int (Int64.shift_right_logical x (8 * i)) land 0xff)
  done

let create path (h : Event.header) =
  let oc = open_out_bin path in
  let t =
    { oc; buf = Bytes.create buf_size; pos = 0; flushed = 0; events = 0;
      closed = false }
  in
  Bytes.blit_string magic 0 t.buf 0 4;
  t.pos <- 4;
  put_varint t version;
  put_byte t (Event.engine_tag h.Event.engine);
  put_varint t (h.Event.seed + 1);
  (* -1 = unknown, stored as 0 *)
  put_varint t h.Event.n;
  put_varint t h.Event.destination;
  put_varint t (List.length h.Event.edges);
  List.iter
    (fun (u, v) ->
      ensure t 20;
      put_varint t u;
      put_varint t v)
    h.Event.edges;
  put_fixed64 t h.Event.fingerprint;
  t

(* A step's tag byte packs the slot count into its high 6 bits
   ([0x3f] = escape: explicit varint count follows), so the common
   small-degree step costs one byte for tag + count together. *)
let step (t : t) ~node ~slots ~len =
  t.events <- t.events + 1;
  ensure t 31;
  if len < 0x3f then put_byte t (tag_step lor (len lsl 2))
  else begin
    put_byte t (tag_step lor (0x3f lsl 2));
    put_varint t len
  end;
  put_varint t node;
  for i = 0 to len - 1 do
    ensure t 10;
    put_varint t (Array.unsafe_get slots i)
  done

let event1 (t : t) tag u =
  t.events <- t.events + 1;
  ensure t 11;
  put_byte t tag;
  put_varint t u

let dummy t u = event1 t tag_dummy u
let stale t u = event1 t tag_stale u

(* A perturbation reuses [tag_end]'s tag bits with a non-zero count
   field: the end record is always written with high bits 0, so
   [hi = k+1] (escape 0x3f as in steps) is unambiguous.  Version-1
   readers reject these files by version, never misparse them. *)
let perturb (t : t) ~node ~slots ~len =
  t.events <- t.events + 1;
  ensure t 31;
  if len + 1 < 0x3f then put_byte t (tag_end lor ((len + 1) lsl 2))
  else begin
    put_byte t (tag_end lor (0x3f lsl 2));
    put_varint t len
  end;
  put_varint t node;
  for i = 0 to len - 1 do
    ensure t 10;
    put_varint t (Array.unsafe_get slots i)
  done

let stats (t : t) = { events = t.events; bytes = t.flushed + t.pos }

let close t (s : Event.summary) =
  if t.closed then invalid_arg "Writer.close: already closed";
  ensure t 31;
  put_byte t tag_end;
  put_varint t s.Event.work;
  put_varint t s.Event.edge_reversals;
  put_varint t s.Event.wall_ns;
  put_fixed64 t s.Event.final_fingerprint;
  let r = stats t in
  flush t;
  close_out t.oc;
  t.closed <- true;
  r

let abort t =
  if not t.closed then begin
    flush t;
    close_out t.oc;
    t.closed <- true
  end
