(** Streaming trace decoder.

    Reads a trace file incrementally (64 KiB buffer — a 10⁷-event D-F9
    trace is never resident in memory) and validates as it goes: magic,
    version, engine tag, node ids against the header's [n], and the
    mandatory end-of-trace summary.  Every malformation — including a
    truncated or bit-flipped file — is reported as [Error message]
    carrying the byte offset; no exception escapes decode internals. *)

type t

type item =
  | Event of Event.t
  | End of Event.summary
      (** The end record; {!next} only returns it when the file ends
          exactly there (trailing bytes are an error). *)

val open_file : string -> (t, string) result
(** Opens and decodes the header. *)

val header : t -> Event.header
val next : t -> (item, string) result
val bytes_read : t -> int
val close : t -> unit

val fold :
  string ->
  init:'a ->
  f:('a -> int -> Event.t -> ('a, string) result) ->
  finish:('a -> Event.summary -> ('a, string) result) ->
  ('a, string) result
(** One-pass driver: opens [path], applies [f] to every event (with its
    index), requires a well-formed end record, passes it to [finish],
    and always closes the file.  The first [Error] — from decoding, [f]
    or [finish] — stops the pass. *)
