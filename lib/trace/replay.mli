(** Deterministic replay of trace files.

    Replay re-executes a trace against an independent implementation of
    the recorded engine's semantics and fails loudly on the first
    divergence.  Two targets:

    - {!file} replays on a fresh flat-array cursor (an independent
      re-implementation of the {!Lr_fast} step rules): every event's
      precondition is checked — the node was a live non-destination
      sink, the reversed set is exactly what the engine would reverse
      (PR list complement, FR all, NewPR parity set), dummy steps have
      an empty parity set — and the end record's work totals and final
      orientation fingerprint must match the replayed state bit for
      bit.
    - {!against_automaton} replays the same trace on the {e persistent}
      automata ({!Linkrev.Pr} via [One_step_pr], {!Linkrev.Full_reversal},
      {!Linkrev.New_pr}) — the cross-engine differential check: a trace
      recorded on the flat engines must drive the reference automata to
      the same final orientation with the same work totals. *)

open Lr_graph

(** {1 Incremental cursor} *)

type cursor
(** Replayed engine state: orientation, in-degrees, PR lists, NewPR
    counters, and running metrics. *)

val cursor : Event.header -> (cursor, string) result
(** Initial state for the header's instance; [Error] when the embedded
    edge list contradicts its fingerprint. *)

val apply : cursor -> Event.t -> (unit, string) result
(** Checks the event's precondition and applies it. *)

val check_summary : cursor -> Event.summary -> (unit, string) result
val fingerprint : cursor -> int64
val to_digraph : cursor -> Digraph.t
val is_sink : cursor -> int -> bool
val header_of : cursor -> Event.header

val lists : cursor -> Node.Set.t Node.Map.t
(** The PR list state as {!Linkrev.Pr.state} represents it (non-empty
    lists only) — lets {!Audit} materialize a persistent state at any
    point of the replay. *)

val counts : cursor -> int Node.Map.t
(** NewPR counters, non-zero only, as {!Linkrev.New_pr.state}. *)

val metrics : cursor -> int * int * int * int
(** [(steps, dummies, stales, edge_reversals)] so far. *)

val perturbs : cursor -> int
(** Perturbation events applied so far (maint traces only). *)

val steps_per_node : cursor -> int array

(** {1 Whole-file replay} *)

type report = {
  header : Event.header;
  summary : Event.summary;
  events : int;
  steps : int;  (** Step events (for NewPR: non-dummy steps). *)
  dummies : int;
  stales : int;
  perturbs : int;  (** Fault-injection events (maint traces only). *)
  edge_reversals : int;
  steps_per_node : int array;
  bytes : int;
}

val file : string -> (report, string) result
(** Replay [path] on a fresh cursor; first divergence (or decode error)
    is returned as [Error] with the event index. *)

type differential = {
  final_graph : Digraph.t;
  automaton_work : int;
  automaton_reversals : int;
}

val against_automaton : string -> (differential, string) result
(** Replay [path] on the corresponding persistent automaton.  [Error]
    for maint traces: the persistent automata have no fault-injection
    transition, so chaos recoveries are checked with {!file} and
    {!Audit.run} instead. *)
