(* Streaming decoder.  All decode failures — truncation, bad magic,
   varint overflow, out-of-range ids — are raised internally as
   [Corrupt] and surface as [Error] at every public entry point, so a
   damaged file can never leak an exception from decode internals. *)

exception Corrupt of string

type t = {
  ic : in_channel;
  buf : Bytes.t;
  mutable pos : int;  (* cursor within [buf.(0 .. len-1)] *)
  mutable len : int;
  mutable base : int;  (* file offset of buf.(0) *)
  mutable eof : bool;
  header : Event.header;
}

type item = Event of Event.t | End of Event.summary

let buf_size = 1 lsl 16

let corrupt t fmt =
  Printf.ksprintf (fun m ->
      raise (Corrupt (Printf.sprintf "byte %d: %s" (t.base + t.pos) m)))
    fmt

let refill t =
  if t.pos >= t.len && not t.eof then begin
    t.base <- t.base + t.len;
    t.pos <- 0;
    t.len <- input t.ic t.buf 0 buf_size;
    if t.len = 0 then t.eof <- true
  end

let at_eof t =
  refill t;
  t.eof && t.pos >= t.len

let byte t =
  refill t;
  if t.pos >= t.len then corrupt t "truncated file";
  let b = Char.code (Bytes.unsafe_get t.buf t.pos) in
  t.pos <- t.pos + 1;
  b

let varint t =
  let rec go shift acc =
    if shift > 62 then corrupt t "varint overflow";
    let b = byte t in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let fixed64 t =
  let x = ref 0L in
  for i = 0 to 7 do
    x := Int64.logor !x (Int64.shift_left (Int64.of_int (byte t)) (8 * i))
  done;
  !x

let node_id t n what =
  let u = varint t in
  if u >= n then corrupt t "%s %d out of range (n = %d)" what u n;
  u

let read_header raw =
  let m = Bytes.create 4 in
  (try really_input raw.ic m 0 4
   with End_of_file -> raise (Corrupt "truncated file: no magic"));
  if Bytes.to_string m <> Writer.magic then
    raise (Corrupt "bad magic: not an lr_trace file");
  raw.base <- 4;
  let version = varint raw in
  if version < Writer.min_version || version > Writer.version then
    raise (Corrupt (Printf.sprintf "unsupported trace version %d" version));
  let engine =
    let tag = byte raw in
    match Event.engine_of_tag tag with
    | Some e -> e
    | None -> corrupt raw "unknown engine tag %d" tag
  in
  let seed = varint raw - 1 in
  let n = varint raw in
  let destination = node_id raw n "destination" in
  let num_edges = varint raw in
  if num_edges > n * n then corrupt raw "implausible edge count %d" num_edges;
  let edges =
    List.init num_edges (fun _ ->
        let u = node_id raw n "edge endpoint" in
        let v = node_id raw n "edge endpoint" in
        if u = v then corrupt raw "self-loop %d-%d" u v;
        (u, v))
  in
  let fingerprint = fixed64 raw in
  { Event.engine; seed; n; destination; edges; fingerprint }

let open_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic -> (
      let raw =
        {
          ic;
          buf = Bytes.create buf_size;
          pos = 0;
          len = 0;
          base = 0;
          eof = false;
          header =
            (* placeholder, replaced below *)
            { Event.engine = Event.Pr; seed = -1; n = 0; destination = 0;
              edges = []; fingerprint = 0L };
        }
      in
      match read_header raw with
      | header -> Ok { raw with header }
      | exception Corrupt m ->
          close_in_noerr ic;
          Error m)

let header t = t.header
let bytes_read t = t.base + t.pos
let close t = close_in_noerr t.ic

let next t =
  let n = t.header.Event.n in
  match
    if at_eof t then corrupt t "truncated file: missing end-of-trace summary";
    let b = byte t in
    let tag = b land 0x03 in
    let hi = b lsr 2 in
    if tag = Writer.tag_step then begin
      let k = if hi = 0x3f then varint t else hi in
      if k > n then corrupt t "step reverses %d edges (n = %d)" k n;
      let node = node_id t n "step node" in
      let slots = Array.init k (fun _ -> node_id t n "reversed slot") in
      Event (Event.Step { node; slots })
    end
    else if tag = Writer.tag_end && hi <> 0 then begin
      (* Version-2 perturbation: count field is [k + 1], 0x3f escapes
         to an explicit varint (see Writer). *)
      let k = if hi = 0x3f then varint t else hi - 1 in
      if k > n then corrupt t "perturb flips %d edges (n = %d)" k n;
      let node = node_id t n "perturb node" in
      let slots = Array.init k (fun _ -> node_id t n "flipped slot") in
      Event (Event.Perturb { node; slots })
    end
    else if hi <> 0 then corrupt t "unknown event tag %d" b
    else if tag = Writer.tag_dummy then Event (Event.Dummy (node_id t n "node"))
    else if tag = Writer.tag_stale then Event (Event.Stale (node_id t n "node"))
    else if tag = Writer.tag_end then begin
      let work = varint t in
      let edge_reversals = varint t in
      let wall_ns = varint t in
      let final_fingerprint = fixed64 t in
      if not (at_eof t) then corrupt t "trailing bytes after summary";
      End { Event.work; edge_reversals; wall_ns; final_fingerprint }
    end
    else corrupt t "unknown event tag %d" tag
  with
  | item -> Ok item
  | exception Corrupt m -> Error m

let fold path ~init ~f ~finish =
  match open_file path with
  | Error e -> Error e
  | Ok t ->
      let rec loop i acc =
        match next t with
        | Error e -> Error e
        | Ok (End summary) -> finish acc summary
        | Ok (Event e) -> (
            match f acc i e with Error e -> Error e | Ok acc -> loop (i + 1) acc)
      in
      Fun.protect ~finally:(fun () -> close t) (fun () -> loop 0 init)
