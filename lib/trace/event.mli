(** The `lr_trace` event vocabulary.

    A trace file is [header, event*, summary]: the header pins down the
    instance (embedded edge list, destination, engine, RNG seed, 64-bit
    graph fingerprint), each event is one scheduler decision of the
    recorded run, and the summary footer carries the run totals plus the
    fingerprint of the final orientation, so replay can verify a
    recording end to end without any side channel. *)

open Lr_graph

(** Which algorithm produced the trace.  [Pr] covers both the fast
    engine's Partial rule and the persistent PR/OneStepPR automata
    (they share list semantics); [Fr] is Full Reversal; [New_pr] is
    Algorithm 2 with its dummy steps; [Maint] is a maintenance-engine
    recovery (chaos harness) whose heights are not in the trace, so
    replay checks sink preconditions and acyclicity rather than exact
    PR list semantics. *)
type engine = Pr | Fr | New_pr | Maint

val engine_name : engine -> string
val engine_of_string : string -> engine option

val engine_tag : engine -> int
(** Stable wire tag. *)

val engine_of_tag : int -> engine option

type t =
  | Step of { node : int; slots : int array }
      (** [node] took a reversal step; [slots] lists the reversed edges
          as ascending indices into [node]'s sorted adjacency row (slot
          [i] is [node]'s [i]-th neighbour in ascending id order).
          Slots, not neighbour ids, keep events small: a slot index fits
          one varint byte for any degree below 128 regardless of [n]. *)
  | Dummy of int  (** NewPR dummy step: parity flip, nothing reversed. *)
  | Stale of int
      (** A scheduler decision that fired no step: the worklist
          yielded a node that is no longer a sink. *)
  | Perturb of { node : int; slots : int array }
      (** External fault injection (chaos harness): the listed incoming
          edges of [node] were forcibly flipped outward — not a
          protocol step, so it needs no sink precondition and does not
          count as work.  Slot encoding as in [Step].  Wire format
          version 2; absent from version-1 traces. *)

type header = {
  engine : engine;
  seed : int;  (** RNG seed the instance/schedule derives from; [-1] = unknown. *)
  n : int;  (** Node ids are [0 .. n-1]. *)
  destination : int;
  edges : (int * int) list;  (** Initial orientation, canonical edge order. *)
  fingerprint : int64;  (** {!Digraph.fingerprint} of the initial graph. *)
}

type summary = {
  work : int;  (** Total node steps, dummies included. *)
  edge_reversals : int;
  wall_ns : int;  (** Recording wall-clock, nanoseconds. *)
  final_fingerprint : int64;  (** Fingerprint of the final orientation. *)
}

val header_of_config : ?seed:int -> engine -> Linkrev.Config.t -> header

val instance_of_header : header -> Generators.instance
(** Rebuilds the embedded instance (including any isolated nodes). *)

val config_of_header : header -> (Linkrev.Config.t, string) result
(** {!instance_of_header} plus validation: node ids in range, embedded
    graph matches the header fingerprint, instance acyclic. *)

val pp : Format.formatter -> t -> unit
