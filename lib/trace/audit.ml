module I = Lr_automata.Invariant

type violation = { event : int; invariant : string; message : string }

type report = {
  header : Event.header;
  summary : Event.summary;
  events : int;
  steps : int;
  dummies : int;
  stales : int;
  perturbs : int;
  edge_reversals : int;
  steps_per_node : int array;
  histogram : (int * int) list;
  checked_states : int;
  violations : violation list;
  summary_ok : bool;
  bytes : int;
}

let histogram_of steps_per_node =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun k -> Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    steps_per_node;
  List.sort compare (Hashtbl.fold (fun k c acc -> (k, c) :: acc) tbl [])

(* The per-state check, materializing the persistent state the paper's
   invariants are stated over.  [event] is the index of the last applied
   event (-1 for the initial state). *)
let checker config header =
  match header.Event.engine with
  | Event.Pr ->
      let inv = Linkrev.Invariants.pr_all config in
      fun cursor event ->
        let state =
          { Linkrev.Pr.graph = Replay.to_digraph cursor;
            lists = Replay.lists cursor }
        in
        (match inv.I.check state with
        | Ok () -> None
        | Error message -> Some { event; invariant = inv.I.name; message })
  | Event.New_pr ->
      let inv = Linkrev.Invariants.newpr_all config in
      fun cursor event ->
        let state =
          { Linkrev.New_pr.graph = Replay.to_digraph cursor;
            counts = Replay.counts cursor }
        in
        (match inv.I.check state with
        | Ok () -> None
        | Error message -> Some { event; invariant = inv.I.name; message })
  | Event.Fr | Event.Maint ->
      (* Maint: heights are not in the trace, so the strongest per-state
         invariant is the one the paper's abstraction rests on — every
         intermediate orientation stays acyclic.  The corrupted state
         itself is acyclic too (heights are a total order, so even
         adversarial corruption cannot create a cycle), but only as a
         whole: the run loop treats a burst of consecutive perturb
         events as one atomic fault injection and never audits the
         mixed states inside it. *)
      let inv = Linkrev.Invariants.acyclic ~graph_of:Fun.id in
      fun cursor event ->
        (match inv.I.check (Replay.to_digraph cursor) with
        | Ok () -> None
        | Error message -> Some { event; invariant = inv.I.name; message })

let run ?(stride = 1) path =
  if stride < 1 then invalid_arg "Audit.run: stride must be >= 1";
  match Reader.open_file path with
  | Error _ as e -> e
  | Ok r ->
      Fun.protect
        ~finally:(fun () -> Reader.close r)
        (fun () ->
          let header = Reader.header r in
          match Event.config_of_header header with
          | Error _ as e -> e
          | Ok config -> (
              match Replay.cursor header with
              | Error _ as e -> e
              | Ok cursor ->
                  let check = checker config header in
                  let violations = ref [] in
                  let checked = ref 0 in
                  let check_state event =
                    incr checked;
                    match check cursor event with
                    | None -> ()
                    | Some v -> violations := v :: !violations
                  in
                  check_state (-1);
                  (* Inside a run of consecutive perturb events the
                     orientation mixes corrupted and pre-corruption
                     heights — only the state after the whole burst is
                     height-derived (hence provably acyclic), so the
                     burst is audited atomically. *)
                  let in_burst = ref false in
                  let rec loop i =
                    match Reader.next r with
                    | Error _ as e -> e
                    | Ok (Reader.End summary) -> (
                        (* make sure the final state is always audited,
                           whatever the stride *)
                        if !in_burst || i mod stride <> 0 then
                          check_state (i - 1);
                        let steps, dummies, stales, edge_reversals =
                          Replay.metrics cursor
                        in
                        let perturbs = Replay.perturbs cursor in
                        let steps_per_node = Replay.steps_per_node cursor in
                        let summary_ok =
                          match Replay.check_summary cursor summary with
                          | Ok () -> true
                          | Error message ->
                              violations :=
                                { event = i; invariant = "summary"; message }
                                :: !violations;
                              false
                        in
                        Ok
                          {
                            header;
                            summary;
                            events = i;
                            steps;
                            dummies;
                            stales;
                            perturbs;
                            edge_reversals;
                            steps_per_node;
                            histogram = histogram_of steps_per_node;
                            checked_states = !checked;
                            violations = List.rev !violations;
                            summary_ok;
                            bytes = Reader.bytes_read r;
                          })
                    | Ok (Reader.Event e) -> (
                        let is_perturb =
                          match e with Event.Perturb _ -> true | _ -> false
                        in
                        if !in_burst && not is_perturb then begin
                          in_burst := false;
                          check_state (i - 1)
                        end;
                        match Replay.apply cursor e with
                        | Error m ->
                            Error (Printf.sprintf "event %d: %s" i m)
                        | Ok () ->
                            if is_perturb then in_burst := true
                            else if (i + 1) mod stride = 0 then check_state i;
                            loop (i + 1))
                  in
                  loop 0))

let clean r =
  r.summary_ok && match r.violations with [] -> true | _ :: _ -> false

(* {1 Single-pass scan (no replay, no invariant checks)} *)

type scan = {
  scan_header : Event.header;
  scan_summary : Event.summary;
  scan_events : int;
  scan_steps : int;
  scan_dummies : int;
  scan_stales : int;
  scan_perturbs : int;
  scan_reversed_edges : int;
  scan_bytes : int;
}

let scan path =
  match Reader.open_file path with
  | Error _ as e -> e
  | Ok r ->
      Fun.protect
        ~finally:(fun () -> Reader.close r)
        (fun () ->
          let steps = ref 0
          and dummies = ref 0
          and stales = ref 0
          and perturbs = ref 0
          and rev = ref 0 in
          let rec loop i =
            match Reader.next r with
            | Error _ as e -> e
            | Ok (Reader.End summary) ->
                Ok
                  {
                    scan_header = Reader.header r;
                    scan_summary = summary;
                    scan_events = i;
                    scan_steps = !steps;
                    scan_dummies = !dummies;
                    scan_stales = !stales;
                    scan_perturbs = !perturbs;
                    scan_reversed_edges = !rev;
                    scan_bytes = Reader.bytes_read r;
                  }
            | Ok (Reader.Event e) ->
                (match e with
                | Event.Step { slots; _ } ->
                    incr steps;
                    rev := !rev + Array.length slots
                | Event.Dummy _ -> incr dummies
                | Event.Stale _ -> incr stales
                | Event.Perturb { slots; _ } ->
                    incr perturbs;
                    rev := !rev + Array.length slots);
                loop (i + 1)
          in
          loop 0)

let pp_histogram ppf histogram =
  List.iter
    (fun (steps, nodes) ->
      Format.fprintf ppf "  %6d step%s : %d node%s@." steps
        (if steps = 1 then " " else "s")
        nodes
        (if nodes = 1 then "" else "s"))
    histogram
