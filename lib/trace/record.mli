(** Recording executions to trace files.

    Two front ends share the {!Writer} wire format:

    - {!fast} / {!fast_new_pr} attach a {!Lr_fast.Fast_sink.t} to a flat
      engine, batching its per-flip callbacks into one step event per
      scheduler firing.  Recording reuses a scratch array, so the
      engines' zero-allocation step loops stay zero-allocation.
    - {!persistent} records a run of a persistent {!Linkrev.Algo.t}
      through {!Linkrev.Executor.run}'s [?observe] hook, diffing
      before/after orientations to recover each actor's reversed set.

    Both close the trace with an end record carrying the run's work
    totals and the final orientation fingerprint; if the recorded run
    raises, the file is left without an end record (which {!Reader}
    reports as truncated) and the exception is re-raised. *)

open Lr_graph

val sink : Writer.t -> Lr_fast.Fast_sink.t * (unit -> unit)
(** Low-level recording sink plus its flush function.  The flush must
    be called after the run (before {!Writer.close}) to emit the final
    pending step.  Prefer {!fast} / {!fast_new_pr}. *)

val fast :
  ?max_steps:int ->
  ?seed:int ->
  path:string ->
  rule:Lr_fast.Fast_engine.rule ->
  Linkrev.Config.t ->
  Lr_fast.Fast_outcome.t * Writer.stats
(** Run [Fast_engine] on [config] under [rule], recording to [path]. *)

val fast_new_pr :
  ?max_steps:int ->
  ?seed:int ->
  path:string ->
  Linkrev.Config.t ->
  Lr_fast.Fast_outcome.t * Writer.stats
(** Run [Fast_new_pr] on [config], recording to [path] (dummy steps
    appear as [Dummy] events). *)

val rows_of_config : Linkrev.Config.t -> int array array
(** Sorted adjacency rows of the topology — the slot universe the wire
    format indexes into (row [u], slot [i] = [u]'s [i]-th neighbour in
    ascending id order). *)

val slot_of : int array -> int -> int
(** [slot_of row w] is the slot index of neighbour [w] in a sorted
    adjacency row (binary search).  @raise Invalid_argument when [w] is
    not in the row. *)

val observer :
  writer:Writer.t ->
  rows:int array array ->
  graph_of:('s -> Digraph.t) ->
  actors:('a -> Node.Set.t) ->
  engine:Event.engine ->
  ('s, 'a) Lr_automata.Execution.step ->
  unit
(** Observation hook serializing persistent steps, for callers driving
    {!Linkrev.Executor.run} themselves; [rows] is
    {!rows_of_config} of the recorded config.  The caller still owns
    the writer (header and end record). *)

val persistent :
  ?max_steps:int ->
  ?seed:int ->
  path:string ->
  engine:Event.engine ->
  scheduler:('s, 'a) Lr_automata.Scheduler.t ->
  Linkrev.Config.t ->
  ('s, 'a) Linkrev.Algo.t ->
  Linkrev.Executor.outcome * Writer.stats
(** Record a full persistent run: header from [config], one event per
    actor per step, end record from the outcome. *)
