open Lr_graph
module FG = Lr_fast.Fast_graph

(* {1 Fast cursor} *)

type cursor = {
  header : Event.header;
  core : FG.t;
  out_ : bool array array;
  in_deg : int array;
  (* PR list state *)
  listed : bool array array;
  list_count : int array;
  (* NewPR counter state *)
  counts : int array;
  init_in_slots : int array array;
  init_out_slots : int array array;
  steps_per_node : int array;
  mutable work : int;
  mutable steps : int;
  mutable dummies : int;
  mutable stales : int;
  mutable perturbs : int;
  mutable edge_reversals : int;
}

let slots_where core value =
  Array.init core.FG.n (fun u ->
      let row = core.FG.out0.(u) in
      let k = ref 0 in
      Array.iter (fun o -> if Bool.equal o value then incr k) row;
      let slots = Array.make !k 0 in
      let j = ref 0 in
      Array.iteri
        (fun i o ->
          if Bool.equal o value then begin
            slots.(!j) <- i;
            incr j
          end)
        row;
      slots)

let cursor header =
  let inst = Event.instance_of_header header in
  match FG.of_instance inst with
  | exception Invalid_argument m -> Error ("header: " ^ m)
  | core ->
      if FG.fingerprint core core.FG.out0 <> header.Event.fingerprint then
        Error "header: instance does not match its fingerprint"
      else
        let n = core.FG.n in
        Ok
          {
            header;
            core;
            out_ = FG.initial_out core;
            in_deg = FG.initial_in_degree core;
            listed = Array.init n (fun u -> Array.make (FG.degree core u) false);
            list_count = Array.make n 0;
            counts = Array.make n 0;
            init_in_slots = slots_where core false;
            init_out_slots = slots_where core true;
            steps_per_node = Array.make n 0;
            work = 0;
            steps = 0;
            dummies = 0;
            stales = 0;
            perturbs = 0;
            edge_reversals = 0;
          }

let degree c u = FG.degree c.core u
let is_sink c u = degree c u > 0 && c.in_deg.(u) = degree c u
let fingerprint c = FG.fingerprint c.core c.out_

let flip c u i =
  let w = c.core.FG.nbrs.(u).(i) in
  let j = c.core.FG.mirror.(u).(i) in
  c.out_.(u).(i) <- true;
  c.out_.(w).(j) <- false;
  c.in_deg.(u) <- c.in_deg.(u) - 1;
  c.in_deg.(w) <- c.in_deg.(w) + 1;
  c.edge_reversals <- c.edge_reversals + 1;
  if not c.listed.(w).(j) then begin
    c.listed.(w).(j) <- true;
    c.list_count.(w) <- c.list_count.(w) + 1
  end

let errf fmt = Printf.ksprintf (fun m -> Error m) fmt

(* The slots a step of [u] must reverse under the trace's engine. *)
let expected_slots c u =
  let d = degree c u in
  match c.header.Event.engine with
  | Event.Fr -> Ok (Array.init d Fun.id)
  | Event.Pr ->
      let full = c.list_count.(u) = d in
      let k = ref 0 in
      for i = 0 to d - 1 do
        if full || not c.listed.(u).(i) then incr k
      done;
      let slots = Array.make !k 0 in
      let j = ref 0 in
      for i = 0 to d - 1 do
        if full || not c.listed.(u).(i) then begin
          slots.(!j) <- i;
          incr j
        end
      done;
      Ok slots
  | Event.New_pr ->
      let slots =
        if c.counts.(u) land 1 = 0 then c.init_in_slots.(u)
        else c.init_out_slots.(u)
      in
      if Array.length slots = 0 then
        errf "node %d: parity set is empty — expected a dummy step" u
      else Ok slots
  | Event.Maint ->
      (* Unreachable from [apply_step], which validates maint steps by
         shape (heights are not in the trace). *)
      errf "node %d: maint traces carry no expected reversal set" u

let sink_precondition c u what =
  if u < 0 || u >= c.core.FG.n then errf "%s at invalid node %d" what u
  else if u = c.core.FG.destination then
    errf "%s at the destination (node %d)" what u
  else if not (is_sink c u) then
    errf "%s at node %d, which is not a sink (in-degree %d of %d)" what u
      c.in_deg.(u) (degree c u)
  else Ok ()

(* Shape check shared by maint steps and perturbations: slots strictly
   ascending, in range, and currently incoming at [u]. *)
let check_flippable c u (recorded : int array) what =
  let d = degree c u in
  let res = ref (Ok ()) in
  Array.iteri
    (fun i s ->
      if Result.is_ok !res then
        if s < 0 || s >= d then
          res := errf "node %d: %s slot %d out of range (degree %d)" u what s d
        else if i > 0 && recorded.(i - 1) >= s then
          res := errf "node %d: %s slots not strictly ascending" u what
        else if c.out_.(u).(s) then
          res := errf "node %d: %s slot %d is not incoming" u what s)
    recorded;
  !res

let step_epilogue c u =
  (match c.header.Event.engine with
  | Event.Pr | Event.Fr | Event.Maint ->
      let d = degree c u in
      if c.list_count.(u) > 0 then begin
        Array.fill c.listed.(u) 0 d false;
        c.list_count.(u) <- 0
      end
  | Event.New_pr -> c.counts.(u) <- c.counts.(u) + 1);
  c.steps_per_node.(u) <- c.steps_per_node.(u) + 1;
  c.work <- c.work + 1;
  c.steps <- c.steps + 1;
  Ok ()

let apply_step c u (recorded : int array) =
  match sink_precondition c u "step" with
  | Error _ as e -> e
  | Ok () -> (
      match c.header.Event.engine with
      | Event.Maint -> (
          (* A maintenance step's reversal set depends on heights the
             trace does not carry: check the shape — at least one edge,
             ascending slots, each currently incoming — and leave the
             per-state acyclicity of the result to the audit layer. *)
          if Array.length recorded = 0 then
            errf "node %d: maint step reverses no edges" u
          else
            match check_flippable c u recorded "reversed" with
            | Error _ as e -> e
            | Ok () ->
                Array.iter (fun i -> flip c u i) recorded;
                step_epilogue c u)
      | Event.Pr | Event.Fr | Event.New_pr -> (
          match expected_slots c u with
          | Error _ as e -> e
          | Ok slots ->
              let k = Array.length slots in
              if Array.length recorded <> k then
                errf "node %d: step reverses %d edges, engine %s expects %d" u
                  (Array.length recorded)
                  (Event.engine_name c.header.Event.engine)
                  k
              else begin
                let mismatch = ref (-1) in
                for i = 0 to k - 1 do
                  if !mismatch < 0 && slots.(i) <> recorded.(i) then
                    mismatch := i
                done;
                if !mismatch >= 0 then
                  errf "node %d: reversed slot #%d is %d, expected %d" u
                    !mismatch
                    recorded.(!mismatch)
                    slots.(!mismatch)
                else begin
                  Array.iter (fun i -> flip c u i) slots;
                  step_epilogue c u
                end
              end))

let apply_dummy c u =
  match c.header.Event.engine with
  | Event.Pr | Event.Fr | Event.Maint ->
      errf "dummy step at node %d in a %s trace (NewPR only)" u
        (Event.engine_name c.header.Event.engine)
  | Event.New_pr -> (
      match sink_precondition c u "dummy step" with
      | Error _ as e -> e
      | Ok () ->
          let slots =
            if c.counts.(u) land 1 = 0 then c.init_in_slots.(u)
            else c.init_out_slots.(u)
          in
          if Array.length slots > 0 then
            errf "node %d: dummy step but parity set has %d edges" u
              (Array.length slots)
          else begin
            c.counts.(u) <- c.counts.(u) + 1;
            c.steps_per_node.(u) <- c.steps_per_node.(u) + 1;
            c.work <- c.work + 1;
            c.dummies <- c.dummies + 1;
            Ok ()
          end)

let apply_stale c u =
  if u < 0 || u >= c.core.FG.n then errf "stale pop at invalid node %d" u
  else if is_sink c u && u <> c.core.FG.destination then
    errf "stale pop at node %d, which is a live non-destination sink" u
  else begin
    c.stales <- c.stales + 1;
    Ok ()
  end

(* An external fault flipped [recorded] incoming edges of [u] outward:
   no sink precondition (faults strike anywhere), no work counted. *)
let apply_perturb c u (recorded : int array) =
  if u < 0 || u >= c.core.FG.n then errf "perturb at invalid node %d" u
  else if
    match c.header.Event.engine with Event.Maint -> false | _ -> true
  then
    errf "perturb event in a %s trace (maint only)"
      (Event.engine_name c.header.Event.engine)
  else
    match check_flippable c u recorded "flipped" with
    | Error _ as e -> e
    | Ok () ->
        Array.iter (fun i -> flip c u i) recorded;
        c.perturbs <- c.perturbs + 1;
        Ok ()

let apply c = function
  | Event.Step { node; slots } -> apply_step c node slots
  | Event.Dummy u -> apply_dummy c u
  | Event.Stale u -> apply_stale c u
  | Event.Perturb { node; slots } -> apply_perturb c node slots

let check_summary c (s : Event.summary) =
  if c.work <> s.Event.work then
    errf "summary: work %d, replay counted %d" s.Event.work c.work
  else if c.edge_reversals <> s.Event.edge_reversals then
    errf "summary: %d edge reversals, replay counted %d" s.Event.edge_reversals
      c.edge_reversals
  else if fingerprint c <> s.Event.final_fingerprint then
    errf "summary: final orientation fingerprint %Lx, replay reached %Lx"
      s.Event.final_fingerprint (fingerprint c)
  else Ok ()

let to_digraph c =
  let g = ref (Digraph.of_directed_edges []) in
  for u = 0 to c.core.FG.n - 1 do
    g := Digraph.add_node !g u;
    Array.iteri
      (fun i w -> if c.out_.(u).(i) then g := Digraph.add_directed_edge !g u w)
      c.core.FG.nbrs.(u)
  done;
  !g

(* Materialize the PR list state: [list[u]] = neighbours whose shared
   edge reversed toward [u] since [u]'s last step (absent = empty). *)
let lists c =
  let m = ref Node.Map.empty in
  for u = 0 to c.core.FG.n - 1 do
    if c.list_count.(u) > 0 then begin
      let s = ref Node.Set.empty in
      Array.iteri
        (fun i w -> if c.listed.(u).(i) then s := Node.Set.add w !s)
        c.core.FG.nbrs.(u);
      m := Node.Map.add u !s !m
    end
  done;
  !m

let counts c =
  let m = ref Node.Map.empty in
  for u = 0 to c.core.FG.n - 1 do
    if c.counts.(u) > 0 then m := Node.Map.add u c.counts.(u) !m
  done;
  !m

let metrics c = (c.steps, c.dummies, c.stales, c.edge_reversals)
let perturbs c = c.perturbs
let steps_per_node c = Array.copy c.steps_per_node
let header_of c = c.header

(* {1 Whole-file replay} *)

type report = {
  header : Event.header;
  summary : Event.summary;
  events : int;
  steps : int;
  dummies : int;
  stales : int;
  perturbs : int;
  edge_reversals : int;
  steps_per_node : int array;
  bytes : int;
}

let with_context i = function
  | Ok _ as ok -> ok
  | Error m -> Error (Printf.sprintf "event %d: %s" i m)

let drive path ~on_event ~finish =
  match Reader.open_file path with
  | Error _ as e -> e
  | Ok r ->
      Fun.protect
        ~finally:(fun () -> Reader.close r)
        (fun () ->
          match cursor (Reader.header r) with
          | Error _ as e -> e
          | Ok c ->
              let rec loop i =
                match Reader.next r with
                | Error _ as e -> e
                | Ok (Reader.End summary) ->
                    finish c summary (Reader.bytes_read r)
                | Ok (Reader.Event e) -> (
                    match with_context i (apply c e) with
                    | Error _ as err -> err
                    | Ok () ->
                        on_event c i e;
                        loop (i + 1))
              in
              loop 0)

let file path =
  drive path
    ~on_event:(fun _ _ _ -> ())
    ~finish:(fun c summary bytes ->
      match check_summary c summary with
      | Error _ as e -> e
      | Ok () ->
          Ok
            {
              header = c.header;
              summary;
              events = c.steps + c.dummies + c.stales + c.perturbs;
              steps = c.steps;
              dummies = c.dummies;
              stales = c.stales;
              perturbs = c.perturbs;
              edge_reversals = c.edge_reversals;
              steps_per_node = Array.copy c.steps_per_node;
              bytes;
            })

(* {1 Differential replay against the persistent automata} *)

(* Decode a step's slot indices back to neighbour ids via the node's
   sorted adjacency row. *)
let set_of_slots (row : int array) slots =
  let d = Array.length row in
  if Array.exists (fun i -> i < 0 || i >= d) slots then
    Error (Printf.sprintf "reversed slot out of range (degree %d)" d)
  else
    Ok
      (Array.fold_left (fun s i -> Node.Set.add row.(i) s) Node.Set.empty slots)

let pp_set s =
  "{"
  ^ String.concat "," (List.map string_of_int (Node.Set.elements s))
  ^ "}"

let live_sink graph destination u =
  (not (Node.Set.is_empty (Digraph.neighbors graph u)))
  && Digraph.is_sink graph u
  && u <> destination

(* One generic loop, parameterized over the automaton's state by three
   closures: the expected reversal set of a step of [u] (Error when the
   step is not even enabled), the dummy-step check, and the transition. *)
let replay_automaton (type s) r config ~(initial : s)
    ~(expected : s -> int -> (Node.Set.t, string) result)
    ~(dummy_ok : s -> int -> (unit, string) result)
    ~(step : s -> int -> s) ~(graph_of : s -> Digraph.t) =
  let destination = config.Linkrev.Config.destination in
  let rows = Record.rows_of_config config in
  let rec loop i (state : s) work reversals =
    match Reader.next r with
    | Error _ as e -> e
    | Ok (Reader.End summary) ->
        if work <> summary.Event.work then
          errf "summary: work %d, automaton replay counted %d"
            summary.Event.work work
        else if reversals <> summary.Event.edge_reversals then
          errf "summary: %d edge reversals, automaton replay counted %d"
            summary.Event.edge_reversals reversals
        else
          let g = graph_of state in
          if Digraph.fingerprint g <> summary.Event.final_fingerprint then
            errf
              "summary: final orientation fingerprint %Lx, automaton reached \
               %Lx"
              summary.Event.final_fingerprint (Digraph.fingerprint g)
          else Ok (g, work, reversals)
    | Ok (Reader.Event e) -> (
        let res =
          match e with
          | Event.Step { node = u; slots } ->
              if not (live_sink (graph_of state) destination u) then
                errf "step at node %d, which is not a live sink" u
              else (
                match expected state u with
                | Error _ as err -> err
                | Ok want -> (
                    match set_of_slots rows.(u) slots with
                    | Error m -> errf "node %d: %s" u m
                    | Ok got ->
                        if not (Node.Set.equal want got) then
                          errf "node %d: trace reverses %s, automaton expects %s"
                            u (pp_set got) (pp_set want)
                        else Ok (step state u, Node.Set.cardinal want)))
          | Event.Dummy u ->
              if not (live_sink (graph_of state) destination u) then
                errf "dummy step at node %d, which is not a live sink" u
              else (
                match dummy_ok state u with
                | Error _ as err -> err
                | Ok () -> Ok (step state u, 0))
          | Event.Stale u ->
              if live_sink (graph_of state) destination u then
                errf "stale pop at node %d, which is a live sink" u
              else Ok (state, -1)
          | Event.Perturb { node = u; _ } ->
              errf
                "perturb event at node %d: the persistent automata have no \
                 fault-injection transition"
                u
        in
        match with_context i res with
        | Error _ as err -> err
        | Ok (state, delta) ->
            if delta < 0 then loop (i + 1) state work reversals
            else loop (i + 1) state (work + 1) (reversals + delta))
  in
  loop 0 initial 0 0

type differential = {
  final_graph : Digraph.t;
  automaton_work : int;
  automaton_reversals : int;
}

let against_automaton path =
  match Reader.open_file path with
  | Error _ as e -> e
  | Ok r ->
      Fun.protect
        ~finally:(fun () -> Reader.close r)
        (fun () ->
          let header = Reader.header r in
          match Event.config_of_header header with
          | Error _ as e -> e
          | Ok config ->
              let run =
                match header.Event.engine with
                | Event.Maint ->
                    Error
                      "maint traces replay against the maintenance engines, \
                       not the persistent automata (use Replay.file or \
                       Audit.run)"
                | Event.Pr ->
                    replay_automaton r config
                      ~initial:(Linkrev.Pr.initial config)
                      ~expected:(fun state u ->
                        let nbrs = Linkrev.Config.nbrs config u in
                        let l = Linkrev.Pr.list_of state u in
                        Ok
                          (if Node.Set.equal l nbrs then nbrs
                           else Node.Set.diff nbrs l))
                      ~dummy_ok:(fun _ u ->
                        errf "dummy step at node %d in a pr trace" u)
                      ~step:(fun state u ->
                        Linkrev.One_step_pr.apply config state u)
                      ~graph_of:(fun s -> s.Linkrev.Pr.graph)
                | Event.Fr ->
                    replay_automaton r config
                      ~initial:(Linkrev.Full_reversal.initial config)
                      ~expected:(fun _ u -> Ok (Linkrev.Config.nbrs config u))
                      ~dummy_ok:(fun _ u ->
                        errf "dummy step at node %d in a fr trace" u)
                      ~step:(fun state u ->
                        Linkrev.Full_reversal.apply state u)
                      ~graph_of:(fun s -> s.Linkrev.Full_reversal.graph)
                | Event.New_pr ->
                    replay_automaton r config
                      ~initial:(Linkrev.New_pr.initial config)
                      ~expected:(fun state u ->
                        if Linkrev.New_pr.is_dummy_step config state u then
                          errf "node %d: automaton expects a dummy step" u
                        else Ok (Linkrev.New_pr.reversal_set config state u))
                      ~dummy_ok:(fun state u ->
                        if Linkrev.New_pr.is_dummy_step config state u then
                          Ok ()
                        else
                          errf
                            "node %d: trace has a dummy step, automaton would \
                             reverse %s"
                            u
                            (pp_set (Linkrev.New_pr.reversal_set config state u)))
                      ~step:(fun state u -> Linkrev.New_pr.apply config state u)
                      ~graph_of:(fun s -> s.Linkrev.New_pr.graph)
              in
              match run with
              | Error _ as e -> e
              | Ok (final_graph, work, reversals) ->
                  Ok
                    {
                      final_graph;
                      automaton_work = work;
                      automaton_reversals = reversals;
                    })
