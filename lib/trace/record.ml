open Lr_graph
module F = Lr_fast.Fast_engine
module FN = Lr_fast.Fast_new_pr

(* Pending-step accumulator: the engines report a step as
   [on_step u; on_flip u i w; ...], so the recorder buffers the reversed
   slots of the current step in a reusable scratch array and emits one
   Step event when the next notification (or the final flush) closes
   it. *)
type pending = {
  writer : Writer.t;
  mutable node : int;
  mutable len : int;
  mutable ids : int array;
  mutable active : bool;
}

let flush_pending p =
  if p.active then begin
    p.active <- false;
    Writer.step p.writer ~node:p.node ~slots:p.ids ~len:p.len
  end

let sink writer =
  let p = { writer; node = 0; len = 0; ids = Array.make 64 0; active = false } in
  let on_step u =
    flush_pending p;
    p.active <- true;
    p.node <- u;
    p.len <- 0
  in
  let on_flip _u i _w =
    if p.len = Array.length p.ids then begin
      let ids = Array.make (2 * p.len) 0 in
      Array.blit p.ids 0 ids 0 p.len;
      p.ids <- ids
    end;
    p.ids.(p.len) <- i;
    p.len <- p.len + 1
  in
  let on_dummy u =
    flush_pending p;
    Writer.dummy p.writer u
  in
  let on_stale u =
    flush_pending p;
    Writer.stale p.writer u
  in
  ( { Lr_fast.Fast_sink.on_step; on_flip; on_dummy; on_stale },
    fun () -> flush_pending p )

let wall_ns t0 = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)

(* Run [run ()] with the recording sink attached via [set_sink], then
   close the trace with totals taken from the outcome and the engine's
   final fingerprint. *)
let recording ~path ~header ~set_sink ~fingerprint ~run =
  let writer = Writer.create path header in
  match
    let s, flush = sink writer in
    set_sink (Some s);
    let t0 = Unix.gettimeofday () in
    let out : Lr_fast.Fast_outcome.t = run () in
    let dt = wall_ns t0 in
    set_sink None;
    flush ();
    (out, dt)
  with
  | out, dt ->
      let stats =
        Writer.close writer
          {
            Event.work = out.Lr_fast.Fast_outcome.work;
            edge_reversals = out.Lr_fast.Fast_outcome.edge_reversals;
            wall_ns = dt;
            final_fingerprint = fingerprint ();
          }
      in
      (out, stats)
  | exception e ->
      set_sink None;
      Writer.abort writer;
      raise e

let fast ?max_steps ?seed ~path ~rule config =
  let engine = F.of_config config in
  let tag = match rule with F.Partial -> Event.Pr | F.Full -> Event.Fr in
  recording ~path
    ~header:(Event.header_of_config ?seed tag config)
    ~set_sink:(F.set_sink engine)
    ~fingerprint:(fun () -> F.fingerprint engine)
    ~run:(fun () -> F.run ?max_steps rule engine)

let fast_new_pr ?max_steps ?seed ~path config =
  let engine = FN.of_config config in
  recording ~path
    ~header:(Event.header_of_config ?seed Event.New_pr config)
    ~set_sink:(FN.set_sink engine)
    ~fingerprint:(fun () -> FN.fingerprint engine)
    ~run:(fun () -> FN.run ?max_steps engine)

(* {2 Recording persistent executions} *)

let reversed_by before after u =
  Node.Set.filter
    (fun w ->
      not (Digraph.direction_equal (Digraph.dir before u w) (Digraph.dir after u w)))
    (Digraph.neighbors before u)

(* Sorted adjacency rows of the (static) topology, one per node — the
   slot universe the wire format indexes into. *)
let rows_of_config config =
  let g = config.Linkrev.Config.initial in
  Array.init (Digraph.num_nodes g) (fun u ->
      Array.of_list (Node.Set.elements (Digraph.neighbors g u)))

let slot_of (row : int array) w =
  (* invariant: if present, w is in row.[lo, hi) *)
  let lo = ref 0 and hi = ref (Array.length row) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if row.(mid) <= w then lo := mid else hi := mid
  done;
  if !lo < Array.length row && row.(!lo) = w then !lo
  else invalid_arg "slot_of: not a neighbour"

let observer ~writer ~rows ~graph_of ~actors ~engine =
  fun { Lr_automata.Execution.before; action; after } ->
    let gb = graph_of before and ga = graph_of after in
    Node.Set.iter
      (fun u ->
        let rev = reversed_by gb ga u in
        ignore engine;
        if Node.Set.is_empty rev then
          (* only NewPR steps legitimately reverse nothing; replay
             rejects a Dummy under any other engine *)
          Writer.dummy writer u
        else
          let slots =
            Array.of_list
              (List.map (slot_of rows.(u)) (Node.Set.elements rev))
          in
          Writer.step writer ~node:u ~slots ~len:(Array.length slots))
      (actors action)

let persistent (type s a) ?max_steps ?seed ~path ~engine ~scheduler config
    (algo : (s, a) Linkrev.Algo.t) =
  let writer = Writer.create path (Event.header_of_config ?seed engine config) in
  match
    let t0 = Unix.gettimeofday () in
    let out =
      Linkrev.Executor.run ?max_steps
        ~observe:
          (observer ~writer ~rows:(rows_of_config config)
             ~graph_of:algo.Linkrev.Algo.graph_of
             ~actors:algo.Linkrev.Algo.actors ~engine)
        ~scheduler ~destination:config.Linkrev.Config.destination algo
    in
    (out, wall_ns t0)
  with
  | out, dt ->
      let stats =
        Writer.close writer
          {
            Event.work = out.Linkrev.Executor.total_node_steps;
            edge_reversals = out.Linkrev.Executor.edge_reversals;
            wall_ns = dt;
            final_fingerprint =
              Digraph.fingerprint out.Linkrev.Executor.final_graph;
          }
      in
      (out, stats)
  | exception e ->
      Writer.abort writer;
      raise e
