(** Offline invariant audit and run metrics over a trace file.

    {!run} replays the trace on a {!Replay.cursor} and, every
    [stride]-th event (plus the initial and final states), materializes
    the corresponding {e persistent} state and checks the paper's
    invariants on it — {!Linkrev.Invariants.pr_all} (3.1–3.4 +
    acyclicity) for PR traces, [newpr_all] (4.1, 4.2 + acyclicity) for
    NewPR, per-state acyclicity for FR and Maint (for chaos traces this
    is the theorem under test: every perturbed and every intermediate
    recovery state is still acyclic).  Violations are collected, not
    fatal; replay {e precondition} failures (the trace itself is
    inconsistent) abort with [Error].

    The report also carries the run metrics the paper compares: total
    work split into real/dummy steps, per-node step counts and their
    histogram, edge reversals, plus recording cost (events, bytes,
    recorded wall-clock). *)

type violation = { event : int; invariant : string; message : string }
(** [event] is the index of the last event applied before the violating
    state ([-1]: the initial state violated). *)

type report = {
  header : Event.header;
  summary : Event.summary;
  events : int;
  steps : int;
  dummies : int;
  stales : int;
  perturbs : int;  (** Fault-injection events (maint traces only). *)
  edge_reversals : int;
  steps_per_node : int array;
  histogram : (int * int) list;
      (** [(step count, number of nodes)] ascending. *)
  checked_states : int;
  violations : violation list;
  summary_ok : bool;
      (** End-record totals and fingerprint matched the replay. *)
  bytes : int;
}

val run : ?stride:int -> string -> (report, string) result
(** Audit [path], checking invariants every [stride] events (default
    1: every state).  [Error] on decode or replay-precondition
    failure. @raise Invalid_argument when [stride < 1]. *)

val clean : report -> bool
(** No violations and the summary matched. *)

(** {1 Cheap single-pass scan} *)

type scan = {
  scan_header : Event.header;
  scan_summary : Event.summary;
  scan_events : int;
  scan_steps : int;
  scan_dummies : int;
  scan_stales : int;
  scan_perturbs : int;
  scan_reversed_edges : int;
  scan_bytes : int;
}

val scan : string -> (scan, string) result
(** Decode-only pass: per-kind event counts, no replay or invariant
    checks — what [linkrev trace stats] prints. *)

val pp_histogram : Format.formatter -> (int * int) list -> unit
