type 'c starvation = { actor : 'c; from_step : int; steps_enabled : int }

let check (type c) ~(classify : _ -> c) ~patience exec =
  let module M = Map.Make (struct
    type t = c

    let compare = compare
  end) in
  let aut = exec.Execution.automaton in
  let enabled_classes s =
    List.fold_left
      (fun acc a -> M.add (classify a) () acc)
      M.empty
      (aut.Automaton.enabled s)
  in
  (* [windows] maps each currently-enabled class to the step index since
     which it has been continuously enabled without firing. *)
  let _, _, starved =
    List.fold_left
      (fun (i, windows, starved) { Execution.before; action; _ } ->
        let enabled = enabled_classes before in
        let windows =
          M.fold
            (fun cls () w -> if M.mem cls w then w else M.add cls i w)
            enabled
            (M.filter (fun cls _ -> M.mem cls enabled) windows)
        in
        let fired = classify action in
        let windows = M.remove fired windows in
        let starved =
          M.fold
            (fun cls from acc ->
              let length = i - from + 1 in
              if length = patience then
                { actor = cls; from_step = from; steps_enabled = length }
                :: acc
              else acc)
            windows starved
        in
        (i + 1, windows, starved))
      (0, M.empty, [])
      exec.Execution.steps
  in
  List.rev starved

let is_fair ~classify ~patience exec =
  match check ~classify ~patience exec with [] -> true | _ :: _ -> false
