type ('s, 'a) t = {
  name : string;
  initial : 's;
  enabled : 's -> 'a list;
  step : 's -> 'a -> 's;
  is_enabled : 's -> 'a -> bool;
  equal_state : 's -> 's -> bool;
  pp_state : Format.formatter -> 's -> unit;
  pp_action : Format.formatter -> 'a -> unit;
}

let opaque what ppf _ = Format.fprintf ppf "<%s>" what

let make ~name ~initial ~enabled ~step ?equal_action ?is_enabled ?equal_state
    ?pp_state ?pp_action () =
  let eq_action = match equal_action with Some f -> f | None -> ( = ) in
  let is_enabled =
    match is_enabled with
    | Some f -> f
    | None -> fun s a -> List.exists (eq_action a) (enabled s)
  in
  {
    name;
    initial;
    enabled;
    step;
    is_enabled;
    equal_state = Option.value ~default:( = ) equal_state;
    pp_state = Option.value ~default:(opaque "state") pp_state;
    pp_action = Option.value ~default:(opaque "action") pp_action;
  }

let quiescent t s = match t.enabled s with [] -> true | _ :: _ -> false

let fold_reachable ?(max_states = 1_000_000) ~key t ~init ~f =
  let seen = Hashtbl.create 1024 in
  let queue = Queue.create () in
  Hashtbl.replace seen (key t.initial) ();
  Queue.add t.initial queue;
  let acc = ref (f init t.initial) in
  let exception Too_many in
  try
    while not (Queue.is_empty queue) do
      let s = Queue.pop queue in
      List.iter
        (fun a ->
          let s' = t.step s a in
          let k = key s' in
          if not (Hashtbl.mem seen k) then begin
            if Hashtbl.length seen >= max_states then raise Too_many;
            Hashtbl.replace seen k ();
            acc := f !acc s';
            Queue.add s' queue
          end)
        (t.enabled s)
    done;
    Ok !acc
  with Too_many ->
    Error
      (Printf.sprintf "%s: more than %d reachable states" t.name max_states)

let iter_reachable ?max_states ~key t ~f =
  fold_reachable ?max_states ~key t ~init:() ~f:(fun () s -> f s)

let reachable ?max_states ~key t =
  Result.map List.rev
    (fold_reachable ?max_states ~key t ~init:[] ~f:(fun acc s -> s :: acc))
