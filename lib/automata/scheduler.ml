type ('s, 'a) t = 's -> 'a list -> 'a option

let first () _ = function [] -> None | a :: _ -> Some a

let last () _ actions =
  match List.rev actions with [] -> None | a :: _ -> Some a

let random rng _ = function
  | [] -> None
  | actions ->
      let n = List.length actions in
      Some (List.nth actions (Random.State.int rng n))

let round_robin ~index () =
  let cursor = ref (-1) in
  fun _ actions ->
    match actions with
    | [] -> None
    | _ ->
        (* Smallest index strictly greater than the cursor, else wrap to
           the globally smallest. *)
        let best_ge, best_all =
          List.fold_left
            (fun (ge, all) a ->
              let i = index a in
              let better cur =
                match cur with
                | None -> true
                | Some (j, _) -> i < j
              in
              let ge = if i > !cursor && better ge then Some (i, a) else ge in
              let all = if better all then Some (i, a) else all in
              (ge, all))
            (None, None) actions
        in
        let pick = match best_ge with Some _ -> best_ge | None -> best_all in
        Option.map
          (fun (i, a) ->
            cursor := i;
            a)
          pick

let greedy ~score () _ actions =
  match actions with
  | [] -> None
  | a :: rest ->
      Some
        (List.fold_left
           (fun best a' -> if (score a' : int) > score best then a' else best)
           a rest)

let stop_after n sched =
  let fired = ref 0 in
  fun s actions ->
    if !fired >= n then None
    else
      match sched s actions with
      | None -> None
      | Some a ->
          incr fired;
          Some a
