type 's t = { name : string; check : 's -> (unit, string) result }

let make ~name check = { name; check }

let of_predicate ~name p =
  { name; check = (fun s -> if p s then Ok () else Error name) }

let all ~name invs =
  let check s =
    let rec loop = function
      | [] -> Ok ()
      | inv :: rest -> (
          match inv.check s with
          | Ok () -> loop rest
          | Error e -> Error (Printf.sprintf "%s: %s" inv.name e))
    in
    loop invs
  in
  { name; check }

type 's violation = { invariant : string; state_index : int; reason : string }

let pp_violation ppf v =
  Format.fprintf ppf "invariant %s violated at state %d: %s" v.invariant
    v.state_index v.reason

let check_states inv states =
  let rec loop i = function
    | [] -> None
    | s :: rest -> (
        match inv.check s with
        | Ok () -> loop (i + 1) rest
        | Error reason ->
            Some { invariant = inv.name; state_index = i; reason })
  in
  loop 0 states

let check_execution inv exec = check_states inv (Execution.states exec)
let holds_on inv exec = Option.is_none (check_execution inv exec)
