type ('s, 'a) step = { before : 's; action : 'a; after : 's }

type ('s, 'a) t = {
  automaton : ('s, 'a) Automaton.t;
  init : 's;
  steps : ('s, 'a) step list;
}

let run_from ?(max_steps = 100_000) ~scheduler (aut : ('s, 'a) Automaton.t)
    init =
  let rec loop s steps n =
    if n >= max_steps then List.rev steps
    else
      match scheduler s (aut.Automaton.enabled s) with
      | None -> List.rev steps
      | Some a ->
          let s' = aut.Automaton.step s a in
          loop s' ({ before = s; action = a; after = s' } :: steps) (n + 1)
  in
  { automaton = aut; init; steps = loop init [] 0 }

let run ?max_steps ~scheduler aut =
  run_from ?max_steps ~scheduler aut aut.Automaton.initial

let final e =
  match List.rev e.steps with [] -> e.init | { after; _ } :: _ -> after

let length e = List.length e.steps
let states e = e.init :: List.map (fun st -> st.after) e.steps
let actions e = List.map (fun st -> st.action) e.steps
let quiescent e =
  match e.automaton.Automaton.enabled (final e) with
  | [] -> true
  | _ :: _ -> false

let replay (aut : ('s, 'a) Automaton.t) init actions =
  let rec loop s steps i = function
    | [] -> Ok { automaton = aut; init; steps = List.rev steps }
    | a :: rest ->
        if not (aut.Automaton.is_enabled s a) then
          Error
            (Format.asprintf "%s: action %a disabled at step %d"
               aut.Automaton.name aut.Automaton.pp_action a i)
        else
          let s' = aut.Automaton.step s a in
          loop s' ({ before = s; action = a; after = s' } :: steps) (i + 1)
            rest
  in
  loop init [] 0 actions

let pp ppf e =
  let aut = e.automaton in
  Format.fprintf ppf "@[<v>%a" aut.Automaton.pp_state e.init;
  List.iter
    (fun st ->
      Format.fprintf ppf "@,-- %a -->@,%a" aut.Automaton.pp_action st.action
        aut.Automaton.pp_state st.after)
    e.steps;
  Format.fprintf ppf "@]"
