(** Weak fairness of recorded executions (Lynch, ch. 8: in a fair
    execution, a task that stays enabled is eventually performed).

    The paper's task structure puts every [reverse] action in one task,
    so for link reversal the interesting notion is {e per-actor}
    fairness: a node that stays a sink must eventually reverse.  The
    checker below takes an action classifier and reports actors whose
    class was continuously enabled for more than [patience] consecutive
    steps without being scheduled — the executable form of "this
    scheduler starves node u". *)

type 'c starvation = {
  actor : 'c;  (** The starved class. *)
  from_step : int;  (** First step of the continuously-enabled window. *)
  steps_enabled : int;
}

val check :
  classify:('a -> 'c) ->
  patience:int ->
  ('s, 'a) Execution.t ->
  'c starvation list
(** All classes that, at some point of the execution, were enabled for
    [patience] consecutive pre-states without any of their actions being
    fired.  A quiescent execution with no starvation report is weakly
    fair for every patience above its length. *)

val is_fair :
  classify:('a -> 'c) -> patience:int -> ('s, 'a) Execution.t -> bool
