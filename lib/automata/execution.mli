(** Executions of an I/O automaton: the alternating sequence
    [s0 a1 s1 a2 s2 ...] of Lynch's model, recorded explicitly so that
    invariants and simulation relations can be checked against every
    intermediate state. *)

type ('s, 'a) step = { before : 's; action : 'a; after : 's }

type ('s, 'a) t = private {
  automaton : ('s, 'a) Automaton.t;
  init : 's;
  steps : ('s, 'a) step list;  (** In execution order. *)
}

val run :
  ?max_steps:int ->
  scheduler:('s, 'a) Scheduler.t ->
  ('s, 'a) Automaton.t ->
  ('s, 'a) t
(** Run from the initial state until the scheduler declines, no action
    is enabled, or [max_steps] (default [100_000]) steps have fired. *)

val run_from :
  ?max_steps:int ->
  scheduler:('s, 'a) Scheduler.t ->
  ('s, 'a) Automaton.t ->
  's ->
  ('s, 'a) t
(** Like {!run} but starting from an arbitrary state. *)

val replay : ('s, 'a) Automaton.t -> 's -> 'a list -> (('s, 'a) t, string) result
(** Apply a fixed action sequence, failing with a message on the first
    disabled action. *)

val final : ('s, 'a) t -> 's
val length : ('s, 'a) t -> int

val states : ('s, 'a) t -> 's list
(** All states, initial first — one more than [length]. *)

val actions : ('s, 'a) t -> 'a list
val quiescent : ('s, 'a) t -> bool
(** Did the run end because nothing was enabled? *)

val pp : Format.formatter -> ('s, 'a) t -> unit
