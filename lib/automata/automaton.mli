(** I/O automata (Lynch, {i Distributed Algorithms}, ch. 8), restricted
    to the closed, untimed, single-component systems used in the paper:
    a state set with a unique initial state, a set of actions, an
    enabledness predicate and a transition function.

    An automaton is a first-class value so that the same machinery —
    executions, schedulers, invariant checking, simulation relations —
    applies uniformly to [PR], [OneStepPR], [NewPR], [FR] and the
    height-based variants. *)

type ('s, 'a) t = {
  name : string;
  initial : 's;
  enabled : 's -> 'a list;
      (** All actions enabled in the state, in a deterministic order. *)
  step : 's -> 'a -> 's;
      (** Apply an action.  Must only be called on enabled actions;
          implementations are encouraged to raise [Invalid_argument]
          otherwise. *)
  is_enabled : 's -> 'a -> bool;
  equal_state : 's -> 's -> bool;
  pp_state : Format.formatter -> 's -> unit;
  pp_action : Format.formatter -> 'a -> unit;
}

val make :
  name:string ->
  initial:'s ->
  enabled:('s -> 'a list) ->
  step:('s -> 'a -> 's) ->
  ?equal_action:('a -> 'a -> bool) ->
  ?is_enabled:('s -> 'a -> bool) ->
  ?equal_state:('s -> 's -> bool) ->
  ?pp_state:(Format.formatter -> 's -> unit) ->
  ?pp_action:(Format.formatter -> 'a -> unit) ->
  unit ->
  ('s, 'a) t
(** [is_enabled] defaults to membership in [enabled], compared with
    [equal_action] (itself defaulting to structural equality — pass a
    monomorphic [equal_action] on hot paths); [equal_state] defaults to
    structural equality; printers to opaque placeholders. *)

val quiescent : ('s, 'a) t -> 's -> bool
(** No action enabled. *)

val fold_reachable :
  ?max_states:int ->
  key:('s -> 'k) ->
  ('s, 'a) t ->
  init:'b ->
  f:('b -> 's -> 'b) ->
  ('b, string) result
(** Breadth-first fold over all reachable states in discovery order
    (the initial state first), visiting each state exactly once.  [key]
    maps a state to a canonical hash key: two states are revisited as
    one iff their keys are equal — use {!Statekey.t} for an
    allocation-light key, or any other hashable type.  States are
    {e streamed}: nothing is accumulated beyond the visited-key set, so
    exhaustive sweeps run in memory proportional to the key set, not
    the state set.  [Error] when [max_states] (default [1_000_000]) is
    exceeded. *)

val iter_reachable :
  ?max_states:int ->
  key:('s -> 'k) ->
  ('s, 'a) t ->
  f:('s -> unit) ->
  (unit, string) result

val reachable :
  ?max_states:int -> key:('s -> 'k) -> ('s, 'a) t -> ('s list, string) result
(** All reachable states as a list, in discovery order (convenience
    wrapper over {!fold_reachable}; prefer the fold for large spaces). *)
