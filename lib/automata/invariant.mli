(** Named, checkable state predicates.

    The paper's Invariants 3.1, 3.2, 4.1 and 4.2 are statements about
    every reachable state.  Here an invariant is a predicate returning
    [Ok ()] or a human-readable violation; checkers apply it to every
    state of an execution or of an exhaustive reachable-state set. *)

type 's t = { name : string; check : 's -> (unit, string) result }

val make : name:string -> ('s -> (unit, string) result) -> 's t

val of_predicate : name:string -> ('s -> bool) -> 's t
(** Violation message is just the invariant name. *)

val all : name:string -> 's t list -> 's t
(** Conjunction; reports the first failing conjunct. *)

type 's violation = { invariant : string; state_index : int; reason : string }

val pp_violation : Format.formatter -> 's violation -> unit

val check_execution : 's t -> ('s, 'a) Execution.t -> ('s violation option)
(** First violated state along the execution (index 0 = initial). *)

val check_states : 's t -> 's list -> 's violation option

val holds_on : 's t -> ('s, 'a) Execution.t -> bool
