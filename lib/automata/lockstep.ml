type ('sa, 'sb) outcome = {
  steps : int;
  quiescent : bool;
  final_a : 'sa;
  final_b : 'sb;
}

let run ~(a : ('sa, 'aa) Automaton.t) ~(b : ('sb, 'ab) Automaton.t) ~translate
    ~related ~scheduler ?(max_steps = 100_000) () =
  let fail i fmt = Format.kasprintf (fun m -> Error (Printf.sprintf "step %d: %s" i m)) fmt in
  let rec apply_b sb i = function
    | [] -> Ok sb
    | act :: rest ->
        if not (b.Automaton.is_enabled sb act) then
          fail i "translated action %a not enabled in %s" b.Automaton.pp_action
            act b.Automaton.name
        else apply_b (b.Automaton.step sb act) i rest
  in
  let rec loop sa sb i =
    if not (related sa sb) then fail i "states unrelated"
    else if i >= max_steps then
      Ok { steps = i; quiescent = false; final_a = sa; final_b = sb }
    else
      match scheduler sa (a.Automaton.enabled sa) with
      | None ->
          Ok
            {
              steps = i;
              quiescent = Automaton.quiescent a sa;
              final_a = sa;
              final_b = sb;
            }
      | Some act -> (
          let sa' = a.Automaton.step sa act in
          match apply_b sb (i + 1) (translate sa act) with
          | Error _ as e -> e
          | Ok sb' -> loop sa' sb' (i + 1))
  in
  loop a.Automaton.initial b.Automaton.initial 0
