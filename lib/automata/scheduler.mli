(** Schedulers resolve the nondeterminism of an I/O automaton: given the
    current state and the list of enabled actions, pick the action to
    fire (or stop).

    Schedulers may carry internal state (e.g. round-robin memory), so
    each value below is a fresh, independent scheduler. *)

type ('s, 'a) t = 's -> 'a list -> 'a option

val first : unit -> ('s, 'a) t
(** Always the first enabled action — a deterministic, maximally unfair
    adversary. *)

val last : unit -> ('s, 'a) t

val random : Random.State.t -> ('s, 'a) t
(** Uniform among enabled actions. *)

val round_robin : index:('a -> int) -> unit -> ('s, 'a) t
(** Fair rotation: fires the enabled action whose [index] most closely
    follows (cyclically) the last fired index.  With [index] = acting
    node id this is the classic fair node scheduler. *)

val greedy : score:('a -> int) -> unit -> ('s, 'a) t
(** Highest [score] first; ties broken by list order. *)

val stop_after : int -> ('s, 'a) t -> ('s, 'a) t
(** Wraps a scheduler so it refuses to schedule after [n] picks. *)
