(** Compact hashed state keys for explicit-state model checking.

    The original model checker keyed visited sets with strings built by
    [Buffer]/[Printf] — one fresh string per state per frontier pop.
    A [Statekey.t] is an int array (typically a few words: orientation
    bitsets, counters, list masks) with its hash precomputed at build
    time, so hashing is O(1) and equality touches the payload only on a
    hash collision.

    Keys are only meaningful within one automaton: two states of the
    same automaton are equal iff their keys are equal.  Encoders must
    ensure injectivity themselves (fixed-width prefixes, explicit
    length markers). *)

type t

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** {1 Building} *)

type builder

val builder : unit -> builder
val add : builder -> int -> unit
val add_array : builder -> int array -> unit

val build : builder -> t
(** Freezes the words added so far; the builder may be reused but keys
    already built are unaffected. *)

val of_ints : int list -> t

(** {1 Hashed containers} *)

module Table : Hashtbl.S with type key = t
