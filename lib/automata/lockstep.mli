(** Lockstep equivalence of two automata.

    Drives automaton [A] with a scheduler and mirrors every action into
    automaton [B] through an action translation, checking a user
    relation between the paired states after every step.  This is the
    machinery behind the library's cross-formulation equivalence tests
    (list-PR vs height-PR, FR vs pair heights, BLL instances): a
    statement of the form "under any schedule, the two formulations stay
    related" becomes one call. *)

type ('sa, 'sb) outcome = {
  steps : int;
  quiescent : bool;  (** [A] had no enabled action when the run ended. *)
  final_a : 'sa;
  final_b : 'sb;
}

val run :
  a:('sa, 'aa) Automaton.t ->
  b:('sb, 'ab) Automaton.t ->
  translate:('sa -> 'aa -> 'ab list) ->
  related:('sa -> 'sb -> bool) ->
  scheduler:('sa, 'aa) Scheduler.t ->
  ?max_steps:int ->
  unit ->
  (('sa, 'sb) outcome, string) result
(** Runs [A] from its initial state; after each [A]-action the
    translated [B]-actions are applied (each must be enabled) and
    [related] must hold on the resulting pair.  [Error] pinpoints the
    first step where translation, enabledness or the relation fails.
    Default [max_steps] is [100_000]. *)
