type ('sa, 'aa, 'sb, 'ab) guided = {
  name : string;
  relation : 'sa -> 'sb -> (unit, string) result;
  initial_b : 'sb;
  correspond : 'sa -> 'aa -> 'sb -> 'ab list;
}

let apply_sequence (b : ('sb, 'ab) Automaton.t) t actions =
  let rec loop t applied = function
    | [] -> Ok (t, List.rev applied)
    | a :: rest ->
        if not (b.Automaton.is_enabled t a) then
          Error
            (Format.asprintf "action %a of %s not enabled"
               b.Automaton.pp_action a b.Automaton.name)
        else loop (b.Automaton.step t a) (a :: applied) rest
  in
  loop t [] actions

let check_guided ~b g exec_a =
  let ( let* ) = Result.bind in
  let fail i msg = Error (Printf.sprintf "%s, step %d: %s" g.name i msg) in
  let* () =
    match g.relation exec_a.Execution.init g.initial_b with
    | Ok () -> Ok ()
    | Error e -> fail 0 ("initial states unrelated: " ^ e)
  in
  let rec loop t all_b_actions i = function
    | [] -> Ok (t, List.rev all_b_actions)
    | { Execution.before; action; after } :: rest -> (
        let seq = g.correspond before action t in
        match apply_sequence b t seq with
        | Error e -> fail i e
        | Ok (t', applied) -> (
            match g.relation after t' with
            | Error e -> fail i ("states unrelated after step: " ^ e)
            | Ok () ->
                loop t' (List.rev_append applied all_b_actions) (i + 1) rest))
  in
  let* _, b_actions = loop g.initial_b [] 1 exec_a.Execution.steps in
  Execution.replay b g.initial_b b_actions

(* Bounded BFS in [B] for a state related to [target_rel]. *)
let search_related (b : ('sb, 'ab) Automaton.t) ~related ~max_depth ~key t =
  if related t then Some (t, [])
  else
    let seen = Hashtbl.create 64 in
    Hashtbl.replace seen (key t) ();
    let queue = Queue.create () in
    Queue.add (t, [], 0) queue;
    let rec loop () =
      if Queue.is_empty queue then None
      else
        let s, path, depth = Queue.pop queue in
        if depth >= max_depth then loop ()
        else
          let rec try_actions = function
            | [] -> loop ()
            | a :: rest ->
                let s' = b.Automaton.step s a in
                if related s' then Some (s', List.rev (a :: path))
                else begin
                  let k = key s' in
                  if not (Hashtbl.mem seen k) then begin
                    Hashtbl.replace seen k ();
                    Queue.add (s', a :: path, depth + 1) queue
                  end;
                  try_actions rest
                end
          in
          try_actions (b.Automaton.enabled s)
    in
    loop ()

let check_searched ~b ~name ~relation ~initial_b ~max_depth ~key exec_a =
  let fail i msg = Error (Printf.sprintf "%s, step %d: %s" name i msg) in
  if not (relation exec_a.Execution.init initial_b) then
    fail 0 "initial states unrelated"
  else
    let rec loop t all_b_actions i = function
      | [] -> Execution.replay b initial_b (List.rev all_b_actions)
      | { Execution.after; _ } :: rest -> (
          match
            search_related b ~related:(relation after) ~max_depth ~key t
          with
          | None ->
              fail i
                (Printf.sprintf "no related state within %d B-steps" max_depth)
          | Some (t', path) ->
              loop t' (List.rev_append path all_b_actions) (i + 1) rest)
    in
    loop initial_b [] 1 exec_a.Execution.steps
