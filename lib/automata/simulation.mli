(** Forward simulation relations between two automata, in the style of
    the paper's Section 5.

    A guided simulation packages (i) the binary relation between states
    of [A] and states of [B] and (ii) the explicit construction used in
    the proof: for every related pair [(s, t)] and step [(s, a, s')] of
    [A], the finite action sequence of [B] that matches it (one
    [reverse(u)] per member of [S] for Lemma 5.1; one or two
    [reverse(w)] steps for Lemma 5.3).

    [check_guided] replays an execution of [A] and verifies, step by
    step, that the construction produces enabled actions of [B] ending
    in a related state — a machine check of the lemma on that
    execution.  [check_searched] drops the construction and searches
    [B]'s state space instead (used for the paper's future-work reverse
    direction, where no construction is given). *)

type ('sa, 'aa, 'sb, 'ab) guided = {
  name : string;
  relation : 'sa -> 'sb -> (unit, string) result;
  initial_b : 'sb;
  correspond : 'sa -> 'aa -> 'sb -> 'ab list;
}

val check_guided :
  b:('sb, 'ab) Automaton.t ->
  ('sa, 'aa, 'sb, 'ab) guided ->
  ('sa, 'aa) Execution.t ->
  (('sb, 'ab) Execution.t, string) result
(** The matching execution of [B], or a message naming the first step
    where the relation or enabledness breaks. *)

val check_searched :
  b:('sb, 'ab) Automaton.t ->
  name:string ->
  relation:('sa -> 'sb -> bool) ->
  initial_b:'sb ->
  max_depth:int ->
  key:('sb -> string) ->
  ('sa, 'aa) Execution.t ->
  (('sb, 'ab) Execution.t, string) result
(** Like {!check_guided}, but for each step of [A] searches breadth-
    first (up to [max_depth] [B]-steps) for a related [B] state. *)
