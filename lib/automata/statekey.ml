type t = { hash : int; words : int array }

let equal_words a b =
  let la = Array.length a in
  la = Array.length b
  &&
  let rec loop i = i >= la || (Int.equal a.(i) b.(i) && loop (i + 1)) in
  loop 0

let equal a b = Int.equal a.hash b.hash && equal_words a.words b.words
let hash t = t.hash

(* FNV-1a style mixing, folded over the words at build time so lookups
   never rehash the payload. *)
let mix h w = (h lxor w) * 0x100000001b3

type builder = { mutable len : int; mutable data : int array }

let builder () = { len = 0; data = Array.make 16 0 }

let add b w =
  if b.len = Array.length b.data then begin
    let data = Array.make (2 * b.len) 0 in
    Array.blit b.data 0 data 0 b.len;
    b.data <- data
  end;
  b.data.(b.len) <- w;
  b.len <- b.len + 1

let add_array b ws = Array.iter (add b) ws

let build b =
  let words = Array.sub b.data 0 b.len in
  let hash = Array.fold_left mix 0xcbf29ce4 words land max_int in
  { hash; words }

let of_ints ws =
  let b = builder () in
  List.iter (add b) ws;
  build b

let pp ppf t =
  Format.fprintf ppf "#%x[@[%a@]]" t.hash
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Format.pp_print_int)
    (Array.to_list t.words)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
