(** An asynchronous message-passing network simulator.

    Nodes of an undirected topology exchange messages over FIFO links
    with configurable (possibly jittered) latency.  The engine delivers
    one message at a time in simulated-time order; node behaviour is a
    pure handler returning the new local state plus messages to send to
    neighbours.  Everything is deterministic given the RNG seed.

    This is the substrate for the asynchronous height protocol of
    [lr_routing]: the paper's automata take atomic global steps, while a
    real ad-hoc network — link reversal's motivating deployment — runs
    exactly this kind of message-driven loop. *)

open Lr_graph

type 'msg send = { dest : Node.t; msg : 'msg }

type ('state, 'msg) handler = {
  init : Node.t -> Node.Set.t -> 'state * 'msg send list;
      (** Called once per node with its neighbour set. *)
  on_message :
    Node.t -> 'state -> from:Node.t -> 'msg -> 'state * 'msg send list;
}

type ('state, 'msg) t

type stats = {
  delivered : int;
  sent : int;
  final_time : float;
  completed : bool;  (** False when stopped by a delivery budget. *)
}

val create :
  topology:Undirected.t ->
  latency:(Node.t -> Node.t -> float) ->
  ?jitter:(Random.State.t * float) ->
  ?drop:(Random.State.t * float) ->
  ?timer:(float * (Node.t -> 'state -> 'state * 'msg send list)) ->
  ('state, 'msg) handler ->
  ('state, 'msg) t
(** [latency u v] is the base one-way delay of link [{u,v}].  With
    [~jitter:(rng, j)] each message adds a uniform extra delay in
    [0, j); FIFO order per link is still enforced.  With
    [~drop:(rng, p)] each message is lost with probability [p] (the
    send still counts in [stats.sent]; a [dropped] counter records the
    losses).  With [~timer:(interval, tick)] every node receives a
    periodic tick — the substrate for beacons and retransmission;
    timed runs must bound time via {!run}'s [until].  Sends to
    non-neighbours raise [Invalid_argument] at send time. *)

val run : ?max_deliveries:int -> ?until:float -> ('state, 'msg) t -> stats
(** Deliver messages until the network is quiet (default budget
    [1_000_000]).  With [~until:t] delivery stops at simulated time [t]
    — required for runs with a timer, which are never quiet. *)

val dropped : ('state, 'msg) t -> int

val state : ('state, 'msg) t -> Node.t -> 'state
(** @raise Not_found for nodes outside the topology. *)

val states : ('state, 'msg) t -> (Node.t * 'state) list
val now : ('state, 'msg) t -> float
