type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  (* [heap] is a binary min-heap in indices [0 .. size-1]; unused slots
     hold a sentinel that is never read. *)
  mutable size : int;
  mutable next_seq : int;
}

let entry_before e1 e2 =
  e1.time < e2.time || (e1.time = e2.time && e1.seq < e2.seq)

let create () = { heap = [||]; size = 0; next_seq = 0 }

let grow q =
  let cap = Array.length q.heap in
  if q.size >= cap then begin
    let ncap = max 16 (2 * cap) in
    let nheap = Array.make ncap q.heap.(0) in
    Array.blit q.heap 0 nheap 0 q.size;
    q.heap <- nheap
  end

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_before q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && entry_before q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.size && entry_before q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(!smallest);
    q.heap.(!smallest) <- tmp;
    sift_down q !smallest
  end

let add q ~time payload =
  if not (Float.is_finite time) || time < 0.0 then
    invalid_arg "Event_queue.add: bad time";
  let entry = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  if Array.length q.heap = 0 then q.heap <- Array.make 16 entry;
  grow q;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.time, top.payload)
  end

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time
let size q = q.size
let is_empty q = q.size = 0
