open Lr_graph

type 'msg send = { dest : Node.t; msg : 'msg }

type ('state, 'msg) handler = {
  init : Node.t -> Node.Set.t -> 'state * 'msg send list;
  on_message :
    Node.t -> 'state -> from:Node.t -> 'msg -> 'state * 'msg send list;
}

type 'msg event =
  | Delivery of { src : Node.t; dst : Node.t; body : 'msg }
  | Tick of Node.t

type ('state, 'msg) t = {
  topology : Undirected.t;
  latency : Node.t -> Node.t -> float;
  jitter : (Random.State.t * float) option;
  drop : (Random.State.t * float) option;
  timer : (float * (Node.t -> 'state -> 'state * 'msg send list)) option;
  handler : ('state, 'msg) handler;
  queue : 'msg event Event_queue.t;
  mutable node_states : 'state Node.Map.t;
  (* Per directed link, the latest scheduled delivery time, used to
     enforce FIFO even under jitter. *)
  mutable link_clock : float Edge.Map.t Node.Map.t;
  mutable clock : float;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
}

type stats = {
  delivered : int;
  sent : int;
  final_time : float;
  completed : bool;
}

let send_all t src sends =
  List.iter
    (fun { dest; msg } ->
      if not (Undirected.mem_edge t.topology src dest) then
        invalid_arg "Network: send to non-neighbour";
      t.sent <- t.sent + 1;
      let lost =
        match t.drop with
        | Some (rng, p) when p > 0.0 -> Random.State.float rng 1.0 < p
        | _ -> false
      in
      if lost then t.dropped <- t.dropped + 1
      else begin
        let base = t.latency src dest in
        let extra =
          match t.jitter with
          | Some (rng, j) when j > 0.0 -> Random.State.float rng j
          | _ -> 0.0
        in
        let e = Edge.make src dest in
        (* FIFO per directed link: never schedule before an earlier send
           on the same link. *)
        let dir_map =
          Node.Map.find_or ~default:Edge.Map.empty src t.link_clock
        in
        let last =
          match Edge.Map.find_opt e dir_map with Some x -> x | None -> 0.0
        in
        let when_ = Float.max (t.clock +. base +. extra) (last +. 1e-9) in
        t.link_clock <-
          Node.Map.add src (Edge.Map.add e when_ dir_map) t.link_clock;
        Event_queue.add t.queue ~time:when_ (Delivery { src; dst = dest; body = msg })
      end)
    sends

let schedule_tick t u time = Event_queue.add t.queue ~time (Tick u)

let create ~topology ~latency ?jitter ?drop ?timer handler =
  let t =
    {
      topology;
      latency;
      jitter;
      drop;
      timer;
      handler;
      queue = Event_queue.create ();
      node_states = Node.Map.empty;
      link_clock = Node.Map.empty;
      clock = 0.0;
      sent = 0;
      delivered = 0;
      dropped = 0;
    }
  in
  Node.Set.iter
    (fun u ->
      let st, sends = handler.init u (Undirected.neighbors topology u) in
      t.node_states <- Node.Map.add u st t.node_states;
      send_all t u sends;
      match timer with
      | Some (interval, _) -> schedule_tick t u interval
      | None -> ())
    (Undirected.nodes topology);
  t

let run ?(max_deliveries = 1_000_000) ?until t =
  let budget = ref max_deliveries in
  let completed = ref true in
  let continue_ = ref true in
  let past_deadline time =
    match until with Some stop -> time > stop | None -> false
  in
  while !continue_ do
    if !budget <= 0 then begin
      completed := false;
      continue_ := false
    end
    else
      match Event_queue.pop t.queue with
      | None -> continue_ := false
      | Some (time, _) when past_deadline time ->
          (* put nothing back: the run is over *)
          continue_ := false
      | Some (time, Delivery { src; dst; body }) ->
          decr budget;
          t.clock <- time;
          t.delivered <- t.delivered + 1;
          let st = Node.Map.find dst t.node_states in
          let st', sends = t.handler.on_message dst st ~from:src body in
          t.node_states <- Node.Map.add dst st' t.node_states;
          send_all t dst sends
      | Some (time, Tick u) -> (
          decr budget;
          t.clock <- time;
          match t.timer with
          | None -> ()
          | Some (interval, tick) ->
              let st = Node.Map.find u t.node_states in
              let st', sends = tick u st in
              t.node_states <- Node.Map.add u st' t.node_states;
              send_all t u sends;
              if not (past_deadline (time +. interval)) then
                schedule_tick t u (time +. interval))
  done;
  {
    delivered = t.delivered;
    sent = t.sent;
    final_time = t.clock;
    completed = !completed;
  }

let state t u = Node.Map.find u t.node_states
let states t = Node.Map.bindings t.node_states
let now t = t.clock
let dropped t = t.dropped
