(** A mutable binary-heap event queue keyed by simulated time.

    Ties are broken by insertion order, so a simulation driven by this
    queue is fully deterministic given its inputs. *)

type 'a t

val create : unit -> 'a t
val add : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument on a negative or non-finite time. *)

val pop : 'a t -> (float * 'a) option
(** Earliest event, or [None] when empty. *)

val peek_time : 'a t -> float option
val size : 'a t -> int
val is_empty : 'a t -> bool
