(** Exhaustive verification of the paper's statements on small
    instances.

    The paper quantifies over {e every reachable state}; on graphs of up
    to ~5 nodes the reachable state spaces of PR, OneStepPR and NewPR
    are small enough to enumerate outright, so the invariants and the
    existential halves of Theorems 5.2 / 5.4 can be checked exactly
    rather than sampled.

    Enumeration streams states through {!Lr_automata.Automaton.fold_reachable}
    with hashed {!Lr_automata.Statekey} frontiers (no string keys, no
    materialized state lists), and the existential checks index the B
    side by orientation bitset, so each A state scans only the B states
    sharing its oriented graph. *)

type report = {
  automaton : string;
  instance_nodes : int;
  states : int;  (** Reachable states enumerated. *)
  violation : string option;  (** First violation found, if any. *)
}

val pp_report : Format.formatter -> report -> unit

val check_pr_invariants : ?max_states:int -> Linkrev.Config.t -> report
(** Invariants 3.1/3.2, Corollaries 3.3/3.4, skeleton preservation and
    acyclicity (Theorem 5.5) on every reachable PR state (with
    [reverse(S)] over all sink subsets). *)

val check_one_step_pr_invariants :
  ?max_states:int -> Linkrev.Config.t -> report

val check_newpr_invariants : ?max_states:int -> Linkrev.Config.t -> report
(** Invariants 4.1/4.2 and Theorem 4.3 on every reachable NewPR
    state. *)

val check_theorem_5_2 : ?max_states:int -> Linkrev.Config.t -> report
(** For every reachable PR state [s] there is a reachable OneStepPR
    state [t] with [(s, t) ∈ R']. *)

val check_theorem_5_4 : ?max_states:int -> Linkrev.Config.t -> report
(** For every reachable OneStepPR state [s] there is a reachable NewPR
    state [t] with [(s, t) ∈ R]. *)

val check_reverse_theorem : ?max_states:int -> Linkrev.Config.t -> report
(** The future-work direction: for every reachable NewPR state [t]
    there is a reachable OneStepPR state [s] related by the extended
    reverse relation. *)

val check_termination : ?max_states:int -> Linkrev.Config.t -> report
(** Strong termination of NewPR, verified exactly: the reachable state
    graph contains no cycle (every execution is finite), and every
    terminal state is destination-oriented.  Together with Theorem 4.3
    this is the full correctness statement for small instances. *)

val check_all : ?max_states:int -> Linkrev.Config.t -> report list

val exhaustive_families : max_nodes:int -> Linkrev.Config.t list
(** Every connected DAG instance with up to [max_nodes] nodes and every
    destination choice — the input set for a full sweep. *)

type space_stats = {
  pr_states : int;
  newpr_states : int;
  longest_execution : int;
      (** Length of the longest OneStepPR execution — the instance's
          exact worst-case work, computed from the state graph. *)
}

val state_space_stats : ?max_states:int -> Linkrev.Config.t -> (space_stats, string) result
(** Exact state-space measurements for one instance (small graphs). *)
