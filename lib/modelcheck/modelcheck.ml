open Lr_graph
open Linkrev
module A = Lr_automata

type report = {
  automaton : string;
  instance_nodes : int;
  states : int;
  violation : string option;
}

let pp_report ppf r =
  Format.fprintf ppf "%s on %d nodes: %d reachable states, %s" r.automaton
    r.instance_nodes r.states
    (match r.violation with None -> "OK" | Some v -> "VIOLATION: " ^ v)

let nodes_of config = Node.Set.cardinal (Config.nodes config)

(* Stream the reachable set (hashed frontier keys, no state list): count
   the states and remember the first invariant violation. *)
let check_invariant_on_reachable ~max_states ~key aut inv config name =
  let check (count, violation) s =
    let violation =
      match violation with
      | Some _ -> violation
      | None -> (
          match inv.A.Invariant.check s with
          | Ok () -> None
          | Error reason ->
              Some
                {
                  A.Invariant.invariant = inv.A.Invariant.name;
                  state_index = count;
                  reason;
                })
    in
    (count + 1, violation)
  in
  match A.Automaton.fold_reachable ~max_states ~key aut ~init:(0, None) ~f:check with
  | Error e ->
      {
        automaton = name;
        instance_nodes = nodes_of config;
        states = 0;
        violation = Some e;
      }
  | Ok (states, violation) ->
      {
        automaton = name;
        instance_nodes = nodes_of config;
        states;
        violation =
          Option.map
            (fun v -> Format.asprintf "%a" A.Invariant.pp_violation v)
            violation;
      }

let check_pr_invariants ?(max_states = 500_000) config =
  check_invariant_on_reachable ~max_states ~key:Pr.state_key
    (Pr.automaton ~mode:Pr.All_subsets config)
    (Invariants.pr_all config) config "PR invariants"

let check_one_step_pr_invariants ?(max_states = 500_000) config =
  check_invariant_on_reachable ~max_states ~key:Pr.state_key
    (One_step_pr.automaton config)
    (Invariants.pr_all config) config "OneStepPR invariants"

let check_newpr_invariants ?(max_states = 500_000) config =
  check_invariant_on_reachable ~max_states ~key:New_pr.state_key
    (New_pr.automaton config)
    (Invariants.newpr_all config) config "NewPR invariants"

(* For every reachable state of [aut_a], some reachable state of
   [aut_b] satisfies [related].

   Every relation checked here entails equal oriented graphs, so the
   B side is indexed by its graph's orientation bitset ([bits_a]/
   [bits_b] must be that projection): each A state only scans the B
   states sharing its orientation — near-linear overall, where the old
   version rescanned the whole B list per A state, O(|A|·|B|). *)
let check_existential ~max_states ~key_a ~key_b ~bits_a ~bits_b aut_a aut_b
    related config name =
  let fail violation =
    {
      automaton = name;
      instance_nodes = nodes_of config;
      states = 0;
      violation = Some violation;
    }
  in
  let index = Hashtbl.create 1024 in
  let index_b () =
    A.Automaton.iter_reachable ~max_states ~key:key_b aut_b ~f:(fun t ->
        let bits = bits_b t in
        Hashtbl.replace index bits
          (t :: Option.value ~default:[] (Hashtbl.find_opt index bits)))
  in
  match index_b () with
  | Error e -> fail e
  | Ok () -> (
      let check (count, violation) s =
        let violation =
          match violation with
          | Some _ -> violation
          | None ->
              let candidates =
                Option.value ~default:[] (Hashtbl.find_opt index (bits_a s))
              in
              if List.exists (fun t -> related s t) candidates then None
              else
                Some
                  (Format.asprintf "state %a has no related partner"
                     aut_a.A.Automaton.pp_state s)
        in
        (count + 1, violation)
      in
      match
        A.Automaton.fold_reachable ~max_states ~key:key_a aut_a ~init:(0, None)
          ~f:check
      with
      | Error e -> fail e
      | Ok (states, violation) ->
          {
            automaton = name;
            instance_nodes = nodes_of config;
            states;
            violation;
          })

let pr_bits (s : Pr.state) = Digraph.orientation_bits s.Pr.graph
let newpr_bits (t : New_pr.state) = Digraph.orientation_bits t.New_pr.graph

let check_theorem_5_2 ?(max_states = 200_000) config =
  check_existential ~max_states ~key_a:Pr.state_key ~key_b:Pr.state_key
    ~bits_a:pr_bits ~bits_b:pr_bits
    (Pr.automaton ~mode:Pr.All_subsets config)
    (One_step_pr.automaton config)
    (fun s t -> Result.is_ok ((Simulation_rel.r_prime config).relation s t))
    config "Theorem 5.2 (R' existence)"

let check_theorem_5_4 ?(max_states = 200_000) config =
  check_existential ~max_states ~key_a:Pr.state_key ~key_b:New_pr.state_key
    ~bits_a:pr_bits ~bits_b:newpr_bits
    (One_step_pr.automaton config)
    (New_pr.automaton config)
    (fun s t -> Result.is_ok ((Simulation_rel.r config).relation s t))
    config "Theorem 5.4 (R existence)"

let check_reverse_theorem ?(max_states = 200_000) config =
  check_existential ~max_states ~key_a:New_pr.state_key ~key_b:Pr.state_key
    ~bits_a:newpr_bits ~bits_b:pr_bits
    (New_pr.automaton config)
    (One_step_pr.automaton config)
    (fun t s -> Result.is_ok ((Simulation_rel.r_reverse config).relation t s))
    config "Reverse direction (future work)"

(* Explicit state graph of an automaton: hashed keys plus successor
   lists, streamed straight into the table. *)
let state_graph ~max_states ~key (aut : ('s, 'a) A.Automaton.t) =
  let succs = A.Statekey.Table.create 1024 in
  let record keys s =
    let ks = key s in
    let outs =
      List.map (fun a -> key (aut.A.Automaton.step s a))
        (aut.A.Automaton.enabled s)
    in
    A.Statekey.Table.replace succs ks (s, outs);
    ks :: keys
  in
  match A.Automaton.fold_reachable ~max_states ~key aut ~init:[] ~f:record with
  | Error e -> Error e
  | Ok keys -> Ok (List.rev keys, succs)

(* Longest path in a DAG of states; [None] when a cycle exists. *)
let longest_path keys succs =
  let memo = A.Statekey.Table.create (List.length keys) in
  let exception Cycle in
  let rec depth k =
    match A.Statekey.Table.find_opt memo k with
    | Some `Visiting -> raise Cycle
    | Some (`Done d) -> d
    | None ->
        A.Statekey.Table.replace memo k `Visiting;
        let _, outs = A.Statekey.Table.find succs k in
        let d =
          List.fold_left (fun acc k' -> max acc (1 + depth k')) 0 outs
        in
        A.Statekey.Table.replace memo k (`Done d);
        d
  in
  try Some (List.fold_left (fun acc k -> max acc (depth k)) 0 keys)
  with Cycle -> None

let check_termination ?(max_states = 200_000) config =
  let name = "Termination (state graph acyclic, terminal states oriented)" in
  let fail violation =
    {
      automaton = name;
      instance_nodes = nodes_of config;
      states = 0;
      violation = Some violation;
    }
  in
  match
    state_graph ~max_states ~key:Pr.state_key (One_step_pr.automaton config)
  with
  | Error e -> fail e
  | Ok (keys, succs) -> (
      match longest_path keys succs with
      | None -> fail "state graph has a cycle: an infinite execution exists"
      | Some _ ->
          let bad_terminal =
            List.find_opt
              (fun k ->
                let (s : Pr.state), outs = A.Statekey.Table.find succs k in
                match outs with
                | _ :: _ -> false
                | [] ->
                    not
                      (Lr_graph.Digraph.is_destination_oriented s.Pr.graph
                         config.Config.destination))
              keys
          in
          {
            automaton = name;
            instance_nodes = nodes_of config;
            states = List.length keys;
            violation =
              Option.map
                (fun k ->
                  let s, _ = A.Statekey.Table.find succs k in
                  Format.asprintf
                    "terminal state not destination-oriented: %a" Pr.pp_state
                    s)
                bad_terminal;
          })

type space_stats = {
  pr_states : int;
  newpr_states : int;
  longest_execution : int;
}

let state_space_stats ?(max_states = 200_000) config =
  let ( let* ) = Result.bind in
  let* keys, succs =
    state_graph ~max_states ~key:Pr.state_key (One_step_pr.automaton config)
  in
  let* longest =
    Option.to_result ~none:"cyclic state graph" (longest_path keys succs)
  in
  let* newpr_states =
    A.Automaton.fold_reachable ~max_states ~key:New_pr.state_key
      (New_pr.automaton config) ~init:0 ~f:(fun n _ -> n + 1)
  in
  Ok { pr_states = List.length keys; newpr_states; longest_execution = longest }

let check_all ?max_states config =
  [
    check_pr_invariants ?max_states config;
    check_one_step_pr_invariants ?max_states config;
    check_newpr_invariants ?max_states config;
    check_theorem_5_2 ?max_states config;
    check_theorem_5_4 ?max_states config;
    check_reverse_theorem ?max_states config;
    check_termination ?max_states config;
  ]

let exhaustive_families ~max_nodes =
  let rec sizes n = if n > max_nodes then [] else n :: sizes (n + 1) in
  sizes 2
  |> List.concat_map (fun n ->
         Generators.all_dag_instances n |> List.map Config.of_instance)
