open Lr_graph
open Linkrev
module A = Lr_automata

type report = {
  automaton : string;
  instance_nodes : int;
  states : int;
  violation : string option;
}

let pp_report ppf r =
  Format.fprintf ppf "%s on %d nodes: %d reachable states, %s" r.automaton
    r.instance_nodes r.states
    (match r.violation with None -> "OK" | Some v -> "VIOLATION: " ^ v)

let nodes_of config = Node.Set.cardinal (Config.nodes config)

let check_invariant_on_reachable ~max_states ~key aut inv config name =
  match A.Automaton.reachable ~max_states ~key aut with
  | Error e ->
      {
        automaton = name;
        instance_nodes = nodes_of config;
        states = 0;
        violation = Some e;
      }
  | Ok states ->
      let violation =
        Option.map
          (fun v -> Format.asprintf "%a" A.Invariant.pp_violation v)
          (A.Invariant.check_states inv states)
      in
      {
        automaton = name;
        instance_nodes = nodes_of config;
        states = List.length states;
        violation;
      }

let check_pr_invariants ?(max_states = 500_000) config =
  check_invariant_on_reachable ~max_states ~key:Pr.canonical_key
    (Pr.automaton ~mode:Pr.All_subsets config)
    (Invariants.pr_all config) config "PR invariants"

let check_one_step_pr_invariants ?(max_states = 500_000) config =
  check_invariant_on_reachable ~max_states ~key:Pr.canonical_key
    (One_step_pr.automaton config)
    (Invariants.pr_all config) config "OneStepPR invariants"

let check_newpr_invariants ?(max_states = 500_000) config =
  check_invariant_on_reachable ~max_states ~key:New_pr.canonical_key
    (New_pr.automaton config)
    (Invariants.newpr_all config) config "NewPR invariants"

(* For every reachable state of [aut_a], some enumerated state of
   [aut_b] satisfies [related]. *)
let check_existential ~max_states ~key_a ~key_b aut_a aut_b related config
    name =
  let fail violation =
    {
      automaton = name;
      instance_nodes = nodes_of config;
      states = 0;
      violation = Some violation;
    }
  in
  match A.Automaton.reachable ~max_states ~key:key_a aut_a with
  | Error e -> fail e
  | Ok states_a -> (
      match A.Automaton.reachable ~max_states ~key:key_b aut_b with
      | Error e -> fail e
      | Ok states_b ->
          let violation =
            List.find_map
              (fun s ->
                if List.exists (fun t -> related s t) states_b then None
                else
                  Some
                    (Format.asprintf "state %s has no related partner"
                       (key_a s)))
              states_a
          in
          {
            automaton = name;
            instance_nodes = nodes_of config;
            states = List.length states_a;
            violation;
          })

let check_theorem_5_2 ?(max_states = 200_000) config =
  check_existential ~max_states ~key_a:Pr.canonical_key
    ~key_b:Pr.canonical_key
    (Pr.automaton ~mode:Pr.All_subsets config)
    (One_step_pr.automaton config)
    (fun s t -> Result.is_ok ((Simulation_rel.r_prime config).relation s t))
    config "Theorem 5.2 (R' existence)"

let check_theorem_5_4 ?(max_states = 200_000) config =
  check_existential ~max_states ~key_a:Pr.canonical_key
    ~key_b:New_pr.canonical_key
    (One_step_pr.automaton config)
    (New_pr.automaton config)
    (fun s t -> Result.is_ok ((Simulation_rel.r config).relation s t))
    config "Theorem 5.4 (R existence)"

let check_reverse_theorem ?(max_states = 200_000) config =
  check_existential ~max_states ~key_a:New_pr.canonical_key
    ~key_b:Pr.canonical_key
    (New_pr.automaton config)
    (One_step_pr.automaton config)
    (fun t s -> Result.is_ok ((Simulation_rel.r_reverse config).relation t s))
    config "Reverse direction (future work)"

(* Explicit state graph of an automaton: keys plus successor lists. *)
let state_graph ~max_states ~key (aut : ('s, 'a) A.Automaton.t) =
  match A.Automaton.reachable ~max_states ~key aut with
  | Error e -> Error e
  | Ok states ->
      let succs = Hashtbl.create (List.length states) in
      List.iter
        (fun s ->
          let ks = key s in
          let outs =
            List.map (fun a -> key (aut.A.Automaton.step s a))
              (aut.A.Automaton.enabled s)
          in
          Hashtbl.replace succs ks (s, outs))
        states;
      Ok (List.map key states, succs)

(* Longest path in a DAG of states; [None] when a cycle exists. *)
let longest_path keys succs =
  let memo = Hashtbl.create (List.length keys) in
  let exception Cycle in
  let rec depth k =
    match Hashtbl.find_opt memo k with
    | Some `Visiting -> raise Cycle
    | Some (`Done d) -> d
    | None ->
        Hashtbl.replace memo k `Visiting;
        let _, outs = Hashtbl.find succs k in
        let d =
          List.fold_left (fun acc k' -> max acc (1 + depth k')) 0 outs
        in
        Hashtbl.replace memo k (`Done d);
        d
  in
  try Some (List.fold_left (fun acc k -> max acc (depth k)) 0 keys)
  with Cycle -> None

let check_termination ?(max_states = 200_000) config =
  let name = "Termination (state graph acyclic, terminal states oriented)" in
  let fail violation =
    {
      automaton = name;
      instance_nodes = nodes_of config;
      states = 0;
      violation = Some violation;
    }
  in
  match
    state_graph ~max_states ~key:Pr.canonical_key (One_step_pr.automaton config)
  with
  | Error e -> fail e
  | Ok (keys, succs) -> (
      match longest_path keys succs with
      | None -> fail "state graph has a cycle: an infinite execution exists"
      | Some _ ->
          let bad_terminal =
            List.find_opt
              (fun k ->
                let (s : Pr.state), outs = Hashtbl.find succs k in
                outs = []
                && not
                     (Lr_graph.Digraph.is_destination_oriented s.Pr.graph
                        config.Config.destination))
              keys
          in
          {
            automaton = name;
            instance_nodes = nodes_of config;
            states = List.length keys;
            violation =
              Option.map
                (fun k -> "terminal state not destination-oriented: " ^ k)
                bad_terminal;
          })

type space_stats = {
  pr_states : int;
  newpr_states : int;
  longest_execution : int;
}

let state_space_stats ?(max_states = 200_000) config =
  let ( let* ) = Result.bind in
  let* keys, succs =
    state_graph ~max_states ~key:Pr.canonical_key (One_step_pr.automaton config)
  in
  let* longest =
    Option.to_result ~none:"cyclic state graph" (longest_path keys succs)
  in
  let* newpr =
    A.Automaton.reachable ~max_states ~key:New_pr.canonical_key
      (New_pr.automaton config)
  in
  Ok
    {
      pr_states = List.length keys;
      newpr_states = List.length newpr;
      longest_execution = longest;
    }

let check_all ?max_states config =
  [
    check_pr_invariants ?max_states config;
    check_one_step_pr_invariants ?max_states config;
    check_newpr_invariants ?max_states config;
    check_theorem_5_2 ?max_states config;
    check_theorem_5_4 ?max_states config;
    check_reverse_theorem ?max_states config;
    check_termination ?max_states config;
  ]

let exhaustive_families ~max_nodes =
  let rec sizes n = if n > max_nodes then [] else n :: sizes (n + 1) in
  sizes 2
  |> List.concat_map (fun n ->
         Generators.all_dag_instances n |> List.map Config.of_instance)
