(** End-to-end packet scenarios: the backpressure-LR rate sweep and the
    geographic-void recovery run — the drivers behind [linkrev packet]
    and the D-B1 packet bench.

    Both are single-threaded and fully deterministic from their spec
    (seeded RNG, {!Lr_sim.Event_queue} scheduling with insertion-order
    tie-breaks, synchronous plane slots). *)

(** {2 Backpressure rate sweep} *)

type bp_spec = {
  nodes : int;
  extra_edges : int;
  dests : int;  (** Forwarding planes (destinations [0 .. dests-1]). *)
  seed : int;
  slots : int;  (** Injection slots. *)
  drain : int;  (** Extra injection-free slots (early exit when empty). *)
  rate : int;  (** Packets offered per slot, across all planes. *)
  skew : float;  (** Zipf exponent over destinations. *)
  qcap : int;
  cap : int;  (** Per-node transmissions per slot. *)
  churn_every : int;  (** Toggle one random link down/up every so many
                          slots; [0] disables.  Any link still down when
                          injection ends is restored before draining. *)
}

val default_bp : bp_spec
(** 64 nodes, 64 extra edges, 4 planes, seed 42, 512 slots, drain
    budget 8192, rate 8, skew 0.9, qcap 16, cap 1, no churn. *)

type bp_result = {
  rate : int;
  offered : int;
  injected : int;  (** Accepted (offered minus dropped). *)
  dropped : int;
  delivered : int;
  reversals : int;
  queued_mid : int;  (** Total occupancy at the middle of injection. *)
  queued_end : int;  (** Total occupancy when injection ends. *)
  remaining : int;  (** Still queued after the drain budget. *)
  high_water : int;
  hops_sum : int;
  dist_sum : int;
  diverged : bool;
      (** Queues diverged: drops occurred, packets survived the drain
          budget, or end-of-injection occupancy kept growing past twice
          the mid-point sample (plus two slots' rate of slack). *)
}

val run_backpressure : ?trace_dir:string -> bp_spec -> bp_result
(** One run at [spec.rate].  Each plane's heights seed from a stabilized
    {!Lr_routing.Fast_maintenance} engine via its [height] hook.  When
    [trace_dir] is given, each plane's initial stabilization is recorded
    there as a replayable LRT1 trace ([plane-NNN.lrt]) — the
    queue-driven reversals themselves are not replayable events (replay
    enforces sink preconditions; these reversals re-point non-sinks).
    @raise Invalid_argument on non-positive sizes or [dests > nodes]. *)

val sweep : ?trace_dir:string -> bp_spec -> rates:int list -> bp_result list
(** [run_backpressure] at each rate ([spec.rate] ignored). *)

val stability_threshold : bp_result list -> int option
(** The largest swept rate [r] such that every result at rate [<= r]
    delivered at least 99% of offered packets without diverging —
    [None] when even the smallest rate is unstable. *)

val delivery : bp_result -> float
(** Delivered over {e offered} (drops count against delivery). *)

val stretch : bp_result -> float

(** {2 Geographic void} *)

type void_spec = {
  vnodes : int;
  radius : float;
  vseed : int;
  sources : int;  (** Leftmost nodes used as traffic sources. *)
  per_source : int;
  max_slots : int;
  vqcap : int;
  void_ : float * float * float * float;
}

val default_void : void_spec
(** 180 nodes, radius 0.14, seed 7, 6 sources x 4 packets, qcap 8,
    4096 slots, void rectangle (0.38, 0.12, 0.62, 0.88). *)

type void_result = {
  greedy : Geo.result;
  recovery : Geo.result;
  minima : int;  (** Greedy local minima in the instance. *)
}

val run_void : void_spec -> void_result
(** Generate the void instance ({!Geo.generate}) and run both modes on
    identical traffic.  The default spec strands greedy packets
    (instances are redrawn until the void creates at least one local
    minimum) while recovery delivers everything. *)
