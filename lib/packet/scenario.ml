module G = Lr_fast.Fast_graph
module FM = Lr_routing.Fast_maintenance
module Eq = Lr_sim.Event_queue

type bp_spec = {
  nodes : int;
  extra_edges : int;
  dests : int;
  seed : int;
  slots : int;
  drain : int;
  rate : int;
  skew : float;
  qcap : int;
  cap : int;
  churn_every : int;
}

let default_bp =
  {
    nodes = 64;
    extra_edges = 64;
    dests = 4;
    seed = 42;
    slots = 512;
    drain = 8192;
    rate = 8;
    skew = 0.9;
    qcap = 16;
    cap = 1;
    churn_every = 0;
  }

type bp_result = {
  rate : int;
  offered : int;
  injected : int;
  dropped : int;
  delivered : int;
  reversals : int;
  queued_mid : int;
  queued_end : int;
  remaining : int;
  high_water : int;
  hops_sum : int;
  dist_sum : int;
  diverged : bool;
}

let rng_of spec salt = Random.State.make [| 0x9ac4e7; spec.seed; salt |]

(* Zipf cumulative weights over destination ranks, like the workload
   generator's shard popularity. *)
let zipf_cum ~dests ~skew =
  let cum = Array.make dests 0. in
  let total = ref 0. in
  for i = 0 to dests - 1 do
    total := !total +. (1. /. Float.pow (float_of_int (i + 1)) skew);
    cum.(i) <- !total
  done;
  cum

let pick_dest rng cum =
  let total = cum.(Array.length cum - 1) in
  let r = Random.State.float rng total in
  let i = ref 0 in
  while Float.compare cum.(!i) r <= 0 do incr i done;
  !i

(* The scenario clock: churn toggles and the mid-run occupancy sample
   are scheduled on the simulator's event queue (slot number as time),
   popped as the slot loop crosses them. *)
type tick = Churn_toggle | Sample_mid

let run_backpressure ?trace_dir spec =
  if spec.nodes < 2 || spec.dests < 1 || spec.dests > spec.nodes then
    invalid_arg "Scenario.run_backpressure: bad nodes/dests";
  if spec.slots < 1 || spec.rate < 0 || spec.qcap < 1 || spec.cap < 1 then
    invalid_arg "Scenario.run_backpressure: bad slots/rate/qcap/cap";
  let inst = Lr_graph.Generators.random_connected_dag (rng_of spec 1) ~n:spec.nodes
      ~extra_edges:spec.extra_edges
  in
  let configs =
    Array.init spec.dests (fun d -> Linkrev.Config.make_exn inst.graph ~destination:d)
  in
  (match trace_dir with
  | None -> ()
  | Some dir ->
      Array.iteri
        (fun d config ->
          let path = Filename.concat dir (Printf.sprintf "plane-%03d.lrt" d) in
          ignore
            (Lr_trace.Record.fast ~seed:spec.seed ~path ~rule:Lr_fast.Fast_engine.Partial
               config))
        configs);
  (* Heights seed from the stabilized fast engine (the lib/routing
     [height] hook): every node in the destination's component starts
     with a live route. *)
  let planes =
    Array.map
      (fun config ->
        let fm = FM.create Lr_routing.Maintenance.Partial_reversal config in
        let n = FM.num_nodes fm in
        let ha = Array.make n 0 and hb = Array.make n 0 in
        for u = 0 to n - 1 do
          let a, b = FM.height fm u in
          ha.(u) <- a;
          hb.(u) <- b
        done;
        Plane.create ~qcap:spec.qcap ~cap:spec.cap ~heights:(ha, hb) config)
      configs
  in
  (* Undirected skeleton edges, for churn picks. *)
  let edges =
    let g = G.of_config configs.(0) in
    let out = ref [] in
    for u = spec.nodes - 1 downto 0 do
      let row = g.G.nbrs.(u) in
      for i = Array.length row - 1 downto 0 do
        if u < row.(i) then out := (u, row.(i)) :: !out
      done
    done;
    Array.of_list !out
  in
  let ticks = Eq.create () in
  if spec.churn_every > 0 then begin
    let k = ref spec.churn_every in
    while !k <= spec.slots do
      Eq.add ticks ~time:(float_of_int !k) Churn_toggle;
      k := !k + spec.churn_every
    done
  end;
  Eq.add ticks ~time:(float_of_int (spec.slots / 2)) Sample_mid;
  let rng = rng_of spec 2 in
  let churn_rng = rng_of spec 3 in
  let cum = zipf_cum ~dests:spec.dests ~skew:spec.skew in
  let down = ref None in
  let toggle () =
    match !down with
    | Some (u, v) ->
        Array.iter (fun p -> Plane.add_link p u v) planes;
        down := None
    | None ->
        let u, v = edges.(Random.State.int churn_rng (Array.length edges)) in
        Array.iter (fun p -> Plane.remove_link p u v) planes;
        down := Some (u, v)
  in
  let total_queued () = Array.fold_left (fun acc p -> acc + Plane.queued p) 0 planes in
  let offered = ref 0 and dropped = ref 0 in
  let queued_mid = ref 0 in
  for s = 0 to spec.slots - 1 do
    let ticking = ref true in
    while !ticking do
      match Eq.peek_time ticks with
      | Some time when Float.compare time (float_of_int s) <= 0 -> (
          match Eq.pop ticks with
          | Some (_, Churn_toggle) -> toggle ()
          | Some (_, Sample_mid) -> queued_mid := total_queued ()
          | None -> ticking := false)
      | _ -> ticking := false
    done;
    for _ = 1 to spec.rate do
      let d = pick_dest rng cum in
      let src = ref (Random.State.int rng spec.nodes) in
      while !src = Plane.destination planes.(d) do
        src := Random.State.int rng spec.nodes
      done;
      let _, dr = Plane.inject planes.(d) ~src:!src ~count:1 in
      incr offered;
      dropped := !dropped + dr
    done;
    Array.iter (fun p -> ignore (Plane.slot p : Plane.slot_outcome)) planes
  done;
  let queued_end = total_queued () in
  (* Restore a mid-churn outage before draining, so stranded regions
     can reconnect. *)
  (match !down with
  | Some (u, v) ->
      Array.iter (fun p -> Plane.add_link p u v) planes;
      down := None
  | None -> ());
  let d = ref 0 in
  while !d < spec.drain && total_queued () > 0 do
    Array.iter (fun p -> ignore (Plane.slot p : Plane.slot_outcome)) planes;
    incr d
  done;
  let fold f = Array.fold_left (fun acc p -> acc + f (Plane.counters p)) 0 planes in
  let injected = fold (fun c -> c.Plane.injected) in
  let delivered = fold (fun c -> c.Plane.delivered) in
  let reversals = fold (fun c -> c.Plane.reversals) in
  let hops_sum = fold (fun c -> c.Plane.hops_sum) in
  let dist_sum = fold (fun c -> c.Plane.dist_sum) in
  let high_water =
    Array.fold_left (fun acc p -> max acc (Plane.high_water p)) 0 planes
  in
  {
    rate = spec.rate;
    offered = !offered;
    injected;
    dropped = !dropped;
    delivered;
    reversals;
    queued_mid = !queued_mid;
    queued_end;
    remaining = total_queued ();
    high_water;
    hops_sum;
    dist_sum;
    diverged =
      !dropped > 0
      || total_queued () > 0
      || queued_end > (2 * !queued_mid) + (2 * spec.rate);
  }

let sweep ?trace_dir spec ~rates =
  List.mapi
    (fun i rate ->
      let trace_dir = if i = 0 then trace_dir else None in
      run_backpressure ?trace_dir { spec with rate })
    rates

let delivery r =
  if r.offered = 0 then 1. else float_of_int r.delivered /. float_of_int r.offered

let stretch r =
  if r.dist_sum = 0 then 0. else float_of_int r.hops_sum /. float_of_int r.dist_sum

let stability_threshold results =
  let sorted = List.sort (fun a b -> compare a.rate b.rate) results in
  let rec scan best = function
    | [] -> best
    | r :: rest ->
        if (not r.diverged) && Float.compare (delivery r) 0.99 >= 0 then
          scan (Some r.rate) rest
        else best
  in
  scan None sorted

(* {1 Geographic void} *)

type void_spec = {
  vnodes : int;
  radius : float;
  vseed : int;
  sources : int;
  per_source : int;
  max_slots : int;
  vqcap : int;
  void_ : float * float * float * float;
}

let default_void =
  {
    vnodes = 180;
    radius = 0.14;
    vseed = 7;
    sources = 6;
    per_source = 4;
    max_slots = 4096;
    vqcap = 8;
    void_ = (0.38, 0.12, 0.62, 0.88);
  }

type void_result = { greedy : Geo.result; recovery : Geo.result; minima : int }

let run_void spec =
  let rng = Random.State.make [| 0x9ac4e7; spec.vseed; 11 |] in
  (* Redraw until the void actually creates a greedy local minimum —
     the interesting regime; bounded like Geo.generate's own redraws. *)
  let rec gen k =
    if k = 0 then invalid_arg "Scenario.run_void: no instance with a local minimum";
    let inst = Geo.generate rng ~n:spec.vnodes ~radius:spec.radius ~void_:spec.void_ () in
    match Geo.local_minima inst with [] -> gen (k - 1) | _ :: _ -> inst
  in
  let inst = gen 50 in
  (* The [sources] leftmost nodes: traffic must cross the void. *)
  let by_x = Array.init inst.Geo.n (fun u -> u) in
  Array.sort
    (fun u v ->
      let c = Float.compare inst.Geo.xs.(u) inst.Geo.xs.(v) in
      if c <> 0 then c else compare u v)
    by_x;
  let sources = Array.sub by_x 0 (min spec.sources inst.Geo.n) in
  let run mode =
    Geo.run mode inst ~sources ~per_source:spec.per_source ~max_slots:spec.max_slots
      ~qcap:spec.vqcap
  in
  {
    greedy = run Geo.Greedy;
    recovery = run Geo.Recovery;
    minima = List.length (Geo.local_minima inst);
  }
