(** A bounded FIFO of non-negative ints (packet ids), backed by one
    flat circular buffer — no allocation after [create].  The bound is
    the backpressure signal of the forwarding layer: a full queue
    refuses arrivals, and refusals are what drive both drop accounting
    and the queue-differential reversal trigger. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : t -> int
val length : t -> int
val is_empty : t -> bool
val is_full : t -> bool

val push : t -> int -> bool
(** Enqueue at the tail; [false] (and no change) when full. *)

val pop : t -> int
(** Dequeue the head, or [-1] when empty (ids are non-negative, so the
    sentinel is unambiguous). *)

val peek : t -> int
(** The head without removing it, or [-1] when empty. *)

val clear : t -> unit

val iter : (int -> unit) -> t -> unit
(** Head-to-tail order. *)
