type instance = {
  n : int;
  xs : float array;
  ys : float array;
  nbrs : int array array;
  dest : int;
  hop_dist : int array;
}

let dist2 xs ys u v =
  let dx = xs.(u) -. xs.(v) and dy = ys.(u) -. ys.(v) in
  (dx *. dx) +. (dy *. dy)

let bfs_hops nbrs dest =
  let n = Array.length nbrs in
  let d = Array.make n (-1) in
  let q = Array.make n 0 in
  d.(dest) <- 0;
  q.(0) <- dest;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let u = q.(!head) in
    incr head;
    Array.iter
      (fun w ->
        if d.(w) < 0 then begin
          d.(w) <- d.(u) + 1;
          q.(!tail) <- w;
          incr tail
        end)
      nbrs.(u)
  done;
  d

let generate rng ~n ~radius ?void_ () =
  if n < 2 then invalid_arg "Geo.generate: n < 2";
  let in_void x y =
    match void_ with
    | None -> false
    | Some (x0, y0, x1, y1) -> x >= x0 && x <= x1 && y >= y0 && y <= y1
  in
  let xs = Array.make n 0. and ys = Array.make n 0. in
  let r2 = radius *. radius in
  let attempt () =
    for u = 0 to n - 1 do
      let x = ref (Random.State.float rng 1.0) and y = ref (Random.State.float rng 1.0) in
      while in_void !x !y do
        x := Random.State.float rng 1.0;
        y := Random.State.float rng 1.0
      done;
      xs.(u) <- !x;
      ys.(u) <- !y
    done;
    let nbrs =
      Array.init n (fun u ->
          let row = ref [] in
          for v = n - 1 downto 0 do
            if v <> u && Float.compare (dist2 xs ys u v) r2 <= 0 then row := v :: !row
          done;
          Array.of_list !row)
    in
    let hop0 = bfs_hops nbrs 0 in
    if Array.exists (fun d -> d < 0) hop0 then None else Some nbrs
  in
  let rec draw k =
    if k = 0 then invalid_arg "Geo.generate: could not draw a connected instance";
    match attempt () with Some nbrs -> nbrs | None -> draw (k - 1)
  in
  let nbrs = draw 200 in
  let dest = ref 0 in
  for u = 1 to n - 1 do
    if Float.compare xs.(u) xs.(!dest) > 0 then dest := u
  done;
  { n; xs; ys; nbrs; dest = !dest; hop_dist = bfs_hops nbrs !dest }

let local_minima t =
  let out = ref [] in
  for u = t.n - 1 downto 0 do
    if u <> t.dest then begin
      let du = dist2 t.xs t.ys u t.dest in
      let closer = ref false in
      Array.iter
        (fun w -> if Float.compare (dist2 t.xs t.ys w t.dest) du < 0 then closer := true)
        t.nbrs.(u);
      if not !closer then out := u :: !out
    end
  done;
  !out

type mode = Greedy | Recovery

type result = {
  mode : mode;
  injected : int;
  delivered : int;
  remaining : int;
  slots_used : int;
  max_level : int;
  hops_sum : int;
  dist_sum : int;
}

(* Heights in Recovery mode: (level, Euclidean distance to dest, id),
   compared lexicographically.  The destination never raises its level
   and has distance zero, so it is the global minimum throughout. *)
let height_less t (levels : int array) u v =
  if levels.(u) <> levels.(v) then levels.(u) < levels.(v)
  else
    let c = Float.compare (dist2 t.xs t.ys u t.dest) (dist2 t.xs t.ys v t.dest) in
    if c <> 0 then c < 0 else u < v

let run mode t ~sources ~per_source ~max_slots ~qcap =
  if per_source > qcap then invalid_arg "Geo.run: per_source > qcap";
  Array.iter
    (fun s -> if s < 0 || s >= t.n then invalid_arg "Geo.run: source out of range")
    sources;
  let queues = Array.init t.n (fun _ -> Fifo.create ~capacity:qcap) in
  let levels = Array.make t.n 0 in
  let m = Array.length sources * per_source in
  let phops = Array.make (max m 1) 0 in
  let pdist = Array.make (max m 1) 0 in
  let injected = ref 0 and delivered = ref 0 in
  let hops_sum = ref 0 and dist_sum = ref 0 in
  Array.iter
    (fun s ->
      for _ = 1 to per_source do
        if s = t.dest then begin
          incr injected;
          incr delivered
        end
        else begin
          let id = !injected in
          incr injected;
          pdist.(id) <- (if t.hop_dist.(s) > 0 then t.hop_dist.(s) else 0);
          ignore (Fifo.push queues.(s) id : bool)
        end
      done)
    sources;
  let in_add = Array.make t.n 0 in
  let stage_node = Array.make t.n 0 and stage_pkt = Array.make t.n 0 in
  let max_level = ref 0 in
  let slots_used = ref 0 in
  let running = ref (!delivered < !injected) in
  while !running && !slots_used < max_slots do
    Array.fill in_add 0 t.n 0;
    let staged = ref 0 and progress = ref false in
    for u = 0 to t.n - 1 do
      if u <> t.dest && not (Fifo.is_empty queues.(u)) then begin
        (* Best next hop: strictly closer (Greedy) or strictly lower
           height (Recovery); among candidates with receive room, the
           closest / lowest, ties to the lower id. *)
        let best = ref (-1) and any_downhill = ref false in
        let better w best =
          match mode with
          | Greedy ->
              best < 0
              || Float.compare (dist2 t.xs t.ys w t.dest) (dist2 t.xs t.ys best t.dest) < 0
          | Recovery -> best < 0 || height_less t levels w best
        in
        let downhill w =
          match mode with
          | Greedy ->
              Float.compare (dist2 t.xs t.ys w t.dest) (dist2 t.xs t.ys u t.dest) < 0
          | Recovery -> height_less t levels w u
        in
        Array.iter
          (fun w ->
            if downhill w then begin
              any_downhill := true;
              let room = w = t.dest || Fifo.length queues.(w) + in_add.(w) < qcap in
              if room && better w !best then best := w
            end)
          t.nbrs.(u);
        if !best >= 0 then begin
          let w = !best in
          let pkt = Fifo.pop queues.(u) in
          phops.(pkt) <- phops.(pkt) + 1;
          if w = t.dest then begin
            incr delivered;
            hops_sum := !hops_sum + phops.(pkt);
            dist_sum := !dist_sum + pdist.(pkt)
          end
          else begin
            stage_node.(!staged) <- w;
            stage_pkt.(!staged) <- pkt;
            incr staged;
            in_add.(w) <- in_add.(w) + 1
          end;
          progress := true
        end
        else if
          (not !any_downhill) && match mode with Recovery -> true | Greedy -> false
        then begin
          (* The neighbour-oblivious step: stuck with packets, raise
             our own level — no neighbour state consulted. *)
          levels.(u) <- levels.(u) + 1;
          if levels.(u) > !max_level then max_level := levels.(u);
          progress := true
        end
      end
    done;
    for i = 0 to !staged - 1 do
      ignore (Fifo.push queues.(stage_node.(i)) stage_pkt.(i) : bool)
    done;
    incr slots_used;
    if !delivered = !injected || not !progress then running := false
  done;
  {
    mode;
    injected = !injected;
    delivered = !delivered;
    remaining = !injected - !delivered;
    slots_used = !slots_used;
    max_level = !max_level;
    hops_sum = !hops_sum;
    dist_sum = !dist_sum;
  }

let delivery r =
  if r.injected = 0 then 1. else float_of_int r.delivered /. float_of_int r.injected

let stretch r =
  if r.dist_sum = 0 then 0. else float_of_int r.hops_sum /. float_of_int r.dist_sum
