module G = Lr_fast.Fast_graph

type t = {
  n : int;
  dest : int;
  qcap : int;
  cap : int;
  adj : G.Dyn.t;
  (* Heights, keyed by node slot; the third lexicographic component is
     the id itself.  Edge orientation is derived: higher -> lower. *)
  ha : int array;
  hb : int array;
  queues : Fifo.t array;
  (* Packet store: struct-of-arrays plus a free-id stack, grown by
     doubling, so the steady-state slot loop never allocates. *)
  mutable psrc : int array;
  mutable pdist : int array;
  mutable phops : int array;
  mutable free : int array;
  mutable free_len : int;
  mutable pcap : int;
  (* Per-slot scratch: staged arrivals (merged after the sweep) and the
     reversal list. *)
  in_add : int array;
  stage_node : int array;
  stage_pkt : int array;
  rev_list : int array;
  (* BFS hop distance from the destination over the current skeleton,
     recomputed lazily after churn (birth distances for stretch). *)
  dist : int array;
  mutable dist_valid : bool;
  bfs_q : int array;
  mutable injected : int;
  mutable dropped : int;
  mutable delivered : int;
  mutable reversals : int;
  mutable hops_sum : int;
  mutable dist_sum : int;
  mutable queued : int;
  mutable high_water : int;
  mutable slots : int;
}

let num_nodes t = t.n
let destination t = t.dest
let queue_capacity t = t.qcap
let queue_length t u = Fifo.length t.queues.(u)
let queued t = t.queued
let high_water t = t.high_water

(* Same order as Fast_maintenance.compare_heights. *)
let compare_heights t u v =
  if t.ha.(u) <> t.ha.(v) then compare t.ha.(u) t.ha.(v)
  else if t.hb.(u) <> t.hb.(v) then compare t.hb.(u) t.hb.(v)
  else compare u v

let edge_out t u v = compare_heights t u v > 0

(* Deterministic topological seeding from the initial orientation:
   Kahn's algorithm with a FIFO queue seeded in ascending id order.
   Node popped [k]-th gets [hb = n - k], so every initial edge points
   from its earlier-popped (higher-[hb]) endpoint to the later one —
   the derived orientation reproduces [out0] exactly, on every
   maintenance-engine tier alike. *)
let topological_heights g =
  let n = g.G.n in
  let ha = Array.make n 0 and hb = Array.make n 0 in
  let indeg = G.initial_in_degree g in
  let q = Array.make n 0 in
  let head = ref 0 and tail = ref 0 in
  for u = 0 to n - 1 do
    if indeg.(u) = 0 then begin
      q.(!tail) <- u;
      incr tail
    end
  done;
  let popped = ref 0 in
  while !head < !tail do
    let u = q.(!head) in
    incr head;
    incr popped;
    hb.(u) <- n - !popped;
    let row = g.G.nbrs.(u) and out = g.G.out0.(u) in
    for i = 0 to Array.length row - 1 do
      if out.(i) then begin
        let w = row.(i) in
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then begin
          q.(!tail) <- w;
          incr tail
        end
      end
    done
  done;
  if !popped <> n then invalid_arg "Plane.create: initial orientation is cyclic";
  (ha, hb)

let create ?(qcap = 64) ?(cap = 1) ?heights config =
  if qcap < 1 then invalid_arg "Plane.create: qcap < 1";
  if cap < 1 then invalid_arg "Plane.create: cap < 1";
  let g = G.of_config config in
  let n = g.G.n in
  let ha, hb =
    match heights with
    | None -> topological_heights g
    | Some (a, b) ->
        if Array.length a <> n || Array.length b <> n then
          invalid_arg "Plane.create: mis-sized height arrays";
        (Array.copy a, Array.copy b)
  in
  let pcap = 256 in
  let free = Array.init pcap (fun i -> pcap - 1 - i) in
  {
    n;
    dest = g.G.destination;
    qcap;
    cap;
    adj = G.Dyn.of_graph g;
    ha;
    hb;
    queues = Array.init n (fun _ -> Fifo.create ~capacity:qcap);
    psrc = Array.make pcap 0;
    pdist = Array.make pcap 0;
    phops = Array.make pcap 0;
    free;
    free_len = pcap;
    pcap;
    in_add = Array.make n 0;
    stage_node = Array.make (n * cap) 0;
    stage_pkt = Array.make (n * cap) 0;
    rev_list = Array.make n 0;
    dist = Array.make n (-1);
    dist_valid = false;
    bfs_q = Array.make n 0;
    injected = 0;
    dropped = 0;
    delivered = 0;
    reversals = 0;
    hops_sum = 0;
    dist_sum = 0;
    queued = 0;
    high_water = 0;
    slots = 0;
  }

(* {1 Packet store} *)

let alloc t =
  if t.free_len = 0 then begin
    let ncap = 2 * t.pcap in
    let ext a =
      let b = Array.make ncap 0 in
      Array.blit a 0 b 0 t.pcap;
      b
    in
    t.psrc <- ext t.psrc;
    t.pdist <- ext t.pdist;
    t.phops <- ext t.phops;
    let nfree = Array.make ncap 0 in
    for i = 0 to ncap - t.pcap - 1 do
      nfree.(i) <- ncap - 1 - i
    done;
    t.free <- nfree;
    t.free_len <- ncap - t.pcap;
    t.pcap <- ncap
  end;
  t.free_len <- t.free_len - 1;
  t.free.(t.free_len)

let free_pkt t id =
  t.free.(t.free_len) <- id;
  t.free_len <- t.free_len + 1

(* {1 Birth distances} *)

let ensure_dist t =
  if not t.dist_valid then begin
    Array.fill t.dist 0 t.n (-1);
    t.dist.(t.dest) <- 0;
    t.bfs_q.(0) <- t.dest;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let u = t.bfs_q.(!head) in
      incr head;
      for i = 0 to G.Dyn.degree t.adj u - 1 do
        let w = G.Dyn.nbr t.adj u i in
        if t.dist.(w) < 0 then begin
          t.dist.(w) <- t.dist.(u) + 1;
          t.bfs_q.(!tail) <- w;
          incr tail
        end
      done
    done;
    t.dist_valid <- true
  end

(* {1 Traffic} *)

let inject t ~src ~count =
  if src < 0 || src >= t.n then invalid_arg "Plane.inject: src out of range";
  if count < 0 then invalid_arg "Plane.inject: negative count";
  ensure_dist t;
  let accepted = ref 0 and dropped = ref 0 in
  for _ = 1 to count do
    if src = t.dest then begin
      t.injected <- t.injected + 1;
      t.delivered <- t.delivered + 1;
      incr accepted
    end
    else if Fifo.is_full t.queues.(src) then begin
      t.dropped <- t.dropped + 1;
      incr dropped
    end
    else begin
      let id = alloc t in
      t.psrc.(id) <- src;
      t.pdist.(id) <- (if t.dist.(src) > 0 then t.dist.(src) else 0);
      t.phops.(id) <- 0;
      ignore (Fifo.push t.queues.(src) id : bool);
      t.queued <- t.queued + 1;
      t.injected <- t.injected + 1;
      incr accepted;
      let l = Fifo.length t.queues.(src) in
      if l > t.high_water then t.high_water <- l
    end
  done;
  (!accepted, !dropped)

(* One partial-reversal height raise — the same arithmetic as
   [Fast_maintenance.step] under [Partial_reversal], without the
   worklist (reversal scheduling here is queue-driven). *)
let pr_step t u =
  let d = G.Dyn.degree t.adj u in
  if d > 0 then begin
    let min_a = ref max_int in
    for i = 0 to d - 1 do
      let w = G.Dyn.nbr t.adj u i in
      if t.ha.(w) < !min_a then min_a := t.ha.(w)
    done;
    let new_a = !min_a + 1 in
    let min_b = ref max_int and same = ref false in
    for i = 0 to d - 1 do
      let w = G.Dyn.nbr t.adj u i in
      if t.ha.(w) = new_a then begin
        same := true;
        if t.hb.(w) < !min_b then min_b := t.hb.(w)
      end
    done;
    t.ha.(u) <- new_a;
    if !same then t.hb.(u) <- !min_b - 1;
    t.reversals <- t.reversals + 1
  end

type slot_outcome = { delivered : int; reversals : int }

let slot (t : t) =
  let delivered0 = t.delivered and rev0 = t.reversals in
  Array.fill t.in_add 0 t.n 0;
  let staged = ref 0 and nrev = ref 0 in
  for u = 0 to t.n - 1 do
    if u <> t.dest && not (Fifo.is_empty t.queues.(u)) then begin
      let sent = ref 0 and blocked = ref false in
      while (not !blocked) && !sent < t.cap && not (Fifo.is_empty t.queues.(u)) do
        let qu = Fifo.length t.queues.(u) in
        let d = G.Dyn.degree t.adj u in
        (* Max positive differential among out-neighbours with receive
           room; ties to the lower id.  [best_raw] ignores room — it
           separates congestion from orientation below. *)
        let best_w = ref (-1) and best_diff = ref 0 and best_raw = ref min_int in
        for i = 0 to d - 1 do
          let w = G.Dyn.nbr t.adj u i in
          if edge_out t u w then begin
            let qw =
              if w = t.dest then 0 else Fifo.length t.queues.(w) + t.in_add.(w)
            in
            let raw = qu - qw in
            if raw > !best_raw then best_raw := raw;
            if
              raw > 0
              && (w = t.dest || qw < t.qcap)
              && (raw > !best_diff || (raw = !best_diff && (!best_w < 0 || w < !best_w)))
            then begin
              best_diff := raw;
              best_w := w
            end
          end
        done;
        if !best_w >= 0 then begin
          let w = !best_w in
          let pkt = Fifo.pop t.queues.(u) in
          t.phops.(pkt) <- t.phops.(pkt) + 1;
          if w = t.dest then begin
            t.delivered <- t.delivered + 1;
            t.queued <- t.queued - 1;
            if t.pdist.(pkt) > 0 then begin
              t.hops_sum <- t.hops_sum + t.phops.(pkt);
              t.dist_sum <- t.dist_sum + t.pdist.(pkt)
            end;
            free_pkt t pkt
          end
          else begin
            t.stage_node.(!staged) <- w;
            t.stage_pkt.(!staged) <- pkt;
            incr staged;
            t.in_add.(w) <- t.in_add.(w) + 1
          end;
          incr sent
        end
        else begin
          blocked := true;
          (* Reversal trigger: held packets, sent nothing this slot,
             and the block is orientational — no out-edge at all, or no
             out-neighbour with a positive differential.  A positive
             differential into a full queue is congestion: wait, do not
             re-point the DAG. *)
          if !sent = 0 && d > 0 && !best_raw <= 0 then begin
            t.rev_list.(!nrev) <- u;
            incr nrev
          end
        end
      done
    end
  done;
  (* Merge staged arrivals: room was reserved via [in_add], so no push
     can fail. *)
  for i = 0 to !staged - 1 do
    let w = t.stage_node.(i) in
    ignore (Fifo.push t.queues.(w) t.stage_pkt.(i) : bool);
    let l = Fifo.length t.queues.(w) in
    if l > t.high_water then t.high_water <- l
  done;
  for i = 0 to !nrev - 1 do
    pr_step t t.rev_list.(i)
  done;
  t.slots <- t.slots + 1;
  { delivered = t.delivered - delivered0; reversals = t.reversals - rev0 }

(* {1 Topology churn} *)

let mem_edge t u v = G.Dyn.mem_edge t.adj u v

let remove_link t u v =
  G.Dyn.remove_edge t.adj u v;
  t.dist_valid <- false

let add_link t u v =
  G.Dyn.add_edge t.adj u v;
  t.dist_valid <- false

(* {1 Observation} *)

type counters = {
  injected : int;
  dropped : int;
  delivered : int;
  reversals : int;
  hops_sum : int;
  dist_sum : int;
  slots : int;
}

let counters (t : t) =
  {
    injected = t.injected;
    dropped = t.dropped;
    delivered = t.delivered;
    reversals = t.reversals;
    hops_sum = t.hops_sum;
    dist_sum = t.dist_sum;
    slots = t.slots;
  }

let stretch (t : t) =
  if t.dist_sum = 0 then 0. else float_of_int t.hops_sum /. float_of_int t.dist_sum

let consistent (t : t) =
  let total = ref 0 and ok = ref true in
  let seen = Array.make t.pcap false in
  for u = 0 to t.n - 1 do
    let q = t.queues.(u) in
    let l = Fifo.length q in
    if l > t.qcap then ok := false;
    total := !total + l;
    Fifo.iter
      (fun id ->
        if id < 0 || id >= t.pcap || seen.(id) then ok := false
        else seen.(id) <- true)
      q
  done;
  !ok && !total = t.queued && t.injected = t.delivered + t.queued
