(** A per-destination packet-forwarding plane: bounded FIFO queues on
    every node, discrete-time forwarding along the current DAG
    orientation, and queue-differential link reversal — the LR +
    backpressure hybrid of Rai et al. ("Loop-Free Backpressure Routing
    Using Link-Reversal Algorithms", PAPERS.md).

    {2 Model}

    Orientation is {e derived} from per-node heights [(pa, pb, id)]
    compared lexicographically, exactly like the maintenance engines:
    every present edge points from its higher endpoint to its lower
    one, so the routing graph is structurally acyclic at all times — a
    reversal is a height raise, never an edge flip that could close a
    cycle.  Heights seed either from a deterministic topological order
    of the instance's initial orientation (the default, identical
    across maintenance-engine tiers) or from stabilized engine heights
    via {!Lr_routing.Fast_maintenance.height}.

    Each {!slot} is one synchronous round:

    + {b transmit} — every node with queued packets sends up to [cap]
      of them to the out-neighbour with the maximum positive queue
      differential (ties to the lower id; the destination counts as an
      always-empty, always-willing queue).  Arrivals are staged and
      merged after the sweep, so a round's decisions depend only on the
      state at its start plus earlier nodes' sends — deterministic and
      independent of the caller's parallelism.
    + {b reverse} — a node that held packets but transmitted nothing
      {e for orientational reasons} (no out-edge, or no out-neighbour
      with a positive differential) takes one partial-reversal height
      raise.  A node blocked only by full downstream queues does {e
      not} reverse: that is congestion, and backpressure handles it by
      waiting.

    Link churn ({!remove_link} / {!add_link}) changes the skeleton in
    O(degree); queued packets stay put and, if their region lost its
    route, reversals re-point the DAG around the outage. *)

type t

val create :
  ?qcap:int ->
  ?cap:int ->
  ?heights:int array * int array ->
  Linkrev.Config.t ->
  t
(** A plane for [config]'s destination over its skeleton.  [qcap]
    (default 64) bounds every per-node queue; [cap] (default 1) is the
    per-node transmissions per slot.  [heights] — arrays of [(pa, pb)]
    keyed by node id, copied — overrides the default topological
    seeding.  @raise Invalid_argument on non-positive [qcap]/[cap], on
    node ids outside [0 .. n-1], or on mis-sized height arrays. *)

val num_nodes : t -> int
val destination : t -> int
val queue_capacity : t -> int

(** {2 Traffic} *)

val inject : t -> src:int -> count:int -> int * int
(** [inject t ~src ~count] offers [count] packets at [src]; returns
    [(accepted, dropped)] — packets refused by a full source queue are
    dropped on the spot.  Injection at the destination delivers
    immediately (zero hops).  @raise Invalid_argument on an
    out-of-range [src] or negative [count]. *)

type slot_outcome = { delivered : int; reversals : int }

val slot : t -> slot_outcome
(** One synchronous transmit-then-reverse round (see above). *)

(** {2 Topology churn} *)

val mem_edge : t -> int -> int -> bool
val remove_link : t -> int -> int -> unit
(** @raise Invalid_argument if absent. *)

val add_link : t -> int -> int -> unit
(** @raise Invalid_argument if present or a self-loop. *)

(** {2 Observation} *)

val edge_out : t -> int -> int -> bool
(** Derived orientation: the (present) edge [{u,v}] points [u -> v]. *)

val queue_length : t -> int -> int
val queued : t -> int
(** Packets currently in flight (sum of all queue lengths). *)

val high_water : t -> int
(** Maximum single-queue occupancy ever observed. *)

type counters = {
  injected : int;  (** Accepted into a queue (or zero-hop delivered). *)
  dropped : int;
  delivered : int;
  reversals : int;
  hops_sum : int;  (** Over delivered packets with a positive birth distance. *)
  dist_sum : int;  (** Matching shortest-path hop distances at injection. *)
  slots : int;
}

val counters : t -> counters

val stretch : t -> float
(** Mean path stretch over delivered packets: [hops_sum / dist_sum],
    or [0.] before any such delivery. *)

val consistent : t -> bool
(** Accounting audit for tests: [injected = delivered + queued], every
    queue within bound, and no packet id queued twice. *)
