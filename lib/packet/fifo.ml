type t = {
  buf : int array;
  mutable head : int;  (* index of the oldest element *)
  mutable len : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Fifo.create: capacity < 1";
  { buf = Array.make capacity 0; head = 0; len = 0 }

let capacity t = Array.length t.buf
let length t = t.len
let is_empty t = t.len = 0
let is_full t = t.len = Array.length t.buf

let push t x =
  let cap = Array.length t.buf in
  if t.len = cap then false
  else begin
    let tail = t.head + t.len in
    t.buf.(if tail >= cap then tail - cap else tail) <- x;
    t.len <- t.len + 1;
    true
  end

let pop t =
  if t.len = 0 then -1
  else begin
    let x = t.buf.(t.head) in
    let h = t.head + 1 in
    t.head <- (if h = Array.length t.buf then 0 else h);
    t.len <- t.len - 1;
    x
  end

let peek t = if t.len = 0 then -1 else t.buf.(t.head)

let clear t =
  t.head <- 0;
  t.len <- 0

let iter f t =
  let cap = Array.length t.buf in
  for i = 0 to t.len - 1 do
    let j = t.head + i in
    f t.buf.(if j >= cap then j - cap else j)
  done
