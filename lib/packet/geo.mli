(** Geographic forwarding over geometric random graphs with voids, and
    the neighbour-oblivious finite-state link reversal of Ramachandran
    et al. ("Neighbor Oblivious and Finite-State Algorithms for
    Circumventing Local Minima in Geographic Forwarding", PAPERS.md)
    that recovers delivery where plain greedy stalls.

    {2 Model}

    Nodes sit at fixed points in the unit square and are linked when
    within [radius]; a rectangular {e void} keeps a region node-free,
    so the boundary facing the destination contains {e local minima}:
    nodes all of whose neighbours are farther from the destination
    than themselves.  Plain greedy forwarding ({!Greedy}) strands every
    packet that reaches one.

    {!Recovery} runs the same greedy descent over {e heights}
    [(level, distance, id)] compared lexicographically — distance is
    the Euclidean distance to the destination, and [level] starts at
    zero everywhere.  A node holding packets with no lower-height
    neighbour raises {e its own} level by one: no neighbour state is
    read (neighbour-oblivious), the per-node state is one bounded
    counter (finite-state), and since orientation is derived from a
    total order, every raise preserves acyclicity — the same
    structural-acyclicity argument as the height engines'. *)

type instance = {
  n : int;
  xs : float array;
  ys : float array;
  nbrs : int array array;  (** Ascending ids per row. *)
  dest : int;  (** The rightmost node. *)
  hop_dist : int array;  (** BFS hops to [dest]; [-1] unreachable. *)
}

val generate :
  Random.State.t ->
  n:int ->
  radius:float ->
  ?void_:float * float * float * float ->
  unit ->
  instance
(** Uniform placement in the unit square, rejection-sampled outside the
    [void_] rectangle [(x0, y0, x1, y1)] when given; nodes within
    [radius] are linked.  Redraws until connected (the usual unit-disk
    regime); @raise Invalid_argument when [n < 2] or 200 draws all come
    out disconnected (radius too small for [n]). *)

val local_minima : instance -> int list
(** Nodes with no neighbour strictly closer to the destination —
    greedy's stall set (ascending; excludes the destination). *)

type mode = Greedy | Recovery

type result = {
  mode : mode;
  injected : int;
  delivered : int;
  remaining : int;  (** Still queued (stranded, under {!Greedy}). *)
  slots_used : int;
  max_level : int;  (** Highest level any node reached (0 under {!Greedy}). *)
  hops_sum : int;  (** Over delivered packets. *)
  dist_sum : int;  (** Matching BFS hop distances at injection. *)
}

val run :
  mode ->
  instance ->
  sources:int array ->
  per_source:int ->
  max_slots:int ->
  qcap:int ->
  result
(** Inject [per_source] packets at every source, then run synchronous
    slots (one transmission per node per slot, arrivals staged and
    merged like {!Plane.slot}) until everything is delivered, nothing
    can make progress, or [max_slots] elapse.  @raise Invalid_argument
    when [per_source > qcap] or a source is out of range. *)

val delivery : result -> float
val stretch : result -> float
(** [hops_sum / dist_sum] over delivered packets, [0.] if none. *)
