open Lr_service

type spec = { count : int; seed : int; magnitude : int }

let default_seed = 42
let default_magnitude = 1024

let spec_to_string s =
  Printf.sprintf "%d:%d:%d" s.count s.seed s.magnitude

let spec_of_string text =
  let int_field name v =
    match int_of_string_opt v with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "chaos spec: bad %s %S" name v)
  in
  let ( let* ) = Result.bind in
  let* spec =
    match String.split_on_char ':' (String.trim text) with
    | [ k ] ->
        let* count = int_field "fault count" k in
        Ok { count; seed = default_seed; magnitude = default_magnitude }
    | [ k; s ] ->
        let* count = int_field "fault count" k in
        let* seed = int_field "seed" s in
        Ok { count; seed; magnitude = default_magnitude }
    | [ k; s; m ] ->
        let* count = int_field "fault count" k in
        let* seed = int_field "seed" s in
        let* magnitude = int_field "magnitude" m in
        Ok { count; seed; magnitude }
    | _ ->
        Error
          (Printf.sprintf
             "chaos spec: expected COUNT[:SEED[:MAGNITUDE]], got %S" text)
  in
  if spec.count < 0 then Error "chaos spec: negative fault count"
  else if spec.seed < 0 then Error "chaos spec: negative seed"
  else if spec.magnitude < 1 then Error "chaos spec: magnitude must be >= 1"
  else Ok spec

type entry = { at : float; fault : Fault.t }
type t = { spec : spec; entries : entry list }

let entries t = t.entries
let spec t = t.spec

(* One fresh fault.  The weights lean on the height faults (they are
   what the convergence SLO measures); the structural faults keep the
   churn/crash/packet paths honest under the same schedule.  A
   partition is special-cased so the caller can schedule its heal. *)
let fresh_fault rng spec ~shards ~nodes =
  let shard = Random.State.int rng shards in
  let roll = Random.State.int rng 100 in
  if roll < 40 then
    `Fault
      (Fault.Corrupt_heights
         {
           shard;
           seed = Random.State.int rng 0x3fffffff;
           magnitude = spec.magnitude;
         })
  else if roll < 65 then
    `Fault
      (Fault.Flip_route_bit
         {
           shard;
           node = Random.State.int rng nodes;
           bit = Random.State.int rng 31;
         })
  else if roll < 80 then `Partition (shard, Random.State.int rng 0x3fffffff)
  else if roll < 90 then
    `Fault (Fault.Crash_burst { shard; count = 1 + Random.State.int rng 3 })
  else
    `Fault
      (Fault.Poison_queue
         {
           shard;
           src = Random.State.int rng nodes;
           count = 32 + Random.State.int rng 97;
         })

let generate spec ~shards ~nodes =
  if shards < 1 then invalid_arg "Schedule.generate: need at least one shard";
  if nodes < 2 then invalid_arg "Schedule.generate: need at least two nodes";
  if spec.count < 0 then invalid_arg "Schedule.generate: negative fault count";
  let rng = Random.State.make [| 0x6c72; 0x6368616f; spec.seed |] in
  let entries = ref [] in
  for _ = 1 to spec.count do
    let at = Random.State.float rng 1.0 in
    match fresh_fault rng spec ~shards ~nodes with
    | `Fault fault -> entries := { at; fault } :: !entries
    | `Partition (shard, cut_seed) ->
        (* A partition and, later in the run, its heal: one logical
           fault, two schedule entries deriving the same cut. *)
        let heal_at =
          at +. ((1.0 -. at) *. (0.25 +. Random.State.float rng 0.5))
        in
        entries :=
          { at = heal_at; fault = Fault.Heal_partition { shard; seed = cut_seed } }
          :: { at; fault = Fault.Partition { shard; seed = cut_seed } }
          :: !entries
  done;
  let entries =
    List.stable_sort (fun a b -> Float.compare a.at b.at) (List.rev !entries)
  in
  { spec; entries }

(* Weave the schedule into a base op stream with the simulation event
   queue: base op [i] fires at integer time [i + 1], each fault at its
   fractional time scaled to the same horizon, and the queue's
   insertion-order tie-break keeps the merge deterministic. *)
let weave t ~graphs base =
  let q = Lr_sim.Event_queue.create () in
  let horizon = float_of_int (Array.length base + 1) in
  Array.iteri
    (fun i op -> Lr_sim.Event_queue.add q ~time:(float_of_int (i + 1)) op)
    base;
  List.iter
    (fun e ->
      List.iter
        (fun op -> Lr_sim.Event_queue.add q ~time:(e.at *. horizon) op)
        (Fault.compile ~graphs e.fault))
    t.entries;
  let out = Array.make (Lr_sim.Event_queue.size q) Op.Stats in
  let i = ref 0 in
  let rec drain () =
    match Lr_sim.Event_queue.pop q with
    | None -> ()
    | Some (_, op) ->
        out.(!i) <- op;
        incr i;
        drain ()
  in
  drain ();
  out
