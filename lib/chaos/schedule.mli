(** Deterministic seeded fault-injection schedules.

    A schedule is a list of (time, fault) entries on a normalized
    [0, 1) timeline, generated from a tiny spec ([COUNT:SEED:MAG] on
    the command line) by a dedicated RNG stream — independent of the
    workload's, so adding chaos never perturbs which base ops are
    generated.  {!weave} merges the compiled fault ops into a base op
    stream through {!Lr_sim.Event_queue}: base op [i] fires at integer
    time [i+1], faults at their fractional times scaled to the same
    horizon, insertion order breaking ties.  The woven stream is a
    pure function of (spec, base ops, shard topologies), which is what
    lets the service's determinism fingerprints extend to chaos runs. *)

open Lr_service

type spec = { count : int; seed : int; magnitude : int }

val default_seed : int
val default_magnitude : int

val spec_of_string : string -> (spec, string) result
(** Parse ["COUNT[:SEED[:MAGNITUDE]]"] (e.g. ["8"], ["8:7"],
    ["8:7:1024"]).  Count and seed must be non-negative, magnitude
    positive. *)

val spec_to_string : spec -> string

type entry = { at : float; fault : Fault.t }
(** [at] is in [0, 1) — the fraction of the run at which the fault
    lands (heals of scheduled partitions may reach up to [1.0)). *)

type t

val spec : t -> spec
val entries : t -> entry list
(** Ascending by [at]; ties keep generation order. *)

val generate : spec -> shards:int -> nodes:int -> t
(** The canonical schedule of [spec.count] faults over the given
    service shape.  Deterministic in the spec alone.  A scheduled
    partition contributes two entries (the cut and its later heal)
    deriving the same seeded edge set.
    @raise Invalid_argument on a non-positive service shape or a
    negative count. *)

val weave : t -> graphs:Lr_graph.Digraph.t array -> Op.t array -> Op.t array
(** Merge the schedule's compiled ops into the base op stream (see
    module doc).  The result is longer than the input by the total
    compiled fault-op count. *)
