open Lr_graph
open Lr_service

type t =
  | Corrupt_heights of { shard : int; seed : int; magnitude : int }
  | Flip_route_bit of { shard : int; node : int; bit : int }
  | Partition of { shard : int; seed : int }
  | Heal_partition of { shard : int; seed : int }
  | Crash_burst of { shard : int; count : int }
  | Poison_queue of { shard : int; src : int; count : int }

let shard_of = function
  | Corrupt_heights { shard; _ }
  | Flip_route_bit { shard; _ }
  | Partition { shard; _ }
  | Heal_partition { shard; _ }
  | Crash_burst { shard; _ }
  | Poison_queue { shard; _ } ->
      shard

let describe = function
  | Corrupt_heights { shard; seed; magnitude } ->
      Printf.sprintf "corrupt-heights shard %d (seed %d, magnitude %d)" shard
        seed magnitude
  | Flip_route_bit { shard; node; bit } ->
      Printf.sprintf "flip-route-bit shard %d node %d bit %d" shard node bit
  | Partition { shard; seed } ->
      Printf.sprintf "partition shard %d (seed %d)" shard seed
  | Heal_partition { shard; seed } ->
      Printf.sprintf "heal-partition shard %d (seed %d)" shard seed
  | Crash_burst { shard; count } ->
      Printf.sprintf "crash-burst shard %d (%d crashes)" shard count
  | Poison_queue { shard; src; count } ->
      Printf.sprintf "poison-queue shard %d from node %d (%d packets)" shard
        src count

(* The deterministic component cut behind [Partition]/[Heal_partition]:
   a BFS ball of ~n/4 nodes grown from a seeded pivot, and the edge
   set crossing its boundary.  Both endpoints iterate in ascending id
   order, so the list is a pure function of (graph, seed) — the heal
   fault re-derives exactly the edges its partition tore down. *)
let cut graph ~seed =
  let nodes = Digraph.nodes graph in
  let n = Node.Set.cardinal nodes in
  if n < 2 then []
  else begin
    let ids = Array.of_list (Node.Set.elements nodes) in
    let pivot = ids.((((seed mod n) + n) mod n)) in
    let target = Stdlib.max 1 (n / 4) in
    let in_ball = Hashtbl.create 16 in
    let q = Queue.create () in
    Hashtbl.replace in_ball pivot ();
    Queue.add pivot q;
    let count = ref 1 in
    while (not (Queue.is_empty q)) && !count < target do
      let u = Queue.pop q in
      Node.Set.iter
        (fun w ->
          if !count < target && not (Hashtbl.mem in_ball w) then begin
            Hashtbl.replace in_ball w ();
            incr count;
            Queue.add w q
          end)
        (Digraph.neighbors graph u)
    done;
    let edges = ref [] in
    Node.Set.iter
      (fun u ->
        if Hashtbl.mem in_ball u then
          Node.Set.iter
            (fun w ->
              if not (Hashtbl.mem in_ball w) then edges := (u, w) :: !edges)
            (Digraph.neighbors graph u))
      nodes;
    List.rev !edges
  end

let compile ~graphs fault =
  let graph_of shard =
    if shard < 0 || shard >= Array.length graphs then
      invalid_arg "Fault.compile: shard out of range";
    graphs.(shard)
  in
  match fault with
  | Corrupt_heights { shard; seed; magnitude } ->
      [ Op.Corrupt { shard; seed; magnitude } ]
  | Flip_route_bit { shard; node; bit } -> [ Op.Flip { shard; node; bit } ]
  | Partition { shard; seed } ->
      List.map
        (fun (u, v) -> Op.Link_down { shard; u; v })
        (cut (graph_of shard) ~seed)
  | Heal_partition { shard; seed } ->
      List.map
        (fun (u, v) -> Op.Link_up { shard; u; v })
        (cut (graph_of shard) ~seed)
  | Crash_burst { shard; count } ->
      List.init (Stdlib.max 0 count) (fun _ -> Op.Crash_destination { shard })
  | Poison_queue { shard; src; count } ->
      [ Op.Inject { shard; src; count }; Op.Forward { shard; slots = count } ]
