(** The typed fault model of the chaos harness.

    Each fault names one way a deployed link-reversal service can be
    damaged; {!compile} lowers it to the ordinary service op stream so
    faults flow through the same shard dispatch, metrics and
    determinism fingerprints as regular traffic:

    - [Corrupt_heights]: overwrite a whole shard's height arrays with
      the canonical hostile assignment
      ({!Lr_service.Shard.hostile_height}) — memory corruption of the
      routing state, the self-stabilization paper's "arbitrary initial
      state".
    - [Flip_route_bit]: flip one bit of one node's [pa] height — a
      mid-flight single-event upset.
    - [Partition] / [Heal_partition]: tear down (resp. restore) the
      edge cut around a seeded BFS ball — a component partition and
      its heal.  Both sides re-derive the same cut from the same seed.
    - [Crash_burst]: a burst of destination crashes and failovers.
    - [Poison_queue]: flood one source queue far past its capacity,
      then drain — exercises packet backpressure and drop honesty.

    Everything here is deterministic: the compiled op list is a pure
    function of the fault and the per-shard base topologies. *)

open Lr_graph
open Lr_service

type t =
  | Corrupt_heights of { shard : int; seed : int; magnitude : int }
  | Flip_route_bit of { shard : int; node : int; bit : int }
  | Partition of { shard : int; seed : int }
  | Heal_partition of { shard : int; seed : int }
  | Crash_burst of { shard : int; count : int }
  | Poison_queue of { shard : int; src : int; count : int }

val shard_of : t -> int
val describe : t -> string

val cut : Digraph.t -> seed:int -> (Node.t * Node.t) list
(** The deterministic boundary-edge list of a seeded BFS ball of
    roughly a quarter of the component — the edges a [Partition] fault
    tears down and its [Heal_partition] restores.  Ascending id order
    on both endpoints; empty for graphs with fewer than two nodes. *)

val compile : graphs:Digraph.t array -> t -> Op.t list
(** Lower the fault to service ops against the given per-shard base
    topologies ([graphs.(i)] = shard [i]'s initial graph).
    @raise Invalid_argument when the fault's shard is out of range. *)
