(** The self-stabilization harness: corrupt, recover, measure, audit.

    The property under test is the link-reversal self-stabilization
    theorem: because orientations are {e derived} from heights and any
    height assignment is a total order, every corrupted state is still
    acyclic, and the ordinary maintenance engines converge back to a
    destination-oriented graph from {e arbitrary} adopted heights —
    within {!Lr_routing.Maintenance.adoption_budget}, the
    spread-aware generalization of the O(n^2) worst-case work bound of
    the partial-reversal analysis (Busch et al. / Bernard et al.):
    [4 n (n + spread) + 1000], reducing to the classic bound when the
    corrupted heights range over O(n) values.

    {!differential} runs one corruption against {e both} engine tiers
    from the same stabilized start and demands byte-identical
    recoveries: same step count, same recovered fingerprint.  The fast
    engine's recovery can be recorded as an LRT1 [Maint] trace — the
    corruption itself appears as [Perturb] events (the orientation
    diff the adopted heights induce), each recovery step as a [Step] —
    so {!Lr_trace.Replay} re-derives the exact recovery and
    {!Lr_trace.Audit} checks acyclicity of every intermediate state.

    All measurements are returned, never printed; the [linkrev chaos]
    command and the D-C1 bench render them. *)

open Lr_routing

type recovery = {
  n : int;  (** Nodes in the instance. *)
  steps : int;  (** Reversal steps from adoption to re-stabilization. *)
  rounds : int;
      (** Stabilization rounds = max steps taken by any single node. *)
  perturbed_edges : int;
      (** Edges the corruption itself flipped (the fault's blast
          radius, before any recovery work). *)
  wall_ns : int;  (** Violation-to-recovery wall time. *)
  fingerprint : int64;  (** Recovered orientation. *)
  destination_oriented : bool;  (** Must be [true] — convergence. *)
  budget : int;
      (** The spread-aware adoption budget
          ({!Lr_routing.Maintenance.adoption_budget}) for this
          assignment. *)
  within_budget : bool;  (** [steps <= budget]. *)
}

type differential = {
  fast : recovery;
  ref_steps : int;
  ref_wall_ns : int;
  ref_fingerprint : int64;
  agree : bool;
      (** Fast and reference recovered to the same fingerprint in the
          same number of steps — the cross-engine oracle. *)
  trace_path : string option;
}

val hostile : seed:int -> magnitude:int -> int -> int * int
(** The canonical adversarial height assignment
    ({!Lr_service.Shard.hostile_height}): a pure function of
    [(seed, node)], identical across engines and processes. *)

val spread_of : n:int -> (int -> int * int) -> int
(** Total height range of an assignment over nodes [0..n-1]. *)

val budget_of : n:int -> spread:int -> int
(** {!Lr_routing.Maintenance.adoption_budget}. *)

val recover_fast :
  ?trace:string ->
  Maintenance.rule ->
  Linkrev.Config.t ->
  seed:int ->
  height:(int -> int * int) ->
  recovery
(** Stabilize the fast engine on [config], adopt [height] everywhere,
    and measure the recovery.  With [?trace], record it as an LRT1
    [Maint] trace: header = pre-corruption orientation, [Perturb]
    events = the corruption's orientation diff, [Step] events = the
    recovery ([seed] is stamped into the header).  If adoption raises,
    the trace is aborted (left truncated) and the exception rethrown. *)

val recover_reference :
  Maintenance.rule ->
  Linkrev.Config.t ->
  height:(int -> int * int) ->
  int * int * int64
(** Reference-engine recovery from the same corruption:
    [(steps, wall_ns, recovered fingerprint)]. *)

val differential :
  ?trace:string ->
  Maintenance.rule ->
  Linkrev.Config.t ->
  seed:int ->
  magnitude:int ->
  differential
(** Corrupt every node with [hostile ~seed ~magnitude] and recover on
    both engines. *)

val differential_flip :
  ?trace:string ->
  Maintenance.rule ->
  Linkrev.Config.t ->
  node:int ->
  bit:int ->
  differential
(** Single-event upset: flip [bit] of [node]'s stabilized [pa] height
    and recover on both engines.  @raise Invalid_argument when [node]
    or [bit] (0..61) is out of range. *)

type scenario = {
  name : string;
  config : Linkrev.Config.t;
  seed : int;
  magnitude : int;
}

val scenarios : ?n:int -> ?seed:int -> unit -> scenario list
(** The D-C1 battery: chain, ring, grid, tree, sparse and dense random
    DAGs of ~[n] nodes, with corruption magnitudes sweeping from
    degenerate ties (everything in [+-1], maximal id tie-breaking) to
    widely spread heights.  Recovery work grows linearly with the
    spread, so magnitudes are capped at 4096 to keep the battery
    CI-cheap. *)
