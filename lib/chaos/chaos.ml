open Lr_graph
open Lr_routing
module Event = Lr_trace.Event
module Writer = Lr_trace.Writer
module Record = Lr_trace.Record

type recovery = {
  n : int;
  steps : int;
  rounds : int;
  perturbed_edges : int;
  wall_ns : int;
  fingerprint : int64;
  destination_oriented : bool;
  budget : int;
  within_budget : bool;
}

type differential = {
  fast : recovery;
  ref_steps : int;
  ref_wall_ns : int;
  ref_fingerprint : int64;
  agree : bool;
  trace_path : string option;
}

let hostile = Lr_service.Shard.hostile_height

(* Height spread of an assignment over nodes 0..n-1 — the knob the
   adoption budget scales with (see Maintenance.adoption_budget). *)
let spread_of ~n height =
  if n = 0 then 0
  else begin
    let a0, b0 = height 0 in
    let amin = ref a0 and amax = ref a0 and bmin = ref b0 and bmax = ref b0 in
    for u = 1 to n - 1 do
      let a, b = height u in
      if a < !amin then amin := a;
      if a > !amax then amax := a;
      if b < !bmin then bmin := b;
      if b > !bmax then bmax := b
    done;
    !amax - !amin + (!bmax - !bmin)
  end

let budget_of ~n ~spread = Maintenance.adoption_budget ~n ~spread

(* Orientation an arbitrary height assignment derives: u -> w iff u's
   (pa, pb, id) triple is lexicographically greater.  Total order, so
   always acyclic — the theorem that makes adoption safe. *)
let out_of_heights (height : int -> int * int) u w =
  let ua, ub = height u and wa, wb = height w in
  if ua <> wa then ua > wa else if ub <> wb then ub > wb else u > w

let wall_ns_since t0 = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)

let recover_fast ?trace rule config ~seed ~height =
  let fm = Fast_maintenance.create rule config in
  let n = Fast_maintenance.num_nodes fm in
  let rows = Record.rows_of_config config in
  let writer =
    Option.map
      (fun path ->
        let g0 = Fast_maintenance.graph fm in
        Writer.create path
          {
            Event.engine = Event.Maint;
            seed;
            n;
            destination = Fast_maintenance.destination fm;
            edges = Digraph.directed_edges g0;
            fingerprint = Digraph.fingerprint g0;
          })
      trace
  in
  (* The perturbation itself: diff the pre-corruption orientation
     against the one the adopted heights derive.  Each flipped edge is
     recorded once, at the endpoint gaining the out-edge (where it was
     incoming) — exactly what [Replay] re-applies. *)
  let perturbed = ref 0 in
  let scratch = Array.make (Stdlib.max n 1) 0 in
  for u = 0 to n - 1 do
    let row = rows.(u) in
    let len = ref 0 in
    Array.iteri
      (fun i x ->
        if (not (Fast_maintenance.edge_out fm u x)) && out_of_heights height u x
        then begin
          scratch.(!len) <- i;
          incr len
        end)
      row;
    if !len > 0 then begin
      perturbed := !perturbed + !len;
      match writer with
      | Some w -> Writer.perturb w ~node:u ~slots:scratch ~len:!len
      | None -> ()
    end
  done;
  let steps_per_node = Array.make n 0 in
  let step_flips = ref 0 in
  let slot_buf = Array.make (Stdlib.max n 1) 0 in
  Fast_maintenance.set_observer fm
    (Some
       (fun u flipped len ->
         steps_per_node.(u) <- steps_per_node.(u) + 1;
         step_flips := !step_flips + len;
         match writer with
         | None -> ()
         | Some w ->
             for i = 0 to len - 1 do
               slot_buf.(i) <- Record.slot_of rows.(u) flipped.(i)
             done;
             let slots = Array.sub slot_buf 0 len in
             Array.sort compare slots;
             Writer.step w ~node:u ~slots ~len));
  let t0 = Unix.gettimeofday () in
  let result =
    match Fast_maintenance.adopt_heights fm height with
    | r -> r
    | exception e ->
        Option.iter Writer.abort writer;
        raise e
  in
  let wall_ns = wall_ns_since t0 in
  Fast_maintenance.set_observer fm None;
  let steps =
    match result with
    | Maintenance.Stabilized { node_steps; _ } -> node_steps
    | Maintenance.Partitioned _ ->
        (* Adoption never touches the topology. *)
        assert false
  in
  let fingerprint = Digraph.fingerprint (Fast_maintenance.graph fm) in
  Option.iter
    (fun w ->
      ignore
        (Writer.close w
           {
             Event.work = steps;
             edge_reversals = !perturbed + !step_flips;
             wall_ns;
             final_fingerprint = fingerprint;
           }))
    writer;
  let budget = budget_of ~n ~spread:(spread_of ~n height) in
  {
    n;
    steps;
    rounds = Array.fold_left Stdlib.max 0 steps_per_node;
    perturbed_edges = !perturbed;
    wall_ns;
    fingerprint;
    destination_oriented = Fast_maintenance.is_destination_oriented fm;
    budget;
    within_budget = steps <= budget;
  }

let recover_reference rule config ~height =
  let m = Maintenance.create rule config in
  let t0 = Unix.gettimeofday () in
  match Maintenance.adopt_heights m height with
  | Maintenance.Partitioned _ -> assert false
  | Maintenance.Stabilized { node_steps; _ } ->
      ( node_steps,
        wall_ns_since t0,
        Digraph.fingerprint (Maintenance.graph m) )

let differential_of ?trace rule config ~seed ~height =
  let fast = recover_fast ?trace rule config ~seed ~height in
  let ref_steps, ref_wall_ns, ref_fingerprint =
    recover_reference rule config ~height
  in
  {
    fast;
    ref_steps;
    ref_wall_ns;
    ref_fingerprint;
    agree =
      Int64.equal fast.fingerprint ref_fingerprint && fast.steps = ref_steps;
    trace_path = trace;
  }

let differential ?trace rule config ~seed ~magnitude =
  differential_of ?trace rule config ~seed ~height:(hostile ~seed ~magnitude)

let differential_flip ?trace rule config ~node ~bit =
  if bit < 0 || bit > 61 then invalid_arg "Chaos.differential_flip: bad bit";
  let base =
    let fm = Fast_maintenance.create rule config in
    Array.init (Fast_maintenance.num_nodes fm) (Fast_maintenance.height fm)
  in
  if node < 0 || node >= Array.length base then
    invalid_arg "Chaos.differential_flip: node out of range";
  let height u =
    if u = node then
      let a, b = base.(u) in
      (a lxor (1 lsl bit), b)
    else base.(u)
  in
  differential_of ?trace rule config ~seed:(-1) ~height

type scenario = {
  name : string;
  config : Linkrev.Config.t;
  seed : int;
  magnitude : int;
}

(* The D-C1 scenario battery: one instance per structural family, with
   corruption magnitudes sweeping from degenerate (everything ties at
   +-1, maximal pid tie-breaking) to widely spread.  Magnitudes stay
   <= 4096 because recovery work grows linearly with the height spread
   (measured: ~1.2M steps at magnitude 65536 on a 48-chain), and the
   battery must stay cheap enough for CI. *)
let scenarios ?(n = 48) ?(seed = 1) () =
  let rng salt = Random.State.make [| 0x6368616f; seed; salt |] in
  let side = Stdlib.max 2 (int_of_float (sqrt (float_of_int n))) in
  let depth =
    let rec go d cap = if cap >= n then d else go (d + 1) (2 * cap + 1) in
    go 1 1
  in
  [
    {
      name = "chain";
      config = Linkrev.Config.of_instance (Generators.bad_chain n);
      seed;
      magnitude = 1;
    };
    {
      name = "ring";
      config = Linkrev.Config.of_instance (Generators.ring n);
      seed = seed + 1;
      magnitude = 4;
    };
    {
      name = "grid";
      config =
        Linkrev.Config.of_instance (Generators.grid ~rows:side ~cols:side);
      seed = seed + 2;
      magnitude = 16;
    };
    {
      name = "tree";
      config = Linkrev.Config.of_instance (Generators.binary_tree ~depth);
      seed = seed + 3;
      magnitude = 2;
    };
    {
      name = "sparse";
      config =
        Linkrev.Config.of_instance
          (Generators.random_connected_dag (rng 2) ~n
             ~extra_edges:(Stdlib.max 1 (n / 8)));
      seed = seed + 4;
      magnitude = 1000;
    };
    {
      name = "dense";
      config =
        Linkrev.Config.of_instance
          (Generators.random_connected_dag (rng 3) ~n ~extra_edges:(2 * n));
      seed = seed + 5;
      magnitude = 4096;
    };
  ]
