let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

let trial_rng trial = Random.State.make [| 0x70a1; trial |]

(* Chunked work-stealing over [0, n): workers race on an atomic cursor
   and claim [chunk] indices at a time.  Each result lands in its own
   slot of a shared array, so the output is identical whatever the
   interleaving — determinism comes from indexing, not scheduling. *)
let map_range ?chunk ~jobs n f =
  if n < 0 then invalid_arg "Pool.map_range: negative range";
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then Array.init n f
  else begin
    let chunk =
      match chunk with
      | Some c when c > 0 -> c
      | Some _ -> invalid_arg "Pool.map_range: chunk must be positive"
      | None -> max 1 (n / (jobs * 8))
    in
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let continue_ = ref true in
      while !continue_ do
        let lo = Atomic.fetch_and_add cursor chunk in
        if lo >= n || Atomic.get failure <> None then continue_ := false
        else
          let hi = min n (lo + chunk) in
          try
            for i = lo to hi - 1 do
              results.(i) <- Some (f i)
            done
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failure None (Some (e, bt)));
            continue_ := false
      done
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map
      (function
        | Some v -> v
        | None ->
            (* unreachable: every index below the cursor was written *)
            assert false)
      results
  end

exception Trial_error of { trial : int; exn : exn }

let () =
  Printexc.register_printer (function
    | Trial_error { trial; exn } ->
        Some
          (Printf.sprintf "Pool.run_trials: trial %d raised %s" trial
             (Printexc.to_string exn))
    | _ -> None)

let run_trials ?chunk ~jobs ~trials f =
  Array.to_list
    (map_range ?chunk ~jobs trials (fun trial ->
         try f ~trial ~rng:(trial_rng trial)
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           Printexc.raise_with_backtrace (Trial_error { trial; exn = e }) bt))

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)
