let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

let trial_rng trial = Random.State.make [| 0x70a1; trial |]

(* Chunked work-stealing over [0, n): workers race on an atomic cursor
   and claim [chunk] indices at a time.  Each result lands in its own
   slot of a shared array, so the output is identical whatever the
   interleaving — determinism comes from indexing, not scheduling. *)
let map_range ?chunk ~jobs n f =
  if n < 0 then invalid_arg "Pool.map_range: negative range";
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then Array.init n f
  else begin
    let chunk =
      match chunk with
      | Some c when c > 0 -> c
      | Some _ -> invalid_arg "Pool.map_range: chunk must be positive"
      | None -> max 1 (n / (jobs * 8))
    in
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let failure = Atomic.make None in
    (* lr:owner worker: [results] slots are claimed disjointly through
       the atomic cursor, so each index has exactly one writer. *)
    let worker () =
      let continue_ = ref true in
      while !continue_ do
        let lo = Atomic.fetch_and_add cursor chunk in
        if lo >= n || Option.is_some (Atomic.get failure) then
          continue_ := false
        else
          let hi = min n (lo + chunk) in
          try
            for i = lo to hi - 1 do
              results.(i) <- Some (f i)
            done
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failure None (Some (e, bt)));
            continue_ := false
      done
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map
      (function
        | Some v -> v
        | None ->
            (* unreachable: every index below the cursor was written *)
            assert false)
      results
  end

exception Trial_error of { trial : int; exn : exn }

let () =
  Printexc.register_printer (function
    | Trial_error { trial; exn } ->
        Some
          (Printf.sprintf "Pool.run_trials: trial %d raised %s" trial
             (Printexc.to_string exn))
    | _ -> None)

let run_trials ?chunk ~jobs ~trials f =
  Array.to_list
    (map_range ?chunk ~jobs trials (fun trial ->
         try f ~trial ~rng:(trial_rng trial)
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           Printexc.raise_with_backtrace (Trial_error { trial; exn = e }) bt))

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

module Persistent = struct
  (* Generation-stamped dispatch: [run] installs a task and bumps
     [generation] under the lock; workers sleeping on [start] wake,
     steal chunks off the shared cursor, then report through
     [finished].  [run] waits until all [jobs - 1] workers have
     reported, so at every [run] entry the whole pool is provably
     parked on [start] — no worker can miss a wake-up. *)
  type t = {
    pjobs : int;
    mutable task : int -> unit;
    mutable total : int;
    mutable chunk : int;
    mutable pinned : bool;
        (* this round's assignment: worker [i] runs [task i] directly
           (resident loops) instead of stealing off the cursor *)
    mutable busy : bool;  (* a [launch]ed round has not been [await]ed *)
    cursor : int Atomic.t;
    failure : (exn * Printexc.raw_backtrace) option Atomic.t;
    mutable generation : int;
    mutable finished : int;
    mutable stopped : bool;
    lock : Mutex.t;
    start : Condition.t;
    idle : Condition.t;
    mutable domains : unit Domain.t list;
  }

  let jobs t = t.pjobs

  (* One round of chunked work-stealing; first exception wins and
     stops every participant at its next claim. *)
  let steal ~task ~total ~chunk ~cursor ~failure =
    let continue_ = ref true in
    while !continue_ do
      let lo = Atomic.fetch_and_add cursor chunk in
      if lo >= total || Option.is_some (Atomic.get failure) then
        continue_ := false
      else
        let hi = min total (lo + chunk) in
        try
          for i = lo to hi - 1 do
            task i
          done
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set failure None (Some (e, bt)));
          continue_ := false
    done

  (* lr:owner parked worker: the lock/wait pair is the parking
     handshake by design, and [t.finished] is only ever written with
     [t.lock] held. *)
  let worker t idx =
    let seen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock t.lock;
      while (not t.stopped) && t.generation = !seen do
        Condition.wait t.start t.lock
      done;
      if t.stopped then begin
        Mutex.unlock t.lock;
        running := false
      end
      else begin
        seen := t.generation;
        let task = t.task and total = t.total and chunk = t.chunk in
        let pinned = t.pinned in
        Mutex.unlock t.lock;
        (if pinned then begin
           if idx < total then
             try task idx
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               ignore (Atomic.compare_and_set t.failure None (Some (e, bt)))
         end
         else steal ~task ~total ~chunk ~cursor:t.cursor ~failure:t.failure);
        Mutex.lock t.lock;
        t.finished <- t.finished + 1;
        Condition.broadcast t.idle;
        Mutex.unlock t.lock
      end
    done

  let create ~jobs =
    if jobs < 1 then invalid_arg "Pool.Persistent.create: jobs must be >= 1";
    let t =
      {
        pjobs = jobs;
        task = ignore;
        total = 0;
        chunk = 1;
        pinned = false;
        busy = false;
        cursor = Atomic.make 0;
        failure = Atomic.make None;
        generation = 0;
        finished = 0;
        stopped = false;
        lock = Mutex.create ();
        start = Condition.create ();
        idle = Condition.create ();
        domains = [];
      }
    in
    t.domains <- List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker t i));
    t

  let run ?(chunk = 1) t n f =
    if n < 0 then invalid_arg "Pool.Persistent.run: negative range";
    if chunk < 1 then invalid_arg "Pool.Persistent.run: chunk must be positive";
    if t.stopped then invalid_arg "Pool.Persistent.run: pool is shut down";
    if t.busy then invalid_arg "Pool.Persistent.run: a launched round is live";
    if n = 0 then ()
    else if t.pjobs = 1 || n = 1 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      Mutex.lock t.lock;
      t.task <- f;
      t.total <- n;
      t.chunk <- chunk;
      t.pinned <- false;
      (* lr:owner steal cursor: workers race on this atomic through the
         [~cursor] parameter of [steal], which the call-graph analysis
         cannot alias back to the field. *)
      Atomic.set t.cursor 0;
      Atomic.set t.failure None;
      t.finished <- 0;
      t.generation <- t.generation + 1;
      Condition.broadcast t.start;
      Mutex.unlock t.lock;
      steal ~task:f ~total:n ~chunk ~cursor:t.cursor ~failure:t.failure;
      Mutex.lock t.lock;
      while t.finished < t.pjobs - 1 do
        Condition.wait t.idle t.lock
      done;
      t.task <- ignore;
      Mutex.unlock t.lock;
      match Atomic.get t.failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

  (* Resident rounds: [launch] wakes the workers and returns at once —
     worker [i] runs [f i] to completion (a service shard loop runs
     until its shutdown sentinel) while the caller keeps its own role
     (dispatching into the loops' queues).  [await] joins the round. *)

  let launch t n f =
    if t.stopped then invalid_arg "Pool.Persistent.launch: pool is shut down";
    if t.busy then invalid_arg "Pool.Persistent.launch: a round is already live";
    if n < 1 then invalid_arg "Pool.Persistent.launch: need at least one loop";
    if n > t.pjobs - 1 then
      invalid_arg
        (Printf.sprintf
           "Pool.Persistent.launch: %d loops but only %d resident domains" n
           (t.pjobs - 1));
    Mutex.lock t.lock;
    t.task <- f;
    t.total <- n;
    t.chunk <- 1;
    t.pinned <- true;
    t.busy <- true;
    Atomic.set t.failure None;
    t.finished <- 0;
    t.generation <- t.generation + 1;
    Condition.broadcast t.start;
    Mutex.unlock t.lock

  let failed t = Option.is_some (Atomic.get t.failure)

  let await t =
    if t.busy then begin
      Mutex.lock t.lock;
      while t.finished < t.pjobs - 1 do
        Condition.wait t.idle t.lock
      done;
      t.task <- ignore;
      t.busy <- false;
      Mutex.unlock t.lock;
      match Atomic.get t.failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

  let shutdown t =
    if not t.stopped then begin
      Mutex.lock t.lock;
      t.stopped <- true;
      Condition.broadcast t.start;
      Mutex.unlock t.lock;
      List.iter Domain.join t.domains;
      t.domains <- []
    end
end
