(** Domain-parallel trial running (OCaml 5 multicore).

    The experiment suite is embarrassingly parallel: hundreds of
    independent trials, each deriving everything it needs — instance,
    scheduler, RNG — from its own index.  This pool spreads such index
    ranges over a fixed set of {!Domain}s with chunked work-stealing,
    and guarantees {e scheduling-independent results}: outputs are
    written to per-index slots and per-trial RNGs are seeded from the
    trial index alone, so [jobs = 1] and [jobs = 64] produce identical
    values in identical order.

    Trial functions must be self-contained: build state from the index
    (or the provided RNG), share nothing mutable, and in particular
    never touch the global [Random] state. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count], floored at 1. *)

val map_range : ?chunk:int -> jobs:int -> int -> (int -> 'a) -> 'a array
(** [map_range ~jobs n f] is [[| f 0; ...; f (n-1) |]], computed by
    [jobs] domains (the caller participates; [jobs - 1] are spawned).
    [chunk] is the number of consecutive indices a worker claims at a
    time (default [n / (jobs * 8)], floored at 1); larger chunks
    amortize cursor contention, smaller chunks balance ragged trial
    times.  If any [f i] raises, the first exception observed is
    re-raised in the caller after all workers stop.
    @raise Invalid_argument on a negative [n] or non-positive chunk. *)

exception Trial_error of { trial : int; exn : exn }
(** Raised by {!run_trials} when a trial function raises: wraps the
    original exception with the index of the trial that died, so a
    failure deep in a pooled sweep is attributable.  A printer is
    registered, so uncaught it reads
    ["Pool.run_trials: trial 57 raised ..."]. *)

val run_trials :
  ?chunk:int ->
  jobs:int ->
  trials:int ->
  (trial:int -> rng:Random.State.t -> 'a) ->
  'a list
(** [run_trials ~jobs ~trials f] maps [f] over trial indices
    [0 .. trials-1], handing each trial a private RNG deterministically
    seeded from its index ({!trial_rng}); results in trial order.  If a
    trial raises, the first failure observed is re-raised in the caller
    as {!Trial_error} carrying the failing trial index. *)

val trial_rng : int -> Random.State.t
(** The per-trial RNG [run_trials] provides: seeded from the trial
    index only, hence reproducible across runs, job counts and
    scheduling orders. *)

val timed : (unit -> 'a) -> 'a * float
(** Result plus wall-clock seconds ([Unix.gettimeofday], not
    [Sys.time]: CPU time aggregates across domains and would hide any
    parallel speedup). *)

(** A resident domain pool for long-lived services.

    {!map_range} spawns and joins its domains on every call, which is
    fine for one-shot experiment sweeps but wrong for a service that
    dispatches thousands of small rounds: domain spawn costs would
    dwarf the work.  A persistent pool spawns its [jobs - 1] worker
    domains once; each {!Persistent.run} wakes them for one round of
    chunked work-stealing over an index range and waits for quiescence.
    Like {!map_range}, results must be written to per-index slots by the
    task itself, which keeps outcomes independent of scheduling. *)
module Persistent : sig
  type t

  val create : jobs:int -> t
  (** Spawns [jobs - 1] worker domains (none when [jobs = 1]; the
      caller always participates in rounds).
      @raise Invalid_argument when [jobs < 1]. *)

  val jobs : t -> int

  val run : ?chunk:int -> t -> int -> (int -> unit) -> unit
  (** [run t n f] executes [f 0 .. f (n-1)], spread over the pool's
      domains with chunked work-stealing ([chunk] consecutive indices
      claimed at a time, default 1 — service rounds are coarse-grained).
      Returns when every index has been executed.  If any [f i] raises,
      the remaining indices are abandoned and the first exception
      observed is re-raised in the caller after all workers go idle.
      Not reentrant: one round at a time per pool.
      @raise Invalid_argument on a negative [n], a non-positive
      [chunk], or a pool that was {!shutdown}. *)

  val launch : t -> int -> (int -> unit) -> unit
  (** [launch t n f] starts a {e resident} round and returns
      immediately: worker domain [i] (for [i < n]) runs [f i] once, to
      completion, while the caller keeps executing — the barrier-free
      service uses this to keep [n] run-to-completion shard loops
      draining their op rings while the caller dispatches into them.
      Unlike {!run} the caller does not participate and there is no
      work-stealing cursor: loop [i] is pinned to worker [i].  The
      round ends only when every [f i] returns (loops must watch their
      own shutdown sentinel); end it with {!await}.
      @raise Invalid_argument when the pool is shut down, a launched
      round is already live, [n < 1], or [n > jobs - 1] (the caller is
      not a worker here, so a 1-domain pool cannot launch). *)

  val failed : t -> bool
  (** Whether any loop of the live launched round has raised — a
      dispatcher polls this so it can stop feeding queues nobody will
      ever drain.  The exception itself is re-raised by {!await}. *)

  val await : t -> unit
  (** Join the launched round: blocks until every loop has returned,
      then re-raises the first loop failure, if any.  No-op when no
      round is live. *)

  val shutdown : t -> unit
  (** Joins the worker domains.  Idempotent; the pool is unusable
      afterwards.  A launched round must be {!await}ed first. *)
end
