(** Domain-parallel trial running (OCaml 5 multicore).

    The experiment suite is embarrassingly parallel: hundreds of
    independent trials, each deriving everything it needs — instance,
    scheduler, RNG — from its own index.  This pool spreads such index
    ranges over a fixed set of {!Domain}s with chunked work-stealing,
    and guarantees {e scheduling-independent results}: outputs are
    written to per-index slots and per-trial RNGs are seeded from the
    trial index alone, so [jobs = 1] and [jobs = 64] produce identical
    values in identical order.

    Trial functions must be self-contained: build state from the index
    (or the provided RNG), share nothing mutable, and in particular
    never touch the global [Random] state. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count], floored at 1. *)

val map_range : ?chunk:int -> jobs:int -> int -> (int -> 'a) -> 'a array
(** [map_range ~jobs n f] is [[| f 0; ...; f (n-1) |]], computed by
    [jobs] domains (the caller participates; [jobs - 1] are spawned).
    [chunk] is the number of consecutive indices a worker claims at a
    time (default [n / (jobs * 8)], floored at 1); larger chunks
    amortize cursor contention, smaller chunks balance ragged trial
    times.  If any [f i] raises, the first exception observed is
    re-raised in the caller after all workers stop.
    @raise Invalid_argument on a negative [n] or non-positive chunk. *)

exception Trial_error of { trial : int; exn : exn }
(** Raised by {!run_trials} when a trial function raises: wraps the
    original exception with the index of the trial that died, so a
    failure deep in a pooled sweep is attributable.  A printer is
    registered, so uncaught it reads
    ["Pool.run_trials: trial 57 raised ..."]. *)

val run_trials :
  ?chunk:int ->
  jobs:int ->
  trials:int ->
  (trial:int -> rng:Random.State.t -> 'a) ->
  'a list
(** [run_trials ~jobs ~trials f] maps [f] over trial indices
    [0 .. trials-1], handing each trial a private RNG deterministically
    seeded from its index ({!trial_rng}); results in trial order.  If a
    trial raises, the first failure observed is re-raised in the caller
    as {!Trial_error} carrying the failing trial index. *)

val trial_rng : int -> Random.State.t
(** The per-trial RNG [run_trials] provides: seeded from the trial
    index only, hence reproducible across runs, job counts and
    scheduling orders. *)

val timed : (unit -> 'a) -> 'a * float
(** Result plus wall-clock seconds ([Unix.gettimeofday], not
    [Sys.time]: CPU time aggregates across domains and would hide any
    parallel speedup). *)
