(** A bounded, lock-free single-producer / single-consumer ring.

    The op-queue primitive of the barrier-free service: the dispatcher
    (single producer) pushes op indices into one ring per shard, and
    whichever loop currently holds the shard's ownership token (single
    consumer {e at a time}) pops them.  Head and tail are monotonically
    increasing atomics masked into a power-of-two buffer; the producer
    publishes a slot by advancing [tail], the consumer frees it by
    advancing [head], and the OCaml memory model's acquire/release
    guarantees for atomics make every slot read see a fully-written
    value.  No locks, no blocking: a full ring refuses the push — that
    refusal {e is} the service's backpressure signal.

    The single-consumer requirement is per {e moment}, not per domain:
    consumption may migrate between domains provided each handoff
    happens through an acquire/release edge (the service's ownership
    tokens are [Atomic] CASes, which qualify).  Concurrent pops from
    two domains without such an edge are a protocol violation. *)

type 'a t

val create : capacity:int -> 'a -> 'a t
(** [create ~capacity dummy] is an empty ring of at least [capacity]
    slots (rounded up to the next power of two).  [dummy] fills unused
    slots so popped values are never retained.
    @raise Invalid_argument when [capacity < 1] or exceeds [2^24]. *)

val capacity : 'a t -> int
(** Actual slot count (the rounded-up power of two). *)

val length : 'a t -> int
(** Occupancy snapshot.  Racy by nature: concurrent pushes may be
    missed; exact when the caller is the only active side. *)

val is_empty : 'a t -> bool
(** [length t = 0], slightly cheaper.  Same raciness caveat. *)

val try_push : 'a t -> 'a -> bool
(** Producer only.  [false] means the ring is full right now — the
    caller decides whether that is a rejection or a retry. *)

val try_pop : 'a t -> 'a option
(** Consumer (current token holder) only.  [None] means empty right
    now. *)
