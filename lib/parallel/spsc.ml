(* A bounded single-producer / single-consumer ring.

   Correctness rests on the OCaml memory model's guarantees for
   atomics: [Atomic.set] publishes (with release semantics, as part of
   its SC ordering) every plain write program-ordered before it, and
   [Atomic.get] acquires.  The producer writes the slot *then*
   advances [tail]; the consumer reads [tail] *then* the slot — so the
   slot content is always an acquired, fully-initialized value.
   Symmetrically the consumer clears the slot before advancing [head],
   and the producer re-reads [head] before overwriting, so a slot is
   never touched by both domains at once.  Head and tail are
   monotonically increasing ints masked into the power-of-two buffer
   (at one op per nanosecond an overflow is ~292 years away).

   Each side also keeps a plain-field cache of the other side's index
   ([producer_head] / [cached_tail], each written by exactly one
   domain) so the common case touches the shared atomic of the
   opposite side only when the cache says the ring looks full/empty.
   The [pad_*] arrays are live spacer blocks allocated between the two
   atomics so they usually land on different cache lines (OCaml 5.1
   has no [Atomic.make_contended]); this is best-effort — the GC may
   relocate — and affects only throughput, never correctness. *)

type 'a t = {
  buf : 'a array;
  mask : int;
  dummy : 'a;
  head : int Atomic.t;  (* next slot to pop; advanced by the consumer *)
  pad_head : int array;
  tail : int Atomic.t;  (* next slot to fill; advanced by the producer *)
  pad_tail : int array;
  mutable cached_tail : int;  (* consumer's snapshot of [tail] *)
  mutable producer_head : int;  (* producer's snapshot of [head] *)
}

let max_capacity = 1 lsl 24

let rec next_pow2 n acc = if acc >= n then acc else next_pow2 n (acc * 2)

let create ~capacity dummy =
  if capacity < 1 then invalid_arg "Spsc.create: capacity must be >= 1";
  if capacity > max_capacity then
    invalid_arg "Spsc.create: capacity too large";
  let cap = next_pow2 capacity 1 in
  {
    buf = Array.make cap dummy;
    mask = cap - 1;
    dummy;
    head = Atomic.make 0;
    pad_head = Array.make 15 0;
    tail = Atomic.make 0;
    pad_tail = Array.make 15 0;
    cached_tail = 0;
    producer_head = 0;
  }

(* Keep the spacer blocks reachable so the optimizer can never drop
   them; they carry no data. *)
let _touch_padding t = t.pad_head.(0) + t.pad_tail.(0)

let capacity t = t.mask + 1

let length t =
  (* A racy but safe snapshot: reading [head] first means the
     difference can only under-count concurrent pushes; it is exact
     whenever the caller is the only active side. *)
  let h = Atomic.get t.head in
  let tl = Atomic.get t.tail in
  max 0 (tl - h)

let is_empty t = Atomic.get t.tail = Atomic.get t.head

(* Producer side. *)
(* lr:owner producer: single-producer contract — [producer_head] is the
   producer's private cache and slot writes happen-before the [tail]
   release publication. *)
let try_push t x =
  let tl = Atomic.get t.tail in
  if tl - t.producer_head > t.mask then
    t.producer_head <- Atomic.get t.head;
  if tl - t.producer_head > t.mask then false
  else begin
    t.buf.(tl land t.mask) <- x;
    Atomic.set t.tail (tl + 1);
    true
  end

(* Consumer side. *)
(* lr:owner consumer: single-consumer contract — [cached_tail] is the
   consumer's private cache and the slot is read before the [head]
   release publication frees it. *)
let try_pop t =
  let h = Atomic.get t.head in
  if h = t.cached_tail then t.cached_tail <- Atomic.get t.tail;
  if h = t.cached_tail then None
  else begin
    let x = t.buf.(h land t.mask) in
    (* Drop the reference before publishing the slot as free, so the
       ring never retains popped values (matters for boxed ['a]). *)
    t.buf.(h land t.mask) <- t.dummy;
    Atomic.set t.head (h + 1);
    Some x
  end
