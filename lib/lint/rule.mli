(** Lint rule identifiers.

    Eight rules, individually toggleable from the CLI:

    - {b L1 poly-ops} — applications of the polymorphic comparison and
      hashing primitives at non-immediate types.  A generic structural
      walk over graph state is both a performance trap and a
      determinism hazard (it traverses arbitrarily deep structure and
      distinguishes representations the code considers equal).
    - {b L2 domain-race surface} — toplevel mutable state ([ref]s,
      [Hashtbl]s, arrays, mutable records, ...) in modules whose values
      are reachable from [Lr_parallel.Pool] worker closures, minus an
      explicit allowlist of serialized-by-design state.
    - {b L3 interface hygiene} — every [.ml] under the linted tree is
      sealed by a matching [.mli].
    - {b L4 forbidden constructs} — [Obj.magic], printing primitives
      that write to stdout (stdout belongs to the service protocol and
      the CLI), and bare [exit] inside library code.

    The {e domain-safety} rules run over the interprocedural call graph
    ({!Callgraph}) and its domain-crossing set ({!Domain_safety}):

    - {b L5 race candidates} — writes to non-atomic mutable state
      (refs, mutable record fields, array/bytes cells, mutable
      containers) in functions reachable from domain-crossing roots
      (Pool closures, [Spsc.try_push]/[try_pop] call sites,
      [Domain.spawn]), unless covered by an [(* lr:owner who: why *)]
      annotation documenting the single-owner discipline.
    - {b L6 resident-loop blocking} — blocking or unbounded primitives
      ([Mutex.lock], [Condition.wait], [Unix.sleep]/[sleepf]/[select],
      channel reads, printing to the shared std channels) reachable
      from a resident run-to-completion loop body.
    - {b L7 escaping exceptions} — raise sites whose exception can
      propagate out of a [Domain.spawn]/[Pool.Persistent.launch]
      closure with no handler inside the loop: in free-running
      dispatch that is a silently dead domain.  Re-raises inside an
      exception handler count as deliberate propagation.
    - {b L8 atomic overhead smell} — [Atomic.t] values all of whose
      access sites sit outside the domain-crossing set; the fences buy
      nothing a plain [ref] would not. *)

type t = L1 | L2 | L3 | L4 | L5 | L6 | L7 | L8

val all : t list
val id : t -> string
val of_string : string -> t option
(** Case-insensitive; [None] on an unknown id. *)

val describe : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
