(** Lint rule identifiers.

    Four rules, individually toggleable from the CLI:

    - {b L1 poly-ops} — applications of the polymorphic comparison and
      hashing primitives at non-immediate types.  A generic structural
      walk over graph state is both a performance trap and a
      determinism hazard (it traverses arbitrarily deep structure and
      distinguishes representations the code considers equal).
    - {b L2 domain-race surface} — toplevel mutable state ([ref]s,
      [Hashtbl]s, arrays, mutable records, ...) in modules whose values
      are reachable from [Lr_parallel.Pool] worker closures, minus an
      explicit allowlist of serialized-by-design state.
    - {b L3 interface hygiene} — every [.ml] under the linted tree is
      sealed by a matching [.mli].
    - {b L4 forbidden constructs} — [Obj.magic], printing primitives
      that write to stdout (stdout belongs to the service protocol and
      the CLI), and bare [exit] inside library code. *)

type t = L1 | L2 | L3 | L4

val all : t list
val id : t -> string
val of_string : string -> t option
(** Case-insensitive; [None] on an unknown id. *)

val describe : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
