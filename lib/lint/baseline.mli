(** Lint baselines: a JSON file of accepted findings.

    [linkrev lint --baseline lint_baseline.json] subtracts the recorded
    findings from the report and exits zero when nothing new appeared;
    [--write-baseline] records the current findings.  Entries are keyed
    by {!Diagnostic.t.key} (no line numbers), so unrelated edits to a
    file do not invalidate its baseline, while a {e second} copy of a
    baselined defect is still reported. *)

type t

val save : string -> Diagnostic.t list -> unit
val load : string -> (t, string) result

val apply : t -> Diagnostic.t list -> Diagnostic.t list * int
(** [apply t diags] is [(kept, suppressed)]: the findings not covered
    by the baseline, in input order, and how many were suppressed. *)

val size : t -> int
