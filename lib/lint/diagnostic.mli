(** Structured lint findings: rule, location, severity, message, and a
    line-number-free baseline key. *)

type severity = Error | Warning

val severity_id : severity -> string

type t = {
  rule : Rule.t;
  severity : severity;
  file : string;  (** source path as recorded by the compiler, repo-relative *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  message : string;
  key : string;
      (** stable identity for baselines: [rule:file:message], with a
          [#k] suffix for repeated identical findings in one file; empty
          until {!finalize} runs *)
}

val make :
  rule:Rule.t ->
  severity:severity ->
  file:string ->
  line:int ->
  col:int ->
  string ->
  t

val of_location : rule:Rule.t -> severity:severity -> Location.t -> string -> t

val compare : t -> t -> int
(** Orders by file, line, column, rule, message. *)

val finalize : t list -> t list
(** Sorts and assigns baseline keys (occurrence-indexed per
    rule/file/message). *)

val to_human : t -> string
(** [file:line:col: [rule/severity] message]. *)

val to_json : t -> Json.t
