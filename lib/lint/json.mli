(** Minimal JSON: a value type, a pretty emitter, and a strict parser.

    Used for the machine-readable lint report and the baseline file.
    Not a general-purpose JSON library: integers and floats are kept
    separate, objects preserve field order, and the parser rejects
    trailing garbage. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed with two-space indentation and a trailing newline. *)

val parse : string -> (t, string) result

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors. *)

val to_list : t -> t list option
val to_str : t -> string option
val to_int : t -> int option
