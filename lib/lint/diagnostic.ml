type severity = Error | Warning

let severity_id = function Error -> "error" | Warning -> "warning"

type t = {
  rule : Rule.t;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
  key : string;
}

let make ~rule ~severity ~file ~line ~col message =
  { rule; severity; file; line; col; message; key = "" }

let of_location ~rule ~severity (loc : Location.t) message =
  let p = loc.Location.loc_start in
  make ~rule ~severity ~file:p.Lexing.pos_fname ~line:p.Lexing.pos_lnum
    ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
    message

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = Rule.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

(* Baseline keys must survive unrelated edits, so they carry no line
   numbers: rule + file + message, with a [#k] suffix distinguishing
   repeated identical findings in one file (in line order). *)
let finalize diags =
  let sorted = List.sort compare diags in
  let seen = Hashtbl.create 64 in
  List.map
    (fun d ->
      let base = Printf.sprintf "%s:%s:%s" (Rule.id d.rule) d.file d.message in
      let n =
        match Hashtbl.find_opt seen base with None -> 0 | Some k -> k
      in
      Hashtbl.replace seen base (n + 1);
      let key = if n = 0 then base else Printf.sprintf "%s#%d" base n in
      { d with key })
    sorted

let to_human d =
  Printf.sprintf "%s:%d:%d: [%s/%s] %s" d.file d.line d.col (Rule.id d.rule)
    (severity_id d.severity) d.message

let to_json d =
  Json.Obj
    [
      ("rule", Json.Str (Rule.id d.rule));
      ("severity", Json.Str (severity_id d.severity));
      ("file", Json.Str d.file);
      ("line", Json.Int d.line);
      ("col", Json.Int d.col);
      ("message", Json.Str d.message);
      ("key", Json.Str d.key);
    ]
