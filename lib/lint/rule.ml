type t = L1 | L2 | L3 | L4 | L5 | L6 | L7 | L8

let all = [ L1; L2; L3; L4; L5; L6; L7; L8 ]

let id = function
  | L1 -> "L1"
  | L2 -> "L2"
  | L3 -> "L3"
  | L4 -> "L4"
  | L5 -> "L5"
  | L6 -> "L6"
  | L7 -> "L7"
  | L8 -> "L8"

let of_string s =
  match String.uppercase_ascii (String.trim s) with
  | "L1" -> Some L1
  | "L2" -> Some L2
  | "L3" -> Some L3
  | "L4" -> Some L4
  | "L5" -> Some L5
  | "L6" -> Some L6
  | "L7" -> Some L7
  | "L8" -> Some L8
  | _ -> None

let describe = function
  | L1 ->
      "poly-ops: applications of polymorphic =, <>, compare, <, >, <=, >=, \
       Hashtbl.hash, List.mem/assoc at non-immediate types"
  | L2 ->
      "domain-race surface: toplevel refs, Hashtbls, arrays and mutable \
       records in modules reachable from Pool worker closures"
  | L3 -> "interface hygiene: every .ml in the linted tree has a matching .mli"
  | L4 ->
      "forbidden constructs: Obj.magic, printing to stdout, and bare exit \
       inside library code"
  | L5 ->
      "race candidates: writes to non-atomic mutable state from functions in \
       the domain-crossing set without an lr:owner discipline"
  | L6 ->
      "resident-loop blocking: Mutex.lock, Condition.wait, sleeps, select \
       and shared-channel printing reachable from resident loop bodies"
  | L7 ->
      "escaping exceptions: raise sites that can escape a resident loop body \
       with no handler inside the loop (a silently dead domain)"
  | L8 ->
      "atomic overhead smell: Atomic.t values only ever accessed from \
       single-domain code, where plain mutable state would do"

let compare a b = Stdlib.compare (id a) (id b)
let equal a b = Int.equal 0 (compare a b)
