type t = L1 | L2 | L3 | L4

let all = [ L1; L2; L3; L4 ]

let id = function L1 -> "L1" | L2 -> "L2" | L3 -> "L3" | L4 -> "L4"

let of_string s =
  match String.uppercase_ascii (String.trim s) with
  | "L1" -> Some L1
  | "L2" -> Some L2
  | "L3" -> Some L3
  | "L4" -> Some L4
  | _ -> None

let describe = function
  | L1 ->
      "poly-ops: applications of polymorphic =, <>, compare, <, >, <=, >=, \
       Hashtbl.hash, List.mem/assoc at non-immediate types"
  | L2 ->
      "domain-race surface: toplevel refs, Hashtbls, arrays and mutable \
       records in modules reachable from Pool worker closures"
  | L3 -> "interface hygiene: every .ml in the linted tree has a matching .mli"
  | L4 ->
      "forbidden constructs: Obj.magic, printing to stdout, and bare exit \
       inside library code"

let compare a b = Stdlib.compare (id a) (id b)
let equal a b = Int.equal 0 (compare a b)
