(** The lint allowlist: serialized-by-design state the rules must not
    report (shard queues, worklists, ...).

    File format, one entry per line:
    {v
    # comment
    L2 Lr_service.Shard.queue      # one rule, one qualified name
    Lr_fast.*                      # trailing * is a prefix wildcard
    v}
    An entry without a rule id applies to every rule.  Qualified names
    are dot-separated module paths as the linter reports them
    ([Lib.Module.value]). *)

type t

val empty : t

val mem : t -> rule:Rule.t -> string -> bool
(** Is [name] allowlisted for [rule]?  Matching entries are marked
    used (see {!unused}). *)

val of_lines : string list -> (t, string) result
val load : string -> (t, string) result
val size : t -> int

val unused : t -> string list
(** Entries never matched by any {!mem} call since loading, rendered
    back in file syntax ([\[RULE \]pattern]).  A lint run that ends
    with unused entries is carrying dead suppressions; [--allow-strict]
    turns that into a failure. *)
