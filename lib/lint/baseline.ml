(* The file format carries rule and file per entry for the human
   reading the baseline; only the key matters for suppression. *)
type t = string list

let version = 1

let save path diags =
  let entries =
    List.map
      (fun (d : Diagnostic.t) ->
        Json.Obj
          [
            ("rule", Json.Str (Rule.id d.Diagnostic.rule));
            ("file", Json.Str d.Diagnostic.file);
            ("key", Json.Str d.Diagnostic.key);
          ])
      diags
  in
  let doc =
    Json.Obj
      [
        ("generated_by", Json.Str "linkrev lint --write-baseline");
        ("version", Json.Int version);
        ("findings", Json.Arr entries);
      ]
  in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string doc))

let entry_of_json j =
  match
    ( Option.bind (Json.member "rule" j) Json.to_str,
      Option.bind (Json.member "file" j) Json.to_str,
      Option.bind (Json.member "key" j) Json.to_str )
  with
  | Some _, Some _, Some key -> Ok key
  | _ -> Error "baseline entry needs string fields rule, file, key"

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> (
      match Json.parse text with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok doc -> (
          match Option.bind (Json.member "findings" doc) Json.to_list with
          | None -> Error (Printf.sprintf "%s: no \"findings\" array" path)
          | Some items ->
              let rec convert acc items =
                match items with
                | [] -> Ok (List.rev acc)
                | item :: rest -> (
                    match entry_of_json item with
                    | Error e -> Error (Printf.sprintf "%s: %s" path e)
                    | Ok e -> convert (e :: acc) rest)
              in
              convert [] items))

(* A finding is suppressed when its key matches a baseline entry; each
   entry suppresses at most one finding, so reintroducing a second copy
   of a baselined defect is still reported. *)
let apply t diags =
  let remaining = Hashtbl.create 64 in
  List.iter
    (fun key ->
      let n =
        match Hashtbl.find_opt remaining key with None -> 0 | Some k -> k
      in
      Hashtbl.replace remaining key (n + 1))
    t;
  let kept, suppressed =
    List.fold_left
      (fun (kept, suppressed) (d : Diagnostic.t) ->
        match Hashtbl.find_opt remaining d.Diagnostic.key with
        | Some n when n > 0 ->
            Hashtbl.replace remaining d.Diagnostic.key (n - 1);
            (kept, suppressed + 1)
        | _ -> (d :: kept, suppressed))
      ([], 0) diags
  in
  (List.rev kept, suppressed)

let size t = List.length t
