(** Domain-safety rules L5–L8 over the {!Callgraph}.

    {2 Reachability sets}

    - {e crossing}: nodes reachable from any root — Pool closures,
      SPSC push/pop call sites, [Domain.spawn].  L8 checks atomics
      against this set.  L5 uses an owner-pruned variant: an owner
      boundary (see below) declares a single-owner extent, so crossing
      reachability stops at its outgoing edges.
    - {e resident}: nodes reachable from [Resident] roots only
      (launch/spawn loop bodies).  L6 and L7 police this set; owner
      boundaries do not prune it — a single writer does not excuse
      blocking a resident loop.

    {2 Ownership annotation grammar}

    A source comment containing [lr:owner <who>[: justification]]:

    - on the line of (or immediately above) a finding: suppresses that
      finding, counted in [owner_suppressed];
    - on the line of (or immediately above) a {e function binding}:
      makes that node an owner boundary — all of its own L5/L6/L7
      findings are suppressed and L5 reachability stops there.

    Suppressions are always counted ([stats.owner_suppressed]), so the
    report records how much of the surface is argued rather than
    proven. *)

type finding = {
  rule : Rule.t;
  node : string;  (** qualified node name, the allowlist candidate *)
  loc : Location.t;
  message : string;
}

type stats = {
  nodes : int;
  edges : int;
  roots : int;
  crossing : int;  (** unpruned crossing-set size *)
  resident : int;
  boundaries : int;
  owner_suppressed : int;
}

type t

val analyse : root:string -> Callgraph.t -> t
(** Loads [lr:owner] annotations from the sources under [root] (node
    file paths are root-relative) and computes the reachability
    sets. *)

val l5_findings : t -> finding list
val l6_findings : t -> finding list
val l7_findings : t -> finding list
val l8_findings : t -> finding list
(** Each pass accumulates its suppression count into the analysis;
    read {!stats} after running the passes you want. *)

val stats : t -> stats

val to_dot : t -> string
(** The interesting subgraph only (roots, crossing/resident sets,
    boundaries): resident roots salmon, parallel roots orange, owner
    boundaries lightblue, resident members mistyrose, other crossing
    nodes lightgray; dashed edges sit under a [try]. *)
