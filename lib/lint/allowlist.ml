type entry = { rule : Rule.t option; pattern : string; mutable used : bool }
type t = entry list

let empty = []

let matches pattern name =
  if String.ends_with ~suffix:"*" pattern then
    String.starts_with
      ~prefix:(String.sub pattern 0 (String.length pattern - 1))
      name
  else String.equal pattern name

let mem t ~rule name =
  List.exists
    (fun e ->
      let hit =
        (match e.rule with None -> true | Some r -> Rule.equal r rule)
        && matches e.pattern name
      in
      if hit then e.used <- true;
      hit)
    t

let parse_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let words =
    List.filter
      (fun w -> not (String.equal w ""))
      (String.split_on_char ' ' (String.trim line))
  in
  match words with
  | [] -> Ok None
  | [ pattern ] -> Ok (Some { rule = None; pattern; used = false })
  | [ rule_word; pattern ] -> (
      match Rule.of_string rule_word with
      | Some r -> Ok (Some { rule = Some r; pattern; used = false })
      | None ->
          Error
            (Printf.sprintf "line %d: unknown rule %S (expected L1..L8)" lineno
               rule_word))
  | _ ->
      Error
        (Printf.sprintf "line %d: expected '<pattern>' or '<rule> <pattern>'"
           lineno)

let of_lines lines =
  let rec loop lineno acc lines =
    match lines with
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line lineno line with
        | Error e -> Error e
        | Ok None -> loop (lineno + 1) acc rest
        | Ok (Some e) -> loop (lineno + 1) (e :: acc) rest)
  in
  loop 1 [] lines

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> (
      match of_lines (String.split_on_char '\n' text) with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok t -> Ok t)

let size t = List.length t

let unused t =
  List.filter_map
    (fun e ->
      if e.used then None
      else
        Some
          (match e.rule with
          | Some r -> Rule.id r ^ " " ^ e.pattern
          | None -> e.pattern))
    t
