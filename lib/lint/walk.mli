(** Typed-tree fact extraction for the lint rules.

    Identifiers are classified by their {e resolved} [Path.t] (stdlib
    values always resolve through the [Stdlib] unit) and, for Pool entry
    points, by declaration site, so neither shadowing nor module aliases
    change what fires. *)

(** An application of a polymorphic structural operation ([=],
    [compare], [Hashtbl.hash], [List.mem], ...).  [exempt] is true when
    the first argument's type expands to an immediate/primitive type
    (or a tuple thereof), where the polymorphic version is safe. *)
type poly_app = {
  op : string;
  arg_type : string;
  exempt : bool;
  app_loc : Location.t;
}

type forbidden = { construct : string; forbid_loc : Location.t }

(** A toplevel [let] (possibly inside a nested module) whose type is a
    mutable container or a record with mutable fields. *)
type mutable_binding = {
  binding : string;  (** dotted path within the unit, e.g. ["Shard.queue"] *)
  kind : string;
  bind_loc : Location.t;
}

(** An application of [Pool.map_range] / [Pool.run_trials] /
    [Pool.Persistent.run].  [captured_units] are compilation-unit name
    candidates referenced anywhere in the argument subtree. *)
type pool_use = {
  entry : string;
  use_loc : Location.t;
  captured_units : string list;
}

type facts = {
  poly_apps : poly_app list;
  forbiddens : forbidden list;
  mutables : mutable_binding list;
  pool_uses : pool_use list;
}

val flatten_dunder : string -> string
(** Rewrites dune's [Lib__Module] mangling to dotted [Lib.Module]. *)

val strip_stdlib : string -> string
(** Drops a leading ["Stdlib."] prefix, if any. *)

type env_resolver = Env.t -> Env.t
(** Rebuilds a usable typing environment from a cmt summary env
    (e.g. [Envaux.env_of_only_summary]); may be the identity when
    resolution is unavailable, in which case type expansion degrades
    gracefully. *)

val of_structure : env_resolver -> Typedtree.structure -> facts
