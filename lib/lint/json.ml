type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* {1 Emission} *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | Str s -> add_escaped buf s
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          emit buf (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          add_escaped buf k;
          Buffer.add_string buf ": ";
          emit buf (indent + 2) item)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* {1 Parsing}

   A small recursive-descent parser over the whole input string; enough
   JSON for baseline files this library wrote itself (and hand edits). *)

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let fail c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some k when Char.equal k ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.text
    && String.equal (String.sub c.text c.pos n) word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let hex_digit c ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> fail c "bad hex digit"

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
        advance c;
        (match peek c with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'u' ->
            if c.pos + 4 >= String.length c.text then fail c "bad \\u escape";
            let v =
              (hex_digit c c.text.[c.pos + 1] lsl 12)
              lor (hex_digit c c.text.[c.pos + 2] lsl 8)
              lor (hex_digit c c.text.[c.pos + 3] lsl 4)
              lor hex_digit c c.text.[c.pos + 4]
            in
            c.pos <- c.pos + 4;
            (* encode the BMP code point as UTF-8 *)
            if v < 0x80 then Buffer.add_char buf (Char.chr v)
            else if v < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xc0 lor (v lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3f)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xe0 lor (v lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((v lsr 6) land 0x3f)));
              Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3f)))
            end
        | _ -> fail c "bad escape");
        advance c;
        loop ()
    | Some ch ->
        Buffer.add_char buf ch;
        advance c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec run () =
    match peek c with
    | Some ch when is_num_char ch ->
        advance c;
        run ()
    | _ -> ()
  in
  run ();
  let s = String.sub c.text start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
      advance c;
      skip_ws c;
      if Option.is_some (peek c) && Char.equal (Option.get (peek c)) '}' then begin
        advance c;
        Obj []
      end
      else
        let rec fields acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance c;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail c "expected , or }"
        in
        fields []
  | Some '[' ->
      advance c;
      skip_ws c;
      if Option.is_some (peek c) && Char.equal (Option.get (peek c)) ']' then begin
        advance c;
        Arr []
      end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              Arr (List.rev (v :: acc))
          | _ -> fail c "expected , or ]"
        in
        items []
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse text =
  let c = { text; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos < String.length text then Error "trailing content after JSON value"
      else Ok v
  | exception Parse_error msg -> Error msg

(* {1 Accessors} *)

let member name v =
  match v with
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_list v = match v with Arr items -> Some items | _ -> None
let to_str v = match v with Str s -> Some s | _ -> None
let to_int v = match v with Int i -> Some i | _ -> None
