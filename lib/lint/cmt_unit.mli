(** Loading dune-produced [.cmt] typed trees via compiler-libs. *)

type t = {
  cmt_path : string;
  modname : string;  (** wrapped unit name, e.g. ["Lr_automata__Automaton"] *)
  pretty : string;  (** dotted form, e.g. ["Lr_automata.Automaton"] *)
  source : string option;  (** repo-relative, e.g. ["lib/automata/automaton.ml"] *)
  structure : Typedtree.structure option;
      (** [Some] for implementation cmts *)
  imports : string list;  (** unit names this unit depends on *)
}

val load_file : string -> t option
(** [None] for unreadable cmts and dune-generated alias units. *)

val load_tree : string -> t list * string list
(** [load_tree build_dir] recursively loads every [.cmt] under
    [build_dir] (deduplicated, sorted by path) and also returns every
    directory containing [.cmi] files, for [Load_path]. *)

val in_dirs : string list -> t -> bool
(** Does the unit's source live under one of these repo-relative
    directories? *)
