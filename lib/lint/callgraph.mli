(** Interprocedural call graph over the typed trees of dune units.

    Nodes are value bindings — toplevel [let]s (including inside nested
    modules and functor bodies), local function bindings (as children
    of their enclosing node), and synthetic nodes for function literals
    passed directly to a domain-crossing entry point.  An edge [a → b]
    means [a]'s body references an identifier resolving to [b],
    applied or not.

    Alongside edges, each node carries the facts the domain-safety
    rules ({!Domain_safety}) consume: blocking-primitive call sites,
    raise sites, writes to non-atomic mutable state (deduplicated per
    target within a node; node-local allocations excluded), and
    [Atomic.t] access sites.

    Root nodes are where control crosses domains:
    - {!Resident} — closures handed to [Pool.Persistent.launch] or
      [Domain.spawn]: long-lived loop bodies whose blocking and
      escaping exceptions rules L6/L7 police.
    - {!Parallel} — closures handed to [Pool.map_range] /
      [run_trials] / [Persistent.run], and functions that push/pop an
      SPSC ring (the values they exchange cross domains).

    Entry points are identified by declaration site (pool.ml/spsc.ml),
    never by path text, so aliases and [open] cannot hide them. *)

type root_kind = Parallel | Resident

type site = { prim : string; site_loc : Location.t }

type raise_site = {
  raise_prim : string;
  deliberate : bool;
      (** under a try body (caught locally) or inside an exception
          handler (an explicit re-raise): not an escape candidate *)
  raise_loc : Location.t;
}

type mutation = {
  target : string;  (** display name, e.g. ["busy field"] or ["total ref"] *)
  mut_key : string;  (** dedup key: field decl site or scoped ident *)
  mut_loc : Location.t;
}

type atomic_access = {
  atom : string;
  atom_key : string;
  atom_loc : Location.t;
}

type edge = {
  callee : int;  (** node id *)
  under_try : bool;  (** reference site sits inside a [try] body *)
}

type node = {
  id : int;
  name : string;  (** qualified, e.g. ["Lr_service.Service.run_free.drain"] *)
  unit_name : string;
  file : string;  (** root-relative source path *)
  line : int;  (** binding start line *)
  mutable root : root_kind option;
  mutable edges : edge list;
  mutable blocking : site list;
  mutable raises : raise_site list;
  mutable mutations : mutation list;
  mutable atomics : atomic_access list;
}

type t = { nodes : node array }
(** [nodes.(i).id = i]. *)

val build : Cmt_unit.t list -> t
(** Two passes: register every unit's toplevel bindings (so
    cross-module references resolve regardless of scan order), then
    walk bodies.  Units without an implementation tree are skipped. *)

val size : t -> int
val edge_count : t -> int
val root_count : t -> int
