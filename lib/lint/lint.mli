(** The lint driver: loads dune-produced [.cmt] typed trees and checks
    the rules ({!Rule.t}) over the configured source dirs.

    For the intraprocedural rules (L1–L4), [dirs] (default [lib]) are
    reported on and [capture_dirs] (default [bin], [bench]) are
    additionally scanned so Pool-parallel regions launched from
    executables count as L2 roots without their own findings being
    reported.  The interprocedural domain-safety rules (L5–L8,
    {!Domain_safety}) report over [dirs] {e and} [capture_dirs]: a
    race seeded from a CLI driver is just as much a race. *)

type config = {
  root : string;  (** repo root (where [lib/] lives) *)
  build_dir : string;  (** dune context root, usually [_build/default] *)
  dirs : string list;
  capture_dirs : string list;
  rules : Rule.t list;  (** rules to run *)
  allow : Allowlist.t;
}

val default_config : root:string -> config

type safety = {
  stats : Domain_safety.stats;
  timings : (Rule.t * float) list;
      (** wall seconds per enabled safety rule, in L5..L8 order *)
  analyse_seconds : float;
      (** call-graph construction + reachability sets *)
}

type report = {
  diagnostics : Diagnostic.t list;
  units : int;
  safety : safety option;  (** present when any of L5–L8 ran *)
}

val run : config -> (report, string) result
(** [Error _] only for environmental failures (no cmts found); findings
    are data, not errors. *)

val callgraph_analysis : config -> (Domain_safety.t, string) result
(** Build the call graph over [dirs @ capture_dirs] and analyse it,
    without running any rules — backs [linkrev callgraph --dot]. *)

val count : Diagnostic.severity -> Diagnostic.t list -> int
val summary : units:int -> suppressed:int -> Diagnostic.t list -> string

val report_json :
  units:int -> suppressed:int -> safety:safety option -> Diagnostic.t list ->
  Json.t
