(** The lint driver: loads dune-produced [.cmt] typed trees and checks
    the four rules ({!Rule.t}) over the configured source dirs.

    [dirs] (default [lib]) are reported on; [capture_dirs] (default
    [bin], [bench]) are additionally scanned so Pool-parallel regions
    launched from executables count as L2 roots without their own
    findings being reported. *)

type config = {
  root : string;  (** repo root (where [lib/] lives) *)
  build_dir : string;  (** dune context root, usually [_build/default] *)
  dirs : string list;
  capture_dirs : string list;
  rules : Rule.t list;  (** rules to run *)
  allow : Allowlist.t;
}

val default_config : root:string -> config

type report = { diagnostics : Diagnostic.t list; units : int }

val run : config -> (report, string) result
(** [Error _] only for environmental failures (no cmts found); findings
    are data, not errors. *)

val count : Diagnostic.severity -> Diagnostic.t list -> int
val summary : units:int -> suppressed:int -> Diagnostic.t list -> string
val report_json : units:int -> suppressed:int -> Diagnostic.t list -> Json.t
