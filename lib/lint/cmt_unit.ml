type t = {
  cmt_path : string;
  modname : string;
  pretty : string;
  source : string option;
  structure : Typedtree.structure option;
  imports : string list;
}

let pretty_of_modname m =
  let b = Buffer.create (String.length m) in
  let n = String.length m in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && Char.equal m.[!i] '_' && Char.equal m.[!i + 1] '_' then (
      Buffer.add_char b '.';
      i := !i + 2)
    else (
      Buffer.add_char b m.[!i];
      incr i)
  done;
  Buffer.contents b

let load_file cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception _ -> None
  | cmt -> (
      match cmt.Cmt_format.cmt_sourcefile with
      (* .ml-gen units are dune's generated alias modules *)
      | Some s when Filename.check_suffix s ".ml-gen" -> None
      | source ->
          let structure =
            match cmt.Cmt_format.cmt_annots with
            | Cmt_format.Implementation s -> Some s
            | _ -> None
          in
          Some
            {
              cmt_path;
              modname = cmt.Cmt_format.cmt_modname;
              pretty = pretty_of_modname cmt.Cmt_format.cmt_modname;
              source;
              structure;
              imports = List.map fst cmt.Cmt_format.cmt_imports;
            })

let is_dir p =
  match Sys.is_directory p with d -> d | exception Sys_error _ -> false

(* Walks a dune build tree collecting .cmt files and every directory
   holding .cmi files (the latter feed [Load_path] so cmt summary envs
   can be rebuilt). *)
let load_tree build_dir =
  let cmts = ref [] in
  let cmi_dirs = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | entries ->
        let has_cmi = ref false in
        Array.iter
          (fun name ->
            let p = Filename.concat dir name in
            if is_dir p then walk p
            else if Filename.check_suffix name ".cmt" then
              cmts := p :: !cmts
            else if Filename.check_suffix name ".cmi" then has_cmi := true)
          entries;
        if !has_cmi then cmi_dirs := dir :: !cmi_dirs
  in
  walk build_dir;
  let seen = Hashtbl.create 64 in
  let units =
    List.filter_map
      (fun path ->
        match load_file path with
        | None -> None
        | Some u ->
            let k = (u.modname, u.source) in
            if Hashtbl.mem seen k then None
            else (
              Hashtbl.replace seen k ();
              Some u))
      (List.sort String.compare !cmts)
  in
  (units, List.sort String.compare !cmi_dirs)

let in_dirs dirs u =
  match u.source with
  | None -> false
  | Some s ->
      List.exists (fun d -> String.starts_with ~prefix:(d ^ "/") s) dirs
