(* Domain-safety analysis over the interprocedural call graph.

   Two reachability sets drive the rules:

   - the {e domain-crossing set}: everything reachable from any root
     (Pool closures, SPSC call sites, [Domain.spawn]).  L5 uses an
     owner-pruned variant — an [lr:owner] annotation on a
     function binding declares a single-owner extent, so reachability
     stops at that node's outgoing edges; L8 uses the unpruned set.
   - the {e resident set}: everything reachable from [Resident] roots
     only (launch/spawn loop bodies).  L6/L7 police it, and owner
     boundaries do NOT prune it: a single writer does not excuse
     blocking a resident loop, it only excuses its writes.

   Ownership annotations: a comment containing [lr:owner <who>[: why]]
   suppresses L5–L8 findings on its own line and the next.  Placed on
   (or immediately above) a function's binding line it additionally
   makes the node an owner boundary.  Every suppression is counted and
   reported, so silence is never free. *)

type finding = {
  rule : Rule.t;
  node : string;
  loc : Location.t;
  message : string;
}

type stats = {
  nodes : int;
  edges : int;
  roots : int;
  crossing : int;
  resident : int;
  boundaries : int;
  owner_suppressed : int;
}

type t = {
  graph : Callgraph.t;
  crossing : bool array;  (* unpruned: BFS from all roots *)
  crossing_owned : bool array;  (* owner-pruned, for L5 *)
  resident : bool array;  (* BFS from Resident roots *)
  boundary : bool array;
  annotated : (string, unit) Hashtbl.t;  (* "file:line" carrying lr:owner *)
  mutable suppressed : int;
}

(* Whitespace inside the marker is normalized, so extra spaces between
   the comment opener and the tag still count; the opener itself is
   required so prose (or
   this very analyzer's sources) mentioning the grammar does not
   become an annotation. *)
let contains_marker line =
  let squeezed = Buffer.create (String.length line) in
  String.iter
    (fun c -> if not (Char.equal c ' ' || Char.equal c '\t') then
        Buffer.add_char squeezed c)
    line;
  let line = Buffer.contents squeezed in
  (* Built from pieces so this binding cannot match itself when the
     lint library is linted. *)
  let marker = "(*" ^ "lr:owner" in
  let n = String.length line and m = String.length marker in
  let rec scan i =
    i + m <= n && (String.equal (String.sub line i m) marker || scan (i + 1))
  in
  scan 0

let load_annotations ~root files =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun file ->
      let path = Filename.concat root file in
      match In_channel.with_open_text path In_channel.input_lines with
      | exception Sys_error _ -> ()
      | lines ->
          (* An annotation covers every line of its comment, so a
             multi-line justification placed above a binding still
             counts as adjacent to it. *)
          let lines = Array.of_list lines in
          let contains_close line =
            let n = String.length line in
            let rec scan i =
              i + 2 <= n
              && (String.equal (String.sub line i 2) "*)" || scan (i + 1))
            in
            scan 0
          in
          Array.iteri
            (fun i line ->
              if contains_marker line then begin
                let j = ref i in
                while
                  !j < Array.length lines - 1
                  && not (contains_close lines.(!j))
                do
                  incr j
                done;
                for k = i to !j do
                  Hashtbl.replace tbl (Printf.sprintf "%s:%d" file (k + 1)) ()
                done
              end)
            lines)
    files;
  tbl

let loc_string (loc : Location.t) =
  let p = loc.Location.loc_start in
  Printf.sprintf "%s:%d:%d" p.Lexing.pos_fname p.Lexing.pos_lnum
    p.Lexing.pos_cnum

let annotated_at t file line =
  Hashtbl.mem t.annotated (Printf.sprintf "%s:%d" file line)

(* A finding is line-suppressed when the annotation sits on the same
   line or the line above. *)
let line_suppressed t (loc : Location.t) =
  let p = loc.Location.loc_start in
  let file = p.Lexing.pos_fname and line = p.Lexing.pos_lnum in
  annotated_at t file line || annotated_at t file (line - 1)

let bfs (g : Callgraph.t) ~stop_at_boundary ~boundary seeds =
  let seen = Array.make (Callgraph.size g) false in
  let q = Queue.create () in
  List.iter
    (fun id ->
      if not seen.(id) then (
        seen.(id) <- true;
        Queue.add id q))
    seeds;
  while not (Queue.is_empty q) do
    let id = Queue.pop q in
    if not (stop_at_boundary && boundary.(id)) then
      List.iter
        (fun (e : Callgraph.edge) ->
          if not seen.(e.Callgraph.callee) then (
            seen.(e.Callgraph.callee) <- true;
            Queue.add e.Callgraph.callee q))
        g.Callgraph.nodes.(id).Callgraph.edges
  done;
  seen

let analyse ~root (g : Callgraph.t) =
  let files =
    List.sort_uniq String.compare
      (Array.to_list
         (Array.map (fun (n : Callgraph.node) -> n.Callgraph.file) g.nodes))
  in
  let annotated = load_annotations ~root files in
  let boundary =
    Array.map
      (fun (n : Callgraph.node) ->
        let at l =
          Hashtbl.mem annotated (Printf.sprintf "%s:%d" n.Callgraph.file l)
        in
        at n.Callgraph.line || at (n.Callgraph.line - 1))
      g.nodes
  in
  let all_roots =
    List.filter_map
      (fun (n : Callgraph.node) ->
        match n.Callgraph.root with Some _ -> Some n.Callgraph.id | None -> None)
      (Array.to_list g.nodes)
  in
  let resident_roots =
    List.filter_map
      (fun (n : Callgraph.node) ->
        match n.Callgraph.root with
        | Some Callgraph.Resident -> Some n.Callgraph.id
        | _ -> None)
      (Array.to_list g.nodes)
  in
  {
    graph = g;
    crossing = bfs g ~stop_at_boundary:false ~boundary all_roots;
    crossing_owned = bfs g ~stop_at_boundary:true ~boundary all_roots;
    resident = bfs g ~stop_at_boundary:false ~boundary resident_roots;
    boundary;
    annotated;
    suppressed = 0;
  }

let stats t =
  let count a = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 a in
  {
    nodes = Callgraph.size t.graph;
    edges = Callgraph.edge_count t.graph;
    roots = Callgraph.root_count t.graph;
    crossing = count t.crossing;
    resident = count t.resident;
    boundaries = count t.boundary;
    owner_suppressed = t.suppressed;
  }

(* --- L5: unsynchronized writes on the crossing surface ------------ *)

let l5_findings t =
  let acc = ref [] in
  Array.iter
    (fun (n : Callgraph.node) ->
      if t.crossing_owned.(n.Callgraph.id) then
        if t.boundary.(n.Callgraph.id) then
          t.suppressed <-
            t.suppressed + List.length n.Callgraph.mutations
        else
          List.iter
            (fun (m : Callgraph.mutation) ->
              if line_suppressed t m.Callgraph.mut_loc then
                t.suppressed <- t.suppressed + 1
              else
                acc :=
                  {
                    rule = Rule.L5;
                    node = n.Callgraph.name;
                    loc = m.Callgraph.mut_loc;
                    message =
                      Printf.sprintf
                        "write to %s in domain-crossing %s without Atomic.t \
                         or lr:owner discipline"
                        m.Callgraph.target n.Callgraph.name;
                  }
                  :: !acc)
            n.Callgraph.mutations)
    t.graph.Callgraph.nodes;
  List.rev !acc

(* --- L6: blocking primitives in resident loops -------------------- *)

let l6_findings t =
  let acc = ref [] in
  Array.iter
    (fun (n : Callgraph.node) ->
      if t.resident.(n.Callgraph.id) then
        if t.boundary.(n.Callgraph.id) then
          t.suppressed <- t.suppressed + List.length n.Callgraph.blocking
        else
          List.iter
            (fun (s : Callgraph.site) ->
              if line_suppressed t s.Callgraph.site_loc then
                t.suppressed <- t.suppressed + 1
              else
                acc :=
                  {
                    rule = Rule.L6;
                    node = n.Callgraph.name;
                    loc = s.Callgraph.site_loc;
                    message =
                      Printf.sprintf
                        "blocking %s reachable inside resident loop body \
                         (via %s)"
                        s.Callgraph.prim n.Callgraph.name;
                  }
                  :: !acc)
            n.Callgraph.blocking)
    t.graph.Callgraph.nodes;
  List.rev !acc

(* --- L7: exceptions escaping resident loops ----------------------- *)

(* A raise at node [m] escapes resident root [r] iff some path
   r → ... → m uses no reference site under a [try], and the raise
   itself is neither in a try body nor a handler re-raise. *)
let l7_findings t =
  let g = t.graph in
  let acc = ref [] in
  let reported = Hashtbl.create 16 in
  Array.iter
    (fun (r : Callgraph.node) ->
      match r.Callgraph.root with
      | Some Callgraph.Resident ->
          let seen = Array.make (Callgraph.size g) false in
          let q = Queue.create () in
          seen.(r.Callgraph.id) <- true;
          Queue.add r.Callgraph.id q;
          while not (Queue.is_empty q) do
            let id = Queue.pop q in
            let n = g.Callgraph.nodes.(id) in
            List.iter
              (fun (rs : Callgraph.raise_site) ->
                if not rs.Callgraph.deliberate then
                  let key = loc_string rs.Callgraph.raise_loc in
                  if not (Hashtbl.mem reported key) then (
                    Hashtbl.replace reported key ();
                    if t.boundary.(id) || line_suppressed t rs.Callgraph.raise_loc
                    then t.suppressed <- t.suppressed + 1
                    else
                      acc :=
                        {
                          rule = Rule.L7;
                          node = n.Callgraph.name;
                          loc = rs.Callgraph.raise_loc;
                          message =
                            Printf.sprintf
                              "%s in %s can escape resident loop %s with no \
                               handler: a silently dead domain"
                              rs.Callgraph.raise_prim n.Callgraph.name
                              r.Callgraph.name;
                        }
                        :: !acc))
              n.Callgraph.raises;
            List.iter
              (fun (e : Callgraph.edge) ->
                if (not e.Callgraph.under_try) && not seen.(e.Callgraph.callee)
                then (
                  seen.(e.Callgraph.callee) <- true;
                  Queue.add e.Callgraph.callee q))
              n.Callgraph.edges
          done
      | _ -> ())
    g.Callgraph.nodes;
  List.rev !acc

(* --- L8: single-context Atomic.t ---------------------------------- *)

let l8_findings t =
  let by_key = Hashtbl.create 32 in
  Array.iter
    (fun (n : Callgraph.node) ->
      List.iter
        (fun (a : Callgraph.atomic_access) ->
          let crossing = t.crossing.(n.Callgraph.id) in
          match Hashtbl.find_opt by_key a.Callgraph.atom_key with
          | None ->
              Hashtbl.replace by_key a.Callgraph.atom_key
                (a.Callgraph.atom, a.Callgraph.atom_loc, n.Callgraph.name,
                 crossing)
          | Some (atom, loc, node, seen_crossing) ->
              let first_loc, first_node =
                let p (l : Location.t) = l.Location.loc_start in
                let a_p = p a.Callgraph.atom_loc and l_p = p loc in
                if
                  String.compare a_p.Lexing.pos_fname l_p.Lexing.pos_fname < 0
                  || String.equal a_p.Lexing.pos_fname l_p.Lexing.pos_fname
                     && a_p.Lexing.pos_lnum < l_p.Lexing.pos_lnum
                then (a.Callgraph.atom_loc, n.Callgraph.name)
                else (loc, node)
              in
              Hashtbl.replace by_key a.Callgraph.atom_key
                (atom, first_loc, first_node, seen_crossing || crossing))
        n.Callgraph.atomics)
    t.graph.Callgraph.nodes;
  let acc = ref [] in
  Hashtbl.iter
    (fun _ (atom, loc, node, crossing) ->
      if not crossing then
        if line_suppressed t loc then t.suppressed <- t.suppressed + 1
        else
          acc :=
            {
              rule = Rule.L8;
              node;
              loc;
              message =
                Printf.sprintf
                  "Atomic.t %s is only accessed outside the domain-crossing \
                   set: plain mutable state would do"
                  atom;
            }
            :: !acc)
    by_key;
  List.sort
    (fun a b ->
      let pa = a.loc.Location.loc_start and pb = b.loc.Location.loc_start in
      let c = String.compare pa.Lexing.pos_fname pb.Lexing.pos_fname in
      if c <> 0 then c else Int.compare pa.Lexing.pos_lnum pb.Lexing.pos_lnum)
    !acc

(* --- DOT rendering ------------------------------------------------- *)

(* Only the interesting subgraph: roots, the crossing and resident
   sets, and owner boundaries.  The full graph is an order of
   magnitude larger and all background. *)
let to_dot t =
  let g = t.graph in
  let included (n : Callgraph.node) =
    t.crossing.(n.Callgraph.id)
    || t.resident.(n.Callgraph.id)
    || t.boundary.(n.Callgraph.id)
    || match n.Callgraph.root with Some _ -> true | None -> false
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph domain_safety {\n";
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=box, style=filled];\n";
  Array.iter
    (fun (n : Callgraph.node) ->
      if included n then (
        let color =
          match n.Callgraph.root with
          | Some Callgraph.Resident -> "salmon"
          | Some Callgraph.Parallel -> "orange"
          | None ->
              if t.boundary.(n.Callgraph.id) then "lightblue"
              else if t.resident.(n.Callgraph.id) then "mistyrose"
              else "lightgray"
        in
        Buffer.add_string buf
          (Printf.sprintf "  n%d [label=\"%s\", fillcolor=%s];\n"
             n.Callgraph.id
             (String.concat "\\n"
                [ n.Callgraph.name;
                  Printf.sprintf "%s:%d" n.Callgraph.file n.Callgraph.line ])
             color)))
    g.Callgraph.nodes;
  Array.iter
    (fun (n : Callgraph.node) ->
      if included n then
        List.iter
          (fun (e : Callgraph.edge) ->
            if included g.Callgraph.nodes.(e.Callgraph.callee) then
              Buffer.add_string buf
                (Printf.sprintf "  n%d -> n%d%s;\n" n.Callgraph.id
                   e.Callgraph.callee
                   (if e.Callgraph.under_try then " [style=dashed]" else "")))
          n.Callgraph.edges)
    g.Callgraph.nodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
