(* Facts are extracted with the resolved [Path.t] of each identifier:
   stdlib values always resolve through the [Stdlib] unit (even when
   referenced bare), so a user-defined [compare] shadowing the
   polymorphic one never fires. *)

type poly_app = {
  op : string;
  arg_type : string;
  exempt : bool;
  app_loc : Location.t;
}

type forbidden = { construct : string; forbid_loc : Location.t }

type mutable_binding = {
  binding : string;
  kind : string;
  bind_loc : Location.t;
}

type pool_use = {
  entry : string;
  use_loc : Location.t;
  captured_units : string list;
}

type facts = {
  poly_apps : poly_app list;
  forbiddens : forbidden list;
  mutables : mutable_binding list;
  pool_uses : pool_use list;
}

type env_resolver = Env.t -> Env.t

(* --- names ------------------------------------------------------- *)

let flatten_dunder s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && Char.equal s.[!i] '_' && Char.equal s.[!i + 1] '_' then (
      Buffer.add_char b '.';
      i := !i + 2)
    else (
      Buffer.add_char b s.[!i];
      incr i)
  done;
  Buffer.contents b

let stdlib_prefix = "Stdlib."

let strip_stdlib s =
  if String.starts_with ~prefix:stdlib_prefix s then
    String.sub s (String.length stdlib_prefix)
      (String.length s - String.length stdlib_prefix)
  else s

let normalize p = strip_stdlib (flatten_dunder (Path.name p))

(* Polymorphic structural operations: flagged when the first argument's
   type is not an immediate/primitive type. *)
let poly_ops =
  [
    "=";
    "<>";
    "compare";
    "<";
    ">";
    "<=";
    ">=";
    "min";
    "max";
    "Hashtbl.hash";
    "List.mem";
    "List.assoc";
    "List.mem_assoc";
  ]

let forbidden_apps =
  [
    "Printf.printf";
    "print_string";
    "print_endline";
    "print_newline";
    "print_char";
    "print_int";
    "print_float";
    "Format.printf";
    "Format.print_string";
    "Format.print_newline";
    "exit";
  ]

(* Flagged on sight, application or not. *)
let forbidden_idents = [ "Obj.magic" ]

let stdlib_value path set =
  let name = Path.name path in
  String.starts_with ~prefix:stdlib_prefix name
  && List.mem (strip_stdlib name) set

(* --- types ------------------------------------------------------- *)

let expand resolve env ty =
  match Ctype.expand_head (resolve env) ty with
  | ty' -> ty'
  | exception _ -> ty

let exempt_bases =
  [
    "int";
    "bool";
    "char";
    "unit";
    "float";
    "string";
    "bytes";
    "int32";
    "int64";
    "nativeint";
  ]

let rec type_exempt resolve env depth ty =
  depth < 4
  &&
  let ty = expand resolve env ty in
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) -> List.mem (normalize p) exempt_bases
  | Types.Ttuple tys -> List.for_all (type_exempt resolve env (depth + 1)) tys
  | _ -> false

let mutable_containers =
  [
    "ref";
    "array";
    "bytes";
    "Hashtbl.t";
    "Buffer.t";
    "Queue.t";
    "Stack.t";
    "Atomic.t";
    "Random.State.t";
  ]

let decl_has_mutable_field (decl : Types.type_declaration) =
  match decl.Types.type_kind with
  | Types.Type_record (lds, _) ->
      List.exists
        (fun (ld : Types.label_declaration) ->
          match ld.Types.ld_mutable with
          | Asttypes.Mutable -> true
          | Asttypes.Immutable -> false)
        lds
  | _ -> false

(* [local_mutable_records] backs up the env lookup when .cmi resolution
   is unavailable: last components of record types declared in this unit
   with mutable fields. *)
let rec mutable_kind resolve env local_mutable_records depth ty =
  if depth >= 4 then None
  else
    let ty = expand resolve env ty in
    match Types.get_desc ty with
    | Types.Tconstr (p, _, _) -> (
        let name = normalize p in
        if List.mem name mutable_containers then Some name
        else
          match Env.find_type p (resolve env) with
          | decl ->
              if decl_has_mutable_field decl then
                Some "record with mutable field(s)"
              else None
          | exception _ ->
              if List.mem (Path.last p) local_mutable_records then
                Some "record with mutable field(s)"
              else None)
    | Types.Ttuple tys ->
        List.find_map
          (mutable_kind resolve env local_mutable_records (depth + 1))
          tys
    | _ -> None

(* --- expression-level facts -------------------------------------- *)

let first_explicit_arg args =
  List.find_map (fun (_, arg) -> arg) args

(* Pool entry points are identified by declaration site, not path text,
   so aliases and [open Lr_parallel] cannot hide them. *)
let pool_entry_names = [ "map_range"; "run_trials"; "run" ]
let pool_files = [ "pool.ml"; "pool.mli" ]

let is_pool_entry path (vd : Types.value_description) =
  List.mem (Path.last path) pool_entry_names
  && List.mem
       (Filename.basename vd.Types.val_loc.Location.loc_start.Lexing.pos_fname)
       pool_files

let unit_candidates_of_path p =
  let rec split p acc =
    match p with
    | Path.Pident id -> (Ident.name id, acc)
    | Path.Pdot (p, s) -> split p (s :: acc)
    | Path.Papply (f, _) -> split f acc
    | Path.Pextra_ty (p, _) -> split p acc
  in
  let head, rest = split p [] in
  if String.equal head "" || not (Char.uppercase_ascii head.[0] = head.[0])
  then []
  else
    match rest with
    | next :: _ -> [ head; head ^ "__" ^ next ]
    | [] -> [ head ]

let captured_units_of_args args =
  let acc = ref [] in
  let expr sub (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (p, _, _) ->
        acc := List.rev_append (unit_candidates_of_path p) !acc
    | _ -> ());
    Tast_iterator.default_iterator.Tast_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with Tast_iterator.expr } in
  List.iter
    (fun (_, arg) ->
      match arg with Some e -> it.Tast_iterator.expr it e | None -> ())
    args;
  List.sort_uniq String.compare !acc

let collect_exprs resolve structure =
  let poly_apps = ref [] in
  let forbiddens = ref [] in
  let pool_uses = ref [] in
  let expr sub (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (p, _, _) when stdlib_value p forbidden_idents ->
        forbiddens :=
          { construct = strip_stdlib (Path.name p); forbid_loc = e.exp_loc }
          :: !forbiddens
    | Typedtree.Texp_apply (f, args) -> (
        match f.Typedtree.exp_desc with
        | Typedtree.Texp_ident (p, _, vd) ->
            if stdlib_value p poly_ops then (
              match first_explicit_arg args with
              | Some arg ->
                  let ty = arg.Typedtree.exp_type in
                  poly_apps :=
                    {
                      op = strip_stdlib (Path.name p);
                      arg_type =
                        Format.asprintf "%a" Printtyp.type_expr ty;
                      exempt =
                        type_exempt resolve arg.Typedtree.exp_env 0 ty;
                      app_loc = e.exp_loc;
                    }
                    :: !poly_apps
              | None -> ())
            else if stdlib_value p forbidden_apps then
              forbiddens :=
                {
                  construct = strip_stdlib (Path.name p);
                  forbid_loc = e.exp_loc;
                }
                :: !forbiddens
            else if is_pool_entry p vd then
              pool_uses :=
                {
                  entry = Path.last p;
                  use_loc = e.exp_loc;
                  captured_units = captured_units_of_args args;
                }
                :: !pool_uses
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.Tast_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with Tast_iterator.expr } in
  it.Tast_iterator.structure it structure;
  (List.rev !poly_apps, List.rev !forbiddens, List.rev !pool_uses)

(* --- toplevel mutable state -------------------------------------- *)

let local_mutable_record_names structure =
  let names = ref [] in
  let rec scan_item (item : Typedtree.structure_item) =
    match item.Typedtree.str_desc with
    | Typedtree.Tstr_type (_, decls) ->
        List.iter
          (fun (d : Typedtree.type_declaration) ->
            match d.Typedtree.typ_kind with
            | Typedtree.Ttype_record lds ->
                if
                  List.exists
                    (fun (ld : Typedtree.label_declaration) ->
                      match ld.Typedtree.ld_mutable with
                      | Asttypes.Mutable -> true
                      | Asttypes.Immutable -> false)
                    lds
                then names := d.Typedtree.typ_name.Asttypes.txt :: !names
            | _ -> ())
          decls
    | Typedtree.Tstr_module mb -> scan_module mb.Typedtree.mb_expr
    | _ -> ()
  and scan_module (me : Typedtree.module_expr) =
    match me.Typedtree.mod_desc with
    | Typedtree.Tmod_structure s ->
        List.iter scan_item s.Typedtree.str_items
    | Typedtree.Tmod_constraint (me, _, _, _) -> scan_module me
    | _ -> ()
  in
  List.iter scan_item structure.Typedtree.str_items;
  !names

let collect_mutables resolve structure =
  let records = local_mutable_record_names structure in
  let acc = ref [] in
  let rec scan_item prefix (item : Typedtree.structure_item) =
    match item.Typedtree.str_desc with
    | Typedtree.Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            match vb.Typedtree.vb_pat.Typedtree.pat_desc with
            (* [let x : t = e] desugars to an alias pattern *)
            | Typedtree.Tpat_var (_, name)
            | Typedtree.Tpat_alias (_, _, name) -> (
                let e = vb.Typedtree.vb_expr in
                match
                  mutable_kind resolve e.Typedtree.exp_env records 0
                    e.Typedtree.exp_type
                with
                | Some kind ->
                    acc :=
                      {
                        binding = prefix ^ name.Asttypes.txt;
                        kind;
                        bind_loc = vb.Typedtree.vb_pat.Typedtree.pat_loc;
                      }
                      :: !acc
                | None -> ())
            | _ -> ())
          vbs
    | Typedtree.Tstr_module mb ->
        let sub =
          match mb.Typedtree.mb_id with
          | Some id -> prefix ^ Ident.name id ^ "."
          | None -> prefix
        in
        scan_module sub mb.Typedtree.mb_expr
    | _ -> ()
  and scan_module prefix (me : Typedtree.module_expr) =
    match me.Typedtree.mod_desc with
    | Typedtree.Tmod_structure s ->
        List.iter (scan_item prefix) s.Typedtree.str_items
    | Typedtree.Tmod_constraint (me, _, _, _) -> scan_module prefix me
    | _ -> ()
  in
  List.iter (scan_item "") structure.Typedtree.str_items;
  List.rev !acc

let of_structure resolve structure =
  let poly_apps, forbiddens, pool_uses = collect_exprs resolve structure in
  let mutables = collect_mutables resolve structure in
  { poly_apps; forbiddens; mutables; pool_uses }
