type config = {
  root : string;
  build_dir : string;
  dirs : string list;
  capture_dirs : string list;
  rules : Rule.t list;
  allow : Allowlist.t;
}

let default_config ~root =
  {
    root;
    build_dir = Filename.concat root "_build/default";
    dirs = [ "lib" ];
    capture_dirs = [ "bin"; "bench" ];
    rules = Rule.all;
    allow = Allowlist.empty;
  }

type safety = {
  stats : Domain_safety.stats;
  timings : (Rule.t * float) list;
  analyse_seconds : float;
}

type report = {
  diagnostics : Diagnostic.t list;
  units : int;
  safety : safety option;
}

(* Directories on the request/repair hot path: L1 findings there are
   errors, elsewhere warnings.  Every finding still fails the lint. *)
let hot_dirs = [ "lib/fast"; "lib/routing"; "lib/parallel"; "lib/service" ]

let in_hot_dir file =
  List.exists (fun d -> String.starts_with ~prefix:(d ^ "/") file) hot_dirs

let enabled config rule = List.exists (Rule.equal rule) config.rules

let allowed config rule names =
  List.exists (Allowlist.mem config.allow ~rule) names

let init_load_path cmi_dirs =
  match
    Load_path.init ~auto_include:Load_path.no_auto_include
      (Config.standard_library :: cmi_dirs)
  with
  | () -> ()
  | exception _ -> ()

let resolver env =
  match Envaux.env_of_only_summary env with
  | env' -> env'
  | exception _ -> env

(* --- L1: polymorphic structural ops at non-immediate types -------- *)

let l1_diags config (u : Cmt_unit.t) (facts : Walk.facts) =
  List.filter_map
    (fun (p : Walk.poly_app) ->
      if p.Walk.exempt then None
      else if
        allowed config Rule.L1
          [ u.Cmt_unit.pretty; u.Cmt_unit.pretty ^ "." ^ p.Walk.op ]
      then None
      else
        let file = p.Walk.app_loc.Location.loc_start.Lexing.pos_fname in
        let severity =
          if in_hot_dir file then Diagnostic.Error else Diagnostic.Warning
        in
        Some
          (Diagnostic.of_location ~rule:Rule.L1 ~severity p.Walk.app_loc
             (Printf.sprintf
                "polymorphic %s applied at non-immediate type %s" p.Walk.op
                p.Walk.arg_type)))
    facts.Walk.poly_apps

(* --- L2: mutable toplevel state on the domain-parallel surface ---- *)

let l2_reachable units roots =
  let by_name = Hashtbl.create 64 in
  List.iter
    (fun (u : Cmt_unit.t) -> Hashtbl.replace by_name u.Cmt_unit.modname u)
    units;
  let seen = Hashtbl.create 64 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then (
      Hashtbl.replace seen name ();
      match Hashtbl.find_opt by_name name with
      | Some u ->
          List.iter
            (fun i -> if Hashtbl.mem by_name i then visit i)
            u.Cmt_unit.imports
      | None -> ())
  in
  List.iter visit roots;
  seen

let l2_diags config scanned reachable =
  List.concat_map
    (fun ((u : Cmt_unit.t), (facts : Walk.facts)) ->
      if not (Hashtbl.mem reachable u.Cmt_unit.modname) then []
      else
        List.filter_map
          (fun (m : Walk.mutable_binding) ->
            let qname = u.Cmt_unit.pretty ^ "." ^ m.Walk.binding in
            if allowed config Rule.L2 [ u.Cmt_unit.pretty; qname ] then None
            else
              Some
                (Diagnostic.of_location ~rule:Rule.L2
                   ~severity:Diagnostic.Error m.Walk.bind_loc
                   (Printf.sprintf
                      "toplevel mutable state %s (%s) is reachable from \
                       domain-parallel code"
                      qname m.Walk.kind)))
          facts.Walk.mutables)
    scanned

(* --- L3: every .ml under lib/ needs an .mli ----------------------- *)

let is_dir p =
  match Sys.is_directory p with d -> d | exception Sys_error _ -> false

let l3_diags config =
  let rec scan rel acc =
    let full = Filename.concat config.root rel in
    match Sys.readdir full with
    | exception Sys_error _ -> acc
    | entries ->
        Array.fold_left
          (fun acc name ->
            let rel' = rel ^ "/" ^ name in
            let p = Filename.concat config.root rel' in
            if is_dir p then
              if
                String.length name > 0
                && (Char.equal name.[0] '_' || Char.equal name.[0] '.')
              then acc
              else scan rel' acc
            else if
              Filename.check_suffix name ".ml"
              && (not (Sys.file_exists (p ^ "i")))
              && not (allowed config Rule.L3 [ rel' ])
            then
              Diagnostic.make ~rule:Rule.L3 ~severity:Diagnostic.Error
                ~file:rel' ~line:1 ~col:0 "missing interface file (.mli)"
              :: acc
            else acc)
          acc entries
  in
  List.fold_left (fun acc d -> scan d acc) [] config.dirs

(* --- L4: forbidden constructs ------------------------------------- *)

let l4_diags config (u : Cmt_unit.t) (facts : Walk.facts) =
  List.filter_map
    (fun (f : Walk.forbidden) ->
      if
        allowed config Rule.L4
          [ u.Cmt_unit.pretty; u.Cmt_unit.pretty ^ "." ^ f.Walk.construct ]
      then None
      else
        let msg =
          match f.Walk.construct with
          | "Obj.magic" -> "Obj.magic defeats the type system"
          | "exit" -> "bare exit in library code"
          | c -> Printf.sprintf "printing to stdout (%s) in library code" c
        in
        Some
          (Diagnostic.of_location ~rule:Rule.L4 ~severity:Diagnostic.Error
             f.Walk.forbid_loc msg))
    facts.Walk.forbiddens

(* --- L5..L8: interprocedural domain safety ------------------------ *)

(* The safety rules report over the library tree AND bin/bench: a race
   seeded from a CLI driver is just as much a race.  L8 is a smell,
   not a bug, so it lands as a warning. *)
let safety_passes =
  [
    (Rule.L5, Domain_safety.l5_findings, Diagnostic.Error);
    (Rule.L6, Domain_safety.l6_findings, Diagnostic.Error);
    (Rule.L7, Domain_safety.l7_findings, Diagnostic.Error);
    (Rule.L8, Domain_safety.l8_findings, Diagnostic.Warning);
  ]

let safety_diags config units =
  if
    not
      (List.exists
         (fun (r, _, _) -> enabled config r)
         safety_passes)
  then (None, [])
  else
    let t0 = Unix.gettimeofday () in
    let graph = Callgraph.build units in
    let analysis = Domain_safety.analyse ~root:config.root graph in
    let analyse_seconds = Unix.gettimeofday () -. t0 in
    let timings = ref [] in
    let diags = ref [] in
    List.iter
      (fun (rule, pass, severity) ->
        if enabled config rule then (
          let t0 = Unix.gettimeofday () in
          let findings = pass analysis in
          timings := (rule, Unix.gettimeofday () -. t0) :: !timings;
          List.iter
            (fun (f : Domain_safety.finding) ->
              if not (allowed config rule [ f.Domain_safety.node ]) then
                diags :=
                  Diagnostic.of_location ~rule ~severity f.Domain_safety.loc
                    f.Domain_safety.message
                  :: !diags)
            findings))
      safety_passes;
    ( Some
        {
          stats = Domain_safety.stats analysis;
          timings = List.rev !timings;
          analyse_seconds;
        },
      List.rev !diags )

(* --- driver -------------------------------------------------------- *)

let load_units config =
  let units, cmi_dirs = Cmt_unit.load_tree config.build_dir in
  if List.compare_length_with units 0 = 0 then
    Error
      (Printf.sprintf "no .cmt files under %s (run 'dune build' first)"
         config.build_dir)
  else (
    init_load_path cmi_dirs;
    Ok units)

let callgraph_analysis config =
  Result.map
    (fun units ->
      let scanned =
        List.filter
          (Cmt_unit.in_dirs (config.dirs @ config.capture_dirs))
          units
      in
      Domain_safety.analyse ~root:config.root (Callgraph.build scanned))
    (load_units config)

let run config =
  let units, cmi_dirs = Cmt_unit.load_tree config.build_dir in
  if List.compare_length_with units 0 = 0 then
    Error
      (Printf.sprintf "no .cmt files under %s (run 'dune build' first)"
         config.build_dir)
  else (
    init_load_path cmi_dirs;
    let report_units =
      List.filter (Cmt_unit.in_dirs config.dirs) units
    in
    let capture_units =
      List.filter (Cmt_unit.in_dirs config.capture_dirs) units
    in
    let scan_facts us =
      List.filter_map
        (fun (u : Cmt_unit.t) ->
          match u.Cmt_unit.structure with
          | Some s -> Some (u, Walk.of_structure resolver s)
          | None -> None)
        us
    in
    let report_facts = scan_facts report_units in
    let capture_facts = scan_facts capture_units in
    let all_facts = report_facts @ capture_facts in
    let known = Hashtbl.create 64 in
    List.iter
      (fun (u : Cmt_unit.t) -> Hashtbl.replace known u.Cmt_unit.modname ())
      units;
    let roots =
      List.concat_map
        (fun ((u : Cmt_unit.t), (facts : Walk.facts)) ->
          match facts.Walk.pool_uses with
          | [] -> []
          | uses ->
              u.Cmt_unit.modname
              :: List.concat_map
                   (fun (p : Walk.pool_use) ->
                     List.filter (Hashtbl.mem known) p.Walk.captured_units)
                   uses)
        all_facts
    in
    let reachable = l2_reachable units (List.sort_uniq String.compare roots) in
    let safety, sdiags =
      safety_diags config (report_units @ capture_units)
    in
    let diags =
      List.concat
        [
          (if enabled config Rule.L1 then
             List.concat_map (fun (u, f) -> l1_diags config u f) report_facts
           else []);
          (if enabled config Rule.L2 then
             l2_diags config report_facts reachable
           else []);
          (if enabled config Rule.L3 then l3_diags config else []);
          (if enabled config Rule.L4 then
             List.concat_map (fun (u, f) -> l4_diags config u f) report_facts
           else []);
          sdiags;
        ]
    in
    Ok
      {
        diagnostics = Diagnostic.finalize diags;
        units = List.length report_units;
        safety;
      })

(* --- rendering ----------------------------------------------------- *)

let count severity diags =
  List.length
    (List.filter
       (fun (d : Diagnostic.t) ->
         match (d.Diagnostic.severity, severity) with
         | Diagnostic.Error, Diagnostic.Error -> true
         | Diagnostic.Warning, Diagnostic.Warning -> true
         | _ -> false)
       diags)

let summary ~units ~suppressed diags =
  Printf.sprintf "lint: %d unit(s), %d error(s), %d warning(s)%s"
    units
    (count Diagnostic.Error diags)
    (count Diagnostic.Warning diags)
    (if suppressed > 0 then Printf.sprintf ", %d baselined" suppressed else "")

let count_rule rule diags =
  List.length
    (List.filter (fun (d : Diagnostic.t) -> Rule.equal d.Diagnostic.rule rule)
       diags)

let safety_json diags s =
  Json.Obj
    [
      ("nodes", Json.Int s.stats.Domain_safety.nodes);
      ("edges", Json.Int s.stats.Domain_safety.edges);
      ("roots", Json.Int s.stats.Domain_safety.roots);
      ("crossing", Json.Int s.stats.Domain_safety.crossing);
      ("resident", Json.Int s.stats.Domain_safety.resident);
      ("boundaries", Json.Int s.stats.Domain_safety.boundaries);
      ("owner_suppressed", Json.Int s.stats.Domain_safety.owner_suppressed);
      ("analyse_seconds", Json.Float s.analyse_seconds);
      ( "rules",
        Json.Arr
          (List.map
             (fun (r, dt) ->
               Json.Obj
                 [
                   ("rule", Json.Str (Rule.id r));
                   ("findings", Json.Int (count_rule r diags));
                   ("seconds", Json.Float dt);
                 ])
             s.timings) );
    ]

let report_json ~units ~suppressed ~safety diags =
  Json.Obj
    ([
       ("version", Json.Int 2);
       ("units", Json.Int units);
       ("errors", Json.Int (count Diagnostic.Error diags));
       ("warnings", Json.Int (count Diagnostic.Warning diags));
       ("suppressed", Json.Int suppressed);
     ]
    @ (match safety with
      | Some s -> [ ("domain_safety", safety_json diags s) ]
      | None -> [])
    @ [ ("findings", Json.Arr (List.map Diagnostic.to_json diags)) ])
