(* Interprocedural call graph over the typed trees of every dune unit.

   Nodes are value bindings: toplevel lets (including inside nested
   modules and functor bodies), local [let f = fun ...] children, and
   synthetic nodes for function literals passed directly to a
   domain-crossing entry point.  Edges go from the node whose body
   references an identifier to the node that identifier resolves to —
   applied or not, since a function passed as a value is called
   somewhere downstream.  Resolution is conservative: an identifier we
   cannot map to a known node produces no edge.

   Cross-module references in the typed tree are fully qualified
   (dune's [Lib__Module] mangling flattens to [Lib.Module]), including
   through [open]; the only indirection left is local module aliases
   ([module P = Lr_parallel.Pool]) and functor instantiations
   ([module H = Order.Make (...)]), both handled by a per-unit alias
   table expanded at lookup time. *)

type root_kind = Parallel | Resident

type site = { prim : string; site_loc : Location.t }

type raise_site = {
  raise_prim : string;
  deliberate : bool;
      (* under a try body (caught locally) or inside an exception
         handler (an explicit re-raise) *)
  raise_loc : Location.t;
}

type mutation = { target : string; mut_key : string; mut_loc : Location.t }
type atomic_access = { atom : string; atom_key : string; atom_loc : Location.t }
type edge = { callee : int; under_try : bool }

type node = {
  id : int;
  name : string;
  unit_name : string;
  file : string;
  line : int;
  mutable root : root_kind option;
  mutable edges : edge list;
  mutable blocking : site list;
  mutable raises : raise_site list;
  mutable mutations : mutation list;
  mutable atomics : atomic_access list;
}

type t = { nodes : node array }

let size g = Array.length g.nodes

let edge_count g =
  Array.fold_left (fun acc n -> acc + List.length n.edges) 0 g.nodes

let root_count g =
  Array.fold_left
    (fun acc n -> match n.root with Some _ -> acc + 1 | None -> acc)
    0 g.nodes

(* --- primitive classification ------------------------------------- *)

(* Checked against the full resolved [Path.name] so user-defined
   shadows never fire; dotted stdlib modules appear as [Stdlib.X.f]. *)
let blocking_prims =
  [
    "Stdlib.Mutex.lock";
    "Stdlib.Condition.wait";
    "Stdlib.Domain.join";
    "Unix.sleep";
    "Unix.sleepf";
    "Unix.select";
    "Unix.read";
    "Unix.recv";
    "Unix.accept";
    "Stdlib.input_line";
    "Stdlib.input_char";
    "Stdlib.input";
    "Stdlib.really_input";
    "Stdlib.read_line";
    "Stdlib.Printf.printf";
    "Stdlib.Printf.eprintf";
    "Stdlib.Format.printf";
    "Stdlib.Format.eprintf";
    "Stdlib.print_string";
    "Stdlib.print_endline";
    "Stdlib.print_newline";
    "Stdlib.print_int";
    "Stdlib.prerr_string";
    "Stdlib.prerr_endline";
  ]

let raising_prims =
  [ "Stdlib.raise"; "Stdlib.raise_notrace"; "Stdlib.failwith";
    "Stdlib.invalid_arg" ]

let ref_assign_prims = [ "Stdlib.:="; "Stdlib.incr"; "Stdlib.decr" ]

(* Container mutators whose first explicit argument is the mutated
   value.  Reads are deliberately out of scope: flagging writes bounds
   the noise while still catching every lost-update candidate. *)
let container_mutator_prims =
  [
    "Stdlib.Array.set";
    "Stdlib.Array.unsafe_set";
    "Stdlib.Array.fill";
    "Stdlib.Array.blit";
    "Stdlib.Bytes.set";
    "Stdlib.Bytes.unsafe_set";
    "Stdlib.Bytes.fill";
    "Stdlib.Bytes.blit";
    "Stdlib.Hashtbl.add";
    "Stdlib.Hashtbl.replace";
    "Stdlib.Hashtbl.remove";
    "Stdlib.Hashtbl.reset";
    "Stdlib.Hashtbl.clear";
    "Stdlib.Buffer.add_char";
    "Stdlib.Buffer.add_string";
    "Stdlib.Buffer.add_substring";
    "Stdlib.Buffer.add_buffer";
    "Stdlib.Buffer.clear";
    "Stdlib.Buffer.reset";
    "Stdlib.Queue.push";
    "Stdlib.Queue.add";
    "Stdlib.Queue.pop";
    "Stdlib.Queue.take";
    "Stdlib.Queue.clear";
    "Stdlib.Queue.transfer";
    "Stdlib.Stack.push";
    "Stdlib.Stack.pop";
    "Stdlib.Stack.clear";
  ]

let atomic_prims =
  [
    "Stdlib.Atomic.get";
    "Stdlib.Atomic.set";
    "Stdlib.Atomic.exchange";
    "Stdlib.Atomic.compare_and_set";
    "Stdlib.Atomic.fetch_and_add";
    "Stdlib.Atomic.incr";
    "Stdlib.Atomic.decr";
  ]

(* Heads that allocate a fresh mutable value: a binding initialized by
   one of these is node-local, and writes to it inside the same node
   cannot race. *)
let alloc_prims =
  [
    "Stdlib.ref";
    "Stdlib.Array.make";
    "Stdlib.Array.init";
    "Stdlib.Array.create_float";
    "Stdlib.Array.copy";
    "Stdlib.Array.of_list";
    "Stdlib.Bytes.create";
    "Stdlib.Bytes.make";
    "Stdlib.Buffer.create";
    "Stdlib.Hashtbl.create";
    "Stdlib.Queue.create";
    "Stdlib.Stack.create";
    "Stdlib.Atomic.make";
  ]

(* Domain-crossing entry points, identified by declaration site so
   aliases and [open] cannot hide them (same trick as Walk). *)
let decl_file (vd : Types.value_description) =
  Filename.basename vd.Types.val_loc.Location.loc_start.Lexing.pos_fname

let pool_root_kind path (vd : Types.value_description) =
  let last = Path.last path in
  if
    List.mem last [ "map_range"; "run_trials"; "run"; "launch" ]
    && List.mem (decl_file vd) [ "pool.ml"; "pool.mli" ]
  then Some (if String.equal last "launch" then Resident else Parallel)
  else if String.equal (Path.name path) "Stdlib.Domain.spawn" then
    Some Resident
  else None

let is_spsc_entry path (vd : Types.value_description) =
  List.mem (Path.last path) [ "push"; "pop"; "try_push"; "try_pop" ]
  && List.mem (decl_file vd) [ "spsc.ml"; "spsc.mli" ]

(* --- graph construction -------------------------------------------- *)

type unit_ctx = {
  unit_name : string;
  pretty : string;
  (* Ident.unique_name -> node id, for every binding turned into a
     node in this unit (toplevel and local children alike). *)
  idents : (string, int) Hashtbl.t;
  (* local module name -> expansion (dotted), for [module P = ...]
     aliases and functor instantiations. *)
  aliases : (string, string) Hashtbl.t;
  (* binding-location key -> node id, to reattach pass-2 traversal to
     the nodes pass 1 registered. *)
  anchors : (string, int) Hashtbl.t;
}

type builder = {
  mutable rev_nodes : node list;
  mutable next_id : int;
  by_id : (int, node) Hashtbl.t;
  by_qname : (string, int) Hashtbl.t;
  mutable ctxs : (Cmt_unit.t * unit_ctx) list;
}

let fresh b ~name ~unit_name (loc : Location.t) =
  let p = loc.Location.loc_start in
  let n =
    {
      id = b.next_id;
      name;
      unit_name;
      file = p.Lexing.pos_fname;
      line = p.Lexing.pos_lnum;
      root = None;
      edges = [];
      blocking = [];
      raises = [];
      mutations = [];
      atomics = [];
    }
  in
  b.next_id <- b.next_id + 1;
  b.rev_nodes <- n :: b.rev_nodes;
  Hashtbl.replace b.by_id n.id n;
  n

let loc_key (loc : Location.t) =
  let p = loc.Location.loc_start in
  Printf.sprintf "%s:%d:%d" p.Lexing.pos_fname p.Lexing.pos_lnum
    p.Lexing.pos_cnum

let rec module_head (me : Typedtree.module_expr) =
  match me.Typedtree.mod_desc with
  | Typedtree.Tmod_ident (p, _) -> Some (Walk.flatten_dunder (Path.name p))
  | Typedtree.Tmod_apply (f, _, _) -> module_head f
  | Typedtree.Tmod_constraint (me, _, _, _) -> module_head me
  | _ -> None

(* Pass 1: register a node for every toplevel binding (and per-unit
   alias table entries), so pass-2 bodies can resolve references into
   any unit regardless of scan order. *)
let register_unit b (u : Cmt_unit.t) (str : Typedtree.structure) =
  let ctx =
    {
      unit_name = u.Cmt_unit.modname;
      pretty = u.Cmt_unit.pretty;
      idents = Hashtbl.create 64;
      aliases = Hashtbl.create 8;
      anchors = Hashtbl.create 64;
    }
  in
  let register_binding prefix (vb : Typedtree.value_binding) =
    let pat = vb.Typedtree.vb_pat in
    let anchor = loc_key pat.Typedtree.pat_loc in
    match pat.Typedtree.pat_desc with
    | Typedtree.Tpat_var (id, name) | Typedtree.Tpat_alias (_, id, name) ->
        let qname = ctx.pretty ^ "." ^ prefix ^ name.Asttypes.txt in
        let n =
          fresh b ~name:qname ~unit_name:ctx.unit_name
            pat.Typedtree.pat_loc
        in
        Hashtbl.replace ctx.idents (Ident.unique_name id) n.id;
        Hashtbl.replace b.by_qname qname n.id;
        Hashtbl.replace ctx.anchors anchor n.id
    | _ ->
        (* [let () = ...] and friends: side-effecting initializers
           still get a node so root sites inside them are seen. *)
        let line = pat.Typedtree.pat_loc.Location.loc_start.Lexing.pos_lnum in
        let qname =
          Printf.sprintf "%s.%s<init@%d>" ctx.pretty prefix line
        in
        let n = fresh b ~name:qname ~unit_name:ctx.unit_name pat.pat_loc in
        Hashtbl.replace ctx.anchors anchor n.id
  in
  let rec register_item prefix (item : Typedtree.structure_item) =
    match item.Typedtree.str_desc with
    | Typedtree.Tstr_value (_, vbs) -> List.iter (register_binding prefix) vbs
    | Typedtree.Tstr_eval (_, _) ->
        let line = item.Typedtree.str_loc.Location.loc_start.Lexing.pos_lnum in
        let qname = Printf.sprintf "%s.%s<eval@%d>" ctx.pretty prefix line in
        let n =
          fresh b ~name:qname ~unit_name:ctx.unit_name item.Typedtree.str_loc
        in
        Hashtbl.replace ctx.anchors (loc_key item.Typedtree.str_loc) n.id
    | Typedtree.Tstr_module mb ->
        let mod_name =
          match mb.Typedtree.mb_id with
          | Some id -> Some (Ident.name id)
          | None -> None
        in
        register_module prefix mod_name mb.Typedtree.mb_expr
    | Typedtree.Tstr_recmodule mbs ->
        List.iter
          (fun (mb : Typedtree.module_binding) ->
            let mod_name =
              match mb.Typedtree.mb_id with
              | Some id -> Some (Ident.name id)
              | None -> None
            in
            register_module prefix mod_name mb.Typedtree.mb_expr)
          mbs
    | _ -> ()
  and register_module prefix mod_name (me : Typedtree.module_expr) =
    match me.Typedtree.mod_desc with
    | Typedtree.Tmod_structure s ->
        let prefix' =
          match mod_name with
          | Some n -> prefix ^ n ^ "."
          | None -> prefix
        in
        List.iter (register_item prefix') s.Typedtree.str_items
    | Typedtree.Tmod_constraint (me, _, _, _) ->
        register_module prefix mod_name me
    | Typedtree.Tmod_functor (_, body) ->
        (* Functor bodies become nodes under the functor's own name;
           [module M = F (X)] aliases M to F below, so [M.f] resolves
           to the (shared) body node [F.f]. *)
        register_module prefix mod_name body
    | Typedtree.Tmod_ident (p, _) -> (
        match mod_name with
        | Some n ->
            Hashtbl.replace ctx.aliases n (Walk.flatten_dunder (Path.name p))
        | None -> ())
    | Typedtree.Tmod_apply (_, _, _) -> (
        match (mod_name, module_head me) with
        | Some n, Some head -> Hashtbl.replace ctx.aliases n head
        | _ -> ())
    | _ -> ()
  in
  List.iter (register_item "") str.Typedtree.str_items;
  b.ctxs <- (u, ctx) :: b.ctxs

(* --- pass 2: walk bodies ------------------------------------------ *)

let resolve b ctx path =
  match path with
  | Path.Pident id -> Hashtbl.find_opt ctx.idents (Ident.unique_name id)
  | _ -> (
      let name = Walk.flatten_dunder (Path.name path) in
      match Hashtbl.find_opt b.by_qname name with
      | Some id -> Some id
      | None ->
          (* expand a leading local-module alias and retry *)
          let rec expand name fuel =
            if fuel = 0 then None
            else
              match String.index_opt name '.' with
              | None -> None
              | Some i -> (
                  let head = String.sub name 0 i in
                  let rest =
                    String.sub name i (String.length name - i)
                  in
                  match Hashtbl.find_opt ctx.aliases head with
                  | None -> None
                  | Some target -> (
                      let name' = target ^ rest in
                      match Hashtbl.find_opt b.by_qname name' with
                      | Some id -> Some id
                      | None -> expand name' (fuel - 1)))
          in
          (match expand name 4 with
          | Some id -> Some id
          | None ->
              (* same-unit nested module: [Persistent.run] inside
                 pool.ml is [Lr_parallel.Pool.Persistent.run] *)
              Hashtbl.find_opt b.by_qname (ctx.pretty ^ "." ^ name)))

let node_of b id = Hashtbl.find b.by_id id

let first_explicit_arg args = List.find_map (fun (_, a) -> a) args

let label_key (lbl : Types.label_description) =
  let p = lbl.Types.lbl_loc.Location.loc_start in
  Printf.sprintf "field:%s:%d:%s" p.Lexing.pos_fname p.Lexing.pos_lnum
    lbl.Types.lbl_name

let ident_key ctx id = Printf.sprintf "%s/%s" ctx.unit_name (Ident.unique_name id)

let rec pattern_catches : type k. k Typedtree.general_pattern -> bool =
 fun p ->
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_exception _ -> true
  | Typedtree.Tpat_or (a, b, _) -> pattern_catches a || pattern_catches b
  | _ -> false

type walk_state = {
  b : builder;
  ctx : unit_ctx;
  mutable current : node;
  mutable try_depth : int;
  mutable in_handler : bool;
  (* (node id, unique ident name) allocated locally in that node *)
  local_allocs : (int * string, unit) Hashtbl.t;
}

let head_path (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, vd) -> Some (p, vd)
  | _ -> None

let record_edge st callee_id =
  let n = st.current in
  let under_try = st.try_depth > 0 in
  if
    not
      (List.exists
         (fun e -> e.callee = callee_id && Bool.equal e.under_try under_try)
         n.edges)
  then n.edges <- { callee = callee_id; under_try } :: n.edges

let record_mutation st ~target ~key loc =
  let n = st.current in
  if not (List.exists (fun m -> String.equal m.mut_key key) n.mutations) then
    n.mutations <-
      { target; mut_key = key; mut_loc = loc } :: n.mutations

let record_atomic st ~atom ~key loc =
  let n = st.current in
  n.atomics <- { atom; atom_key = key; atom_loc = loc } :: n.atomics

let mark_root st id kind =
  let n = node_of st.b id in
  match (n.root, kind) with
  | None, _ -> n.root <- Some kind
  | Some Parallel, Resident -> n.root <- Some Resident
  | Some _, _ -> ()

(* The mutated/accessed value in first-argument position.  A local
   ident allocated in the same node is private to one call frame, so
   writes to it are skipped. *)
let mutation_target st (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (Path.Pident id, _, _) ->
      if Hashtbl.mem st.local_allocs (st.current.id, Ident.unique_name id)
      then None
      else Some (Ident.name id, ident_key st.ctx id)
  | Typedtree.Texp_ident (p, _, _) ->
      Some (Path.last p, Walk.flatten_dunder (Path.name p))
  | Typedtree.Texp_field (_, _, lbl) ->
      Some (lbl.Types.lbl_name, label_key lbl)
  | _ -> None

(* Like [mutation_target] but node-local allocations still count:
   a function-local Atomic.t never shared is exactly L8's smell. *)
let atomic_target ctx (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (Path.Pident id, _, _) ->
      Some (Ident.name id, ident_key ctx id)
  | Typedtree.Texp_ident (p, _, _) ->
      Some (Path.last p, Walk.flatten_dunder (Path.name p))
  | Typedtree.Texp_field (_, _, lbl) ->
      Some (lbl.Types.lbl_name, label_key lbl)
  | _ -> None

let is_alloc_expr (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_record _ | Typedtree.Texp_array _ -> true
  | Typedtree.Texp_apply (f, _) -> (
      match head_path f with
      | Some (p, _) -> List.mem (Path.name p) alloc_prims
      | None -> false)
  | _ -> false

let rec walk_expr st it (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> (
      match resolve st.b st.ctx p with
      | Some id -> record_edge st id
      | None -> ())
  | Typedtree.Texp_apply (f, args) -> walk_apply st it e f args
  | Typedtree.Texp_try (body, cases) ->
      st.try_depth <- st.try_depth + 1;
      it.Tast_iterator.expr it body;
      st.try_depth <- st.try_depth - 1;
      let saved = st.in_handler in
      st.in_handler <- true;
      List.iter (walk_case st it) cases;
      st.in_handler <- saved
  | Typedtree.Texp_match (scrut, cases, _) ->
      it.Tast_iterator.expr it scrut;
      List.iter
        (fun (c : Typedtree.computation Typedtree.case) ->
          if pattern_catches c.Typedtree.c_lhs then (
            let saved = st.in_handler in
            st.in_handler <- true;
            walk_case st it c;
            st.in_handler <- saved)
          else walk_case st it c)
        cases
  | Typedtree.Texp_let (_, vbs, body) ->
      walk_let st it vbs;
      it.Tast_iterator.expr it body
  | Typedtree.Texp_setfield (lhs, _, lbl, rhs) ->
      (match lhs.Typedtree.exp_desc with
      | Typedtree.Texp_ident (Path.Pident id, _, _)
        when Hashtbl.mem st.local_allocs
               (st.current.id, Ident.unique_name id) ->
          ()
      | _ ->
          record_mutation st ~target:(lbl.Types.lbl_name ^ " field")
            ~key:(label_key lbl) e.Typedtree.exp_loc);
      it.Tast_iterator.expr it lhs;
      it.Tast_iterator.expr it rhs
  | _ -> Tast_iterator.default_iterator.Tast_iterator.expr it e

and walk_case :
    type k.
    walk_state -> Tast_iterator.iterator -> k Typedtree.case -> unit =
 fun _st it c ->
  (match c.Typedtree.c_guard with
  | Some g -> it.Tast_iterator.expr it g
  | None -> ());
  it.Tast_iterator.expr it c.Typedtree.c_rhs

and walk_let st it vbs =
  (* Function bindings become child nodes (registered first, so
     [let rec loop] and mutual recursion resolve); allocations feed
     the node-local set; anything else is walked in place. *)
  let children =
    List.filter_map
      (fun (vb : Typedtree.value_binding) ->
        match
          (vb.Typedtree.vb_pat.Typedtree.pat_desc, vb.Typedtree.vb_expr)
        with
        | ( (Typedtree.Tpat_var (id, name) | Typedtree.Tpat_alias (_, id, name)),
            ({ Typedtree.exp_desc = Typedtree.Texp_function _; _ } as rhs) )
          ->
            let qname = st.current.name ^ "." ^ name.Asttypes.txt in
            let n =
              fresh st.b ~name:qname ~unit_name:st.ctx.unit_name
                vb.Typedtree.vb_pat.Typedtree.pat_loc
            in
            Hashtbl.replace st.ctx.idents (Ident.unique_name id) n.id;
            Some (n, rhs)
        | _ -> None)
      vbs
  in
  List.iter
    (fun (vb : Typedtree.value_binding) ->
      match (vb.Typedtree.vb_pat.Typedtree.pat_desc, vb.Typedtree.vb_expr) with
      | _, { Typedtree.exp_desc = Typedtree.Texp_function _; _ } -> ()
      | ( (Typedtree.Tpat_var (id, _) | Typedtree.Tpat_alias (_, id, _)),
          rhs )
        when is_alloc_expr rhs ->
          Hashtbl.replace st.local_allocs
            (st.current.id, Ident.unique_name id)
            ();
          it.Tast_iterator.expr it rhs
      | _ -> it.Tast_iterator.expr it vb.Typedtree.vb_expr)
    vbs;
  List.iter (fun (n, rhs) -> walk_under st it n rhs) children

and walk_under st it n body =
  let saved_node = st.current in
  let saved_try = st.try_depth in
  let saved_handler = st.in_handler in
  st.current <- n;
  st.try_depth <- 0;
  st.in_handler <- false;
  it.Tast_iterator.expr it body;
  st.current <- saved_node;
  st.try_depth <- saved_try;
  st.in_handler <- saved_handler

and walk_apply st it e f args =
  (match head_path f with
  | Some (p, vd) -> (
      let full = Path.name p in
      match pool_root_kind p vd with
      | Some kind ->
          (* A domain-crossing entry: its function arguments run on
             other domains.  Closure literals become synthetic root
             nodes; idents resolve to root-marked nodes; if neither
             shape appears the enclosing node is the root. *)
          let marked = ref false in
          List.iter
            (fun ((_ : Asttypes.arg_label), arg) ->
              match arg with
              | Some
                  ({ Typedtree.exp_desc = Typedtree.Texp_function _; _ } as
                   fn) ->
                  let line =
                    fn.Typedtree.exp_loc.Location.loc_start.Lexing.pos_lnum
                  in
                  let qname =
                    Printf.sprintf "%s.<fun@%d>" st.current.name line
                  in
                  let n =
                    fresh st.b ~name:qname ~unit_name:st.ctx.unit_name
                      fn.Typedtree.exp_loc
                  in
                  n.root <- Some kind;
                  record_edge st n.id;
                  marked := true;
                  walk_under st it n fn
              | Some { Typedtree.exp_desc = Typedtree.Texp_ident (ap, _, _); _ }
                -> (
                  match resolve st.b st.ctx ap with
                  | Some id ->
                      mark_root st id kind;
                      record_edge st id;
                      marked := true
                  | None -> ())
              | _ -> ())
            args;
          if not !marked then mark_root st st.current.id kind
      | None ->
          if is_spsc_entry p vd then
            (* Values handed through an SPSC ring cross domains: the
               function making the push/pop is on the crossing
               surface. *)
            mark_root st st.current.id Parallel
          else if List.mem full blocking_prims then
            st.current.blocking <-
              {
                prim = Walk.strip_stdlib full;
                site_loc = e.Typedtree.exp_loc;
              }
              :: st.current.blocking
          else if List.mem full raising_prims then
            st.current.raises <-
              {
                raise_prim = Walk.strip_stdlib full;
                deliberate = st.try_depth > 0 || st.in_handler;
                raise_loc = e.Typedtree.exp_loc;
              }
              :: st.current.raises
          else if List.mem full ref_assign_prims then (
            match first_explicit_arg args with
            | Some target -> (
                match mutation_target st target with
                | Some (display, key) ->
                    record_mutation st ~target:(display ^ " ref") ~key
                      e.Typedtree.exp_loc
                | None -> ())
            | None -> ())
          else if List.mem full container_mutator_prims then (
            match first_explicit_arg args with
            | Some target -> (
                match mutation_target st target with
                | Some (display, key) ->
                    let op = Walk.strip_stdlib full in
                    record_mutation st
                      ~target:(Printf.sprintf "%s (%s)" display op)
                      ~key e.Typedtree.exp_loc
                | None -> ())
            | None -> ())
          else if List.mem full atomic_prims then (
            match first_explicit_arg args with
            | Some target -> (
                match atomic_target st.ctx target with
                | Some (display, key) ->
                    record_atomic st ~atom:display ~key e.Typedtree.exp_loc
                | None -> ())
            | None -> ()))
  | None -> ());
  (* Walk children: the head (records the call edge via Texp_ident)
     and every argument not already walked as a synthetic root. *)
  let is_root_site =
    match head_path f with
    | Some (p, vd) -> (
        match pool_root_kind p vd with Some _ -> true | None -> false)
    | None -> false
  in
  it.Tast_iterator.expr it f;
  List.iter
    (fun ((_ : Asttypes.arg_label), arg) ->
      match arg with
      | Some ({ Typedtree.exp_desc = Typedtree.Texp_function _; _ })
        when is_root_site ->
          () (* walked above, under its synthetic node *)
      | Some a -> it.Tast_iterator.expr it a
      | None -> ())
    args

(* Toplevel traversal mirrors pass 1's shape, re-attaching to the
   registered nodes through the location anchors. *)
let walk_unit b (u : Cmt_unit.t) ctx (str : Typedtree.structure) =
  let st =
    {
      b;
      ctx;
      current =
        (* placeholder; replaced before any walk *)
        {
          id = -1;
          name = "<none>";
          unit_name = u.Cmt_unit.modname;
          file = "";
          line = 0;
          root = None;
          edges = [];
          blocking = [];
          raises = [];
          mutations = [];
          atomics = [];
        };
      try_depth = 0;
      in_handler = false;
      local_allocs = Hashtbl.create 32;
    }
  in
  let it =
    {
      Tast_iterator.default_iterator with
      Tast_iterator.expr = (fun it e -> walk_expr st it e);
    }
  in
  let rec walk_item (item : Typedtree.structure_item) =
    match item.Typedtree.str_desc with
    | Typedtree.Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            match
              Hashtbl.find_opt ctx.anchors
                (loc_key vb.Typedtree.vb_pat.Typedtree.pat_loc)
            with
            | Some id ->
                walk_under st it (node_of b id) vb.Typedtree.vb_expr
            | None -> ())
          vbs
    | Typedtree.Tstr_eval (e, _) -> (
        match Hashtbl.find_opt ctx.anchors (loc_key item.Typedtree.str_loc) with
        | Some id ->
            let saved = st.current in
            st.current <- node_of b id;
            it.Tast_iterator.expr it e;
            st.current <- saved
        | None -> ())
    | Typedtree.Tstr_module mb -> walk_module mb.Typedtree.mb_expr
    | Typedtree.Tstr_recmodule mbs ->
        List.iter
          (fun (mb : Typedtree.module_binding) ->
            walk_module mb.Typedtree.mb_expr)
          mbs
    | _ -> ()
  and walk_module (me : Typedtree.module_expr) =
    match me.Typedtree.mod_desc with
    | Typedtree.Tmod_structure s ->
        List.iter walk_item s.Typedtree.str_items
    | Typedtree.Tmod_constraint (me, _, _, _) -> walk_module me
    | Typedtree.Tmod_functor (_, body) -> walk_module body
    | _ -> ()
  in
  List.iter walk_item str.Typedtree.str_items

let build units =
  let b =
    {
      rev_nodes = [];
      next_id = 0;
      by_id = Hashtbl.create 256;
      by_qname = Hashtbl.create 256;
      ctxs = [];
    }
  in
  let with_structure =
    List.filter_map
      (fun (u : Cmt_unit.t) ->
        match u.Cmt_unit.structure with
        | Some s -> Some (u, s)
        | None -> None)
      units
  in
  List.iter (fun (u, s) -> register_unit b u s) with_structure;
  let ctx_of u =
    List.find_map
      (fun ((u' : Cmt_unit.t), ctx) ->
        if String.equal u'.Cmt_unit.modname u.Cmt_unit.modname then Some ctx
        else None)
      b.ctxs
  in
  List.iter
    (fun (u, s) ->
      match ctx_of u with
      | Some ctx -> walk_unit b u ctx s
      | None -> ())
    with_structure;
  let nodes = Array.of_list (List.rev b.rev_nodes) in
  Array.sort (fun a b -> Int.compare a.id b.id) nodes;
  { nodes }
