open Lr_graph
module Simulation = Lr_automata.Simulation

let graphs_equal g1 g2 =
  if Digraph.equal g1 g2 then Ok ()
  else Error "oriented graphs differ"

let lists_equal (s : Pr.state) (t : Pr.state) =
  let bad u =
    if Node.Set.equal (Pr.list_of s u) (Pr.list_of t u) then None else Some u
  in
  let nodes =
    Node.Set.union (Digraph.nodes s.Pr.graph) (Digraph.nodes t.Pr.graph)
  in
  Node.Set.fold
    (fun u acc -> match acc with Some _ -> acc | None -> bad u)
    nodes None

(* R' (Section 5.2): equal graphs and equal lists. *)
let r_prime_rel (s : Pr.state) (t : One_step_pr.state) =
  match graphs_equal s.Pr.graph t.Pr.graph with
  | Error _ as e -> e
  | Ok () -> (
      match lists_equal s t with
      | None -> Ok ()
      | Some u -> Error (Format.asprintf "lists differ at node %a" Node.pp u))

let r_prime config =
  {
    Simulation.name = "R' (PR -> OneStepPR)";
    relation = r_prime_rel;
    initial_b = One_step_pr.initial config;
    correspond =
      (fun _s (Pr.Reverse set) _t ->
        List.map (fun u -> One_step_pr.Reverse u) (Node.Set.elements set));
  }

(* R (Section 5.3): equal graphs; even parity => list ⊆ out-nbrs, odd
   parity => list ⊆ in-nbrs. *)
let r_rel config (s : One_step_pr.state) (t : New_pr.state) =
  match graphs_equal s.Pr.graph t.New_pr.graph with
  | Error _ as e -> e
  | Ok () ->
      let bad u =
        let lst = Pr.list_of s u in
        match New_pr.parity t u with
        | New_pr.Even ->
            if Node.Set.subset lst (Config.out_nbrs config u) then None
            else Some (u, "even parity but list not within out-nbrs")
        | New_pr.Odd ->
            if Node.Set.subset lst (Config.in_nbrs config u) then None
            else Some (u, "odd parity but list not within in-nbrs")
      in
      let res =
        Node.Set.fold
          (fun u acc -> match acc with Some _ -> acc | None -> bad u)
          (Config.nodes config) None
      in
      (match res with
      | None -> Ok ()
      | Some (u, what) -> Error (Format.asprintf "node %a: %s" Node.pp u what))

(* Lemma 5.3's construction: one NewPR step, except when list[w] =
   nbrs_w where a dummy step precedes the real one. *)
let r_correspond config (s : One_step_pr.state) (One_step_pr.Reverse w) _t =
  if Node.Set.equal (Pr.list_of s w) (Config.nbrs config w) then
    [ New_pr.Reverse w; New_pr.Reverse w ]
  else [ New_pr.Reverse w ]

let r config =
  {
    Simulation.name = "R (OneStepPR -> NewPR)";
    relation = r_rel config;
    initial_b = New_pr.initial config;
    correspond = r_correspond config;
  }

(* Composition R' ; R — PR directly to NewPR.  For reverse(S), each
   member contributes its one- or two-step NewPR sequence; the list used
   to decide one-vs-two is the PR pre-state list, which is correct
   because members of S are pairwise non-adjacent and cannot change one
   another's lists. *)
let r_composed config =
  let rel (s : Pr.state) (t : New_pr.state) = r_rel config s t in
  {
    Simulation.name = "R' ; R (PR -> NewPR)";
    relation = rel;
    initial_b = New_pr.initial config;
    correspond =
      (fun (s : Pr.state) (Pr.Reverse set) _t ->
        Node.Set.elements set
        |> List.concat_map (fun w ->
               if Node.Set.equal (Pr.list_of s w) (Config.nbrs config w) then
                 [ New_pr.Reverse w; New_pr.Reverse w ]
               else [ New_pr.Reverse w ]));
  }

(* The future-work direction (paper, Section 6): NewPR -> OneStepPR.
   The relation is R⁻¹ extended with two "mid-dummy" disjuncts: an
   initial source (in-nbrs = ∅) whose parity has flipped to odd, or an
   initial sink (out-nbrs = ∅) back at even parity after at least one
   step, may still hold a full list — the OneStepPR side simply has not
   (and need not) mirror the dummy step. *)
let r_reverse_rel config (t : New_pr.state) (s : One_step_pr.state) =
  match graphs_equal t.New_pr.graph s.Pr.graph with
  | Error _ as e -> e
  | Ok () ->
      let ok u =
        let lst = Pr.list_of s u in
        let ins = Config.in_nbrs config u
        and outs = Config.out_nbrs config u
        and nbrs = Config.nbrs config u in
        match New_pr.parity t u with
        | New_pr.Even ->
            Node.Set.subset lst outs
            || Node.Set.is_empty outs
               && New_pr.count t u > 0
               && Node.Set.equal lst nbrs
        | New_pr.Odd ->
            Node.Set.subset lst ins
            || (Node.Set.is_empty ins && Node.Set.equal lst nbrs)
      in
      let bad =
        Node.Set.fold
          (fun u acc ->
            match acc with
            | Some _ -> acc
            | None -> if ok u then None else Some u)
          (Config.nodes config) None
      in
      (match bad with
      | None -> Ok ()
      | Some u ->
          Error
            (Format.asprintf "node %a violates the reverse relation" Node.pp u))

let r_reverse config =
  {
    Simulation.name = "R-reverse (NewPR -> OneStepPR)";
    relation = r_reverse_rel config;
    initial_b = One_step_pr.initial config;
    correspond =
      (fun (t : New_pr.state) (New_pr.Reverse w) _s ->
        if New_pr.is_dummy_step config t w then []
        else [ One_step_pr.Reverse w ]);
  }

let check_r_prime ?max_steps ~scheduler config =
  let exec =
    Lr_automata.Execution.run ?max_steps ~scheduler (Pr.automaton config)
  in
  Simulation.check_guided ~b:(One_step_pr.automaton config) (r_prime config)
    exec

let check_r ?max_steps ~scheduler config =
  let exec =
    Lr_automata.Execution.run ?max_steps ~scheduler
      (One_step_pr.automaton config)
  in
  Simulation.check_guided ~b:(New_pr.automaton config) (r config) exec

let check_r_composed ?max_steps ~scheduler config =
  let exec =
    Lr_automata.Execution.run ?max_steps ~scheduler (Pr.automaton config)
  in
  Simulation.check_guided ~b:(New_pr.automaton config) (r_composed config)
    exec

let check_r_reverse ?max_steps ~scheduler config =
  let exec =
    Lr_automata.Execution.run ?max_steps ~scheduler (New_pr.automaton config)
  in
  Simulation.check_guided ~b:(One_step_pr.automaton config) (r_reverse config)
    exec
