(** Executable checkers for the classic link reversal metatheorems that
    surround the paper — the facts its introduction takes as given.

    Each checker runs the relevant algorithm(s) on one instance and
    returns [Ok ()] or a description of the discrepancy.  They are used
    by the test suite and the experiment harness; none of them is
    expected to ever fail on correct algorithms (that is the point). *)


val confluence :
  ?schedules:int -> ?seed:int -> Config.t -> (unit, string) result
(** Gafni–Bertsekas determinism: every fair execution of PR reaches the
    {e same} quiescent orientation with the {e same} per-node step
    counts.  Compares [schedules] (default 5) different schedulers. *)

val schedule_independent_work :
  ?schedules:int -> ?seed:int -> Config.t -> (unit, string) result
(** The per-node work part of {!confluence} alone. *)

val good_nodes_never_reverse :
  ?seed:int -> Config.t -> (unit, string) result
(** Busch et al.: a node with an initial route to the destination takes
    no steps, under PR and FR alike. *)

val termination_upper_bound : ?seed:int -> Config.t -> (unit, string) result
(** Total work is at most [n_b * (n_b + 1)] for PR on any instance
    (a safe form of the Θ(n_b²) bound: [n_b] bad nodes each step at
    most... the measured run must stay within [n_b² + n_b]), and FR
    within the same envelope.  Violations would contradict the cited
    worst-case analysis. *)

val quiescence_is_destination_orientation :
  ?seed:int -> Config.t -> (unit, string) result
(** On connected instances: the run is quiescent iff every node has a
    route (the correctness property routing needs). *)

val all : ?seed:int -> Config.t -> (string * (unit, string) result) list
(** Every checker above, labelled. *)
