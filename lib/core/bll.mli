(** A generalized {e labeled reversal} automaton in the spirit of the
    Binary Link Labels (BLL) algorithm of Welch–Walter that the paper
    cites as the basis of an earlier acyclicity proof.

    Each node [u] holds a binary label for every incident edge.  When a
    sink takes a step it reverses the incident edges it labels [1] — or
    all incident edges when none is labeled [1] — then resets all its
    own labels to [1].  The [on_reversed] policy says what a neighbour
    does to its label for an edge that was just reversed toward it:

    - [Zero_out]: set it to [0].  With all-ones initial labels this is
      {e exactly} Partial Reversal ([label\[u\]\[v\] = 0] iff
      [v ∈ list\[u\]]) — checked in the test suite.
    - [Keep]: leave it alone.  With all-ones initial labels this is
      Full Reversal.

    Arbitrary initial labelings are allowed; some of them break
    acyclicity, which is the point of BLL's side condition.  The tests
    exhibit such a labeling and verify the monitor catches it. *)

open Lr_graph

type policy = Zero_out | Keep

type state = {
  graph : Digraph.t;
  labels : bool Node.Map.t Node.Map.t;
      (** [labels\[u\]\[v\]]: [u]'s label for edge [{u,v}]; absent =
          [true]. *)
}

type action = Reverse of Node.t

val label : state -> Node.t -> Node.t -> bool
val initial : ?labels:(Node.t -> Node.t -> bool) -> Config.t -> state
(** Default labeling: all ones. *)

val reversal_set : Config.t -> state -> Node.t -> Node.Set.t
(** Incident edges labeled [1], or all neighbours when none is. *)

val apply : policy -> Config.t -> state -> Node.t -> state

val automaton :
  ?labels:(Node.t -> Node.t -> bool) ->
  policy ->
  Config.t ->
  (state, action) Lr_automata.Automaton.t

val algo :
  ?labels:(Node.t -> Node.t -> bool) ->
  policy ->
  Config.t ->
  (state, action) Algo.t

val pp_action : Format.formatter -> action -> unit
