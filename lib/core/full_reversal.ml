open Lr_graph

type state = { graph : Digraph.t }
type action = Reverse of Node.t

let initial config = { graph = config.Config.initial }
let apply s u = { graph = Digraph.reverse_all_at s.graph u }

let is_enabled config s (Reverse u) =
  (not (Node.equal u config.Config.destination)) && Digraph.is_sink s.graph u

let enabled config s =
  Node.Set.remove config.Config.destination (Digraph.sinks s.graph)
  |> Node.Set.elements
  |> List.map (fun u -> Reverse u)

let canonical_key s = Digraph.canonical_key s.graph
let pp_state ppf s = Digraph.pp ppf s.graph
let pp_action ppf (Reverse u) = Format.fprintf ppf "reverse(%a)" Node.pp u

let automaton config =
  Lr_automata.Automaton.make ~name:"FR" ~initial:(initial config)
    ~enabled:(enabled config)
    ~step:(fun s (Reverse u) ->
      if not (is_enabled config s (Reverse u)) then
        invalid_arg "FR.step: reverse(u) not enabled"
      else apply s u)
    ~is_enabled:(is_enabled config)
    ~equal_state:(fun s1 s2 -> Digraph.equal s1.graph s2.graph)
    ~pp_state ~pp_action ()

let algo config =
  {
    Algo.automaton = automaton config;
    graph_of = (fun s -> s.graph);
    actors = (fun (Reverse u) -> Node.Set.singleton u);
  }
