(** Problem instances: the constant data every link reversal algorithm
    shares (Section 2 of the paper).

    A configuration fixes the undirected skeleton [G], the initial
    oriented DAG [G'_init], the destination [D], the initial
    in/out-neighbour sets of every node, and a left-to-right embedding
    of [G'_init] (used by the NewPR acyclicity proof).  None of these
    change while an algorithm runs. *)

open Lr_graph

type t = private {
  initial : Digraph.t;  (** [G'_init]; guaranteed acyclic. *)
  destination : Node.t;
  embedding : Embedding.t;
      (** A topological order of [G'_init]: all initial edges point left
          to right. *)
  in_nbrs : Node.Set.t Node.Map.t;  (** Per node, w.r.t. [G'_init]. *)
  out_nbrs : Node.Set.t Node.Map.t;
}

val make : Digraph.t -> destination:Node.t -> (t, string) result
(** Validates that the graph is acyclic and contains the destination. *)

val make_exn : Digraph.t -> destination:Node.t -> t
(** @raise Invalid_argument when {!make} would return [Error]. *)

val of_instance : Generators.instance -> t
(** @raise Invalid_argument like {!make_exn}. *)

val skeleton : t -> Undirected.t
val nodes : t -> Node.Set.t
val nbrs : t -> Node.t -> Node.Set.t
(** [nbrs_u]: neighbours in the skeleton (constant). *)

val in_nbrs : t -> Node.t -> Node.Set.t
(** [in-nbrs_u]: initial in-neighbours (constant). *)

val out_nbrs : t -> Node.t -> Node.Set.t

val is_left_of : t -> Node.t -> Node.t -> bool
(** In the fixed embedding. *)

val bad_nodes : t -> Node.Set.t
(** Nodes initially lacking a path to the destination ([n_b] counts
    these). *)

val pp : Format.formatter -> t -> unit
