(** Gafni–Bertsekas height-based formulations of Full and Partial
    Reversal (the 1981 originals the paper's Section 1 recalls).

    Every node carries a totally ordered {e height}; the edge [{u,v}] is
    directed from the higher node to the lower one.  A sink raises its
    height:

    - {b FR pair heights} [(a, id)]: [a := 1 + max] over neighbours —
      all incident edges flip outgoing.
    - {b PR triple heights} [(a, b, id)]: [a := 1 + min] over
      neighbours; if some neighbour now shares the new [a], [b] drops
      below the smallest such [b] — exactly the edges to
      minimum-[a] neighbours flip.

    The original acyclicity proof assigns these labels to nodes; the
    paper replaces that argument.  Here the height automata serve as
    independent reference implementations: the test suite checks they
    stay step-for-step equivalent to the list-based {!Pr} and to
    {!Full_reversal}, and that the stored orientation always agrees
    with the height order. *)

open Lr_graph

type fr_height = { fa : int; fid : Node.t }
type pr_height = { pa : int; pb : int; pid : Node.t }

val compare_fr_height : fr_height -> fr_height -> int
(** Lexicographic on [(fa, fid)]. *)

val compare_pr_height : pr_height -> pr_height -> int
(** Lexicographic on [(pa, pb, pid)]. *)

type fr_state = { fgraph : Digraph.t; fheights : fr_height Node.Map.t }
type pr_state = { pgraph : Digraph.t; pheights : pr_height Node.Map.t }
type action = Reverse of Node.t

(** {1 Full reversal} *)

val fr_initial : Config.t -> fr_state
(** Heights realizing [G'_init]: [fa u = n - rank u] in the config's
    embedding. *)

val fr_apply : Config.t -> fr_state -> Node.t -> fr_state
val fr_automaton : Config.t -> (fr_state, action) Lr_automata.Automaton.t
val fr_algo : Config.t -> (fr_state, action) Algo.t

val fr_consistent : fr_state -> bool
(** The stored orientation equals the one induced by the heights. *)

(** {1 Partial reversal} *)

val pr_initial : Config.t -> pr_state
(** [pa u = 0], [pb u = -rank u]. *)

val pr_apply : Config.t -> pr_state -> Node.t -> pr_state
val pr_automaton : Config.t -> (pr_state, action) Lr_automata.Automaton.t
val pr_algo : Config.t -> (pr_state, action) Algo.t
val pr_consistent : pr_state -> bool

val pp_action : Format.formatter -> action -> unit
