open Lr_graph

type ('s, 'a) t = {
  automaton : ('s, 'a) Lr_automata.Automaton.t;
  graph_of : 's -> Digraph.t;
  actors : 'a -> Node.Set.t;
}
