(** [NewPR] — Algorithm 2, the paper's new static formulation of
    Partial Reversal.

    Each node keeps only a step counter.  A sink [u] with even
    [count\[u\]] reverses the edges to its *initial* in-neighbours; with
    odd count, to its initial out-neighbours; the counter is always
    incremented.  When the relevant set is empty (nodes that start as
    sinks or sources) the step is a {e dummy step}: nothing is reversed,
    only the parity flips. *)

open Lr_graph

type parity = Even | Odd

val pp_parity : Format.formatter -> parity -> unit

type state = {
  graph : Digraph.t;
  counts : int Node.Map.t;  (** [count\[u\]]; absent = 0. *)
}

type action = Reverse of Node.t

val initial : Config.t -> state
val count : state -> Node.t -> int
val parity : state -> Node.t -> parity
(** Derived variable of the automaton. *)

val reversal_set : Config.t -> state -> Node.t -> Node.Set.t
(** The set the next [reverse(u)] would reverse: initial in-neighbours
    on even parity, initial out-neighbours on odd. *)

val is_dummy_step : Config.t -> state -> Node.t -> bool
(** Would [reverse(u)] reverse nothing? *)

val apply : Config.t -> state -> Node.t -> state
val automaton : Config.t -> (state, action) Lr_automata.Automaton.t
val algo : Config.t -> (state, action) Algo.t
val equal_state : state -> state -> bool
val canonical_key : state -> string

val state_key : state -> Lr_automata.Statekey.t
(** Hashed compact key (orientation bitset + non-zero counters); see
    {!Pr.state_key}. *)

val pp_state : Format.formatter -> state -> unit
val pp_action : Format.formatter -> action -> unit
