(** The paper's simulation relations (Section 5), as executable guided
    simulations.

    - [r_prime]: the relation [R'] from [PR] to [OneStepPR] — equal
      oriented graphs and equal lists; a [reverse(S)] step corresponds
      to one [reverse(u)] per member of [S] (Lemma 5.1).
    - [r]: the relation [R] from [OneStepPR] to [NewPR] — equal graphs
      and the parity/list containment conditions; a [reverse(w)] step
      corresponds to one [NewPR] step, or two when [list\[w\] = nbrs_w]
      (a dummy step followed by a real one; Lemma 5.3).
    - [r_composed]: the composition, directly relating [PR] to [NewPR]
      (the route Theorem 5.5 takes).
    - [r_reverse]: the {e future-work} direction from the paper's
      conclusion: a relation from [NewPR] back to [OneStepPR].  Dummy
      steps correspond to the empty sequence, so the relation extends
      [R⁻¹] with two "mid-dummy" disjuncts for initial sources/sinks
      whose parity has flipped but whose list is still full. *)

open Lr_graph
module Simulation = Lr_automata.Simulation

val graphs_equal : Digraph.t -> Digraph.t -> (unit, string) result

val r_prime :
  Config.t ->
  (Pr.state, Pr.action, One_step_pr.state, One_step_pr.action)
  Simulation.guided

val r :
  Config.t ->
  (One_step_pr.state, One_step_pr.action, New_pr.state, New_pr.action)
  Simulation.guided

val r_composed :
  Config.t ->
  (Pr.state, Pr.action, New_pr.state, New_pr.action) Simulation.guided

val r_reverse :
  Config.t ->
  (New_pr.state, New_pr.action, One_step_pr.state, One_step_pr.action)
  Simulation.guided

(** {1 Convenience checkers}

    Each runs the left automaton with the given scheduler and verifies
    the guided simulation along the whole execution, returning the
    matching right-hand execution. *)

val check_r_prime :
  ?max_steps:int ->
  scheduler:(Pr.state, Pr.action) Lr_automata.Scheduler.t ->
  Config.t ->
  ((One_step_pr.state, One_step_pr.action) Lr_automata.Execution.t, string)
  result

val check_r :
  ?max_steps:int ->
  scheduler:(One_step_pr.state, One_step_pr.action) Lr_automata.Scheduler.t ->
  Config.t ->
  ((New_pr.state, New_pr.action) Lr_automata.Execution.t, string) result

val check_r_composed :
  ?max_steps:int ->
  scheduler:(Pr.state, Pr.action) Lr_automata.Scheduler.t ->
  Config.t ->
  ((New_pr.state, New_pr.action) Lr_automata.Execution.t, string) result

val check_r_reverse :
  ?max_steps:int ->
  scheduler:(New_pr.state, New_pr.action) Lr_automata.Scheduler.t ->
  Config.t ->
  ((One_step_pr.state, One_step_pr.action) Lr_automata.Execution.t, string)
  result
