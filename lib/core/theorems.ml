open Lr_graph
module A = Lr_automata

let schedulers ~seed k =
  let base =
    [
      (fun () -> A.Scheduler.first ());
      (fun () -> A.Scheduler.last ());
      (fun () ->
        A.Scheduler.round_robin
          ~index:(fun (One_step_pr.Reverse u) -> u)
          ());
    ]
  in
  let rec randoms i =
    if i >= k then []
    else
      (fun () -> A.Scheduler.random (Random.State.make [| 0x7e; seed; i |]))
      :: randoms (i + 1)
  in
  let all = base @ randoms (List.length base) in
  List.filteri (fun i _ -> i < k) all

let run_pr config sched =
  Executor.run ~scheduler:(sched ()) ~destination:config.Config.destination
    (One_step_pr.algo config)

let confluence ?(schedules = 5) ?(seed = 0) config =
  match schedulers ~seed schedules with
  | [] -> Ok ()
  | first :: rest ->
      let reference = run_pr config first in
      let mismatch =
        List.find_map
          (fun sched ->
            let out = run_pr config sched in
            if not (Digraph.equal out.Executor.final_graph reference.Executor.final_graph)
            then Some "final orientations differ between schedules"
            else if
              not
                (Node.Map.equal Int.equal out.Executor.node_steps
                   reference.Executor.node_steps)
            then Some "per-node step counts differ between schedules"
            else None)
          rest
      in
      (match mismatch with None -> Ok () | Some m -> Error m)

let schedule_independent_work ?(schedules = 5) ?(seed = 0) config =
  match schedulers ~seed schedules with
  | [] -> Ok ()
  | first :: rest ->
      let reference = (run_pr config first).Executor.node_steps in
      if
        List.for_all
          (fun sched ->
            Node.Map.equal Int.equal (run_pr config sched).Executor.node_steps
              reference)
          rest
      then Ok ()
      else Error "per-node work depends on the schedule"

let good_nodes_never_reverse ?(seed = 0) config =
  let good =
    Node.Set.remove config.Config.destination
      (Digraph.reaches config.Config.initial config.Config.destination)
  in
  let check name (out : Executor.outcome) =
    match
      Node.Set.find_first_opt
        (fun u -> Node.Map.find_or ~default:0 u out.Executor.node_steps > 0)
        good
    with
    | None -> Ok ()
    | Some u ->
        Error (Format.asprintf "%s: good node %a reversed" name Node.pp u)
  in
  let rng () = A.Scheduler.random (Random.State.make [| 0x9d; seed |]) in
  match
    check "PR"
      (Executor.run ~scheduler:(rng ())
         ~destination:config.Config.destination (One_step_pr.algo config))
  with
  | Error _ as e -> e
  | Ok () ->
      check "FR"
        (Executor.run ~scheduler:(rng ())
           ~destination:config.Config.destination (Full_reversal.algo config))

let termination_upper_bound ?(seed = 0) config =
  let nb = Node.Set.cardinal (Config.bad_nodes config) in
  (* A safe envelope of the cited Θ(n_b²) worst case. *)
  let envelope = (2 * nb * (nb + 1)) + 1 in
  let rng () = A.Scheduler.random (Random.State.make [| 0xb0; seed |]) in
  let check name algo =
    let out =
      Executor.run ~max_steps:(envelope + 10) ~scheduler:(rng ())
        ~destination:config.Config.destination algo
    in
    if not out.Executor.quiescent then
      Error (Printf.sprintf "%s: still running after %d steps" name envelope)
    else if out.Executor.total_node_steps > envelope then
      Error
        (Printf.sprintf "%s: %d steps exceeds the %d envelope" name
           out.Executor.total_node_steps envelope)
    else Ok ()
  in
  match check "PR" (One_step_pr.algo config) with
  | Error _ as e -> e
  | Ok () -> check "FR" (Full_reversal.algo config)

let quiescence_is_destination_orientation ?(seed = 0) config =
  if not (Lr_graph.Undirected.is_connected (Config.skeleton config)) then
    Ok () (* the equivalence only holds on connected instances *)
  else
    let out =
      Executor.run
        ~scheduler:(A.Scheduler.random (Random.State.make [| 0x0e; seed |]))
        ~destination:config.Config.destination (One_step_pr.algo config)
    in
    if Bool.equal out.Executor.quiescent out.Executor.destination_oriented
    then Ok ()
    else Error "quiescent but not destination-oriented (or vice versa)"

let all ?seed config =
  [
    ("confluence", confluence ?seed config);
    ("schedule-independent work", schedule_independent_work ?seed config);
    ("good nodes never reverse", good_nodes_never_reverse ?seed config);
    ("termination within the quadratic envelope",
      termination_upper_bound ?seed config);
    ("quiescence = destination orientation",
      quiescence_is_destination_orientation ?seed config);
  ]
