(** Machine-checkable statements of the paper's invariants, corollaries
    and theorems.

    Each value is an {!Lr_automata.Invariant.t} whose [check] returns a
    human-readable description of the first violation.  The test suite
    and benchmark harness apply them to every state of random
    executions; the model checker applies them to {e every reachable
    state} of small instances, which is the exact quantification the
    paper's statements use. *)

open Lr_graph

(** {1 Generic} *)

val acyclic : graph_of:('s -> Digraph.t) -> 's Lr_automata.Invariant.t
(** Theorem 4.3 / 5.5: the underlying directed graph is acyclic. *)

val skeleton_preserved :
  Config.t -> graph_of:('s -> Digraph.t) -> 's Lr_automata.Invariant.t
(** The system-model assumption: [G] never changes, only orientations. *)

(** {1 PR (Section 3)} *)

val pr_inv_3_1 : Config.t -> Pr.state Lr_automata.Invariant.t
(** Invariant 3.1: [dir\[u,v\] = in] iff [dir\[v,u\] = out], for every
    skeleton edge.  (Our orientation representation discharges this by
    construction; the executable check confirms both views are
    consistent and every skeleton edge is oriented.) *)

val pr_inv_3_2 : Config.t -> Pr.state Lr_automata.Invariant.t
(** Invariant 3.2: for every node exactly one of the two list
    characterizations holds. *)

val pr_cor_3_3 : Config.t -> Pr.state Lr_automata.Invariant.t
(** Corollary 3.3: [list\[u\] ⊆ in-nbrs_u] or [list\[u\] ⊆ out-nbrs_u]. *)

val pr_cor_3_4 : Config.t -> Pr.state Lr_automata.Invariant.t
(** Corollary 3.4: at a sink, [list\[u\] = in-nbrs_u] or
    [= out-nbrs_u]. *)

val pr_all : Config.t -> Pr.state Lr_automata.Invariant.t
(** Conjunction of all PR invariants plus acyclicity. *)

(** {1 NewPR (Section 4)} *)

val newpr_inv_4_1 : Config.t -> New_pr.state Lr_automata.Invariant.t
(** Invariant 4.1: equal even parities ⇒ the shared edge points left to
    right in the fixed embedding; equal odd parities ⇒ right to left. *)

val newpr_inv_4_2 : Config.t -> New_pr.state Lr_automata.Invariant.t
(** Invariant 4.2 (a)–(d) on neighbouring step counts and directions. *)

val newpr_all : Config.t -> New_pr.state Lr_automata.Invariant.t
