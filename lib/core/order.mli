(** Reusable order combinators.

    The repo had grown several hand-rolled lexicographic "triple
    compares" — PR/FR heights [(pa, pb, pid)], geographic recovery
    heights [(level, dist², id)], union seniority [(destination,
    degree, id)] — each open-coded as nested [match]es.  This module
    factors the pattern once, in the style of menhir's
    [partialOrder.mli]: a four-valued {!ordering} (partial orders may
    answer {e incomparable}), module types for total and partial
    orders, and functors that build lexicographic and pointwise
    products.

    Two styles are offered on purpose:

    - {e value-level} combinators ({!lex2}, {!lex3}) that chain already
      computed [int] comparisons — zero allocation, for hot paths over
      flat arrays;
    - {e functors} ({!Lex2}, {!Lex3}, {!Pointwise}) that build ordered
      modules over tuples — for call sites where the order itself is
      the thing being named and tested. *)

(** Outcome of a (possibly partial) comparison.  [Ic] — incomparable —
    never arises from a total order. *)
type ordering = Lt | Eq | Gt | Ic

val of_compare : int -> ordering
(** Embed a total [compare] result: negative ↦ [Lt], zero ↦ [Eq],
    positive ↦ [Gt]. *)

val le : ordering -> bool
(** [le o] iff [o] is [Lt] or [Eq]. *)

val pp : Format.formatter -> ordering -> unit

val lex2 : int -> int -> int
(** [lex2 c1 c2] is the lexicographic chain of two comparison results:
    [c1] if nonzero, else [c2].  Both arguments are evaluated — intended
    for cheap (int) component comparisons on hot paths. *)

val lex3 : int -> int -> int -> int
(** Three-component chain, same contract as {!lex2}. *)

(** A total order. *)
module type TOTAL = sig
  type t

  val compare : t -> t -> int
end

(** A partial order: [compare] may answer [Ic]. *)
module type PARTIAL = sig
  type t

  val compare : t -> t -> ordering
end

module Int : TOTAL with type t = int

module Rev (A : TOTAL) : TOTAL with type t = A.t
(** The dual order: [Rev(A).compare x y = A.compare y x]. *)

module Lex2 (A : TOTAL) (B : TOTAL) : TOTAL with type t = A.t * B.t
module Lex3 (A : TOTAL) (B : TOTAL) (C : TOTAL) :
  TOTAL with type t = A.t * B.t * C.t

module Total (A : TOTAL) : PARTIAL with type t = A.t
(** Every total order is a partial one (never answers [Ic]). *)

module Pointwise (A : PARTIAL) (B : PARTIAL) :
  PARTIAL with type t = A.t * B.t
(** The product order: [(a1, b1) <= (a2, b2)] iff both components are;
    conflicting components are incomparable. *)
