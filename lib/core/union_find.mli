(** Growable flat-array union-find with seniority-ranked
    representatives and per-class split epochs.

    This is the component index behind {e Fast_maintenance}: merges
    (link-up) are O(α) unions, membership is O(α) finds, and splits
    (link-down) — which classic union-find cannot express — are handled
    by {e re-identification}: the detached members {!retire} their old
    slots and move to {!fresh} ones.  The retired slots stay behind as
    {e ghosts}, still wired into the old class's parent tree, so
    surviving members whose find paths run through them keep resolving
    to the right representative without any repair sweep.

    Representatives are chosen by {e seniority} (cf. the
    keelung-compiler [Seniority] ranking): {!union} keeps the root with
    the higher rank (ties: the lower slot), so the most stable element
    — in the routing engine: the shard destination, then the
    highest-degree node, then the lowest id — anchors its class and
    per-node caches keyed near it survive merges untouched.

    Each class root also carries an {e epoch} and a {e dirty} bit for
    lazy split handling: a caller that cannot (or chooses not to)
    resolve a disconnection immediately calls {!mark_dirty}, turning
    the class into a sound {e over-approximation} of connectivity —
    membership of a dirty class means "was connected when last exact".
    Queries against a clean class are exact; callers repair a dirty
    class (retire/fresh of the side they can enumerate, then
    {!clear_dirty}) only when exactness starts to matter.  The epoch
    counts every knowledge change (retire, dirty mark, clear), so
    validators can cheaply assert "unchanged since I last looked". *)

type t

val create : int -> t
(** [create n] is [n] singleton classes on slots [0 .. n-1], every
    rank 0, every epoch 0, all clean.  @raise Invalid_argument when
    [n < 0]. *)

val length : t -> int
(** Slots allocated so far (initial [n] plus every {!fresh}).  Grows
    monotonically — callers watching for compaction pressure compare
    this against their live-element count. *)

val find : t -> int -> int
(** Representative slot of the class of a slot (path halving,
    amortized O(α)). *)

val same : t -> int -> int -> bool
(** [same t a b] iff the two slots are in one class. *)

val size : t -> int -> int
(** Live members of the slot's class (retired ghosts not counted). *)

val rank : t -> int -> int
(** The slot's own seniority rank (meaningful at representatives). *)

val set_rank : t -> int -> int -> unit
(** Update a slot's seniority rank (e.g. after a degree change).
    Affects only future {!union} decisions. *)

val union : t -> int -> int -> int
(** Merge two classes and return the surviving representative: the
    root of higher rank (ties: lower slot).  Sizes add, the epoch is
    the max of the two, and dirtiness is inherited from either side.
    Returns the common root unchanged when already joined. *)

val fresh : t -> rank:int -> int
(** Allocate a new singleton slot (clean, epoch 0) with the given
    rank.  Backing arrays grow by doubling. *)

val retire : t -> int -> unit
(** Remove one live member from the slot's class: its size drops by
    one and its epoch advances.  The slot itself becomes a ghost — it
    keeps forwarding [find] traffic through the old tree, but the
    caller must never use it as an identity again (pair with {!fresh}
    to give the element its next identity). *)

val mark_dirty : t -> int -> unit
(** Mark the slot's class dirty — its membership is now an
    over-approximation (a disconnection happened inside it that has
    not been resolved) — and advance its epoch. *)

val dirty : t -> int -> bool
(** Whether the slot's class is dirty. *)

val clear_dirty : t -> int -> unit
(** Declare the slot's class exact again (after the caller repaired
    it) and advance its epoch. *)

val epoch : t -> int -> int
(** The class's knowledge epoch: bumped by {!retire}, {!mark_dirty}
    and {!clear_dirty}, inherited as the max across {!union}. *)
