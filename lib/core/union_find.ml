type t = {
  mutable parent : int array;
  (* Valid at roots only: *)
  mutable size_ : int array;
  mutable epoch_ : int array;
  mutable dirty_ : bool array;
  (* Valid at every live slot (consulted at roots by [union]): *)
  mutable rank_ : int array;
  mutable len : int;
}

let create n =
  if n < 0 then invalid_arg "Union_find.create: negative size";
  let cap = max n 1 in
  {
    parent = Array.init cap (fun i -> i);
    size_ = Array.make cap 1;
    epoch_ = Array.make cap 0;
    dirty_ = Array.make cap false;
    rank_ = Array.make cap 0;
    len = n;
  }

let length t = t.len

let find t s =
  if s < 0 || s >= t.len then invalid_arg "Union_find.find: bad slot";
  let s = ref s in
  while t.parent.(!s) <> !s do
    (* Path halving: point at the grandparent and hop there. *)
    let g = t.parent.(t.parent.(!s)) in
    t.parent.(!s) <- g;
    s := g
  done;
  !s

let same t a b = find t a = find t b
let size t s = t.size_.(find t s)
let rank t s = t.rank_.(s)
let set_rank t s r = t.rank_.(s) <- r

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else begin
    (* Seniority: the higher rank anchors the merged class; ties go to
       the lower (older) slot. *)
    let senior, junior =
      if Order.lex2 (Order.Int.compare t.rank_.(ra) t.rank_.(rb))
           (Order.Int.compare rb ra)
         > 0
      then (ra, rb)
      else (rb, ra)
    in
    t.parent.(junior) <- senior;
    t.size_.(senior) <- t.size_.(senior) + t.size_.(junior);
    if t.epoch_.(junior) > t.epoch_.(senior) then
      t.epoch_.(senior) <- t.epoch_.(junior);
    if t.dirty_.(junior) then t.dirty_.(senior) <- true;
    senior
  end

let ensure t cap =
  let old = Array.length t.parent in
  if cap > old then begin
    let ncap = max cap (2 * old) in
    let grow a def =
      let b = Array.make ncap def in
      Array.blit a 0 b 0 old;
      b
    in
    t.parent <- grow t.parent 0;
    t.size_ <- grow t.size_ 0;
    t.epoch_ <- grow t.epoch_ 0;
    t.dirty_ <- grow t.dirty_ false;
    t.rank_ <- grow t.rank_ 0
  end

let fresh t ~rank =
  ensure t (t.len + 1);
  let s = t.len in
  t.len <- t.len + 1;
  t.parent.(s) <- s;
  t.size_.(s) <- 1;
  t.epoch_.(s) <- 0;
  t.dirty_.(s) <- false;
  t.rank_.(s) <- rank;
  s

let retire t s =
  let r = find t s in
  t.size_.(r) <- t.size_.(r) - 1;
  t.epoch_.(r) <- t.epoch_.(r) + 1

let mark_dirty t s =
  let r = find t s in
  t.dirty_.(r) <- true;
  t.epoch_.(r) <- t.epoch_.(r) + 1

let dirty t s = t.dirty_.(find t s)

let clear_dirty t s =
  let r = find t s in
  t.dirty_.(r) <- false;
  t.epoch_.(r) <- t.epoch_.(r) + 1

let epoch t s = t.epoch_.(find t s)
