open Lr_graph

type pr_mutant = Reverse_listed | Keep_list | No_record
type newpr_mutant = Never_flip | Start_odd

let pr_mutant_name = function
  | Reverse_listed -> "reverse-listed"
  | Keep_list -> "keep-list"
  | No_record -> "no-record"

let newpr_mutant_name = function
  | Never_flip -> "never-flip"
  | Start_odd -> "start-odd"

let apply_pr mutant config (s : Pr.state) u =
  let nbrs = Config.nbrs config u in
  let lst = Pr.list_of s u in
  let to_reverse =
    match mutant with
    | Reverse_listed -> if Node.Set.is_empty lst then nbrs else lst
    | Keep_list | No_record ->
        if Node.Set.equal lst nbrs then nbrs else Node.Set.diff nbrs lst
  in
  let graph = Digraph.reverse_toward s.Pr.graph u to_reverse in
  let lists =
    match mutant with
    | No_record -> s.Pr.lists
    | Reverse_listed | Keep_list ->
        Node.Set.fold
          (fun v lists ->
            let lv = Node.Map.find_or ~default:Node.Set.empty v lists in
            Node.Map.add v (Node.Set.add u lv) lists)
          to_reverse s.Pr.lists
  in
  let lists =
    match mutant with
    | Keep_list -> lists
    | Reverse_listed | No_record -> Node.Map.add u Node.Set.empty lists
  in
  { Pr.graph; lists }

let is_enabled config (s : Pr.state) (One_step_pr.Reverse u) =
  (not (Node.equal u config.Config.destination))
  && Digraph.is_sink s.Pr.graph u

let enabled config (s : Pr.state) =
  Node.Set.remove config.Config.destination (Digraph.sinks s.Pr.graph)
  |> Node.Set.elements
  |> List.map (fun u -> One_step_pr.Reverse u)

let pr_automaton mutant config =
  Lr_automata.Automaton.make
    ~name:("PR-mutant-" ^ pr_mutant_name mutant)
    ~initial:(Pr.initial config) ~enabled:(enabled config)
    ~step:(fun s (One_step_pr.Reverse u) ->
      if not (is_enabled config s (One_step_pr.Reverse u)) then
        invalid_arg "Mutants.step: not enabled"
      else apply_pr mutant config s u)
    ~is_enabled:(is_enabled config) ~equal_state:Pr.equal_state
    ~pp_state:Pr.pp_state ~pp_action:One_step_pr.pp_action ()

let apply_newpr mutant config (s : New_pr.state) u =
  let set =
    match mutant with
    | Never_flip -> Config.in_nbrs config u
    | Start_odd -> (
        (* parity shifted by one: odd counts reverse in-nbrs *)
        match New_pr.parity s u with
        | New_pr.Even -> Config.out_nbrs config u
        | New_pr.Odd -> Config.in_nbrs config u)
  in
  let graph = Digraph.reverse_toward s.New_pr.graph u set in
  let counts =
    match mutant with
    | Never_flip -> s.New_pr.counts
    | Start_odd -> Node.Map.add u (New_pr.count s u + 1) s.New_pr.counts
  in
  { New_pr.graph; counts }

let np_is_enabled config (s : New_pr.state) (New_pr.Reverse u) =
  (not (Node.equal u config.Config.destination))
  && Digraph.is_sink s.New_pr.graph u

let np_enabled config (s : New_pr.state) =
  Node.Set.remove config.Config.destination (Digraph.sinks s.New_pr.graph)
  |> Node.Set.elements
  |> List.map (fun u -> New_pr.Reverse u)

let newpr_automaton mutant config =
  Lr_automata.Automaton.make
    ~name:("NewPR-mutant-" ^ newpr_mutant_name mutant)
    ~initial:(New_pr.initial config) ~enabled:(np_enabled config)
    ~step:(fun s (New_pr.Reverse u) ->
      if not (np_is_enabled config s (New_pr.Reverse u)) then
        invalid_arg "Mutants.step: not enabled"
      else apply_newpr mutant config s u)
    ~is_enabled:(np_is_enabled config) ~equal_state:New_pr.equal_state
    ~pp_state:New_pr.pp_state ~pp_action:New_pr.pp_action ()
