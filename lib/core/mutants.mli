(** Deliberately broken link reversal variants — mutation tests for the
    paper's invariants.

    A proof reproduction is only convincing if its executable invariants
    can {e fail}: each mutant below miscodes PR or NewPR in a plausible
    way, and the test suite shows that the Section 3/4 invariant
    checkers (or the acyclicity monitor) reject it on some small
    instance, while accepting the correct algorithms everywhere. *)


type pr_mutant =
  | Reverse_listed
      (** Reverses the edges {e in} [list\[u\]] instead of their
          complement — the classic inversion bug. *)
  | Keep_list
      (** Forgets [list\[u\] := ∅] after the reversal. *)
  | No_record
      (** Neighbours never record reversals, so every step reverses all
          edges (the algorithm silently degrades to Full Reversal and
          Invariant 3.2's list characterization breaks). *)

type newpr_mutant =
  | Never_flip  (** [count\[u\]] is never incremented: always reverses
                    the initial in-neighbours. *)
  | Start_odd  (** Counts start at 1: out-neighbours reverse first. *)

val pr_automaton :
  pr_mutant -> Config.t -> (Pr.state, One_step_pr.action) Lr_automata.Automaton.t

val newpr_automaton :
  newpr_mutant -> Config.t -> (New_pr.state, New_pr.action) Lr_automata.Automaton.t

val pr_mutant_name : pr_mutant -> string
val newpr_mutant_name : newpr_mutant -> string
