(** [OneStepPR] — Algorithm 3 of the paper: Partial Reversal restricted
    to a single node per step.  States are shared with {!Pr}; only the
    action signature differs ([reverse(u)] instead of [reverse(S)]).
    Used as the intermediate automaton in the simulation chain
    PR → OneStepPR → NewPR. *)

open Lr_graph

type state = Pr.state
type action = Reverse of Node.t  (** The paper's [reverse(u)]. *)

val initial : Config.t -> state
val apply : Config.t -> state -> Node.t -> state
val automaton : Config.t -> (state, action) Lr_automata.Automaton.t
val algo : Config.t -> (state, action) Algo.t
val pp_action : Format.formatter -> action -> unit
