open Lr_graph
module Invariant = Lr_automata.Invariant

let acyclic ~graph_of =
  Invariant.make ~name:"acyclic (Thm 4.3/5.5)" (fun s ->
      match Digraph.find_cycle (graph_of s) with
      | None -> Ok ()
      | Some cycle ->
          Error
            (Format.asprintf "cycle %a"
               (Format.pp_print_list
                  ~pp_sep:(fun ppf () -> Format.fprintf ppf " -> ")
                  Node.pp)
               cycle))

let skeleton_preserved config ~graph_of =
  Invariant.make ~name:"skeleton preserved" (fun s ->
      if Undirected.equal (Digraph.skeleton (graph_of s)) (Config.skeleton config)
      then Ok ()
      else Error "undirected skeleton changed")

(* Every skeleton edge is oriented and the two per-endpoint views agree:
   dir[u,v] = in iff dir[v,u] = out. *)
let pr_inv_3_1 config =
  Invariant.make ~name:"Invariant 3.1" (fun (s : Pr.state) ->
      let g = s.Pr.graph in
      let bad =
        Undirected.fold_edges
          (fun e acc ->
            match acc with
            | Some _ -> acc
            | None ->
                let u, v = Edge.endpoints e in
                let duv = Digraph.dir g u v and dvu = Digraph.dir g v u in
                if Digraph.direction_equal duv (Digraph.flip dvu) then None
                else Some (u, v))
          (Config.skeleton config) None
      in
      match bad with
      | None -> Ok ()
      | Some (u, v) ->
          Error (Format.asprintf "edge {%a,%a} has inconsistent views" Node.pp u Node.pp v))

(* Invariant 3.2, part 1 for node [u]: all initial out-neighbours have
   incoming edges, and list[u] = the initial in-neighbours whose edge is
   currently incoming. *)
let part1 config (s : Pr.state) u =
  let g = s.Pr.graph in
  Node.Set.for_all
    (fun w -> Digraph.direction_equal (Digraph.dir g u w) Digraph.In)
    (Config.out_nbrs config u)
  && Node.Set.equal (Pr.list_of s u)
       (Node.Set.filter
          (fun v -> Digraph.direction_equal (Digraph.dir g u v) Digraph.In)
          (Config.in_nbrs config u))

let part2 config (s : Pr.state) u =
  let g = s.Pr.graph in
  Node.Set.for_all
    (fun w -> Digraph.direction_equal (Digraph.dir g u w) Digraph.In)
    (Config.in_nbrs config u)
  && Node.Set.equal (Pr.list_of s u)
       (Node.Set.filter
          (fun v -> Digraph.direction_equal (Digraph.dir g u v) Digraph.In)
          (Config.out_nbrs config u))

let pr_inv_3_2 config =
  Invariant.make ~name:"Invariant 3.2" (fun (s : Pr.state) ->
      let bad =
        Node.Set.fold
          (fun u acc ->
            match acc with
            | Some _ -> acc
            | None -> (
                match (part1 config s u, part2 config s u) with
                | true, false | false, true -> None
                | true, true -> Some (u, "both parts hold")
                | false, false -> Some (u, "neither part holds")))
          (Config.nodes config) None
      in
      match bad with
      | None -> Ok ()
      | Some (u, what) ->
          Error (Format.asprintf "node %a: %s" Node.pp u what))

let pr_cor_3_3 config =
  Invariant.make ~name:"Corollary 3.3" (fun (s : Pr.state) ->
      let bad =
        Node.Set.fold
          (fun u acc ->
            match acc with
            | Some _ -> acc
            | None ->
                let lst = Pr.list_of s u in
                if
                  Node.Set.subset lst (Config.in_nbrs config u)
                  || Node.Set.subset lst (Config.out_nbrs config u)
                then None
                else Some u)
          (Config.nodes config) None
      in
      match bad with
      | None -> Ok ()
      | Some u ->
          Error
            (Format.asprintf "list[%a] is in neither in-nbrs nor out-nbrs"
               Node.pp u))

let pr_cor_3_4 config =
  Invariant.make ~name:"Corollary 3.4" (fun (s : Pr.state) ->
      let g = s.Pr.graph in
      let bad =
        Node.Set.fold
          (fun u acc ->
            match acc with
            | Some _ -> acc
            | None ->
                if not (Digraph.is_sink g u) then None
                else
                  let lst = Pr.list_of s u in
                  if
                    Node.Set.equal lst (Config.in_nbrs config u)
                    || Node.Set.equal lst (Config.out_nbrs config u)
                  then None
                  else Some u)
          (Config.nodes config) None
      in
      match bad with
      | None -> Ok ()
      | Some u ->
          Error
            (Format.asprintf
               "sink %a has list equal to neither in-nbrs nor out-nbrs"
               Node.pp u))

let pr_all config =
  Invariant.all ~name:"PR invariants"
    [
      pr_inv_3_1 config;
      pr_inv_3_2 config;
      pr_cor_3_3 config;
      pr_cor_3_4 config;
      skeleton_preserved config ~graph_of:(fun (s : Pr.state) -> s.Pr.graph);
      acyclic ~graph_of:(fun (s : Pr.state) -> s.Pr.graph);
    ]

(* Direction of edge {u,v} in the fixed embedding: true when it
   currently points from the left endpoint to the right one. *)
let points_left_to_right config g u v =
  let left, right = if Config.is_left_of config u v then (u, v) else (v, u) in
  Digraph.direction_equal (Digraph.dir g left right) Digraph.Out

let newpr_inv_4_1 config =
  Invariant.make ~name:"Invariant 4.1" (fun (s : New_pr.state) ->
      let g = s.New_pr.graph in
      let check e =
        let u, v = Edge.endpoints e in
        match (New_pr.parity s u, New_pr.parity s v) with
        | New_pr.Even, New_pr.Even ->
            if points_left_to_right config g u v then None
            else Some (u, v, "both even but edge points right to left")
        | New_pr.Odd, New_pr.Odd ->
            if points_left_to_right config g u v then
              Some (u, v, "both odd but edge points left to right")
            else None
        | New_pr.Even, New_pr.Odd | New_pr.Odd, New_pr.Even -> None
      in
      let bad =
        Undirected.fold_edges
          (fun e acc -> match acc with Some _ -> acc | None -> check e)
          (Config.skeleton config) None
      in
      match bad with
      | None -> Ok ()
      | Some (u, v, what) ->
          Error (Format.asprintf "edge {%a,%a}: %s" Node.pp u Node.pp v what))

let newpr_inv_4_2 config =
  Invariant.make ~name:"Invariant 4.2" (fun (s : New_pr.state) ->
      let g = s.New_pr.graph in
      let check e =
        let u, v = Edge.endpoints e in
        let cu = New_pr.count s u and cv = New_pr.count s v in
        (* (a), symmetric in u and v. *)
        if abs (cu - cv) > 1 then
          Some
            (Format.asprintf "(a): count[%a]=%d, count[%a]=%d" Node.pp u cu
               Node.pp v cv)
        else
          let part_bc x cx y cy =
            (* (b): count[x] odd and y right of x => count[y] = count[x];
               (c): count[x] even and y left of x => count[y] = count[x]. *)
            if cx mod 2 = 1 && Config.is_left_of config x y && cy <> cx then
              Some
                (Format.asprintf "(b): count[%a]=%d odd, %a right, count=%d"
                   Node.pp x cx Node.pp y cy)
            else if cx mod 2 = 0 && Config.is_left_of config y x && cy <> cx
            then
              Some
                (Format.asprintf "(c): count[%a]=%d even, %a left, count=%d"
                   Node.pp x cx Node.pp y cy)
            else None
          in
          let part_d x cx y cy =
            if
              cx > cy
              && not (Digraph.direction_equal (Digraph.dir g x y) Digraph.Out)
            then
              Some
                (Format.asprintf
                   "(d): count[%a]=%d > count[%a]=%d but edge not %a->%a"
                   Node.pp x cx Node.pp y cy Node.pp x Node.pp y)
            else None
          in
          let ( <|> ) a b = match a with Some _ -> a | None -> b () in
          part_bc u cu v cv
          <|> fun () ->
          part_bc v cv u cu
          <|> fun () -> part_d u cu v cv <|> fun () -> part_d v cv u cu
      in
      let bad =
        Undirected.fold_edges
          (fun e acc -> match acc with Some _ -> acc | None -> check e)
          (Config.skeleton config) None
      in
      match bad with None -> Ok () | Some what -> Error what)

let newpr_all config =
  Invariant.all ~name:"NewPR invariants"
    [
      newpr_inv_4_1 config;
      newpr_inv_4_2 config;
      skeleton_preserved config ~graph_of:(fun (s : New_pr.state) ->
          s.New_pr.graph);
      acyclic ~graph_of:(fun (s : New_pr.state) -> s.New_pr.graph);
    ]
