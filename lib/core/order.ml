type ordering = Lt | Eq | Gt | Ic

let of_compare c = if c < 0 then Lt else if c > 0 then Gt else Eq
let le = function Lt | Eq -> true | Gt | Ic -> false

let pp ppf o =
  Format.pp_print_string ppf
    (match o with Lt -> "<" | Eq -> "=" | Gt -> ">" | Ic -> "<>")

let lex2 c1 c2 = if c1 <> 0 then c1 else c2
let lex3 c1 c2 c3 = if c1 <> 0 then c1 else if c2 <> 0 then c2 else c3

module type TOTAL = sig
  type t

  val compare : t -> t -> int
end

module type PARTIAL = sig
  type t

  val compare : t -> t -> ordering
end

module Int = Stdlib.Int

module Rev (A : TOTAL) = struct
  type t = A.t

  let compare x y = A.compare y x
end

module Lex2 (A : TOTAL) (B : TOTAL) = struct
  type t = A.t * B.t

  let compare (a1, b1) (a2, b2) = lex2 (A.compare a1 a2) (B.compare b1 b2)
end

module Lex3 (A : TOTAL) (B : TOTAL) (C : TOTAL) = struct
  type t = A.t * B.t * C.t

  let compare (a1, b1, c1) (a2, b2, c2) =
    lex3 (A.compare a1 a2) (B.compare b1 b2) (C.compare c1 c2)
end

module Total (A : TOTAL) = struct
  type t = A.t

  let compare x y = of_compare (A.compare x y)
end

module Pointwise (A : PARTIAL) (B : PARTIAL) = struct
  type t = A.t * B.t

  let compare (a1, b1) (a2, b2) =
    match (A.compare a1 a2, B.compare b1 b2) with
    | Eq, o | o, Eq -> o
    | Lt, Lt -> Lt
    | Gt, Gt -> Gt
    | Lt, Gt | Gt, Lt | Ic, _ | _, Ic -> Ic
end
