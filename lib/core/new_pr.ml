open Lr_graph

type parity = Even | Odd

let pp_parity ppf = function
  | Even -> Format.pp_print_string ppf "even"
  | Odd -> Format.pp_print_string ppf "odd"

type state = { graph : Digraph.t; counts : int Node.Map.t }
type action = Reverse of Node.t

let initial config = { graph = config.Config.initial; counts = Node.Map.empty }
let count s u = Node.Map.find_or ~default:0 u s.counts
let parity s u = if count s u mod 2 = 0 then Even else Odd

let reversal_set config s u =
  match parity s u with
  | Even -> Config.in_nbrs config u
  | Odd -> Config.out_nbrs config u

let is_dummy_step config s u =
  Node.Set.is_empty (reversal_set config s u)

let apply config s u =
  let graph = Digraph.reverse_toward s.graph u (reversal_set config s u) in
  { graph; counts = Node.Map.add u (count s u + 1) s.counts }

let is_enabled config s (Reverse u) =
  (not (Node.equal u config.Config.destination)) && Digraph.is_sink s.graph u

let enabled config s =
  Node.Set.remove config.Config.destination (Digraph.sinks s.graph)
  |> Node.Set.elements
  |> List.map (fun u -> Reverse u)

let equal_state s1 s2 =
  Digraph.equal s1.graph s2.graph
  && Node.Map.equal Int.equal
       (Node.Map.filter (fun _ c -> c <> 0) s1.counts)
       (Node.Map.filter (fun _ c -> c <> 0) s2.counts)

let canonical_key s =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Digraph.canonical_key s.graph);
  Node.Map.iter
    (fun u c ->
      if c <> 0 then Buffer.add_string buf (Printf.sprintf "c%d=%d;" u c))
    s.counts;
  Buffer.contents buf

let state_key s =
  let b = Lr_automata.Statekey.builder () in
  Lr_automata.Statekey.add_array b (Digraph.orientation_bits s.graph);
  Node.Map.iter
    (fun u c ->
      if c <> 0 then begin
        Lr_automata.Statekey.add b u;
        Lr_automata.Statekey.add b c
      end)
    s.counts;
  Lr_automata.Statekey.build b

let pp_state ppf s =
  Format.fprintf ppf "@[<v>%a@,counts: %a@]" Digraph.pp s.graph
    (Node.Map.pp Format.pp_print_int)
    (Node.Map.filter (fun _ c -> c <> 0) s.counts)

let pp_action ppf (Reverse u) = Format.fprintf ppf "reverse(%a)" Node.pp u

let automaton config =
  Lr_automata.Automaton.make ~name:"NewPR" ~initial:(initial config)
    ~enabled:(enabled config)
    ~step:(fun s (Reverse u) ->
      if not (is_enabled config s (Reverse u)) then
        invalid_arg "NewPR.step: reverse(u) not enabled"
      else apply config s u)
    ~is_enabled:(is_enabled config) ~equal_state ~pp_state ~pp_action ()

let algo config =
  {
    Algo.automaton = automaton config;
    graph_of = (fun s -> s.graph);
    actors = (fun (Reverse u) -> Node.Set.singleton u);
  }
