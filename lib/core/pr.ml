open Lr_graph

type state = { graph : Digraph.t; lists : Node.Set.t Node.Map.t }
type action = Reverse of Node.Set.t
type mode = All_subsets | Singletons | Singletons_and_max

let initial config = { graph = config.Config.initial; lists = Node.Map.empty }
let list_of s u = Node.Map.find_or ~default:Node.Set.empty u s.lists

let sinks config s =
  Node.Set.remove config.Config.destination (Digraph.sinks s.graph)

(* Effect of a single node [u] taking a step; [u]'s reversal set is
   computed from the pre-state list, which no other member of [S] can
   touch (no two sinks are adjacent). *)
let apply_one config s u =
  let nbrs = Config.nbrs config u in
  let lst = list_of s u in
  let to_reverse =
    if Node.Set.equal lst nbrs then nbrs else Node.Set.diff nbrs lst
  in
  let graph = Digraph.reverse_toward s.graph u to_reverse in
  let lists =
    Node.Set.fold
      (fun v lists ->
        let lv = Node.Map.find_or ~default:Node.Set.empty v lists in
        Node.Map.add v (Node.Set.add u lv) lists)
      to_reverse s.lists
  in
  { graph; lists = Node.Map.add u Node.Set.empty lists }

let apply config s set = Node.Set.fold (fun u s -> apply_one config s u) set s

let is_enabled config s (Reverse set) =
  (not (Node.Set.is_empty set))
  && (not (Node.Set.mem config.Config.destination set))
  && Node.Set.for_all (Digraph.is_sink s.graph) set

(* All non-empty subsets of [set], in no particular order (every caller
   is order-insensitive).  Accumulator-front construction: each round
   prepends the subsets gaining [u], so the whole enumeration is linear
   in its 2^k - 1 output instead of quadratic from repeated append. *)
let nonempty_subsets set =
  let elements = Node.Set.elements set in
  List.fold_left
    (fun acc u ->
      List.fold_left
        (fun out s -> Node.Set.add u s :: out)
        acc
        (Node.Set.empty :: acc))
    [] elements

let enabled mode config s =
  let sk = sinks config s in
  if Node.Set.is_empty sk then []
  else
    match mode with
    | Singletons ->
        List.map (fun u -> Reverse (Node.Set.singleton u)) (Node.Set.elements sk)
    | Singletons_and_max ->
        let singles =
          List.map
            (fun u -> Reverse (Node.Set.singleton u))
            (Node.Set.elements sk)
        in
        if Node.Set.cardinal sk > 1 then singles @ [ Reverse sk ] else singles
    | All_subsets -> List.map (fun s -> Reverse s) (nonempty_subsets sk)

let equal_state s1 s2 =
  Digraph.equal s1.graph s2.graph
  && Node.Map.equal Node.Set.equal
       (Node.Map.filter (fun _ l -> not (Node.Set.is_empty l)) s1.lists)
       (Node.Map.filter (fun _ l -> not (Node.Set.is_empty l)) s2.lists)

let canonical_key s =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Digraph.canonical_key s.graph);
  Node.Map.iter
    (fun u l ->
      if not (Node.Set.is_empty l) then begin
        Buffer.add_string buf (Printf.sprintf "l%d:" u);
        Node.Set.iter (fun v -> Buffer.add_string buf (string_of_int v ^ ",")) l;
        Buffer.add_char buf ';'
      end)
    s.lists;
  Buffer.contents buf

let state_key s =
  let b = Lr_automata.Statekey.builder () in
  Lr_automata.Statekey.add_array b (Digraph.orientation_bits s.graph);
  Node.Map.iter
    (fun u l ->
      if not (Node.Set.is_empty l) then begin
        Lr_automata.Statekey.add b u;
        Lr_automata.Statekey.add b (Node.Set.cardinal l);
        Node.Set.iter (Lr_automata.Statekey.add b) l
      end)
    s.lists;
  Lr_automata.Statekey.build b

let pp_state ppf s =
  Format.fprintf ppf "@[<v>%a@,lists: %a@]" Digraph.pp s.graph
    (Node.Map.pp Node.Set.pp)
    (Node.Map.filter (fun _ l -> not (Node.Set.is_empty l)) s.lists)

let pp_action ppf (Reverse set) =
  Format.fprintf ppf "reverse(%a)" Node.Set.pp set

let automaton ?(mode = All_subsets) config =
  Lr_automata.Automaton.make ~name:"PR" ~initial:(initial config)
    ~enabled:(enabled mode config)
    ~step:(fun s (Reverse set) ->
      if not (is_enabled config s (Reverse set)) then
        invalid_arg "PR.step: reverse(S) not enabled"
      else apply config s set)
    ~is_enabled:(is_enabled config) ~equal_state ~pp_state ~pp_action ()

let algo ?mode config =
  {
    Algo.automaton = automaton ?mode config;
    graph_of = (fun s -> s.graph);
    actors = (fun (Reverse set) -> set);
  }
