(** Full Reversal (Gafni–Bertsekas): a sink reverses {e all} of its
    incident edges.  The baseline the paper compares Partial Reversal
    against; its acyclicity argument (last node to step becomes a
    source) is checked in the test suite. *)

open Lr_graph

type state = { graph : Digraph.t }
type action = Reverse of Node.t

val initial : Config.t -> state
val apply : state -> Node.t -> state
val automaton : Config.t -> (state, action) Lr_automata.Automaton.t
val algo : Config.t -> (state, action) Algo.t
val canonical_key : state -> string
val pp_state : Format.formatter -> state -> unit
val pp_action : Format.formatter -> action -> unit
