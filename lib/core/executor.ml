open Lr_graph

type outcome = {
  steps : int;
  node_steps : int Node.Map.t;
  total_node_steps : int;
  edge_reversals : int;
  final_graph : Digraph.t;
  quiescent : bool;
  destination_oriented : bool;
}

let count_flips g1 g2 =
  Undirected.fold_edges
    (fun e acc ->
      let u, v = Edge.endpoints e in
      if Digraph.direction_equal (Digraph.dir g1 u v) (Digraph.dir g2 u v) then
        acc
      else acc + 1)
    (Digraph.skeleton g1) 0

let run_execution ?observe ~destination (algo : ('s, 'a) Algo.t) exec =
  let node_steps, edge_reversals =
    List.fold_left
      (fun (ns, flips) ({ Lr_automata.Execution.before; action; after } as step) ->
        (match observe with None -> () | Some f -> f step);
        let ns =
          Node.Set.fold
            (fun u ns -> Node.Map.add u (Node.Map.find_or ~default:0 u ns + 1) ns)
            (algo.Algo.actors action) ns
        in
        (ns, flips + count_flips (algo.Algo.graph_of before) (algo.Algo.graph_of after)))
      (Node.Map.empty, 0) exec.Lr_automata.Execution.steps
  in
  let final = Lr_automata.Execution.final exec in
  let final_graph = algo.Algo.graph_of final in
  {
    steps = Lr_automata.Execution.length exec;
    node_steps;
    total_node_steps = Node.Map.fold (fun _ c acc -> acc + c) node_steps 0;
    edge_reversals;
    final_graph;
    quiescent = Lr_automata.Automaton.quiescent algo.Algo.automaton final;
    destination_oriented =
      Digraph.is_destination_oriented final_graph destination;
  }

let run ?max_steps ?observe ~scheduler ~destination algo =
  let exec =
    Lr_automata.Execution.run ?max_steps ~scheduler algo.Algo.automaton
  in
  run_execution ?observe ~destination algo exec

let work o = o.total_node_steps

let pp ppf o =
  Format.fprintf ppf
    "@[<v>steps: %d@,node steps: %d@,edge reversals: %d@,quiescent: %b@,destination-oriented: %b@]"
    o.steps o.total_node_steps o.edge_reversals o.quiescent
    o.destination_oriented
