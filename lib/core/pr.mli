(** The original Partial Reversal automaton — Algorithm 1 ([PR]) of the
    paper.

    State: the oriented graph plus, per node, [list\[u\]] — the
    neighbours that reversed their shared edge toward [u] since [u]'s
    last step.  Action [reverse(S)]: every node of [S] must be a sink
    ([D] excluded); each [u] in [S] reverses the edges to
    [nbrs_u \ list\[u\]] (all of [nbrs_u] when the list is full), every
    such neighbour [v] adds [u] to [list\[v\]], and [list\[u\]] is
    emptied. *)

open Lr_graph

type state = {
  graph : Digraph.t;
  lists : Node.Set.t Node.Map.t;  (** [list\[u\]]; absent = empty. *)
}

type action = Reverse of Node.Set.t  (** The paper's [reverse(S)]. *)

type mode =
  | All_subsets
      (** [enabled] lists every non-empty subset of current sinks —
          faithful to the automaton's signature; exponential, meant for
          small instances and model checking. *)
  | Singletons  (** One [reverse({u})] per sink. *)
  | Singletons_and_max
      (** Singletons plus the maximal concurrent step (all sinks at
          once). *)

val initial : Config.t -> state
val list_of : state -> Node.t -> Node.Set.t
val sinks : Config.t -> state -> Node.Set.t
(** Non-destination sinks, i.e. the nodes allowed to appear in [S]. *)

val apply : Config.t -> state -> Node.Set.t -> state
(** Effect of [reverse(S)]; assumes the precondition. *)

val automaton :
  ?mode:mode -> Config.t -> (state, action) Lr_automata.Automaton.t
(** Default mode: [All_subsets]. *)

val algo : ?mode:mode -> Config.t -> (state, action) Algo.t
val equal_state : state -> state -> bool
val canonical_key : state -> string

val state_key : state -> Lr_automata.Statekey.t
(** Hashed compact key — orientation bitset plus the non-empty lists —
    for model-checking frontiers.  Distinguishes states of one
    automaton (fixed skeleton), like {!canonical_key}, without building
    a string. *)

val pp_state : Format.formatter -> state -> unit
val pp_action : Format.formatter -> action -> unit
