open Lr_graph

type t = {
  initial : Digraph.t;
  destination : Node.t;
  embedding : Embedding.t;
  in_nbrs : Node.Set.t Node.Map.t;
  out_nbrs : Node.Set.t Node.Map.t;
}

let make graph ~destination =
  if not (Node.Set.mem destination (Digraph.nodes graph)) then
    Error "destination not a node of the graph"
  else
    match Embedding.of_digraph graph with
    | None -> Error "initial graph is not acyclic"
    | Some embedding ->
        let ins, outs =
          Node.Set.fold
            (fun u (ins, outs) ->
              ( Node.Map.add u (Digraph.in_neighbors graph u) ins,
                Node.Map.add u (Digraph.out_neighbors graph u) outs ))
            (Digraph.nodes graph)
            (Node.Map.empty, Node.Map.empty)
        in
        Ok
          {
            initial = graph;
            destination;
            embedding;
            in_nbrs = ins;
            out_nbrs = outs;
          }

let make_exn graph ~destination =
  match make graph ~destination with
  | Ok t -> t
  | Error e -> invalid_arg ("Config.make: " ^ e)

let of_instance { Generators.graph; destination } = make_exn graph ~destination
let skeleton t = Digraph.skeleton t.initial
let nodes t = Digraph.nodes t.initial
let nbrs t u = Undirected.neighbors (skeleton t) u
let in_nbrs t u = Node.Map.find_or ~default:Node.Set.empty u t.in_nbrs
let out_nbrs t u = Node.Map.find_or ~default:Node.Set.empty u t.out_nbrs
let is_left_of t u v = Embedding.is_left_of t.embedding u v
let bad_nodes t = Digraph.bad_nodes t.initial t.destination

let pp ppf t =
  Format.fprintf ppf "@[<v>destination: %a@,graph: %a@,embedding: %a@]"
    Node.pp t.destination Digraph.pp t.initial Embedding.pp t.embedding
