open Lr_graph

type policy = Zero_out | Keep

type state = { graph : Digraph.t; labels : bool Node.Map.t Node.Map.t }
type action = Reverse of Node.t

let label s u v =
  match Node.Map.find_opt u s.labels with
  | None -> true
  | Some m -> Node.Map.find_or ~default:true v m

let set_label s u v value =
  let m = Node.Map.find_or ~default:Node.Map.empty u s.labels in
  { s with labels = Node.Map.add u (Node.Map.add v value m) s.labels }

let initial ?labels config =
  let base = { graph = config.Config.initial; labels = Node.Map.empty } in
  match labels with
  | None -> base
  | Some f ->
      Node.Set.fold
        (fun u s ->
          Node.Set.fold
            (fun v s -> set_label s u v (f u v))
            (Config.nbrs config u) s)
        (Config.nodes config) base

let reversal_set config s u =
  let nbrs = Config.nbrs config u in
  let ones = Node.Set.filter (fun v -> label s u v) nbrs in
  if Node.Set.is_empty ones then nbrs else ones

let apply policy config s u =
  let to_reverse = reversal_set config s u in
  let graph = Digraph.reverse_toward s.graph u to_reverse in
  let s = { s with graph } in
  (* The acting node resets all its own labels to one. *)
  let s =
    Node.Set.fold (fun v s -> set_label s u v true) (Config.nbrs config u) s
  in
  match policy with
  | Keep -> s
  | Zero_out ->
      Node.Set.fold (fun v s -> set_label s v u false) to_reverse s

let is_enabled config s (Reverse u) =
  (not (Node.equal u config.Config.destination)) && Digraph.is_sink s.graph u

let enabled config s =
  Node.Set.remove config.Config.destination (Digraph.sinks s.graph)
  |> Node.Set.elements
  |> List.map (fun u -> Reverse u)

let pp_action ppf (Reverse u) = Format.fprintf ppf "reverse(%a)" Node.pp u

let automaton ?labels policy config =
  let name =
    match policy with Zero_out -> "BLL-zero" | Keep -> "BLL-keep"
  in
  Lr_automata.Automaton.make ~name ~initial:(initial ?labels config)
    ~enabled:(enabled config)
    ~step:(fun s (Reverse u) ->
      if not (is_enabled config s (Reverse u)) then
        invalid_arg "Bll.step: reverse(u) not enabled"
      else apply policy config s u)
    ~is_enabled:(is_enabled config)
    ~equal_state:(fun s1 s2 -> Digraph.equal s1.graph s2.graph)
    ~pp_state:(fun ppf s -> Digraph.pp ppf s.graph)
    ~pp_action ()

let algo ?labels policy config =
  {
    Algo.automaton = automaton ?labels policy config;
    graph_of = (fun s -> s.graph);
    actors = (fun (Reverse u) -> Node.Set.singleton u);
  }
