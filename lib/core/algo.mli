(** A uniform view of a link reversal algorithm: its automaton plus the
    two projections the generic executor and metrics need — the current
    oriented graph, and the set of nodes acting in an action. *)

open Lr_graph

type ('s, 'a) t = {
  automaton : ('s, 'a) Lr_automata.Automaton.t;
  graph_of : 's -> Digraph.t;
  actors : 'a -> Node.Set.t;
}
