open Lr_graph

type fr_height = { fa : int; fid : Node.t }
type pr_height = { pa : int; pb : int; pid : Node.t }

let compare_fr_height h1 h2 =
  Order.lex2 (Int.compare h1.fa h2.fa) (Node.compare h1.fid h2.fid)

let compare_pr_height h1 h2 =
  Order.lex3 (Int.compare h1.pa h2.pa)
    (Int.compare h1.pb h2.pb)
    (Node.compare h1.pid h2.pid)

type fr_state = { fgraph : Digraph.t; fheights : fr_height Node.Map.t }
type pr_state = { pgraph : Digraph.t; pheights : pr_height Node.Map.t }
type action = Reverse of Node.t

let pp_action ppf (Reverse u) = Format.fprintf ppf "reverse(%a)" Node.pp u

let induced_orientation skel compare heights =
  Digraph.orient skel ~toward:(fun e ->
      let hl = Node.Map.find (Edge.lo e) heights
      and hh = Node.Map.find (Edge.hi e) heights in
      (* The edge points from the higher node to the lower one. *)
      if compare hl hh > 0 then Edge.hi e else Edge.lo e)

(* {2 Full reversal} *)

let fr_initial config =
  let n = Node.Set.cardinal (Config.nodes config) in
  let fheights =
    Node.Set.fold
      (fun u m ->
        let rank = Embedding.rank config.Config.embedding u in
        Node.Map.add u { fa = n - rank; fid = u } m)
      (Config.nodes config) Node.Map.empty
  in
  { fgraph = config.Config.initial; fheights }

let fr_apply _config s u =
  let nbrs = Digraph.neighbors s.fgraph u in
  let max_a =
    Node.Set.fold (fun v m -> max m (Node.Map.find v s.fheights).fa) nbrs
      min_int
  in
  let fheights = Node.Map.add u { fa = max_a + 1; fid = u } s.fheights in
  { fgraph = Digraph.reverse_all_at s.fgraph u; fheights }

let fr_consistent s =
  Digraph.equal s.fgraph
    (induced_orientation (Digraph.skeleton s.fgraph) compare_fr_height
       s.fheights)

let node_enabled config graph u =
  (not (Node.equal u config.Config.destination)) && Digraph.is_sink graph u

let enabled_of config graph =
  Node.Set.remove config.Config.destination (Digraph.sinks graph)
  |> Node.Set.elements
  |> List.map (fun u -> Reverse u)

let fr_automaton config =
  Lr_automata.Automaton.make ~name:"FR-heights" ~initial:(fr_initial config)
    ~enabled:(fun s -> enabled_of config s.fgraph)
    ~step:(fun s (Reverse u) ->
      if not (node_enabled config s.fgraph u) then
        invalid_arg "FR-heights.step: reverse(u) not enabled"
      else fr_apply config s u)
    ~is_enabled:(fun s (Reverse u) -> node_enabled config s.fgraph u)
    ~equal_state:(fun s1 s2 ->
      Digraph.equal s1.fgraph s2.fgraph
      && Node.Map.equal (fun a b -> compare_fr_height a b = 0) s1.fheights
           s2.fheights)
    ~pp_state:(fun ppf s -> Digraph.pp ppf s.fgraph)
    ~pp_action ()

let fr_algo config =
  {
    Algo.automaton = fr_automaton config;
    graph_of = (fun s -> s.fgraph);
    actors = (fun (Reverse u) -> Node.Set.singleton u);
  }

(* {2 Partial reversal} *)

let pr_initial config =
  let pheights =
    Node.Set.fold
      (fun u m ->
        let rank = Embedding.rank config.Config.embedding u in
        Node.Map.add u { pa = 0; pb = -rank; pid = u } m)
      (Config.nodes config) Node.Map.empty
  in
  { pgraph = config.Config.initial; pheights }

let pr_apply _config s u =
  let nbrs = Digraph.neighbors s.pgraph u in
  let h v = Node.Map.find v s.pheights in
  let min_a = Node.Set.fold (fun v m -> min m (h v).pa) nbrs max_int in
  let new_a = min_a + 1 in
  let same_a = Node.Set.filter (fun v -> (h v).pa = new_a) nbrs in
  let old = h u in
  let new_b =
    if Node.Set.is_empty same_a then old.pb
    else Node.Set.fold (fun v m -> min m (h v).pb) same_a max_int - 1
  in
  let pheights =
    Node.Map.add u { pa = new_a; pb = new_b; pid = u } s.pheights
  in
  (* Exactly the edges to minimum-[a] neighbours reverse. *)
  let reversed = Node.Set.filter (fun v -> (h v).pa = min_a) nbrs in
  { pgraph = Digraph.reverse_toward s.pgraph u reversed; pheights }

let pr_consistent s =
  Digraph.equal s.pgraph
    (induced_orientation (Digraph.skeleton s.pgraph) compare_pr_height
       s.pheights)

let pr_automaton config =
  Lr_automata.Automaton.make ~name:"PR-heights" ~initial:(pr_initial config)
    ~enabled:(fun s -> enabled_of config s.pgraph)
    ~step:(fun s (Reverse u) ->
      if not (node_enabled config s.pgraph u) then
        invalid_arg "PR-heights.step: reverse(u) not enabled"
      else pr_apply config s u)
    ~is_enabled:(fun s (Reverse u) -> node_enabled config s.pgraph u)
    ~equal_state:(fun s1 s2 ->
      Digraph.equal s1.pgraph s2.pgraph
      && Node.Map.equal (fun a b -> compare_pr_height a b = 0) s1.pheights
           s2.pheights)
    ~pp_state:(fun ppf s -> Digraph.pp ppf s.pgraph)
    ~pp_action ()

let pr_algo config =
  {
    Algo.automaton = pr_automaton config;
    graph_of = (fun s -> s.pgraph);
    actors = (fun (Reverse u) -> Node.Set.singleton u);
  }
