open Lr_graph

type state = Pr.state
type action = Reverse of Node.t

let initial = Pr.initial
let apply config s u = Pr.apply config s (Node.Set.singleton u)

let is_enabled config (s : state) (Reverse u) =
  (not (Node.equal u config.Config.destination))
  && Digraph.is_sink s.Pr.graph u

let enabled config s =
  Node.Set.elements (Pr.sinks config s)
  |> List.map (fun u -> Reverse u)

let pp_action ppf (Reverse u) = Format.fprintf ppf "reverse(%a)" Node.pp u

let automaton config =
  Lr_automata.Automaton.make ~name:"OneStepPR" ~initial:(initial config)
    ~enabled:(enabled config)
    ~step:(fun s (Reverse u) ->
      if not (is_enabled config s (Reverse u)) then
        invalid_arg "OneStepPR.step: reverse(u) not enabled"
      else apply config s u)
    ~is_enabled:(is_enabled config) ~equal_state:Pr.equal_state
    ~pp_state:Pr.pp_state ~pp_action ()

let algo config =
  {
    Algo.automaton = automaton config;
    graph_of = (fun (s : state) -> s.Pr.graph);
    actors = (fun (Reverse u) -> Node.Set.singleton u);
  }
