(** Running a link reversal algorithm to quiescence, collecting the
    work metrics the literature compares: node steps (reversals
    performed by each node) and single-edge flips. *)

open Lr_graph

type outcome = {
  steps : int;  (** Scheduler picks (actions fired). *)
  node_steps : int Node.Map.t;
      (** Per node, how many actions it participated in. *)
  total_node_steps : int;
      (** Sum over nodes — the "total work" measure of Busch et al.;
          equals [steps] for single-node-per-step automata. *)
  edge_reversals : int;  (** Total single-edge orientation flips. *)
  final_graph : Digraph.t;
  quiescent : bool;  (** No action enabled at the end. *)
  destination_oriented : bool;
}

val run :
  ?max_steps:int ->
  ?observe:(('s, 'a) Lr_automata.Execution.step -> unit) ->
  scheduler:('s, 'a) Lr_automata.Scheduler.t ->
  destination:Node.t ->
  ('s, 'a) Algo.t ->
  outcome
(** [observe] is called once per step, in execution order, with the
    full (before, action, after) transition — the hook the trace
    recorder ({!Lr_trace.Record.observer}) uses to serialize persistent
    runs. *)

val run_execution :
  ?observe:(('s, 'a) Lr_automata.Execution.step -> unit) ->
  destination:Node.t -> ('s, 'a) Algo.t -> ('s, 'a) Lr_automata.Execution.t -> outcome
(** Metrics of an already-recorded execution. *)

val work : outcome -> int
(** [total_node_steps]. *)

val pp : Format.formatter -> outcome -> unit
