(** The link reversal game of Charron-Bost, Welch and Widder ("Link
    reversal: how to play better to work less"), in executable form.

    Every non-destination node picks a strategy — play Full Reversal or
    Partial Reversal whenever it is a sink — and pays its own number of
    reversal steps until the system quiesces.  The cited results this
    module reproduces on small graphs:

    - the all-FR profile is a Nash equilibrium, and among the costliest;
    - the all-PR profile costs no more than all-FR, and when it is an
      equilibrium it attains the social optimum.

    Play is deterministic (lowest-id sink first), so unilateral
    deviations are directly comparable.  Mixed profiles are not covered
    by either of the paper's acyclicity proofs, so the engine monitors
    acyclicity and termination at every step and reports violations
    rather than assuming them. *)

open Lr_graph

type strategy = Full | Partial

val strategy_name : strategy -> string

type profile = strategy Node.Map.t

type result = {
  costs : int Node.Map.t;  (** Steps taken per node. *)
  social_cost : int;
  terminated : bool;  (** Quiesced within the step budget. *)
  acyclic_throughout : bool;
}

val uniform : strategy -> Linkrev.Config.t -> profile

val play : ?max_steps:int -> Linkrev.Config.t -> profile -> result
(** Default budget: [4·n² + 1000] steps. *)

val cost_of : result -> Node.t -> int

val all_profiles : Linkrev.Config.t -> profile list
(** All [2^(n-1)] strategy assignments to non-destination nodes (the
    destination never plays).  Intended for small [n]. *)

val best_response_violations :
  ?max_steps:int -> Linkrev.Config.t -> profile -> (Node.t * int * int) list
(** Nodes that can strictly lower their own cost by switching strategy:
    [(node, current cost, deviation cost)].  Empty iff the profile is a
    Nash equilibrium. *)

val is_nash : ?max_steps:int -> Linkrev.Config.t -> profile -> bool

val social_optimum : ?max_steps:int -> Linkrev.Config.t -> profile * result
(** Exhaustive minimum over {!all_profiles} (small graphs only). *)
