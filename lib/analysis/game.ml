open Lr_graph
open Linkrev

type strategy = Full | Partial

let strategy_name = function Full -> "FR" | Partial -> "PR"

type profile = strategy Node.Map.t

type result = {
  costs : int Node.Map.t;
  social_cost : int;
  terminated : bool;
  acyclic_throughout : bool;
}

let uniform strategy config =
  Node.Set.fold
    (fun u p ->
      if Node.equal u config.Config.destination then p
      else Node.Map.add u strategy p)
    (Config.nodes config) Node.Map.empty

(* A mixed step: a Partial player follows PR's list semantics; a Full
   player reverses everything.  Either way every neighbour that had an
   edge reversed toward it records the reverser in its list — the list
   tracks what a node observes, not what strategy its neighbours play. *)
let step_of config (s : Pr.state) u strategy =
  match strategy with
  | Partial -> Pr.apply config s (Node.Set.singleton u)
  | Full ->
      let nbrs = Config.nbrs config u in
      let graph = Digraph.reverse_toward s.Pr.graph u nbrs in
      let lists =
        Node.Set.fold
          (fun v lists ->
            let lv = Node.Map.find_or ~default:Node.Set.empty v lists in
            Node.Map.add v (Node.Set.add u lv) lists)
          nbrs s.Pr.lists
      in
      { Pr.graph; lists = Node.Map.add u Node.Set.empty lists }

let play ?max_steps config profile =
  let n = Node.Set.cardinal (Config.nodes config) in
  let budget =
    match max_steps with Some m -> m | None -> (4 * n * n) + 1000
  in
  let dest = config.Config.destination in
  let rec loop s costs steps acyclic =
    let sinks = Node.Set.remove dest (Digraph.sinks s.Pr.graph) in
    match Node.Set.min_elt_opt sinks with
    | None -> (costs, true, acyclic)
    | Some u ->
        if steps >= budget then (costs, false, acyclic)
        else
          let strategy = Node.Map.find_or ~default:Partial u profile in
          let s = step_of config s u strategy in
          let acyclic = acyclic && Digraph.is_acyclic s.Pr.graph in
          let costs =
            Node.Map.add u (Node.Map.find_or ~default:0 u costs + 1) costs
          in
          loop s costs (steps + 1) acyclic
  in
  let costs, terminated, acyclic =
    loop (Pr.initial config) Node.Map.empty 0 true
  in
  {
    costs;
    social_cost = Node.Map.fold (fun _ c acc -> acc + c) costs 0;
    terminated;
    acyclic_throughout = acyclic;
  }

let cost_of result u = Node.Map.find_or ~default:0 u result.costs

let all_profiles config =
  let players =
    Node.Set.elements
      (Node.Set.remove config.Config.destination (Config.nodes config))
  in
  List.fold_left
    (fun acc u ->
      List.concat_map
        (fun p -> [ Node.Map.add u Full p; Node.Map.add u Partial p ])
        acc)
    [ Node.Map.empty ] players

let flip = function Full -> Partial | Partial -> Full

let best_response_violations ?max_steps config profile =
  let base = play ?max_steps config profile in
  Node.Map.fold
    (fun u strategy acc ->
      let deviated = Node.Map.add u (flip strategy) profile in
      let dev = play ?max_steps config deviated in
      let here = cost_of base u and there = cost_of dev u in
      (* A deviation into a non-terminating run is not an improvement. *)
      if dev.terminated && there < here then (u, here, there) :: acc else acc)
    profile []

let is_nash ?max_steps config profile =
  match best_response_violations ?max_steps config profile with
  | [] -> true
  | _ :: _ -> false

let social_optimum ?max_steps config =
  match all_profiles config with
  | [] -> invalid_arg "Game.social_optimum: no players"
  | p0 :: rest ->
      let r0 = play ?max_steps config p0 in
      List.fold_left
        (fun (bp, br) p ->
          let r = play ?max_steps config p in
          if r.terminated && r.social_cost < br.social_cost then (p, r)
          else (bp, br))
        (p0, r0) rest
