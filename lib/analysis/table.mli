(** ASCII tables and CSV output for the experiment harness. *)

type t

val make : headers:string list -> string list list -> t
(** @raise Invalid_argument when a row's width differs from the
    header's. *)

val render : t -> string
(** Fixed-width ASCII table with a header separator. *)

val to_csv : t -> string

val print : ?ppf:Format.formatter -> ?title:string -> t -> unit
(** Render to [ppf] (default [Format.std_formatter]) with an optional
    underlined title, flushing at the end. *)
