type series = { label : string; value : float }

let bar width max_value value =
  if max_value <= 0.0 then ""
  else
    let n =
      int_of_float (Float.round (float_of_int width *. value /. max_value))
    in
    String.make (max 0 n) '#'

let render ?(width = 50) ?(unit_name = "") series =
  match series with
  | [] -> "(no data)\n"
  | _ ->
      let max_value =
        List.fold_left (fun m s -> Float.max m s.value) 0.0 series
      in
      let label_w =
        List.fold_left (fun m s -> max m (String.length s.label)) 0 series
      in
      let buf = Buffer.create 256 in
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf "%-*s | %-*s %g%s\n" label_w s.label width
               (bar width max_value s.value)
               s.value unit_name))
        series;
      Buffer.contents buf

let of_int_series rows =
  List.map (fun (label, v) -> { label; value = float_of_int v }) rows

let render_compare ?(width = 40) ~labels rows =
  match rows with
  | [] -> "(no data)\n"
  | _ ->
      let la, lb = labels in
      let max_value =
        List.fold_left (fun m (_, a, b) -> Float.max m (Float.max a b)) 0.0 rows
      in
      let label_w =
        List.fold_left (fun m (l, _, _) -> max m (String.length l)) 0 rows
      in
      let tag_w = max (String.length la) (String.length lb) in
      let buf = Buffer.create 256 in
      List.iter
        (fun (label, a, b) ->
          Buffer.add_string buf
            (Printf.sprintf "%-*s %-*s | %-*s %g\n" label_w label tag_w la width
               (bar width max_value a) a);
          Buffer.add_string buf
            (Printf.sprintf "%-*s %-*s | %-*s %g\n" label_w "" tag_w lb width
               (bar width max_value b) b))
        rows;
      Buffer.contents buf
