(** ASCII bar charts — the harness's "figures".

    Renders labeled series as horizontal bars scaled to a fixed width,
    so a work-vs-size sweep reads as a shape (linear vs quadratic) right
    in the terminal output. *)

type series = { label : string; value : float }

val render : ?width:int -> ?unit_name:string -> series list -> string
(** Horizontal bars scaled so the largest value spans [width] (default
    50) characters.  Empty input renders as a note. *)

val of_int_series : (string * int) list -> series list

val render_compare :
  ?width:int -> labels:string * string -> (string * float * float) list -> string
(** Paired bars per row ([labels] names the two series) — used for the
    FR-vs-PR figures. *)
