(** Small numeric helpers for the experiment harness. *)

val mean : float list -> float
(** 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 for fewer than two samples. *)

val median : float list -> float
val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [0, 100], nearest-rank. *)

type percentiles = {
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;  (** p99.9 — the tail recovery SLOs are stated over. *)
  max : float;  (** The single worst sample. *)
}
(** The latency summary the serving layer reports against its SLOs. *)

val percentiles : float list -> percentiles
(** Nearest-rank p50/p95/p99/p99.9 plus the maximum, from one sorted
    copy of the input (the per-call sort of {!percentile} five times
    over would be wasteful on large latency sample sets).  All zero on
    the empty list. *)

val minimum : float list -> float
val maximum : float list -> float

val linear_fit : (float * float) list -> float * float
(** Least-squares [(slope, intercept)].  @raise Invalid_argument on
    fewer than two points or zero x-variance. *)

val growth_exponent : (float * float) list -> float
(** Slope of the log-log fit — ~1 for linear growth, ~2 for quadratic.
    Points with non-positive coordinates are dropped. *)
