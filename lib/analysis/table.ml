type t = { headers : string list; rows : string list list }

let make ~headers rows =
  let width = List.length headers in
  List.iter
    (fun row ->
      if List.length row <> width then
        invalid_arg "Table.make: row width mismatch")
    rows;
  { headers; rows }

let column_widths t =
  List.fold_left
    (fun widths row -> List.map2 (fun w cell -> max w (String.length cell)) widths row)
    (List.map String.length t.headers)
    t.rows

let render t =
  let widths = column_widths t in
  let buf = Buffer.create 256 in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let emit_row row =
    let cells = List.map2 pad row widths in
    Buffer.add_string buf ("| " ^ String.concat " | " cells ^ " |\n")
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+\n"
  in
  Buffer.add_string buf rule;
  emit_row t.headers;
  Buffer.add_string buf rule;
  List.iter emit_row t.rows;
  Buffer.add_string buf rule;
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let line row = String.concat "," (List.map csv_escape row) ^ "\n" in
  String.concat "" (line t.headers :: List.map line t.rows)

let print ?(ppf = Format.std_formatter) ?title t =
  (match title with
  | Some s ->
      Format.fprintf ppf "%s@\n%s@\n" s (String.make (String.length s) '=')
  | None -> ());
  Format.pp_print_string ppf (render t);
  (* flush so output interleaves correctly with direct [Printf] users *)
  Format.pp_print_flush ppf ()
