open Lr_graph
open Linkrev

type algorithm = FR | PR | NewPR | FR_heights | PR_heights

let algorithm_name = function
  | FR -> "FR"
  | PR -> "PR"
  | NewPR -> "NewPR"
  | FR_heights -> "FR-heights"
  | PR_heights -> "PR-heights"

let run_one ?(seed = 0) ?max_steps algorithm config =
  let rng = Random.State.make [| 0x5eed; seed |] in
  let scheduler () = Lr_automata.Scheduler.random rng in
  let destination = config.Config.destination in
  match algorithm with
  | FR ->
      Executor.run ?max_steps ~scheduler:(scheduler ()) ~destination
        (Full_reversal.algo config)
  | PR ->
      Executor.run ?max_steps ~scheduler:(scheduler ()) ~destination
        (Pr.algo ~mode:Pr.Singletons config)
  | NewPR ->
      Executor.run ?max_steps ~scheduler:(scheduler ()) ~destination
        (New_pr.algo config)
  | FR_heights ->
      Executor.run ?max_steps ~scheduler:(scheduler ()) ~destination
        (Heights.fr_algo config)
  | PR_heights ->
      Executor.run ?max_steps ~scheduler:(scheduler ()) ~destination
        (Heights.pr_algo config)

type row = {
  n : int;
  nodes : int;
  bad : int;
  work : int;
  edge_reversals : int;
  quiescent : bool;
  oriented : bool;
}

let sweep ?seed ?max_steps ?(jobs = 1) algorithm ~family ~sizes () =
  let sizes = Array.of_list sizes in
  let one n =
    let inst = family n in
    let config = Config.of_instance inst in
    let out = run_one ?seed ?max_steps algorithm config in
    {
      n;
      nodes = Node.Set.cardinal (Config.nodes config);
      bad = Node.Set.cardinal (Config.bad_nodes config);
      work = out.Executor.total_node_steps;
      edge_reversals = out.Executor.edge_reversals;
      quiescent = out.Executor.quiescent;
      oriented = out.Executor.destination_oriented;
    }
  in
  Array.to_list
    (* lr:owner trial: each parallel trial builds and mutates a private
       engine instance; nothing outlives its slot in the result array. *)
    (Lr_parallel.Pool.map_range ~jobs (Array.length sizes) (fun i ->
         one sizes.(i)))

let sweep_fast ?max_steps ?(jobs = 1) algorithm ~family ~sizes () =
  let module F = Lr_fast.Fast_engine in
  let module FN = Lr_fast.Fast_new_pr in
  let sizes = Array.of_list sizes in
  let one n =
    let inst = family n in
    let config = Config.of_instance inst in
    let out =
      match algorithm with
      | FR -> F.run ?max_steps F.Full (F.of_config config)
      | PR -> F.run ?max_steps F.Partial (F.of_config config)
      | NewPR -> FN.run ?max_steps (FN.of_config config)
      | FR_heights | PR_heights ->
          invalid_arg
            (Printf.sprintf "Work.sweep_fast: no fast engine for %s"
               (algorithm_name algorithm))
    in
    {
      n;
      nodes = Node.Set.cardinal (Config.nodes config);
      bad = Node.Set.cardinal (Config.bad_nodes config);
      work = out.Lr_fast.Fast_outcome.work;
      edge_reversals = out.Lr_fast.Fast_outcome.edge_reversals;
      quiescent = out.Lr_fast.Fast_outcome.quiescent;
      oriented = out.Lr_fast.Fast_outcome.destination_oriented;
    }
  in
  Array.to_list
    (* lr:owner trial: each parallel trial builds and mutates a private
       engine instance; nothing outlives its slot in the result array. *)
    (Lr_parallel.Pool.map_range ~jobs (Array.length sizes) (fun i ->
         one sizes.(i)))

let exponent rows =
  rows
  |> List.filter_map (fun r ->
         if r.bad > 0 && r.work > 0 then
           Some (float_of_int r.bad, float_of_int r.work)
         else None)
  |> Stats.growth_exponent

let rows_to_table algorithm rows =
  Table.make
    ~headers:[ "algorithm"; "n"; "nodes"; "bad"; "work"; "edge flips"; "oriented" ]
    (List.map
       (fun r ->
         [
           algorithm_name algorithm;
           string_of_int r.n;
           string_of_int r.nodes;
           string_of_int r.bad;
           string_of_int r.work;
           string_of_int r.edge_reversals;
           string_of_bool (r.quiescent && r.oriented);
         ])
       rows)
