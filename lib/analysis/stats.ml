let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
      let m = mean xs in
      let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
      sqrt var

let sorted xs = List.sort Float.compare xs

let percentile p xs =
  match sorted xs with
  | [] -> 0.0
  | s ->
      let n = List.length s in
      let rank =
        int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1
        |> max 0
        |> min (n - 1)
      in
      List.nth s rank

let median xs = percentile 50.0 xs

type percentiles = {
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
  max : float;
}

let percentiles xs =
  match sorted xs with
  | [] -> { p50 = 0.0; p95 = 0.0; p99 = 0.0; p999 = 0.0; max = 0.0 }
  | s ->
      let a = Array.of_list s in
      let n = Array.length a in
      let at p =
        let rank =
          int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1
          |> Stdlib.max 0
          |> min (n - 1)
        in
        a.(rank)
      in
      {
        p50 = at 50.0;
        p95 = at 95.0;
        p99 = at 99.0;
        p999 = at 99.9;
        max = a.(n - 1);
      }
let minimum = function [] -> 0.0 | xs -> List.fold_left Float.min infinity xs
let maximum = function
  | [] -> 0.0
  | xs -> List.fold_left Float.max neg_infinity xs

let linear_fit points =
  let n = List.length points in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let nf = float_of_int n in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
  let denom = (nf *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then
    invalid_arg "Stats.linear_fit: zero x-variance";
  let slope = ((nf *. sxy) -. (sx *. sy)) /. denom in
  (slope, (sy -. (slope *. sx)) /. nf)

let growth_exponent points =
  let logs =
    List.filter_map
      (fun (x, y) -> if x > 0.0 && y > 0.0 then Some (log x, log y) else None)
      points
  in
  fst (linear_fit logs)
