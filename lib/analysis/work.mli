(** Work measurements: how many reversal steps an algorithm needs on a
    graph family, and how that scales — the quantitative context of the
    paper's Section 1 (the Θ(n_b²) worst case shared by FR and PR, and
    PR's practical advantage). *)

open Lr_graph

type algorithm = FR | PR | NewPR | FR_heights | PR_heights

val algorithm_name : algorithm -> string

val run_one :
  ?seed:int ->
  ?max_steps:int ->
  algorithm ->
  Linkrev.Config.t ->
  Linkrev.Executor.outcome
(** One run to quiescence under a seeded random single-node scheduler. *)

type row = {
  n : int;  (** Requested family size. *)
  nodes : int;
  bad : int;  (** Initially route-less nodes ([n_b]). *)
  work : int;  (** Total node steps. *)
  edge_reversals : int;
  quiescent : bool;
  oriented : bool;
}

val sweep :
  ?seed:int ->
  ?max_steps:int ->
  ?jobs:int ->
  algorithm ->
  family:(int -> Generators.instance) ->
  sizes:int list ->
  unit ->
  row list
(** With [jobs > 1] the sizes run on a domain pool
    ({!Lr_parallel.Pool.map_range}); rows come back in size order
    either way.  [family] must then be domain-safe: derive any
    randomness from [n] and the seed, never from shared mutable
    state. *)

val sweep_fast :
  ?max_steps:int ->
  ?jobs:int ->
  algorithm ->
  family:(int -> Generators.instance) ->
  sizes:int list ->
  unit ->
  row list
(** [sweep] served by the mutable array engines ({!Lr_fast.Fast_engine}
    / {!Lr_fast.Fast_new_pr}) instead of the persistent executor.  Work
    is schedule-independent for FR, PR and NewPR, and the fast engines
    are differentially tested against the persistent automata, so the
    rows are identical to {!sweep}'s — just orders of magnitude sooner
    on the quadratic families.  Supports [FR]/[PR]/[NewPR] only;
    @raise Invalid_argument for the heights variants (no fast engine
    implements them). *)

val exponent : row list -> float
(** Growth exponent of [work] against [bad] (log-log slope); rows with
    zero work or zero bad nodes are ignored. *)

val rows_to_table : algorithm -> row list -> Table.t
