(** Shared flat-array view of an instance, the common substrate of the
    mutable engines ({!Fast_engine}, {!Fast_new_pr}).

    Adjacency as int arrays, plus for every slot [(u, i)] the {e mirror}
    slot: the index of [u] inside the adjacency row of its [i]-th
    neighbour, so an edge flip updates both endpoints in O(1) without
    any search.  [out0] is the initial orientation — engines copy it
    and mutate the copy, so one [Fast_graph.t] can seed many runs. *)

open Lr_graph

type t = private {
  n : int;
  destination : int;
  nbrs : int array array;  (** [nbrs.(u)] = neighbour ids, ascending. *)
  mirror : int array array;
      (** [mirror.(u).(i)] = index of [u] inside [nbrs.(w)] where
          [w = nbrs.(u).(i)]. *)
  out0 : bool array array;
      (** Initial orientation: [out0.(u).(i)] iff the edge to
          [nbrs.(u).(i)] starts outgoing at [u].  Do not mutate. *)
}

val of_instance : Generators.instance -> t
(** Node ids must be [0 .. n-1]; @raise Invalid_argument otherwise
    (use {!Lr_graph.Generators} outputs, which satisfy this). *)

val of_config : Linkrev.Config.t -> t
val degree : t -> int -> int

val fingerprint : t -> bool array array -> int64
(** [fingerprint t out_] is the 64-bit digest of the orientation [out_]
    over this skeleton — bit-identical to {!Lr_graph.Digraph.fingerprint}
    of the corresponding oriented graph.  Used by trace headers/footers
    to bind a recording to its instance and final orientation without
    materializing a [Digraph]. *)

val initial_out : t -> bool array array
(** A fresh mutable copy of [out0]. *)

val initial_in_degree : t -> int array
(** Per-node initial in-degree, computed from [out0]. *)

(** A {e dynamic} flat adjacency: the same rows-plus-mirror-slots
    representation, but mutable under edge insertion and removal, for
    engines that must survive topology churn ({!Lr_routing}'s fast
    maintenance engine).  Removal swap-deletes within a row and fixes
    the moved entry's mirror, so both operations are O(degree) with no
    allocation in the steady state.  Rows lose their sorted order after
    the first removal — callers must not rely on it. *)
module Dyn : sig
  type graph := t
  type t

  val of_graph : graph -> t
  (** A fresh mutable copy of the adjacency (the source is unchanged). *)

  val num_nodes : t -> int
  val degree : t -> int -> int

  val nbr : t -> int -> int -> int
  (** [nbr t u i] is [u]'s [i]-th neighbour, [0 <= i < degree t u]. *)

  val mem_edge : t -> int -> int -> bool
  (** Linear in [degree u]; false for out-of-range ids. *)

  val add_edge : t -> int -> int -> unit
  (** @raise Invalid_argument on a self-loop.  The edge must be absent
      (callers check; a duplicate would corrupt the mirror slots). *)

  val remove_edge : t -> int -> int -> unit
  (** @raise Invalid_argument if the edge is absent. *)
end
