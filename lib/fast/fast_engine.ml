open Lr_graph

type rule = Partial | Full

type outcome = {
  work : int;
  steps_per_node : int array;
  edge_reversals : int;
  quiescent : bool;
  destination_oriented : bool;
}

type t = {
  n : int;
  destination : int;
  nbrs : int array array;  (** [nbrs.(u)] = neighbour ids. *)
  mirror : int array array;
      (** [mirror.(u).(i)] = index of [u] inside [nbrs.(w)] where
          [w = nbrs.(u).(i)]. *)
  out_ : bool array array;
      (** [out_.(u).(i)]: edge to [nbrs.(u).(i)] currently outgoing.
          Invariant: [out_.(u).(i) = not out_.(w).(mirror.(u).(i))]. *)
  listed : bool array array;  (** PR's [list[u]] membership per slot. *)
  list_count : int array;
  in_deg : int array;
  queued : bool array;
  queue : int Queue.t;
  steps_per_node : int array;
  mutable work : int;
  mutable edge_reversals : int;
}

let degree t u = Array.length t.nbrs.(u)

let is_sink t u =
  let d = degree t u in
  d > 0 && t.in_deg.(u) = d

let enqueue_if_sink t u =
  if (not t.queued.(u)) && u <> t.destination && is_sink t u then begin
    t.queued.(u) <- true;
    Queue.add u t.queue
  end

let create inst =
  let g = inst.Generators.graph in
  let nodes = Digraph.nodes g in
  let n = Node.Set.cardinal nodes in
  if not (Node.Set.equal nodes (Node.Set.of_range 0 (n - 1))) then
    invalid_arg "Fast_engine.create: node ids must be 0..n-1";
  let nbrs =
    Array.init n (fun u ->
        Array.of_list (Node.Set.elements (Digraph.neighbors g u)))
  in
  (* index of each node within its neighbours' adjacency arrays *)
  let index_of u w =
    let arr = nbrs.(w) in
    let rec find i = if arr.(i) = u then i else find (i + 1) in
    find 0
  in
  let mirror =
    Array.init n (fun u -> Array.map (fun w -> index_of u w) nbrs.(u))
  in
  let out_ =
    Array.init n (fun u ->
        Array.map (fun w -> Digraph.dir g u w = Digraph.Out) nbrs.(u))
  in
  let in_deg =
    Array.init n (fun u ->
        Array.fold_left (fun acc o -> if o then acc else acc + 1) 0 out_.(u))
  in
  let t =
    {
      n;
      destination = inst.Generators.destination;
      nbrs;
      mirror;
      out_;
      listed = Array.init n (fun u -> Array.make (Array.length nbrs.(u)) false);
      list_count = Array.make n 0;
      in_deg;
      queued = Array.make n false;
      queue = Queue.create ();
      steps_per_node = Array.make n 0;
      work = 0;
      edge_reversals = 0;
    }
  in
  for u = 0 to n - 1 do
    enqueue_if_sink t u
  done;
  t

let of_config config =
  create
    {
      Generators.graph = config.Linkrev.Config.initial;
      destination = config.Linkrev.Config.destination;
    }

(* Reverse slot [i] of node [u]: the edge becomes outgoing at [u]. *)
let flip t u i =
  let w = t.nbrs.(u).(i) in
  let j = t.mirror.(u).(i) in
  t.out_.(u).(i) <- true;
  t.out_.(w).(j) <- false;
  t.in_deg.(u) <- t.in_deg.(u) - 1;
  t.in_deg.(w) <- t.in_deg.(w) + 1;
  t.edge_reversals <- t.edge_reversals + 1;
  (* the neighbour records the reversal in its list *)
  if not t.listed.(w).(j) then begin
    t.listed.(w).(j) <- true;
    t.list_count.(w) <- t.list_count.(w) + 1
  end;
  enqueue_if_sink t w

let step rule t u =
  let d = degree t u in
  t.steps_per_node.(u) <- t.steps_per_node.(u) + 1;
  t.work <- t.work + 1;
  (match rule with
  | Full ->
      for i = 0 to d - 1 do
        flip t u i
      done
  | Partial ->
      let full = t.list_count.(u) = d in
      for i = 0 to d - 1 do
        if full || not t.listed.(u).(i) then flip t u i
      done);
  (* empty list[u] *)
  if t.list_count.(u) > 0 then begin
    Array.fill t.listed.(u) 0 d false;
    t.list_count.(u) <- 0
  end

let destination_oriented t =
  (* BFS over incoming edges from the destination. *)
  let seen = Array.make t.n false in
  let q = Queue.create () in
  seen.(t.destination) <- true;
  Queue.add t.destination q;
  let reached = ref 1 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iteri
      (fun i w ->
        (* edge points toward u iff it is incoming at u *)
        if (not t.out_.(u).(i)) && not seen.(w) then begin
          seen.(w) <- true;
          incr reached;
          Queue.add w q
        end)
      t.nbrs.(u)
  done;
  !reached = t.n

let run ?(max_steps = 10_000_000) rule t =
  let budget = ref max_steps in
  let exhausted = ref false in
  let continue_ = ref true in
  while !continue_ do
    match Queue.take_opt t.queue with
    | None -> continue_ := false
    | Some u ->
        t.queued.(u) <- false;
        if is_sink t u && u <> t.destination then
          if !budget = 0 then begin
            exhausted := true;
            continue_ := false;
            (* put it back so a later run can resume *)
            t.queued.(u) <- true;
            Queue.add u t.queue
          end
          else begin
            decr budget;
            step rule t u;
            (* u may still be a sink only in the degenerate isolated
               case, which is_sink excludes; neighbours were enqueued
               by flip. *)
            enqueue_if_sink t u
          end
  done;
  {
    work = t.work;
    steps_per_node = Array.copy t.steps_per_node;
    edge_reversals = t.edge_reversals;
    quiescent = not !exhausted;
    destination_oriented = destination_oriented t;
  }

let to_digraph t =
  let g = ref (Digraph.of_directed_edges []) in
  for u = 0 to t.n - 1 do
    g := Digraph.add_node !g u;
    Array.iteri
      (fun i w -> if t.out_.(u).(i) then g := Digraph.add_directed_edge !g u w)
      t.nbrs.(u)
  done;
  !g
