open Lr_graph

type rule = Partial | Full

type outcome = Fast_outcome.t = {
  work : int;
  steps_per_node : int array;
  edge_reversals : int;
  quiescent : bool;
  destination_oriented : bool;
}

type t = {
  core : Fast_graph.t;
  out_ : bool array array;
      (** [out_.(u).(i)]: edge to [core.nbrs.(u).(i)] currently
          outgoing.  Invariant: [out_.(u).(i) = not
          out_.(w).(mirror.(u).(i))]. *)
  listed : bool array array;  (** PR's [list[u]] membership per slot. *)
  list_count : int array;
  in_deg : int array;
  queued : bool array;
  queue : int Queue.t;
  steps_per_node : int array;
  mutable work : int;
  mutable edge_reversals : int;
  mutable sink : Fast_sink.t option;
      (** Observation callbacks; [None] (the default) is a single dead
          branch per notification point. *)
}

let degree t u = Fast_graph.degree t.core u
let set_sink t sink = t.sink <- sink
let fingerprint t = Fast_graph.fingerprint t.core t.out_

let is_sink t u =
  let d = degree t u in
  d > 0 && t.in_deg.(u) = d

let enqueue_if_sink t u =
  if (not t.queued.(u)) && u <> t.core.Fast_graph.destination && is_sink t u
  then begin
    t.queued.(u) <- true;
    Queue.add u t.queue
  end

let of_core core =
  let n = core.Fast_graph.n in
  let t =
    {
      core;
      out_ = Fast_graph.initial_out core;
      listed =
        Array.init n (fun u -> Array.make (Fast_graph.degree core u) false);
      list_count = Array.make n 0;
      in_deg = Fast_graph.initial_in_degree core;
      queued = Array.make n false;
      queue = Queue.create ();
      steps_per_node = Array.make n 0;
      work = 0;
      edge_reversals = 0;
      sink = None;
    }
  in
  for u = 0 to n - 1 do
    enqueue_if_sink t u
  done;
  t

let create inst = of_core (Fast_graph.of_instance inst)
let of_config config = of_core (Fast_graph.of_config config)

(* Reverse slot [i] of node [u]: the edge becomes outgoing at [u]. *)
let flip t u i =
  let w = t.core.Fast_graph.nbrs.(u).(i) in
  let j = t.core.Fast_graph.mirror.(u).(i) in
  t.out_.(u).(i) <- true;
  t.out_.(w).(j) <- false;
  t.in_deg.(u) <- t.in_deg.(u) - 1;
  t.in_deg.(w) <- t.in_deg.(w) + 1;
  t.edge_reversals <- t.edge_reversals + 1;
  (* the neighbour records the reversal in its list *)
  if not t.listed.(w).(j) then begin
    t.listed.(w).(j) <- true;
    t.list_count.(w) <- t.list_count.(w) + 1
  end;
  (match t.sink with None -> () | Some s -> s.Fast_sink.on_flip u i w);
  enqueue_if_sink t w

let step rule t u =
  let d = degree t u in
  t.steps_per_node.(u) <- t.steps_per_node.(u) + 1;
  t.work <- t.work + 1;
  (match t.sink with None -> () | Some s -> s.Fast_sink.on_step u);
  (match rule with
  | Full ->
      for i = 0 to d - 1 do
        flip t u i
      done
  | Partial ->
      let full = t.list_count.(u) = d in
      for i = 0 to d - 1 do
        if full || not t.listed.(u).(i) then flip t u i
      done);
  (* empty list[u] *)
  if t.list_count.(u) > 0 then begin
    Array.fill t.listed.(u) 0 d false;
    t.list_count.(u) <- 0
  end

let destination_oriented t =
  (* BFS over incoming edges from the destination. *)
  let n = t.core.Fast_graph.n in
  let seen = Array.make n false in
  let q = Queue.create () in
  seen.(t.core.Fast_graph.destination) <- true;
  Queue.add t.core.Fast_graph.destination q;
  let reached = ref 1 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iteri
      (fun i w ->
        (* edge points toward u iff it is incoming at u *)
        if (not t.out_.(u).(i)) && not seen.(w) then begin
          seen.(w) <- true;
          incr reached;
          Queue.add w q
        end)
      t.core.Fast_graph.nbrs.(u)
  done;
  !reached = n

let run ?(max_steps = 10_000_000) rule t =
  let budget = ref max_steps in
  let exhausted = ref false in
  let continue_ = ref true in
  while !continue_ do
    match Queue.take_opt t.queue with
    | None -> continue_ := false
    | Some u ->
        t.queued.(u) <- false;
        if is_sink t u && u <> t.core.Fast_graph.destination then
          if !budget = 0 then begin
            exhausted := true;
            continue_ := false;
            (* put it back so a later run can resume *)
            t.queued.(u) <- true;
            Queue.add u t.queue
          end
          else begin
            decr budget;
            step rule t u;
            (* u may still be a sink only in the degenerate isolated
               case, which is_sink excludes; neighbours were enqueued
               by flip. *)
            enqueue_if_sink t u
          end
        else
          (match t.sink with
          | None -> ()
          | Some s -> s.Fast_sink.on_stale u)
  done;
  {
    work = t.work;
    steps_per_node = Array.copy t.steps_per_node;
    edge_reversals = t.edge_reversals;
    quiescent = not !exhausted;
    destination_oriented = destination_oriented t;
  }

let to_digraph t =
  let g = ref (Digraph.of_directed_edges []) in
  for u = 0 to t.core.Fast_graph.n - 1 do
    g := Digraph.add_node !g u;
    Array.iteri
      (fun i w -> if t.out_.(u).(i) then g := Digraph.add_directed_edge !g u w)
      t.core.Fast_graph.nbrs.(u)
  done;
  !g
