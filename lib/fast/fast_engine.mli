(** A mutable, array-based link reversal engine for large instances.

    The persistent automata in [linkrev] are built for checking — every
    intermediate state is a value.  This engine is built for running:
    adjacency in flat arrays, a sink worklist, O(1) amortized edge
    flips; Partial Reversal on a 100k-node graph completes in
    milliseconds rather than minutes.

    It implements exactly {!Linkrev.Pr} (list-based partial reversal,
    one sink at a time) and {!Linkrev.Full_reversal}; the test suite
    checks both against the persistent implementations — same total
    work, same per-node step counts, same final orientation — on every
    instance small enough to compare (differential testing). *)

open Lr_graph

type rule = Partial | Full

type outcome = Fast_outcome.t = {
  work : int;  (** Total node steps. *)
  steps_per_node : int array;  (** Indexed by node id. *)
  edge_reversals : int;
  quiescent : bool;  (** False only when [max_steps] was hit. *)
  destination_oriented : bool;
}

type t

val create : Generators.instance -> t
(** Builds the engine from an instance.  Node ids must be
    [0 .. n-1]; @raise Invalid_argument otherwise (use
    {!Lr_graph.Generators} outputs, which satisfy this). *)

val of_config : Linkrev.Config.t -> t

val of_core : Fast_graph.t -> t
(** A fresh engine over an already-built flat graph (shares the
    immutable adjacency, copies the orientation). *)

val set_sink : t -> Fast_sink.t option -> unit
(** Attach observation callbacks (see {!Fast_sink}); [None] detaches.
    The engine notifies [on_step]/[on_flip] from {!run}'s step loop and
    [on_stale] for scheduler pops that fire no step. *)

val fingerprint : t -> int64
(** {!Fast_graph.fingerprint} of the current orientation. *)

val run : ?max_steps:int -> rule -> t -> outcome
(** Run to quiescence (default step bound [10_000_000]).  The engine is
    single-use: running it again continues from the final state (which
    is quiescent, so the second run is a no-op). *)

val to_digraph : t -> Digraph.t
(** Snapshot of the current orientation (small instances; used by the
    differential tests). *)
