open Lr_graph

type outcome = Fast_outcome.t = {
  work : int;
  steps_per_node : int array;
  edge_reversals : int;
  quiescent : bool;
  destination_oriented : bool;
}

type t = {
  core : Fast_graph.t;
  init_in_slots : int array array;
      (** Per node, the slots of initially incoming edges — the even
          reversal set. *)
  init_out_slots : int array array;  (** The odd reversal set. *)
  counts : int array;  (** NewPR's per-node step counter. *)
  out_ : bool array array;
  in_deg : int array;
  queued : bool array;
  queue : int Queue.t;
  steps_per_node : int array;
  mutable work : int;
  mutable edge_reversals : int;
  mutable sink : Fast_sink.t option;
}

let degree t u = Fast_graph.degree t.core u
let set_sink t sink = t.sink <- sink
let fingerprint t = Fast_graph.fingerprint t.core t.out_

let is_sink t u =
  let d = degree t u in
  d > 0 && t.in_deg.(u) = d

let enqueue_if_sink t u =
  if (not t.queued.(u)) && u <> t.core.Fast_graph.destination && is_sink t u
  then begin
    t.queued.(u) <- true;
    Queue.add u t.queue
  end

let slots_where core value =
  Array.init core.Fast_graph.n (fun u ->
      let row = core.Fast_graph.out0.(u) in
      let k = ref 0 in
      Array.iter (fun o -> if Bool.equal o value then incr k) row;
      let slots = Array.make !k 0 in
      let j = ref 0 in
      Array.iteri
        (fun i o ->
          if Bool.equal o value then begin
            slots.(!j) <- i;
            incr j
          end)
        row;
      slots)

let of_core core =
  let n = core.Fast_graph.n in
  let t =
    {
      core;
      init_in_slots = slots_where core false;
      init_out_slots = slots_where core true;
      counts = Array.make n 0;
      out_ = Fast_graph.initial_out core;
      in_deg = Fast_graph.initial_in_degree core;
      queued = Array.make n false;
      queue = Queue.create ();
      steps_per_node = Array.make n 0;
      work = 0;
      edge_reversals = 0;
      sink = None;
    }
  in
  for u = 0 to n - 1 do
    enqueue_if_sink t u
  done;
  t

let create inst = of_core (Fast_graph.of_instance inst)
let of_config config = of_core (Fast_graph.of_config config)
let count t u = t.counts.(u)

(* Reverse slot [i] of sink [u]: the edge becomes outgoing at [u]. *)
let flip t u i =
  let w = t.core.Fast_graph.nbrs.(u).(i) in
  let j = t.core.Fast_graph.mirror.(u).(i) in
  t.out_.(u).(i) <- true;
  t.out_.(w).(j) <- false;
  t.in_deg.(u) <- t.in_deg.(u) - 1;
  t.in_deg.(w) <- t.in_deg.(w) + 1;
  t.edge_reversals <- t.edge_reversals + 1;
  (match t.sink with None -> () | Some s -> s.Fast_sink.on_flip u i w);
  enqueue_if_sink t w

(* Algorithm 2: a sink with even count reverses the edges to its
   *initial* in-neighbours, with odd count its initial out-neighbours;
   the counter always increments.  When the chosen slot set is empty
   (initial sources on even parity, initial sinks on odd) this is a
   dummy step: only the parity flips, and [u] remains a sink. *)
let step t u =
  t.steps_per_node.(u) <- t.steps_per_node.(u) + 1;
  t.work <- t.work + 1;
  let slots =
    if t.counts.(u) land 1 = 0 then t.init_in_slots.(u)
    else t.init_out_slots.(u)
  in
  (match t.sink with
  | None -> ()
  | Some s ->
      if Array.length slots = 0 then s.Fast_sink.on_dummy u
      else s.Fast_sink.on_step u);
  t.counts.(u) <- t.counts.(u) + 1;
  (* [u] is a sink, so every chosen edge is currently incoming. *)
  Array.iter (fun i -> flip t u i) slots

let destination_oriented t =
  let n = t.core.Fast_graph.n in
  let seen = Array.make n false in
  let q = Queue.create () in
  seen.(t.core.Fast_graph.destination) <- true;
  Queue.add t.core.Fast_graph.destination q;
  let reached = ref 1 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iteri
      (fun i w ->
        if (not t.out_.(u).(i)) && not seen.(w) then begin
          seen.(w) <- true;
          incr reached;
          Queue.add w q
        end)
      t.core.Fast_graph.nbrs.(u)
  done;
  !reached = n

let run ?(max_steps = 10_000_000) t =
  let budget = ref max_steps in
  let exhausted = ref false in
  let continue_ = ref true in
  while !continue_ do
    match Queue.take_opt t.queue with
    | None -> continue_ := false
    | Some u ->
        t.queued.(u) <- false;
        if is_sink t u && u <> t.core.Fast_graph.destination then
          if !budget = 0 then begin
            exhausted := true;
            continue_ := false;
            t.queued.(u) <- true;
            Queue.add u t.queue
          end
          else begin
            decr budget;
            step t u;
            (* after a dummy step [u] is still a sink and must run
               again with the flipped parity *)
            enqueue_if_sink t u
          end
        else
          (match t.sink with
          | None -> ()
          | Some s -> s.Fast_sink.on_stale u)
  done;
  {
    work = t.work;
    steps_per_node = Array.copy t.steps_per_node;
    edge_reversals = t.edge_reversals;
    quiescent = not !exhausted;
    destination_oriented = destination_oriented t;
  }

let to_digraph t =
  let g = ref (Digraph.of_directed_edges []) in
  for u = 0 to t.core.Fast_graph.n - 1 do
    g := Digraph.add_node !g u;
    Array.iteri
      (fun i w -> if t.out_.(u).(i) then g := Digraph.add_directed_edge !g u w)
      t.core.Fast_graph.nbrs.(u)
  done;
  !g
