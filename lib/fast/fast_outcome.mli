(** The result record every flat-array engine returns — PR, FR
    ({!Fast_engine}) and NewPR ({!Fast_new_pr}) agree on it, so
    harnesses can compare engines without conversion and hot paths
    allocate exactly one record plus one int array per run. *)

type t = {
  work : int;  (** Total node steps (dummy steps included for NewPR). *)
  steps_per_node : int array;  (** Indexed by node id. *)
  edge_reversals : int;
  quiescent : bool;  (** False only when [max_steps] was hit. *)
  destination_oriented : bool;
}
