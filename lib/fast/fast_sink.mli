(** Observation sink for the flat-array engines.

    A sink is a bundle of callbacks the engines invoke from their step
    loops; [Lr_trace.Recorder] implements one that serializes the run
    into a binary trace.  Engines hold [Fast_sink.t option] and test it
    with a single pattern match per notification, so the disabled path
    ([None], the default) costs one branch and allocates nothing — the
    zero-allocation step loop stays zero-allocation.

    Callback protocol, in engine execution order:
    - [on_stale u] — the scheduler popped [u] from the worklist but [u]
      is no longer a sink; no step fires.  Recording these preserves the
      exact scheduler decision sequence.
    - [on_step u] — a real reversal step begins at sink [u]; the edges
      it reverses follow as [on_flip] calls before the next
      [on_step]/[on_dummy]/[on_stale].
    - [on_flip u i w] — the current step reversed the edge in slot [i]
      of [u]'s sorted adjacency row (its neighbour is [w]) to point
      [u -> w].  Slots arrive in ascending order within a step.
    - [on_dummy u] — NewPR dummy step at [u]: only the parity flips,
      nothing is reversed. *)

type t = {
  on_step : int -> unit;
  on_flip : int -> int -> int -> unit;
  on_dummy : int -> unit;
  on_stale : int -> unit;
}

val ignore_all : t
(** A sink that drops every notification (useful for overhead tests). *)
