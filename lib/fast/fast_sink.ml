(* See fast_sink.mli. *)

type t = {
  on_step : int -> unit;
  on_flip : int -> int -> int -> unit;
  on_dummy : int -> unit;
  on_stale : int -> unit;
}

let ignore_all =
  {
    on_step = ignore;
    on_flip = (fun _ _ _ -> ());
    on_dummy = ignore;
    on_stale = ignore;
  }
