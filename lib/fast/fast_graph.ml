open Lr_graph

type t = {
  n : int;
  destination : int;
  nbrs : int array array;
  mirror : int array array;
  out0 : bool array array;
}

let of_instance inst =
  let g = inst.Generators.graph in
  let nodes = Digraph.nodes g in
  let n = Node.Set.cardinal nodes in
  if not (Node.Set.equal nodes (Node.Set.of_range 0 (n - 1))) then
    invalid_arg "Fast_graph.of_instance: node ids must be 0..n-1";
  let nbrs =
    Array.init n (fun u ->
        Array.of_list (Node.Set.elements (Digraph.neighbors g u)))
  in
  (* Mirror slots in one pass over all adjacency entries.  The rows are
     sorted, so sweeping [u] upward visits the occurrences of [u] inside
     each [nbrs.(w)] in row order: a per-node cursor is exactly the
     index of [u] in [nbrs.(w)].  O(sum of degrees), where the old
     per-pair linear scan was O(sum of degrees squared). *)
  let mirror = Array.init n (fun u -> Array.make (Array.length nbrs.(u)) 0) in
  let cursor = Array.make n 0 in
  for u = 0 to n - 1 do
    let row = nbrs.(u) in
    for i = 0 to Array.length row - 1 do
      let w = row.(i) in
      mirror.(u).(i) <- cursor.(w);
      cursor.(w) <- cursor.(w) + 1
    done
  done;
  let out0 =
    Array.init n (fun u ->
        Array.map (fun w -> Digraph.dir g u w = Digraph.Out) nbrs.(u))
  in
  { n; destination = inst.Generators.destination; nbrs; mirror; out0 }

let of_config config =
  of_instance
    {
      Generators.graph = config.Linkrev.Config.initial;
      destination = config.Linkrev.Config.destination;
    }

let degree t u = Array.length t.nbrs.(u)

(* Must mirror [Digraph.fingerprint] exactly: FNV-1a over node ids
   ascending, then (lo, hi, oriented-low-to-high) per skeleton edge in
   lexicographic order.  Rows are sorted, so scanning [u] ascending and
   keeping only [w > u] visits edges in exactly that order. *)
let fingerprint t out_ =
  let prime = 0x100000001b3L in
  let mix h x = Int64.mul (Int64.logxor h (Int64.of_int x)) prime in
  let h = ref 0xcbf29ce484222325L in
  for u = 0 to t.n - 1 do
    h := mix !h u
  done;
  for u = 0 to t.n - 1 do
    let row = t.nbrs.(u) in
    for i = 0 to Array.length row - 1 do
      let w = row.(i) in
      if w > u then
        h := mix (mix (mix !h u) w) (if out_.(u).(i) then 1 else 0)
    done
  done;
  !h

let initial_out t = Array.map Array.copy t.out0

let initial_in_degree t =
  Array.init t.n (fun u ->
      Array.fold_left (fun acc o -> if o then acc else acc + 1) 0 t.out0.(u))
