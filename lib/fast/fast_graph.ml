open Lr_graph

type t = {
  n : int;
  destination : int;
  nbrs : int array array;
  mirror : int array array;
  out0 : bool array array;
}

let of_instance inst =
  let g = inst.Generators.graph in
  let nodes = Digraph.nodes g in
  let n = Node.Set.cardinal nodes in
  if not (Node.Set.equal nodes (Node.Set.of_range 0 (n - 1))) then
    invalid_arg "Fast_graph.of_instance: node ids must be 0..n-1";
  let nbrs =
    Array.init n (fun u ->
        Array.of_list (Node.Set.elements (Digraph.neighbors g u)))
  in
  (* Mirror slots in one pass over all adjacency entries.  The rows are
     sorted, so sweeping [u] upward visits the occurrences of [u] inside
     each [nbrs.(w)] in row order: a per-node cursor is exactly the
     index of [u] in [nbrs.(w)].  O(sum of degrees), where the old
     per-pair linear scan was O(sum of degrees squared). *)
  let mirror = Array.init n (fun u -> Array.make (Array.length nbrs.(u)) 0) in
  let cursor = Array.make n 0 in
  for u = 0 to n - 1 do
    let row = nbrs.(u) in
    for i = 0 to Array.length row - 1 do
      let w = row.(i) in
      mirror.(u).(i) <- cursor.(w);
      cursor.(w) <- cursor.(w) + 1
    done
  done;
  let out0 =
    Array.init n (fun u ->
        Array.map
          (fun w -> Digraph.direction_equal (Digraph.dir g u w) Digraph.Out)
          nbrs.(u))
  in
  { n; destination = inst.Generators.destination; nbrs; mirror; out0 }

let of_config config =
  of_instance
    {
      Generators.graph = config.Linkrev.Config.initial;
      destination = config.Linkrev.Config.destination;
    }

let degree t u = Array.length t.nbrs.(u)

(* Must mirror [Digraph.fingerprint] exactly: FNV-1a over node ids
   ascending, then (lo, hi, oriented-low-to-high) per skeleton edge in
   lexicographic order.  Rows are sorted, so scanning [u] ascending and
   keeping only [w > u] visits edges in exactly that order. *)
let fingerprint t out_ =
  let prime = 0x100000001b3L in
  let mix h x = Int64.mul (Int64.logxor h (Int64.of_int x)) prime in
  let h = ref 0xcbf29ce484222325L in
  for u = 0 to t.n - 1 do
    h := mix !h u
  done;
  for u = 0 to t.n - 1 do
    let row = t.nbrs.(u) in
    for i = 0 to Array.length row - 1 do
      let w = row.(i) in
      if w > u then
        h := mix (mix (mix !h u) w) (if out_.(u).(i) then 1 else 0)
    done
  done;
  !h

let initial_out t = Array.map Array.copy t.out0

let initial_in_degree t =
  Array.init t.n (fun u ->
      Array.fold_left (fun acc o -> if o then acc else acc + 1) 0 t.out0.(u))

module Dyn = struct
  type graph = t

  type t = {
    n : int;
    nbr : int array array;
    mir : int array array;
    deg : int array;
  }

  let of_graph (g : graph) =
    {
      n = g.n;
      nbr = Array.map Array.copy g.nbrs;
      mir = Array.map Array.copy g.mirror;
      deg = Array.map Array.length g.nbrs;
    }

  let num_nodes t = t.n
  let degree t u = t.deg.(u)
  let nbr t u i = t.nbr.(u).(i)

  let slot_of t u v =
    let row = t.nbr.(u) and d = t.deg.(u) in
    let rec find i = if i >= d then -1 else if row.(i) = v then i else find (i + 1) in
    find 0

  let mem_edge t u v = u >= 0 && u < t.n && v >= 0 && v < t.n && slot_of t u v >= 0

  let ensure_capacity t u =
    if t.deg.(u) = Array.length t.nbr.(u) then begin
      let cap = max 4 (2 * Array.length t.nbr.(u)) in
      let grow a =
        let b = Array.make cap 0 in
        Array.blit a 0 b 0 t.deg.(u);
        b
      in
      t.nbr.(u) <- grow t.nbr.(u);
      t.mir.(u) <- grow t.mir.(u)
    end

  let add_edge t u v =
    if u = v then invalid_arg "Fast_graph.Dyn.add_edge: self-loop";
    ensure_capacity t u;
    ensure_capacity t v;
    let iu = t.deg.(u) and iv = t.deg.(v) in
    t.nbr.(u).(iu) <- v;
    t.mir.(u).(iu) <- iv;
    t.nbr.(v).(iv) <- u;
    t.mir.(v).(iv) <- iu;
    t.deg.(u) <- iu + 1;
    t.deg.(v) <- iv + 1

  (* Drop slot [i] of [u] by moving the last entry into its place; the
     moved neighbour's backpointer must then point at the new slot. *)
  let remove_slot t u i =
    let last = t.deg.(u) - 1 in
    if i <> last then begin
      let w = t.nbr.(u).(last) and k = t.mir.(u).(last) in
      t.nbr.(u).(i) <- w;
      t.mir.(u).(i) <- k;
      t.mir.(w).(k) <- i
    end;
    t.deg.(u) <- last

  let remove_edge t u v =
    let i = slot_of t u v in
    if i < 0 then invalid_arg "Fast_graph.Dyn.remove_edge: no such edge";
    let j = t.mir.(u).(i) in
    (* [remove_slot t u i] never moves [v]'s own slot (an edge occurs
       once per row), so [j] stays valid for the second removal. *)
    remove_slot t u i;
    remove_slot t v j
end
