(** A mutable, array-based engine for {!Linkrev.New_pr} — Algorithm 2,
    the paper's static formulation of Partial Reversal.

    Same construction as {!Fast_engine}, same allocation-free hot path:
    adjacency, mirror slots and the current orientation live in flat
    arrays, and the per-node initial in/out-neighbour sets are
    precomputed as slot arrays so a reversal touches exactly the edges
    it flips.  Dummy steps (initial sources at even parity, initial
    sinks at odd) cost O(1): the counter increments and the node is
    requeued.

    Differentially tested against the persistent {!Linkrev.New_pr}
    automaton — same total work, same per-node step counts, same final
    orientation, acyclic at every observed state — in
    [test_fast_new_pr.ml]. *)

open Lr_graph

type outcome = Fast_outcome.t = {
  work : int;  (** Total node steps, dummy steps included. *)
  steps_per_node : int array;  (** Indexed by node id. *)
  edge_reversals : int;  (** Excludes dummy steps. *)
  quiescent : bool;  (** False only when [max_steps] was hit. *)
  destination_oriented : bool;
}

type t

val create : Generators.instance -> t
(** Node ids must be [0 .. n-1]; @raise Invalid_argument otherwise. *)

val of_config : Linkrev.Config.t -> t

val of_core : Fast_graph.t -> t
(** A fresh engine over an already-built flat graph. *)

val count : t -> int -> int
(** NewPR's per-node counter in the current state. *)

val set_sink : t -> Fast_sink.t option -> unit
(** Attach observation callbacks (see {!Fast_sink}).  Dummy steps are
    reported through [on_dummy]; real steps through
    [on_step]/[on_flip]. *)

val fingerprint : t -> int64
(** {!Fast_graph.fingerprint} of the current orientation. *)

val run : ?max_steps:int -> t -> outcome
(** Run to quiescence (default step bound [10_000_000]).  Re-running
    continues from the final state, as in {!Fast_engine.run}. *)

val to_digraph : t -> Digraph.t
(** Snapshot of the current orientation (small instances; used by the
    differential tests). *)
