open Lr_graph

type ref_level = { tau : int; oid : Node.t; reflected : bool }

type height =
  | Null
  | Height of { level : ref_level; delta : int; id : Node.t }

let compare_level l1 l2 =
  match Int.compare l1.tau l2.tau with
  | 0 -> (
      match Node.compare l1.oid l2.oid with
      | 0 -> Bool.compare l1.reflected l2.reflected
      | c -> c)
  | c -> c

let compare_height h1 h2 =
  match (h1, h2) with
  | Null, Null -> 0
  | Null, Height _ -> 1
  | Height _, Null -> -1
  | Height a, Height b -> (
      match compare_level a.level b.level with
      | 0 -> (
          match Int.compare a.delta b.delta with
          | 0 -> Node.compare a.id b.id
          | c -> c)
      | c -> c)

let pp_height ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Height { level; delta; id } ->
      Format.fprintf ppf "(%d,%a,%d,%d,%a)" level.tau Node.pp level.oid
        (if level.reflected then 1 else 0)
        delta Node.pp id

type t = {
  dest : Node.t;
  mutable skel : Undirected.t;
  mutable heights : height Node.Map.t;
  mutable clock : int;
  mutable reactions : int;
  (* Nodes whose loss of downstream was caused directly by a link
     failure (they must run case 1, not 2-5). *)
  mutable failure_caused : Node.Set.t;
}

type event_result =
  | Maintained of { reactions : int }
  | Partition_detected of { cleared : Node.Set.t; reactions : int }

let destination t = t.dest
let height t u = Node.Map.find_or ~default:Null u t.heights
let skeleton t = t.skel
let reactions_total t = t.reactions
let is_null = function Null -> true | Height _ -> false
let is_routed t u = not (is_null (height t u))

let routed_neighbors t u =
  Node.Set.filter (is_routed t) (Undirected.neighbors t.skel u)

let downstream t u =
  let hu = height t u in
  if is_null hu then Node.Set.empty
  else
    Node.Set.filter
      (fun v -> compare_height (height t v) hu < 0)
      (routed_neighbors t u)

(* A routed non-destination node with routed neighbours but no
   downstream link must react. *)
let needs_reaction t u =
  (not (Node.equal u t.dest))
  && is_routed t u
  && (not (Node.Set.is_empty (routed_neighbors t u)))
  && Node.Set.is_empty (downstream t u)

(* A routed node whose routed neighbourhood is empty is stranded: no
   reaction can reach anyone, so it simply loses its height (it will
   re-join through a future link addition). *)
let stranded t u =
  (not (Node.equal u t.dest))
  && is_routed t u
  && Node.Set.is_empty (routed_neighbors t u)

let set_height t u h = t.heights <- Node.Map.add u h t.heights

let fresh_level t u =
  t.clock <- t.clock + 1;
  { tau = t.clock; oid = u; reflected = false }

let component t u =
  List.find (Node.Set.mem u) (Undirected.connected_components t.skel)

exception Partition of Node.Set.t

(* Execute one maintenance case at node [u] (which needs a reaction). *)
let react t u =
  t.reactions <- t.reactions + 1;
  let nbrs = routed_neighbors t u in
  let levels =
    Node.Set.fold
      (fun v acc ->
        match height t v with
        | Null -> acc
        | Height { level; _ } -> level :: acc)
      nbrs []
  in
  let distinct =
    List.sort_uniq compare_level levels
  in
  if Node.Set.mem u t.failure_caused then begin
    (* case 1: generate a new reference level *)
    t.failure_caused <- Node.Set.remove u t.failure_caused;
    set_height t u (Height { level = fresh_level t u; delta = 0; id = u })
  end
  else
    match distinct with
    | [] -> (* unreachable: needs_reaction demands routed neighbours *)
        set_height t u Null
    | [ level ] when not level.reflected ->
        (* case 3: reflect the level back *)
        set_height t u
          (Height { level = { level with reflected = true }; delta = 0; id = u })
    | [ level ] when Node.equal level.oid u ->
        (* case 4: own reflection returned — partition detected *)
        raise (Partition (component t u))
    | [ _level ] ->
        (* case 5: someone else's reflection — generate a new level *)
        set_height t u (Height { level = fresh_level t u; delta = 0; id = u })
    | _ :: _ :: _ ->
        (* case 2: propagate the highest reference level *)
        let max_level =
          List.fold_left
            (fun best l -> if compare_level l best > 0 then l else best)
            (List.hd distinct) (List.tl distinct)
        in
        let min_delta =
          Node.Set.fold
            (fun v acc ->
              match height t v with
              | Height { level; delta; _ } when compare_level level max_level = 0
                ->
                  min acc delta
              | _ -> acc)
            nbrs max_int
        in
        set_height t u
          (Height { level = max_level; delta = min_delta - 1; id = u })

(* Run reactions to quiescence.  On a case-4 partition, clear the
   partitioned component's heights and keep going (other reactors may
   remain elsewhere). *)
let stabilize t =
  let budget = ref ((8 * Undirected.num_nodes t.skel * Undirected.num_nodes t.skel) + 1000) in
  let cleared = ref Node.Set.empty in
  let reactions0 = t.reactions in
  let find_reactor () =
    Node.Set.fold
      (fun u acc ->
        match acc with
        | Some _ -> acc
        | None ->
            if stranded t u then Some (`Stranded u)
            else if needs_reaction t u then Some (`React u)
            else None)
      (Undirected.nodes t.skel)
      None
  in
  let rec loop () =
    decr budget;
    if !budget <= 0 then failwith "Tora.stabilize: budget exceeded (bug)"
    else
      match find_reactor () with
      | None -> ()
      | Some (`Stranded u) ->
          set_height t u Null;
          cleared := Node.Set.add u !cleared;
          loop ()
      | Some (`React u) ->
          (try react t u
           with Partition comp ->
             (* The detecting component cannot contain the destination
                when the protocol's assumptions hold; guard anyway. *)
             let comp = Node.Set.remove t.dest comp in
             Node.Set.iter (fun v -> set_height t v Null) comp;
             cleared := Node.Set.union !cleared comp);
          loop ()
  in
  loop ();
  t.failure_caused <- Node.Set.empty;
  let reactions = t.reactions - reactions0 in
  if Node.Set.is_empty !cleared then Maintained { reactions }
  else Partition_detected { cleared = !cleared; reactions }

(* Completed QRY/UPD flood: zero reference levels, delta = hop count. *)
let flood_heights t =
  let dist = Path.undirected_distances t.skel t.dest in
  Node.Set.iter
    (fun u ->
      match Node.Map.find_opt u dist with
      | Some d ->
          set_height t u
            (Height
               { level = { tau = 0; oid = t.dest; reflected = false };
                 delta = d;
                 id = u;
               })
      | None -> set_height t u Null)
    (Undirected.nodes t.skel)

let create config =
  let t =
    {
      dest = config.Linkrev.Config.destination;
      skel = Linkrev.Config.skeleton config;
      heights = Node.Map.empty;
      clock = 0;
      reactions = 0;
      failure_caused = Node.Set.empty;
    }
  in
  flood_heights t;
  t

let route t u =
  if Node.equal u t.dest then Some [ u ]
  else if not (is_routed t u) then None
  else
    let rec descend v acc fuel =
      if fuel = 0 then None
      else if Node.equal v t.dest then Some (List.rev (v :: acc))
      else
        let down = downstream t v in
        match
          Node.Set.fold
            (fun w best ->
              match best with
              | None -> Some w
              | Some b ->
                  if compare_height (height t w) (height t b) < 0 then Some w
                  else best)
            down None
        with
        | None -> None
        | Some w -> descend w (v :: acc) (fuel - 1)
    in
    descend u [] (Undirected.num_nodes t.skel + 1)

let has_route t u = Option.is_some (route t u)

let routed_fraction t =
  let nodes = Node.Set.remove t.dest (Undirected.nodes t.skel) in
  if Node.Set.is_empty nodes then 1.0
  else
    float_of_int (Node.Set.cardinal (Node.Set.filter (has_route t) nodes))
    /. float_of_int (Node.Set.cardinal nodes)

let fail_link t u v =
  if not (Undirected.mem_edge t.skel u v) then
    invalid_arg "Tora.fail_link: no such link";
  t.skel <- Undirected.remove_edge t.skel u v;
  t.clock <- t.clock + 1;
  (* Endpoints that lost their last downstream link react with case 1. *)
  List.iter
    (fun w ->
      if needs_reaction t w then
        t.failure_caused <- Node.Set.add w t.failure_caused)
    [ u; v ];
  stabilize t

(* Null nodes adjacent to routed ones join downstream, as if they had
   answered the routed side's UPD. *)
let rec absorb_unrouted t =
  let candidate =
    Node.Set.fold
      (fun u acc ->
        match acc with
        | Some _ -> acc
        | None ->
            if
              (not (is_routed t u))
              && not (Node.Set.is_empty (routed_neighbors t u))
            then Some u
            else None)
      (Undirected.nodes t.skel)
      None
  in
  match candidate with
  | None -> ()
  | Some u ->
      let best =
        Node.Set.fold
          (fun v acc ->
            let hv = height t v in
            match (acc, hv) with
            | Null, Height _ -> hv
            | Height _, Height _ when compare_height hv acc < 0 -> hv
            | _ -> acc)
          (routed_neighbors t u) Null
      in
      (match best with
      | Height { level; delta; _ } ->
          set_height t u (Height { level; delta = delta + 1; id = u })
      | Null -> ());
      absorb_unrouted t

let add_link t u v =
  if Undirected.mem_edge t.skel u v then
    invalid_arg "Tora.add_link: link already present";
  t.skel <- Undirected.add_edge t.skel u v;
  absorb_unrouted t;
  stabilize t

let acyclic t =
  (* Directed graph over routed nodes only. *)
  let g =
    Undirected.fold_edges
      (fun e acc ->
        let a, b = Edge.endpoints e in
        match (height t a, height t b) with
        | Height _, Height _ ->
            if compare_height (height t a) (height t b) > 0 then
              Digraph.add_directed_edge acc a b
            else Digraph.add_directed_edge acc b a
        | _ -> acc)
      t.skel
      (Digraph.of_directed_edges [])
  in
  Digraph.is_acyclic g
