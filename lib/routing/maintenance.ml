open Lr_graph
open Linkrev

type rule = Full_reversal | Partial_reversal

type t = {
  rule : rule;
  destination : Node.t;
  mutable heights : Heights.pr_height Node.Map.t;
  mutable graph : Digraph.t;
  mutable work : int;
}

type change_result =
  | Stabilized of { node_steps : int; affected : Node.Set.t }
  | Partitioned of Node.Set.t

let graph t = t.graph
let destination t = t.destination
let total_work t = t.work

let is_destination_oriented t =
  (* Only within the destination's component: nodes cut off by
     partitions are not expected to have routes. *)
  let comp =
    List.find
      (fun c -> Node.Set.mem t.destination c)
      (Undirected.connected_components (Digraph.skeleton t.graph))
  in
  Node.Set.subset comp (Node.Set.add t.destination (Digraph.reaches t.graph t.destination))

let height t u = Node.Map.find u t.heights
let height_pair t u =
  let h = height t u in
  (h.Heights.pa, h.Heights.pb)

let compare_heights t u v =
  Heights.compare_pr_height (height t u) (height t v)

let raise_height t u =
  let nbrs = Digraph.neighbors t.graph u in
  let hs = Node.Set.fold (fun v acc -> height t v :: acc) nbrs [] in
  match (t.rule, hs) with
  | _, [] -> height t u
  | Partial_reversal, _ ->
      let min_a = List.fold_left (fun m h -> min m h.Heights.pa) max_int hs in
      let new_a = min_a + 1 in
      let same = List.filter (fun h -> h.Heights.pa = new_a) hs in
      let new_b =
        match same with
        | [] -> (height t u).Heights.pb
        | _ -> List.fold_left (fun m h -> min m h.Heights.pb) max_int same - 1
      in
      { Heights.pa = new_a; pb = new_b; pid = u }
  | Full_reversal, _ ->
      let max_a = List.fold_left (fun m h -> max m h.Heights.pa) min_int hs in
      { Heights.pa = max_a + 1; pb = 0; pid = u }

(* Re-derive the orientation of [u]'s incident edges from heights. *)
let reorient_at t u =
  let hu = height t u in
  Node.Set.iter
    (fun v ->
      let hv = height t v in
      let d =
        if Heights.compare_pr_height hu hv > 0 then Digraph.Out else Digraph.In
      in
      t.graph <- Digraph.set_dir t.graph u v d)
    (Digraph.neighbors t.graph u)

let dest_component t =
  List.find
    (fun c -> Node.Set.mem t.destination c)
    (Undirected.connected_components (Digraph.skeleton t.graph))

(* Run reversals inside the destination's component until no sink other
   than the destination remains there. *)
let stabilize ?budget t =
  let comp = dest_component t in
  let affected = ref Node.Set.empty in
  let steps = ref 0 in
  let budget =
    match budget with
    | Some b -> b
    | None ->
        let n = Node.Set.cardinal comp in
        (4 * n * n) + 1000
  in
  (* First (minimum-id) non-destination sink.  [iter] visits the set
     ascending, and raising stops the scan at the first hit — the old
     [fold] kept walking the whole component after finding one. *)
  let exception Found of Node.t in
  let find_sink () =
    match
      Node.Set.iter
        (fun u ->
          if (not (Node.equal u t.destination)) && Digraph.is_sink t.graph u
          then raise (Found u))
        comp
    with
    | () -> None
    | exception Found u -> Some u
  in
  let rec loop () =
    if !steps > budget then
      failwith "Maintenance.stabilize: budget exceeded (bug)"
    else
      match find_sink () with
      | None -> ()
      | Some u ->
          t.heights <- Node.Map.add u (raise_height t u) t.heights;
          reorient_at t u;
          affected := Node.Set.add u !affected;
          incr steps;
          loop ()
  in
  loop ();
  t.work <- t.work + !steps;
  Stabilized { node_steps = !steps; affected = !affected }

let create rule config =
  let heights =
    match rule with
    | Partial_reversal ->
        Node.Set.fold
          (fun u m ->
            let r = Embedding.rank config.Config.embedding u in
            Node.Map.add u { Heights.pa = 0; pb = -r; pid = u } m)
          (Config.nodes config) Node.Map.empty
    | Full_reversal ->
        let n = Node.Set.cardinal (Config.nodes config) in
        Node.Set.fold
          (fun u m ->
            let r = Embedding.rank config.Config.embedding u in
            Node.Map.add u { Heights.pa = n - r; pb = 0; pid = u } m)
          (Config.nodes config) Node.Map.empty
  in
  let t =
    {
      rule;
      destination = config.Config.destination;
      heights;
      graph = config.Config.initial;
      work = 0;
    }
  in
  ignore (stabilize t);
  t

let route t u =
  if Node.equal u t.destination then Some [ u ]
  else
    let rec descend v acc fuel =
      if fuel = 0 then None
      else if Node.equal v t.destination then Some (List.rev (v :: acc))
      else
        let outs = Digraph.out_neighbors t.graph v in
        if Node.Set.is_empty outs then None
        else
          (* Steepest descent: the lowest out-neighbour. *)
          let next =
            Node.Set.fold
              (fun w best ->
                match best with
                | None -> Some w
                | Some b ->
                    if
                      Heights.compare_pr_height (height t w) (height t b) < 0
                    then Some w
                    else best)
              outs None
          in
          match next with
          | None -> None
          | Some w -> descend w (v :: acc) (fuel - 1)
    in
    descend u [] (Digraph.num_nodes t.graph + 1)

let fail_link t u v =
  if not (Digraph.mem_edge t.graph u v) then
    invalid_arg "Maintenance.fail_link: no such link";
  let before = dest_component t in
  t.graph <- Digraph.remove_edge t.graph u v;
  let after = dest_component t in
  let lost = Node.Set.diff before after in
  if Node.Set.is_empty lost then stabilize t
  else begin
    (* The destination's side may still need repair. *)
    ignore (stabilize t);
    Partitioned lost
  end

let add_link t u v =
  if Digraph.mem_edge t.graph u v then
    invalid_arg "Maintenance.add_link: link already present";
  if not (Node.Set.mem u (Digraph.nodes t.graph) && Node.Set.mem v (Digraph.nodes t.graph))
  then invalid_arg "Maintenance.add_link: unknown node";
  let hu = height t u and hv = height t v in
  if Heights.compare_pr_height hu hv > 0 then
    t.graph <- Digraph.add_directed_edge t.graph u v
  else t.graph <- Digraph.add_directed_edge t.graph v u;
  (* A new link never creates a sink, but it can give cut-off nodes a
     route again; it may also enable pending reversals elsewhere. *)
  ignore (stabilize t)

(* Overwrite every height with an arbitrary (adversarial) assignment
   and self-heal.  Heights are a total order, so the re-derived
   orientation is acyclic whatever [f] returns, and the ordinary
   stabilization loop converges from it.  Mirror of
   {!Fast_maintenance.adopt_heights} — the chaos differential oracle
   depends on both engines adopting identically. *)
let adoption_budget ~n ~spread = (4 * n * (n + spread)) + 1000

(* Height spread of an assignment: how far the adopted values range on
   each coordinate.  Work to stabilize from an arbitrary assignment
   grows with the spread (a node's [pa] climbs by at least one per
   reversal toward the assignment's ceiling), so the adoption budget
   scales with it — reducing to the ordinary O(n^2) budget when the
   spread is O(n). *)
let spread_of_heights heights =
  match Node.Map.bindings heights with
  | [] -> 0
  | (_, h0) :: _ ->
      let open Heights in
      let amin = ref h0.pa and amax = ref h0.pa in
      let bmin = ref h0.pb and bmax = ref h0.pb in
      Node.Map.iter
        (fun _ h ->
          if h.pa < !amin then amin := h.pa;
          if h.pa > !amax then amax := h.pa;
          if h.pb < !bmin then bmin := h.pb;
          if h.pb > !bmax then bmax := h.pb)
        heights;
      !amax - !amin + (!bmax - !bmin)

let adopt_heights t f =
  t.heights <-
    Node.Set.fold
      (fun u m ->
        let pa, pb = f u in
        Node.Map.add u { Heights.pa; pb; pid = u } m)
      (Digraph.nodes t.graph) Node.Map.empty;
  (* Re-derive every edge's orientation from the adopted heights.
     Visiting both endpoints sets each edge twice, consistently. *)
  Node.Set.iter (reorient_at t) (Digraph.nodes t.graph);
  let budget =
    adoption_budget
      ~n:(Node.Set.cardinal (Digraph.nodes t.graph))
      ~spread:(spread_of_heights t.heights)
  in
  stabilize ~budget t

let fail_node t u =
  if Node.equal u t.destination then
    invalid_arg "Maintenance.fail_node: cannot fail the destination";
  let before = dest_component t in
  Node.Set.iter
    (fun v -> t.graph <- Digraph.remove_edge t.graph u v)
    (Digraph.neighbors t.graph u);
  let after = dest_component t in
  let lost = Node.Set.diff before after in
  if Node.Set.is_empty lost then stabilize t
  else begin
    ignore (stabilize t);
    Partitioned lost
  end
