open Lr_graph
open Linkrev

type node_state = {
  me : Node.t;
  (* Local view: neighbour -> direction from my perspective. *)
  dirs : Digraph.direction Node.Map.t;
  lst : Node.Set.t;
  reversals : int;
}

type msg = Reversed

type result = {
  stats : Lr_sim.Network.stats;
  view_consistent : bool;
  destination_oriented : bool;
  reversals : int;
}

let believes_sink st =
  (not (Node.Map.is_empty st.dirs))
  && Node.Map.for_all (fun _ d -> Digraph.direction_equal d Digraph.In) st.dirs

(* PR's effect computed on the local view only. *)
let local_reverse st =
  let nbrs =
    Node.Map.fold (fun v _ acc -> Node.Set.add v acc) st.dirs Node.Set.empty
  in
  let to_reverse =
    if Node.Set.equal st.lst nbrs then nbrs else Node.Set.diff nbrs st.lst
  in
  let dirs =
    Node.Set.fold (fun v dirs -> Node.Map.add v Digraph.Out dirs) to_reverse
      st.dirs
  in
  ( { st with dirs; lst = Node.Set.empty; reversals = st.reversals + 1 },
    Node.Set.fold
      (fun v acc -> { Lr_sim.Network.dest = v; msg = Reversed } :: acc)
      to_reverse [] )

let activate ~destination st =
  if Node.equal st.me destination then (st, [])
  else
    (* One reversal at a time: after reversing, the local view shows
       outgoing edges, so the node stops believing it is a sink. *)
    if believes_sink st then local_reverse st else (st, [])

let handler config =
  let destination = config.Config.destination in
  {
    Lr_sim.Network.init =
      (fun u nbrs ->
        let dirs =
          Node.Set.fold
            (fun v m ->
              Node.Map.add v (Digraph.dir config.Config.initial u v) m)
            nbrs Node.Map.empty
        in
        activate ~destination { me = u; dirs; lst = Node.Set.empty; reversals = 0 });
    on_message =
      (fun _u st ~from Reversed ->
        (* The neighbour reversed our shared edge toward us. *)
        let st =
          {
            st with
            dirs = Node.Map.add from Digraph.In st.dirs;
            lst = Node.Set.add from st.lst;
          }
        in
        activate ~destination st);
  }

let run ?latency ?jitter ?drop ?max_deliveries config =
  let latency = match latency with Some f -> f | None -> fun _ _ -> 1.0 in
  let topology = Config.skeleton config in
  let net =
    Lr_sim.Network.create ~topology ~latency ?jitter ?drop (handler config)
  in
  let stats = Lr_sim.Network.run ?max_deliveries net in
  let state u = Lr_sim.Network.state net u in
  let view_consistent =
    Undirected.fold_edges
      (fun e acc ->
        acc
        &&
        let u, v = Edge.endpoints e in
        let du = Node.Map.find v (state u).dirs
        and dv = Node.Map.find u (state v).dirs in
        Digraph.direction_equal du (Digraph.flip dv))
      topology true
  in
  let destination_oriented =
    view_consistent
    &&
    let g =
      Undirected.fold_edges
        (fun e acc ->
          let u, v = Edge.endpoints e in
          match Node.Map.find v (state u).dirs with
          | Digraph.Out -> Digraph.add_directed_edge acc u v
          | Digraph.In -> Digraph.add_directed_edge acc v u)
        topology
        (Digraph.of_directed_edges [])
    in
    Digraph.is_destination_oriented g config.Config.destination
  in
  let reversals =
    List.fold_left
      (fun acc ((_, st) : Node.t * node_state) -> acc + st.reversals)
      0
      (Lr_sim.Network.states net)
  in
  { stats; view_consistent; destination_oriented; reversals }

let find_inconsistency ?(attempts = 100) ?drop_rate ~n () =
  let p = Option.value ~default:0.3 drop_rate in
  let rec hunt seed =
    if seed >= attempts then None
    else
      let inst =
        Generators.random_connected_dag
          (Random.State.make [| 0x8a; seed |])
          ~n ~extra_edges:n
      in
      let config = Config.of_instance inst in
      let r =
        run
          ~jitter:(Random.State.make [| 0x8b; seed |], 4.0)
          ~drop:(Random.State.make [| 0x8c; seed |], p)
          config
      in
      if (not r.view_consistent) || not r.destination_oriented then
        Some (seed, r)
      else hunt (seed + 1)
  in
  hunt 0
