open Lr_graph
open Linkrev
module G = Lr_fast.Fast_graph

type cache_stats = { hits : int; misses : int; invalidations : int }

(* Next-hop cache cells. *)
let nh_unset = -2
let nh_none = -1

type t = {
  n : int;
  rule : Maintenance.rule;
  dest : int;
  adj : G.Dyn.t;
  (* PR/FR heights, keyed by slot; the pid component is the id itself.
     Edge orientation is derived: higher endpoint -> lower endpoint. *)
  ha : int array;
  hb : int array;
  in_deg : int array;
  (* Membership in the destination's component, kept incrementally. *)
  comp : bool array;
  mutable comp_size : int;
  (* Min-id sink worklist: binary heap + membership bits.  Lazily
     validated — a popped node steps only if it is still a non-
     destination sink inside the destination's component. *)
  heap : int array;
  mutable heap_len : int;
  inq : bool array;
  (* Next-hop cache: nh_unset, nh_none, or the cached hop. *)
  nh : int array;
  (* Step observer (trace recording): called after every reversal with
     the stepping node and its flipped neighbours.  The id buffer is
     reused across steps and must not be retained. *)
  mutable obs : (int -> int array -> int -> unit) option;
  obs_buf : int array;
  mutable work : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  (* BFS scratch. *)
  queue : int array;
  seen : bool array;
}

let destination t = t.dest
let num_nodes t = t.n
let total_work t = t.work
let mem_node t u = u >= 0 && u < t.n
let mem_edge t u v = G.Dyn.mem_edge t.adj u v
let cache_stats t = { hits = t.hits; misses = t.misses; invalidations = t.invalidations }

(* Same order as Heights.compare_pr_height on (pa, pb, pid). *)
let compare_heights t u v =
  if t.ha.(u) <> t.ha.(v) then compare t.ha.(u) t.ha.(v)
  else if t.hb.(u) <> t.hb.(v) then compare t.hb.(u) t.hb.(v)
  else compare u v

let edge_out t u v = compare_heights t u v > 0
let height t u = (t.ha.(u), t.hb.(u))

let is_sink t u =
  let d = G.Dyn.degree t.adj u in
  d > 0 && t.in_deg.(u) = d

(* {1 Worklist} *)

let heap_push t u =
  if not t.inq.(u) then begin
    t.inq.(u) <- true;
    let a = t.heap in
    let i = ref t.heap_len in
    t.heap_len <- t.heap_len + 1;
    a.(!i) <- u;
    let sifting = ref true in
    while !sifting && !i > 0 do
      let p = (!i - 1) / 2 in
      if a.(p) > a.(!i) then begin
        let tmp = a.(p) in
        a.(p) <- a.(!i);
        a.(!i) <- tmp;
        i := p
      end
      else sifting := false
    done
  end

let heap_pop t =
  let a = t.heap in
  let top = a.(0) in
  t.heap_len <- t.heap_len - 1;
  t.inq.(top) <- false;
  if t.heap_len > 0 then begin
    a.(0) <- a.(t.heap_len);
    let i = ref 0 in
    let sifting = ref true in
    while !sifting do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < t.heap_len && a.(l) < a.(!m) then m := l;
      if r < t.heap_len && a.(r) < a.(!m) then m := r;
      if !m <> !i then begin
        let tmp = a.(!m) in
        a.(!m) <- a.(!i);
        a.(!i) <- tmp;
        i := !m
      end
      else sifting := false
    done
  end;
  top

let push_if_sink t u = if u <> t.dest && is_sink t u then heap_push t u

(* The minimum-id valid sink, or -1: exactly the node the reference's
   ascending-order component scan would select. *)
let rec pop_sink t =
  if t.heap_len = 0 then -1
  else
    let u = heap_pop t in
    if t.comp.(u) && u <> t.dest && is_sink t u then u else pop_sink t

(* {1 Next-hop cache} *)

let invalidate t u =
  if t.nh.(u) <> nh_unset then begin
    t.nh.(u) <- nh_unset;
    t.invalidations <- t.invalidations + 1
  end

(* Steepest descent: the lowest out-neighbour of [v], or -1. *)
let compute_next t v =
  let d = G.Dyn.degree t.adj v in
  let best = ref (-1) in
  for i = 0 to d - 1 do
    let w = G.Dyn.nbr t.adj v i in
    if compare_heights t v w > 0
       && (!best < 0 || compare_heights t w !best < 0)
    then best := w
  done;
  !best

let next_hop t v =
  let c = t.nh.(v) in
  if c <> nh_unset then begin
    t.hits <- t.hits + 1;
    c
  end
  else begin
    t.misses <- t.misses + 1;
    let c = match compute_next t v with -1 -> nh_none | w -> w in
    t.nh.(v) <- c;
    c
  end

(* {1 Repair} *)

(* One reversal at the sink [u]: raise its height per the rule, adjust
   in-degrees along the (derived) flipped edges, queue any neighbour
   that just became a sink, and drop the cache entries whose choice the
   raise can change — [u]'s own, and every neighbour's ([u] was in every
   neighbour's out-set, being a sink). *)
let step t u =
  let d = G.Dyn.degree t.adj u in
  (match t.rule with
  | Maintenance.Partial_reversal ->
      let min_a = ref max_int in
      for i = 0 to d - 1 do
        let w = G.Dyn.nbr t.adj u i in
        if t.ha.(w) < !min_a then min_a := t.ha.(w)
      done;
      let new_a = !min_a + 1 in
      let min_b = ref max_int and same = ref false in
      for i = 0 to d - 1 do
        let w = G.Dyn.nbr t.adj u i in
        if t.ha.(w) = new_a then begin
          same := true;
          if t.hb.(w) < !min_b then min_b := t.hb.(w)
        end
      done;
      t.ha.(u) <- new_a;
      if !same then t.hb.(u) <- !min_b - 1
  | Maintenance.Full_reversal ->
      let max_a = ref min_int in
      for i = 0 to d - 1 do
        let w = G.Dyn.nbr t.adj u i in
        if t.ha.(w) > !max_a then max_a := t.ha.(w)
      done;
      t.ha.(u) <- !max_a + 1;
      t.hb.(u) <- 0);
  invalidate t u;
  let flipped = ref 0 in
  for i = 0 to d - 1 do
    let w = G.Dyn.nbr t.adj u i in
    invalidate t w;
    if compare_heights t u w > 0 then begin
      (* This edge flipped from w -> u to u -> w. *)
      t.in_deg.(u) <- t.in_deg.(u) - 1;
      t.in_deg.(w) <- t.in_deg.(w) + 1;
      t.obs_buf.(!flipped) <- w;
      incr flipped;
      push_if_sink t w
    end
  done;
  (match t.obs with None -> () | Some f -> f u t.obs_buf !flipped);
  push_if_sink t u

(* Identical control to the reference: min-id sink each iteration, same
   budget over the current component size, same failure message. *)
let stabilize ?budget t =
  let budget =
    match budget with
    | Some b -> b
    | None -> (4 * t.comp_size * t.comp_size) + 1000
  in
  let steps = ref 0 in
  let affected = ref Node.Set.empty in
  let running = ref true in
  while !running do
    if !steps > budget then
      failwith "Maintenance.stabilize: budget exceeded (bug)";
    match pop_sink t with
    | -1 -> running := false
    | u ->
        step t u;
        affected := Node.Set.add u !affected;
        incr steps
  done;
  t.work <- t.work + !steps;
  Maintenance.Stabilized { node_steps = !steps; affected = !affected }

(* {1 Component membership} *)

(* After a disconnecting change inside the destination's component:
   re-derive the component by BFS and report the nodes that fell out of
   it (removal can only shrink it). *)
let recompute_comp t =
  let q = t.queue and seen = t.seen in
  Array.fill seen 0 t.n false;
  seen.(t.dest) <- true;
  q.(0) <- t.dest;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let x = q.(!head) in
    incr head;
    for i = 0 to G.Dyn.degree t.adj x - 1 do
      let w = G.Dyn.nbr t.adj x i in
      if not seen.(w) then begin
        seen.(w) <- true;
        q.(!tail) <- w;
        incr tail
      end
    done
  done;
  let lost = ref Node.Set.empty in
  for x = 0 to t.n - 1 do
    if t.comp.(x) && not seen.(x) then lost := Node.Set.add x !lost;
    t.comp.(x) <- seen.(x)
  done;
  t.comp_size <- !tail;
  !lost

(* A new link reattached [start]'s side to the destination's component:
   absorb it and queue its pending sinks (a partitioned side is left
   unrepaired, so it can hold sinks the reference's full component scan
   would now find). *)
let absorb t start =
  let q = t.queue in
  t.comp.(start) <- true;
  q.(0) <- start;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let x = q.(!head) in
    incr head;
    push_if_sink t x;
    for i = 0 to G.Dyn.degree t.adj x - 1 do
      let w = G.Dyn.nbr t.adj x i in
      if not t.comp.(w) then begin
        t.comp.(w) <- true;
        q.(!tail) <- w;
        incr tail
      end
    done
  done;
  t.comp_size <- t.comp_size + !tail

(* {1 Topology changes} *)

let fail_link t u v =
  if not (mem_edge t u v) then invalid_arg "Maintenance.fail_link: no such link";
  let was_in_comp = t.comp.(u) in
  G.Dyn.remove_edge t.adj u v;
  (* The lower endpoint loses an incoming edge; the upper one may have
     lost its last outgoing edge and become a sink. *)
  (if compare_heights t u v > 0 then t.in_deg.(v) <- t.in_deg.(v) - 1
   else t.in_deg.(u) <- t.in_deg.(u) - 1);
  invalidate t u;
  invalidate t v;
  push_if_sink t u;
  push_if_sink t v;
  let lost = if was_in_comp then recompute_comp t else Node.Set.empty in
  if Node.Set.is_empty lost then stabilize t
  else begin
    ignore (stabilize t);
    Maintenance.Partitioned lost
  end

let add_link t u v =
  if u = v then invalid_arg "Maintenance.add_link: self-loop";
  if not (mem_node t u && mem_node t v) then
    invalid_arg "Maintenance.add_link: unknown node";
  if mem_edge t u v then invalid_arg "Maintenance.add_link: link already present";
  G.Dyn.add_edge t.adj u v;
  (* Oriented by the current heights: the lower endpoint gains an
     incoming edge, so no new sink appears. *)
  (if compare_heights t u v > 0 then t.in_deg.(v) <- t.in_deg.(v) + 1
   else t.in_deg.(u) <- t.in_deg.(u) + 1);
  invalidate t u;
  invalidate t v;
  if t.comp.(u) && not t.comp.(v) then absorb t v
  else if t.comp.(v) && not t.comp.(u) then absorb t u;
  ignore (stabilize t)

let fail_node t u =
  if u = t.dest then invalid_arg "Maintenance.fail_node: cannot fail the destination";
  if not (mem_node t u) then invalid_arg "Maintenance.fail_node: unknown node";
  let was_in_comp = t.comp.(u) in
  while G.Dyn.degree t.adj u > 0 do
    let w = G.Dyn.nbr t.adj u 0 in
    G.Dyn.remove_edge t.adj u w;
    if compare_heights t u w > 0 then t.in_deg.(w) <- t.in_deg.(w) - 1;
    invalidate t w;
    push_if_sink t w
  done;
  t.in_deg.(u) <- 0;
  invalidate t u;
  let lost = if was_in_comp then recompute_comp t else Node.Set.empty in
  if Node.Set.is_empty lost then stabilize t
  else begin
    ignore (stabilize t);
    Maintenance.Partitioned lost
  end

(* {1 Construction} *)

let create rule config =
  let core = G.of_config config in
  let n = core.G.n in
  let ha = Array.make n 0 and hb = Array.make n 0 in
  Node.Set.iter
    (fun u ->
      let r = Embedding.rank config.Config.embedding u in
      match rule with
      | Maintenance.Partial_reversal ->
          ha.(u) <- 0;
          hb.(u) <- -r
      | Maintenance.Full_reversal ->
          ha.(u) <- n - r;
          hb.(u) <- 0)
    (Config.nodes config);
  let adj = G.Dyn.of_graph core in
  let t =
    {
      n;
      rule;
      dest = config.Config.destination;
      adj;
      ha;
      hb;
      in_deg = Array.make n 0;
      comp = Array.make n false;
      comp_size = 0;
      heap = Array.make n 0;
      heap_len = 0;
      inq = Array.make n false;
      nh = Array.make n nh_unset;
      obs = None;
      obs_buf = Array.make (max n 1) 0;
      work = 0;
      hits = 0;
      misses = 0;
      invalidations = 0;
      queue = Array.make (max n 1) 0;
      seen = Array.make n false;
    }
  in
  (* The embedding is a topological order of G'_init, so the initial
     orientation is exactly the height order — in-degrees follow. *)
  for u = 0 to n - 1 do
    let d = G.Dyn.degree t.adj u in
    let incoming = ref 0 in
    for i = 0 to d - 1 do
      if compare_heights t u (G.Dyn.nbr t.adj u i) < 0 then incr incoming
    done;
    t.in_deg.(u) <- !incoming
  done;
  ignore (recompute_comp t);
  for u = 0 to n - 1 do
    push_if_sink t u
  done;
  ignore (stabilize t);
  t

let set_observer t obs = t.obs <- obs

(* {1 Hostile-state adoption} *)

(* Overwrite every height with an arbitrary (adversarial) value and
   self-heal: the derived orientation of any height assignment is
   acyclic, so the ordinary sink worklist converges from it.  Same
   recipe as [create] — recount in-degrees, re-derive the component,
   reseed the worklist — plus a full next-hop cache drop, since every
   cached choice may now be stale. *)
let adopt_heights t f =
  for u = 0 to t.n - 1 do
    let a, b = f u in
    t.ha.(u) <- a;
    t.hb.(u) <- b;
    invalidate t u
  done;
  for u = 0 to t.n - 1 do
    let d = G.Dyn.degree t.adj u in
    let incoming = ref 0 in
    for i = 0 to d - 1 do
      if compare_heights t u (G.Dyn.nbr t.adj u i) < 0 then incr incoming
    done;
    t.in_deg.(u) <- !incoming
  done;
  ignore (recompute_comp t);
  for u = 0 to t.n - 1 do
    push_if_sink t u
  done;
  (* Spread-aware budget, same formula as the reference: stabilizing
     from an arbitrary assignment costs work proportional to the
     height spread, not just n^2. *)
  let budget =
    if t.n = 0 then Maintenance.adoption_budget ~n:0 ~spread:0
    else begin
      let amin = ref t.ha.(0) and amax = ref t.ha.(0) in
      let bmin = ref t.hb.(0) and bmax = ref t.hb.(0) in
      for u = 1 to t.n - 1 do
        if t.ha.(u) < !amin then amin := t.ha.(u);
        if t.ha.(u) > !amax then amax := t.ha.(u);
        if t.hb.(u) < !bmin then bmin := t.hb.(u);
        if t.hb.(u) > !bmax then bmax := t.hb.(u)
      done;
      Maintenance.adoption_budget ~n:t.n
        ~spread:(!amax - !amin + (!bmax - !bmin))
    end
  in
  stabilize ~budget t

(* {1 Queries} *)

let route t u =
  if not (mem_node t u) then None
  else if u = t.dest then Some [ u ]
  else
    let rec descend v acc fuel =
      if fuel = 0 then None
      else if v = t.dest then Some (List.rev (v :: acc))
      else
        match next_hop t v with
        | -1 -> None
        | w -> descend w (v :: acc) (fuel - 1)
    in
    descend u [] (t.n + 1)

let has_path t src =
  if not (mem_node t src) then false
  else if src = t.dest then true
  else begin
    let q = t.queue and seen = t.seen in
    Array.fill seen 0 t.n false;
    seen.(src) <- true;
    q.(0) <- src;
    let head = ref 0 and tail = ref 1 in
    let found = ref false in
    while (not !found) && !head < !tail do
      let x = q.(!head) in
      incr head;
      for i = 0 to G.Dyn.degree t.adj x - 1 do
        let w = G.Dyn.nbr t.adj x i in
        if compare_heights t x w > 0 && not seen.(w) then begin
          if w = t.dest then found := true;
          seen.(w) <- true;
          q.(!tail) <- w;
          incr tail
        end
      done
    done;
    !found
  end

(* Every node the destination's component can still route from: the
   backward closure of the destination along directed edges. *)
let reaches_destination t =
  let q = t.queue and seen = t.seen in
  Array.fill seen 0 t.n false;
  seen.(t.dest) <- true;
  q.(0) <- t.dest;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let x = q.(!head) in
    incr head;
    for i = 0 to G.Dyn.degree t.adj x - 1 do
      let w = G.Dyn.nbr t.adj x i in
      if compare_heights t w x > 0 && not seen.(w) then begin
        seen.(w) <- true;
        q.(!tail) <- w;
        incr tail
      end
    done
  done;
  Array.copy seen

let is_destination_oriented t =
  let reach = reaches_destination t in
  let ok = ref true in
  for u = 0 to t.n - 1 do
    if t.comp.(u) && u <> t.dest && not reach.(u) then ok := false
  done;
  !ok

let graph t =
  let g = ref (Digraph.of_directed_edges []) in
  for u = 0 to t.n - 1 do
    g := Digraph.add_node !g u
  done;
  for u = 0 to t.n - 1 do
    for i = 0 to G.Dyn.degree t.adj u - 1 do
      let w = G.Dyn.nbr t.adj u i in
      if compare_heights t u w > 0 then g := Digraph.add_directed_edge !g u w
    done
  done;
  !g

let consistent t =
  let ok = ref true in
  (* In-degrees match a recount of the derived orientation. *)
  for u = 0 to t.n - 1 do
    let incoming = ref 0 in
    for i = 0 to G.Dyn.degree t.adj u - 1 do
      if compare_heights t u (G.Dyn.nbr t.adj u i) < 0 then incr incoming
    done;
    if !incoming <> t.in_deg.(u) then ok := false
  done;
  (* Component bits and size match a fresh BFS. *)
  let q = t.queue and seen = t.seen in
  Array.fill seen 0 t.n false;
  seen.(t.dest) <- true;
  q.(0) <- t.dest;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let x = q.(!head) in
    incr head;
    for i = 0 to G.Dyn.degree t.adj x - 1 do
      let w = G.Dyn.nbr t.adj x i in
      if not seen.(w) then begin
        seen.(w) <- true;
        q.(!tail) <- w;
        incr tail
      end
    done
  done;
  if !tail <> t.comp_size then ok := false;
  for u = 0 to t.n - 1 do
    if t.comp.(u) <> seen.(u) then ok := false
  done;
  (* A stabilized engine holds no repairable sink. *)
  for u = 0 to t.n - 1 do
    if t.comp.(u) && u <> t.dest && is_sink t u then ok := false
  done;
  (* No cached next hop is stale. *)
  for u = 0 to t.n - 1 do
    if t.nh.(u) <> nh_unset then begin
      let fresh = match compute_next t u with -1 -> nh_none | w -> w in
      if fresh <> t.nh.(u) then ok := false
    end
  done;
  !ok && is_destination_oriented t
