open Lr_graph
open Linkrev
module G = Lr_fast.Fast_graph
module Uf = Union_find

type cache_stats = { hits : int; misses : int; invalidations : int }
type index = Scan | Uf
type index_stats = { slots : int; rebuilds : int }

(* Next-hop cache cells. *)
let nh_unset = -2
let nh_none = -1

type t = {
  n : int;
  rule : Maintenance.rule;
  dest : int;
  index : index;
  adj : G.Dyn.t;
  (* PR/FR heights, keyed by slot; the pid component is the id itself.
     Edge orientation is derived: higher endpoint -> lower endpoint. *)
  ha : int array;
  hb : int array;
  in_deg : int array;
  (* Membership in the destination's component.  [Scan] keeps the
     eager bits + size below; [Uf] keeps the union-find index. *)
  comp : bool array;
  mutable comp_size : int;
  (* [Uf] component index: a growable slot arena.  [slot.(u)] is [u]'s
     current live slot; retired slots stay behind as ghosts so the
     survivors' find paths keep resolving (see {!Union_find}). *)
  mutable uf : Uf.t;
  slot : int array;
  (* Per-class pending-sink bags (intrusive lists).  [bag_head]/
     [bag_tail] are slot-indexed and meaningful at class roots;
     [bag_next]/[in_bag] are node-indexed.  Invariant between
     operations: the heap is empty and every sink outside the
     destination's component sits in its class's bag — so absorbing a
     class requeues its pending sinks by draining one list instead of
     rescanning the side. *)
  mutable bag_head : int array;
  mutable bag_tail : int array;
  bag_next : int array;
  in_bag : bool array;
  mutable rebuilds : int;
  (* Min-id sink worklist: binary heap + membership bits.  Lazily
     validated — a popped node steps only if it is still a non-
     destination sink inside the destination's component. *)
  heap : int array;
  mutable heap_len : int;
  inq : bool array;
  (* Next-hop cache: nh_unset, nh_none, or the cached hop. *)
  nh : int array;
  (* Step observer (trace recording): called after every reversal with
     the stepping node and its flipped neighbours.  The id buffer is
     reused across steps and must not be retained. *)
  mutable obs : (int -> int array -> int -> unit) option;
  obs_buf : int array;
  mutable work : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  (* BFS scratch. *)
  queue : int array;
  seen : bool array;
  (* Split-check scratch: two queues plus timestamped visit marks, so
     a bidirectional probe costs its frontier, not an O(n) clear. *)
  bq_a : int array;
  bq_b : int array;
  bstamp : int array;
  mutable stamp : int;
}

let destination t = t.dest
let num_nodes t = t.n
let total_work t = t.work
let index t = t.index
let mem_node t u = u >= 0 && u < t.n
let mem_edge t u v = G.Dyn.mem_edge t.adj u v
let cache_stats t = { hits = t.hits; misses = t.misses; invalidations = t.invalidations }
let index_stats t = { slots = Uf.length t.uf; rebuilds = t.rebuilds }

(* Same order as Heights.compare_pr_height on (pa, pb, pid). *)
let compare_heights t u v =
  Order.lex3 (compare t.ha.(u) t.ha.(v)) (compare t.hb.(u) t.hb.(v))
    (compare u v)

let edge_out t u v = compare_heights t u v > 0
let height t u = (t.ha.(u), t.hb.(u))

let is_sink t u =
  let d = G.Dyn.degree t.adj u in
  d > 0 && t.in_deg.(u) = d

(* {1 Component membership} *)

let in_comp t u =
  match t.index with
  | Scan -> t.comp.(u)
  | Uf -> Uf.same t.uf t.slot.(u) t.slot.(t.dest)

let comp_size_now t =
  match t.index with
  | Scan -> t.comp_size
  | Uf -> Uf.size t.uf t.slot.(t.dest)

let in_dest_component t u = mem_node t u && in_comp t u
let component_size t = comp_size_now t

let component_epoch t =
  match t.index with Scan -> 0 | Uf -> Uf.epoch t.uf t.slot.(t.dest)

(* Seniority rank of a node: the destination outranks everything, then
   higher degree, then lower id — so the most stable endpoint anchors
   its class across merges and per-node state keyed near it survives. *)
let id_bits = 21
let id_mask = (1 lsl id_bits) - 1

let node_rank t u =
  if u = t.dest then max_int
  else (G.Dyn.degree t.adj u lsl id_bits) lor (id_mask - (u land id_mask))

let refresh_rank t u =
  match t.index with
  | Scan -> ()
  | Uf -> Uf.set_rank t.uf t.slot.(u) (node_rank t u)

(* {1 Worklist} *)

let heap_push t u =
  if not t.inq.(u) then begin
    t.inq.(u) <- true;
    let a = t.heap in
    let i = ref t.heap_len in
    t.heap_len <- t.heap_len + 1;
    a.(!i) <- u;
    let sifting = ref true in
    while !sifting && !i > 0 do
      let p = (!i - 1) / 2 in
      if a.(p) > a.(!i) then begin
        let tmp = a.(p) in
        a.(p) <- a.(!i);
        a.(!i) <- tmp;
        i := p
      end
      else sifting := false
    done
  end

let heap_pop t =
  let a = t.heap in
  let top = a.(0) in
  t.heap_len <- t.heap_len - 1;
  t.inq.(top) <- false;
  if t.heap_len > 0 then begin
    a.(0) <- a.(t.heap_len);
    let i = ref 0 in
    let sifting = ref true in
    while !sifting do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < t.heap_len && a.(l) < a.(!m) then m := l;
      if r < t.heap_len && a.(r) < a.(!m) then m := r;
      if !m <> !i then begin
        let tmp = a.(!m) in
        a.(!m) <- a.(!i);
        a.(!i) <- tmp;
        i := !m
      end
      else sifting := false
    done
  end;
  top

let push_if_sink t u = if u <> t.dest && is_sink t u then heap_push t u

(* {1 Pending-sink bags} *)

let ensure_bags t cap =
  let old = Array.length t.bag_head in
  if cap > old then begin
    let ncap = max cap (2 * old) in
    let grow a =
      let b = Array.make ncap (-1) in
      Array.blit a 0 b 0 old;
      b
    in
    t.bag_head <- grow t.bag_head;
    t.bag_tail <- grow t.bag_tail
  end

let uf_fresh t ~rank =
  let s = Uf.fresh t.uf ~rank in
  ensure_bags t (s + 1);
  t.bag_head.(s) <- -1;
  t.bag_tail.(s) <- -1;
  s

(* Union that also concatenates the junior class's pending-sink bag
   onto the senior's — O(1). *)
let uf_union t a b =
  let ra = Uf.find t.uf a and rb = Uf.find t.uf b in
  if ra = rb then ra
  else begin
    let s = Uf.union t.uf ra rb in
    let j = if s = ra then rb else ra in
    if t.bag_head.(j) >= 0 then begin
      if t.bag_head.(s) < 0 then begin
        t.bag_head.(s) <- t.bag_head.(j);
        t.bag_tail.(s) <- t.bag_tail.(j)
      end
      else begin
        t.bag_next.(t.bag_tail.(s)) <- t.bag_head.(j);
        t.bag_tail.(s) <- t.bag_tail.(j)
      end;
      t.bag_head.(j) <- -1;
      t.bag_tail.(j) <- -1
    end;
    s
  end

let bag_add t u =
  if not t.in_bag.(u) then begin
    t.in_bag.(u) <- true;
    t.bag_next.(u) <- -1;
    let r = Uf.find t.uf t.slot.(u) in
    if t.bag_head.(r) < 0 then begin
      t.bag_head.(r) <- u;
      t.bag_tail.(r) <- u
    end
    else begin
      t.bag_next.(t.bag_tail.(r)) <- u;
      t.bag_tail.(r) <- u
    end
  end

(* Requeue a class's pending sinks.  Entries can be stale — a bagged
   node may have stopped being a sink while detached — so each is
   re-checked; a stale entry is simply dropped (whatever makes it a
   sink again will push it). *)
let bag_drain_into_heap t r =
  let x = ref t.bag_head.(r) in
  t.bag_head.(r) <- -1;
  t.bag_tail.(r) <- -1;
  while !x >= 0 do
    let nxt = t.bag_next.(!x) in
    t.in_bag.(!x) <- false;
    push_if_sink t !x;
    x := nxt
  done

(* The minimum-id valid sink, or -1: exactly the node the reference's
   ascending-order component scan would select.  In [Uf] mode a popped
   sink outside the destination's component is parked in its class's
   bag instead of dropped, so a later absorb requeues it without
   rescanning the side. *)
let rec pop_sink t =
  if t.heap_len = 0 then -1
  else
    let u = heap_pop t in
    if u <> t.dest && is_sink t u then
      if in_comp t u then u
      else begin
        (match t.index with Scan -> () | Uf -> bag_add t u);
        pop_sink t
      end
    else pop_sink t

(* {1 Next-hop cache} *)

let invalidate t u =
  if t.nh.(u) <> nh_unset then begin
    t.nh.(u) <- nh_unset;
    t.invalidations <- t.invalidations + 1
  end

(* Steepest descent: the lowest out-neighbour of [v], or -1. *)
let compute_next t v =
  let d = G.Dyn.degree t.adj v in
  let best = ref (-1) in
  for i = 0 to d - 1 do
    let w = G.Dyn.nbr t.adj v i in
    if compare_heights t v w > 0
       && (!best < 0 || compare_heights t w !best < 0)
    then best := w
  done;
  !best

let next_hop t v =
  let c = t.nh.(v) in
  if c <> nh_unset then begin
    t.hits <- t.hits + 1;
    c
  end
  else begin
    t.misses <- t.misses + 1;
    let c = match compute_next t v with -1 -> nh_none | w -> w in
    t.nh.(v) <- c;
    c
  end

(* {1 Repair} *)

(* One reversal at the sink [u]: raise its height per the rule, adjust
   in-degrees along the (derived) flipped edges, queue any neighbour
   that just became a sink, and drop the cache entries whose choice the
   raise can change — [u]'s own, and every neighbour's ([u] was in every
   neighbour's out-set, being a sink). *)
let step t u =
  let d = G.Dyn.degree t.adj u in
  (match t.rule with
  | Maintenance.Partial_reversal ->
      let min_a = ref max_int in
      for i = 0 to d - 1 do
        let w = G.Dyn.nbr t.adj u i in
        if t.ha.(w) < !min_a then min_a := t.ha.(w)
      done;
      let new_a = !min_a + 1 in
      let min_b = ref max_int and same = ref false in
      for i = 0 to d - 1 do
        let w = G.Dyn.nbr t.adj u i in
        if t.ha.(w) = new_a then begin
          same := true;
          if t.hb.(w) < !min_b then min_b := t.hb.(w)
        end
      done;
      t.ha.(u) <- new_a;
      if !same then t.hb.(u) <- !min_b - 1
  | Maintenance.Full_reversal ->
      let max_a = ref min_int in
      for i = 0 to d - 1 do
        let w = G.Dyn.nbr t.adj u i in
        if t.ha.(w) > !max_a then max_a := t.ha.(w)
      done;
      t.ha.(u) <- !max_a + 1;
      t.hb.(u) <- 0);
  invalidate t u;
  let flipped = ref 0 in
  for i = 0 to d - 1 do
    let w = G.Dyn.nbr t.adj u i in
    invalidate t w;
    if compare_heights t u w > 0 then begin
      (* This edge flipped from w -> u to u -> w. *)
      t.in_deg.(u) <- t.in_deg.(u) - 1;
      t.in_deg.(w) <- t.in_deg.(w) + 1;
      t.obs_buf.(!flipped) <- w;
      incr flipped;
      push_if_sink t w
    end
  done;
  (match t.obs with None -> () | Some f -> f u t.obs_buf !flipped);
  push_if_sink t u

(* Identical control to the reference: min-id sink each iteration, same
   budget over the current component size, same failure message. *)
let stabilize ?budget t =
  let budget =
    match budget with
    | Some b -> b
    | None ->
        let s = comp_size_now t in
        (4 * s * s) + 1000
  in
  let steps = ref 0 in
  let affected = ref Node.Set.empty in
  let running = ref true in
  while !running do
    if !steps > budget then
      failwith "Maintenance.stabilize: budget exceeded (bug)";
    match pop_sink t with
    | -1 -> running := false
    | u ->
        step t u;
        affected := Node.Set.add u !affected;
        incr steps
  done;
  t.work <- t.work + !steps;
  Maintenance.Stabilized { node_steps = !steps; affected = !affected }

(* {1 Scan-mode component maintenance (the PR-8 eager baseline)} *)

(* After a disconnecting change inside the destination's component:
   re-derive the component by BFS and report the nodes that fell out of
   it (removal can only shrink it). *)
let recompute_comp t =
  let q = t.queue and seen = t.seen in
  Array.fill seen 0 t.n false;
  seen.(t.dest) <- true;
  q.(0) <- t.dest;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let x = q.(!head) in
    incr head;
    for i = 0 to G.Dyn.degree t.adj x - 1 do
      let w = G.Dyn.nbr t.adj x i in
      if not seen.(w) then begin
        seen.(w) <- true;
        q.(!tail) <- w;
        incr tail
      end
    done
  done;
  let lost = ref Node.Set.empty in
  for x = 0 to t.n - 1 do
    if t.comp.(x) && not seen.(x) then lost := Node.Set.add x !lost;
    t.comp.(x) <- seen.(x)
  done;
  t.comp_size <- !tail;
  !lost

(* A new link reattached [start]'s side to the destination's component:
   absorb it and queue its pending sinks (a partitioned side is left
   unrepaired, so it can hold sinks the reference's full component scan
   would now find). *)
let absorb_scan t start =
  let q = t.queue in
  t.comp.(start) <- true;
  q.(0) <- start;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let x = q.(!head) in
    incr head;
    push_if_sink t x;
    for i = 0 to G.Dyn.degree t.adj x - 1 do
      let w = G.Dyn.nbr t.adj x i in
      if not t.comp.(w) then begin
        t.comp.(w) <- true;
        q.(!tail) <- w;
        incr tail
      end
    done
  done;
  t.comp_size <- t.comp_size + !tail

(* {1 Uf-mode component maintenance} *)

(* Bidirectional alternating BFS after the edge [{a, b}] was removed
   from inside one (exact) class.  Expands one node per side per round,
   so a reconnection is found in O(min side) and a split costs the
   smaller side plus the lost side.  Answers [None] when the endpoints
   are still connected; otherwise [Some (q, k)] where [q.(0 .. k-1)]
   enumerates the side NOT containing the destination — exactly the
   lost set. *)
let split_after_removal t a b =
  t.stamp <- t.stamp + 2;
  let sa = t.stamp - 1 and sb = t.stamp in
  let qa = t.bq_a and qb = t.bq_b in
  t.bstamp.(a) <- sa;
  qa.(0) <- a;
  t.bstamp.(b) <- sb;
  qb.(0) <- b;
  let ha = ref 0 and ta = ref 1 and hb = ref 0 and tb = ref 1 in
  let da = ref (a = t.dest) and db = ref (b = t.dest) in
  let meet = ref false in
  let expand st other q h tl found_dest =
    let x = q.(!h) in
    incr h;
    let d = G.Dyn.degree t.adj x in
    let i = ref 0 in
    while (not !meet) && !i < d do
      let w = G.Dyn.nbr t.adj x !i in
      incr i;
      if t.bstamp.(w) = other then meet := true
      else if t.bstamp.(w) <> st then begin
        t.bstamp.(w) <- st;
        if w = t.dest then found_dest := true;
        q.(!tl) <- w;
        incr tl
      end
    done
  in
  let exhausted = ref 0 in
  while !exhausted = 0 && not !meet do
    if !ha < !ta then expand sa sb qa ha ta da else exhausted := 1;
    if !exhausted = 0 && not !meet then begin
      if !hb < !tb then expand sb sa qb hb tb db else exhausted := 2
    end
  done;
  if !meet then None
  else if !exhausted = 1 then
    if not !da then Some (qa, !ta)
    else begin
      (* Side [a] is the destination's — flush [b] to enumerate the
         lost side (the sides are disjoint, so no meet can fire). *)
      while !hb < !tb do
        expand sb sa qb hb tb db
      done;
      Some (qb, !tb)
    end
  else if not !db then Some (qb, !tb)
  else begin
    while !ha < !ta do
      expand sa sb qa ha ta da
    done;
    Some (qa, !ta)
  end

(* Move an enumerated lost side out of the destination's class: retire
   the old slots (the ghosts keep the survivors' find paths alive) and
   knit fresh slots into one clean class. *)
let detach_lost t q k =
  let first = ref (-1) in
  for i = 0 to k - 1 do
    let x = q.(i) in
    Uf.retire t.uf t.slot.(x);
    let s = uf_fresh t ~rank:(node_rank t x) in
    t.slot.(x) <- s;
    if !first < 0 then first := s else ignore (uf_union t !first s)
  done

(* A new link attached [attach]'s class to the destination's.  A clean
   class is an exact component: one O(α) union plus a bag drain.  A
   dirty class over-approximates — only [attach]'s actual component
   joins, found by a class-guarded BFS; the unreachable remainder keeps
   the old (still dirty) class, repaired if and when it reattaches. *)
let absorb_uf t attach =
  let old_root = Uf.find t.uf t.slot.(attach) in
  if not (Uf.dirty t.uf old_root) then begin
    let droot = uf_union t t.slot.(t.dest) t.slot.(attach) in
    bag_drain_into_heap t droot
  end
  else begin
    t.stamp <- t.stamp + 1;
    let st = t.stamp in
    let q = t.bq_a in
    t.bstamp.(attach) <- st;
    q.(0) <- attach;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let x = q.(!head) in
      incr head;
      for i = 0 to G.Dyn.degree t.adj x - 1 do
        let w = G.Dyn.nbr t.adj x i in
        if t.bstamp.(w) <> st && Uf.find t.uf t.slot.(w) = old_root then begin
          t.bstamp.(w) <- st;
          q.(!tail) <- w;
          incr tail
        end
      done
    done;
    for i = 0 to !tail - 1 do
      let x = q.(i) in
      Uf.retire t.uf t.slot.(x);
      t.slot.(x) <- uf_fresh t ~rank:(node_rank t x);
      ignore (uf_union t t.slot.(t.dest) t.slot.(x))
    done;
    (* Filtered drain: the old class's bag holds sinks from both the
       absorbed component and the remainder — requeue the former, keep
       the latter bagged. *)
    let x = ref t.bag_head.(old_root) in
    t.bag_head.(old_root) <- -1;
    t.bag_tail.(old_root) <- -1;
    while !x >= 0 do
      let nxt = t.bag_next.(!x) in
      t.in_bag.(!x) <- false;
      if is_sink t !x then
        if in_comp t !x then push_if_sink t !x else bag_add t !x;
      x := nxt
    done
  end

(* Compaction: ghosts accumulate one per detached node per split, so
   when the arena outgrows 8n + 64 rebuild it from the live topology —
   every class comes back exact (and clean) and the bags are re-seeded
   from the current sinks.  Called between operations (heap empty). *)
let rebuild_index t =
  t.rebuilds <- t.rebuilds + 1;
  t.uf <- Uf.create t.n;
  Array.fill t.bag_head 0 (Array.length t.bag_head) (-1);
  Array.fill t.bag_tail 0 (Array.length t.bag_tail) (-1);
  Array.fill t.in_bag 0 t.n false;
  for u = 0 to t.n - 1 do
    t.slot.(u) <- u;
    Uf.set_rank t.uf u (node_rank t u)
  done;
  for u = 0 to t.n - 1 do
    for i = 0 to G.Dyn.degree t.adj u - 1 do
      let w = G.Dyn.nbr t.adj u i in
      if w > u then ignore (uf_union t u w)
    done
  done;
  for u = 0 to t.n - 1 do
    if u <> t.dest && is_sink t u && not (in_comp t u) then bag_add t u
  done

let maybe_rebuild t =
  match t.index with
  | Scan -> ()
  | Uf -> if Uf.length t.uf > (8 * t.n) + 64 then rebuild_index t

(* {1 Topology changes} *)

let fail_link t u v =
  if not (mem_edge t u v) then invalid_arg "Maintenance.fail_link: no such link";
  let was_in_comp = in_comp t u in
  G.Dyn.remove_edge t.adj u v;
  (* The lower endpoint loses an incoming edge; the upper one may have
     lost its last outgoing edge and become a sink. *)
  (if compare_heights t u v > 0 then t.in_deg.(v) <- t.in_deg.(v) - 1
   else t.in_deg.(u) <- t.in_deg.(u) - 1);
  invalidate t u;
  invalidate t v;
  push_if_sink t u;
  push_if_sink t v;
  refresh_rank t u;
  refresh_rank t v;
  match t.index with
  | Scan ->
      let lost = if was_in_comp then recompute_comp t else Node.Set.empty in
      if Node.Set.is_empty lost then stabilize t
      else begin
        ignore (stabilize t);
        Maintenance.Partitioned lost
      end
  | Uf ->
      if not was_in_comp then begin
        (* A detached class may have split — membership becomes an
           over-approximation until the side reattaches. *)
        Uf.mark_dirty t.uf t.slot.(u);
        stabilize t
      end
      else begin
        match split_after_removal t u v with
        | None -> stabilize t
        | Some (q, k) ->
            let lost = ref Node.Set.empty in
            for i = 0 to k - 1 do
              lost := Node.Set.add q.(i) !lost
            done;
            detach_lost t q k;
            ignore (stabilize t);
            maybe_rebuild t;
            Maintenance.Partitioned !lost
      end

let add_link t u v =
  if u = v then invalid_arg "Maintenance.add_link: self-loop";
  if not (mem_node t u && mem_node t v) then
    invalid_arg "Maintenance.add_link: unknown node";
  if mem_edge t u v then invalid_arg "Maintenance.add_link: link already present";
  G.Dyn.add_edge t.adj u v;
  (* Oriented by the current heights: the lower endpoint gains an
     incoming edge, so no sink appears except a previously isolated
     endpoint — the pushes below cover it. *)
  (if compare_heights t u v > 0 then t.in_deg.(v) <- t.in_deg.(v) + 1
   else t.in_deg.(u) <- t.in_deg.(u) + 1);
  invalidate t u;
  invalidate t v;
  push_if_sink t u;
  push_if_sink t v;
  refresh_rank t u;
  refresh_rank t v;
  (match t.index with
  | Scan ->
      if t.comp.(u) && not t.comp.(v) then absorb_scan t v
      else if t.comp.(v) && not t.comp.(u) then absorb_scan t u
  | Uf ->
      let du = in_comp t u and dv = in_comp t v in
      if du && not dv then absorb_uf t v
      else if dv && not du then absorb_uf t u
      else if not (du || dv) then ignore (uf_union t t.slot.(u) t.slot.(v)));
  ignore (stabilize t);
  maybe_rebuild t

let fail_node t u =
  if u = t.dest then invalid_arg "Maintenance.fail_node: cannot fail the destination";
  if not (mem_node t u) then invalid_arg "Maintenance.fail_node: unknown node";
  match t.index with
  | Scan ->
      let was_in_comp = t.comp.(u) in
      while G.Dyn.degree t.adj u > 0 do
        let w = G.Dyn.nbr t.adj u 0 in
        G.Dyn.remove_edge t.adj u w;
        if compare_heights t u w > 0 then t.in_deg.(w) <- t.in_deg.(w) - 1;
        invalidate t w;
        push_if_sink t w
      done;
      t.in_deg.(u) <- 0;
      invalidate t u;
      let lost = if was_in_comp then recompute_comp t else Node.Set.empty in
      if Node.Set.is_empty lost then stabilize t
      else begin
        ignore (stabilize t);
        Maintenance.Partitioned lost
      end
  | Uf ->
      (* Sequentially: each removal either keeps [u] attached (cheap
         bidirectional probe), splits off a side (enumerated exactly —
         its nodes accumulate into the lost set, matching the
         reference's before-minus-after component difference), or
         happens inside an already-detached class (dirty mark only).
         The last removal always strands [u] itself. *)
      let lost = ref Node.Set.empty in
      while G.Dyn.degree t.adj u > 0 do
        let w = G.Dyn.nbr t.adj u 0 in
        G.Dyn.remove_edge t.adj u w;
        if compare_heights t u w > 0 then t.in_deg.(w) <- t.in_deg.(w) - 1;
        invalidate t w;
        push_if_sink t w;
        refresh_rank t w;
        if in_comp t u then begin
          match split_after_removal t u w with
          | None -> ()
          | Some (q, k) ->
              for i = 0 to k - 1 do
                lost := Node.Set.add q.(i) !lost
              done;
              detach_lost t q k
        end
        else Uf.mark_dirty t.uf t.slot.(u)
      done;
      t.in_deg.(u) <- 0;
      invalidate t u;
      refresh_rank t u;
      if Node.Set.is_empty !lost then begin
        let r = stabilize t in
        maybe_rebuild t;
        r
      end
      else begin
        ignore (stabilize t);
        maybe_rebuild t;
        Maintenance.Partitioned !lost
      end

(* {1 Construction} *)

let create ?(index = Uf) rule config =
  let core = G.of_config config in
  let n = core.G.n in
  let ha = Array.make n 0 and hb = Array.make n 0 in
  Node.Set.iter
    (fun u ->
      let r = Embedding.rank config.Config.embedding u in
      match rule with
      | Maintenance.Partial_reversal ->
          ha.(u) <- 0;
          hb.(u) <- -r
      | Maintenance.Full_reversal ->
          ha.(u) <- n - r;
          hb.(u) <- 0)
    (Config.nodes config);
  let adj = G.Dyn.of_graph core in
  let t =
    {
      n;
      rule;
      dest = config.Config.destination;
      index;
      adj;
      ha;
      hb;
      in_deg = Array.make n 0;
      comp = Array.make n false;
      comp_size = 0;
      uf = Uf.create n;
      slot = Array.init n (fun u -> u);
      bag_head = Array.make (max n 1) (-1);
      bag_tail = Array.make (max n 1) (-1);
      bag_next = Array.make (max n 1) (-1);
      in_bag = Array.make (max n 1) false;
      rebuilds = 0;
      heap = Array.make n 0;
      heap_len = 0;
      inq = Array.make n false;
      nh = Array.make n nh_unset;
      obs = None;
      obs_buf = Array.make (max n 1) 0;
      work = 0;
      hits = 0;
      misses = 0;
      invalidations = 0;
      queue = Array.make (max n 1) 0;
      seen = Array.make n false;
      bq_a = Array.make (max n 1) 0;
      bq_b = Array.make (max n 1) 0;
      bstamp = Array.make (max n 1) 0;
      stamp = 0;
    }
  in
  (* The embedding is a topological order of G'_init, so the initial
     orientation is exactly the height order — in-degrees follow. *)
  for u = 0 to n - 1 do
    let d = G.Dyn.degree t.adj u in
    let incoming = ref 0 in
    for i = 0 to d - 1 do
      if compare_heights t u (G.Dyn.nbr t.adj u i) < 0 then incr incoming
    done;
    t.in_deg.(u) <- !incoming
  done;
  (match index with
  | Scan -> ignore (recompute_comp t)
  | Uf ->
      for u = 0 to n - 1 do
        Uf.set_rank t.uf u (node_rank t u)
      done;
      for u = 0 to n - 1 do
        for i = 0 to G.Dyn.degree t.adj u - 1 do
          let w = G.Dyn.nbr t.adj u i in
          if w > u then ignore (uf_union t u w)
        done
      done);
  for u = 0 to n - 1 do
    push_if_sink t u
  done;
  ignore (stabilize t);
  t

let set_observer t obs = t.obs <- obs

(* {1 Hostile-state adoption} *)

(* Overwrite every height with an arbitrary (adversarial) value and
   self-heal: the derived orientation of any height assignment is
   acyclic, so the ordinary sink worklist converges from it.  Same
   recipe as [create] — recount in-degrees, re-derive the component,
   reseed the worklist — plus a full next-hop cache drop, since every
   cached choice may now be stale.  The [Uf] index is untouched:
   heights do not move nodes between components. *)
let adopt_heights t f =
  for u = 0 to t.n - 1 do
    let a, b = f u in
    t.ha.(u) <- a;
    t.hb.(u) <- b;
    invalidate t u
  done;
  for u = 0 to t.n - 1 do
    let d = G.Dyn.degree t.adj u in
    let incoming = ref 0 in
    for i = 0 to d - 1 do
      if compare_heights t u (G.Dyn.nbr t.adj u i) < 0 then incr incoming
    done;
    t.in_deg.(u) <- !incoming
  done;
  (match t.index with Scan -> ignore (recompute_comp t) | Uf -> ());
  for u = 0 to t.n - 1 do
    push_if_sink t u
  done;
  (* Spread-aware budget, same formula as the reference: stabilizing
     from an arbitrary assignment costs work proportional to the
     height spread, not just n^2. *)
  let budget =
    if t.n = 0 then Maintenance.adoption_budget ~n:0 ~spread:0
    else begin
      let amin = ref t.ha.(0) and amax = ref t.ha.(0) in
      let bmin = ref t.hb.(0) and bmax = ref t.hb.(0) in
      for u = 1 to t.n - 1 do
        if t.ha.(u) < !amin then amin := t.ha.(u);
        if t.ha.(u) > !amax then amax := t.ha.(u);
        if t.hb.(u) < !bmin then bmin := t.hb.(u);
        if t.hb.(u) > !bmax then bmax := t.hb.(u)
      done;
      Maintenance.adoption_budget ~n:t.n
        ~spread:(!amax - !amin + (!bmax - !bmin))
    end
  in
  stabilize ~budget t

(* {1 Queries} *)

let route t u =
  if not (mem_node t u) then None
  else if u = t.dest then Some [ u ]
  else
    let rec descend v acc fuel =
      if fuel = 0 then None
      else if v = t.dest then Some (List.rev (v :: acc))
      else
        match next_hop t v with
        | -1 -> None
        | w -> descend w (v :: acc) (fuel - 1)
    in
    descend u [] (t.n + 1)

let has_path t src =
  if not (mem_node t src) then false
  else if src = t.dest then true
  else begin
    let q = t.queue and seen = t.seen in
    Array.fill seen 0 t.n false;
    seen.(src) <- true;
    q.(0) <- src;
    let head = ref 0 and tail = ref 1 in
    let found = ref false in
    while (not !found) && !head < !tail do
      let x = q.(!head) in
      incr head;
      for i = 0 to G.Dyn.degree t.adj x - 1 do
        let w = G.Dyn.nbr t.adj x i in
        if compare_heights t x w > 0 && not seen.(w) then begin
          if w = t.dest then found := true;
          seen.(w) <- true;
          q.(!tail) <- w;
          incr tail
        end
      done
    done;
    !found
  end

(* Every node the destination's component can still route from: the
   backward closure of the destination along directed edges. *)
let reaches_destination t =
  let q = t.queue and seen = t.seen in
  Array.fill seen 0 t.n false;
  seen.(t.dest) <- true;
  q.(0) <- t.dest;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let x = q.(!head) in
    incr head;
    for i = 0 to G.Dyn.degree t.adj x - 1 do
      let w = G.Dyn.nbr t.adj x i in
      if compare_heights t w x > 0 && not seen.(w) then begin
        seen.(w) <- true;
        q.(!tail) <- w;
        incr tail
      end
    done
  done;
  Array.copy seen

let is_destination_oriented t =
  let reach = reaches_destination t in
  let ok = ref true in
  for u = 0 to t.n - 1 do
    if in_comp t u && u <> t.dest && not reach.(u) then ok := false
  done;
  !ok

let graph t =
  let g = ref (Digraph.of_directed_edges []) in
  for u = 0 to t.n - 1 do
    g := Digraph.add_node !g u
  done;
  for u = 0 to t.n - 1 do
    for i = 0 to G.Dyn.degree t.adj u - 1 do
      let w = G.Dyn.nbr t.adj u i in
      if compare_heights t u w > 0 then g := Digraph.add_directed_edge !g u w
    done
  done;
  !g

(* {1 Self-check} *)

(* Cross-check the [Uf] index against ground truth: a full component
   labelling of the current topology.  The destination's class must be
   exact; a clean class must be exactly one component; a dirty class
   may over-approximate but no single component may straddle two
   classes (every edge's endpoints share a class); sizes must match the
   live-member counts; and the bag structure must account for exactly
   the pending detached sinks. *)
let uf_consistent t seen dest_tail =
  let ok = ref true in
  (* Destination-class exactness. *)
  if dest_tail <> Uf.size t.uf t.slot.(t.dest) then ok := false;
  for u = 0 to t.n - 1 do
    if in_comp t u <> seen.(u) then ok := false
  done;
  if Uf.dirty t.uf t.slot.(t.dest) then ok := false;
  (* Full component labelling (fresh BFS over every node). *)
  let label = Array.make (max t.n 1) (-1) in
  let comp_count = Array.make (max t.n 1) 0 in
  let q = t.queue in
  let ncomp = ref 0 in
  for s = 0 to t.n - 1 do
    if label.(s) < 0 then begin
      let c = !ncomp in
      incr ncomp;
      label.(s) <- c;
      q.(0) <- s;
      let head = ref 0 and tail = ref 1 in
      while !head < !tail do
        let x = q.(!head) in
        incr head;
        comp_count.(c) <- comp_count.(c) + 1;
        for i = 0 to G.Dyn.degree t.adj x - 1 do
          let w = G.Dyn.nbr t.adj x i in
          if label.(w) < 0 then begin
            label.(w) <- c;
            q.(!tail) <- w;
            incr tail
          end
        done
      done
    end
  done;
  (* Per-class accounting: live counts, one-root-per-component, and
     clean-class exactness. *)
  let root_of_label = Array.make (max !ncomp 1) (-1) in
  let live = Hashtbl.create 64 in
  let witness = Hashtbl.create 64 in
  for u = 0 to t.n - 1 do
    let r = Uf.find t.uf t.slot.(u) in
    Hashtbl.replace live r
      (1 + match Hashtbl.find_opt live r with Some c -> c | None -> 0);
    if not (Hashtbl.mem witness r) then Hashtbl.add witness r u;
    let c = label.(u) in
    if root_of_label.(c) < 0 then root_of_label.(c) <- r
    else if root_of_label.(c) <> r then
      (* Two nodes of one physical component in different classes. *)
      ok := false
  done;
  Hashtbl.iter
    (fun r count ->
      if Uf.size t.uf r <> count then ok := false;
      if not (Uf.dirty t.uf r) then
        (* A clean class is one exact component: its live count equals
           the component count of any member's label. *)
        match Hashtbl.find_opt witness r with
        | Some u when comp_count.(label.(u)) <> count -> ok := false
        | _ -> ())
    live;
  (* Pending-sink accounting: every detached sink is bagged or queued;
     every bag entry belongs to the class whose root holds it; the
     destination's bag is empty; no in_bag flag is orphaned. *)
  for u = 0 to t.n - 1 do
    if
      u <> t.dest
      && is_sink t u
      && (not (in_comp t u))
      && (not t.in_bag.(u))
      && not t.inq.(u)
    then ok := false
  done;
  if t.bag_head.(Uf.find t.uf t.slot.(t.dest)) >= 0 then ok := false;
  let bagged = ref 0 in
  Hashtbl.iter
    (fun r _ ->
      let x = ref t.bag_head.(r) in
      let steps = ref 0 in
      while !x >= 0 && !steps <= t.n do
        incr steps;
        if (not t.in_bag.(!x)) || Uf.find t.uf t.slot.(!x) <> r then
          ok := false;
        incr bagged;
        x := t.bag_next.(!x)
      done;
      if !steps > t.n then ok := false)
    live;
  let flagged = ref 0 in
  for u = 0 to t.n - 1 do
    if t.in_bag.(u) then incr flagged
  done;
  if !bagged <> !flagged then ok := false;
  !ok

let consistent t =
  let ok = ref true in
  (* In-degrees match a recount of the derived orientation. *)
  for u = 0 to t.n - 1 do
    let incoming = ref 0 in
    for i = 0 to G.Dyn.degree t.adj u - 1 do
      if compare_heights t u (G.Dyn.nbr t.adj u i) < 0 then incr incoming
    done;
    if !incoming <> t.in_deg.(u) then ok := false
  done;
  (* The destination's component from a fresh BFS. *)
  let q = t.queue and seen = t.seen in
  Array.fill seen 0 t.n false;
  seen.(t.dest) <- true;
  q.(0) <- t.dest;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let x = q.(!head) in
    incr head;
    for i = 0 to G.Dyn.degree t.adj x - 1 do
      let w = G.Dyn.nbr t.adj x i in
      if not seen.(w) then begin
        seen.(w) <- true;
        q.(!tail) <- w;
        incr tail
      end
    done
  done;
  (match t.index with
  | Scan ->
      if !tail <> t.comp_size then ok := false;
      for u = 0 to t.n - 1 do
        if t.comp.(u) <> seen.(u) then ok := false
      done
  | Uf ->
      (* [uf_consistent] reuses [t.queue]; [seen] is stable. *)
      let snapshot = Array.copy seen in
      if not (uf_consistent t snapshot !tail) then ok := false);
  (* A stabilized engine holds no repairable sink. *)
  for u = 0 to t.n - 1 do
    if in_comp t u && u <> t.dest && is_sink t u then ok := false
  done;
  (* No cached next hop is stale. *)
  for u = 0 to t.n - 1 do
    if t.nh.(u) <> nh_unset then begin
      let fresh = match compute_next t u with -1 -> nh_none | w -> w in
      if fresh <> t.nh.(u) then ok := false
    end
  done;
  !ok && is_destination_oriented t
