(** The asynchronous, message-passing form of Gafni–Bertsekas link
    reversal — the protocol an actual ad-hoc network would run.

    Each node keeps its own height and its latest view of every
    neighbour's height; the edge to a neighbour points toward whichever
    endpoint is lower.  A node that believes it is a sink raises its
    height (by the Partial or Full reversal rule) and broadcasts the new
    height to its neighbours.  The destination never raises.

    With FIFO links this converges to a destination-oriented graph from
    any acyclic initial orientation; the test suite checks convergence
    and compares the message cost of the two rules. *)

open Lr_graph
open Linkrev

type mode = Full | Partial

type node_state = {
  me : Node.t;
  height : Heights.pr_height;
      (** Full mode uses the [pa] component only ([pb] stays 0). *)
  view : Heights.pr_height Node.Map.t;  (** Latest known neighbour heights. *)
  raises : int;  (** Reversals performed by this node. *)
}

type msg = Height of Heights.pr_height

type result = {
  stats : Lr_sim.Network.stats;
  final : Digraph.t;  (** Orientation induced by the true final heights. *)
  raises_per_node : int Node.Map.t;
  total_raises : int;
  destination_oriented : bool;
}

val initial_heights : mode -> Config.t -> Heights.pr_height Node.Map.t
(** Heights realizing [G'_init] (from the config's embedding). *)

val run :
  ?latency:(Node.t -> Node.t -> float) ->
  ?jitter:Random.State.t * float ->
  ?drop:Random.State.t * float ->
  ?beacon:float ->
  ?until:float ->
  ?max_deliveries:int ->
  mode:mode ->
  Config.t ->
  result
(** Default latency: constant [1.0] on every link.

    With [~drop:(rng, p)] each height announcement is lost with
    probability [p]; pair it with [~beacon:interval], which makes every
    node periodically re-broadcast its height, restoring convergence
    under loss (bound the run with [~until], since a beaconing network
    is never quiet).  Lossy runs without beacons may stall with stale
    views — the test suite demonstrates both outcomes. *)
