(** The asynchronous translation of {e list-based} Partial Reversal:
    nodes keep local views of their incident edge directions plus the
    PR list, reverse when the view says "sink", and notify neighbours
    with [Reversed] messages.

    Two findings, both exercised by the test suite:

    - {b With reliable FIFO links the protocol is correct}, and performs
      {e exactly} the sequential algorithm's per-run work.  The reason
      is structural: an edge can only be flipped by the endpoint it
      currently points at, and the only way to believe an edge points at
      you is to have received the flip notification itself — so flips
      of one edge are serialized by its own message channel, and the
      atomic-step model's "no two neighbouring sinks" carries over.

    - {b Under message loss it breaks}: a lost [Reversed] leaves the two
      endpoint views permanently inconsistent (both can believe the
      shared edge is outgoing), and nothing in the list protocol can
      repair that — unlike the height protocol, where a periodic beacon
      of the current height restores any stale view
      ({!Height_protocol.run}'s [~beacon]).  This is an executable
      account of why deployed link reversal (Gafni–Bertsekas, TORA)
      ships totally ordered heights rather than raw edge flips. *)

open Lr_graph

type result = {
  stats : Lr_sim.Network.stats;
  view_consistent : bool;
      (** Every edge's two endpoint views agree on its direction. *)
  destination_oriented : bool;
      (** Judged on the union of local views when they are consistent;
          [false] whenever views disagree. *)
  reversals : int;
}

val run :
  ?latency:(Node.t -> Node.t -> float) ->
  ?jitter:Random.State.t * float ->
  ?drop:Random.State.t * float ->
  ?max_deliveries:int ->
  Linkrev.Config.t ->
  result

val find_inconsistency :
  ?attempts:int -> ?drop_rate:float -> n:int -> unit -> (int * result) option
(** Search seeds for a random instance on which the {e lossy} protocol
    (default [drop_rate] 0.3) ends inconsistent or unconverged; returns
    the first bad seed and its run.  With reliable links no seed fails
    — that contrast is the module's point. *)
