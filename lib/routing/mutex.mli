(** Token-based mutual exclusion by link reversal (Welch–Walter's third
    application of link reversal, after routing and leader election).

    The token holder plays the role of the destination: the DAG is kept
    holder-oriented, so any node can forward a request along its
    outgoing edges.  Granting the token to the next requester makes the
    requester the new destination and lets Partial Reversal re-orient
    the graph toward it; the reversal work is the cost of the transfer.

    Safety (at most one holder, graph always acyclic) and liveness
    (FIFO service) are checked in the test suite. *)

open Lr_graph

type t

val create : Linkrev.Config.t -> t
(** The initial holder is the configuration's destination; the initial
    graph is stabilized toward it first. *)

val holder : t -> Node.t
val graph : t -> Digraph.t
val pending : t -> Node.t list
(** Requests not yet served, in arrival order. *)

val request : t -> Node.t -> unit
(** Enqueue a request.  Duplicate pending requests and requests by the
    current holder are ignored. *)

val grant_next : t -> (Node.t * int) option
(** Serve the oldest pending request: re-orients the graph toward the
    requester and returns it together with the reversal steps the
    transfer cost.  [None] when nothing is pending. *)

val oriented_to_holder : t -> bool
