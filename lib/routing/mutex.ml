open Lr_graph
open Linkrev

type t = {
  config : Config.t;
  mutable holder : Node.t;
  mutable state : Pr.state;
  pending : Node.t Queue.t;
}

(* Run PR (one sink at a time) until the graph is quiescent with respect
   to [dest]: no sink other than [dest] remains. *)
let stabilize_toward config state dest =
  let steps = ref 0 in
  let n = Node.Set.cardinal (Config.nodes config) in
  let budget = (4 * n * n) + 1000 in
  let rec loop (s : Pr.state) =
    let sinks = Node.Set.remove dest (Digraph.sinks s.Pr.graph) in
    match Node.Set.choose_opt sinks with
    | None -> s
    | Some u ->
        if !steps > budget then
          failwith "Mutex.stabilize: budget exceeded (bug)"
        else begin
          incr steps;
          loop (Pr.apply config s (Node.Set.singleton u))
        end
  in
  let s = loop state in
  (s, !steps)

let create config =
  let state, _ =
    stabilize_toward config (Pr.initial config) config.Config.destination
  in
  {
    config;
    holder = config.Config.destination;
    state;
    pending = Queue.create ();
  }

let holder t = t.holder
let graph t = t.state.Pr.graph
let pending t = List.of_seq (Queue.to_seq t.pending)

let request t u =
  if not (Node.Set.mem u (Config.nodes t.config)) then
    invalid_arg "Mutex.request: unknown node";
  let already =
    Node.equal u t.holder
    || Queue.fold (fun acc v -> acc || Node.equal u v) false t.pending
  in
  if not already then Queue.add u t.pending

let grant_next t =
  match Queue.take_opt t.pending with
  | None -> None
  | Some r ->
      let state, steps = stabilize_toward t.config t.state r in
      t.state <- state;
      t.holder <- r;
      Some (r, steps)

let oriented_to_holder t =
  Digraph.is_destination_oriented (graph t) t.holder
