(** TORA-style route maintenance (Park & Corson, INFOCOM '97) — the
    best-known deployment of partial link reversal, built here as the
    capstone application of the library.

    Each routed node holds a five-component height
    [(tau, oid, r, delta, id)]: a {e reference level} [(tau, oid, r)]
    created in response to a link failure, plus an ordering pair
    [(delta, id)].  Links point from the lexicographically higher
    endpoint to the lower; nodes with no height ([Null]) leave their
    links unusable.  A node that loses its last downstream link reacts
    with the protocol's five cases:

    - {b generate} (case 1): the loss came from a link failure — start a
      new reference level [(now, self, 0)];
    - {b propagate} (case 2): neighbours carry different reference
      levels — adopt the highest, with [delta] below its minimum;
    - {b reflect} (case 3): all neighbours share an unreflected level —
      reflect it back ([r := 1]);
    - {b detect} (case 4): a node's own reflected level has returned
      from every neighbour — the component is partitioned from the
      destination; heights in it are cleared;
    - {b generate} (case 5): someone else's reflected level surrounds a
      node that lost a link — start a fresh level.

    Simplifications versus the wire protocol (documented in DESIGN.md):
    reactions are executed as atomic steps on globally visible heights
    (the same model the paper uses for PR), and route creation is the
    result of a completed QRY/UPD flood rather than the flood itself. *)

open Lr_graph

type ref_level = { tau : int; oid : Node.t; reflected : bool }

type height =
  | Null
  | Height of { level : ref_level; delta : int; id : Node.t }

val compare_height : height -> height -> int
(** Lexicographic on [(tau, oid, reflected, delta, id)]; [Null] is
    incomparable in the protocol but ordered last here for totality. *)

val pp_height : Format.formatter -> height -> unit

type t

type event_result =
  | Maintained of { reactions : int }
      (** Routes restored; [reactions] nodes executed a maintenance
          case. *)
  | Partition_detected of { cleared : Node.Set.t; reactions : int }
      (** Case 4 fired: the given nodes lost their heights. *)

val create : Linkrev.Config.t -> t
(** Heights from a completed route-creation flood: [delta] = hop
    distance to the destination, zero reference levels.  Nodes with no
    path in the skeleton start [Null]. *)

val destination : t -> Node.t
val height : t -> Node.t -> height
val skeleton : t -> Undirected.t

val downstream : t -> Node.t -> Node.Set.t
(** Neighbours with strictly lower non-[Null] height. *)

val route : t -> Node.t -> Node.t list option
(** Greedy steepest-descent route to the destination. *)

val has_route : t -> Node.t -> bool
val routed_fraction : t -> float
(** Fraction of non-destination nodes with a route. *)

val fail_link : t -> Node.t -> Node.t -> event_result
(** @raise Invalid_argument if the link is absent. *)

val add_link : t -> Node.t -> Node.t -> event_result
(** New links orient by current heights; a [Null] endpoint adjacent to a
    routed one receives a height (joins the DAG downstream). *)

val acyclic : t -> bool
(** No directed cycle among routed nodes — TORA's safety property. *)

val reactions_total : t -> int
(** Cumulative maintenance reactions since [create]. *)
