open Lr_graph
open Linkrev

type mode = Full | Partial

type node_state = {
  me : Node.t;
  height : Heights.pr_height;
  view : Heights.pr_height Node.Map.t;
  raises : int;
}

type msg = Height of Heights.pr_height

type result = {
  stats : Lr_sim.Network.stats;
  final : Digraph.t;
  raises_per_node : int Node.Map.t;
  total_raises : int;
  destination_oriented : bool;
}

let initial_heights mode config =
  match mode with
  | Partial ->
      Node.Set.fold
        (fun u m ->
          let r = Lr_graph.Embedding.rank config.Config.embedding u in
          Node.Map.add u { Heights.pa = 0; pb = -r; pid = u } m)
        (Config.nodes config) Node.Map.empty
  | Full ->
      let n = Node.Set.cardinal (Config.nodes config) in
      Node.Set.fold
        (fun u m ->
          let r = Lr_graph.Embedding.rank config.Config.embedding u in
          Node.Map.add u { Heights.pa = n - r; pb = 0; pid = u } m)
        (Config.nodes config) Node.Map.empty

let believes_sink st =
  (not (Node.Map.is_empty st.view))
  && Node.Map.for_all
       (fun _ h -> Heights.compare_pr_height st.height h < 0)
       st.view

(* One reversal according to the local view.  Partial: [a := 1 + min],
   [b] below the neighbours sharing the new [a].  Full: [a := 1 + max]. *)
let raise_height mode st =
  let heights = Node.Map.bindings st.view |> List.map snd in
  match (mode, heights) with
  | _, [] -> st.height
  | Partial, _ ->
      let min_a =
        List.fold_left (fun m h -> min m h.Heights.pa) max_int heights
      in
      let new_a = min_a + 1 in
      let same = List.filter (fun h -> h.Heights.pa = new_a) heights in
      let new_b =
        match same with
        | [] -> st.height.Heights.pb
        | _ ->
            List.fold_left (fun m h -> min m h.Heights.pb) max_int same - 1
      in
      { Heights.pa = new_a; pb = new_b; pid = st.me }
  | Full, _ ->
      let max_a =
        List.fold_left (fun m h -> max m h.Heights.pa) min_int heights
      in
      { Heights.pa = max_a + 1; pb = 0; pid = st.me }

let broadcast st =
  Node.Map.fold
    (fun v _ acc -> { Lr_sim.Network.dest = v; msg = Height st.height } :: acc)
    st.view []

(* Raise while the local view says "sink"; one raise always suffices to
   stop being a local sink, but the loop keeps the code obviously safe. *)
let activate mode ~destination st =
  if Node.equal st.me destination then (st, [])
  else
    let rec loop st sends fuel =
      if fuel = 0 || not (believes_sink st) then (st, sends)
      else
        let st =
          { st with height = raise_height mode st; raises = st.raises + 1 }
        in
        loop st (sends @ broadcast st) (fuel - 1)
    in
    loop st [] 4

let handler mode config =
  let destination = config.Config.destination in
  let init_heights = initial_heights mode config in
  {
    Lr_sim.Network.init =
      (fun u nbrs ->
        let view =
          Node.Set.fold
            (fun v m -> Node.Map.add v (Node.Map.find v init_heights) m)
            nbrs Node.Map.empty
        in
        let st =
          { me = u; height = Node.Map.find u init_heights; view; raises = 0 }
        in
        activate mode ~destination st);
    on_message =
      (fun _u st ~from (Height h) ->
        let st = { st with view = Node.Map.add from h st.view } in
        activate mode ~destination st);
  }

let run ?latency ?jitter ?drop ?beacon ?until ?max_deliveries ~mode config =
  let latency = match latency with Some f -> f | None -> fun _ _ -> 1.0 in
  let topology = Config.skeleton config in
  let timer =
    Option.map
      (fun interval ->
        (* Beacon: re-announce the current height; also re-run the sink
           check in case lost messages left us stuck. *)
        let tick _u st =
          let st, sends = activate mode ~destination:config.Config.destination st in
          (st, sends @ broadcast st)
        in
        (interval, tick))
      beacon
  in
  let net =
    Lr_sim.Network.create ~topology ~latency ?jitter ?drop ?timer
      (handler mode config)
  in
  let stats = Lr_sim.Network.run ?max_deliveries ?until net in
  let final_heights =
    List.fold_left
      (fun m (u, st) -> Node.Map.add u st.height m)
      Node.Map.empty
      (Lr_sim.Network.states net)
  in
  let final =
    Digraph.orient topology ~toward:(fun e ->
        let hl = Node.Map.find (Edge.lo e) final_heights
        and hh = Node.Map.find (Edge.hi e) final_heights in
        if Heights.compare_pr_height hl hh > 0 then Edge.hi e else Edge.lo e)
  in
  let raises_per_node =
    List.fold_left
      (fun m (u, st) -> Node.Map.add u st.raises m)
      Node.Map.empty
      (Lr_sim.Network.states net)
  in
  {
    stats;
    final;
    raises_per_node;
    total_raises = Node.Map.fold (fun _ c acc -> acc + c) raises_per_node 0;
    destination_oriented =
      Digraph.is_destination_oriented final config.Config.destination;
  }
