(** Leader election after a destination crash.

    When the destination of a link reversal routing structure fails,
    each surviving connected component must agree on a replacement and
    re-orient toward it — the leader-election application of link
    reversal from Welch–Walter.  The election rule here is the simple
    deterministic one (highest node id wins); the interesting part is
    the re-orientation, which is plain Partial/Full Reversal with the
    new leader as destination. *)

open Lr_graph

type outcome = {
  leader : Node.t;
  members : Node.Set.t;
  node_steps : int;  (** Reversal work to re-orient the component. *)
  oriented : bool;   (** All members have a route to the leader. *)
}

val elect_after_destination_failure :
  Maintenance.rule -> Linkrev.Config.t -> outcome list
(** Crash the configuration's destination, then for every surviving
    component elect the highest-id member and run reversals until the
    component is leader-oriented.  One outcome per component (singleton
    components elect themselves with zero work). *)
