(** The fast tier of {!Maintenance}: TORA-style repair on flat arrays.

    Semantically this engine {e is} [Maintenance] — same PR/FR height
    raises, same minimum-id sink selection order, same stabilization
    budget, same partition reporting — so every response, counter and
    fingerprint produced through it is byte-identical to the persistent
    reference, which the test suite and the D-S2 bench keep as a
    differential oracle.  Mechanically it is built for serving:

    - heights are two int arrays [(pa, pb)] keyed by node slot, and the
      edge orientation is {e derived} from the height order on demand
      (the maintenance invariant: every link points from its higher
      endpoint to its lower one at all times), so there are no
      orientation bits to keep in sync;
    - adjacency is a {!Lr_fast.Fast_graph.Dyn} flat array that survives
      link churn in O(degree) per change;
    - sinks are found by a min-id {e worklist} (binary heap with lazy
      revalidation) seeded from the endpoints of each topology change
      and refilled only with the neighbours of just-reversed nodes — no
      per-step component rescan;
    - membership in the destination's component is a {!Union_find}
      {e seniority index} ({!Uf}, the default): merges are O(α) unions
      anchored at the most senior endpoint (destination, then degree,
      then low id), splits are handled lazily — a link-down inside a
      detached class only dirties it, and the actually-reattached side
      is re-identified by an incremental BFS when it rejoins.  Pending
      sinks of detached sides wait in per-class {e bags}, so absorbing
      a side requeues them by splicing one list instead of rescanning.
      The eager PR-8 baseline ({!Scan}: one full BFS per disconnecting
      change, one side scan per reconnecting one) is kept selectable
      for before/after benchmarking;
    - a per-node {e next-hop cache} makes repeated route queries on a
      quiescent engine O(path length) array hops with zero height
      comparisons; entries are invalidated exactly where a height or an
      incident edge changed — component merges invalidate nothing. *)

open Lr_graph
open Linkrev

type t

(** Component-membership strategy.  [Uf] is the union-find seniority
    index (the default); [Scan] is the eager rescan baseline it
    replaced, kept for differential tests and honest before/after
    bench columns.  Responses, counters and fingerprints are
    byte-identical across the two. *)
type index = Scan | Uf

val create : ?index:index -> Maintenance.rule -> Config.t -> t
(** Starts from [G'_init] and stabilizes it, like
    {!Maintenance.create}.  Node ids must be [0 .. n-1]
    ({!Lr_graph.Generators} outputs and service shard configs satisfy
    this); @raise Invalid_argument otherwise. *)

val index : t -> index
val destination : t -> Node.t
val num_nodes : t -> int
val mem_node : t -> Node.t -> bool
val mem_edge : t -> Node.t -> Node.t -> bool

val edge_out : t -> Node.t -> Node.t -> bool
(** [edge_out t u v] iff the (present) edge [{u,v}] is directed
    [u -> v] — i.e. [u]'s height is the greater one. *)

val compare_heights : t -> Node.t -> Node.t -> int
(** Same order as {!Maintenance.compare_heights}. *)

val height : t -> Node.t -> int * int
(** The node's current [(pa, pb)] height pair.  The third lexicographic
    component is the node id itself.  This is the seeding hook for
    layers that derive their own orientation from the engine's
    stabilized heights (e.g. {e lr_packet} forwarding planes). *)

val total_work : t -> int
val is_destination_oriented : t -> bool

val in_dest_component : t -> Node.t -> bool
(** Membership in the destination's component — O(α) under [Uf], O(1)
    under [Scan]; false for unknown nodes.  Between operations the
    engine is stabilized and its component destination-oriented, so
    this also answers "does a directed path to the destination exist"
    without the BFS of {!has_path} — the serving layer's fast
    [No_route] honesty check. *)

val component_size : t -> int
(** Live size of the destination's component. *)

val component_epoch : t -> int
(** Knowledge epoch of the destination's component class under [Uf]:
    advances whenever the component loses members, absorbs a side, or
    the index is rebuilt — a cheap "unchanged since I last looked"
    token for layers caching component-derived answers.  May reset
    after compaction; always [0] under [Scan]. *)

type index_stats = { slots : int; rebuilds : int }

val index_stats : t -> index_stats
(** [Uf] arena accounting: [slots] allocated so far (live + ghosts —
    compaction rebuilds the arena when this passes [8n + 64]) and how
    many such [rebuilds] have happened.  Under [Scan]: [slots = n],
    [rebuilds = 0]. *)

val graph : t -> Digraph.t
(** Materialized snapshot of the current oriented topology (orientation
    derived from heights).  For tests and the rare failover path — not
    the hot path. *)

val route : t -> Node.t -> Node.t list option
(** Same paths as {!Maintenance.route}, served through the next-hop
    cache. *)

val has_path : t -> Node.t -> bool
(** A directed path from the node to the destination exists (the
    serving layer's honesty check for [No_route]), answered by BFS.
    See {!in_dest_component} for the O(α) equivalent on a stabilized
    engine. *)

val fail_link : t -> Node.t -> Node.t -> Maintenance.change_result
(** @raise Invalid_argument if absent. *)

val add_link : t -> Node.t -> Node.t -> unit
(** @raise Invalid_argument if already present or a self-loop. *)

val fail_node : t -> Node.t -> Maintenance.change_result
(** @raise Invalid_argument for the destination. *)

val adopt_heights : t -> (Node.t -> int * int) -> Maintenance.change_result
(** [adopt_heights t f] overwrites every node's [(pa, pb)] height with
    [f u] — an arbitrary, possibly adversarial assignment — and
    self-heals through the ordinary sink worklist.  Any height
    assignment derives an acyclic orientation (heights are a total
    order), so the engine stabilizes from {e any} adopted state; this
    is the fault-injection entry point of the chaos harness.  Always
    returns [Stabilized] (the topology is untouched). *)

val set_observer : t -> (Node.t -> int array -> int -> unit) option -> unit
(** [set_observer t (Some f)] has the engine call [f u flipped len]
    after every reversal step: [u] is the node that stepped and
    [flipped.(0 .. len-1)] the neighbours whose edge to [u] reversed,
    in adjacency order.  The array is reused across steps — copy, don't
    retain.  Used by the chaos harness to record LRT1 traces of
    recoveries; [None] (the default) restores the silent hot path. *)

type cache_stats = { hits : int; misses : int; invalidations : int }

val cache_stats : t -> cache_stats
(** Next-hop cache counters since [create]: [hits] cached hops taken,
    [misses] entries recomputed, [invalidations] entries discarded. *)

val consistent : t -> bool
(** Internal invariant check for tests: in-degrees match a recount,
    the component index matches a fresh BFS from the destination —
    under [Uf] additionally: the destination's class is exact and
    clean, clean classes are exact components, no physical component
    straddles two classes, class sizes match live-member counts, and
    the per-class pending-sink bags account for exactly the detached
    sinks — every worklist-eligible sink is queued, bagged or outside
    the destination's component, and the destination's component is
    destination-oriented. *)
