(** The fast tier of {!Maintenance}: TORA-style repair on flat arrays.

    Semantically this engine {e is} [Maintenance] — same PR/FR height
    raises, same minimum-id sink selection order, same stabilization
    budget, same partition reporting — so every response, counter and
    fingerprint produced through it is byte-identical to the persistent
    reference, which the test suite and the D-S2 bench keep as a
    differential oracle.  Mechanically it is built for serving:

    - heights are two int arrays [(pa, pb)] keyed by node slot, and the
      edge orientation is {e derived} from the height order on demand
      (the maintenance invariant: every link points from its higher
      endpoint to its lower one at all times), so there are no
      orientation bits to keep in sync;
    - adjacency is a {!Lr_fast.Fast_graph.Dyn} flat array that survives
      link churn in O(degree) per change;
    - sinks are found by a min-id {e worklist} (binary heap with lazy
      revalidation) seeded from the endpoints of each topology change
      and refilled only with the neighbours of just-reversed nodes — no
      per-step component rescan;
    - membership in the destination's component is maintained
      incrementally (one BFS per disconnecting change, one one-sided
      BFS per reconnecting one) instead of recomputing all components;
    - a per-node {e next-hop cache} makes repeated route queries on a
      quiescent engine O(path length) array hops with zero height
      comparisons; entries are invalidated exactly where a height or an
      incident edge changed. *)

open Lr_graph
open Linkrev

type t

val create : Maintenance.rule -> Config.t -> t
(** Starts from [G'_init] and stabilizes it, like
    {!Maintenance.create}.  Node ids must be [0 .. n-1]
    ({!Lr_graph.Generators} outputs and service shard configs satisfy
    this); @raise Invalid_argument otherwise. *)

val destination : t -> Node.t
val num_nodes : t -> int
val mem_node : t -> Node.t -> bool
val mem_edge : t -> Node.t -> Node.t -> bool

val edge_out : t -> Node.t -> Node.t -> bool
(** [edge_out t u v] iff the (present) edge [{u,v}] is directed
    [u -> v] — i.e. [u]'s height is the greater one. *)

val compare_heights : t -> Node.t -> Node.t -> int
(** Same order as {!Maintenance.compare_heights}. *)

val height : t -> Node.t -> int * int
(** The node's current [(pa, pb)] height pair.  The third lexicographic
    component is the node id itself.  This is the seeding hook for
    layers that derive their own orientation from the engine's
    stabilized heights (e.g. {e lr_packet} forwarding planes). *)

val total_work : t -> int
val is_destination_oriented : t -> bool

val graph : t -> Digraph.t
(** Materialized snapshot of the current oriented topology (orientation
    derived from heights).  For tests and the rare failover path — not
    the hot path. *)

val route : t -> Node.t -> Node.t list option
(** Same paths as {!Maintenance.route}, served through the next-hop
    cache. *)

val has_path : t -> Node.t -> bool
(** A directed path from the node to the destination exists (the
    serving layer's honesty check for [No_route]). *)

val fail_link : t -> Node.t -> Node.t -> Maintenance.change_result
(** @raise Invalid_argument if absent. *)

val add_link : t -> Node.t -> Node.t -> unit
(** @raise Invalid_argument if already present or a self-loop. *)

val fail_node : t -> Node.t -> Maintenance.change_result
(** @raise Invalid_argument for the destination. *)

val adopt_heights : t -> (Node.t -> int * int) -> Maintenance.change_result
(** [adopt_heights t f] overwrites every node's [(pa, pb)] height with
    [f u] — an arbitrary, possibly adversarial assignment — and
    self-heals through the ordinary sink worklist.  Any height
    assignment derives an acyclic orientation (heights are a total
    order), so the engine stabilizes from {e any} adopted state; this
    is the fault-injection entry point of the chaos harness.  Always
    returns [Stabilized] (the topology is untouched). *)

val set_observer : t -> (Node.t -> int array -> int -> unit) option -> unit
(** [set_observer t (Some f)] has the engine call [f u flipped len]
    after every reversal step: [u] is the node that stepped and
    [flipped.(0 .. len-1)] the neighbours whose edge to [u] reversed,
    in adjacency order.  The array is reused across steps — copy, don't
    retain.  Used by the chaos harness to record LRT1 traces of
    recoveries; [None] (the default) restores the silent hot path. *)

type cache_stats = { hits : int; misses : int; invalidations : int }

val cache_stats : t -> cache_stats
(** Next-hop cache counters since [create]: [hits] cached hops taken,
    [misses] entries recomputed, [invalidations] entries discarded. *)

val consistent : t -> bool
(** Internal invariant check for tests: in-degrees and component
    membership match a recount, every worklist-eligible sink is either
    queued or outside the destination's component, and the
    destination's component is destination-oriented. *)
