(** TORA-style route maintenance on a dynamic topology.

    A maintenance session keeps a height-oriented graph
    destination-oriented while links fail and appear — the motivating
    use of Partial Reversal in mobile ad-hoc networks.  Link directions
    are always derived from node heights, so a new link is oriented
    "for free" (higher endpoint to lower), and a failure that leaves a
    node with no outgoing edge triggers a reversal cascade which the
    session runs to quiescence.

    Partition handling is deliberately simple (real TORA detects
    partitions with reflected heights): a failure that disconnects part
    of the network from the destination is detected by a connectivity
    check and reported; the disconnected side is left untouched. *)

open Lr_graph
open Linkrev

type rule = Full_reversal | Partial_reversal

type t

type change_result =
  | Stabilized of { node_steps : int; affected : Node.Set.t }
      (** Reversal work performed to restore destination orientation;
          [affected] are the nodes that reversed. *)
  | Partitioned of Node.Set.t
      (** Nodes cut off from the destination; no reversals performed. *)

val create : rule -> Config.t -> t
(** Starts from [G'_init] and stabilizes it (the initial graph need not
    be destination-oriented). *)

val graph : t -> Digraph.t
val destination : t -> Node.t
val is_destination_oriented : t -> bool
val total_work : t -> int
(** Cumulative reversal steps since [create]. *)

val route : t -> Node.t -> Node.t list option
(** A directed path from the node to the destination, if the node is
    currently connected to it. *)

val compare_heights : t -> Node.t -> Node.t -> int
(** Order of the two nodes' current heights (positive when the first is
    higher).  Every link is directed from its higher endpoint to its
    lower one, so a correct route descends strictly in this order — the
    serving layer uses it to validate returned paths independently of
    the orientation bits.  @raise Not_found on unknown nodes. *)

val fail_link : t -> Node.t -> Node.t -> change_result
(** Remove a link.  @raise Invalid_argument if absent. *)

val add_link : t -> Node.t -> Node.t -> unit
(** Insert a link between existing nodes; it is oriented by the current
    heights.  @raise Invalid_argument if already present or a
    self-loop. *)

val fail_node : t -> Node.t -> change_result
(** Remove all links of a node (crash).  The node itself stays in the
    skeleton, isolated.  @raise Invalid_argument for the destination. *)

val adoption_budget : n:int -> spread:int -> int
(** [4 n (n + spread) + 1000] — the stabilization step budget
    {!adopt_heights} runs under, where [spread] is the adopted
    assignment's total height range ([(max pa - min pa) +
    (max pb - min pb)]).  Work to converge from an arbitrary height
    assignment grows with the spread (each reversal raises the node's
    [pa] by at least one toward the assignment's ceiling), so the
    ordinary [4 n^2 + 1000] repair budget only covers assignments
    whose spread is O(n); this generalizes it. *)

val adopt_heights : t -> (Node.t -> int * int) -> change_result
(** [adopt_heights t f] overwrites every node's [(pa, pb)] height with
    [f u] (the id component stays [u]), re-derives every edge's
    orientation and self-heals via the ordinary stabilization loop
    (under {!adoption_budget}).  Any height assignment orients
    acyclically, so this converges from arbitrary — including
    adversarial — state; it is the fault-injection entry point of the
    chaos harness.  Always returns [Stabilized]: the topology is
    untouched.  Mirrors {!Fast_maintenance.adopt_heights}
    byte-for-byte. *)

val height_pair : t -> Node.t -> int * int
(** The node's current [(pa, pb)] height (the third lexicographic
    component is the id itself) — comparable with
    {!Fast_maintenance.height} in differential checks.
    @raise Not_found on unknown nodes. *)
