open Lr_graph
open Linkrev

type outcome = {
  leader : Node.t;
  members : Node.Set.t;
  node_steps : int;
  oriented : bool;
}

let elect_after_destination_failure rule config =
  let dest = config.Config.destination in
  let heights =
    match rule with
    | Maintenance.Partial_reversal ->
        Node.Set.fold
          (fun u m ->
            let r = Embedding.rank config.Config.embedding u in
            Node.Map.add u { Heights.pa = 0; pb = -r; pid = u } m)
          (Config.nodes config) Node.Map.empty
    | Maintenance.Full_reversal ->
        let n = Node.Set.cardinal (Config.nodes config) in
        Node.Set.fold
          (fun u m ->
            let r = Embedding.rank config.Config.embedding u in
            Node.Map.add u { Heights.pa = n - r; pb = 0; pid = u } m)
          (Config.nodes config) Node.Map.empty
  in
  (* Crash the destination: drop all its links. *)
  let graph =
    Node.Set.fold
      (fun v g -> Digraph.remove_edge g dest v)
      (Digraph.neighbors config.Config.initial dest)
      config.Config.initial
  in
  let heights = ref heights in
  let graph = ref graph in
  let height u = Node.Map.find u !heights in
  let raise_height u =
    let nbrs = Digraph.neighbors !graph u in
    let hs = Node.Set.fold (fun v acc -> height v :: acc) nbrs [] in
    match (rule, hs) with
    | _, [] -> height u
    | Maintenance.Partial_reversal, _ ->
        let min_a = List.fold_left (fun m h -> min m h.Heights.pa) max_int hs in
        let new_a = min_a + 1 in
        let same = List.filter (fun h -> h.Heights.pa = new_a) hs in
        let new_b =
          match same with
          | [] -> (height u).Heights.pb
          | _ -> List.fold_left (fun m h -> min m h.Heights.pb) max_int same - 1
        in
        { Heights.pa = new_a; pb = new_b; pid = u }
    | Maintenance.Full_reversal, _ ->
        let max_a = List.fold_left (fun m h -> max m h.Heights.pa) min_int hs in
        { Heights.pa = max_a + 1; pb = 0; pid = u }
  in
  let reorient_at u =
    let hu = height u in
    Node.Set.iter
      (fun v ->
        let d =
          if Heights.compare_pr_height hu (height v) > 0 then Digraph.Out
          else Digraph.In
        in
        graph := Digraph.set_dir !graph u v d)
      (Digraph.neighbors !graph u)
  in
  let components =
    Undirected.connected_components (Digraph.skeleton !graph)
    |> List.filter (fun c -> not (Node.Set.equal c (Node.Set.singleton dest)))
  in
  List.map
    (fun members ->
      let leader =
        match Node.Set.max_elt_opt members with
        | Some l -> l
        | None -> assert false
      in
      let steps = ref 0 in
      let n = Node.Set.cardinal members in
      let budget = (4 * n * n) + 1000 in
      let find_sink () =
        Node.Set.fold
          (fun u acc ->
            match acc with
            | Some _ -> acc
            | None ->
                if (not (Node.equal u leader)) && Digraph.is_sink !graph u
                then Some u
                else None)
          members None
      in
      let rec loop () =
        if !steps > budget then
          failwith "Failover: budget exceeded (bug)"
        else
          match find_sink () with
          | None -> ()
          | Some u ->
              heights := Node.Map.add u (raise_height u) !heights;
              reorient_at u;
              incr steps;
              loop ()
      in
      loop ();
      let oriented =
        Node.Set.for_all
          (fun u -> Digraph.has_path !graph u leader)
          members
      in
      { leader; members; node_steps = !steps; oriented })
    components
