open Lr_graph
open Linkrev
open Helpers
module G = Lr_analysis.Game

let test_uniform_profiles () =
  let config = diamond () in
  let p = G.uniform G.Full config in
  check_int "players exclude destination" 3 (Node.Map.cardinal p);
  check_bool "destination not a player" true (not (Node.Map.mem 0 p))

let test_play_uniform_matches_executors () =
  (* All-PR play equals the PR executor's work; all-FR equals FR's. *)
  List.iter
    (fun config ->
      let work algo =
        (Executor.run
           ~scheduler:(Lr_automata.Scheduler.first ())
           ~destination:config.Config.destination algo)
          .Executor.total_node_steps
      in
      let pr_play = G.play config (G.uniform G.Partial config) in
      let fr_play = G.play config (G.uniform G.Full config) in
      check_bool "terminated" true (pr_play.G.terminated && fr_play.G.terminated);
      check_int "all-PR = PR" (work (Pr.algo ~mode:Pr.Singletons config))
        pr_play.G.social_cost;
      check_int "all-FR = FR" (work (Full_reversal.algo config))
        fr_play.G.social_cost)
    [ bad_chain 7; sawtooth 8; diamond () ]

let test_fr_profile_is_nash () =
  (* Charron-Bost et al.: the all-FR profile is always a Nash
     equilibrium. *)
  List.iter
    (fun config ->
      check_bool "all-FR is NE" true (G.is_nash config (G.uniform G.Full config)))
    [ bad_chain 6; sawtooth 6; diamond (); random_config ~seed:2 7 ]

let test_pr_social_cost_at_most_fr () =
  List.iter
    (fun config ->
      let cost s = (G.play config (G.uniform s config)).G.social_cost in
      check_bool "PR <= FR" true (cost G.Partial <= cost G.Full))
    [ bad_chain 8; sawtooth 8; diamond (); random_config ~seed:5 9 ]

let test_social_optimum_at_most_both () =
  let config = bad_chain 6 in
  let _, opt = G.social_optimum config in
  let cost s = (G.play config (G.uniform s config)).G.social_cost in
  check_bool "optimum <= all-PR" true (opt.G.social_cost <= cost G.Partial);
  check_bool "optimum <= all-FR" true (opt.G.social_cost <= cost G.Full)

let test_all_profiles_count () =
  let config = diamond () in
  check_int "2^3 profiles" 8 (List.length (G.all_profiles config))

let test_costs_sum_to_social () =
  let config = sawtooth 8 in
  let r = G.play config (G.uniform G.Partial config) in
  check_int "sum" r.G.social_cost
    (Node.Map.fold (fun _ c acc -> acc + c) r.G.costs 0)

let test_mixed_profiles_report_soundness () =
  (* Neither acyclicity proof covers mixed profiles; the engine reports
     what happens instead of assuming.  On these small instances every
     mixed profile happens to terminate — assert the reporting machinery
     agrees and flags no false non-termination. *)
  let config = diamond () in
  List.iter
    (fun p ->
      let r = G.play config p in
      check_bool "terminated" true r.G.terminated;
      check_bool "acyclicity monitored" true r.G.acyclic_throughout)
    (G.all_profiles config)

let test_best_response_violations_empty_for_nash () =
  let config = bad_chain 5 in
  let fr = G.uniform G.Full config in
  Alcotest.(check int) "no violations" 0
    (List.length (G.best_response_violations config fr))

let () =
  Alcotest.run "game"
    [
      suite "game"
        [
          case "uniform profiles" test_uniform_profiles;
          case "uniform play matches the executors" test_play_uniform_matches_executors;
          case "all-FR is a Nash equilibrium" test_fr_profile_is_nash;
          case "all-PR costs at most all-FR" test_pr_social_cost_at_most_fr;
          case "social optimum bounds both" test_social_optimum_at_most_both;
          case "profile enumeration" test_all_profiles_count;
          case "costs sum to the social cost" test_costs_sum_to_social;
          case "mixed profiles monitored" test_mixed_profiles_report_soundness;
          case "NE has no best-response violations"
            test_best_response_violations_empty_for_nash;
        ];
    ]
