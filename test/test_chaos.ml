open Helpers
module C = Lr_chaos.Chaos
module Fault = Lr_chaos.Fault
module Schedule = Lr_chaos.Schedule
module M = Lr_routing.Maintenance
module S = Lr_service.Service
module W = Lr_service.Workload
module Op = Lr_service.Op
module Shard = Lr_service.Shard
module Audit = Lr_trace.Audit

let check_string = Alcotest.(check string)

(* {1 Spec parsing} *)

let test_spec_of_string () =
  (match Schedule.spec_of_string "8" with
  | Ok s ->
      check_int "count" 8 s.Schedule.count;
      check_int "default seed" Schedule.default_seed s.Schedule.seed;
      check_int "default magnitude" Schedule.default_magnitude
        s.Schedule.magnitude
  | Error e -> Alcotest.failf "count-only spec rejected: %s" e);
  (match Schedule.spec_of_string "8:7" with
  | Ok s ->
      check_int "count" 8 s.Schedule.count;
      check_int "seed" 7 s.Schedule.seed
  | Error e -> Alcotest.failf "count:seed spec rejected: %s" e);
  (match Schedule.spec_of_string "8:7:1024" with
  | Ok s ->
      check_int "magnitude" 1024 s.Schedule.magnitude;
      check_string "round-trips" "8:7:1024" (Schedule.spec_to_string s)
  | Error e -> Alcotest.failf "full spec rejected: %s" e);
  List.iter
    (fun bad ->
      match Schedule.spec_of_string bad with
      | Ok _ -> Alcotest.failf "bad spec %S accepted" bad
      | Error _ -> ())
    [ ""; "x"; "-1"; "8:-2"; "8:7:0"; "8:7:-5"; "8:7:1024:9" ]

(* {1 Schedule generation} *)

let test_schedule_deterministic () =
  let spec = { Schedule.count = 12; seed = 7; magnitude = 256 } in
  let a = Schedule.generate spec ~shards:4 ~nodes:16 in
  let b = Schedule.generate spec ~shards:4 ~nodes:16 in
  check_bool "same spec, same schedule" true
    (Schedule.entries a = Schedule.entries b);
  let c =
    Schedule.generate { spec with Schedule.seed = 8 } ~shards:4 ~nodes:16
  in
  check_bool "different seed, different schedule" false
    (Schedule.entries a = Schedule.entries c);
  check_bool "at least one entry per scheduled fault" true
    (List.length (Schedule.entries a) >= spec.Schedule.count);
  let sorted = ref true and in_range = ref true in
  let last = ref neg_infinity in
  List.iter
    (fun (e : Schedule.entry) ->
      if e.Schedule.at < !last then sorted := false;
      last := e.Schedule.at;
      if e.Schedule.at < 0.0 || e.Schedule.at >= 1.0 then in_range := false;
      let s = Fault.shard_of e.Schedule.fault in
      if s < 0 || s >= 4 then in_range := false)
    (Schedule.entries a);
  check_bool "entries ascending by time" true !sorted;
  check_bool "times in [0,1), shards in range" true !in_range

(* {1 Partition cuts} *)

let test_cut_partition_heal_symmetry () =
  let g = (Linkrev.Config.of_instance (Lr_graph.Generators.ring 12)).Linkrev.Config.initial in
  let cut = Fault.cut g ~seed:5 in
  check_bool "cut is deterministic" true (cut = Fault.cut g ~seed:5);
  check_bool "ring cut is non-empty" true (cut <> []);
  let graphs = [| g |] in
  let downs = Fault.compile ~graphs (Fault.Partition { shard = 0; seed = 5 }) in
  let ups =
    Fault.compile ~graphs (Fault.Heal_partition { shard = 0; seed = 5 })
  in
  check_int "one op per cut edge (down)" (List.length cut) (List.length downs);
  check_int "one op per cut edge (up)" (List.length cut) (List.length ups);
  List.iter2
    (fun (u, v) op ->
      match op with
      | Op.Link_down { shard = 0; u = u'; v = v' } ->
          check_int "down u" u u';
          check_int "down v" v v'
      | _ -> Alcotest.fail "partition compiled to a non-Link_down op")
    cut downs;
  List.iter2
    (fun (u, v) op ->
      match op with
      | Op.Link_up { shard = 0; u = u'; v = v' } ->
          check_int "up u" u u';
          check_int "up v" v v'
      | _ -> Alcotest.fail "heal compiled to a non-Link_up op")
    cut ups

(* {1 Weave} *)

let test_weave_deterministic () =
  let wspec =
    { W.shards = 4; nodes = 12; extra_edges = 8; seed = 5; ops = 200;
      mix = W.default_mix; pmix = W.no_packets; burst = 4; skew = 0.8;
      stats_every = 0 }
  in
  let base = W.generate wspec in
  let graphs =
    Array.map
      (fun (c : Linkrev.Config.t) -> c.Linkrev.Config.initial)
      (W.shard_configs wspec)
  in
  let sched =
    Schedule.generate
      { Schedule.count = 6; seed = 9; magnitude = 128 }
      ~shards:wspec.W.shards ~nodes:wspec.W.nodes
  in
  let w1 = Schedule.weave sched ~graphs base in
  let w2 = Schedule.weave sched ~graphs base in
  check_bool "weave is deterministic" true (w1 = w2);
  check_bool "weave only adds ops" true (Array.length w1 > Array.length base);
  (* The woven stream is the base stream plus the compiled fault ops,
     order aside. *)
  let count op arr =
    Array.fold_left (fun k o -> if o = op then k + 1 else k) 0 arr
  in
  Array.iter
    (fun op ->
      check_bool "base op survives the weave" true (count op w1 >= count op base))
    base

(* {1 Service determinism under chaos} *)

(* The tentpole guarantee at the service level: a chaos-woven op
   stream is ordinary ops, so responses and fingerprint stay
   byte-identical across job counts, dispatchers, and engine tiers. *)
let test_service_fingerprint_under_chaos () =
  let wspec =
    { W.shards = 4; nodes = 12; extra_edges = 8; seed = 5; ops = 300;
      mix = W.default_mix; pmix = W.default_pmix; burst = 4; skew = 0.8;
      stats_every = 0 }
  in
  let graphs =
    Array.map
      (fun (c : Linkrev.Config.t) -> c.Linkrev.Config.initial)
      (W.shard_configs wspec)
  in
  let sched =
    Schedule.generate
      { Schedule.count = 6; seed = 9; magnitude = 128 }
      ~shards:wspec.W.shards ~nodes:wspec.W.nodes
  in
  let ops = Schedule.weave sched ~graphs (W.generate wspec) in
  let run ~jobs ~deterministic ~engine =
    let cfg =
      { S.default_config with S.jobs; queue_bound = Array.length ops + 1;
        deterministic; engine; pin_loops = true }
    in
    let svc = S.create cfg (W.shard_configs wspec) in
    Fun.protect
      ~finally:(fun () -> S.shutdown svc)
      (fun () ->
        let responses = S.run svc ops in
        let m = S.metrics svc in
        (responses, S.fingerprint responses m, m))
  in
  let r1, fp1, m1 = run ~jobs:1 ~deterministic:false ~engine:Shard.Fast in
  let r4, fp4, _ = run ~jobs:4 ~deterministic:false ~engine:Shard.Fast in
  let rw, fpw, _ = run ~jobs:1 ~deterministic:true ~engine:Shard.Fast in
  let rr, fpr, _ = run ~jobs:1 ~deterministic:false ~engine:Shard.Reference in
  check_bool "responses jobs=4 = jobs=1" true (r1 = r4);
  check_bool "responses windowed = free" true (r1 = rw);
  check_bool "responses reference = fast" true (r1 = rr);
  check_string "fingerprint jobs=4" fp1 fp4;
  check_string "fingerprint windowed" fp1 fpw;
  check_string "fingerprint reference engine" fp1 fpr;
  check_bool "the schedule actually injected faults" true
    (m1.Lr_service.Metrics.snapshot_totals.Lr_service.Metrics.faults > 0)

(* {1 Recovery differentials} *)

(* Pinned step counts: any change to reversal semantics, hostile
   heights, or adoption order shows up here as an exact-count
   mismatch, not a vague slowdown. *)
let test_differential_pinned_counts () =
  match C.scenarios ~n:48 ~seed:1 () with
  | chain :: _ring :: _grid :: tree :: _ ->
      let dc =
        C.differential M.Partial_reversal chain.C.config ~seed:chain.C.seed
          ~magnitude:chain.C.magnitude
      in
      check_int "chain steps" 489 dc.C.fast.C.steps;
      check_int "chain rounds" 29 dc.C.fast.C.rounds;
      check_bool "chain agrees" true dc.C.agree;
      check_bool "chain converged" true dc.C.fast.C.destination_oriented;
      check_bool "chain within budget" true dc.C.fast.C.within_budget;
      let dt =
        C.differential M.Partial_reversal tree.C.config ~seed:tree.C.seed
          ~magnitude:tree.C.magnitude
      in
      check_int "tree steps" 253 dt.C.fast.C.steps;
      check_int "tree rounds" 5 dt.C.fast.C.rounds;
      check_bool "tree agrees" true dt.C.agree
  | _ -> Alcotest.fail "scenario battery lost its shape"

let test_adoption_budget () =
  check_int "classic bound at zero spread" ((4 * 10 * 10) + 1000)
    (M.adoption_budget ~n:10 ~spread:0);
  check_bool "monotone in spread" true
    (M.adoption_budget ~n:10 ~spread:100 > M.adoption_budget ~n:10 ~spread:1);
  (* The linear-in-spread term is what lets wide corruptions
     (magnitude >> n) stabilize without tripping the engine's
     budget-exceeded assertion. *)
  check_int "linear spread term" ((4 * 8 * (8 + 1000)) + 1000)
    (M.adoption_budget ~n:8 ~spread:1000)

let test_trace_roundtrip_with_perturbs () =
  match C.scenarios ~n:24 ~seed:1 () with
  | _chain :: ring :: _ ->
      let trace = Filename.temp_file "test_chaos_" ".lrt" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists trace then Sys.remove trace)
        (fun () ->
          let d =
            C.differential ~trace M.Partial_reversal ring.C.config
              ~seed:ring.C.seed ~magnitude:ring.C.magnitude
          in
          match Audit.run ~stride:1 trace with
          | Error e -> Alcotest.failf "audit failed to replay: %s" e
          | Ok r ->
              check_bool "audit clean on every state" true (Audit.clean r);
              check_bool "summary matches replay" true r.Audit.summary_ok;
              check_int "replayed steps = measured steps" d.C.fast.C.steps
                r.Audit.steps;
              check_bool "perturb events recorded" true (r.Audit.perturbs > 0);
              (* edge_reversals totals the perturbation's own flips
                 plus the recovery's, so it dominates the blast
                 radius. *)
              check_bool "edge reversals cover the perturbed edges" true
                (r.Audit.edge_reversals >= d.C.fast.C.perturbed_edges))
  | _ -> Alcotest.fail "scenario battery lost its shape"

let test_differential_flip () =
  let config = bad_chain 8 in
  let d = C.differential_flip M.Partial_reversal config ~node:4 ~bit:3 in
  check_bool "seu converged" true d.C.fast.C.destination_oriented;
  check_bool "seu agrees" true d.C.agree;
  check_bool "seu within budget" true d.C.fast.C.within_budget;
  check_bool "flipping a height does some work" true (d.C.fast.C.steps > 0);
  Alcotest.check_raises "bit out of range"
    (Invalid_argument "Chaos.differential_flip: bad bit") (fun () ->
      ignore (C.differential_flip M.Partial_reversal config ~node:0 ~bit:62));
  Alcotest.check_raises "node out of range"
    (Invalid_argument "Chaos.differential_flip: node out of range") (fun () ->
      ignore (C.differential_flip M.Partial_reversal config ~node:99 ~bit:3))

let () =
  Alcotest.run "chaos"
    [
      suite "chaos"
        [
          case "spec_of_string" test_spec_of_string;
          case "schedule determinism" test_schedule_deterministic;
          case "partition cut / heal symmetry" test_cut_partition_heal_symmetry;
          case "weave determinism" test_weave_deterministic;
          case "service fingerprint under chaos"
            test_service_fingerprint_under_chaos;
          case "pinned recovery step counts" test_differential_pinned_counts;
          case "adoption budget" test_adoption_budget;
          case "trace roundtrip with perturbs"
            test_trace_roundtrip_with_perturbs;
          case "single-event upset" test_differential_flip;
        ];
    ]
