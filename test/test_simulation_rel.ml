open Lr_graph
open Linkrev
open Helpers
module A = Lr_automata

let schedulers seed =
  [
    ("first", A.Scheduler.first ());
    ("last", A.Scheduler.last ());
    ("random", A.Scheduler.random (rng seed));
  ]

let test_r_prime_on_random () =
  (* Lemma 5.1 / Theorem 5.2 along whole executions, including
     concurrent reverse(S) steps. *)
  for seed = 0 to 9 do
    let config = random_config ~seed 12 in
    List.iter
      (fun (name, sched) ->
        match Simulation_rel.check_r_prime ~scheduler:sched config with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "R' failed under %s: %s" name e)
      (schedulers seed)
  done

let test_r_prime_counts_steps () =
  (* A reverse(S) step corresponds to exactly |S| OneStepPR steps. *)
  let config = sawtooth 11 in
  let exec_a =
    run_random ~seed:2 (Pr.automaton ~mode:Pr.Singletons_and_max config)
  in
  let expected =
    List.fold_left
      (fun acc { A.Execution.action = Pr.Reverse set; _ } ->
        acc + Node.Set.cardinal set)
      0 exec_a.A.Execution.steps
  in
  match
    A.Simulation.check_guided ~b:(One_step_pr.automaton config)
      (Simulation_rel.r_prime config) exec_a
  with
  | Error e -> Alcotest.fail e
  | Ok exec_b -> check_int "|S| steps each" expected (A.Execution.length exec_b)

let test_r_on_random () =
  for seed = 0 to 9 do
    let config = random_config ~seed 12 in
    List.iter
      (fun (name, sched) ->
        match Simulation_rel.check_r ~scheduler:sched config with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "R failed under %s: %s" name e)
      (schedulers seed)
  done

let test_r_uses_dummy_steps () =
  (* Lemma 5.3's two-step case: a full list induces a dummy NewPR step
     followed by a real one, so the NewPR execution is strictly longer
     on graphs with initial sinks/sources that step twice. *)
  let config =
    Config.make_exn (Digraph.of_directed_edges [ (0, 1); (2, 1) ]) ~destination:0
  in
  let exec_a =
    A.Execution.run ~scheduler:(A.Scheduler.first ()) (One_step_pr.automaton config)
  in
  match
    A.Simulation.check_guided ~b:(New_pr.automaton config)
      (Simulation_rel.r config) exec_a
  with
  | Error e -> Alcotest.fail e
  | Ok exec_b ->
      check_bool "NewPR needed extra dummy steps" true
        (A.Execution.length exec_b > A.Execution.length exec_a)

let test_r_composed_on_random () =
  for seed = 0 to 9 do
    let config = random_config ~seed 12 in
    match
      Simulation_rel.check_r_composed
        ~scheduler:(A.Scheduler.random (rng seed))
        config
    with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "composed failed: %s" e
  done

let test_r_reverse_on_random () =
  (* The paper's future-work direction. *)
  for seed = 0 to 9 do
    let config = random_config ~seed 12 in
    List.iter
      (fun (name, sched) ->
        match Simulation_rel.check_r_reverse ~scheduler:sched config with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "reverse failed under %s: %s" name e)
      (schedulers seed)
  done

let test_r_reverse_dummy_maps_to_empty () =
  (* NewPR dummy steps correspond to zero OneStepPR steps, so the
     OneStepPR execution is the shorter one. *)
  let config =
    Config.make_exn (Digraph.of_directed_edges [ (0, 1); (2, 1) ]) ~destination:0
  in
  let exec_a =
    A.Execution.run ~scheduler:(A.Scheduler.first ()) (New_pr.automaton config)
  in
  match
    A.Simulation.check_guided ~b:(One_step_pr.automaton config)
      (Simulation_rel.r_reverse config) exec_a
  with
  | Error e -> Alcotest.fail e
  | Ok exec_b ->
      check_bool "dummy steps dropped" true
        (A.Execution.length exec_b < A.Execution.length exec_a)

let test_relations_preserve_graphs () =
  (* The defining guarantee: both executions end with the same oriented
     graph. *)
  for seed = 0 to 9 do
    let config = random_config ~seed 10 in
    let exec_a =
      run_random ~seed (Pr.automaton ~mode:Pr.Singletons_and_max config)
    in
    (match
       A.Simulation.check_guided ~b:(New_pr.automaton config)
         (Simulation_rel.r_composed config) exec_a
     with
    | Error e -> Alcotest.fail e
    | Ok exec_b ->
        let final_a = (A.Execution.final exec_a).Pr.graph in
        let final_b = (A.Execution.final exec_b).New_pr.graph in
        Alcotest.check digraph_testable "same final graph" final_a final_b)
  done

let test_graphs_equal_helper () =
  let g1 = Digraph.of_directed_edges [ (0, 1) ] in
  let g2 = Digraph.of_directed_edges [ (1, 0) ] in
  check_bool "equal" true (Result.is_ok (Simulation_rel.graphs_equal g1 g1));
  check_bool "different" true (Result.is_error (Simulation_rel.graphs_equal g1 g2))

let test_named_families () =
  List.iter
    (fun config ->
      (match Simulation_rel.check_r_prime ~scheduler:(A.Scheduler.first ()) config with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "R': %s" e);
      (match Simulation_rel.check_r ~scheduler:(A.Scheduler.first ()) config with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "R: %s" e);
      match Simulation_rel.check_r_reverse ~scheduler:(A.Scheduler.first ()) config with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "R-reverse: %s" e)
    [
      diamond ();
      bad_chain 9;
      sawtooth 10;
      Config.of_instance (Generators.grid ~rows:3 ~cols:3);
      Config.of_instance (Generators.star ~center:0 ~leaves:5 ~inward:false);
      Config.of_instance (Generators.half_bad_chain 9);
    ]

let () =
  Alcotest.run "simulation_rel"
    [
      suite "r_prime"
        [
          case "PR -> OneStepPR on random configs" test_r_prime_on_random;
          case "reverse(S) expands to |S| steps" test_r_prime_counts_steps;
        ];
      suite "r"
        [
          case "OneStepPR -> NewPR on random configs" test_r_on_random;
          case "full lists expand to dummy + real step" test_r_uses_dummy_steps;
        ];
      suite "composition"
        [
          case "PR -> NewPR composed" test_r_composed_on_random;
          case "final graphs coincide" test_relations_preserve_graphs;
          case "graphs_equal" test_graphs_equal_helper;
        ];
      suite "future work"
        [
          case "NewPR -> OneStepPR on random configs" test_r_reverse_on_random;
          case "dummy steps map to empty sequences" test_r_reverse_dummy_maps_to_empty;
          case "all relations on named families" test_named_families;
        ];
    ]
