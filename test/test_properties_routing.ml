(* Property-based tests for the routing and simulation substrates. *)

open Lr_graph
open Linkrev
module Q = QCheck

let gen_params =
  Q.Gen.(
    let* n = int_range 4 20 in
    let* extra = int_range 0 n in
    let* seed = int_range 0 1_000_000 in
    return (n, extra, seed))

let arb_params =
  Q.make
    ~print:(fun (n, e, s) -> Printf.sprintf "n=%d extra=%d seed=%d" n e s)
    gen_params

let config_of (n, extra, seed) =
  Config.of_instance
    (Generators.random_connected_dag
       (Random.State.make [| 0xab; seed |])
       ~n ~extra_edges:extra)

let count = 100

let prop name f = Q.Test.make ~count ~name arb_params f

let tora_props =
  [
    prop "TORA: creation routes everyone, acyclic" (fun p ->
        let t = Lr_routing.Tora.create (config_of p) in
        Lr_routing.Tora.routed_fraction t = 1.0 && Lr_routing.Tora.acyclic t);
    prop "TORA: failure storm with healing restores all routes" (fun p ->
        let module T = Lr_routing.Tora in
        let _, _, seed = p in
        let t = T.create (config_of p) in
        let r = Random.State.make [| 0xcd; seed |] in
        for _ = 1 to 15 do
          let edges = Edge.Set.elements (Undirected.edges (T.skeleton t)) in
          if edges <> [] then begin
            let e = List.nth edges (Random.State.int r (List.length edges)) in
            let u, v = Edge.endpoints e in
            match T.fail_link t u v with
            | T.Maintained _ -> ()
            | T.Partition_detected { cleared; _ } -> (
                match Node.Set.choose_opt cleared with
                | Some w
                  when not (Undirected.mem_edge (T.skeleton t) w (T.destination t))
                  ->
                    ignore (T.add_link t w (T.destination t))
                | _ -> ())
          end
        done;
        T.acyclic t && T.routed_fraction t = 1.0);
  ]

let maintenance_props =
  [
    prop "maintenance: single repairable failures keep orientation" (fun p ->
        let module M = Lr_routing.Maintenance in
        let _, _, seed = p in
        let m = M.create M.Partial_reversal (config_of p) in
        let r = Random.State.make [| 0xef; seed |] in
        let sound = ref true in
        for _ = 1 to 10 do
          let edges = Digraph.directed_edges (M.graph m) in
          if edges <> [] then begin
            let u, v = List.nth edges (Random.State.int r (List.length edges)) in
            (match M.fail_link m u v with
            | M.Stabilized _ | M.Partitioned _ -> ());
            sound :=
              !sound
              && Digraph.is_acyclic (M.graph m)
              && M.is_destination_oriented m
          end
        done;
        !sound);
  ]

let mutex_props =
  [
    prop "mutex: every request served FIFO, graph stays sound" (fun p ->
        let module X = Lr_routing.Mutex in
        let config = config_of p in
        let mx = X.create config in
        let requesters =
          Node.Set.elements
            (Node.Set.remove config.Config.destination (Config.nodes config))
        in
        List.iter (X.request mx) requesters;
        let rec drain served =
          match X.grant_next mx with
          | None -> List.rev served
          | Some (r, _) ->
              if
                not
                  (Digraph.is_acyclic (X.graph mx) && X.oriented_to_holder mx)
              then [ -1 ]
              else drain (r :: served)
        in
        drain [] = requesters);
  ]

let protocol_props =
  [
    prop "height protocol converges (reliable links)" (fun p ->
        let r = Lr_routing.Height_protocol.run ~mode:Lr_routing.Height_protocol.Partial (config_of p) in
        r.Lr_routing.Height_protocol.destination_oriented);
    prop "height protocol: beacons overcome 25% loss" (fun p ->
        let _, _, seed = p in
        let r =
          Lr_routing.Height_protocol.run
            ~drop:(Random.State.make [| 0x11; seed |], 0.25)
            ~beacon:4.0 ~until:3000.0
            ~mode:Lr_routing.Height_protocol.Partial (config_of p)
        in
        r.Lr_routing.Height_protocol.destination_oriented);
  ]

let substrate_props =
  [
    prop "fast engine == persistent automata (PR and FR)" (fun p ->
        let config = config_of p in
        let check rule algo =
          let slow =
            Executor.run
              ~scheduler:(Lr_automata.Scheduler.first ())
              ~destination:config.Config.destination algo
          in
          let engine = Lr_fast.Fast_engine.of_config config in
          let fast = Lr_fast.Fast_engine.run rule engine in
          slow.Executor.total_node_steps = fast.Lr_fast.Fast_engine.work
          && Digraph.equal slow.Executor.final_graph
               (Lr_fast.Fast_engine.to_digraph engine)
        in
        check Lr_fast.Fast_engine.Partial (One_step_pr.algo config)
        && check Lr_fast.Fast_engine.Full (Full_reversal.algo config));
    prop "serial: instances round-trip" (fun p ->
        let n, extra, seed = p in
        let inst =
          Generators.random_connected_dag
            (Random.State.make [| 0xab; seed |])
            ~n ~extra_edges:extra
        in
        match Serial.instance_of_string (Serial.instance_to_string inst) with
        | Ok inst' ->
            Digraph.equal inst.Generators.graph inst'.Generators.graph
            && inst.Generators.destination = inst'.Generators.destination
        | Error _ -> false);
    prop "event queue drains sorted" (fun (n, _, seed) ->
        let q = Lr_sim.Event_queue.create () in
        let r = Random.State.make [| 0x33; seed |] in
        for i = 0 to (n * 13) - 1 do
          Lr_sim.Event_queue.add q ~time:(Random.State.float r 50.0) i
        done;
        let rec drain last =
          match Lr_sim.Event_queue.pop q with
          | None -> true
          | Some (t, _) -> t >= last && drain t
        in
        drain neg_infinity);
    prop "theorems bundle holds on random instances" (fun p ->
        let _, _, seed = p in
        List.for_all
          (fun (_, result) -> Result.is_ok result)
          (Theorems.all ~seed (config_of p)));
    prop "failover: every component ends leader-oriented" (fun p ->
        List.for_all
          (fun o -> o.Lr_routing.Failover.oriented)
          (Lr_routing.Failover.elect_after_destination_failure
             Lr_routing.Maintenance.Partial_reversal (config_of p)));
  ]

let () =
  let to_alcotest = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "properties_routing"
    [
      ("tora", to_alcotest tora_props);
      ("maintenance", to_alcotest maintenance_props);
      ("mutex", to_alcotest mutex_props);
      ("protocol", to_alcotest protocol_props);
      ("substrate", to_alcotest substrate_props);
    ]
