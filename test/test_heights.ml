open Lr_graph
open Linkrev
open Helpers
module A = Lr_automata

let test_height_orders () =
  let h a b id = { Heights.pa = a; pb = b; pid = id } in
  check_bool "a dominates" true (Heights.compare_pr_height (h 0 9 9) (h 1 0 0) < 0);
  check_bool "b breaks a-ties" true (Heights.compare_pr_height (h 1 2 9) (h 1 3 0) < 0);
  check_bool "id breaks full ties" true (Heights.compare_pr_height (h 1 2 3) (h 1 2 4) < 0);
  let f a id = { Heights.fa = a; fid = id } in
  check_bool "fr a dominates" true (Heights.compare_fr_height (f 1 9) (f 2 0) < 0);
  check_bool "fr id ties" true (Heights.compare_fr_height (f 1 3) (f 1 4) < 0)

let test_initial_heights_realize_graph () =
  for seed = 0 to 9 do
    let config = random_config ~seed 12 in
    check_bool "pr initial consistent" true
      (Heights.pr_consistent (Heights.pr_initial config));
    check_bool "fr initial consistent" true
      (Heights.fr_consistent (Heights.fr_initial config));
    Alcotest.check digraph_testable "pr graph is G'_init"
      config.Config.initial (Heights.pr_initial config).Heights.pgraph
  done

let test_consistency_maintained () =
  (* The cached orientation always equals the height-induced one. *)
  for seed = 0 to 4 do
    let config = random_config ~seed 10 in
    let exec = run_random ~seed (Heights.pr_automaton config) in
    List.iter
      (fun s -> check_bool "consistent" true (Heights.pr_consistent s))
      (A.Execution.states exec);
    let exec = run_random ~seed (Heights.fr_automaton config) in
    List.iter
      (fun s -> check_bool "consistent" true (Heights.fr_consistent s))
      (A.Execution.states exec)
  done

(* The central equivalence (Gafni–Bertsekas): the height formulations
   and the list/direct formulations reverse the same edges under the
   same schedule. *)
let test_pr_heights_lockstep_with_list_pr () =
  for seed = 0 to 14 do
    let config = random_config ~seed 14 in
    let dest = config.Config.destination in
    let rec lockstep (s_list : Pr.state) (s_h : Heights.pr_state) n =
      check_bool "graphs agree" true
        (Digraph.equal s_list.Pr.graph s_h.Heights.pgraph);
      if n > 5000 then Alcotest.fail "no termination"
      else
        let sinks = Node.Set.remove dest (Digraph.sinks s_list.Pr.graph) in
        match Node.Set.min_elt_opt sinks with
        | None -> ()
        | Some u ->
            lockstep
              (Pr.apply config s_list (Node.Set.singleton u))
              (Heights.pr_apply config s_h u)
              (n + 1)
    in
    lockstep (Pr.initial config) (Heights.pr_initial config) 0
  done

let test_fr_heights_lockstep_with_fr () =
  for seed = 0 to 14 do
    let config = random_config ~seed 14 in
    let dest = config.Config.destination in
    let rec lockstep (s : Full_reversal.state) (s_h : Heights.fr_state) n =
      check_bool "graphs agree" true
        (Digraph.equal s.Full_reversal.graph s_h.Heights.fgraph);
      if n > 5000 then Alcotest.fail "no termination"
      else
        let sinks = Node.Set.remove dest (Digraph.sinks s.Full_reversal.graph) in
        match Node.Set.min_elt_opt sinks with
        | None -> ()
        | Some u ->
            lockstep (Full_reversal.apply s u) (Heights.fr_apply config s_h u)
              (n + 1)
    in
    lockstep (Full_reversal.initial config) (Heights.fr_initial config) 0
  done

let test_pr_heights_reverse_minimum_a_neighbours () =
  let config = diamond () in
  let s = Heights.pr_initial config in
  let s' = Heights.pr_apply config s 3 in
  (* all neighbours had a = 0, so all edges reverse *)
  check_bool "3 -> 1" true (Digraph.dir s'.Heights.pgraph 3 1 = Digraph.Out);
  check_bool "3 -> 2" true (Digraph.dir s'.Heights.pgraph 3 2 = Digraph.Out);
  check_int "a incremented" 1 (Node.Map.find 3 s'.Heights.pheights).Heights.pa

let test_fr_heights_rise_above_all () =
  let config = diamond () in
  let s = Heights.fr_initial config in
  let s' = Heights.fr_apply config s 3 in
  let h u = Node.Map.find u s'.Heights.fheights in
  check_bool "above neighbour 1" true (Heights.compare_fr_height (h 3) (h 1) > 0);
  check_bool "above neighbour 2" true (Heights.compare_fr_height (h 3) (h 2) > 0)

let test_terminates_oriented () =
  for seed = 0 to 9 do
    let config = random_config ~seed 13 in
    let check_algo (out : Executor.outcome) =
      check_bool "quiescent" true out.Executor.quiescent;
      check_bool "oriented" true out.Executor.destination_oriented
    in
    let dest = config.Config.destination in
    check_algo
      (Executor.run
         ~scheduler:(A.Scheduler.random (rng seed))
         ~destination:dest (Heights.pr_algo config));
    check_algo
      (Executor.run
         ~scheduler:(A.Scheduler.random (rng seed))
         ~destination:dest (Heights.fr_algo config))
  done

let () =
  Alcotest.run "heights"
    [
      suite "orders"
        [
          case "lexicographic comparisons" test_height_orders;
          case "initial heights realize G'_init" test_initial_heights_realize_graph;
        ];
      suite "equivalence"
        [
          case "orientation consistency maintained" test_consistency_maintained;
          case "PR-heights == list PR, step for step"
            test_pr_heights_lockstep_with_list_pr;
          case "FR-heights == FR, step for step" test_fr_heights_lockstep_with_fr;
          case "PR raise reverses min-a neighbours"
            test_pr_heights_reverse_minimum_a_neighbours;
          case "FR raise goes above all neighbours" test_fr_heights_rise_above_all;
          case "both height automata terminate oriented" test_terminates_oriented;
        ];
    ]
