(* The growable union-find behind the fast-maintenance component
   index: random union/find/retire+fresh/dirty interleavings checked
   against a naive relabelling oracle, plus focused units for the
   seniority rule (the senior representative survives every merge —
   the property the next-hop cache relies on) and the dirty/epoch
   bookkeeping of lazy splits. *)

open Linkrev
open Helpers
module U = Union_find

(* {1 Oracle}

   One label per slot, unions merge by full relabelling; per label a
   [(dirty, epoch)] pair maintained by the documented rules (union:
   or / max; retire, mark, clear: epoch + 1).  Retired slots become
   ghosts: they keep their label (so relabelling stays closed) but
   leave the live set — the driver never uses them as operands again,
   and class sizes count live slots only. *)

type oracle = {
  mutable label : int array;
  mutable live : bool array;
  mutable o_len : int;
  dirty : (int, bool) Hashtbl.t; (* label -> *)
  epoch : (int, int) Hashtbl.t;
}

let o_create n =
  {
    label = Array.init n (fun i -> i);
    live = Array.make n true;
    o_len = n;
    dirty = Hashtbl.create 64;
    epoch = Hashtbl.create 64;
  }

let o_dirty o l = Option.value ~default:false (Hashtbl.find_opt o.dirty l)
let o_epoch o l = Option.value ~default:0 (Hashtbl.find_opt o.epoch l)

let o_union o a b =
  let la = o.label.(a) and lb = o.label.(b) in
  if la <> lb then begin
    Hashtbl.replace o.dirty la (o_dirty o la || o_dirty o lb);
    Hashtbl.replace o.epoch la (max (o_epoch o la) (o_epoch o lb));
    Array.iteri (fun i l -> if l = lb then o.label.(i) <- la) o.label
  end

let o_fresh o =
  let s = o.o_len in
  if s >= Array.length o.label then begin
    let grow a fill =
      let b = Array.make (2 * (Array.length a + 1)) fill in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    o.label <- grow o.label 0;
    o.live <- grow o.live false
  end;
  o.label.(s) <- s;
  o.live.(s) <- true;
  o.o_len <- s + 1;
  s

let o_retire o s =
  o.live.(s) <- false;
  let l = o.label.(s) in
  Hashtbl.replace o.epoch l (o_epoch o l + 1)

let o_size o s =
  let l = o.label.(s) in
  let c = ref 0 in
  for i = 0 to o.o_len - 1 do
    if o.live.(i) && o.label.(i) = l then incr c
  done;
  !c

(* {1 Random interleavings} *)

let test_random_vs_oracle () =
  let rand = rng 4242 in
  let n = 64 and ops = 12_000 in
  let u = U.create n in
  let o = o_create n in
  (* Live slots, index-addressable for uniform picking. *)
  let slots = Array.make (n + ops + 1) 0 in
  for i = 0 to n - 1 do
    slots.(i) <- i
  done;
  let live = ref n in
  let pick () = slots.(Random.State.int rand !live) in
  let check_pair what a b =
    check_bool
      (Printf.sprintf "%s: same %d %d" what a b)
      (o.label.(a) = o.label.(b))
      (U.same u a b)
  in
  let check_slot what s =
    check_int (Printf.sprintf "%s: size of %d" what s) (o_size o s)
      (U.size u s);
    let l = o.label.(s) and r = U.find u s in
    check_bool (Printf.sprintf "%s: dirty of %d" what s) (o_dirty o l)
      (U.dirty u r);
    check_int (Printf.sprintf "%s: epoch of %d" what s) (o_epoch o l)
      (U.epoch u r)
  in
  for k = 1 to ops do
    let what = Printf.sprintf "op %d" k in
    let roll = Random.State.int rand 100 in
    if roll < 40 then begin
      (* union, with the seniority rule checked from observable state:
         the surviving representative must be the root of higher rank,
         ties to the lower slot. *)
      let a = pick () and b = pick () in
      let ra = U.find u a and rb = U.find u b in
      let expected =
        if ra = rb then ra
        else
          let ka = U.rank u ra and kb = U.rank u rb in
          if ka > kb then ra
          else if kb > ka then rb
          else min ra rb
      in
      let got = U.union u a b in
      check_int (what ^ ": senior representative survives") expected got;
      check_int (what ^ ": find resolves to the survivor") expected
        (U.find u a);
      o_union o a b
    end
    else if roll < 60 then begin
      (* split step: retire one member to a ghost, give the element a
         fresh identity (as Fast_maintenance does when re-identifying
         a detached side). *)
      if !live > 1 then begin
        let i = Random.State.int rand !live in
        let s = slots.(i) in
        let old_root = U.find u s in
        U.retire u s;
        o_retire o s;
        let f = U.fresh u ~rank:(Random.State.int rand 1000) in
        let fo = o_fresh o in
        check_int (what ^ ": fresh slot ids in lockstep") fo f;
        check_int (what ^ ": fresh singleton size") 1 (U.size u f);
        check_int (what ^ ": fresh epoch is 0") 0 (U.epoch u f);
        check_bool (what ^ ": fresh is clean") false (U.dirty u f);
        (* Ghosts keep forwarding: retiring never re-roots, so the
           retired slot still resolves into its old class. *)
        check_int (what ^ ": ghost still finds its old class") old_root
          (U.find u s);
        slots.(i) <- f
      end
    end
    else if roll < 70 then begin
      let s = pick () in
      U.mark_dirty u s;
      let l = o.label.(s) in
      Hashtbl.replace o.dirty l true;
      Hashtbl.replace o.epoch l (o_epoch o l + 1)
    end
    else if roll < 80 then begin
      let s = pick () in
      U.clear_dirty u s;
      let l = o.label.(s) in
      Hashtbl.replace o.dirty l false;
      Hashtbl.replace o.epoch l (o_epoch o l + 1)
    end
    else begin
      (* pure queries keep the path-halving structure moving *)
      ignore (U.find u (pick ()));
      ignore (U.same u (pick ()) (pick ()))
    end;
    (* sampled agreement every op, full sweep periodically *)
    check_pair what (pick ()) (pick ());
    check_slot what (pick ());
    if k mod 1_000 = 0 then
      for i = 0 to !live - 1 do
        check_slot what slots.(i);
        check_pair what slots.(i) slots.((i * 7 + k) mod !live)
      done
  done;
  check_int "arena length matches oracle" o.o_len (U.length u)

(* {1 Seniority units} *)

let test_senior_representative_is_stable () =
  (* The destination-style anchor: slot 0 with a rank above everything
     else.  Whatever merges into its class, the representative never
     moves — exactly the stability the engine's caches key on. *)
  let u = U.create 6 in
  U.set_rank u 0 1_000_000;
  for s = 1 to 5 do
    U.set_rank u s s
  done;
  check_int "first absorb" 0 (U.union u 0 1);
  check_int "junior pair roots at its senior" 3 (U.union u 2 3);
  check_int "absorbing a whole class keeps the anchor" 0 (U.union u 3 0);
  check_int "late singleton too" 0 (U.union u 5 4 |> fun r -> U.union u r 0);
  for s = 0 to 5 do
    check_int (Printf.sprintf "find %d" s) 0 (U.find u s)
  done;
  check_int "size counts every absorbed member" 6 (U.size u 4)

let test_ties_break_to_lower_slot () =
  let u = U.create 4 in
  (* all ranks 0 *)
  check_int "2-3 ties to 2" 2 (U.union u 3 2);
  check_int "0-1 ties to 0" 0 (U.union u 0 1);
  check_int "class-class tie to lower root" 0 (U.union u 3 1)

let test_rank_update_affects_future_unions () =
  let u = U.create 3 in
  U.set_rank u 1 5;
  check_int "1 wins at rank 5" 1 (U.union u 0 1);
  U.set_rank u 2 9;
  check_int "2 wins after its promotion" 2 (U.union u 0 2)

(* {1 Dirty / epoch units} *)

let test_dirty_epoch_lifecycle () =
  let u = U.create 4 in
  check_bool "clean at birth" false (U.dirty u 1);
  check_int "epoch at birth" 0 (U.epoch u 1);
  U.mark_dirty u 1;
  check_bool "marked" true (U.dirty u 1);
  check_int "mark advances the epoch" 1 (U.epoch u 1);
  (* dirtiness and epoch survive a merge: or / max *)
  let r = U.union u 1 2 in
  check_bool "union inherits dirt" true (U.dirty u r);
  check_int "union takes the max epoch" 1 (U.epoch u r);
  U.clear_dirty u 2;
  check_bool "cleared through any member" false (U.dirty u 1);
  check_int "clear advances the epoch" 2 (U.epoch u 1);
  U.retire u 2;
  check_int "retire advances the epoch" 3 (U.epoch u 1);
  check_int "retire drops the live size" 1 (U.size u 1)

let test_ghosts_forward_after_churn () =
  (* Build a chain of unions, retire interior slots, and check the
     survivors still resolve through the ghost-laden tree. *)
  let u = U.create 8 in
  for s = 1 to 7 do
    ignore (U.union u (s - 1) s)
  done;
  let root = U.find u 0 in
  for s = 2 to 5 do
    U.retire u s
  done;
  check_int "live size after retirements" 4 (U.size u root);
  for s = 0 to 7 do
    check_int (Printf.sprintf "slot %d still resolves" s) root (U.find u s)
  done

let () =
  Alcotest.run "union_find"
    [
      suite "oracle"
        [ case "12k random ops vs naive labelling" test_random_vs_oracle ];
      suite "seniority"
        [
          case "senior representative is stable"
            test_senior_representative_is_stable;
          case "ties break to the lower slot" test_ties_break_to_lower_slot;
          case "set_rank affects future unions"
            test_rank_update_affects_future_unions;
        ];
      suite "lazy splits"
        [
          case "dirty/epoch lifecycle" test_dirty_epoch_lifecycle;
          case "ghosts keep forwarding" test_ghosts_forward_after_churn;
        ];
    ]
