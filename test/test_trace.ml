open Lr_graph
open Linkrev
open Helpers
module F = Lr_fast.Fast_engine
module FN = Lr_fast.Fast_new_pr
module Record = Lr_trace.Record
module Replay = Lr_trace.Replay
module Audit = Lr_trace.Audit
module Reader = Lr_trace.Reader
module Writer = Lr_trace.Writer
module Event = Lr_trace.Event

let tmp_trace name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "lr_trace_test_%s_%d.lrt" name (Unix.getpid ()))

let with_trace name f =
  let path = tmp_trace name in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let ok what = function
  | Ok v -> v
  | Error m -> Alcotest.failf "%s: %s" what m

let expect_error what = function
  | Ok _ -> Alcotest.failf "%s: expected a clean Error, got Ok" what
  | Error (_ : string) -> ()

(* An instance where NewPR provably performs a dummy step: node 3 is an
   initial source that becomes a sink after 2's first reversal, so its
   first step has an empty even-parity set. *)
let dummy_heavy () =
  Config.make_exn
    (Digraph.of_directed_edges [ (1, 0); (1, 2); (3, 2) ])
    ~destination:0

(* {1 Round trips} *)

let roundtrip_fast rule config name =
  with_trace name (fun path ->
      let out, stats = Record.fast ~path ~rule config in
      let report = ok "replay" (Replay.file path) in
      check_int "work" out.F.work
        (report.Replay.steps + report.Replay.dummies);
      check_int "edge reversals" out.F.edge_reversals
        report.Replay.edge_reversals;
      check_int "writer events = replayed events" stats.Writer.events
        report.Replay.events;
      check_bool "bytes accounted" true (stats.Writer.bytes = report.Replay.bytes);
      (* cross-engine differential replay on the persistent automaton *)
      let diff = ok "automaton replay" (Replay.against_automaton path) in
      check_int "automaton work" out.F.work diff.Replay.automaton_work;
      check_int "automaton reversals" out.F.edge_reversals
        diff.Replay.automaton_reversals;
      check_bool "final graph fingerprint" true
        (Digraph.fingerprint diff.Replay.final_graph
        = report.Replay.summary.Event.final_fingerprint))

let test_roundtrip_pr_random () =
  for seed = 0 to 9 do
    roundtrip_fast F.Partial (random_config ~seed 20) "pr_random"
  done

let test_roundtrip_fr_random () =
  for seed = 0 to 9 do
    roundtrip_fast F.Full (random_config ~seed 20) "fr_random"
  done

let test_roundtrip_families () =
  List.iter
    (fun (name, config) ->
      roundtrip_fast F.Partial config ("pr_" ^ name);
      roundtrip_fast F.Full config ("fr_" ^ name))
    [
      ("diamond", diamond ());
      ("bad_chain", bad_chain 12);
      ("sawtooth", sawtooth 12);
      ("grid", Config.of_instance (Generators.grid ~rows:3 ~cols:4));
    ]

let roundtrip_newpr config name =
  with_trace name (fun path ->
      let out, _stats = Record.fast_new_pr ~path config in
      let report = ok "replay" (Replay.file path) in
      check_int "work counts dummies" out.FN.work
        (report.Replay.steps + report.Replay.dummies);
      check_int "edge reversals" out.FN.edge_reversals
        report.Replay.edge_reversals;
      let diff = ok "automaton replay" (Replay.against_automaton path) in
      check_int "automaton work" out.FN.work diff.Replay.automaton_work;
      report)

let test_roundtrip_newpr () =
  List.iter
    (fun (name, config) -> ignore (roundtrip_newpr config name))
    [
      ("diamond", diamond ());
      ("sawtooth", sawtooth 12);
      ("random", random_config ~seed:3 18);
    ]

let test_newpr_dummy_steps_recorded () =
  let report = roundtrip_newpr (dummy_heavy ()) "dummy_heavy" in
  check_bool "at least one dummy event" true (report.Replay.dummies > 0)

let test_roundtrip_persistent_recording () =
  (* record a *persistent* OneStepPR run under a random scheduler and
     replay it both ways *)
  for seed = 0 to 4 do
    with_trace "persistent" (fun path ->
        let config = random_config ~seed 14 in
        let out, _stats =
          Record.persistent ~path ~engine:Event.Pr
            ~scheduler:(Lr_automata.Scheduler.random (rng seed))
            config
            (One_step_pr.algo config)
        in
        let report = ok "replay" (Replay.file path) in
        check_int "work" out.Executor.total_node_steps report.Replay.steps;
        check_int "reversals" out.Executor.edge_reversals
          report.Replay.edge_reversals;
        ignore (ok "automaton replay" (Replay.against_automaton path)))
  done

(* {1 Header integrity and fingerprints} *)

let test_fingerprint_digraph_vs_fast () =
  for seed = 0 to 9 do
    let config = random_config ~seed 25 in
    let engine = F.of_config config in
    check_bool "initial fingerprints agree" true
      (Digraph.fingerprint config.Config.initial = F.fingerprint engine);
    ignore (F.run F.Partial engine);
    check_bool "final fingerprints agree" true
      (Digraph.fingerprint (F.to_digraph engine) = F.fingerprint engine)
  done

let test_header_roundtrip () =
  with_trace "header" (fun path ->
      let config = random_config ~seed:7 15 in
      ignore (Record.fast ~seed:7 ~path ~rule:F.Partial config);
      let r = ok "open" (Reader.open_file path) in
      let h = Reader.header r in
      Reader.close r;
      check_int "n" (Digraph.num_nodes config.Config.initial) h.Event.n;
      check_int "destination" config.Config.destination h.Event.destination;
      check_int "seed" 7 h.Event.seed;
      check_bool "engine" true (h.Event.engine = Event.Pr);
      let rebuilt = ok "config_of_header" (Event.config_of_header h) in
      check_bool "same initial graph" true
        (Digraph.equal rebuilt.Config.initial config.Config.initial))

(* {1 Audit} *)

let test_audit_clean () =
  List.iter
    (fun (name, record) ->
      with_trace name (fun path ->
          record path;
          let report = ok "audit" (Audit.run path) in
          check_bool "no violations" true (Audit.clean report);
          check_int "all nodes in histogram"
            report.Audit.header.Event.n
            (List.fold_left (fun a (_, c) -> a + c) 0 report.Audit.histogram);
          (* strided audit stays clean and checks fewer states *)
          let strided = ok "strided audit" (Audit.run ~stride:5 path) in
          check_bool "strided clean" true (Audit.clean strided);
          check_bool "strided checks fewer states" true
            (strided.Audit.checked_states <= report.Audit.checked_states)))
    [
      ( "audit_pr",
        fun path ->
          ignore (Record.fast ~path ~rule:F.Partial (random_config ~seed:11 16))
      );
      ( "audit_fr",
        fun path ->
          ignore (Record.fast ~path ~rule:F.Full (bad_chain 10)) );
      ( "audit_newpr",
        fun path -> ignore (Record.fast_new_pr ~path (sawtooth 10)) );
    ]

let test_audit_scan_counts () =
  with_trace "scan" (fun path ->
      let out, stats = Record.fast_new_pr ~path (sawtooth 10) in
      let s = ok "scan" (Audit.scan path) in
      check_int "events" stats.Writer.events s.Audit.scan_events;
      check_int "work" out.FN.work (s.Audit.scan_steps + s.Audit.scan_dummies);
      check_int "reversals" out.FN.edge_reversals s.Audit.scan_reversed_edges)

(* {1 Damaged files fail cleanly} *)

let read_all path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = really_input_string ic len in
  close_in ic;
  b

let write_all path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_truncated_files_fail_cleanly () =
  with_trace "trunc_src" (fun src ->
      ignore (Record.fast ~path:src ~rule:F.Partial (diamond ()));
      let full = read_all src in
      with_trace "trunc" (fun path ->
          (* every strict prefix must be rejected with Error, never an
             exception *)
          for len = 0 to String.length full - 1 do
            write_all path (String.sub full 0 len);
            expect_error
              (Printf.sprintf "prefix of %d bytes" len)
              (Replay.file path)
          done))

let test_corrupted_bytes_fail_cleanly () =
  with_trace "corrupt_src" (fun src ->
      ignore (Record.fast ~path:src ~rule:F.Partial (bad_chain 8));
      let full = read_all src in
      let len = String.length full in
      with_trace "corrupt" (fun path ->
          List.iter
            (fun pos ->
              let b = Bytes.of_string full in
              Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
              write_all path (Bytes.to_string b);
              expect_error (Printf.sprintf "flipped byte %d" pos)
                (Replay.file path))
            [ 0; 3; 4; 5; len - 1 ]))

let test_abort_leaves_truncated_file () =
  with_trace "abort" (fun path ->
      let config = diamond () in
      let writer =
        Writer.create path (Event.header_of_config Event.Pr config)
      in
      Writer.step writer ~node:3 ~slots:[| 0; 1 |] ~len:2;
      Writer.abort writer;
      expect_error "aborted trace" (Replay.file path))

let test_trailing_bytes_rejected () =
  with_trace "trail_src" (fun src ->
      ignore (Record.fast ~path:src ~rule:F.Partial (diamond ()));
      with_trace "trail" (fun path ->
          write_all path (read_all src ^ "\x00");
          expect_error "trailing byte" (Replay.file path)))

let test_missing_file () =
  expect_error "missing file" (Replay.file "/nonexistent/definitely_not_here.lrt")

(* {1 Tampered-event detection} *)

let test_tampered_step_detected () =
  (* record on the fast engine, then replay a trace whose header claims
     a different engine: PR and FR reversal sets differ on this
     instance, so replay must flag the first mismatching step *)
  with_trace "tamper" (fun path ->
      (* on a bad chain PR does n-1 steps vs FR's triangular number, so
         the executions genuinely diverge (on e.g. sawtooth they don't:
         every PR step there reverses its full neighbourhood) *)
      let config = bad_chain 12 in
      ignore (Record.fast ~path ~rule:F.Partial config);
      let full = read_all path in
      let b = Bytes.of_string full in
      (* engine tag byte sits right after "LRT1" + version varint *)
      check_int "pr tag where expected" (Event.engine_tag Event.Pr)
        (Char.code (Bytes.get b 5));
      Bytes.set b 5 (Char.chr (Event.engine_tag Event.Fr));
      with_trace "tamper_fr" (fun path' ->
          write_all path' (Bytes.to_string b);
          expect_error "engine swap detected" (Replay.file path')))

let () =
  Alcotest.run "trace"
    [
      suite "roundtrip"
        [
          case "PR random DAGs record/replay/differential"
            test_roundtrip_pr_random;
          case "FR random DAGs record/replay/differential"
            test_roundtrip_fr_random;
          case "named families" test_roundtrip_families;
          case "NewPR traces replay on the automaton" test_roundtrip_newpr;
          case "NewPR dummy steps recorded" test_newpr_dummy_steps_recorded;
          case "persistent OneStepPR recording" test_roundtrip_persistent_recording;
        ];
      suite "integrity"
        [
          case "Digraph and Fast_graph fingerprints agree"
            test_fingerprint_digraph_vs_fast;
          case "header roundtrip" test_header_roundtrip;
        ];
      suite "audit"
        [
          case "clean traces audit clean" test_audit_clean;
          case "scan counts events" test_audit_scan_counts;
        ];
      suite "damage"
        [
          case "every truncation fails cleanly" test_truncated_files_fail_cleanly;
          case "bit flips fail cleanly" test_corrupted_bytes_fail_cleanly;
          case "aborted recordings are truncated" test_abort_leaves_truncated_file;
          case "trailing bytes rejected" test_trailing_bytes_rejected;
          case "missing file is an Error" test_missing_file;
          case "engine swap detected" test_tampered_step_detected;
        ];
    ]
