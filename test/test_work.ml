open Lr_graph
open Helpers
module W = Lr_analysis.Work

let test_run_one_terminates () =
  let config = bad_chain 8 in
  List.iter
    (fun algo ->
      let out = W.run_one algo config in
      check_bool (W.algorithm_name algo ^ " quiescent") true
        out.Linkrev.Executor.quiescent;
      check_bool (W.algorithm_name algo ^ " oriented") true
        out.Linkrev.Executor.destination_oriented)
    [ W.FR; W.PR; W.NewPR; W.FR_heights; W.PR_heights ]

let test_sweep_rows () =
  let rows =
    W.sweep W.PR ~family:Generators.bad_chain ~sizes:[ 4; 8; 16 ] ()
  in
  check_int "three rows" 3 (List.length rows);
  List.iter
    (fun r ->
      check_int "bad = n-1" (r.W.n - 1) r.W.bad;
      check_bool "ok" true (r.W.quiescent && r.W.oriented))
    rows

let test_fr_quadratic_on_bad_chain () =
  let rows =
    W.sweep W.FR ~family:Generators.bad_chain ~sizes:[ 8; 16; 32; 64 ] ()
  in
  let e = W.exponent rows in
  check_bool (Printf.sprintf "exponent ~2 (got %.2f)" e) true
    (e > 1.8 && e < 2.2)

let test_pr_linear_on_bad_chain () =
  let rows =
    W.sweep W.PR ~family:Generators.bad_chain ~sizes:[ 8; 16; 32; 64 ] ()
  in
  let e = W.exponent rows in
  check_bool (Printf.sprintf "exponent ~1 (got %.2f)" e) true
    (e > 0.8 && e < 1.2)

let test_pr_quadratic_on_sawtooth () =
  let rows =
    W.sweep W.PR ~family:Generators.sawtooth ~sizes:[ 8; 16; 32; 64 ] ()
  in
  let e = W.exponent rows in
  check_bool (Printf.sprintf "exponent ~2 (got %.2f)" e) true
    (e > 1.8 && e < 2.2)

let test_heights_match_direct_work () =
  (* FR and FR-heights (resp. PR and PR-heights) do identical work. *)
  List.iter
    (fun n ->
      let w algo =
        match W.sweep algo ~family:Generators.sawtooth ~sizes:[ n ] () with
        | [ r ] -> r.W.work
        | _ -> Alcotest.fail "one row"
      in
      check_int "PR = PR-heights" (w W.PR) (w W.PR_heights);
      check_int "FR = FR-heights" (w W.FR) (w W.FR_heights))
    [ 6; 10; 14 ]

let test_rows_to_table () =
  let rows = W.sweep W.PR ~family:Generators.bad_chain ~sizes:[ 4 ] () in
  let t = W.rows_to_table W.PR rows in
  check_bool "renders" true (String.length (Lr_analysis.Table.render t) > 0)

let test_newpr_work_at_least_pr () =
  List.iter
    (fun n ->
      let w algo =
        match W.sweep algo ~family:Generators.sawtooth ~sizes:[ n ] () with
        | [ r ] -> r.W.work
        | _ -> Alcotest.fail "one row"
      in
      check_bool "NewPR >= PR (dummy steps)" true (w W.NewPR >= w W.PR))
    [ 6; 10; 14 ]

let () =
  Alcotest.run "work"
    [
      suite "work"
        [
          case "every algorithm terminates oriented" test_run_one_terminates;
          case "sweep produces rows" test_sweep_rows;
          case "FR is quadratic on the bad chain" test_fr_quadratic_on_bad_chain;
          case "PR is linear on the bad chain" test_pr_linear_on_bad_chain;
          case "PR is quadratic on the sawtooth" test_pr_quadratic_on_sawtooth;
          case "height variants match exactly" test_heights_match_direct_work;
          case "NewPR pays dummy-step overhead" test_newpr_work_at_least_pr;
          case "rows_to_table" test_rows_to_table;
        ];
    ]
