open Lr_graph
open Helpers
module P = Properties

let test_degree_stats () =
  let skel = Undirected.of_edges [ (0, 1); (1, 2); (1, 3) ] in
  let s = P.degree_stats skel in
  check_int "min" 1 s.P.min_degree;
  check_int "max" 3 s.P.max_degree;
  Alcotest.(check (float 1e-9)) "mean" 1.5 s.P.mean_degree

let test_degree_stats_empty () =
  let s = P.degree_stats Undirected.empty in
  check_int "min" 0 s.P.min_degree;
  check_int "max" 0 s.P.max_degree

let test_density () =
  let complete4 =
    Undirected.of_edges [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]
  in
  Alcotest.(check (float 1e-9)) "complete" 1.0 (P.density complete4);
  let sparse = Undirected.of_edges [ (0, 1); (2, 3) ] in
  Alcotest.(check (float 1e-9)) "sparse" (2.0 /. 6.0) (P.density sparse);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (P.density Undirected.empty)

let test_is_tree () =
  check_bool "path is a tree" true
    (P.is_tree (Undirected.of_edges [ (0, 1); (1, 2) ]));
  check_bool "cycle is not" false
    (P.is_tree (Undirected.of_edges [ (0, 1); (1, 2); (2, 0) ]));
  check_bool "forest is not" false
    (P.is_tree (Undirected.of_edges [ (0, 1); (2, 3) ]));
  check_bool "random spanning trees" true
    (P.is_tree
       (Digraph.skeleton
          (Generators.random_connected_dag (rng 3) ~n:10 ~extra_edges:0)
            .Generators.graph))

let test_sink_source_counts () =
  let g = Digraph.of_directed_edges [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  check_int "one sink" 1 (P.sink_count g);
  check_int "one source" 1 (P.source_count g);
  let saw = (Generators.sawtooth 9).Generators.graph in
  check_int "sawtooth sinks" 4 (P.sink_count saw)

let test_profile_string () =
  let g = (Generators.bad_chain 5).Generators.graph in
  Alcotest.(check string) "profile" "5 nodes, 4 edges, 1 sinks, 1 sources, 4 bad"
    (P.orientation_profile g 0)

let () =
  Alcotest.run "graph_properties"
    [
      suite "graph_properties"
        [
          case "degree stats" test_degree_stats;
          case "degree stats of empty graph" test_degree_stats_empty;
          case "density" test_density;
          case "tree recognition" test_is_tree;
          case "sink/source counts" test_sink_source_counts;
          case "profile string" test_profile_string;
        ];
    ]
