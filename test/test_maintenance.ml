open Lr_graph
open Linkrev
open Helpers
module M = Lr_routing.Maintenance

let test_create_stabilizes () =
  for seed = 0 to 4 do
    let config = random_config ~seed 14 in
    List.iter
      (fun rule ->
        let m = M.create rule config in
        check_bool "oriented after create" true (M.is_destination_oriented m);
        check_bool "acyclic" true (Digraph.is_acyclic (M.graph m)))
      [ M.Partial_reversal; M.Full_reversal ]
  done

let test_routes_exist () =
  let config = random_config ~seed:3 16 in
  let m = M.create M.Partial_reversal config in
  Node.Set.iter
    (fun u ->
      match M.route m u with
      | None -> Alcotest.failf "no route from %d" u
      | Some path ->
          (* route ends at the destination and follows directed edges *)
          (match List.rev path with
          | last :: _ -> check_int "ends at destination" (M.destination m) last
          | [] -> Alcotest.fail "empty route");
          let rec edges_ok = function
            | a :: (b :: _ as rest) ->
                check_bool "directed hop" true
                  (Digraph.dir (M.graph m) a b = Digraph.Out);
                edges_ok rest
            | _ -> ()
          in
          edges_ok path)
    (Config.nodes config)

let test_fail_link_repairs () =
  (* Fail every edge of a well-connected graph one at a time; each
     failure either stabilizes or honestly reports a partition. *)
  let config = random_config ~extra_edges:14 ~seed:5 12 in
  List.iter
    (fun (u, v) ->
      let m = M.create M.Partial_reversal config in
      match M.fail_link m u v with
      | M.Stabilized _ ->
          check_bool "oriented after repair" true (M.is_destination_oriented m);
          check_bool "acyclic after repair" true (Digraph.is_acyclic (M.graph m))
      | M.Partitioned lost ->
          check_bool "lost nodes really cut" true
            (Node.Set.for_all
               (fun w -> not (Digraph.has_path (M.graph m) w (M.destination m)))
               lost))
    (Digraph.directed_edges config.Config.initial)

let test_fail_link_absent_rejected () =
  let config = diamond () in
  let m = M.create M.Partial_reversal config in
  check_bool "raises" true
    (try ignore (M.fail_link m 1 2); false with Invalid_argument _ -> true)

let test_partition_detected () =
  (* A path cut in the middle partitions the far side. *)
  let config = bad_chain 6 in
  let m = M.create M.Partial_reversal config in
  match M.fail_link m 2 3 with
  | M.Partitioned lost ->
      check_node_set "nodes 3..5 lost" (Node.Set.of_list [ 3; 4; 5 ]) lost;
      check_bool "destination side still oriented" true
        (M.is_destination_oriented m)
  | M.Stabilized _ -> Alcotest.fail "expected a partition"

let test_add_link_reconnects () =
  let config = bad_chain 6 in
  let m = M.create M.Partial_reversal config in
  (match M.fail_link m 2 3 with M.Partitioned _ -> () | _ -> Alcotest.fail "cut");
  M.add_link m 0 3;
  check_bool "route restored for 4" true (M.route m 4 <> None);
  check_bool "oriented again" true (M.is_destination_oriented m);
  check_bool "acyclic" true (Digraph.is_acyclic (M.graph m))

let test_add_link_duplicate_rejected () =
  let config = diamond () in
  let m = M.create M.Partial_reversal config in
  check_bool "raises" true
    (try M.add_link m 0 1; false with Invalid_argument _ -> true)

let test_fail_node_crash () =
  let config = random_config ~extra_edges:16 ~seed:7 12 in
  let victim =
    Node.Set.max_elt (Node.Set.remove config.Config.destination (Config.nodes config))
  in
  let m = M.create M.Partial_reversal config in
  (match M.fail_node m victim with
  | M.Stabilized _ -> check_bool "oriented" true (M.is_destination_oriented m)
  | M.Partitioned lost -> check_bool "victim lost" true (Node.Set.mem victim lost));
  check_bool "cannot fail the destination" true
    (try ignore (M.fail_node m (M.destination m)); false
     with Invalid_argument _ -> true)

let test_work_accumulates () =
  let config = bad_chain 8 in
  let m = M.create M.Partial_reversal config in
  let w0 = M.total_work m in
  check_bool "initial stabilization did work" true (w0 > 0);
  M.add_link m 0 7;
  check_bool "work monotone" true (M.total_work m >= w0)

let test_churn_sequence () =
  (* A long random churn of fail/add keeps the structure sound. *)
  let config = random_config ~extra_edges:20 ~seed:11 15 in
  let m = M.create M.Partial_reversal config in
  let r = rng 42 in
  for _ = 1 to 40 do
    let g = M.graph m in
    let edges = Digraph.directed_edges g in
    if Random.State.bool r && edges <> [] then begin
      let u, v = List.nth edges (Random.State.int r (List.length edges)) in
      ignore (M.fail_link m u v)
    end
    else begin
      let nodes = Node.Set.elements (Digraph.nodes g) in
      let pick () = List.nth nodes (Random.State.int r (List.length nodes)) in
      let u = pick () and v = pick () in
      if (not (Node.equal u v)) && not (Digraph.mem_edge g u v) then
        M.add_link m u v
    end;
    check_bool "acyclic through churn" true (Digraph.is_acyclic (M.graph m));
    check_bool "dest side oriented through churn" true
      (M.is_destination_oriented m)
  done

(* The serving-layer contract, exercised hard: over hundreds of link
   events per seed the structure must stay acyclic and the
   destination's side oriented, and every [Partitioned] verdict must be
   honest — the reported nodes truly have no directed path back. *)
let test_long_churn_stays_sound () =
  List.iter
    (fun rule ->
      List.iter
        (fun seed ->
          let config = random_config ~extra_edges:25 ~seed 18 in
          let m = M.create rule config in
          let dest = M.destination m in
          let r = rng (1000 + seed) in
          let events = ref 0 in
          while !events < 200 do
            let g = M.graph m in
            let changed =
              if Random.State.bool r then begin
                match Digraph.directed_edges g with
                | [] -> false
                | edges ->
                    let u, v =
                      List.nth edges (Random.State.int r (List.length edges))
                    in
                    (match M.fail_link m u v with
                    | M.Stabilized _ -> ()
                    | M.Partitioned lost ->
                        check_bool "partition verdict is honest" true
                          (Node.Set.for_all
                             (fun n -> not (Digraph.has_path (M.graph m) n dest))
                             lost));
                    true
              end
              else begin
                let nodes = Node.Set.elements (Digraph.nodes g) in
                let pick () = List.nth nodes (Random.State.int r (List.length nodes)) in
                let u = pick () and v = pick () in
                if (not (Node.equal u v)) && not (Digraph.mem_edge g u v) then begin
                  M.add_link m u v;
                  true
                end
                else false
              end
            in
            if changed then begin
              incr events;
              check_bool "acyclic under long churn" true
                (Digraph.is_acyclic (M.graph m));
              check_bool "destination side oriented under long churn" true
                (M.is_destination_oriented m)
            end
          done)
        [ 1; 2; 3 ])
    [ M.Partial_reversal; M.Full_reversal ]

let () =
  Alcotest.run "maintenance"
    [
      suite "maintenance"
        [
          case "create stabilizes" test_create_stabilizes;
          case "routes exist and follow edges" test_routes_exist;
          case "link failures repaired" test_fail_link_repairs;
          case "failing absent links rejected" test_fail_link_absent_rejected;
          case "partitions detected honestly" test_partition_detected;
          case "add_link reconnects partitions" test_add_link_reconnects;
          case "duplicate links rejected" test_add_link_duplicate_rejected;
          case "node crashes" test_fail_node_crash;
          case "work accumulates" test_work_accumulates;
          case "random churn stays sound" test_churn_sequence;
          case "long seeded churn stays sound (200 events x 3 seeds x 2 rules)"
            test_long_churn_stays_sound;
        ];
    ]
