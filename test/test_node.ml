open Lr_graph
open Helpers

let test_compare () =
  check_bool "lt" true (Node.compare 1 2 < 0);
  check_bool "eq" true (Node.compare 5 5 = 0);
  check_bool "gt" true (Node.compare 9 2 > 0)

let test_equal () =
  check_bool "equal" true (Node.equal 3 3);
  check_bool "not equal" false (Node.equal 3 4)

let test_to_string () =
  Alcotest.(check string) "to_string" "42" (Node.to_string 42)

let test_set_of_range () =
  check_int "cardinal" 5 (Node.Set.cardinal (Node.Set.of_range 2 6));
  check_bool "mem lo" true (Node.Set.mem 2 (Node.Set.of_range 2 6));
  check_bool "mem hi" true (Node.Set.mem 6 (Node.Set.of_range 2 6));
  check_bool "not below" false (Node.Set.mem 1 (Node.Set.of_range 2 6));
  check_bool "empty when hi < lo" true (Node.Set.is_empty (Node.Set.of_range 4 3))

let test_set_pp () =
  let s = Format.asprintf "%a" Node.Set.pp (Node.Set.of_list [ 3; 1; 2 ]) in
  Alcotest.(check string) "sorted render" "{1, 2, 3}" s

let test_map_find_or () =
  let m = Node.Map.add 1 "a" Node.Map.empty in
  Alcotest.(check string) "bound" "a" (Node.Map.find_or ~default:"z" 1 m);
  Alcotest.(check string) "unbound" "z" (Node.Map.find_or ~default:"z" 2 m)

let test_map_pp () =
  let m = Node.Map.add 2 9 (Node.Map.add 1 7 Node.Map.empty) in
  let s = Format.asprintf "%a" (Node.Map.pp Format.pp_print_int) m in
  Alcotest.(check string) "render" "{1 -> 7; 2 -> 9}" s

let () =
  Alcotest.run "node"
    [
      suite "node"
        [
          case "compare orders integers" test_compare;
          case "equal" test_equal;
          case "to_string" test_to_string;
          case "Set.of_range" test_set_of_range;
          case "Set.pp renders sorted" test_set_pp;
          case "Map.find_or" test_map_find_or;
          case "Map.pp" test_map_pp;
        ];
    ]
