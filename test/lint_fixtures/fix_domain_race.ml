(* Deliberate domain-safety violations: a seeded race on shared
   mutable state reached through a helper function (L5) and an Atomic
   that never crosses a domain boundary (L8); test_lint asserts the
   exact lines. *)

type tally = { mutable hits : int }

let tally = { hits = 0 }
let owned = { hits = 0 }
let lonely = Atomic.make 0
let record i = tally.hits <- tally.hits + i
let bump_lonely () = Atomic.incr lonely

(* lr:owner fixture: exactly one writer by construction — this helper
   must stay quiet while [record] above fires. *)
let record_owned i = owned.hits <- owned.hits + i

let race n =
  Lr_parallel.Pool.map_range ~jobs:2 n (fun i ->
      record i;
      record_owned i;
      i)
