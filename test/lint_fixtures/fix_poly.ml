(* Deliberate L1 violations; test_lint asserts the exact lines. *)

type color = Red | Green | Blue

let same_color (a : color) b = a = b
let rank (c : color) = compare c Green
let has (c : color) cs = List.mem c cs
let hash_color (c : color) = Hashtbl.hash c
let max_color (a : color) b = max a b

(* Fine: immediate/primitive types are exempt. *)
let same_int (a : int) b = a = b
let same_string (a : string) b = a = b
let same_pair (a : int * bool) b = compare a b = 0
let has_three = List.mem 3 [ 1; 2; 3 ]

(* Fine: a bare alias is not an application. *)
let default_compare : color -> color -> int = compare
