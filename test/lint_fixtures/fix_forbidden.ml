(* Deliberate L4 violations; test_lint asserts the exact lines. *)

let announce x =
  print_endline "starting";
  Printf.printf "x = %d\n" x

let coerce (x : int) : bool = Obj.magic x
let bail () = exit 2
