val announce : int -> unit
val coerce : int -> bool
val bail : unit -> 'a
