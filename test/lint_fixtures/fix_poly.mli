type color = Red | Green | Blue

val same_color : color -> color -> bool
val rank : color -> int
val has : color -> color list -> bool
val hash_color : color -> int
val max_color : color -> color -> color
val same_int : int -> int -> bool
val same_string : string -> string -> bool
val same_pair : int * bool -> int * bool -> bool
val has_three : bool
val default_compare : color -> color -> int
