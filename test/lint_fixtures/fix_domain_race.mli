(* Seeded L5/L8 violations; see test_lint.ml. *)

type tally = { mutable hits : int }

val tally : tally
val owned : tally
val lonely : int Atomic.t
val record : int -> unit
val bump_lonely : unit -> unit
val record_owned : int -> unit
val race : int -> int array
