type cell = { mutable value : int }

val counters : (string, int) Hashtbl.t
val total : int ref
val shared : cell
val allowed_cache : int ref

module Inner : sig
  val buffer : Buffer.t
end

val limits : int list
val run_parallel : int -> int array
