(* Seeded L6/L7 violations; see test_lint.ml. *)

val boom : unit -> unit
val nap : unit -> unit
val spin : Lr_parallel.Pool.Persistent.t -> unit
val careful : Lr_parallel.Pool.Persistent.t -> unit
