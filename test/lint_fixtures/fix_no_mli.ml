(* Deliberate L3 violation: this module has no .mli on purpose. *)

let answer = 42
