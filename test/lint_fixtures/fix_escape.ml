(* Deliberate resident-loop violations: a loop body that blocks (L6)
   and raises with no handler (L7), next to a sibling loop that
   handles the same raise and must stay quiet; test_lint asserts the
   exact lines. *)

let boom () = failwith "escape hatch"
let nap () = Unix.sleepf 0.001

let spin pool =
  Lr_parallel.Pool.Persistent.launch pool 1 (fun _w ->
      nap ();
      boom ())

let careful pool =
  Lr_parallel.Pool.Persistent.launch pool 1 (fun _w ->
      try boom () with Failure _ -> ())
