(* Deliberate L2 violations: toplevel mutable state in a unit that
   launches Pool-parallel work; test_lint asserts the exact lines. *)

let counters : (string, int) Hashtbl.t = Hashtbl.create 8
let total = ref 0

type cell = { mutable value : int }

let shared = { value = 0 }
let allowed_cache = ref 0

module Inner = struct
  let buffer = Buffer.create 16
end

(* Fine: immutable toplevel state. *)
let limits = [ 1; 2; 3 ]

let run_parallel n =
  Lr_parallel.Pool.map_range ~jobs:2 n (fun i ->
      total := !total + i;
      Buffer.add_char Inner.buffer 'x';
      shared.value <- shared.value + i;
      i)
