(* Property-based tests (qcheck): the paper's invariants and the
   cross-formulation equivalences over randomly generated instances and
   schedules. *)

open Lr_graph
open Linkrev
module A = Lr_automata
module Q = QCheck

(* Generator for (config, seed): a random connected DAG instance plus a
   scheduler seed.  Shrinking is not very meaningful here, so sizes stay
   small enough to diagnose by hand. *)
let gen_instance =
  Q.Gen.(
    let* n = int_range 2 14 in
    let* extra = int_range 0 (n * (n - 1) / 4) in
    let* graph_seed = int_range 0 1_000_000 in
    let* sched_seed = int_range 0 1_000_000 in
    return (n, extra, graph_seed, sched_seed))

let arb_instance =
  Q.make
    ~print:(fun (n, extra, gs, ss) ->
      Printf.sprintf "n=%d extra=%d graph_seed=%d sched_seed=%d" n extra gs ss)
    gen_instance

let config_of (n, extra, graph_seed, _) =
  Config.of_instance
    (Generators.random_connected_dag
       (Random.State.make [| 0xfeed; graph_seed |])
       ~n ~extra_edges:extra)

let sched_of (_, _, _, sched_seed) =
  A.Scheduler.random (Random.State.make [| 0xcafe; sched_seed |])

let count = 150

let prop name f = Q.Test.make ~count ~name arb_instance f

(* 1. Acyclicity of every automaton along random executions. *)
let acyclicity_props =
  [
    prop "PR states are acyclic (Thm 5.5)" (fun inst ->
        let config = config_of inst in
        let exec =
          A.Execution.run ~scheduler:(sched_of inst)
            (Pr.automaton ~mode:Pr.Singletons_and_max config)
        in
        List.for_all
          (fun (s : Pr.state) -> Digraph.is_acyclic s.Pr.graph)
          (A.Execution.states exec));
    prop "NewPR states are acyclic (Thm 4.3)" (fun inst ->
        let config = config_of inst in
        let exec =
          A.Execution.run ~scheduler:(sched_of inst) (New_pr.automaton config)
        in
        List.for_all
          (fun (s : New_pr.state) -> Digraph.is_acyclic s.New_pr.graph)
          (A.Execution.states exec));
    prop "FR states are acyclic" (fun inst ->
        let config = config_of inst in
        let exec =
          A.Execution.run ~scheduler:(sched_of inst)
            (Full_reversal.automaton config)
        in
        List.for_all
          (fun (s : Full_reversal.state) ->
            Digraph.is_acyclic s.Full_reversal.graph)
          (A.Execution.states exec));
  ]

(* 2. The paper's invariants as properties. *)
let invariant_props =
  [
    prop "Invariants 3.1/3.2 + corollaries hold along PR" (fun inst ->
        let config = config_of inst in
        let exec =
          A.Execution.run ~scheduler:(sched_of inst)
            (Pr.automaton ~mode:Pr.Singletons_and_max config)
        in
        A.Invariant.holds_on (Invariants.pr_all config) exec);
    prop "Invariants 4.1/4.2 hold along NewPR" (fun inst ->
        let config = config_of inst in
        let exec =
          A.Execution.run ~scheduler:(sched_of inst) (New_pr.automaton config)
        in
        A.Invariant.holds_on (Invariants.newpr_all config) exec);
  ]

(* 3. Termination + destination orientation. *)
let termination_props =
  [
    prop "PR terminates destination-oriented" (fun inst ->
        let config = config_of inst in
        let out =
          Executor.run ~scheduler:(sched_of inst)
            ~destination:config.Config.destination
            (Pr.algo ~mode:Pr.Singletons config)
        in
        out.Executor.quiescent && out.Executor.destination_oriented);
    prop "NewPR terminates destination-oriented" (fun inst ->
        let config = config_of inst in
        let out =
          Executor.run ~scheduler:(sched_of inst)
            ~destination:config.Config.destination (New_pr.algo config)
        in
        out.Executor.quiescent && out.Executor.destination_oriented);
    prop "work is schedule independent (PR)" (fun inst ->
        let config = config_of inst in
        let run sched =
          (Executor.run ~scheduler:sched
             ~destination:config.Config.destination
             (Pr.algo ~mode:Pr.Singletons config))
            .Executor.node_steps
        in
        Node.Map.equal Int.equal
          (run (sched_of inst))
          (run (A.Scheduler.first ())));
  ]

(* 4. Simulation relations. *)
let simulation_props =
  [
    prop "R' checks along random executions" (fun inst ->
        let config = config_of inst in
        Result.is_ok
          (Simulation_rel.check_r_prime ~scheduler:(sched_of inst) config));
    prop "R checks along random executions" (fun inst ->
        let config = config_of inst in
        Result.is_ok (Simulation_rel.check_r ~scheduler:(sched_of inst) config));
    prop "reverse direction checks along random executions" (fun inst ->
        let config = config_of inst in
        Result.is_ok
          (Simulation_rel.check_r_reverse ~scheduler:(sched_of inst) config));
  ]

(* 5. Cross-formulation equivalences. *)
let equivalence_props =
  [
    prop "PR-heights == list PR under any schedule" (fun inst ->
        let config = config_of inst in
        let dest = config.Config.destination in
        let rng = Random.State.make [| 0xd00d; match inst with _, _, _, s -> s |] in
        let rec lockstep (s_l : Pr.state) (s_h : Heights.pr_state) fuel =
          Digraph.equal s_l.Pr.graph s_h.Heights.pgraph
          && (fuel = 0
             ||
             let sinks = Node.Set.remove dest (Digraph.sinks s_l.Pr.graph) in
             match Node.Set.elements sinks with
             | [] -> true
             | sinks ->
                 let u = List.nth sinks (Random.State.int rng (List.length sinks)) in
                 lockstep
                   (Pr.apply config s_l (Node.Set.singleton u))
                   (Heights.pr_apply config s_h u)
                   (fuel - 1))
        in
        lockstep (Pr.initial config) (Heights.pr_initial config) 2000);
    prop "BLL Zero_out == PR under any schedule" (fun inst ->
        let config = config_of inst in
        let dest = config.Config.destination in
        let rec lockstep (s_pr : Pr.state) (s_bll : Bll.state) fuel =
          Digraph.equal s_pr.Pr.graph s_bll.Bll.graph
          && (fuel = 0
             ||
             let sinks = Node.Set.remove dest (Digraph.sinks s_pr.Pr.graph) in
             match Node.Set.min_elt_opt sinks with
             | None -> true
             | Some u ->
                 lockstep
                   (Pr.apply config s_pr (Node.Set.singleton u))
                   (Bll.apply Bll.Zero_out config s_bll u)
                   (fuel - 1))
        in
        lockstep (Pr.initial config) (Bll.initial config) 2000);
    prop "quiescent graph identical across PR formulations" (fun inst ->
        let config = config_of inst in
        let final algo =
          (Executor.run ~scheduler:(sched_of inst)
             ~destination:config.Config.destination algo)
            .Executor.final_graph
        in
        let g1 = final (Pr.algo ~mode:Pr.Singletons config) in
        let g2 = final (New_pr.algo config) in
        let g3 = final (Heights.pr_algo config) in
        Digraph.equal g1 g2 && Digraph.equal g2 g3);
  ]

(* 6. Structural graph properties. *)
let graph_props =
  [
    prop "reversals preserve the skeleton" (fun inst ->
        let config = config_of inst in
        let exec =
          A.Execution.run ~scheduler:(sched_of inst)
            (Pr.automaton ~mode:Pr.Singletons config)
        in
        List.for_all
          (fun (s : Pr.state) ->
            Undirected.equal
              (Digraph.skeleton s.Pr.graph)
              (Config.skeleton config))
          (A.Execution.states exec));
    prop "good nodes never reverse" (fun inst ->
        let config = config_of inst in
        let good =
          Node.Set.remove config.Config.destination
            (Digraph.reaches config.Config.initial config.Config.destination)
        in
        let out =
          Executor.run ~scheduler:(sched_of inst)
            ~destination:config.Config.destination
            (Pr.algo ~mode:Pr.Singletons config)
        in
        Node.Set.for_all
          (fun u -> Node.Map.find_or ~default:0 u out.Executor.node_steps = 0)
          good);
    prop "quiescence iff destination-oriented (connected graphs)" (fun inst ->
        let config = config_of inst in
        let out =
          Executor.run ~scheduler:(sched_of inst)
            ~destination:config.Config.destination (New_pr.algo config)
        in
        Bool.equal out.Executor.quiescent out.Executor.destination_oriented);
  ]

let () =
  let to_alcotest = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "properties"
    [
      ("acyclicity", to_alcotest acyclicity_props);
      ("invariants", to_alcotest invariant_props);
      ("termination", to_alcotest termination_props);
      ("simulation", to_alcotest simulation_props);
      ("equivalence", to_alcotest equivalence_props);
      ("graph", to_alcotest graph_props);
    ]
