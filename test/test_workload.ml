open Helpers
module W = Lr_service.Workload
module Op = Lr_service.Op

let spec ?(shards = 6) ?(nodes = 12) ?(extra_edges = 8) ?(seed = 7)
    ?(ops = 500) ?(mix = W.default_mix) ?(pmix = W.no_packets) ?(burst = 4)
    ?(skew = 0.8) ?(stats_every = 0) () =
  { W.shards; nodes; extra_edges; seed; ops; mix; pmix; burst; skew;
    stats_every }

let all_valid spec ops =
  Array.for_all (fun op -> Result.is_ok (W.valid_op spec op)) ops

let test_generate_deterministic () =
  let s = spec () in
  check_bool "same spec, same stream" true (W.generate s = W.generate s);
  let s' = spec ~seed:8 () in
  check_bool "different seed, different stream" true
    (W.generate s <> W.generate s')

let test_generate_in_range () =
  let s = spec ~shards:4 ~nodes:9 ~ops:800 ~stats_every:37 () in
  check_bool "every op within spec ranges" true (all_valid s (W.generate s))

let test_mix_respected () =
  let count pred ops = Array.fold_left (fun n op -> if pred op then n + 1 else n) 0 ops in
  let routes = W.generate (spec ~mix:{ W.route = 1; churn = 0; crash = 0 } ()) in
  check_int "pure route mix" 500
    (count (function Op.Route _ -> true | _ -> false) routes);
  let crashes = W.generate (spec ~mix:{ W.route = 0; churn = 0; crash = 1 } ()) in
  check_int "pure crash mix" 500
    (count (function Op.Crash_destination _ -> true | _ -> false) crashes);
  let churn = W.generate (spec ~mix:{ W.route = 0; churn = 1; crash = 0 } ()) in
  check_int "pure churn mix" 500
    (count
       (function Op.Link_down _ | Op.Link_up _ -> true | _ -> false)
       churn)

let test_stats_cadence () =
  let s = spec ~ops:200 ~stats_every:25 () in
  let ops = W.generate s in
  Array.iteri
    (fun k op ->
      check_bool
        (Printf.sprintf "op %d stats iff (k+1) mod 25 = 0" k)
        ((k + 1) mod 25 = 0)
        (op = Op.Stats))
    ops

let test_skew_orders_popularity () =
  let s = spec ~shards:8 ~ops:4000 ~skew:1.5 () in
  let ops = W.generate s in
  let hits = Array.make s.W.shards 0 in
  Array.iter
    (fun op ->
      match Op.shard_of op with
      | Some sh -> hits.(sh) <- hits.(sh) + 1
      | None -> ())
    ops;
  check_bool "shard 0 hotter than last shard" true
    (hits.(0) > 2 * hits.(s.W.shards - 1));
  (* skew 0 is roughly uniform: no shard below half the mean *)
  let u = spec ~shards:8 ~ops:4000 ~skew:0.0 () in
  let uhits = Array.make u.W.shards 0 in
  Array.iter
    (fun op ->
      match Op.shard_of op with
      | Some sh -> uhits.(sh) <- uhits.(sh) + 1
      | None -> ())
    (W.generate u);
  Array.iteri
    (fun i h ->
      check_bool (Printf.sprintf "uniform shard %d not starved" i) true
        (h > 4000 / (8 * 2)))
    uhits

let test_shard_configs_deterministic () =
  let s = spec () in
  let a = W.shard_configs s and b = W.shard_configs s in
  check_int "one config per shard" s.W.shards (Array.length a);
  let module Config = Linkrev.Config in
  let module Node = Lr_graph.Node in
  Array.iteri
    (fun i ca ->
      let cb = b.(i) in
      check_bool
        (Printf.sprintf "shard %d config reproducible" i)
        true
        (Node.Set.equal (Config.nodes ca) (Config.nodes cb)
        && Node.Set.for_all
             (fun u ->
               Node.Set.equal (Config.out_nbrs ca u) (Config.out_nbrs cb u))
             (Config.nodes ca)))
    a

let test_op_line_roundtrip () =
  let s = spec ~ops:300 ~stats_every:17 ~mix:{ W.route = 3; churn = 3; crash = 2 } () in
  Array.iter
    (fun op ->
      match Op.of_line (Op.to_line op) with
      | Ok op' -> check_bool (Op.to_line op) true (op = op')
      | Error e -> Alcotest.failf "%s did not parse: %s" (Op.to_line op) e)
    (W.generate s);
  check_bool "garbage rejected" true (Result.is_error (Op.of_line "frob 1 2"));
  check_bool "short route rejected" true (Result.is_error (Op.of_line "route 1"))

let test_save_load_roundtrip () =
  let s = spec ~ops:250 ~stats_every:20 () in
  let ops = W.generate s in
  let path = Filename.temp_file "lrw" ".workload" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      W.save path s ops;
      match W.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok (s', ops') ->
          check_bool "spec round-trips" true (s = s');
          check_bool "ops round-trip" true (ops = ops'))

let test_load_rejects_corruption () =
  let s = spec ~ops:10 () in
  let ops = W.generate s in
  let path = Filename.temp_file "lrw" ".workload" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let write lines =
        let oc = open_out path in
        List.iter (fun l -> output_string oc (l ^ "\n")) lines;
        close_out oc
      in
      write [ "not-a-workload" ];
      check_bool "bad magic" true (Result.is_error (W.load path));
      W.save path s ops;
      let lines = In_channel.with_open_text path In_channel.input_lines in
      write (List.filteri (fun i _ -> i < List.length lines - 1) lines);
      check_bool "truncated ops" true (Result.is_error (W.load path));
      write
        (List.map
           (fun l -> if l = "shards 6" then "shards 0" else l)
           lines);
      check_bool "invalid spec" true (Result.is_error (W.load path));
      write
        (List.mapi
           (fun i l -> if i = List.length lines - 1 then "route 99 0" else l)
           lines);
      check_bool "out-of-range shard in op" true (Result.is_error (W.load path)))

let test_packet_roundtrip () =
  (* A packet-heavy stream must survive the lrw1 text format: inject
     and forward ops included, spec equality exact. *)
  let s = spec ~ops:300 ~pmix:W.default_pmix ~burst:7 ~stats_every:23 () in
  let ops = W.generate s in
  let has kind =
    Array.exists
      (fun op ->
        match (op, kind) with
        | Op.Inject _, `I | Op.Forward _, `F -> true
        | _ -> false)
      ops
  in
  check_bool "stream has injects" true (has `I);
  check_bool "stream has forwards" true (has `F);
  Array.iter
    (fun op ->
      match Op.of_line (Op.to_line op) with
      | Ok op' -> check_bool (Op.to_line op) true (op = op')
      | Error e -> Alcotest.failf "%s did not parse: %s" (Op.to_line op) e)
    ops;
  let path = Filename.temp_file "lrw" ".workload" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      W.save path s ops;
      match W.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok (s', ops') ->
          check_bool "packet spec round-trips" true (s = s');
          check_bool "packet ops round-trip" true (ops = ops'))

let test_load_pre_packet_format () =
  (* Files written before the packet extension carry no pmix/burst
     headers; they must still load, as a packet-free workload. *)
  let s = spec ~ops:5 () in
  let ops = W.generate s in
  let path = Filename.temp_file "lrw" ".workload" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      W.save path s ops;
      let lines = In_channel.with_open_text path In_channel.input_lines in
      let stripped =
        List.filter
          (fun l ->
            not
              (String.length l >= 5 && String.sub l 0 5 = "pmix "
              || String.length l >= 6 && String.sub l 0 6 = "burst "))
          lines
      in
      check_bool "headers were stripped" true
        (List.length stripped = List.length lines - 2);
      let oc = open_out path in
      List.iter (fun l -> output_string oc (l ^ "\n")) stripped;
      close_out oc;
      match W.load path with
      | Error e -> Alcotest.failf "pre-packet file rejected: %s" e
      | Ok (s', ops') ->
          check_bool "pmix defaults to none" true (s'.W.pmix = W.no_packets);
          check_bool "burst defaults to 1" true (s'.W.burst = 1);
          check_bool "rest of the spec survives" true
            ({ s with W.pmix = W.no_packets; burst = 1 } = s');
          check_bool "ops survive" true (ops = ops'))

let test_single_shard () =
  (* shards = 1: the Zipf scan has one bucket; every op lands on it. *)
  let s = spec ~shards:1 ~pmix:W.default_pmix ~ops:200 () in
  let ops = W.generate s in
  check_bool "ops generated" true (Array.length ops = 200);
  Array.iter
    (fun op ->
      (match op with
      | Op.Stats -> ()
      | _ -> check_bool "single shard targeted" true (Op.shard_of op = Some 0));
      check_bool "valid" true (Result.is_ok (W.valid_op s op)))
    ops;
  check_bool "configs" true (Array.length (W.shard_configs s) = 1)

let test_zero_skew_uniform () =
  (* skew = 0 is the uniform boundary of the popularity law: every
     shard must actually receive traffic (with 6 shards over 3000 ops
     a starved shard is ~1e-200 unlikely), and the stream must still
     be deterministic. *)
  let s = spec ~skew:0.0 ~ops:3_000 () in
  let ops = W.generate s in
  let counts = Array.make 6 0 in
  Array.iter
    (fun op ->
      match Op.shard_of op with
      | Some sh -> counts.(sh) <- counts.(sh) + 1
      | None -> ())
    ops;
  Array.iteri
    (fun i c -> check_bool (Printf.sprintf "shard %d hit" i) true (c > 0))
    counts;
  check_bool "deterministic at skew 0" true (W.generate s = ops)

let test_spec_validation () =
  List.iter
    (fun s ->
      check_bool "bad spec rejected" true
        (try ignore (W.generate s); false with Invalid_argument _ -> true))
    [
      spec ~shards:0 ();
      spec ~nodes:1 ();
      spec ~mix:{ W.route = 0; churn = 0; crash = 0 } ();
      spec ~mix:{ W.route = -1; churn = 2; crash = 0 } ();
      { (spec ()) with W.skew = -1.0 };
      { (spec ()) with W.ops = -1 };
      spec ~pmix:{ W.inject = -1; forward = 0 } ();
      spec ~burst:0 ();
      {
        (spec ()) with
        W.mix = { W.route = 0; churn = 0; crash = 0 };
        pmix = W.no_packets;
      };
    ]

let () =
  Alcotest.run "workload"
    [
      suite "workload"
        [
          case "generation is deterministic" test_generate_deterministic;
          case "ops stay in range" test_generate_in_range;
          case "mix weights respected" test_mix_respected;
          case "stats cadence" test_stats_cadence;
          case "zipf skew orders shard popularity" test_skew_orders_popularity;
          case "shard configs reproducible" test_shard_configs_deterministic;
          case "op text round-trips" test_op_line_roundtrip;
          case "save/load round-trips" test_save_load_roundtrip;
          case "load rejects corruption" test_load_rejects_corruption;
          case "packet ops round-trip" test_packet_roundtrip;
          case "pre-packet files still load" test_load_pre_packet_format;
          case "single shard" test_single_shard;
          case "zero skew is uniform" test_zero_skew_uniform;
          case "nonsensical specs rejected" test_spec_validation;
        ];
    ]
