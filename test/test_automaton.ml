open Helpers
module A = Lr_automata

(* A tiny counter automaton: increment up to a limit. *)
let counter limit =
  A.Automaton.make ~name:"counter" ~initial:0
    ~enabled:(fun s -> if s < limit then [ `Inc ] else [])
    ~step:(fun s `Inc -> s + 1)
    ()

let test_make_defaults () =
  let aut = counter 3 in
  check_bool "is_enabled from enabled" true (aut.A.Automaton.is_enabled 0 `Inc);
  check_bool "disabled at limit" false (aut.A.Automaton.is_enabled 3 `Inc);
  check_bool "default equality" true (aut.A.Automaton.equal_state 2 2)

let test_quiescent () =
  let aut = counter 2 in
  check_bool "not quiescent" false (A.Automaton.quiescent aut 0);
  check_bool "quiescent" true (A.Automaton.quiescent aut 2)

let test_reachable () =
  match A.Automaton.reachable ~key:string_of_int (counter 5) with
  | Error e -> Alcotest.fail e
  | Ok states ->
      check_int "six states" 6 (List.length states);
      check_int "initial first" 0 (List.hd states)

let test_reachable_bound () =
  (* An unbounded counter must hit the cap and report an error. *)
  let unbounded =
    A.Automaton.make ~name:"unbounded" ~initial:0
      ~enabled:(fun _ -> [ `Inc ])
      ~step:(fun s `Inc -> s + 1)
      ()
  in
  match A.Automaton.reachable ~max_states:100 ~key:string_of_int unbounded with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected cap error"

let test_reachable_dedup () =
  (* Two paths into the same state must be visited once. *)
  let diamond =
    A.Automaton.make ~name:"diamond" ~initial:(0, 0)
      ~enabled:(fun (a, b) ->
        (if a < 1 then [ `A ] else []) @ if b < 1 then [ `B ] else [])
      ~step:(fun (a, b) -> function `A -> (a + 1, b) | `B -> (a, b + 1))
      ()
  in
  match
    A.Automaton.reachable
      ~key:(fun (a, b) -> Printf.sprintf "%d,%d" a b)
      diamond
  with
  | Error e -> Alcotest.fail e
  | Ok states -> check_int "four distinct states" 4 (List.length states)

let () =
  Alcotest.run "automaton"
    [
      suite "automaton"
        [
          case "make fills defaults" test_make_defaults;
          case "quiescence" test_quiescent;
          case "reachable enumerates all states" test_reachable;
          case "reachable respects max_states" test_reachable_bound;
          case "reachable deduplicates" test_reachable_dedup;
        ];
    ]
