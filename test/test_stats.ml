open Helpers
module S = Lr_analysis.Stats

let feq = Alcotest.(check (float 1e-9))

let test_mean () =
  feq "mean" 2.0 (S.mean [ 1.0; 2.0; 3.0 ]);
  feq "empty" 0.0 (S.mean [])

let test_stddev () =
  feq "constant" 0.0 (S.stddev [ 4.0; 4.0; 4.0 ]);
  feq "singleton" 0.0 (S.stddev [ 7.0 ]);
  feq "alternating" 1.0 (S.stddev [ 1.0; 3.0; 1.0; 3.0; 1.0; 3.0 ])

let test_stddev_known_value () =
  (* population stddev of [2;4;4;4;5;5;7;9] is 2 *)
  feq "classic example" 2.0 (S.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ])

let test_median () =
  feq "odd count" 3.0 (S.median [ 5.0; 1.0; 3.0 ]);
  feq "nearest-rank even" 2.0 (S.median [ 1.0; 2.0; 3.0; 4.0 ])

let test_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  feq "p50" 50.0 (S.percentile 50.0 xs);
  feq "p99" 99.0 (S.percentile 99.0 xs);
  feq "p100" 100.0 (S.percentile 100.0 xs);
  feq "p0 clamps" 1.0 (S.percentile 0.0 xs)

let test_percentiles_record () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  let p = S.percentiles xs in
  feq "p50" 50.0 p.S.p50;
  feq "p95" 95.0 p.S.p95;
  feq "p99" 99.0 p.S.p99;
  (* agrees with the scalar nearest-rank percentile on unsorted input *)
  let r = rng 9 in
  let ys = List.init 257 (fun _ -> Random.State.float r 1000.0) in
  let q = S.percentiles ys in
  feq "p50 matches percentile" (S.percentile 50.0 ys) q.S.p50;
  feq "p95 matches percentile" (S.percentile 95.0 ys) q.S.p95;
  feq "p99 matches percentile" (S.percentile 99.0 ys) q.S.p99;
  feq "p999 matches percentile" (S.percentile 99.9 ys) q.S.p999;
  feq "max matches maximum" (S.maximum ys) q.S.max;
  (* 1000 distinct samples separate p99.9 from p99; the exact p99.9
     rank straddles a float ulp (99.9/100 is not representable), so
     pin the ordering, not the artifact *)
  let zs = List.init 1000 (fun i -> float_of_int (i + 1)) in
  let t = S.percentiles zs in
  feq "p99 on 1..1000" 990.0 t.S.p99;
  Alcotest.(check bool) "p999 above p99" true (t.S.p999 > t.S.p99);
  Alcotest.(check bool) "p999 at most max" true (t.S.p999 <= t.S.max);
  feq "max on 1..1000" 1000.0 t.S.max

let test_percentiles_degenerate () =
  let z = S.percentiles [] in
  feq "empty p50" 0.0 z.S.p50;
  feq "empty p95" 0.0 z.S.p95;
  feq "empty p99" 0.0 z.S.p99;
  feq "empty p999" 0.0 z.S.p999;
  feq "empty max" 0.0 z.S.max;
  let s = S.percentiles [ 42.0 ] in
  feq "singleton p50" 42.0 s.S.p50;
  feq "singleton p95" 42.0 s.S.p95;
  feq "singleton p99" 42.0 s.S.p99;
  feq "singleton p999" 42.0 s.S.p999;
  feq "singleton max" 42.0 s.S.max

let test_min_max () =
  feq "min" 1.0 (S.minimum [ 3.0; 1.0; 2.0 ]);
  feq "max" 3.0 (S.maximum [ 3.0; 1.0; 2.0 ])

let test_linear_fit () =
  let slope, intercept = S.linear_fit [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) ] in
  feq "slope" 2.0 slope;
  feq "intercept" 1.0 intercept

let test_linear_fit_rejects_degenerate () =
  check_bool "one point" true
    (try ignore (S.linear_fit [ (1.0, 1.0) ]); false
     with Invalid_argument _ -> true);
  check_bool "zero variance" true
    (try ignore (S.linear_fit [ (1.0, 1.0); (1.0, 2.0) ]); false
     with Invalid_argument _ -> true)

let test_growth_exponent () =
  (* y = 3 x^2 exactly -> exponent 2 *)
  let quad = List.map (fun x -> (x, 3.0 *. x *. x)) [ 2.0; 4.0; 8.0; 16.0 ] in
  feq "quadratic" 2.0 (S.growth_exponent quad);
  let lin = List.map (fun x -> (x, 5.0 *. x)) [ 2.0; 4.0; 8.0 ] in
  feq "linear" 1.0 (S.growth_exponent lin)

let test_growth_exponent_drops_nonpositive () =
  let pts = (0.0, 0.0) :: List.map (fun x -> (x, x *. x)) [ 2.0; 4.0; 8.0 ] in
  feq "ignores zero point" 2.0 (S.growth_exponent pts)

let () =
  Alcotest.run "stats"
    [
      suite "stats"
        [
          case "mean" test_mean;
          case "stddev" test_stddev;
          case "stddev known value" test_stddev_known_value;
          case "median" test_median;
          case "percentile (nearest rank)" test_percentile;
          case "percentiles record (p50/p95/p99)" test_percentiles_record;
          case "percentiles degenerate inputs" test_percentiles_degenerate;
          case "min/max" test_min_max;
          case "linear fit" test_linear_fit;
          case "linear fit rejects degenerate input" test_linear_fit_rejects_degenerate;
          case "growth exponent" test_growth_exponent;
          case "growth exponent drops non-positive points"
            test_growth_exponent_drops_nonpositive;
        ];
    ]
