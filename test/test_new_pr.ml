open Lr_graph
open Linkrev
open Helpers
module A = Lr_automata

let test_initial_counts_zero () =
  let config = diamond () in
  let s = New_pr.initial config in
  Node.Set.iter
    (fun u ->
      check_int "count 0" 0 (New_pr.count s u);
      check_bool "parity even" true (New_pr.parity s u = New_pr.Even))
    (Config.nodes config)

let test_even_step_reverses_in_nbrs () =
  let config = diamond () in
  let s = New_pr.apply config (New_pr.initial config) 3 in
  (* 3's initial in-nbrs are {1, 2}: both edges flip. *)
  check_bool "3 -> 1" true (Digraph.dir s.New_pr.graph 3 1 = Digraph.Out);
  check_bool "3 -> 2" true (Digraph.dir s.New_pr.graph 3 2 = Digraph.Out);
  check_int "count incremented" 1 (New_pr.count s 3);
  check_bool "parity odd" true (New_pr.parity s 3 = New_pr.Odd)

let test_odd_step_reverses_out_nbrs () =
  (* Drive node 1 of the diamond to its second step: after 3 and then 1
     step once each, 1's next step (odd parity) reverses its initial
     out-neighbour 3 — when 1 is a sink again. *)
  let config = diamond () in
  let s = New_pr.apply config (New_pr.initial config) 3 in
  let s = New_pr.apply config s 1 in
  (* 1's first (even) step reversed in-nbrs {0}; edge to 3 stays in. *)
  check_bool "1 -> 0 after even step" true (Digraph.dir s.New_pr.graph 1 0 = Digraph.Out);
  check_bool "edge {1,3} untouched by 1" true (Digraph.dir s.New_pr.graph 1 3 = Digraph.In);
  check_int "1 stepped once" 1 (New_pr.count s 1)

let test_reversal_set_alternates () =
  let config = diamond () in
  let s0 = New_pr.initial config in
  check_node_set "even: in-nbrs" (Config.in_nbrs config 3)
    (New_pr.reversal_set config s0 3);
  let s1 = New_pr.apply config s0 3 in
  check_node_set "odd: out-nbrs" (Config.out_nbrs config 3)
    (New_pr.reversal_set config s1 3)

let test_dummy_step_initial_source () =
  (* A node that starts as a source has in-nbrs = {} — its first step
     (even parity) reverses nothing, only flips parity (paper §4.1). *)
  let config =
    Config.make_exn
      (Digraph.of_directed_edges [ (1, 0); (1, 2); (2, 0) ])
      ~destination:0
  in
  (* 1 is a source.  Make it a sink: 2 reverses? 2's edges: 1 -> 2 in,
     2 -> 0 out; 2 is not a sink.  Orient manually instead: start from a
     graph where 1 is a source and becomes a sink after one step by 2. *)
  ignore config;
  let config2 =
    Config.make_exn (Digraph.of_directed_edges [ (1, 2); (0, 2) ]) ~destination:0
  in
  (* 1 is a source (only edge 1 -> 2).  2 is the sink; its even step
     reverses in-nbrs {0, 1}: edge {1,2} now points to 1, making 1 a
     sink.  1's even step has in-nbrs(1) = {} -> dummy. *)
  let s = New_pr.apply config2 (New_pr.initial config2) 2 in
  check_bool "1 became a sink" true (Digraph.is_sink s.New_pr.graph 1);
  check_bool "dummy step detected" true (New_pr.is_dummy_step config2 s 1);
  let s' = New_pr.apply config2 s 1 in
  Alcotest.check digraph_testable "graph unchanged by dummy step" s.New_pr.graph
    s'.New_pr.graph;
  check_int "count still incremented" 1 (New_pr.count s' 1);
  (* The follow-up odd step reverses out-nbrs = all nbrs of 1. *)
  check_bool "still a sink" true (Digraph.is_sink s'.New_pr.graph 1);
  let s'' = New_pr.apply config2 s' 1 in
  check_bool "now reversed" true (Digraph.dir s''.New_pr.graph 1 2 = Digraph.Out)

let test_counts_differ_by_at_most_one_between_neighbours () =
  (* Invariant 4.2(a) exercised directly. *)
  for seed = 0 to 9 do
    let config = random_config ~seed 12 in
    let exec = run_random ~seed (New_pr.automaton config) in
    List.iter
      (fun s ->
        Undirected.iter_edges
          (fun e ->
            let cu = New_pr.count s (Edge.lo e)
            and cv = New_pr.count s (Edge.hi e) in
            check_bool "|Δcount| <= 1" true (abs (cu - cv) <= 1))
          (Config.skeleton config))
      (A.Execution.states exec)
  done

let test_terminates_oriented () =
  for seed = 0 to 19 do
    let config = random_config ~seed 15 in
    let out =
      Executor.run
        ~scheduler:(A.Scheduler.random (rng seed))
        ~destination:config.Config.destination (New_pr.algo config)
    in
    check_bool "quiescent" true out.Executor.quiescent;
    check_bool "oriented" true out.Executor.destination_oriented
  done

let test_dummy_overhead_vs_pr () =
  (* NewPR takes at least as many steps as OneStepPR; the difference is
     exactly the dummy steps (paper §4.1 cost discussion). *)
  for seed = 0 to 9 do
    let config = random_config ~seed 12 in
    let steps algo =
      (Executor.run
         ~scheduler:(A.Scheduler.first ())
         ~destination:config.Config.destination algo)
        .Executor.total_node_steps
    in
    check_bool "NewPR >= OneStepPR" true
      (steps (New_pr.algo config) >= steps (One_step_pr.algo config))
  done

let test_step_rejects_disabled () =
  let config = diamond () in
  let aut = New_pr.automaton config in
  check_bool "raises" true
    (try ignore (aut.A.Automaton.step (New_pr.initial config) (New_pr.Reverse 0));
         false
     with Invalid_argument _ -> true)

let test_canonical_key_includes_counts () =
  let config = diamond () in
  let s0 = New_pr.initial config in
  let s1 = New_pr.apply config s0 3 in
  let s2 = New_pr.apply config (New_pr.apply config s1 1) 3 in
  (* s2's graph may coincide with some earlier graph, but counts differ,
     so keys must differ from s0's. *)
  check_bool "keys differ" false
    (String.equal (New_pr.canonical_key s0) (New_pr.canonical_key s2))

let () =
  Alcotest.run "new_pr"
    [
      suite "mechanics"
        [
          case "initial counts are zero" test_initial_counts_zero;
          case "even parity reverses initial in-nbrs" test_even_step_reverses_in_nbrs;
          case "odd parity reverses initial out-nbrs" test_odd_step_reverses_out_nbrs;
          case "reversal set alternates" test_reversal_set_alternates;
          case "dummy steps flip parity only" test_dummy_step_initial_source;
          case "step rejects disabled actions" test_step_rejects_disabled;
          case "canonical keys include counts" test_canonical_key_includes_counts;
        ];
      suite "behaviour"
        [
          case "neighbour counts differ by at most 1"
            test_counts_differ_by_at_most_one_between_neighbours;
          case "terminates destination-oriented" test_terminates_oriented;
          case "dummy-step overhead vs OneStepPR" test_dummy_overhead_vs_pr;
        ];
    ]
