open Lr_graph
open Linkrev
open Helpers
module A = Lr_automata

let test_step_makes_source () =
  (* FR's acyclicity argument: the node that just stepped is a source. *)
  let config = diamond () in
  let s = Full_reversal.apply (Full_reversal.initial config) 3 in
  check_bool "3 is a source" true (Digraph.is_source s.Full_reversal.graph 3)

let test_every_stepper_becomes_source () =
  for seed = 0 to 9 do
    let config = random_config ~seed 12 in
    let exec = run_random ~seed (Full_reversal.automaton config) in
    List.iter
      (fun { A.Execution.action = Full_reversal.Reverse u; after; _ } ->
        check_bool "stepper is a source" true
          (Digraph.is_source after.Full_reversal.graph u))
      exec.A.Execution.steps
  done

let test_acyclicity_preserved () =
  for seed = 0 to 9 do
    let config = random_config ~seed 12 in
    let exec = run_random ~seed (Full_reversal.automaton config) in
    List.iter
      (fun s -> check_bool "acyclic" true (Digraph.is_acyclic s.Full_reversal.graph))
      (A.Execution.states exec)
  done

let test_terminates_oriented () =
  for seed = 0 to 19 do
    let config = random_config ~seed 14 in
    let out =
      Executor.run
        ~scheduler:(A.Scheduler.random (rng seed))
        ~destination:config.Config.destination (Full_reversal.algo config)
    in
    check_bool "quiescent" true out.Executor.quiescent;
    check_bool "oriented" true out.Executor.destination_oriented
  done

let test_bad_chain_work_formula () =
  (* Measured against the closed form directly. *)
  let work n =
    let config = bad_chain n in
    (Executor.run ~scheduler:(A.Scheduler.first ()) ~destination:0
       (Full_reversal.algo config))
      .Executor.total_node_steps
  in
  (* n=5 gave 10 = 4+3+2+1 in exploratory runs; assert the triangular
     pattern for several sizes. *)
  List.iter
    (fun n ->
      let nb = n - 1 in
      check_int (Printf.sprintf "n=%d" n) (nb * (nb + 1) / 2) (work n))
    [ 3; 5; 8; 12 ]

let test_work_dominates_pr_on_bad_chain () =
  let config = bad_chain 10 in
  let work algo =
    (Executor.run ~scheduler:(A.Scheduler.first ()) ~destination:0 algo)
      .Executor.total_node_steps
  in
  let fr = work (Full_reversal.algo config)
  and pr = work (Pr.algo ~mode:Pr.Singletons config) in
  check_bool "FR quadratic vs PR linear" true (fr > pr);
  check_int "PR linear" 9 pr;
  check_int "FR triangular" 45 fr

let test_schedule_independent_work () =
  let config = bad_chain 8 in
  let run sched =
    (Executor.run ~scheduler:sched ~destination:0 (Full_reversal.algo config))
      .Executor.node_steps
  in
  let reference = run (A.Scheduler.first ()) in
  List.iter
    (fun sched ->
      check_bool "same node steps" true
        (Node.Map.equal Int.equal reference (run sched)))
    [ A.Scheduler.last (); A.Scheduler.random (rng 11) ]

let test_step_rejects_disabled () =
  let config = diamond () in
  let aut = Full_reversal.automaton config in
  check_bool "raises" true
    (try ignore (aut.A.Automaton.step (Full_reversal.initial config)
                   (Full_reversal.Reverse 0)); false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "full_reversal"
    [
      suite "full_reversal"
        [
          case "a step makes the node a source" test_step_makes_source;
          case "every stepper becomes a source" test_every_stepper_becomes_source;
          case "acyclicity preserved" test_acyclicity_preserved;
          case "terminates destination-oriented" test_terminates_oriented;
          case "bad chain work is triangular" test_bad_chain_work_formula;
          case "FR > PR on the bad chain" test_work_dominates_pr_on_bad_chain;
          case "work is schedule independent" test_schedule_independent_work;
          case "step rejects disabled actions" test_step_rejects_disabled;
        ];
    ]
