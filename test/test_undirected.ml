open Lr_graph
open Helpers

let path4 () = Undirected.of_edges [ (0, 1); (1, 2); (2, 3) ]

let test_empty () =
  check_int "no nodes" 0 (Undirected.num_nodes Undirected.empty);
  check_int "no edges" 0 (Undirected.num_edges Undirected.empty)

let test_add_node () =
  let g = Undirected.add_node Undirected.empty 7 in
  check_bool "mem" true (Undirected.mem_node g 7);
  check_int "idempotent"
    (Undirected.num_nodes g)
    (Undirected.num_nodes (Undirected.add_node g 7))

let test_add_edge () =
  let g = path4 () in
  check_int "nodes" 4 (Undirected.num_nodes g);
  check_int "edges" 3 (Undirected.num_edges g);
  check_bool "mem both ways" true
    (Undirected.mem_edge g 1 0 && Undirected.mem_edge g 0 1)

let test_add_edge_idempotent () =
  let g = Undirected.add_edge (path4 ()) 0 1 in
  check_int "still 3 edges" 3 (Undirected.num_edges g)

let test_neighbors () =
  let g = path4 () in
  check_node_set "middle node" (Node.Set.of_list [ 0; 2 ])
    (Undirected.neighbors g 1);
  check_node_set "endpoint" (Node.Set.singleton 1) (Undirected.neighbors g 0);
  check_node_set "unknown node" Node.Set.empty (Undirected.neighbors g 99)

let test_degree () =
  let g = path4 () in
  check_int "endpoint degree" 1 (Undirected.degree g 0);
  check_int "middle degree" 2 (Undirected.degree g 2)

let test_remove_edge () =
  let g = Undirected.remove_edge (path4 ()) 1 2 in
  check_int "edges" 2 (Undirected.num_edges g);
  check_bool "edge gone" false (Undirected.mem_edge g 1 2);
  check_bool "nodes stay" true (Undirected.mem_node g 1 && Undirected.mem_node g 2);
  check_int "removing absent edge is a no-op" 2
    (Undirected.num_edges (Undirected.remove_edge g 0 3))

let test_connected () =
  check_bool "path connected" true (Undirected.is_connected (path4 ()));
  let split = Undirected.of_edges [ (0, 1); (2, 3) ] in
  check_bool "two components" false (Undirected.is_connected split);
  check_int "component count" 2
    (List.length (Undirected.connected_components split));
  check_bool "empty graph connected" true (Undirected.is_connected Undirected.empty)

let test_components_partition_nodes () =
  let g = Undirected.of_edges [ (0, 1); (2, 3); (3, 4) ] in
  let comps = Undirected.connected_components g in
  let union = List.fold_left Node.Set.union Node.Set.empty comps in
  check_node_set "union is node set" (Undirected.nodes g) union;
  check_int "sizes" 2 (List.length comps)

let test_fold_edges () =
  let total = Undirected.fold_edges (fun _ acc -> acc + 1) (path4 ()) 0 in
  check_int "fold visits all edges" 3 total

let test_equal () =
  check_bool "structural equality" true
    (Undirected.equal (path4 ()) (Undirected.of_edges [ (2, 3); (0, 1); (1, 2) ]));
  check_bool "different" false
    (Undirected.equal (path4 ()) (Undirected.of_edges [ (0, 1) ]))

let () =
  Alcotest.run "undirected"
    [
      suite "undirected"
        [
          case "empty graph" test_empty;
          case "add_node" test_add_node;
          case "add_edge adds endpoints" test_add_edge;
          case "add_edge is idempotent" test_add_edge_idempotent;
          case "neighbors" test_neighbors;
          case "degree" test_degree;
          case "remove_edge" test_remove_edge;
          case "connectivity" test_connected;
          case "components partition the nodes" test_components_partition_nodes;
          case "fold_edges" test_fold_edges;
          case "equal ignores insertion order" test_equal;
        ];
    ]
