(* Shared fixtures and small assertion helpers for the test suite. *)

open Lr_graph
open Linkrev

let rng seed = Random.State.make [| 0xbeef; seed |]

(* A hand-built diamond: 0 -> 1 -> 3, 0 -> 2 -> 3, destination 0.
   Node 3 is the unique initial sink; 1, 2, 3 are all bad. *)
let diamond () =
  Config.make_exn
    (Digraph.of_directed_edges [ (0, 1); (0, 2); (1, 3); (2, 3) ])
    ~destination:0

let bad_chain n = Config.of_instance (Generators.bad_chain n)
let sawtooth n = Config.of_instance (Generators.sawtooth n)

let random_config ?(extra_edges = 8) ~seed n =
  Config.of_instance
    (Generators.random_connected_dag (rng seed) ~n ~extra_edges)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let node_set_testable =
  Alcotest.testable Node.Set.pp Node.Set.equal

let check_node_set = Alcotest.check node_set_testable

let digraph_testable = Alcotest.testable Digraph.pp Digraph.equal

let run_random ?(seed = 0) ?max_steps automaton =
  Lr_automata.Execution.run ?max_steps
    ~scheduler:(Lr_automata.Scheduler.random (rng seed))
    automaton

let expect_no_violation what = function
  | None -> ()
  | Some v ->
      Alcotest.failf "%s: %a" what Lr_automata.Invariant.pp_violation v

let case name f = Alcotest.test_case name `Quick f

let suite name cases = (name, cases)
