open Helpers
module Fifo = Lr_packet.Fifo
module Plane = Lr_packet.Plane
module Geo = Lr_packet.Geo
module Scenario = Lr_packet.Scenario

let good_chain n = Linkrev.Config.of_instance (Lr_graph.Generators.good_chain n)

(* {1 Fifo} *)

let test_fifo_basic () =
  let q = Fifo.create ~capacity:3 in
  check_bool "empty" true (Fifo.is_empty q);
  check_bool "push a" true (Fifo.push q 10);
  check_bool "push b" true (Fifo.push q 11);
  check_bool "push c" true (Fifo.push q 12);
  check_bool "full" true (Fifo.is_full q);
  check_bool "push refused" false (Fifo.push q 13);
  check_int "peek" 10 (Fifo.peek q);
  check_int "pop a" 10 (Fifo.pop q);
  check_bool "push wraps" true (Fifo.push q 13);
  check_int "pop b" 11 (Fifo.pop q);
  check_int "pop c" 12 (Fifo.pop q);
  check_int "pop d" 13 (Fifo.pop q);
  check_int "pop empty" (-1) (Fifo.pop q);
  check_int "peek empty" (-1) (Fifo.peek q)

let test_fifo_wraparound_order () =
  let q = Fifo.create ~capacity:4 in
  for round = 0 to 9 do
    check_bool "push x" true (Fifo.push q (2 * round));
    check_bool "push y" true (Fifo.push q ((2 * round) + 1));
    check_int "pop x" (2 * round) (Fifo.pop q);
    check_int "pop y" ((2 * round) + 1) (Fifo.pop q)
  done;
  check_bool "drained" true (Fifo.is_empty q)

(* {1 Plane} *)

(* On the good chain (everything already points at 0), packets flow to
   the destination one hop per slot with no reversals. *)
let test_plane_chain_delivery () =
  let p = Plane.create ~qcap:8 (good_chain 6) in
  let accepted, dropped = Plane.inject p ~src:5 ~count:3 in
  check_int "accepted" 3 accepted;
  check_int "dropped" 0 dropped;
  let total_delivered = ref 0 and total_reversals = ref 0 in
  for _ = 1 to 40 do
    let o = Plane.slot p in
    total_delivered := !total_delivered + o.Plane.delivered;
    total_reversals := !total_reversals + o.Plane.reversals
  done;
  check_int "all delivered" 3 !total_delivered;
  check_int "no reversals on a destination-oriented chain" 0 !total_reversals;
  check_int "nothing queued" 0 (Plane.queued p);
  check_bool "consistent" true (Plane.consistent p);
  let c = Plane.counters p in
  (* 3 packets, 5 hops each, shortest distance 5: stretch exactly 1. *)
  check_int "hops" 15 c.Plane.hops_sum;
  check_int "dist" 15 c.Plane.dist_sum

(* On the bad chain (everything points away from 0), forwarding alone
   is stuck: queue-driven reversals must re-point the DAG. *)
let test_plane_bad_chain_reverses_and_delivers () =
  let p = Plane.create ~qcap:8 (bad_chain 6) in
  let accepted, _ = Plane.inject p ~src:3 ~count:2 in
  check_int "accepted" 2 accepted;
  let total = ref 0 and revs = ref 0 in
  for _ = 1 to 200 do
    let o = Plane.slot p in
    total := !total + o.Plane.delivered;
    revs := !revs + o.Plane.reversals
  done;
  check_int "all delivered" 2 !total;
  check_bool "reversals happened" true (!revs > 0);
  check_bool "consistent" true (Plane.consistent p)

let test_plane_drops_when_full () =
  let p = Plane.create ~qcap:4 (good_chain 4) in
  let accepted, dropped = Plane.inject p ~src:3 ~count:7 in
  check_int "accepted" 4 accepted;
  check_int "dropped" 3 dropped;
  let c = Plane.counters p in
  check_int "counter dropped" 3 c.Plane.dropped;
  check_int "high water" 4 (Plane.high_water p);
  check_bool "consistent" true (Plane.consistent p)

let test_plane_inject_at_destination_is_zero_hop () =
  let p = Plane.create (good_chain 4) in
  let accepted, dropped = Plane.inject p ~src:0 ~count:5 in
  check_int "accepted" 5 accepted;
  check_int "dropped" 0 dropped;
  let c = Plane.counters p in
  check_int "delivered immediately" 5 c.Plane.delivered;
  check_int "nothing queued" 0 (Plane.queued p)

(* Queue differentials spread load: with everything injected at one
   node of a random DAG, delivery completes and the orientation stays
   a DAG (derived from a total order, checked via edge_out asymmetry). *)
let test_plane_random_backpressure () =
  let config = random_config ~seed:5 24 in
  let p = Plane.create ~qcap:6 config in
  let n = Plane.num_nodes p in
  let dest = Plane.destination p in
  let src = if dest = 0 then 1 else 0 in
  let accepted = ref 0 in
  for s = 0 to 199 do
    if s < 50 then begin
      let a, _ = Plane.inject p ~src ~count:2 in
      accepted := !accepted + a
    end;
    ignore (Plane.slot p : Plane.slot_outcome);
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if Plane.mem_edge p u v then
          check_bool "antisymmetric orientation" true
            (Plane.edge_out p u v <> Plane.edge_out p v u)
      done
    done
  done;
  let c = Plane.counters p in
  check_int "all accepted packets delivered" !accepted c.Plane.delivered;
  check_bool "consistent" true (Plane.consistent p)

(* Churn: cutting the chain strands packets behind the cut; reversals
   churn in place but cannot deliver; restoring the link lets the
   backlog drain completely. *)
let test_plane_churn_strands_then_recovers () =
  let p = Plane.create ~qcap:8 (good_chain 5) in
  ignore (Plane.inject p ~src:4 ~count:3 : int * int);
  Plane.remove_link p 1 2;
  check_bool "edge gone" false (Plane.mem_edge p 1 2);
  for _ = 1 to 60 do
    ignore (Plane.slot p : Plane.slot_outcome)
  done;
  let mid = Plane.counters p in
  check_int "stranded" 0 mid.Plane.delivered;
  check_bool "reversing at the cut" true (mid.Plane.reversals > 0);
  Plane.add_link p 1 2;
  for _ = 1 to 200 do
    ignore (Plane.slot p : Plane.slot_outcome)
  done;
  let fin = Plane.counters p in
  check_int "backlog drained after repair" 3 fin.Plane.delivered;
  check_bool "consistent" true (Plane.consistent p)

(* Height seeding from the stabilized fast engine must agree with the
   engine's own orientation edge for edge. *)
let test_plane_engine_height_seeding () =
  let config = random_config ~seed:9 20 in
  let fm = Lr_routing.Fast_maintenance.create Lr_routing.Maintenance.Partial_reversal config in
  let n = Lr_routing.Fast_maintenance.num_nodes fm in
  let ha = Array.make n 0 and hb = Array.make n 0 in
  for u = 0 to n - 1 do
    let a, b = Lr_routing.Fast_maintenance.height fm u in
    ha.(u) <- a;
    hb.(u) <- b
  done;
  let p = Plane.create ~heights:(ha, hb) config in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Plane.mem_edge p u v then
        check_bool "orientation matches the engine" true
          (Plane.edge_out p u v = Lr_routing.Fast_maintenance.edge_out fm u v)
    done
  done

(* {1 Geo} *)

let test_geo_generate_connected () =
  let inst = Geo.generate (rng 3) ~n:60 ~radius:0.22 () in
  check_int "n" 60 inst.Geo.n;
  Array.iter (fun d -> check_bool "connected" true (d >= 0)) inst.Geo.hop_dist;
  check_int "dest at distance 0" 0 inst.Geo.hop_dist.(inst.Geo.dest)

let test_geo_void_recovery_beats_greedy () =
  let r = Scenario.run_void Scenario.default_void in
  check_bool "void creates local minima" true (r.Scenario.minima > 0);
  check_bool "greedy strands packets" true
    (r.Scenario.greedy.Geo.delivered < r.Scenario.greedy.Geo.injected);
  check_int "recovery delivers everything" r.Scenario.recovery.Geo.injected
    r.Scenario.recovery.Geo.delivered;
  check_bool "recovery raised levels" true (r.Scenario.recovery.Geo.max_level > 0);
  check_int "greedy never raises levels" 0 r.Scenario.greedy.Geo.max_level

let test_geo_no_void_greedy_ok () =
  (* Dense disk without a void: greedy alone should deliver. *)
  let inst = Geo.generate (rng 12) ~n:80 ~radius:0.3 () in
  let sources = [| (inst.Geo.dest + 1) mod inst.Geo.n |] in
  let r = Geo.run Geo.Greedy inst ~sources ~per_source:2 ~max_slots:500 ~qcap:4 in
  check_int "greedy delivers on a dense disk" r.Geo.injected r.Geo.delivered

(* {1 Scenario} *)

let test_scenario_low_rate_stable () =
  let spec = { Scenario.default_bp with nodes = 32; extra_edges = 32; slots = 128; rate = 2 } in
  let r = Scenario.run_backpressure spec in
  check_int "offered" (128 * 2) r.Scenario.offered;
  check_int "no drops" 0 r.Scenario.dropped;
  check_int "everything delivered" r.Scenario.injected r.Scenario.delivered;
  check_int "nothing remaining" 0 r.Scenario.remaining;
  check_bool "stable" false r.Scenario.diverged

let test_scenario_overload_diverges () =
  let spec =
    { Scenario.default_bp with nodes = 32; extra_edges = 32; slots = 128; rate = 64; qcap = 8 }
  in
  let r = Scenario.run_backpressure spec in
  check_bool "drops under overload" true (r.Scenario.dropped > 0);
  check_bool "diverged" true r.Scenario.diverged

let test_scenario_threshold () =
  let spec = { Scenario.default_bp with nodes = 32; extra_edges = 32; slots = 128; qcap = 8 } in
  let results = Scenario.sweep spec ~rates:[ 1; 2; 4; 48 ] in
  match Scenario.stability_threshold results with
  | None -> Alcotest.fail "expected a stability threshold"
  | Some r -> check_bool "threshold below the overload rate" true (r >= 1 && r < 48)

let test_scenario_churn_delivers () =
  let spec =
    { Scenario.default_bp with nodes = 32; extra_edges = 48; slots = 256; rate = 2; churn_every = 16 }
  in
  let r = Scenario.run_backpressure spec in
  check_int "churn: everything accepted is delivered" r.Scenario.injected r.Scenario.delivered;
  check_bool "churn forced reversals" true (r.Scenario.reversals >= 0)

let () =
  Alcotest.run "packet"
    [
      suite "fifo"
        [
          case "push/pop/bounds" test_fifo_basic;
          case "wraparound order" test_fifo_wraparound_order;
        ];
      suite "plane"
        [
          case "chain delivery, stretch 1" test_plane_chain_delivery;
          case "bad chain reverses then delivers" test_plane_bad_chain_reverses_and_delivers;
          case "full queue drops" test_plane_drops_when_full;
          case "zero-hop at destination" test_plane_inject_at_destination_is_zero_hop;
          case "random backpressure stays acyclic" test_plane_random_backpressure;
          case "churn strands then recovers" test_plane_churn_strands_then_recovers;
          case "engine height seeding" test_plane_engine_height_seeding;
        ];
      suite "geo"
        [
          case "connected generation" test_geo_generate_connected;
          case "void: recovery beats greedy" test_geo_void_recovery_beats_greedy;
          case "no void: greedy suffices" test_geo_no_void_greedy_ok;
        ];
      suite "scenario"
        [
          case "low rate is stable" test_scenario_low_rate_stable;
          case "overload diverges" test_scenario_overload_diverges;
          case "sweep finds a threshold" test_scenario_threshold;
          case "delivery under churn" test_scenario_churn_delivers;
        ];
    ]
