open Lr_graph
open Linkrev
open Helpers
module NP = Lr_routing.Naive_list_protocol

let test_reliable_converges () =
  for seed = 0 to 9 do
    let config = random_config ~seed 15 in
    let r = NP.run ~jitter:(rng (seed + 70), 3.0) config in
    check_bool "views consistent" true r.NP.view_consistent;
    check_bool "oriented" true r.NP.destination_oriented
  done

let test_reliable_work_equals_sequential () =
  (* The async run is just another schedule: same total work. *)
  for seed = 0 to 9 do
    let config = random_config ~seed 15 in
    let r = NP.run ~jitter:(rng (seed + 71), 3.0) config in
    let seq =
      Executor.run
        ~scheduler:(Lr_automata.Scheduler.first ())
        ~destination:config.Config.destination (One_step_pr.algo config)
    in
    check_int "work matches sequential PR" seq.Executor.total_node_steps
      r.NP.reversals
  done

let test_already_oriented_is_quiet () =
  let config = Config.of_instance (Generators.good_chain 8) in
  let r = NP.run config in
  check_int "no reversals" 0 r.NP.reversals;
  check_int "no messages" 0 r.NP.stats.Lr_sim.Network.sent

let test_loss_breaks_views () =
  match NP.find_inconsistency ~attempts:50 ~n:12 () with
  | Some (_seed, r) ->
      check_bool "failure is real" true
        ((not r.NP.view_consistent) || not r.NP.destination_oriented)
  | None ->
      Alcotest.fail "lossy naive protocol should fail on some seed"

let test_reliable_never_fails_the_hunt () =
  (* The same hunt with zero loss must come up empty. *)
  check_bool "no failure without loss" true
    (NP.find_inconsistency ~attempts:25 ~drop_rate:0.0 ~n:12 () = None)

let test_contrast_with_height_protocol () =
  (* On a seed where the naive protocol breaks under loss, the height
     protocol with beacons still converges. *)
  match NP.find_inconsistency ~attempts:50 ~n:12 () with
  | None -> Alcotest.fail "expected a lossy failure to contrast against"
  | Some (seed, _) ->
      let inst =
        Generators.random_connected_dag
          (Random.State.make [| 0x8a; seed |])
          ~n:12 ~extra_edges:12
      in
      let config = Config.of_instance inst in
      let module HP = Lr_routing.Height_protocol in
      let r =
        HP.run
          ~drop:(Random.State.make [| 0x8c; seed |], 0.3)
          ~beacon:5.0 ~until:3000.0 ~mode:HP.Partial config
      in
      check_bool "height protocol survives the same conditions" true
        r.HP.destination_oriented

let () =
  Alcotest.run "naive_list_protocol"
    [
      suite "naive_list_protocol"
        [
          case "reliable links converge" test_reliable_converges;
          case "reliable work equals sequential PR"
            test_reliable_work_equals_sequential;
          case "already-oriented networks stay quiet" test_already_oriented_is_quiet;
          case "message loss breaks the views" test_loss_breaks_views;
          case "no loss, no failure" test_reliable_never_fails_the_hunt;
          case "height protocol survives where lists fail"
            test_contrast_with_height_protocol;
        ];
    ]
