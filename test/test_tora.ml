open Lr_graph
open Helpers
module T = Lr_routing.Tora

let make ?(n = 20) ?(extra = 20) ?(seed = 0) () =
  T.create (random_config ~extra_edges:extra ~seed n)

let test_height_order () =
  let lvl tau oid r = { T.tau; oid; reflected = r } in
  let h ?(tau = 0) ?(oid = 0) ?(r = false) delta id =
    T.Height { level = lvl tau oid r; delta; id }
  in
  check_bool "tau dominates" true (T.compare_height (h 9 9) (h ~tau:1 0 0) < 0);
  check_bool "reflection raises" true
    (T.compare_height (h ~r:false 9 9) (h ~r:true 0 0) < 0);
  check_bool "delta orders within level" true (T.compare_height (h 1 9) (h 2 0) < 0);
  check_bool "null is extremal" true (T.compare_height (h 0 0) T.Null < 0)

let test_create_routes_everyone () =
  let t = make () in
  Alcotest.(check (float 1e-9)) "all routed" 1.0 (T.routed_fraction t);
  check_bool "acyclic" true (T.acyclic t)

let test_create_deltas_are_distances () =
  let config = bad_chain 6 in
  let t = T.create config in
  for u = 0 to 5 do
    match T.height t u with
    | T.Height { delta; _ } -> check_int "delta = hops" u delta
    | T.Null -> Alcotest.fail "chain is connected"
  done

let test_routes_descend () =
  let t = make ~seed:3 () in
  Node.Set.iter
    (fun u ->
      match T.route t u with
      | None -> Alcotest.failf "no route from %d" u
      | Some path ->
          check_int "ends at destination" (T.destination t)
            (List.nth path (List.length path - 1)))
    (Undirected.nodes (T.skeleton t))

let test_single_failure_repaired () =
  (* In a 2-connected-ish graph a single link failure must be repaired
     with routes restored for everyone. *)
  let t = make ~extra:25 ~seed:5 () in
  let e = Edge.Set.min_elt (Undirected.edges (T.skeleton t)) in
  let u, v = Edge.endpoints e in
  (match T.fail_link t u v with
  | T.Maintained _ -> ()
  | T.Partition_detected _ -> () (* possible if {u,v} was a bridge *));
  check_bool "still acyclic" true (T.acyclic t)

let test_failure_on_chain_partitions () =
  (* Cutting a chain must fire case 4 (partition detection) for the
     side away from the destination. *)
  let t = T.create (bad_chain 6) in
  match T.fail_link t 2 3 with
  | T.Partition_detected { cleared; _ } ->
      check_node_set "nodes 3..5 cleared" (Node.Set.of_list [ 3; 4; 5 ]) cleared;
      List.iter
        (fun u -> check_bool "cleared to Null" true (T.height t u = T.Null))
        [ 3; 4; 5 ];
      check_bool "destination side still routed" true (T.has_route t 2)
  | T.Maintained _ -> Alcotest.fail "expected partition detection"

let test_reconnect_after_partition () =
  let t = T.create (bad_chain 6) in
  (match T.fail_link t 2 3 with
  | T.Partition_detected _ -> ()
  | T.Maintained _ -> Alcotest.fail "expected partition");
  (match T.add_link t 0 4 with _ -> ());
  Alcotest.(check (float 1e-9)) "everyone routed again" 1.0 (T.routed_fraction t);
  check_bool "acyclic" true (T.acyclic t)

let test_reference_levels_created () =
  (* A repairable failure must make at least one node leave the zero
     reference level (case 1 fires at the failure point). *)
  let config =
    Linkrev.Config.make_exn
      (Digraph.of_directed_edges
         [ (1, 0); (2, 1); (3, 2); (3, 4); (4, 0) ])
      ~destination:0
  in
  let t = T.create config in
  match T.fail_link t 1 0 with
  | T.Maintained { reactions } ->
      check_bool "some reactions" true (reactions > 0);
      check_bool "node 1 re-routed via 2..4" true (T.has_route t 1);
      let nonzero_level =
        List.exists
          (fun u ->
            match T.height t u with
            | T.Height { level; _ } -> level.T.tau > 0
            | T.Null -> false)
          [ 1; 2; 3 ]
      in
      check_bool "a new reference level exists" true nonzero_level
  | T.Partition_detected _ -> Alcotest.fail "graph remains connected"

let test_churn_keeps_safety () =
  let t = make ~n:25 ~extra:25 ~seed:9 () in
  let r = rng 123 in
  for _ = 1 to 60 do
    let edges = Edge.Set.elements (Undirected.edges (T.skeleton t)) in
    if edges <> [] then begin
      let e = List.nth edges (Random.State.int r (List.length edges)) in
      let u, v = Edge.endpoints e in
      (match T.fail_link t u v with
      | T.Maintained _ -> ()
      | T.Partition_detected { cleared; _ } ->
          (* heal with a fresh link into the cleared region *)
          (match Node.Set.choose_opt cleared with
          | Some w when not (Undirected.mem_edge (T.skeleton t) w (T.destination t))
            ->
              ignore (T.add_link t w (T.destination t))
          | _ -> ()));
      check_bool "acyclic through churn" true (T.acyclic t)
    end
  done

let test_fail_absent_link_rejected () =
  let t = T.create (diamond ()) in
  check_bool "raises" true
    (try ignore (T.fail_link t 1 2); false with Invalid_argument _ -> true)

let test_add_existing_link_rejected () =
  let t = T.create (diamond ()) in
  check_bool "raises" true
    (try ignore (T.add_link t 0 1); false with Invalid_argument _ -> true)

let test_pp_height () =
  let s = Format.asprintf "%a" T.pp_height T.Null in
  Alcotest.(check string) "null" "null" s

let () =
  Alcotest.run "tora"
    [
      suite "tora"
        [
          case "height ordering" test_height_order;
          case "creation routes everyone" test_create_routes_everyone;
          case "creation deltas are hop counts" test_create_deltas_are_distances;
          case "routes descend to the destination" test_routes_descend;
          case "single failures repaired" test_single_failure_repaired;
          case "bridge failure detected as partition"
            test_failure_on_chain_partitions;
          case "reconnection restores routes" test_reconnect_after_partition;
          case "failures spawn reference levels" test_reference_levels_created;
          case "safety under churn" test_churn_keeps_safety;
          case "absent links rejected" test_fail_absent_link_rejected;
          case "duplicate links rejected" test_add_existing_link_rejected;
          case "height printing" test_pp_height;
        ];
    ]
