(* The lint rules, exercised against the deliberately broken modules in
   test/lint_fixtures/ and against the real library tree.

   Runs from _build/default/test, so the dune context root (where both
   the copied sources and the .cmt files live) is [".."]. *)

module Rule = Lr_lint.Rule
module Lint = Lr_lint.Lint
module Diagnostic = Lr_lint.Diagnostic
module Allowlist = Lr_lint.Allowlist
module Baseline = Lr_lint.Baseline
module Json = Lr_lint.Json

let context_root =
  if Sys.file_exists "../test/lint_fixtures" then ".."
  else Filename.concat (Sys.getcwd ()) "_build/default"

let config ?(dirs = [ "test/lint_fixtures" ]) ?(rules = Rule.all)
    ?(allow = Allowlist.empty) () =
  {
    (Lint.default_config ~root:context_root) with
    Lint.build_dir = context_root;
    dirs;
    capture_dirs = [];
    rules;
    allow;
  }

let run cfg =
  match Lint.run cfg with
  | Ok r -> r.Lint.diagnostics
  | Error e -> Alcotest.failf "lint run failed: %s" e

let locs rule diags =
  List.filter_map
    (fun (d : Diagnostic.t) ->
      if Rule.equal d.Diagnostic.rule rule then
        Some (Filename.basename d.Diagnostic.file, d.Diagnostic.line)
      else None)
    diags

let loc_list = Alcotest.(list (pair string int))

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.equal (String.sub s i m) sub || at (i + 1)) in
  at 0

(* {1 The rules} *)

let test_l1_poly_ops () =
  let diags = run (config ~rules:[ Rule.L1 ] ()) in
  Alcotest.check loc_list "L1 fires exactly on the five poly applications"
    [
      ("fix_poly.ml", 5);
      ("fix_poly.ml", 6);
      ("fix_poly.ml", 7);
      ("fix_poly.ml", 8);
      ("fix_poly.ml", 9);
    ]
    (locs Rule.L1 diags);
  List.iteri
    (fun i op ->
      let d = List.nth diags i in
      let msg = d.Diagnostic.message in
      if not (contains ~sub:op msg) then
        Alcotest.failf "finding %d should mention %s: %s" i op msg)
    [ "="; "compare"; "List.mem"; "Hashtbl.hash"; "max" ]

let test_l2_race_surface () =
  let diags = run (config ~rules:[ Rule.L2 ] ()) in
  Alcotest.check loc_list
    "L2 fires on every toplevel mutable of the Pool-calling unit"
    [
      ("fix_races.ml", 4);
      ("fix_races.ml", 5);
      ("fix_races.ml", 9);
      ("fix_races.ml", 10);
      ("fix_races.ml", 13);
    ]
    (locs Rule.L2 diags)

let test_l2_allowlist () =
  let allow =
    match
      Allowlist.of_lines
        [
          "# serialized by design";
          "L2 Lint_fixtures.Fix_races.allowed_cache";
        ]
    with
    | Ok a -> a
    | Error e -> Alcotest.failf "allowlist parse: %s" e
  in
  let diags = run (config ~rules:[ Rule.L2 ] ~allow ()) in
  Alcotest.check loc_list "the allowlisted binding no longer fires"
    [
      ("fix_races.ml", 4);
      ("fix_races.ml", 5);
      ("fix_races.ml", 9);
      ("fix_races.ml", 13);
    ]
    (locs Rule.L2 diags)

let test_l2_wildcard_allowlist () =
  let allow =
    match Allowlist.of_lines [ "L2 Lint_fixtures.Fix_races.*" ] with
    | Ok a -> a
    | Error e -> Alcotest.failf "allowlist parse: %s" e
  in
  let diags = run (config ~rules:[ Rule.L2 ] ~allow ()) in
  Alcotest.check loc_list "a trailing * suppresses the whole unit" []
    (locs Rule.L2 diags)

let test_l3_missing_mli () =
  let diags = run (config ~rules:[ Rule.L3 ] ()) in
  Alcotest.check loc_list "only the module without an .mli fires"
    [ ("fix_no_mli.ml", 1) ]
    (locs Rule.L3 diags)

let test_l4_forbidden () =
  let diags = run (config ~rules:[ Rule.L4 ] ()) in
  Alcotest.check loc_list
    "L4 fires on stdout printing, Obj.magic and bare exit"
    [
      ("fix_forbidden.ml", 4);
      ("fix_forbidden.ml", 5);
      ("fix_forbidden.ml", 7);
      ("fix_forbidden.ml", 8);
    ]
    (locs Rule.L4 diags)

(* {1 Driver behaviour} *)

let test_rules_filter () =
  let all = run (config ()) in
  Alcotest.(check int) "all four rules together" 15 (List.length all);
  let some = run (config ~rules:[ Rule.L1; Rule.L3 ] ()) in
  Alcotest.(check int) "a subset runs only those rules" 6 (List.length some);
  List.iter
    (fun (d : Diagnostic.t) ->
      match d.Diagnostic.rule with
      | Rule.L1 | Rule.L3 -> ()
      | r -> Alcotest.failf "unexpected rule %s" (Rule.id r))
    some

let with_tmp f =
  let path = Filename.temp_file "lint_baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_baseline_roundtrip () =
  with_tmp (fun path ->
      let all = run (config ()) in
      Baseline.save path all;
      let b =
        match Baseline.load path with
        | Ok b -> b
        | Error e -> Alcotest.failf "baseline load: %s" e
      in
      let kept, suppressed = Baseline.apply b all in
      Alcotest.(check int) "a full baseline suppresses everything" 0
        (List.length kept);
      Alcotest.(check int) "all findings accounted for" 15 suppressed)

let test_baseline_redetects () =
  with_tmp (fun path ->
      let all = run (config ()) in
      (* Baseline everything except one finding: that one must come
         back, everything else stays suppressed. *)
      Baseline.save path (List.tl all);
      let b =
        match Baseline.load path with
        | Ok b -> b
        | Error e -> Alcotest.failf "baseline load: %s" e
      in
      let kept, suppressed = Baseline.apply b all in
      Alcotest.(check int) "one finding re-detected" 1 (List.length kept);
      Alcotest.(check int) "the rest stays suppressed" 14 suppressed;
      let reappeared = List.hd kept and dropped = List.hd all in
      Alcotest.(check string) "and it is the un-baselined one"
        dropped.Diagnostic.key reappeared.Diagnostic.key)

let test_report_json_roundtrip () =
  let diags = run (config ()) in
  let doc = Lint.report_json ~units:4 ~suppressed:0 diags in
  match Json.parse (Json.to_string doc) with
  | Error e -> Alcotest.failf "report JSON does not parse back: %s" e
  | Ok doc' -> (
      match Option.bind (Json.member "findings" doc') Json.to_list with
      | Some items ->
          Alcotest.(check int) "findings survive the roundtrip" 15
            (List.length items)
      | None -> Alcotest.fail "findings array missing")

(* {1 The real tree} *)

let test_lib_is_clean () =
  let cfg =
    {
      (Lint.default_config ~root:context_root) with
      Lint.build_dir = context_root;
    }
  in
  let report =
    match Lint.run cfg with
    | Ok r -> r
    | Error e -> Alcotest.failf "lint run failed: %s" e
  in
  List.iter
    (fun d -> Printf.eprintf "unexpected: %s\n" (Diagnostic.to_human d))
    report.Lint.diagnostics;
  Alcotest.(check int) "lib/ lints clean with no baseline" 0
    (List.length report.Lint.diagnostics)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "L1 poly ops" `Quick test_l1_poly_ops;
          Alcotest.test_case "L2 race surface" `Quick test_l2_race_surface;
          Alcotest.test_case "L2 allowlist" `Quick test_l2_allowlist;
          Alcotest.test_case "L2 wildcard allowlist" `Quick
            test_l2_wildcard_allowlist;
          Alcotest.test_case "L3 missing mli" `Quick test_l3_missing_mli;
          Alcotest.test_case "L4 forbidden" `Quick test_l4_forbidden;
        ] );
      ( "driver",
        [
          Alcotest.test_case "rules filter" `Quick test_rules_filter;
          Alcotest.test_case "baseline roundtrip" `Quick
            test_baseline_roundtrip;
          Alcotest.test_case "baseline re-detects" `Quick
            test_baseline_redetects;
          Alcotest.test_case "report JSON roundtrip" `Quick
            test_report_json_roundtrip;
        ] );
      ( "tree",
        [ Alcotest.test_case "lib/ is lint-clean" `Quick test_lib_is_clean ] );
    ]
