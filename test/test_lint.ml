(* The lint rules, exercised against the deliberately broken modules in
   test/lint_fixtures/ and against the real library tree.

   Runs from _build/default/test, so the dune context root (where both
   the copied sources and the .cmt files live) is [".."]. *)

module Rule = Lr_lint.Rule
module Lint = Lr_lint.Lint
module Diagnostic = Lr_lint.Diagnostic
module Allowlist = Lr_lint.Allowlist
module Baseline = Lr_lint.Baseline
module Json = Lr_lint.Json
module Domain_safety = Lr_lint.Domain_safety

let context_root =
  if Sys.file_exists "../test/lint_fixtures" then ".."
  else Filename.concat (Sys.getcwd ()) "_build/default"

let config ?(dirs = [ "test/lint_fixtures" ]) ?(rules = Rule.all)
    ?(allow = Allowlist.empty) () =
  {
    (Lint.default_config ~root:context_root) with
    Lint.build_dir = context_root;
    dirs;
    capture_dirs = [];
    rules;
    allow;
  }

let run_report cfg =
  match Lint.run cfg with
  | Ok r -> r
  | Error e -> Alcotest.failf "lint run failed: %s" e

let run cfg = (run_report cfg).Lint.diagnostics

let locs rule diags =
  List.filter_map
    (fun (d : Diagnostic.t) ->
      if Rule.equal d.Diagnostic.rule rule then
        Some (Filename.basename d.Diagnostic.file, d.Diagnostic.line)
      else None)
    diags

let loc_list = Alcotest.(list (pair string int))

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.equal (String.sub s i m) sub || at (i + 1)) in
  at 0

(* {1 The rules} *)

let test_l1_poly_ops () =
  let diags = run (config ~rules:[ Rule.L1 ] ()) in
  Alcotest.check loc_list "L1 fires exactly on the five poly applications"
    [
      ("fix_poly.ml", 5);
      ("fix_poly.ml", 6);
      ("fix_poly.ml", 7);
      ("fix_poly.ml", 8);
      ("fix_poly.ml", 9);
    ]
    (locs Rule.L1 diags);
  List.iteri
    (fun i op ->
      let d = List.nth diags i in
      let msg = d.Diagnostic.message in
      if not (contains ~sub:op msg) then
        Alcotest.failf "finding %d should mention %s: %s" i op msg)
    [ "="; "compare"; "List.mem"; "Hashtbl.hash"; "max" ]

let test_l2_race_surface () =
  let diags = run (config ~rules:[ Rule.L2 ] ()) in
  Alcotest.check loc_list
    "L2 fires on every toplevel mutable of the Pool-calling units"
    [
      ("fix_domain_race.ml", 8);
      ("fix_domain_race.ml", 9);
      ("fix_domain_race.ml", 10);
      ("fix_races.ml", 4);
      ("fix_races.ml", 5);
      ("fix_races.ml", 9);
      ("fix_races.ml", 10);
      ("fix_races.ml", 13);
    ]
    (locs Rule.L2 diags)

let test_l2_allowlist () =
  let allow =
    match
      Allowlist.of_lines
        [
          "# serialized by design";
          "L2 Lint_fixtures.Fix_races.allowed_cache";
        ]
    with
    | Ok a -> a
    | Error e -> Alcotest.failf "allowlist parse: %s" e
  in
  let diags = run (config ~rules:[ Rule.L2 ] ~allow ()) in
  Alcotest.check loc_list "the allowlisted binding no longer fires"
    [
      ("fix_domain_race.ml", 8);
      ("fix_domain_race.ml", 9);
      ("fix_domain_race.ml", 10);
      ("fix_races.ml", 4);
      ("fix_races.ml", 5);
      ("fix_races.ml", 9);
      ("fix_races.ml", 13);
    ]
    (locs Rule.L2 diags)

let test_l2_wildcard_allowlist () =
  let allow =
    match Allowlist.of_lines [ "L2 Lint_fixtures.Fix_races.*" ] with
    | Ok a -> a
    | Error e -> Alcotest.failf "allowlist parse: %s" e
  in
  let diags = run (config ~rules:[ Rule.L2 ] ~allow ()) in
  Alcotest.check loc_list "a trailing * suppresses the whole unit"
    [
      ("fix_domain_race.ml", 8);
      ("fix_domain_race.ml", 9);
      ("fix_domain_race.ml", 10);
    ]
    (locs Rule.L2 diags)

let test_l3_missing_mli () =
  let diags = run (config ~rules:[ Rule.L3 ] ()) in
  Alcotest.check loc_list "only the module without an .mli fires"
    [ ("fix_no_mli.ml", 1) ]
    (locs Rule.L3 diags)

let test_l4_forbidden () =
  let diags = run (config ~rules:[ Rule.L4 ] ()) in
  Alcotest.check loc_list
    "L4 fires on stdout printing, Obj.magic and bare exit"
    [
      ("fix_forbidden.ml", 4);
      ("fix_forbidden.ml", 5);
      ("fix_forbidden.ml", 7);
      ("fix_forbidden.ml", 8);
    ]
    (locs Rule.L4 diags)

(* {1 The domain-safety rules (interprocedural)} *)

let message rule diags =
  match
    List.find_opt (fun (d : Diagnostic.t) -> Rule.equal d.Diagnostic.rule rule)
      diags
  with
  | Some d -> d.Diagnostic.message
  | None -> Alcotest.failf "no %s finding" (Rule.id rule)

let test_l5_race_candidates () =
  let diags = run (config ~rules:[ Rule.L5 ] ()) in
  Alcotest.check loc_list
    "L5 fires on the helper write and the three closure writes"
    [
      ("fix_domain_race.ml", 11);
      ("fix_races.ml", 21);
      ("fix_races.ml", 22);
      ("fix_races.ml", 23);
    ]
    (locs Rule.L5 diags);
  let msg = message Rule.L5 diags in
  if not (contains ~sub:"Fix_domain_race.record" msg) then
    Alcotest.failf "L5 should name the writing function: %s" msg

let test_l5_owner_annotation () =
  (* [record_owned] races exactly like [record] but carries an
     lr:owner annotation: no finding, one counted suppression, one
     owner boundary. *)
  let report = run_report (config ~rules:[ Rule.L5 ] ()) in
  List.iter
    (fun (d : Diagnostic.t) ->
      if contains ~sub:"record_owned" d.Diagnostic.message then
        Alcotest.failf "annotated writer must stay quiet: %s"
          d.Diagnostic.message)
    report.Lint.diagnostics;
  match report.Lint.safety with
  | None -> Alcotest.fail "safety stats missing from the report"
  | Some s ->
      Alcotest.(check int) "the suppression is counted, not silent" 1
        s.Lint.stats.Domain_safety.owner_suppressed;
      Alcotest.(check int) "the annotation is an owner boundary" 1
        s.Lint.stats.Domain_safety.boundaries

let test_l6_blocking_in_resident_loop () =
  let diags = run (config ~rules:[ Rule.L6 ] ()) in
  Alcotest.check loc_list "L6 fires on the sleep reached through [nap]"
    [ ("fix_escape.ml", 7) ]
    (locs Rule.L6 diags);
  let msg = message Rule.L6 diags in
  List.iter
    (fun sub ->
      if not (contains ~sub msg) then
        Alcotest.failf "L6 message should mention %s: %s" sub msg)
    [ "Unix.sleepf"; "Fix_escape.nap" ]

let test_l7_escaping_exception () =
  let diags = run (config ~rules:[ Rule.L7 ] ()) in
  Alcotest.check loc_list "L7 fires on the unhandled raise in [boom]"
    [ ("fix_escape.ml", 6) ]
    (locs Rule.L7 diags);
  let msg = message Rule.L7 diags in
  List.iter
    (fun sub ->
      if not (contains ~sub msg) then
        Alcotest.failf "L7 message should mention %s: %s" sub msg)
    [ "failwith"; "Fix_escape.boom"; "Fix_escape.spin" ];
  (* The sibling loop wraps the same call in try/with: its root must
     not be blamed. *)
  List.iter
    (fun (d : Diagnostic.t) ->
      if contains ~sub:"careful" d.Diagnostic.message then
        Alcotest.failf "handled raise must stay quiet: %s"
          d.Diagnostic.message)
    diags

let test_l8_single_domain_atomic () =
  let diags = run (config ~rules:[ Rule.L8 ] ()) in
  Alcotest.check loc_list "L8 fires on the atomic that never crosses"
    [ ("fix_domain_race.ml", 12) ]
    (locs Rule.L8 diags);
  let msg = message Rule.L8 diags in
  if not (contains ~sub:"lonely" msg) then
    Alcotest.failf "L8 should name the atomic: %s" msg

(* {1 Driver behaviour} *)

let test_rules_filter () =
  let all = run (config ()) in
  Alcotest.(check int) "all eight rules together" 25 (List.length all);
  let some = run (config ~rules:[ Rule.L1; Rule.L3 ] ()) in
  Alcotest.(check int) "a subset runs only those rules" 6 (List.length some);
  List.iter
    (fun (d : Diagnostic.t) ->
      match d.Diagnostic.rule with
      | Rule.L1 | Rule.L3 -> ()
      | r -> Alcotest.failf "unexpected rule %s" (Rule.id r))
    some

let with_tmp f =
  let path = Filename.temp_file "lint_baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_baseline_roundtrip () =
  with_tmp (fun path ->
      let all = run (config ()) in
      Baseline.save path all;
      let b =
        match Baseline.load path with
        | Ok b -> b
        | Error e -> Alcotest.failf "baseline load: %s" e
      in
      let kept, suppressed = Baseline.apply b all in
      Alcotest.(check int) "a full baseline suppresses everything" 0
        (List.length kept);
      Alcotest.(check int) "all findings accounted for" 25 suppressed)

let test_baseline_redetects () =
  with_tmp (fun path ->
      let all = run (config ()) in
      (* Baseline everything except one finding: that one must come
         back, everything else stays suppressed. *)
      Baseline.save path (List.tl all);
      let b =
        match Baseline.load path with
        | Ok b -> b
        | Error e -> Alcotest.failf "baseline load: %s" e
      in
      let kept, suppressed = Baseline.apply b all in
      Alcotest.(check int) "one finding re-detected" 1 (List.length kept);
      Alcotest.(check int) "the rest stays suppressed" 24 suppressed;
      let reappeared = List.hd kept and dropped = List.hd all in
      Alcotest.(check string) "and it is the un-baselined one"
        dropped.Diagnostic.key reappeared.Diagnostic.key)

let test_report_json_roundtrip () =
  let diags = run (config ()) in
  let doc = Lint.report_json ~units:4 ~suppressed:0 ~safety:None diags in
  match Json.parse (Json.to_string doc) with
  | Error e -> Alcotest.failf "report JSON does not parse back: %s" e
  | Ok doc' -> (
      match Option.bind (Json.member "findings" doc') Json.to_list with
      | Some items ->
          Alcotest.(check int) "findings survive the roundtrip" 25
            (List.length items)
      | None -> Alcotest.fail "findings array missing")

let test_report_json_safety_section () =
  let report = run_report (config ~rules:Rule.all ()) in
  let doc =
    Lint.report_json ~units:6 ~suppressed:0 ~safety:report.Lint.safety
      report.Lint.diagnostics
  in
  match Json.parse (Json.to_string doc) with
  | Error e -> Alcotest.failf "report JSON does not parse back: %s" e
  | Ok doc' -> (
      match Json.member "domain_safety" doc' with
      | None -> Alcotest.fail "domain_safety section missing"
      | Some ds ->
          let int_field name =
            match Option.bind (Json.member name ds) Json.to_int with
            | Some v -> v
            | None -> Alcotest.failf "domain_safety.%s missing" name
          in
          if int_field "nodes" <= 0 then Alcotest.fail "no call-graph nodes";
          if int_field "roots" <= 0 then Alcotest.fail "no roots";
          Alcotest.(check int) "one owner suppression reported" 1
            (int_field "owner_suppressed");
          let rules =
            match Option.bind (Json.member "rules" ds) Json.to_list with
            | Some l -> l
            | None -> Alcotest.fail "domain_safety.rules missing"
          in
          Alcotest.(check int) "one timing entry per safety rule" 4
            (List.length rules);
          let per_rule =
            List.map
              (fun r ->
                ( Option.bind (Json.member "rule" r) Json.to_str,
                  Option.bind (Json.member "findings" r) Json.to_int ))
              rules
          in
          Alcotest.(check (list (pair (option string) (option int))))
            "per-rule finding counts"
            [
              (Some "L5", Some 4);
              (Some "L6", Some 1);
              (Some "L7", Some 1);
              (Some "L8", Some 1);
            ]
            per_rule)

(* {1 JSON corners} *)

let test_json_string_escapes () =
  let doc = Json.Obj [ ("k", Json.Str "a\"b\\c\nd\te") ] in
  match Json.parse (Json.to_string doc) with
  | Error e -> Alcotest.failf "escaped string does not parse back: %s" e
  | Ok doc' ->
      Alcotest.(check (option string))
        "quotes, backslashes and controls survive"
        (Some "a\"b\\c\nd\te")
        (Option.bind (Json.member "k" doc') Json.to_str)

let test_json_nested_arrays () =
  let doc =
    Json.Arr
      [
        Json.Arr [ Json.Int 1; Json.Arr [ Json.Int 2; Json.Arr [] ] ];
        Json.Int 3;
      ]
  in
  match Json.parse (Json.to_string doc) with
  | Error e -> Alcotest.failf "nested arrays do not parse back: %s" e
  | Ok doc' ->
      if not (doc = doc') then Alcotest.fail "nested array shape changed"

let test_json_truncated () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "truncated input %S should not parse" s
      | Error _ -> ())
    [ "{\"a\":"; "[1, 2"; "\"unterminated"; "{\"a\" 1}"; "[1,]"; "" ]

let test_json_trailing_garbage () =
  match Json.parse "{\"a\": 1} x" with
  | Ok _ -> Alcotest.fail "trailing garbage should not parse"
  | Error _ -> ()

(* {1 The real tree} *)

let test_lib_is_clean () =
  let cfg =
    {
      (Lint.default_config ~root:context_root) with
      Lint.build_dir = context_root;
    }
  in
  let report =
    match Lint.run cfg with
    | Ok r -> r
    | Error e -> Alcotest.failf "lint run failed: %s" e
  in
  List.iter
    (fun d -> Printf.eprintf "unexpected: %s\n" (Diagnostic.to_human d))
    report.Lint.diagnostics;
  Alcotest.(check int) "lib/ lints clean with no baseline" 0
    (List.length report.Lint.diagnostics)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "L1 poly ops" `Quick test_l1_poly_ops;
          Alcotest.test_case "L2 race surface" `Quick test_l2_race_surface;
          Alcotest.test_case "L2 allowlist" `Quick test_l2_allowlist;
          Alcotest.test_case "L2 wildcard allowlist" `Quick
            test_l2_wildcard_allowlist;
          Alcotest.test_case "L3 missing mli" `Quick test_l3_missing_mli;
          Alcotest.test_case "L4 forbidden" `Quick test_l4_forbidden;
        ] );
      ( "domain safety",
        [
          Alcotest.test_case "L5 race candidates" `Quick
            test_l5_race_candidates;
          Alcotest.test_case "L5 owner annotation" `Quick
            test_l5_owner_annotation;
          Alcotest.test_case "L6 blocking in resident loop" `Quick
            test_l6_blocking_in_resident_loop;
          Alcotest.test_case "L7 escaping exception" `Quick
            test_l7_escaping_exception;
          Alcotest.test_case "L8 single-domain atomic" `Quick
            test_l8_single_domain_atomic;
        ] );
      ( "driver",
        [
          Alcotest.test_case "rules filter" `Quick test_rules_filter;
          Alcotest.test_case "baseline roundtrip" `Quick
            test_baseline_roundtrip;
          Alcotest.test_case "baseline re-detects" `Quick
            test_baseline_redetects;
          Alcotest.test_case "report JSON roundtrip" `Quick
            test_report_json_roundtrip;
          Alcotest.test_case "report JSON safety section" `Quick
            test_report_json_safety_section;
        ] );
      ( "json",
        [
          Alcotest.test_case "string escapes" `Quick test_json_string_escapes;
          Alcotest.test_case "nested arrays" `Quick test_json_nested_arrays;
          Alcotest.test_case "truncated input" `Quick test_json_truncated;
          Alcotest.test_case "trailing garbage" `Quick
            test_json_trailing_garbage;
        ] );
      ( "tree",
        [ Alcotest.test_case "lib/ is lint-clean" `Quick test_lib_is_clean ] );
    ]
