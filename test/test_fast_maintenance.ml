(* Differential tests of the fast maintenance engine against the
   persistent reference: identical work, heights order, orientation,
   routes and partition reports under seeded churn — plus the next-hop
   cache contract (hits when quiescent, invalidation on churn, never a
   stale path; staleness is also recomputed inside [FM.consistent]). *)

open Lr_graph
open Linkrev
open Helpers
module M = Lr_routing.Maintenance
module FM = Lr_routing.Fast_maintenance

type sys = { m : M.t; f : FM.t; n : int }

let make rule config =
  {
    m = M.create rule config;
    f = FM.create rule config;
    n = Digraph.num_nodes config.Config.initial;
  }

let route_testable = Alcotest.(option (list int))

(* Full-state agreement: work, orientation, height order, routes. *)
let agree what sys =
  check_int (what ^ ": total work") (M.total_work sys.m) (FM.total_work sys.f);
  Alcotest.check digraph_testable
    (what ^ ": oriented graph")
    (M.graph sys.m) (FM.graph sys.f);
  for u = 0 to sys.n - 1 do
    for v = 0 to sys.n - 1 do
      if u <> v then
        check_int
          (Printf.sprintf "%s: height order %d/%d" what u v)
          (compare (M.compare_heights sys.m u v) 0)
          (compare (FM.compare_heights sys.f u v) 0)
    done;
    Alcotest.check route_testable
      (Printf.sprintf "%s: route from %d" what u)
      (M.route sys.m u) (FM.route sys.f u)
  done;
  check_bool
    (what ^ ": destination oriented")
    (M.is_destination_oriented sys.m)
    (FM.is_destination_oriented sys.f);
  check_bool (what ^ ": fast internals consistent") true (FM.consistent sys.f)

let check_result what rm rf =
  match (rm, rf) with
  | ( M.Stabilized { node_steps = s1; affected = a1 },
      M.Stabilized { node_steps = s2; affected = a2 } ) ->
      check_int (what ^ ": node steps") s1 s2;
      check_node_set (what ^ ": affected") a1 a2
  | M.Partitioned a, M.Partitioned b -> check_node_set (what ^ ": lost") a b
  | M.Stabilized _, M.Partitioned _ ->
      Alcotest.failf "%s: reference stabilized, fast partitioned" what
  | M.Partitioned _, M.Stabilized _ ->
      Alcotest.failf "%s: reference partitioned, fast stabilized" what

(* Seeded churn in lockstep.  Every event is applied to both engines
   and the full state compared; node failures every 23rd event keep
   partitions and reconnections frequent. *)
let churn ~rule ~seed ~events ~extra_edges n =
  let config = random_config ~extra_edges ~seed n in
  let sys = make rule config in
  agree "create" sys;
  let rand = rng (seed + 77) in
  for k = 1 to events do
    let u = Random.State.int rand n and v = Random.State.int rand n in
    if u <> v then begin
      let what = Printf.sprintf "event %d (%d,%d)" k u v in
      if k mod 23 = 0 then begin
        let victim = if u = M.destination sys.m then v else u in
        check_result what (M.fail_node sys.m victim) (FM.fail_node sys.f victim)
      end
      else if Digraph.mem_edge (M.graph sys.m) u v then
        check_result what (M.fail_link sys.m u v) (FM.fail_link sys.f u v)
      else begin
        M.add_link sys.m u v;
        FM.add_link sys.f u v
      end;
      agree what sys
    end
  done

let test_lockstep_churn_pr () =
  churn ~rule:M.Partial_reversal ~seed:11 ~events:160 ~extra_edges:12 14

let test_lockstep_churn_fr () =
  churn ~rule:M.Full_reversal ~seed:12 ~events:160 ~extra_edges:12 14

let test_lockstep_churn_sparse () =
  (* A near-tree graph partitions on almost every removal, exercising
     the incremental component membership and the absorb-side sink
     scan on every reconnection. *)
  churn ~rule:M.Partial_reversal ~seed:13 ~events:200 ~extra_edges:1 12

(* A partitioned side accumulates sinks the reference only repairs
   after reconnection (its component scan sees them then); the fast
   engine must find them via the absorb-side scan, not the worklist. *)
let test_reconnection_finds_stale_sinks () =
  let config =
    Config.make_exn
      (Digraph.of_directed_edges [ (0, 1); (1, 2); (2, 3) ])
      ~destination:0
  in
  List.iter
    (fun rule ->
      let sys = make rule config in
      check_result "cut 1-2" (M.fail_link sys.m 1 2) (FM.fail_link sys.f 1 2);
      agree "after cut" sys;
      (* Churn inside the lost side: drop 2-3, then restore it.  The
         side is not stabilized, so this leaves sinks pending there. *)
      check_result "cut 2-3" (M.fail_link sys.m 2 3) (FM.fail_link sys.f 2 3);
      M.add_link sys.m 2 3;
      FM.add_link sys.f 2 3;
      agree "lost side churned" sys;
      (* Reconnect: both engines must now repair the absorbed side. *)
      M.add_link sys.m 1 2;
      FM.add_link sys.f 1 2;
      agree "after reconnection" sys;
      check_bool "oriented after reconnection" true
        (FM.is_destination_oriented sys.f))
    [ M.Partial_reversal; M.Full_reversal ]

let test_errors_match_reference () =
  let config = random_config ~seed:5 10 in
  let sys = make M.Partial_reversal config in
  let raises f = try f (); false with Invalid_argument _ -> true in
  let some_edge =
    match Digraph.directed_edges (M.graph sys.m) with
    | (u, v) :: _ -> (u, v)
    | [] -> Alcotest.fail "graph has no edges"
  in
  let u, v = some_edge in
  check_bool "duplicate add rejected" true
    (raises (fun () -> FM.add_link sys.f u v));
  check_bool "self-loop add rejected" true
    (raises (fun () -> FM.add_link sys.f 3 3));
  check_bool "out-of-range add rejected" true
    (raises (fun () -> FM.add_link sys.f 0 99));
  check_bool "absent fail_link rejected" true
    (raises (fun () ->
         ignore (FM.fail_link sys.f 99 0)));
  check_bool "destination fail_node rejected" true
    (raises (fun () -> ignore (FM.fail_node sys.f (FM.destination sys.f))));
  agree "after rejected calls" sys

(* {1 Component index} *)

(* Pinned partition→heal cycles against the reference oracle — the
   lazy-split soft spot: a cut only dirties the detached class, churn
   inside the lost side piles up pending sinks in its bag, and the
   heal must re-identify exactly the reattached side and requeue its
   sinks.  Every phase asserts full byte-identity ([agree] compares
   work, graph, heights, routes) plus [FM.consistent], under both
   rules. *)
let test_partition_heal_pinned () =
  (* Two branches off the destination with a cross link:
     0 -> 1 -> 2 -> 3 and 0 -> 4 -> 5 -> 6, plus 3 -> 6. *)
  let config =
    Config.make_exn
      (Digraph.of_directed_edges
         [ (0, 1); (1, 2); (2, 3); (0, 4); (4, 5); (5, 6); (3, 6) ])
      ~destination:0
  in
  List.iter
    (fun rule ->
      let sys = make rule config in
      check_bool "engine under test is the union-find index" true
        (FM.index sys.f = FM.Uf);
      agree "create" sys;
      (* Phase 1: sever the whole right branch (both entry points). *)
      check_result "cut 0-4" (M.fail_link sys.m 0 4) (FM.fail_link sys.f 0 4);
      agree "right branch dangling" sys;
      check_result "cut 3-6" (M.fail_link sys.m 3 6) (FM.fail_link sys.f 3 6);
      agree "right branch lost" sys;
      check_bool "4 detached" false (FM.in_dest_component sys.f 4);
      check_bool "1 still in" true (FM.in_dest_component sys.f 1);
      check_int "component shrank to the left branch" 4
        (FM.component_size sys.f);
      (* Phase 2: churn inside the lost side — splits and re-adds that
         only the lazy index sees as dirt, leaving pending sinks in
         the class bag. *)
      check_result "cut 5-6" (M.fail_link sys.m 5 6) (FM.fail_link sys.f 5 6);
      M.add_link sys.m 5 6;
      FM.add_link sys.f 5 6;
      check_result "cut 4-5" (M.fail_link sys.m 4 5) (FM.fail_link sys.f 4 5);
      agree "lost side churned" sys;
      (* Phase 3: heal deepest-first, so each absorb drags a dirty
         class back through re-identification. *)
      M.add_link sys.m 3 6;
      FM.add_link sys.f 3 6;
      agree "6 healed" sys;
      check_bool "6 rejoined" true (FM.in_dest_component sys.f 6);
      M.add_link sys.m 4 5;
      FM.add_link sys.f 4 5;
      agree "4-5 healed" sys;
      check_int "everyone back" 7 (FM.component_size sys.f);
      (* Phase 4: a node failure and its aftermath on the healed graph. *)
      check_result "fail node 5" (M.fail_node sys.m 5) (FM.fail_node sys.f 5);
      agree "node failure" sys;
      M.add_link sys.m 5 6;
      FM.add_link sys.f 5 6;
      agree "failed node rewired" sys;
      check_bool "oriented at the end" true
        (FM.is_destination_oriented sys.f))
    [ M.Partial_reversal; M.Full_reversal ]

(* The union-find index against the eager rescan baseline it
   replaced, in lockstep under seeded churn: responses, counters,
   fingerprints and both engines' own invariants must match at every
   event. *)
let test_scan_uf_differential () =
  List.iter
    (fun (rule, seed) ->
      let config = random_config ~extra_edges:2 ~seed 16 in
      let scan = FM.create ~index:FM.Scan rule config in
      let uf = FM.create ~index:FM.Uf rule config in
      let rand = rng (seed + 101) in
      let both what f =
        let a = f scan and b = f uf in
        check_result what a b
      in
      let settled what =
        check_int (what ^ ": total work") (FM.total_work scan)
          (FM.total_work uf);
        check_int (what ^ ": component size") (FM.component_size scan)
          (FM.component_size uf);
        Alcotest.check digraph_testable (what ^ ": graph") (FM.graph scan)
          (FM.graph uf);
        for u = 0 to 15 do
          Alcotest.check route_testable
            (Printf.sprintf "%s: route %d" what u)
            (FM.route scan u) (FM.route uf u);
          check_bool
            (Printf.sprintf "%s: membership %d" what u)
            (FM.in_dest_component scan u)
            (FM.in_dest_component uf u)
        done;
        check_bool (what ^ ": scan consistent") true (FM.consistent scan);
        check_bool (what ^ ": uf consistent") true (FM.consistent uf)
      in
      settled "create";
      for k = 1 to 240 do
        let u = Random.State.int rand 16 and v = Random.State.int rand 16 in
        if u <> v then begin
          let what = Printf.sprintf "event %d (%d,%d)" k u v in
          if k mod 23 = 0 then begin
            let victim = if u = FM.destination scan then v else u in
            both what (fun f -> FM.fail_node f victim)
          end
          else if FM.mem_edge scan u v then
            both what (fun f -> FM.fail_link f u v)
          else begin
            FM.add_link scan u v;
            FM.add_link uf u v
          end;
          settled what
        end
      done)
    [ (M.Partial_reversal, 31); (M.Full_reversal, 32); (M.Partial_reversal, 33) ]

(* Repeated partition→heal cycles leak ghost slots until the arena
   passes [8n + 64] and compacts; the rebuild must be invisible to
   semantics. *)
let test_compaction_rebuilds () =
  let config =
    Config.make_exn
      (Digraph.of_directed_edges
         [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 6); (6, 7) ])
      ~destination:0
  in
  let sys = make M.Partial_reversal config in
  for _ = 1 to 48 do
    check_result "cycle cut" (M.fail_link sys.m 3 4) (FM.fail_link sys.f 3 4);
    M.add_link sys.m 3 4;
    FM.add_link sys.f 3 4
  done;
  let stats = FM.index_stats sys.f in
  check_bool "the arena compacted at least once" true (stats.FM.rebuilds >= 1);
  check_bool "slots back under the compaction bound" true
    (stats.FM.slots <= (8 * 8) + 64);
  agree "after compaction churn" sys

(* [in_dest_component] is the serving layer's O(α) No_route honesty
   check: on a stabilized engine it must answer exactly what the BFS
   [has_path] answers, through partitions and heals. *)
let test_membership_answers_reachability () =
  let config = random_config ~extra_edges:1 ~seed:44 12 in
  let f = FM.create M.Partial_reversal config in
  let rand = rng 440 in
  let sweep what =
    for u = 0 to 11 do
      check_bool
        (Printf.sprintf "%s: membership = reachability for %d" what u)
        (FM.has_path f u)
        (FM.in_dest_component f u)
    done
  in
  sweep "create";
  for k = 1 to 150 do
    let u = Random.State.int rand 12 and v = Random.State.int rand 12 in
    if u <> v then begin
      if FM.mem_edge f u v then ignore (FM.fail_link f u v)
      else FM.add_link f u v;
      sweep (Printf.sprintf "event %d" k)
    end
  done

(* {1 Next-hop cache} *)

let test_cache_hits_when_quiescent () =
  let config = random_config ~seed:21 16 in
  let f = FM.create M.Partial_reversal config in
  let query_all () =
    for u = 0 to FM.num_nodes f - 1 do
      ignore (FM.route f u)
    done
  in
  query_all ();
  let s1 = FM.cache_stats f in
  check_bool "first pass computes entries" true (s1.FM.misses > 0);
  query_all ();
  let s2 = FM.cache_stats f in
  check_int "quiescent queries add no misses" s1.FM.misses s2.FM.misses;
  check_bool "quiescent queries hit the cache" true (s2.FM.hits > s1.FM.hits);
  check_bool "no churn, no invalidations" true (s2.FM.invalidations = s1.FM.invalidations)

let test_cache_invalidated_by_churn () =
  let config = random_config ~seed:22 16 in
  let sys = make M.Partial_reversal config in
  for u = 0 to sys.n - 1 do
    ignore (FM.route sys.f u)
  done;
  let before = FM.cache_stats sys.f in
  (* Knock out an edge on some served route: heights and topology
     change, so entries must be dropped... *)
  let u, v =
    match Digraph.directed_edges (M.graph sys.m) with
    | e :: _ -> e
    | [] -> Alcotest.fail "no edges"
  in
  check_result "churn" (M.fail_link sys.m u v) (FM.fail_link sys.f u v);
  let after = FM.cache_stats sys.f in
  check_bool "churn invalidates" true
    (after.FM.invalidations > before.FM.invalidations);
  (* ... and the refilled cache must agree with the reference: no hop
     served from a stale entry. *)
  agree "after churn" sys;
  for u = 0 to sys.n - 1 do
    ignore (FM.route sys.f u)
  done;
  check_bool "cache sound after refill" true (FM.consistent sys.f)

let () =
  Alcotest.run "fast_maintenance"
    [
      suite "lockstep"
        [
          case "PR churn matches reference" test_lockstep_churn_pr;
          case "FR churn matches reference" test_lockstep_churn_fr;
          case "sparse churn (partition-heavy)" test_lockstep_churn_sparse;
          case "reconnection repairs stale sinks"
            test_reconnection_finds_stale_sinks;
          case "invalid calls rejected like the reference"
            test_errors_match_reference;
        ];
      suite "component index"
        [
          case "partition→heal cycles byte-identical (pinned)"
            test_partition_heal_pinned;
          case "union-find vs rescan baseline in lockstep"
            test_scan_uf_differential;
          case "ghost-slot pressure triggers compaction"
            test_compaction_rebuilds;
          case "membership answers reachability"
            test_membership_answers_reachability;
        ];
      suite "route cache"
        [
          case "hits when quiescent" test_cache_hits_when_quiescent;
          case "invalidated by churn, never stale"
            test_cache_invalidated_by_churn;
        ];
    ]
