(* Differential tests of the fast maintenance engine against the
   persistent reference: identical work, heights order, orientation,
   routes and partition reports under seeded churn — plus the next-hop
   cache contract (hits when quiescent, invalidation on churn, never a
   stale path; staleness is also recomputed inside [FM.consistent]). *)

open Lr_graph
open Linkrev
open Helpers
module M = Lr_routing.Maintenance
module FM = Lr_routing.Fast_maintenance

type sys = { m : M.t; f : FM.t; n : int }

let make rule config =
  {
    m = M.create rule config;
    f = FM.create rule config;
    n = Digraph.num_nodes config.Config.initial;
  }

let route_testable = Alcotest.(option (list int))

(* Full-state agreement: work, orientation, height order, routes. *)
let agree what sys =
  check_int (what ^ ": total work") (M.total_work sys.m) (FM.total_work sys.f);
  Alcotest.check digraph_testable
    (what ^ ": oriented graph")
    (M.graph sys.m) (FM.graph sys.f);
  for u = 0 to sys.n - 1 do
    for v = 0 to sys.n - 1 do
      if u <> v then
        check_int
          (Printf.sprintf "%s: height order %d/%d" what u v)
          (compare (M.compare_heights sys.m u v) 0)
          (compare (FM.compare_heights sys.f u v) 0)
    done;
    Alcotest.check route_testable
      (Printf.sprintf "%s: route from %d" what u)
      (M.route sys.m u) (FM.route sys.f u)
  done;
  check_bool
    (what ^ ": destination oriented")
    (M.is_destination_oriented sys.m)
    (FM.is_destination_oriented sys.f);
  check_bool (what ^ ": fast internals consistent") true (FM.consistent sys.f)

let check_result what rm rf =
  match (rm, rf) with
  | ( M.Stabilized { node_steps = s1; affected = a1 },
      M.Stabilized { node_steps = s2; affected = a2 } ) ->
      check_int (what ^ ": node steps") s1 s2;
      check_node_set (what ^ ": affected") a1 a2
  | M.Partitioned a, M.Partitioned b -> check_node_set (what ^ ": lost") a b
  | M.Stabilized _, M.Partitioned _ ->
      Alcotest.failf "%s: reference stabilized, fast partitioned" what
  | M.Partitioned _, M.Stabilized _ ->
      Alcotest.failf "%s: reference partitioned, fast stabilized" what

(* Seeded churn in lockstep.  Every event is applied to both engines
   and the full state compared; node failures every 23rd event keep
   partitions and reconnections frequent. *)
let churn ~rule ~seed ~events ~extra_edges n =
  let config = random_config ~extra_edges ~seed n in
  let sys = make rule config in
  agree "create" sys;
  let rand = rng (seed + 77) in
  for k = 1 to events do
    let u = Random.State.int rand n and v = Random.State.int rand n in
    if u <> v then begin
      let what = Printf.sprintf "event %d (%d,%d)" k u v in
      if k mod 23 = 0 then begin
        let victim = if u = M.destination sys.m then v else u in
        check_result what (M.fail_node sys.m victim) (FM.fail_node sys.f victim)
      end
      else if Digraph.mem_edge (M.graph sys.m) u v then
        check_result what (M.fail_link sys.m u v) (FM.fail_link sys.f u v)
      else begin
        M.add_link sys.m u v;
        FM.add_link sys.f u v
      end;
      agree what sys
    end
  done

let test_lockstep_churn_pr () =
  churn ~rule:M.Partial_reversal ~seed:11 ~events:160 ~extra_edges:12 14

let test_lockstep_churn_fr () =
  churn ~rule:M.Full_reversal ~seed:12 ~events:160 ~extra_edges:12 14

let test_lockstep_churn_sparse () =
  (* A near-tree graph partitions on almost every removal, exercising
     the incremental component membership and the absorb-side sink
     scan on every reconnection. *)
  churn ~rule:M.Partial_reversal ~seed:13 ~events:200 ~extra_edges:1 12

(* A partitioned side accumulates sinks the reference only repairs
   after reconnection (its component scan sees them then); the fast
   engine must find them via the absorb-side scan, not the worklist. *)
let test_reconnection_finds_stale_sinks () =
  let config =
    Config.make_exn
      (Digraph.of_directed_edges [ (0, 1); (1, 2); (2, 3) ])
      ~destination:0
  in
  List.iter
    (fun rule ->
      let sys = make rule config in
      check_result "cut 1-2" (M.fail_link sys.m 1 2) (FM.fail_link sys.f 1 2);
      agree "after cut" sys;
      (* Churn inside the lost side: drop 2-3, then restore it.  The
         side is not stabilized, so this leaves sinks pending there. *)
      check_result "cut 2-3" (M.fail_link sys.m 2 3) (FM.fail_link sys.f 2 3);
      M.add_link sys.m 2 3;
      FM.add_link sys.f 2 3;
      agree "lost side churned" sys;
      (* Reconnect: both engines must now repair the absorbed side. *)
      M.add_link sys.m 1 2;
      FM.add_link sys.f 1 2;
      agree "after reconnection" sys;
      check_bool "oriented after reconnection" true
        (FM.is_destination_oriented sys.f))
    [ M.Partial_reversal; M.Full_reversal ]

let test_errors_match_reference () =
  let config = random_config ~seed:5 10 in
  let sys = make M.Partial_reversal config in
  let raises f = try f (); false with Invalid_argument _ -> true in
  let some_edge =
    match Digraph.directed_edges (M.graph sys.m) with
    | (u, v) :: _ -> (u, v)
    | [] -> Alcotest.fail "graph has no edges"
  in
  let u, v = some_edge in
  check_bool "duplicate add rejected" true
    (raises (fun () -> FM.add_link sys.f u v));
  check_bool "self-loop add rejected" true
    (raises (fun () -> FM.add_link sys.f 3 3));
  check_bool "out-of-range add rejected" true
    (raises (fun () -> FM.add_link sys.f 0 99));
  check_bool "absent fail_link rejected" true
    (raises (fun () ->
         ignore (FM.fail_link sys.f 99 0)));
  check_bool "destination fail_node rejected" true
    (raises (fun () -> ignore (FM.fail_node sys.f (FM.destination sys.f))));
  agree "after rejected calls" sys

(* {1 Next-hop cache} *)

let test_cache_hits_when_quiescent () =
  let config = random_config ~seed:21 16 in
  let f = FM.create M.Partial_reversal config in
  let query_all () =
    for u = 0 to FM.num_nodes f - 1 do
      ignore (FM.route f u)
    done
  in
  query_all ();
  let s1 = FM.cache_stats f in
  check_bool "first pass computes entries" true (s1.FM.misses > 0);
  query_all ();
  let s2 = FM.cache_stats f in
  check_int "quiescent queries add no misses" s1.FM.misses s2.FM.misses;
  check_bool "quiescent queries hit the cache" true (s2.FM.hits > s1.FM.hits);
  check_bool "no churn, no invalidations" true (s2.FM.invalidations = s1.FM.invalidations)

let test_cache_invalidated_by_churn () =
  let config = random_config ~seed:22 16 in
  let sys = make M.Partial_reversal config in
  for u = 0 to sys.n - 1 do
    ignore (FM.route sys.f u)
  done;
  let before = FM.cache_stats sys.f in
  (* Knock out an edge on some served route: heights and topology
     change, so entries must be dropped... *)
  let u, v =
    match Digraph.directed_edges (M.graph sys.m) with
    | e :: _ -> e
    | [] -> Alcotest.fail "no edges"
  in
  check_result "churn" (M.fail_link sys.m u v) (FM.fail_link sys.f u v);
  let after = FM.cache_stats sys.f in
  check_bool "churn invalidates" true
    (after.FM.invalidations > before.FM.invalidations);
  (* ... and the refilled cache must agree with the reference: no hop
     served from a stale entry. *)
  agree "after churn" sys;
  for u = 0 to sys.n - 1 do
    ignore (FM.route sys.f u)
  done;
  check_bool "cache sound after refill" true (FM.consistent sys.f)

let () =
  Alcotest.run "fast_maintenance"
    [
      suite "lockstep"
        [
          case "PR churn matches reference" test_lockstep_churn_pr;
          case "FR churn matches reference" test_lockstep_churn_fr;
          case "sparse churn (partition-heavy)" test_lockstep_churn_sparse;
          case "reconnection repairs stale sinks"
            test_reconnection_finds_stale_sinks;
          case "invalid calls rejected like the reference"
            test_errors_match_reference;
        ];
      suite "route cache"
        [
          case "hits when quiescent" test_cache_hits_when_quiescent;
          case "invalidated by churn, never stale"
            test_cache_invalidated_by_churn;
        ];
    ]
