open Lr_graph
open Helpers

let test_normalization () =
  let e1 = Edge.make 3 7 and e2 = Edge.make 7 3 in
  check_bool "normalized equal" true (Edge.equal e1 e2);
  check_int "lo" 3 (Edge.lo e1);
  check_int "hi" 7 (Edge.hi e1)

let test_self_loop_rejected () =
  Alcotest.check_raises "self loop" (Invalid_argument "Edge.make: self-loop")
    (fun () -> ignore (Edge.make 4 4))

let test_endpoints () =
  let lo, hi = Edge.endpoints (Edge.make 9 2) in
  check_int "lo" 2 lo;
  check_int "hi" 9 hi

let test_other () =
  let e = Edge.make 1 5 in
  check_int "other of lo" 5 (Edge.other e 1);
  check_int "other of hi" 1 (Edge.other e 5);
  Alcotest.check_raises "not incident"
    (Invalid_argument "Edge.other: node not incident") (fun () ->
      ignore (Edge.other e 3))

let test_incident () =
  let e = Edge.make 1 5 in
  check_bool "incident lo" true (Edge.incident e 1);
  check_bool "incident hi" true (Edge.incident e 5);
  check_bool "not incident" false (Edge.incident e 2)

let test_compare_orders_lexicographically () =
  check_bool "first endpoint dominates" true
    (Edge.compare (Edge.make 1 9) (Edge.make 2 3) < 0);
  check_bool "second endpoint breaks ties" true
    (Edge.compare (Edge.make 1 2) (Edge.make 1 3) < 0);
  check_int "equal" 0 (Edge.compare (Edge.make 4 2) (Edge.make 2 4))

let test_set () =
  let s = Edge.Set.of_list [ Edge.make 1 2; Edge.make 2 1; Edge.make 2 3 ] in
  check_int "dedup across normalization" 2 (Edge.Set.cardinal s)

let test_pp () =
  Alcotest.(check string) "pp" "{2,8}"
    (Format.asprintf "%a" Edge.pp (Edge.make 8 2))

let () =
  Alcotest.run "edge"
    [
      suite "edge"
        [
          case "normalization makes {u,v} = {v,u}" test_normalization;
          case "self-loops are rejected" test_self_loop_rejected;
          case "endpoints are ordered" test_endpoints;
          case "other endpoint" test_other;
          case "incidence" test_incident;
          case "compare is lexicographic" test_compare_orders_lexicographically;
          case "sets deduplicate normalized edges" test_set;
          case "pp" test_pp;
        ];
    ]
