open Lr_graph
open Linkrev
open Helpers
module A = Lr_automata

let test_initial_state () =
  let config = diamond () in
  let s = Pr.initial config in
  Alcotest.check digraph_testable "initial graph" config.Config.initial
    s.Pr.graph;
  Node.Set.iter
    (fun u -> check_node_set "empty list" Node.Set.empty (Pr.list_of s u))
    (Config.nodes config)

let test_sinks_excludes_destination () =
  (* chain 1 -> 0 with destination 0: 0 is a graph sink but not a PR sink. *)
  let config =
    Config.make_exn (Digraph.of_directed_edges [ (1, 0) ]) ~destination:0
  in
  check_node_set "no eligible sink" Node.Set.empty
    (Pr.sinks config (Pr.initial config))

let test_first_step_reverses_all () =
  (* An empty list means nbrs \ list = all neighbours. *)
  let config = diamond () in
  let s = Pr.apply config (Pr.initial config) (Node.Set.singleton 3) in
  check_bool "3 -> 1" true (Digraph.dir s.Pr.graph 3 1 = Digraph.Out);
  check_bool "3 -> 2" true (Digraph.dir s.Pr.graph 3 2 = Digraph.Out);
  check_node_set "3's list emptied" Node.Set.empty (Pr.list_of s 3);
  check_node_set "1 recorded 3" (Node.Set.singleton 3) (Pr.list_of s 1);
  check_node_set "2 recorded 3" (Node.Set.singleton 3) (Pr.list_of s 2)

let test_second_step_skips_listed_neighbours () =
  (* After 3 reverses, 1 is a sink with list [3]; it must reverse only
     the edge to 0 and leave the edge to 3 incoming. *)
  let config = diamond () in
  let s = Pr.apply config (Pr.initial config) (Node.Set.singleton 3) in
  check_bool "1 is now a sink" true (Digraph.is_sink s.Pr.graph 1);
  let s = Pr.apply config s (Node.Set.singleton 1) in
  check_bool "1 -> 0 reversed" true (Digraph.dir s.Pr.graph 1 0 = Digraph.Out);
  check_bool "edge to 3 kept incoming" true (Digraph.dir s.Pr.graph 1 3 = Digraph.In);
  check_node_set "list emptied" Node.Set.empty (Pr.list_of s 1)

let test_full_list_reverses_everything () =
  (* Path 0(dest) - 1 - 2 oriented 0 -> 1 <- 2.  The initial sink 1
     reverses everything; leaf 2 then becomes a sink whose list {1}
     covers all its neighbours — the paper's [list = nbrs] branch. *)
  let config =
    Config.make_exn (Digraph.of_directed_edges [ (0, 1); (2, 1) ]) ~destination:0
  in
  let s0 = Pr.initial config in
  let s1 = Pr.apply config s0 (Node.Set.singleton 1) in
  check_bool "2 became a sink" true (Digraph.is_sink s1.Pr.graph 2);
  check_node_set "full list" (Config.nbrs config 2) (Pr.list_of s1 2);
  let s2 = Pr.apply config s1 (Node.Set.singleton 2) in
  check_bool "2 reversed everything" true (Digraph.dir s2.Pr.graph 2 1 = Digraph.Out);
  check_node_set "list emptied" Node.Set.empty (Pr.list_of s2 2)

let test_set_step_equals_sequential () =
  (* reverse(S) must equal applying members one at a time (sinks are
     pairwise non-adjacent, so the order is irrelevant). *)
  let config = sawtooth 9 in
  let s0 = Pr.initial config in
  let sinks = Pr.sinks config s0 in
  check_bool "several sinks" true (Node.Set.cardinal sinks >= 3);
  let together = Pr.apply config s0 sinks in
  let one_by_one =
    Node.Set.fold (fun u s -> Pr.apply config s (Node.Set.singleton u)) sinks s0
  in
  check_bool "same state" true (Pr.equal_state together one_by_one)

let test_no_two_adjacent_sinks () =
  for seed = 0 to 9 do
    let config = random_config ~seed 14 in
    let exec = run_random ~seed (Pr.automaton ~mode:Pr.Singletons config) in
    List.iter
      (fun s ->
        let sinks = Pr.sinks config s in
        Node.Set.iter
          (fun u ->
            Node.Set.iter
              (fun v ->
                if not (Node.equal u v) then
                  check_bool "sinks are pairwise non-adjacent" false
                    (Undirected.mem_edge (Config.skeleton config) u v))
              sinks)
          sinks)
      (A.Execution.states exec)
  done

let test_automaton_rejects_disabled () =
  let config = diamond () in
  let aut = Pr.automaton config in
  check_bool "raises on non-sink" true
    (try ignore (aut.A.Automaton.step (Pr.initial config)
                   (Pr.Reverse (Node.Set.singleton 1))); false
     with Invalid_argument _ -> true)

let test_enabled_modes () =
  let config = sawtooth 9 in
  let s = Pr.initial config in
  let count mode =
    List.length ((Pr.automaton ~mode config).A.Automaton.enabled s)
  in
  let k = Node.Set.cardinal (Pr.sinks config s) in
  check_int "singletons" k (count Pr.Singletons);
  check_int "singletons+max" (k + 1) (count Pr.Singletons_and_max);
  check_int "all subsets" ((1 lsl k) - 1) (count Pr.All_subsets)

let test_termination_and_orientation () =
  for seed = 0 to 19 do
    let config = random_config ~seed 16 in
    let out =
      Executor.run
        ~scheduler:(A.Scheduler.random (rng seed))
        ~destination:config.Config.destination
        (Pr.algo ~mode:Pr.Singletons config)
    in
    check_bool "quiescent" true out.Executor.quiescent;
    check_bool "destination oriented" true out.Executor.destination_oriented
  done

let test_work_on_bad_chain_is_linear () =
  (* PR resolves the all-away chain in exactly n-1 steps. *)
  let config = bad_chain 12 in
  let out =
    Executor.run ~scheduler:(A.Scheduler.first ()) ~destination:0
      (Pr.algo ~mode:Pr.Singletons config)
  in
  check_int "n-1 steps" 11 out.Executor.total_node_steps

let test_work_on_sawtooth_is_quadratic () =
  (* The Θ(n_b²) family: exactly (n/2)² node steps. *)
  List.iter
    (fun n ->
      let config = sawtooth n in
      let out =
        Executor.run ~scheduler:(A.Scheduler.first ()) ~destination:0
          (Pr.algo ~mode:Pr.Singletons config)
      in
      check_int
        (Printf.sprintf "(n/2)^2 at n=%d" n)
        (n / 2 * (n / 2))
        out.Executor.total_node_steps)
    [ 4; 8; 12; 16 ]

let test_schedule_independent_work () =
  (* Link reversal work is schedule-independent (Gafni–Bertsekas):
     every fair execution performs the same per-node step counts. *)
  let config = sawtooth 10 in
  let run sched =
    (Executor.run ~scheduler:sched ~destination:0
       (Pr.algo ~mode:Pr.Singletons config)).Executor.node_steps
  in
  let reference = run (A.Scheduler.first ()) in
  List.iter
    (fun sched ->
      check_bool "same node steps" true
        (Node.Map.equal Int.equal reference (run sched)))
    [ A.Scheduler.last (); A.Scheduler.random (rng 4); A.Scheduler.random (rng 9) ]

let test_canonical_key_distinguishes_lists () =
  let config = diamond () in
  let s0 = Pr.initial config in
  let s1 = Pr.apply config s0 (Node.Set.singleton 3) in
  check_bool "different keys" false
    (String.equal (Pr.canonical_key s0) (Pr.canonical_key s1))

let () =
  Alcotest.run "pr"
    [
      suite "mechanics"
        [
          case "initial state" test_initial_state;
          case "destination is never a PR sink" test_sinks_excludes_destination;
          case "first step reverses all edges" test_first_step_reverses_all;
          case "listed neighbours are skipped" test_second_step_skips_listed_neighbours;
          case "full list reverses everything" test_full_list_reverses_everything;
          case "reverse(S) = sequential singletons" test_set_step_equals_sequential;
          case "sinks are pairwise non-adjacent" test_no_two_adjacent_sinks;
          case "step rejects disabled actions" test_automaton_rejects_disabled;
          case "enabled-action modes" test_enabled_modes;
        ];
      suite "behaviour"
        [
          case "terminates destination-oriented" test_termination_and_orientation;
          case "bad chain costs n-1" test_work_on_bad_chain_is_linear;
          case "sawtooth costs (n/2)^2" test_work_on_sawtooth_is_quadratic;
          case "work is schedule independent" test_schedule_independent_work;
          case "canonical keys include lists" test_canonical_key_distinguishes_lists;
        ];
    ]
