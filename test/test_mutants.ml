open Linkrev
open Helpers
module A = Lr_automata
module MC = Lr_modelcheck.Modelcheck

(* Mutation testing: the paper's invariant checkers must reject each
   broken variant on some small instance, while the exhaustive model
   checker accepts the real algorithms everywhere (test_modelcheck).
   Search over every small instance, every reachable state of the
   mutant. *)

let search_violation automaton_of invariant_of =
  MC.exhaustive_families ~max_nodes:4
  |> List.exists (fun config ->
         List.exists
           (fun seed ->
             let exec =
               A.Execution.run ~max_steps:200
                 ~scheduler:(A.Scheduler.random (rng seed))
                 (automaton_of config)
             in
             A.Invariant.check_execution (invariant_of config) exec <> None)
           [ 0; 1; 2 ])

let test_reverse_listed_caught () =
  check_bool "reverse-listed violates the invariants" true
    (search_violation
       (Mutants.pr_automaton Mutants.Reverse_listed)
       Invariants.pr_all)

let test_keep_list_caught () =
  check_bool "keep-list violates the invariants" true
    (search_violation
       (Mutants.pr_automaton Mutants.Keep_list)
       Invariants.pr_all)

let test_no_record_caught () =
  check_bool "no-record violates the invariants" true
    (search_violation
       (Mutants.pr_automaton Mutants.No_record)
       Invariants.pr_all)

let test_never_flip_caught () =
  check_bool "never-flip violates the invariants" true
    (search_violation
       (Mutants.newpr_automaton Mutants.Never_flip)
       Invariants.newpr_all)

let test_start_odd_caught () =
  check_bool "start-odd violates the invariants" true
    (search_violation
       (Mutants.newpr_automaton Mutants.Start_odd)
       Invariants.newpr_all)

let test_mutants_step_only_sinks () =
  (* Mutants stay within the automaton discipline: disabled actions are
     still rejected. *)
  let config = diamond () in
  let aut = Mutants.pr_automaton Mutants.Reverse_listed config in
  check_bool "raises" true
    (try ignore (aut.A.Automaton.step (Pr.initial config)
                   (One_step_pr.Reverse 1)); false
     with Invalid_argument _ -> true)

let test_names () =
  Alcotest.(check string) "pr name" "no-record"
    (Mutants.pr_mutant_name Mutants.No_record);
  Alcotest.(check string) "newpr name" "never-flip"
    (Mutants.newpr_mutant_name Mutants.Never_flip)

let () =
  Alcotest.run "mutants"
    [
      suite "mutants"
        [
          case "reverse-listed caught" test_reverse_listed_caught;
          case "keep-list caught" test_keep_list_caught;
          case "no-record caught" test_no_record_caught;
          case "never-flip caught" test_never_flip_caught;
          case "start-odd caught" test_start_odd_caught;
          case "mutants still respect enabledness" test_mutants_step_only_sinks;
          case "mutant names" test_names;
        ];
    ]
