open Lr_graph
open Linkrev
open Helpers
module HP = Lr_routing.Height_protocol

let test_initial_heights_realize_initial_graph () =
  for seed = 0 to 4 do
    let config = random_config ~seed 12 in
    List.iter
      (fun mode ->
        let hs = HP.initial_heights mode config in
        List.iter
          (fun (u, v) ->
            check_bool "edge from higher to lower" true
              (Heights.compare_pr_height (Node.Map.find u hs) (Node.Map.find v hs)
               > 0))
          (Digraph.directed_edges config.Config.initial))
      [ HP.Partial; HP.Full ]
  done

let test_converges_to_destination_orientation () =
  for seed = 0 to 9 do
    let config = random_config ~seed 18 in
    List.iter
      (fun mode ->
        let r = HP.run ~mode config in
        check_bool "completed" true r.HP.stats.Lr_sim.Network.completed;
        check_bool "oriented" true r.HP.destination_oriented)
      [ HP.Partial; HP.Full ]
  done

let test_converges_under_jitter () =
  for seed = 0 to 4 do
    let config = random_config ~seed 15 in
    let r = HP.run ~jitter:(rng (seed + 100), 3.0) ~mode:HP.Partial config in
    check_bool "oriented under jitter" true r.HP.destination_oriented
  done

let test_quiet_when_already_oriented () =
  let config = Config.of_instance (Generators.good_chain 8) in
  let r = HP.run ~mode:HP.Partial config in
  check_int "no raises" 0 r.HP.total_raises;
  check_int "no messages" 0 r.HP.stats.Lr_sim.Network.sent

let test_destination_never_raises () =
  for seed = 0 to 4 do
    let config = random_config ~seed 12 in
    let r = HP.run ~mode:HP.Partial config in
    check_int "destination raises" 0
      (Node.Map.find_or ~default:0 config.Config.destination r.HP.raises_per_node)
  done

let test_async_work_matches_sequential_pr () =
  (* Link reversal work is schedule independent, and the async protocol
     is just another schedule: per-node raises equal the sequential
     executor's node steps. *)
  for seed = 0 to 4 do
    let config = random_config ~seed 12 in
    let async = HP.run ~mode:HP.Partial config in
    let seq =
      Executor.run
        ~scheduler:(Lr_automata.Scheduler.first ())
        ~destination:config.Config.destination (Heights.pr_algo config)
    in
    check_bool "same per-node work" true
      (Node.Map.equal Int.equal
         (Node.Map.filter (fun _ c -> c > 0) async.HP.raises_per_node)
         (Node.Map.filter (fun _ c -> c > 0) seq.Executor.node_steps))
  done

let test_bad_chain_message_cost_fr_vs_pr () =
  (* On the bad chain FR does quadratic work, PR linear, and messages
     scale with work. *)
  let config = bad_chain 12 in
  let pr = HP.run ~mode:HP.Partial config in
  let fr = HP.run ~mode:HP.Full config in
  check_bool "both oriented" true
    (pr.HP.destination_oriented && fr.HP.destination_oriented);
  check_bool "PR cheaper in raises" true (pr.HP.total_raises < fr.HP.total_raises);
  check_bool "PR cheaper in messages" true
    (pr.HP.stats.Lr_sim.Network.sent < fr.HP.stats.Lr_sim.Network.sent)

let test_lossy_with_beacons_converges () =
  (* 30% message loss stalls the bare protocol; periodic beacons repair
     the stale views and convergence returns. *)
  for seed = 0 to 4 do
    let config = random_config ~seed 14 in
    let r =
      HP.run
        ~drop:(rng (seed + 50), 0.3)
        ~beacon:5.0 ~until:2000.0 ~mode:HP.Partial config
    in
    check_bool "oriented despite loss" true r.HP.destination_oriented
  done

let test_lossy_without_beacons_can_stall () =
  (* Heavy loss with no retransmission leaves some instance stuck with
     stale views: find one where convergence fails. *)
  let stalled = ref false in
  for seed = 0 to 19 do
    if not !stalled then begin
      let config = random_config ~seed 14 in
      let r = HP.run ~drop:(rng (seed + 90), 0.8) ~mode:HP.Partial config in
      if not r.HP.destination_oriented then stalled := true
    end
  done;
  check_bool "some run stalls under 80% loss" true !stalled

let () =
  Alcotest.run "height_protocol"
    [
      suite "height_protocol"
        [
          case "initial heights realize G'_init"
            test_initial_heights_realize_initial_graph;
          case "converges destination-oriented" test_converges_to_destination_orientation;
          case "converges under jitter" test_converges_under_jitter;
          case "quiet when already oriented" test_quiet_when_already_oriented;
          case "destination never raises" test_destination_never_raises;
          case "async work = sequential work" test_async_work_matches_sequential_pr;
          case "FR vs PR message cost on the bad chain"
            test_bad_chain_message_cost_fr_vs_pr;
          case "lossy links + beacons converge" test_lossy_with_beacons_converges;
          case "heavy loss without beacons stalls" test_lossy_without_beacons_can_stall;
        ];
    ]
