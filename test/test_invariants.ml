open Lr_graph
open Linkrev
open Helpers
module A = Lr_automata

(* Invariants hold in every state of random executions: the statistical
   version of the paper's induction proofs (the model checker covers the
   exhaustive version on small instances). *)

let pr_execution ~seed config =
  run_random ~seed (Pr.automaton ~mode:Pr.Singletons_and_max config)

let newpr_execution ~seed config = run_random ~seed (New_pr.automaton config)

let test_pr_invariants_random () =
  for seed = 0 to 24 do
    let config = random_config ~seed 14 in
    expect_no_violation "PR invariants"
      (A.Invariant.check_execution (Invariants.pr_all config)
         (pr_execution ~seed config))
  done

let test_pr_invariants_families () =
  List.iter
    (fun config ->
      expect_no_violation "PR invariants"
        (A.Invariant.check_execution (Invariants.pr_all config)
           (pr_execution ~seed:1 config)))
    [
      diamond ();
      bad_chain 10;
      sawtooth 10;
      Config.of_instance (Generators.grid ~rows:3 ~cols:3);
      Config.of_instance (Generators.binary_tree ~depth:3);
      Config.of_instance (Generators.star ~center:0 ~leaves:6 ~inward:false);
    ]

let test_newpr_invariants_random () =
  for seed = 0 to 24 do
    let config = random_config ~seed 14 in
    expect_no_violation "NewPR invariants"
      (A.Invariant.check_execution (Invariants.newpr_all config)
         (newpr_execution ~seed config))
  done

let test_newpr_invariants_families () =
  List.iter
    (fun config ->
      expect_no_violation "NewPR invariants"
        (A.Invariant.check_execution (Invariants.newpr_all config)
           (newpr_execution ~seed:1 config)))
    [
      diamond ();
      bad_chain 10;
      sawtooth 10;
      Config.of_instance (Generators.grid ~rows:3 ~cols:3);
      Config.of_instance (Generators.half_bad_chain 9);
    ]

let test_inv_3_2_characterizes_sink_lists () =
  (* Corollary 3.4 in action: at every sink, the list is exactly in-nbrs
     or exactly out-nbrs. *)
  let config = sawtooth 12 in
  let exec = pr_execution ~seed:3 config in
  List.iter
    (fun (s : Pr.state) ->
      Node.Set.iter
        (fun u ->
          if Digraph.is_sink s.Pr.graph u then
            let lst = Pr.list_of s u in
            check_bool "list = in-nbrs or out-nbrs" true
              (Node.Set.equal lst (Config.in_nbrs config u)
              || Node.Set.equal lst (Config.out_nbrs config u)))
        (Config.nodes config))
    (A.Execution.states exec)

let test_inv_4_1_detects_forged_state () =
  (* Negative test: a hand-forged state with equal even parities but a
     right-to-left edge must be flagged. *)
  let config =
    Config.make_exn (Digraph.of_directed_edges [ (0, 1) ]) ~destination:0
  in
  let forged =
    { New_pr.graph = Digraph.reverse_edge config.Config.initial 0 1;
      counts = Node.Map.empty }
  in
  let inv = Invariants.newpr_inv_4_1 config in
  check_bool "violation reported" true
    (Result.is_error (inv.A.Invariant.check forged))

let test_inv_4_2a_detects_forged_counts () =
  let config =
    Config.make_exn (Digraph.of_directed_edges [ (0, 1) ]) ~destination:0
  in
  let forged =
    { New_pr.graph = config.Config.initial;
      counts = Node.Map.add 1 5 Node.Map.empty }
  in
  let inv = Invariants.newpr_inv_4_2 config in
  match inv.A.Invariant.check forged with
  | Error msg -> check_bool "names part (a)" true (String.length msg > 2 && String.sub msg 0 3 = "(a)")
  | Ok () -> Alcotest.fail "count gap of 5 must violate (a)"

let test_inv_4_2d_detects_wrong_direction () =
  (* count[1] = 1 > count[0] = 0, but the edge points 0 -> 1. *)
  let config =
    Config.make_exn (Digraph.of_directed_edges [ (0, 1) ]) ~destination:0
  in
  let forged =
    { New_pr.graph = config.Config.initial;
      counts = Node.Map.add 1 1 Node.Map.empty }
  in
  let inv = Invariants.newpr_inv_4_2 config in
  check_bool "violated" true (Result.is_error (inv.A.Invariant.check forged))

let test_inv_3_2_detects_forged_list () =
  (* A list containing both an in- and an out-neighbour violates 3.2
     (and Corollary 3.3). *)
  let config = diamond () in
  let forged =
    { (Pr.initial config) with
      Pr.lists = Node.Map.add 1 (Node.Set.of_list [ 0; 3 ]) Node.Map.empty }
  in
  check_bool "3.2 violated" true
    (Result.is_error ((Invariants.pr_inv_3_2 config).A.Invariant.check forged));
  check_bool "3.3 violated" true
    (Result.is_error ((Invariants.pr_cor_3_3 config).A.Invariant.check forged))

let test_acyclic_invariant_on_cycle () =
  let cyclic = Digraph.of_directed_edges [ (0, 1); (1, 2); (2, 0) ] in
  let inv = Invariants.acyclic ~graph_of:Fun.id in
  match inv.A.Invariant.check cyclic with
  | Error msg -> check_bool "mentions cycle" true (String.length msg >= 5)
  | Ok () -> Alcotest.fail "cycle must be reported"

let test_skeleton_preserved_detects_change () =
  let config = diamond () in
  let inv =
    Invariants.skeleton_preserved config ~graph_of:(fun (s : Pr.state) ->
        s.Pr.graph)
  in
  let chopped =
    { (Pr.initial config) with
      Pr.graph = Digraph.remove_edge config.Config.initial 0 1 }
  in
  check_bool "change detected" true
    (Result.is_error (inv.A.Invariant.check chopped));
  check_bool "clean state passes" true
    (inv.A.Invariant.check (Pr.initial config) = Ok ())

let test_theorem_4_3_acyclicity_along_newpr () =
  for seed = 0 to 14 do
    let config = random_config ~seed 16 in
    let exec = newpr_execution ~seed config in
    List.iter
      (fun (s : New_pr.state) ->
        check_bool "acyclic (Thm 4.3)" true (Digraph.is_acyclic s.New_pr.graph))
      (A.Execution.states exec)
  done

let test_theorem_5_5_acyclicity_along_pr () =
  for seed = 0 to 14 do
    let config = random_config ~seed 16 in
    let exec = pr_execution ~seed config in
    List.iter
      (fun (s : Pr.state) ->
        check_bool "acyclic (Thm 5.5)" true (Digraph.is_acyclic s.Pr.graph))
      (A.Execution.states exec)
  done

let () =
  Alcotest.run "invariants"
    [
      suite "positive"
        [
          case "PR invariants on random executions" test_pr_invariants_random;
          case "PR invariants on named families" test_pr_invariants_families;
          case "NewPR invariants on random executions" test_newpr_invariants_random;
          case "NewPR invariants on named families" test_newpr_invariants_families;
          case "Corollary 3.4 at sinks" test_inv_3_2_characterizes_sink_lists;
          case "Theorem 4.3 along NewPR" test_theorem_4_3_acyclicity_along_newpr;
          case "Theorem 5.5 along PR" test_theorem_5_5_acyclicity_along_pr;
        ];
      suite "negative"
        [
          case "4.1 flags forged orientation" test_inv_4_1_detects_forged_state;
          case "4.2(a) flags forged counts" test_inv_4_2a_detects_forged_counts;
          case "4.2(d) flags wrong direction" test_inv_4_2d_detects_wrong_direction;
          case "3.2/3.3 flag forged lists" test_inv_3_2_detects_forged_list;
          case "acyclic invariant reports cycles" test_acyclic_invariant_on_cycle;
          case "skeleton preservation" test_skeleton_preserved_detects_change;
        ];
    ]
