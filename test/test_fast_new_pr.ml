open Lr_graph
open Linkrev
open Helpers
module FN = Lr_fast.Fast_new_pr

(* NewPR's work is schedule independent (the same Gafni-Bertsekas
   argument the suite verifies in D-F6), so the flat-array engine —
   whatever its queue order — must match the persistent automaton run
   under any scheduler: same totals, same per-node counts, same final
   orientation. *)
let reference config =
  Executor.run
    ~scheduler:(Lr_automata.Scheduler.first ())
    ~destination:config.Config.destination (New_pr.algo config)

let differential config =
  let slow = reference config in
  let engine = FN.of_config config in
  let fast = FN.run engine in
  check_int "same total work" slow.Executor.total_node_steps fast.FN.work;
  check_int "same edge reversals" slow.Executor.edge_reversals
    fast.FN.edge_reversals;
  check_bool "same orientation flag" slow.Executor.destination_oriented
    fast.FN.destination_oriented;
  check_bool "quiescent" true fast.FN.quiescent;
  Node.Set.iter
    (fun u ->
      check_int
        (Printf.sprintf "steps of node %d" u)
        (Node.Map.find_or ~default:0 u slow.Executor.node_steps)
        fast.FN.steps_per_node.(u))
    (Config.nodes config);
  Alcotest.check digraph_testable "same final graph" slow.Executor.final_graph
    (FN.to_digraph engine)

let test_differential_random () =
  for seed = 0 to 14 do
    differential (random_config ~seed 20)
  done

let test_differential_families () =
  List.iter differential
    [
      diamond ();
      bad_chain 12;
      sawtooth 12;
      Config.of_instance (Generators.grid ~rows:3 ~cols:4);
      (* source centre: every leaf step begins with a reversal, the
         centre's first step is real, initial sinks go dummy-first *)
      Config.of_instance (Generators.star ~center:0 ~leaves:6 ~inward:false);
      Config.of_instance (Generators.binary_tree ~depth:3);
    ]

(* Lockstep acyclicity: drive the engine one step at a time and check
   Theorem 4.3's claim on every observed state. *)
let test_stepwise_acyclic () =
  List.iter
    (fun config ->
      let engine = FN.of_config config in
      let quiescent = ref false in
      let steps = ref 0 in
      while not !quiescent do
        let out = FN.run ~max_steps:1 engine in
        check_bool "acyclic at every observed state" true
          (Digraph.is_acyclic (FN.to_digraph engine));
        quiescent := out.FN.quiescent;
        incr steps;
        if !steps > 100_000 then Alcotest.fail "engine does not terminate"
      done)
    [ sawtooth 10; bad_chain 10; random_config ~seed:3 12 ]

(* NewPR pays for its static reversal sets with dummy steps, never less
   work than OneStepPR (paper 4.1). *)
let test_dummy_overhead_nonnegative () =
  List.iter
    (fun config ->
      let np = (FN.run (FN.of_config config)).FN.work in
      let pr =
        (Executor.run
           ~scheduler:(Lr_automata.Scheduler.first ())
           ~destination:config.Config.destination (One_step_pr.algo config))
          .Executor.total_node_steps
      in
      check_bool "NewPR work >= OneStepPR work" true (np >= pr))
    [
      sawtooth 16;
      bad_chain 16;
      Config.of_instance (Generators.star ~center:0 ~leaves:8 ~inward:false);
      random_config ~seed:7 20;
    ]

let test_max_steps_resume () =
  let engine = FN.of_config (bad_chain 30) in
  let partial = FN.run ~max_steps:7 engine in
  check_bool "not quiescent" false partial.FN.quiescent;
  check_int "seven steps" 7 partial.FN.work;
  let rest = FN.run engine in
  check_bool "resumed to quiescence" true rest.FN.quiescent;
  let full = (FN.run (FN.of_config (bad_chain 30))).FN.work in
  check_int "paused run does the same total work" full rest.FN.work

let test_counters_match_steps () =
  let config = sawtooth 12 in
  let engine = FN.of_config config in
  let out = FN.run engine in
  Node.Set.iter
    (fun u -> check_int "count = steps taken" out.FN.steps_per_node.(u)
        (FN.count engine u))
    (Config.nodes config)

let test_rejects_sparse_ids () =
  let g = Digraph.of_directed_edges [ (0, 5) ] in
  check_bool "raises" true
    (try
       ignore (FN.create { Generators.graph = g; destination = 0 });
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "fast_new_pr"
    [
      suite "differential"
        [
          case "matches persistent NewPR on random DAGs"
            test_differential_random;
          case "matches persistent NewPR on named families"
            test_differential_families;
          case "acyclic at every observed state" test_stepwise_acyclic;
          case "dummy overhead is non-negative" test_dummy_overhead_nonnegative;
        ];
      suite "engine"
        [
          case "max_steps pause and resume" test_max_steps_resume;
          case "per-node counters equal steps taken" test_counters_match_steps;
          case "sparse node ids rejected" test_rejects_sparse_ids;
        ];
    ]
