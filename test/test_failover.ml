open Lr_graph
open Linkrev
open Helpers
module F = Lr_routing.Failover
module M = Lr_routing.Maintenance

let test_single_component_elects_max_id () =
  (* A well-connected graph survives its destination's crash in one
     piece and elects the maximum id. *)
  let config = random_config ~extra_edges:20 ~seed:1 12 in
  match F.elect_after_destination_failure M.Partial_reversal config with
  | [ outcome ] ->
      let expected =
        Node.Set.max_elt
          (Node.Set.remove config.Config.destination (Config.nodes config))
      in
      check_int "max id wins" expected outcome.F.leader;
      check_bool "component oriented to leader" true outcome.F.oriented
  | outcomes -> Alcotest.failf "expected one component, got %d" (List.length outcomes)

let test_star_crash_splits_into_singletons () =
  (* Crashing the center of an inward star isolates every leaf: each
     becomes its own leader with zero work. *)
  let config =
    Config.of_instance (Generators.star ~center:0 ~leaves:4 ~inward:true)
  in
  let outcomes = F.elect_after_destination_failure M.Partial_reversal config in
  check_int "four singleton components" 4 (List.length outcomes);
  List.iter
    (fun o ->
      check_int "self-led" 1 (Node.Set.cardinal o.F.members);
      check_int "no work" 0 o.F.node_steps;
      check_bool "trivially oriented" true o.F.oriented)
    outcomes

let test_chain_crash_in_middle () =
  (* Failing the destination of the half-bad chain splits it in two. *)
  let config = Config.of_instance (Generators.half_bad_chain 9) in
  let outcomes = F.elect_after_destination_failure M.Partial_reversal config in
  check_int "two components" 2 (List.length outcomes);
  List.iter (fun o -> check_bool "oriented" true o.F.oriented) outcomes;
  let leaders = List.map (fun o -> o.F.leader) outcomes |> List.sort compare in
  (* left half 0..3 elects 3; right half 5..8 elects 8 *)
  Alcotest.(check (list int)) "leaders" [ 3; 8 ] leaders

let test_both_rules_work () =
  let config = random_config ~extra_edges:10 ~seed:9 10 in
  List.iter
    (fun rule ->
      List.iter
        (fun o -> check_bool "oriented" true o.F.oriented)
        (F.elect_after_destination_failure rule config))
    [ M.Partial_reversal; M.Full_reversal ]

let test_members_partition_survivors () =
  let config = random_config ~seed:12 12 in
  let outcomes = F.elect_after_destination_failure M.Partial_reversal config in
  let union =
    List.fold_left (fun acc o -> Node.Set.union acc o.F.members) Node.Set.empty
      outcomes
  in
  check_node_set "survivors covered"
    (Node.Set.remove config.Config.destination (Config.nodes config))
    union

let () =
  Alcotest.run "failover"
    [
      suite "failover"
        [
          case "single component elects max id" test_single_component_elects_max_id;
          case "star crash isolates leaves" test_star_crash_splits_into_singletons;
          case "middle crash splits a chain" test_chain_crash_in_middle;
          case "both reversal rules work" test_both_rules_work;
          case "members partition the survivors" test_members_partition_survivors;
        ];
    ]
