open Helpers
module T = Lr_analysis.Table

let sample () =
  T.make ~headers:[ "name"; "value" ] [ [ "alpha"; "1" ]; [ "b"; "22" ] ]

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
  m = 0 || loop 0

let test_make_validates_width () =
  check_bool "short row rejected" true
    (try ignore (T.make ~headers:[ "a"; "b" ] [ [ "x" ] ]); false
     with Invalid_argument _ -> true)

let test_render_contains_cells () =
  let s = T.render (sample ()) in
  check_bool "header" true (contains ~sub:"name" s);
  check_bool "cell" true (contains ~sub:"alpha" s);
  check_bool "separators" true (contains ~sub:"+" s)

let test_render_alignment () =
  (* all lines have equal width *)
  let lines =
    String.split_on_char '\n' (T.render (sample ()))
    |> List.filter (fun l -> l <> "")
  in
  let widths = List.map String.length lines in
  check_int "uniform width" 1 (List.length (List.sort_uniq compare widths))

let test_csv () =
  let csv = T.to_csv (sample ()) in
  Alcotest.(check string) "csv" "name,value\nalpha,1\nb,22\n" csv

let test_csv_escaping () =
  let t = T.make ~headers:[ "x" ] [ [ "a,b" ]; [ "q\"uote" ] ] in
  let csv = T.to_csv t in
  check_bool "comma quoted" true (contains ~sub:"\"a,b\"" csv);
  check_bool "quote doubled" true (contains ~sub:"\"q\"\"uote\"" csv)

let test_empty_rows () =
  let t = T.make ~headers:[ "only" ] [] in
  check_bool "renders" true (String.length (T.render t) > 0)

let () =
  Alcotest.run "table"
    [
      suite "table"
        [
          case "row width validated" test_make_validates_width;
          case "render contains all cells" test_render_contains_cells;
          case "render lines align" test_render_alignment;
          case "csv output" test_csv;
          case "csv escaping" test_csv_escaping;
          case "empty tables render" test_empty_rows;
        ];
    ]
