open Lr_graph
open Helpers

(* 0 <- 1 <- 2, 0 <- 3, 2 - 3 disconnected in direction *)
let g () = Digraph.of_directed_edges [ (1, 0); (2, 1); (3, 0); (2, 3) ]

let test_distances () =
  let d = Path.distances (g ()) 0 in
  check_int "self" 0 (Node.Map.find 0 d);
  check_int "one hop" 1 (Node.Map.find 1 d);
  check_int "two hops via 1 or 3" 2 (Node.Map.find 2 d);
  check_int "one hop" 1 (Node.Map.find 3 d)

let test_distances_unreachable () =
  let g = Digraph.of_directed_edges [ (0, 1); (2, 1) ] in
  let d = Path.distances g 0 in
  check_bool "1 cannot reach 0" false (Node.Map.mem 1 d);
  check_bool "2 cannot reach 0" false (Node.Map.mem 2 d)

let test_shortest_path () =
  match Path.shortest_path (g ()) 2 0 with
  | None -> Alcotest.fail "path exists"
  | Some p ->
      check_int "length 3 nodes" 3 (List.length p);
      check_int "starts at 2" 2 (List.hd p);
      check_int "ends at 0" 0 (List.nth p 2)

let test_shortest_path_none () =
  check_bool "no reverse path" true (Path.shortest_path (g ()) 0 2 = None);
  check_bool "unknown node" true (Path.shortest_path (g ()) 9 0 = None)

let test_shortest_path_is_shortest () =
  for seed = 0 to 9 do
    let config = random_config ~seed 15 in
    let graph = config.Linkrev.Config.initial in
    let dest = config.Linkrev.Config.destination in
    let d = Path.distances graph dest in
    Node.Set.iter
      (fun u ->
        match Path.shortest_path graph u dest with
        | Some p ->
            check_int "path length = BFS distance"
              (Node.Map.find u d)
              (List.length p - 1)
        | None ->
            check_bool "consistent with distances" false (Node.Map.mem u d))
      (Digraph.nodes graph)
  done

let test_undirected_distances () =
  let skel = Undirected.of_edges [ (0, 1); (1, 2); (2, 3) ] in
  let d = Path.undirected_distances skel 0 in
  check_int "end of path" 3 (Node.Map.find 3 d)

let test_eccentricity_and_diameter () =
  let skel = Undirected.of_edges [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check (option int)) "endpoint" (Some 3) (Path.eccentricity skel 0);
  Alcotest.(check (option int)) "middle" (Some 2) (Path.eccentricity skel 1);
  Alcotest.(check (option int)) "diameter" (Some 3) (Path.diameter skel);
  let split = Undirected.of_edges [ (0, 1); (2, 3) ] in
  Alcotest.(check (option int)) "disconnected" None (Path.diameter split)

let test_stretch () =
  (* good chain routes along the skeleton's shortest paths: stretch 1 *)
  let inst = Generators.good_chain 6 in
  Alcotest.(check (option (float 1e-9))) "chain stretch" (Some 1.0)
    (Path.stretch inst.Generators.graph 0);
  (* non-oriented graph has no stretch *)
  let bad = Generators.bad_chain 6 in
  check_bool "not oriented" true (Path.stretch bad.Generators.graph 0 = None)

let test_stretch_after_reversal () =
  (* after PR runs, the graph is destination-oriented, so stretch is
     defined and >= 1 *)
  for seed = 0 to 4 do
    let config = random_config ~seed 14 in
    let out =
      Linkrev.Executor.run
        ~scheduler:(Lr_automata.Scheduler.first ())
        ~destination:config.Linkrev.Config.destination
        (Linkrev.Pr.algo ~mode:Linkrev.Pr.Singletons config)
    in
    match Path.stretch out.Linkrev.Executor.final_graph config.Linkrev.Config.destination with
    | None -> Alcotest.fail "oriented graph must have stretch"
    | Some s -> check_bool "stretch >= 1" true (s >= 1.0)
  done

let () =
  Alcotest.run "path"
    [
      suite "path"
        [
          case "distances" test_distances;
          case "unreachable nodes absent" test_distances_unreachable;
          case "shortest path" test_shortest_path;
          case "missing paths" test_shortest_path_none;
          case "shortest path matches BFS distance" test_shortest_path_is_shortest;
          case "undirected distances" test_undirected_distances;
          case "eccentricity and diameter" test_eccentricity_and_diameter;
          case "stretch of oriented graphs" test_stretch;
          case "stretch after reversal" test_stretch_after_reversal;
        ];
    ]
