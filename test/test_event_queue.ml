open Helpers
module Q = Lr_sim.Event_queue

let test_empty () =
  let q = Q.create () in
  check_bool "empty" true (Q.is_empty q);
  check_int "size" 0 (Q.size q);
  check_bool "pop none" true (Q.pop q = None);
  check_bool "peek none" true (Q.peek_time q = None)

let test_ordering () =
  let q = Q.create () in
  Q.add q ~time:3.0 "c";
  Q.add q ~time:1.0 "a";
  Q.add q ~time:2.0 "b";
  Alcotest.(check (option (pair (float 0.0) string))) "a first" (Some (1.0, "a")) (Q.pop q);
  Alcotest.(check (option (pair (float 0.0) string))) "b next" (Some (2.0, "b")) (Q.pop q);
  Alcotest.(check (option (pair (float 0.0) string))) "c last" (Some (3.0, "c")) (Q.pop q);
  check_bool "drained" true (Q.is_empty q)

let test_fifo_ties () =
  let q = Q.create () in
  Q.add q ~time:1.0 "first";
  Q.add q ~time:1.0 "second";
  Q.add q ~time:1.0 "third";
  let pop () = snd (Option.get (Q.pop q)) in
  let a = pop () in
  let b = pop () in
  let c = pop () in
  Alcotest.(check (list string)) "insertion order on ties"
    [ "first"; "second"; "third" ] [ a; b; c ]

let test_interleaved_add_pop () =
  let q = Q.create () in
  Q.add q ~time:5.0 5;
  Q.add q ~time:1.0 1;
  check_int "min" 1 (snd (Option.get (Q.pop q)));
  Q.add q ~time:2.0 2;
  Q.add q ~time:9.0 9;
  check_int "next min" 2 (snd (Option.get (Q.pop q)));
  check_int "then 5" 5 (snd (Option.get (Q.pop q)));
  check_int "then 9" 9 (snd (Option.get (Q.pop q)))

let test_many_random_elements_sorted () =
  let q = Q.create () in
  let rng = rng 0 in
  let times = List.init 500 (fun _ -> Random.State.float rng 100.0) in
  List.iter (fun t -> Q.add q ~time:t ()) times;
  check_int "size" 500 (Q.size q);
  let rec drain last acc =
    match Q.pop q with
    | None -> acc
    | Some (t, ()) ->
        check_bool "nondecreasing" true (t >= last);
        drain t (acc + 1)
  in
  check_int "all drained" 500 (drain neg_infinity 0)

let test_rejects_bad_times () =
  let q = Q.create () in
  check_bool "negative" true
    (try Q.add q ~time:(-1.0) (); false with Invalid_argument _ -> true);
  check_bool "nan" true
    (try Q.add q ~time:Float.nan (); false with Invalid_argument _ -> true)

let test_peek_does_not_remove () =
  let q = Q.create () in
  Q.add q ~time:4.0 ();
  check_bool "peek" true (Q.peek_time q = Some 4.0);
  check_int "still there" 1 (Q.size q)

let () =
  Alcotest.run "event_queue"
    [
      suite "event_queue"
        [
          case "empty queue" test_empty;
          case "pops in time order" test_ordering;
          case "ties break FIFO" test_fifo_ties;
          case "interleaved add/pop" test_interleaved_add_pop;
          case "500 random events drain sorted" test_many_random_elements_sorted;
          case "rejects bad times" test_rejects_bad_times;
          case "peek does not remove" test_peek_does_not_remove;
        ];
    ]
