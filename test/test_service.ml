open Helpers
module S = Lr_service.Service
module W = Lr_service.Workload
module Op = Lr_service.Op
module Shard = Lr_service.Shard
module Metrics = Lr_service.Metrics
module Node = Lr_graph.Node

let spec ?(shards = 6) ?(nodes = 12) ?(extra_edges = 8) ?(seed = 5)
    ?(ops = 600) ?(mix = W.default_mix) ?(pmix = W.no_packets) ?(burst = 4)
    ?(skew = 0.8) ?(stats_every = 0) () =
  { W.shards; nodes; extra_edges; seed; ops; mix; pmix; burst; skew;
    stats_every }

let churny = { W.route = 60; churn = 35; crash = 5 }

(* Tests exist to exercise the multi-domain protocol, so they pin the
   requested loop count instead of letting the service clamp it to the
   (possibly single-domain) CI host. *)
let with_service ?trace_dir ?(jobs = 1) ?(queue_bound = 128) ?(window = 256)
    ?(deterministic = false) spec f =
  let cfg =
    { S.default_config with S.jobs; queue_bound; window; deterministic;
      pin_loops = true }
  in
  let svc = S.create ?trace_dir cfg (W.shard_configs spec) in
  Fun.protect ~finally:(fun () -> S.shutdown svc) (fun () -> f svc)

let run_spec ?(jobs = 1) ?(queue_bound = 128) ?(window = 256)
    ?(deterministic = false) spec =
  with_service ~jobs ~queue_bound ~window ~deterministic spec (fun svc ->
      let responses = S.run svc (W.generate spec) in
      (responses, S.metrics svc))

(* The headline guarantee: responses, counters, and hence the
   fingerprint depend only on the op stream — never on the domain
   count.  The bound is generous (nothing rejects), because *which*
   ops a full ring sheds under free-running dispatch is wall-clock. *)
let test_deterministic_across_jobs () =
  let s = spec ~mix:churny ~stats_every:71 () in
  let r1, m1 = run_spec ~jobs:1 ~queue_bound:1024 s in
  List.iter
    (fun jobs ->
      let rj, mj = run_spec ~jobs ~queue_bound:1024 s in
      check_bool (Printf.sprintf "responses jobs=%d = jobs=1" jobs) true
        (r1 = rj);
      check_bool
        (Printf.sprintf "fingerprint jobs=%d = jobs=1" jobs)
        true
        (S.fingerprint r1 m1 = S.fingerprint rj mj))
    [ 2; 3; 8 ]

(* The differential oracle: free-running ring dispatch must reproduce
   the windowed path byte-for-byte whenever nothing is rejected. *)
let test_free_matches_windowed_oracle () =
  let s = spec ~mix:churny ~ops:800 ~stats_every:97 () in
  let rw, mw = run_spec ~deterministic:true ~queue_bound:1024 s in
  let fpw = S.fingerprint rw mw in
  List.iter
    (fun jobs ->
      let rf, mf = run_spec ~jobs ~queue_bound:1024 s in
      check_bool
        (Printf.sprintf "free jobs=%d responses = windowed" jobs)
        true (rf = rw);
      check_bool
        (Printf.sprintf "free jobs=%d fingerprint = windowed" jobs)
        true
        (S.fingerprint rf mf = fpw))
    [ 1; 2; 4 ]

let test_validation_clean_and_consistent () =
  let s = spec ~mix:churny ~ops:800 () in
  with_service s (fun svc ->
      let responses = S.run svc (W.generate s) in
      let m = S.metrics svc in
      check_int "zero validation failures" 0
        m.Metrics.snapshot_totals.Metrics.validation_failures;
      check_bool "some routes answered" true
        (m.Metrics.snapshot_totals.Metrics.routes > 0);
      for i = 0 to S.num_shards svc - 1 do
        check_bool
          (Printf.sprintf "shard %d consistent after churn" i)
          true
          (Shard.consistent (S.shard svc i))
      done;
      ignore responses)

let test_every_op_accounted () =
  let s = spec ~mix:churny ~ops:700 ~stats_every:50 () in
  let responses, m = run_spec s in
  let t = m.Metrics.snapshot_totals in
  check_int "served + rejected = ops" s.W.ops (t.Metrics.served + t.Metrics.rejected);
  check_int "no leaked rejections" t.Metrics.rejected (S.rejected_in responses);
  (* per-shard totals roll up to the global ones *)
  let shard_served =
    Array.fold_left
      (fun acc per -> acc + per.Metrics.served)
      0 m.Metrics.snapshot_per_shard
  in
  check_int "per-shard served rolls up" t.Metrics.served
    (shard_served + t.Metrics.stats_ops)

let test_backpressure_rejects_deterministically () =
  (* On the windowed oracle a hot shard (strong skew) against a tiny
     queue bound must shed load — and which ops are shed must not
     depend on jobs. *)
  let s = spec ~shards:4 ~ops:900 ~skew:3.0 () in
  let r1, m1 = run_spec ~deterministic:true ~queue_bound:2 ~window:128 ~jobs:1 s in
  let t1 = m1.Metrics.snapshot_totals in
  check_bool "overload sheds ops" true (t1.Metrics.rejected > 0);
  check_int "metrics match responses" t1.Metrics.rejected (S.rejected_in r1);
  check_bool "queue depth respects the bound" true
    (m1.Metrics.rings_totals.Metrics.max_depth <= 2);
  let r4, m4 = run_spec ~deterministic:true ~queue_bound:2 ~window:128 ~jobs:4 s in
  check_bool "same rejections at jobs=4" true (r1 = r4);
  check_bool "same fingerprint at jobs=4" true
    (S.fingerprint r1 m1 = S.fingerprint r4 m4);
  (* a generous bound sheds nothing *)
  let _, mb = run_spec ~deterministic:true ~queue_bound:1024 ~window:128 s in
  check_int "no rejections with headroom" 0
    mb.Metrics.snapshot_totals.Metrics.rejected

let test_free_running_overload_accounting () =
  (* Free-running backpressure: *which* ops a full ring sheds is
     wall-clock, but the accounting invariants are not — every op is
     served or rejected, rejections match the counter, occupancy
     respects the ring capacity, and shards stay consistent. *)
  let s = spec ~shards:4 ~ops:900 ~skew:3.0 ~stats_every:113 () in
  let ops = W.generate s in
  List.iter
    (fun jobs ->
      with_service ~jobs ~queue_bound:2 s (fun svc ->
          let responses = S.run svc ops in
          let m = S.metrics svc in
          let t = m.Metrics.snapshot_totals in
          check_int
            (Printf.sprintf "served + rejected = ops at jobs=%d" jobs)
            s.W.ops
            (t.Metrics.served + t.Metrics.rejected);
          check_int
            (Printf.sprintf "no leaked rejections at jobs=%d" jobs)
            t.Metrics.rejected (S.rejected_in responses);
          check_bool
            (Printf.sprintf "ring occupancy bounded at jobs=%d" jobs)
            true
            (m.Metrics.rings_totals.Metrics.max_depth <= 2);
          for i = 0 to S.num_shards svc - 1 do
            check_bool
              (Printf.sprintf "shard %d consistent at jobs=%d" i jobs)
              true
              (Shard.consistent (S.shard svc i))
          done))
    [ 1; 2; 4 ]

let test_ring_metrics_sane () =
  (* Ring observability is wall-clock-shaped, but its arithmetic is
     not: depth samples count one post-push sample per admitted op,
     the mean can never exceed the max, and stolen ops are bounded by
     steal-attempted claims times the batch size. *)
  let s = spec ~mix:churny ~ops:800 ~stats_every:101 () in
  let _, m = run_spec ~jobs:3 ~queue_bound:1024 s in
  let r = m.Metrics.rings_totals in
  let t = m.Metrics.snapshot_totals in
  check_int "one depth sample per admitted op"
    (t.Metrics.served - t.Metrics.stats_ops)
    r.Metrics.depth_samples;
  check_bool "mean depth <= max depth" true
    (r.Metrics.mean_depth <= float_of_int r.Metrics.max_depth);
  check_bool "max depth positive" true (r.Metrics.max_depth > 0);
  check_bool "stolen ops need steal attempts" true
    (r.Metrics.stolen = 0 || r.Metrics.steal_attempts > 0);
  (* the per-shard rings roll up to the aggregate *)
  let sum_stolen =
    Array.fold_left
      (fun acc (pr : Metrics.ring_totals) -> acc + pr.Metrics.stolen)
      0 m.Metrics.snapshot_rings
  in
  check_int "per-shard stolen rolls up" r.Metrics.stolen sum_stolen

let test_stats_barrier_counts () =
  let s = spec ~ops:400 ~stats_every:60 ~mix:churny () in
  (* jobs=3 exercises the free-running quiesce: a snapshot may only be
     taken once every admitted op has completed on its shard loop. *)
  let responses, _ = run_spec ~jobs:3 s in
  Array.iteri
    (fun i r ->
      match r with
      | Op.Snapshot t ->
          (* the barrier means every earlier admitted op has completed:
             served = executed ops before this index, plus the stats
             ops up to and including this one *)
          let expected = ref 0 in
          for j = 0 to i do
            match responses.(j) with
            | Op.Rejected _ -> ()
            | _ -> incr expected
          done;
          check_int
            (Printf.sprintf "snapshot at op %d counts all prior ops" i)
            !expected t.Metrics.served
      | _ -> ())
    responses

let test_crashes_fail_over () =
  let s = spec ~shards:3 ~nodes:10 ~ops:300 ~mix:{ W.route = 50; churn = 0; crash = 50 } () in
  with_service s (fun svc ->
      let responses = S.run svc (W.generate s) in
      let m = S.metrics svc in
      check_bool "elections happened" true
        (m.Metrics.snapshot_totals.Metrics.crashes > 0);
      check_int "zero validation failures across failovers" 0
        m.Metrics.snapshot_totals.Metrics.validation_failures;
      let epochs = ref 0 in
      for i = 0 to S.num_shards svc - 1 do
        let sh = S.shard svc i in
        epochs := !epochs + Shard.epoch sh;
        check_bool (Printf.sprintf "shard %d consistent" i) true
          (Shard.consistent sh);
        check_bool (Printf.sprintf "shard %d dead set matches epochs" i) true
          (Node.Set.cardinal (Shard.dead sh) = Shard.epoch sh)
      done;
      check_bool "epochs advanced" true (!epochs > 0);
      let leaders =
        Array.fold_left
          (fun acc r ->
            match r with Op.New_destination _ -> acc + 1 | _ -> acc)
          0 responses
      in
      check_int "every election produced a New_destination response"
        m.Metrics.snapshot_totals.Metrics.crashes leaders)

let test_shard_unit_behaviour () =
  let s = spec ~shards:1 ~nodes:8 () in
  let shard =
    Shard.create ~rule:Lr_routing.Maintenance.Partial_reversal ~id:0
      (W.shard_config s 0)
  in
  let dest = Shard.destination shard in
  (* routes reach the destination *)
  Node.Set.iter
    (fun u ->
      let o = Shard.apply shard (Op.Route { shard = 0; src = u }) in
      match o.Shard.response with
      | Op.Path path ->
          check_int "path ends at destination" dest
            (List.nth path (List.length path - 1));
          check_int "validated" 0 o.Shard.validation_failures
      | Op.No_route -> check_int "honest refusal" 0 o.Shard.validation_failures
      | _ -> Alcotest.fail "route answered with a non-route response")
    (Lr_graph.Digraph.nodes (Shard.graph shard));
  (* inapplicable churn is a Noop, not an error *)
  let o = Shard.apply shard (Op.Link_down { shard = 0; u = 0; v = 0 }) in
  check_bool "self-loop down is a noop" true (o.Shard.response = Op.Noop);
  let o = Shard.apply shard (Op.Route { shard = 0; src = 999 }) in
  check_bool "unknown source is a noop" true (o.Shard.response = Op.Noop);
  (* a crash elects a live leader and bumps the epoch *)
  let o = Shard.apply shard (Op.Crash_destination { shard = 0 }) in
  (match o.Shard.response with
  | Op.New_destination { leader; _ } ->
      check_bool "leader is live" true
        (not (Node.Set.mem leader (Shard.dead shard)));
      check_bool "old destination is dead" true
        (Node.Set.mem dest (Shard.dead shard));
      check_int "epoch bumped" 1 (Shard.epoch shard);
      check_bool "consistent after failover" true (Shard.consistent shard)
  | Op.Noop -> Alcotest.fail "crash with live candidates answered Noop"
  | _ -> Alcotest.fail "crash answered with an unexpected response");
  check_bool "Stats never reaches a shard" true
    (try ignore (Shard.apply shard Op.Stats); false
     with Invalid_argument _ -> true)

let test_trace_dir_records_auditable_traces () =
  let s = spec ~shards:3 ~nodes:8 ~ops:50 () in
  let dir = Filename.temp_file "lrsvc" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      with_service ~trace_dir:dir s (fun svc ->
          ignore (S.run svc (W.generate s)));
      for i = 0 to s.W.shards - 1 do
        let path = Filename.concat dir (Printf.sprintf "shard-%03d.lrt" i) in
        check_bool (Printf.sprintf "trace for shard %d exists" i) true
          (Sys.file_exists path);
        match Lr_trace.Audit.run path with
        | Error e -> Alcotest.failf "audit of %s failed: %s" path e
        | Ok report ->
            check_bool
              (Printf.sprintf "shard %d trace audits clean" i)
              true
              (Lr_trace.Audit.clean report)
      done)

let test_create_rejects_bad_config () =
  let s = spec ~shards:2 () in
  let configs = W.shard_configs s in
  List.iter
    (fun cfg ->
      check_bool "bad config rejected" true
        (try ignore (S.create cfg configs); false
         with Invalid_argument _ -> true))
    [
      { S.default_config with S.jobs = 0 };
      { S.default_config with S.queue_bound = 0 };
      { S.default_config with S.window = 0 };
      { S.default_config with S.steal_batch = 0 };
    ];
  check_bool "empty shard array rejected" true
    (try ignore (S.create S.default_config [||]); false
     with Invalid_argument _ -> true)

(* The two maintenance tiers must be indistinguishable through the
   service: same responses, counters and fingerprint on a churny
   workload (the fast engine replicates the reference's sink-selection
   order exactly). *)
let test_engines_agree () =
  let s = spec ~mix:churny ~ops:1_200 ~stats_every:301 () in
  let ops = W.generate s in
  let run engine =
    let cfg = { S.default_config with S.engine } in
    let svc = S.create cfg (W.shard_configs s) in
    Fun.protect
      ~finally:(fun () -> S.shutdown svc)
      (fun () ->
        let responses = S.run svc ops in
        let m = S.metrics svc in
        (responses, S.fingerprint responses m,
         m.Metrics.snapshot_totals.Metrics.validation_failures))
  in
  let rf, fpf, vf_fast = run Shard.Fast in
  let rr, fpr, vf_ref = run Shard.Reference in
  check_bool "responses identical across engines" true (rf = rr);
  check_bool "fingerprints identical across engines" true (fpf = fpr);
  check_int "no validation failures (fast)" 0 vf_fast;
  check_int "no validation failures (reference)" 0 vf_ref

(* Packet ops through the full service: the forwarding planes are
   seeded from each shard's current graph snapshot (never engine
   heights), so the whole packet surface — responses, packet counters,
   the fingerprint — must stay byte-identical across engines, job
   counts, and the free/windowed dispatchers. *)
let packet_spec ?(ops = 900) () =
  spec ~mix:{ W.route = 40; churn = 8; crash = 2 } ~pmix:W.default_pmix
    ~burst:5 ~ops ~stats_every:113 ()

let test_packet_ops_deterministic () =
  let s = packet_spec () in
  let r1, m1 = run_spec ~jobs:1 ~queue_bound:1024 s in
  let t = m1.Metrics.snapshot_totals in
  check_bool "packets injected" true (t.Metrics.packets_in > 0);
  check_bool "packets delivered" true (t.Metrics.packets_out > 0);
  check_bool "queue peak observed" true (t.Metrics.packet_queue_peak > 0);
  check_bool "delivered cannot exceed injected" true
    (t.Metrics.packets_out <= t.Metrics.packets_in);
  List.iter
    (fun jobs ->
      let rj, mj = run_spec ~jobs ~queue_bound:1024 s in
      check_bool (Printf.sprintf "packet responses jobs=%d" jobs) true
        (r1 = rj);
      check_bool (Printf.sprintf "packet fingerprint jobs=%d" jobs) true
        (S.fingerprint r1 m1 = S.fingerprint rj mj))
    [ 2; 4 ];
  let rw, mw = run_spec ~deterministic:true ~queue_bound:1024 s in
  check_bool "packet responses free = windowed" true (r1 = rw);
  check_bool "packet fingerprint free = windowed" true
    (S.fingerprint r1 m1 = S.fingerprint rw mw)

let test_packet_ops_across_engines () =
  let s = packet_spec ~ops:700 () in
  let ops = W.generate s in
  let run engine =
    let cfg = { S.default_config with S.engine } in
    let svc = S.create cfg (W.shard_configs s) in
    Fun.protect
      ~finally:(fun () -> S.shutdown svc)
      (fun () ->
        let responses = S.run svc ops in
        let m = S.metrics svc in
        (responses, S.fingerprint responses m))
  in
  let rf, fpf = run Shard.Fast in
  let rr, fpr = run Shard.Reference in
  check_bool "packet responses identical across engines" true (rf = rr);
  check_bool "packet fingerprints identical across engines" true (fpf = fpr)

let test_packet_shard_behaviour () =
  let s = spec ~shards:1 ~nodes:8 () in
  let shard =
    Shard.create ~rule:Lr_routing.Maintenance.Partial_reversal
      ~packet_queue:4 ~id:0 (W.shard_config s 0)
  in
  (* inject, then forward until the plane drains *)
  let o = Shard.apply shard (Op.Inject { shard = 0; src = 0; count = 3 }) in
  (match o.Shard.response with
  | Op.Injected { accepted; dropped } ->
      check_int "all accepted" 3 accepted;
      check_int "none dropped" 0 dropped
  | _ -> Alcotest.fail "inject answered with a non-inject response");
  let rec drain budget delivered =
    if budget = 0 then delivered
    else
      let o = Shard.apply shard (Op.Forward { shard = 0; slots = 8 }) in
      match o.Shard.response with
      | Op.Forwarded { delivered = d; queued; _ } ->
          if queued = 0 then delivered + d else drain (budget - 1) (delivered + d)
      | _ -> Alcotest.fail "forward answered with a non-forward response"
  in
  check_int "all packets delivered" 3 (drain 64 0);
  (* a queue bound of 4 drops the overflow of a 10-packet burst *)
  let o = Shard.apply shard (Op.Inject { shard = 0; src = 0; count = 10 }) in
  (match o.Shard.response with
  | Op.Injected { accepted; dropped } ->
      check_int "bound respected" 4 accepted;
      check_int "overflow dropped" 6 dropped
  | _ -> Alcotest.fail "inject answered with a non-inject response");
  (* invalid packet ops are Noops, not errors *)
  let o = Shard.apply shard (Op.Inject { shard = 0; src = 999; count = 1 }) in
  check_bool "unknown source is a noop" true (o.Shard.response = Op.Noop);
  let o = Shard.apply shard (Op.Forward { shard = 0; slots = 0 }) in
  check_bool "zero slots is a noop" true (o.Shard.response = Op.Noop);
  (* a crash discards the plane: the next packet op rebuilds it against
     the new destination and still works *)
  ignore (Shard.apply shard (Op.Crash_destination { shard = 0 }));
  let o = Shard.apply shard (Op.Inject { shard = 0; src = 0; count = 1 }) in
  (match o.Shard.response with
  | Op.Injected _ | Op.Noop -> ()
  | _ -> Alcotest.fail "post-crash inject answered unexpectedly");
  check_bool "consistent with a plane attached" true (Shard.consistent shard)

(* Pin the failover tie-break: with two equal-cardinality components,
   the greater leader id (Node.compare) wins — on both engines.  The
   graph is a path 0-1-[2]-3-4 with destination 2; crashing it leaves
   {0,1} (leader 1) and {3,4} (leader 4). *)
let test_crash_tiebreak_pinned () =
  let config =
    Linkrev.Config.make_exn
      (Lr_graph.Digraph.of_directed_edges [ (0, 1); (1, 2); (4, 3); (3, 2) ])
      ~destination:2
  in
  List.iter
    (fun engine ->
      let shard =
        Shard.create ~engine ~rule:Lr_routing.Maintenance.Partial_reversal
          ~id:0 config
      in
      let o = Shard.apply shard (Op.Crash_destination { shard = 0 }) in
      match o.Shard.response with
      | Op.New_destination { leader; _ } ->
          check_int "tie broken toward the greater leader id" 4 leader;
          check_int "new destination adopted" 4 (Shard.destination shard)
      | r ->
          Alcotest.failf "expected New_destination, got %s"
            (Op.response_to_string r))
    [ Shard.Fast; Shard.Reference ]

let () =
  Alcotest.run "service"
    [
      suite "service"
        [
          case "deterministic across job counts" test_deterministic_across_jobs;
          case "free-running matches the windowed oracle"
            test_free_matches_windowed_oracle;
          case "validation clean, shards consistent"
            test_validation_clean_and_consistent;
          case "every op accounted for" test_every_op_accounted;
          case "backpressure sheds load deterministically"
            test_backpressure_rejects_deterministically;
          case "free-running overload accounting holds"
            test_free_running_overload_accounting;
          case "ring metrics arithmetic sane" test_ring_metrics_sane;
          case "stats barrier counts all prior ops" test_stats_barrier_counts;
          case "destination crashes fail over" test_crashes_fail_over;
          case "shard unit behaviour" test_shard_unit_behaviour;
          case "trace dir records auditable traces"
            test_trace_dir_records_auditable_traces;
          case "bad configs rejected" test_create_rejects_bad_config;
          case "fast and reference engines agree" test_engines_agree;
          case "packet ops deterministic everywhere"
            test_packet_ops_deterministic;
          case "packet ops agree across engines"
            test_packet_ops_across_engines;
          case "packet shard behaviour" test_packet_shard_behaviour;
          case "failover tie-break pinned" test_crash_tiebreak_pinned;
        ];
    ]
